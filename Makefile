# Developer entry points. `make check` is the tier-1 CI gate; everything it
# runs is also runnable piecemeal with the targets below.

GO ?= go

.PHONY: check build test race vet fmt bench benchfull regen profile

check:
	./scripts/check.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/eval ./internal/integration ./internal/schemes/registry ./internal/telemetry/causal ./internal/ops

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# bench runs every experiment benchmark once (and the micro-benchmarks at a
# fixed iteration count) and records (name, ns/op, allocs/op) to
# BENCH_PR10.json — the perf trajectory later PRs diff against — then prints
# a delta table vs BENCH_PR9.json (BENCH_PR2/PR5/PR6/PR7/PR8/PR9.json are
# the earlier recorded points).
bench:
	./scripts/bench.sh

# benchfull is the statistically meaningful run (multiple iterations).
benchfull:
	$(GO) test -bench=. -benchmem -run=^$$ .

# profile regenerates the heaviest experiment under the CPU and heap
# profilers; inspect with `go tool pprof cpu.prof` (or mem.prof). For live
# profiling of a long run, use `arpbench -http localhost:6060` and hit
# /debug/pprof instead.
profile:
	$(GO) run ./cmd/arpbench -run table3 -trials 5 -cache \
		-cpuprofile cpu.prof -memprofile mem.prof > /dev/null
	@echo "wrote cpu.prof and mem.prof; inspect with: go tool pprof cpu.prof"

# regen re-renders every registered experiment at the recorded trial count
# (see EXPERIMENTS.md). Table 4 and Figure 3 use real ECDSA entropy and
# host timings, so a regenerated evaluation_output.txt differs from the
# committed one in those artifacts even on the same machine.
regen:
	$(GO) run ./cmd/arpbench -trials 10 -cache > evaluation_output.txt
