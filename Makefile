# Developer entry points. `make check` is the tier-1 CI gate; everything it
# runs is also runnable piecemeal with the targets below.

GO ?= go

.PHONY: check build test race vet fmt bench

check:
	./scripts/check.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/eval ./internal/integration

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
