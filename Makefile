# Developer entry points. `make check` is the tier-1 CI gate; everything it
# runs is also runnable piecemeal with the targets below.

GO ?= go

.PHONY: check build test race vet fmt bench benchfull

check:
	./scripts/check.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/eval ./internal/integration ./internal/schemes/registry

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# bench runs every experiment benchmark once and records (name, ns/op,
# allocs/op) to BENCH_PR2.json — the perf trajectory later PRs diff against.
bench:
	./scripts/bench.sh

# benchfull is the statistically meaningful run (multiple iterations).
benchfull:
	$(GO) test -bench=. -benchmem -run=^$$ .
