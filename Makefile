# Developer entry points. `make check` is the tier-1 CI gate; everything it
# runs is also runnable piecemeal with the targets below.

GO ?= go

.PHONY: check build test race vet fmt bench benchfull regen

check:
	./scripts/check.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/eval ./internal/integration ./internal/schemes/registry

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# bench runs every experiment benchmark once and records (name, ns/op,
# allocs/op) to BENCH_PR5.json — the perf trajectory later PRs diff against
# (BENCH_PR2.json is the earlier recorded point).
bench:
	./scripts/bench.sh

# benchfull is the statistically meaningful run (multiple iterations).
benchfull:
	$(GO) test -bench=. -benchmem -run=^$$ .

# regen re-renders every registered experiment at the recorded trial count
# (see EXPERIMENTS.md). Table 4 and Figure 3 use real ECDSA entropy and
# host timings, so a regenerated evaluation_output.txt differs from the
# committed one in those artifacts even on the same machine.
regen:
	$(GO) run ./cmd/arpbench -trials 10 -cache > evaluation_output.txt
