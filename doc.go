// Package repro is an executable reproduction of "An Analysis on the
// Schemes for Detecting and Preventing ARP Cache Poisoning Attacks"
// (Abad & Bonilla, ICDCSW 2007): a deterministic L2 network simulator, the
// ARP cache poisoning attack in every operational variant, from-scratch
// implementations of every defense scheme class the paper analyzes, and an
// evaluation harness that regenerates the comparison tables and figures.
//
// See README.md for the tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the evaluation. The root package holds the
// repository-level benchmark suite (bench_test.go); the library lives
// under internal/.
package repro
