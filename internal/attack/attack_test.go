package attack

import (
	"testing"
	"time"

	"repro/internal/arppkt"
	"repro/internal/ethaddr"
	"repro/internal/frame"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/stack"
)

// scenario wires victim, peer (e.g. gateway), and attacker on one switch.
type scenario struct {
	s        *sim.Scheduler
	sw       *netsim.Switch
	victim   *stack.Host
	peer     *stack.Host
	attacker *Attacker
}

func newScenario(policy stack.Policy) *scenario {
	s := sim.NewScheduler(1)
	sw := netsim.NewSwitch(s)
	gen := ethaddr.NewGen(21)

	mkNIC := func() *netsim.NIC {
		nic := netsim.NewNIC(s, gen.SeqMAC())
		sw.AddPort().Attach(nic)
		return nic
	}
	victim := stack.NewHost(s, "victim", mkNIC(), ethaddr.MustParseIPv4("10.0.0.10"),
		stack.WithPolicy(policy))
	peer := stack.NewHost(s, "gateway", mkNIC(), ethaddr.MustParseIPv4("10.0.0.254"),
		stack.WithPolicy(policy))
	attacker := New(s, mkNIC(), ethaddr.MustParseIPv4("10.0.0.66"))
	return &scenario{s: s, sw: sw, victim: victim, peer: peer, attacker: attacker}
}

// poisoned reports whether the victim's cache maps the peer's IP to the
// attacker's MAC.
func (sc *scenario) poisoned() bool {
	mac, ok := sc.victim.Cache().Lookup(sc.peer.IP())
	return ok && mac == sc.attacker.MAC()
}

func TestVariantsAgainstNaivePolicy(t *testing.T) {
	for _, v := range []Variant{VariantGratuitous, VariantUnsolicitedReply, VariantRequestSpoof} {
		t.Run(v.String(), func(t *testing.T) {
			sc := newScenario(stack.PolicyNaive)
			sc.attacker.Poison(v, sc.peer.IP(), sc.attacker.MAC(), sc.victim.MAC(), sc.victim.IP())
			if err := sc.s.Run(); err != nil {
				t.Fatal(err)
			}
			if !sc.poisoned() {
				t.Fatalf("%s failed against naive policy", v)
			}
		})
	}
}

func TestUnsolicitedVariantsFailAgainstSolicitedOnly(t *testing.T) {
	for _, v := range []Variant{VariantGratuitous, VariantUnsolicitedReply, VariantRequestSpoof} {
		t.Run(v.String(), func(t *testing.T) {
			sc := newScenario(stack.PolicySolicitedOnly)
			sc.attacker.Poison(v, sc.peer.IP(), sc.attacker.MAC(), sc.victim.MAC(), sc.victim.IP())
			if err := sc.s.Run(); err != nil {
				t.Fatal(err)
			}
			if sc.poisoned() {
				t.Fatalf("%s succeeded against solicited-only policy", v)
			}
		})
	}
}

func TestReplyRaceBeatsSolicitedOnly(t *testing.T) {
	// Give the genuine peer extra link latency so the attacker's instant
	// forged reply arrives first.
	s := sim.NewScheduler(1)
	sw := netsim.NewSwitch(s)
	gen := ethaddr.NewGen(21)

	victimNIC := netsim.NewNIC(s, gen.SeqMAC())
	sw.AddPort().Attach(victimNIC)
	victim := stack.NewHost(s, "victim", victimNIC, ethaddr.MustParseIPv4("10.0.0.10"),
		stack.WithPolicy(stack.PolicySolicitedOnly))

	peerNIC := netsim.NewNIC(s, gen.SeqMAC())
	sw.AddPort().Attach(peerNIC, netsim.WithLatency(2*time.Millisecond))
	peer := stack.NewHost(s, "gateway", peerNIC, ethaddr.MustParseIPv4("10.0.0.254"),
		stack.WithPolicy(stack.PolicySolicitedOnly))

	atkNIC := netsim.NewNIC(s, gen.SeqMAC())
	sw.AddPort().Attach(atkNIC)
	attacker := New(s, atkNIC, ethaddr.MustParseIPv4("10.0.0.66"))

	attacker.ArmReplyRace(peer.IP(), victim.IP(), 0)
	victim.Resolve(peer.IP(), nil)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	mac, ok := victim.Cache().Lookup(peer.IP())
	if !ok || mac != attacker.MAC() {
		t.Fatalf("race lost: cache holds %v (ok=%v)", mac, ok)
	}
	if attacker.Stats().RacesWon != 1 {
		t.Fatalf("RacesWon = %d", attacker.Stats().RacesWon)
	}
}

func TestReplyRaceLosesWhenDelayed(t *testing.T) {
	sc := newScenario(stack.PolicySolicitedOnly)
	// Attacker must wait 5ms; the genuine reply (≈100µs round trip) wins
	// and the late forgery arrives unsolicited → rejected.
	sc.attacker.ArmReplyRace(sc.peer.IP(), sc.victim.IP(), 5*time.Millisecond)
	sc.victim.Resolve(sc.peer.IP(), nil)
	if err := sc.s.Run(); err != nil {
		t.Fatal(err)
	}
	mac, ok := sc.victim.Cache().Lookup(sc.peer.IP())
	if !ok || mac != sc.peer.MAC() {
		t.Fatalf("genuine binding lost: %v %v", mac, ok)
	}
}

func TestRaceIgnoresOtherRequesters(t *testing.T) {
	sc := newScenario(stack.PolicyNaive)
	// Armed only for a specific victim; the peer's own resolution of the
	// victim must not trigger it.
	sc.attacker.ArmReplyRace(sc.victim.IP(), ethaddr.MustParseIPv4("10.0.0.200"), 0)
	sc.peer.Resolve(sc.victim.IP(), nil)
	if err := sc.s.Run(); err != nil {
		t.Fatal(err)
	}
	if sc.attacker.Stats().RacesWon != 0 {
		t.Fatal("race fired for the wrong requester")
	}
}

func TestPeriodicPoisoningDefeatsExpiry(t *testing.T) {
	s := sim.NewScheduler(1)
	sw := netsim.NewSwitch(s)
	gen := ethaddr.NewGen(21)
	mkNIC := func() *netsim.NIC {
		nic := netsim.NewNIC(s, gen.SeqMAC())
		sw.AddPort().Attach(nic)
		return nic
	}
	victim := stack.NewHost(s, "victim", mkNIC(), ethaddr.MustParseIPv4("10.0.0.10"),
		stack.WithCacheTTL(5*time.Second))
	peer := stack.NewHost(s, "gw", mkNIC(), ethaddr.MustParseIPv4("10.0.0.254"))
	attacker := New(s, mkNIC(), ethaddr.MustParseIPv4("10.0.0.66"))

	attacker.PoisonPeriodically(2*time.Second, victim.MAC(), victim.IP(), peer.MAC(), peer.IP())
	// Sample the victim's cache well past several TTLs.
	stillPoisoned := true
	s.At(30*time.Second, func() {
		mac, ok := victim.Cache().Lookup(peer.IP())
		stillPoisoned = ok && mac == attacker.MAC()
		attacker.StopPoisoning()
		s.Stop()
	})
	_ = s.RunUntil(time.Minute) // ErrStopped is the expected exit
	if !stillPoisoned {
		t.Fatal("periodic poisoning failed to hold past TTL")
	}
}

func TestMITMRelayPreservesConnectivityAndSniffs(t *testing.T) {
	sc := newScenario(stack.PolicyNaive)
	a := sc.attacker
	a.PoisonPeriodically(time.Second, sc.victim.MAC(), sc.victim.IP(), sc.peer.MAC(), sc.peer.IP())
	a.RelayBetween(sc.victim.MAC(), sc.victim.IP(), sc.peer.MAC(), sc.peer.IP())

	delivered := 0
	sc.peer.HandleUDP(80, func(src ethaddr.IPv4, srcPort uint16, payload []byte) {
		delivered++
	})
	// Victim sends after poisoning settles.
	for i := 1; i <= 5; i++ {
		i := i
		sc.s.At(time.Duration(i)*200*time.Millisecond, func() {
			sc.victim.SendUDP(sc.peer.IP(), 1000, 80, []byte("credentials"))
		})
	}
	sc.s.At(2*time.Second, func() { a.StopPoisoning(); sc.s.Stop() })
	_ = sc.s.RunUntil(time.Minute)

	if delivered != 5 {
		t.Fatalf("delivered = %d, want 5 (relay must preserve connectivity)", delivered)
	}
	st := a.Stats()
	if st.Relayed != 5 {
		t.Fatalf("Relayed = %d", st.Relayed)
	}
	if st.Sniffed == 0 {
		t.Fatal("no payload sniffed")
	}
}

func TestBlackholeDropsTraffic(t *testing.T) {
	sc := newScenario(stack.PolicyNaive)
	a := sc.attacker
	a.Poison(VariantUnsolicitedReply, sc.peer.IP(), a.MAC(), sc.victim.MAC(), sc.victim.IP())
	a.BlackholeTraffic(sc.peer.IP())

	delivered := 0
	sc.peer.HandleUDP(80, func(ethaddr.IPv4, uint16, []byte) { delivered++ })
	sc.s.At(100*time.Millisecond, func() {
		sc.victim.SendUDP(sc.peer.IP(), 1000, 80, []byte("data"))
	})
	if err := sc.s.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Fatal("blackholed traffic was delivered")
	}
	if a.Stats().Dropped != 1 {
		t.Fatalf("Dropped = %d", a.Stats().Dropped)
	}
}

func TestFloodCachePollutesNaiveHosts(t *testing.T) {
	sc := newScenario(stack.PolicyNaive)
	gen := ethaddr.NewGen(31)
	subnet := ethaddr.MustParseSubnet("10.0.0.0/24")
	sc.attacker.FloodCache(gen, subnet, 100, time.Millisecond)
	if err := sc.s.Run(); err != nil {
		t.Fatal(err)
	}
	if n := sc.victim.Cache().Len(); n < 50 {
		t.Fatalf("victim cache has %d entries after flood, want many", n)
	}
}

func TestFloodCAMFillsSwitchTable(t *testing.T) {
	s := sim.NewScheduler(1)
	sw := netsim.NewSwitch(s, netsim.WithCAMCapacity(64))
	gen := ethaddr.NewGen(21)
	atkNIC := netsim.NewNIC(s, gen.SeqMAC())
	sw.AddPort().Attach(atkNIC)
	attacker := New(s, atkNIC, ethaddr.MustParseIPv4("10.0.0.66"))

	attacker.FloodCAM(ethaddr.NewGen(32), 200, 100*time.Microsecond)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if sw.CAMLen() != 64 {
		t.Fatalf("CAMLen = %d, want full (64)", sw.CAMLen())
	}
	if sw.Stats().LearnMisses == 0 {
		t.Fatal("flood should overflow the CAM")
	}
}

func TestImpersonateAnswersRequestsAndProbes(t *testing.T) {
	sc := newScenario(stack.PolicyNaive)
	ghost := ethaddr.MustParseIPv4("10.0.0.200") // nobody owns this
	sc.attacker.Impersonate(ghost)

	var resolved ethaddr.MAC
	sc.victim.Resolve(ghost, func(mac ethaddr.MAC, ok bool) {
		if ok {
			resolved = mac
		}
	})
	if err := sc.s.Run(); err != nil {
		t.Fatal(err)
	}
	if resolved != sc.attacker.MAC() {
		t.Fatalf("impersonated resolution = %v", resolved)
	}

	// Probes are answered too — the evasive posture against verification.
	probeAnswered := false
	sc.victim.OnARP(func(p *arppkt.Packet, f *frame.Frame) {
		if p.Op == arppkt.OpReply && p.SenderIP == ghost && p.TargetIP.IsZero() {
			probeAnswered = true
		}
	})
	probe := arppkt.NewProbe(sc.victim.MAC(), ghost)
	sc.victim.NIC().Send(&frame.Frame{
		Dst: ethaddr.BroadcastMAC, Src: sc.victim.MAC(),
		Type: frame.TypeARP, Payload: probe.Encode(),
	})
	if err := sc.s.Run(); err != nil {
		t.Fatal(err)
	}
	if !probeAnswered {
		t.Fatal("impersonator did not answer the probe")
	}

	sc.attacker.StopImpersonating(ghost)
	count := sc.attacker.Stats().Forged
	sc.victim.NIC().Send(&frame.Frame{
		Dst: ethaddr.BroadcastMAC, Src: sc.victim.MAC(),
		Type: frame.TypeARP, Payload: probe.Encode(),
	})
	if err := sc.s.Run(); err != nil {
		t.Fatal(err)
	}
	if sc.attacker.Stats().Forged != count {
		t.Fatal("still answering after StopImpersonating")
	}
}

func TestScanEmitsOneRequestPerAddress(t *testing.T) {
	sc := newScenario(stack.PolicyNaive)
	subnet := ethaddr.MustParseSubnet("10.0.0.0/24")
	seen := make(map[ethaddr.IPv4]bool)
	sc.victim.OnARP(func(p *arppkt.Packet, f *frame.Frame) {
		if p.Op == arppkt.OpRequest && p.SenderMAC == sc.attacker.MAC() {
			seen[p.TargetIP] = true
		}
	})
	sc.attacker.Scan(subnet, 1, 20, time.Millisecond)
	if err := sc.s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 20 {
		t.Fatalf("victim observed %d scan targets, want 20", len(seen))
	}
}

func TestPortStealInterceptsWithoutARPForgery(t *testing.T) {
	sc := newScenario(stack.PolicyNaive)
	// Peer knows the victim already (so its frames are unicast, not
	// flooded — stealing must divert genuinely switched traffic).
	sc.peer.Resolve(sc.victim.IP(), nil)
	if err := sc.s.Run(); err != nil {
		t.Fatal(err)
	}

	sniffedBefore := sc.attacker.Stats().Sniffed
	stealTimer := sc.attacker.StealPort(sc.victim.MAC(), sc.victim.IP(), 50*time.Millisecond, true)

	delivered := 0
	sc.victim.HandleUDP(80, func(ethaddr.IPv4, uint16, []byte) { delivered++ })
	for i := 1; i <= 5; i++ {
		i := i
		sc.s.At(time.Duration(i)*300*time.Millisecond, func() {
			sc.peer.SendUDP(sc.victim.IP(), 1000, 80, []byte("to the victim"))
		})
	}
	sc.s.At(3*time.Second, func() {
		stealTimer.Stop()
		sc.attacker.StopStealing(sc.victim.MAC())
		sc.s.Stop()
	})
	_ = sc.s.RunUntil(time.Minute)

	if sc.attacker.Stats().Sniffed == sniffedBefore {
		t.Fatal("port stealing intercepted nothing")
	}
	// Restore mode preserves connectivity.
	if delivered != 5 {
		t.Fatalf("delivered = %d of 5 with restore enabled", delivered)
	}
	// Crucially: no ARP binding was forged anywhere.
	if mac, ok := sc.peer.Cache().Lookup(sc.victim.IP()); !ok || mac != sc.victim.MAC() {
		t.Fatal("peer's ARP cache should be untouched by port stealing")
	}
}

func TestPortStealWithoutRestoreBlackholes(t *testing.T) {
	sc := newScenario(stack.PolicyNaive)
	sc.peer.Resolve(sc.victim.IP(), nil)
	if err := sc.s.Run(); err != nil {
		t.Fatal(err)
	}
	sc.attacker.StealPort(sc.victim.MAC(), sc.victim.IP(), 50*time.Millisecond, false)

	delivered := 0
	sc.victim.HandleUDP(80, func(ethaddr.IPv4, uint16, []byte) { delivered++ })
	sc.s.At(500*time.Millisecond, func() {
		sc.peer.SendUDP(sc.victim.IP(), 1000, 80, []byte("x"))
	})
	sc.s.At(time.Second, sc.s.Stop)
	_ = sc.s.RunUntil(time.Minute)

	if delivered != 0 {
		t.Fatalf("delivered = %d, want blackholed", delivered)
	}
	if sc.attacker.Stats().Dropped == 0 {
		t.Fatal("drop not recorded")
	}
}

func TestVariantString(t *testing.T) {
	want := map[Variant]string{
		VariantGratuitous:       "gratuitous",
		VariantUnsolicitedReply: "unsolicited-reply",
		VariantRequestSpoof:     "request-spoof",
		VariantReplyRace:        "reply-race",
		Variant(0):              "unknown",
	}
	for v, name := range want {
		if v.String() != name {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), name)
		}
	}
	if len(Variants()) != 4 {
		t.Fatal("Variants() should list all four")
	}
}
