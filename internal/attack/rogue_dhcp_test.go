package attack

import (
	"testing"
	"time"

	"repro/internal/dhcp"
	"repro/internal/ethaddr"
	"repro/internal/netsim"
	"repro/internal/schemes"
	"repro/internal/schemes/dai"
	"repro/internal/sim"
	"repro/internal/stack"
)

// dhcpNet wires a genuine server (with extra link latency so the rogue can
// win races), a client, and the attacker.
type dhcpNet struct {
	s        *sim.Scheduler
	sw       *netsim.Switch
	server   *dhcp.Server
	srvPort  *netsim.Port
	client   *dhcp.Client
	cliHost  *stack.Host
	attacker *Attacker
	atkPort  *netsim.Port
}

func newDHCPNet(t *testing.T) *dhcpNet {
	t.Helper()
	s := sim.NewScheduler(1)
	sw := netsim.NewSwitch(s)
	subnet := ethaddr.MustParseSubnet("10.0.0.0/24")
	gen := ethaddr.NewGen(91)

	srvNIC := netsim.NewNIC(s, gen.SeqMAC())
	srvPort := sw.AddPort()
	// The genuine server is slower to answer: the realistic condition a
	// rogue exploits.
	srvPort.Attach(srvNIC, netsim.WithLatency(2*time.Millisecond))
	srvHost := stack.NewHost(s, "dhcp", srvNIC, subnet.Host(1))
	server := dhcp.NewServer(s, srvHost, subnet, subnet.Host(254), 100, 10)

	cliNIC := netsim.NewNIC(s, gen.SeqMAC())
	sw.AddPort().Attach(cliNIC)
	cliHost := stack.NewHost(s, "client", cliNIC, ethaddr.ZeroIPv4)
	client := dhcp.NewClient(s, cliHost, nil)

	atkNIC := netsim.NewNIC(s, gen.SeqMAC())
	atkPort := sw.AddPort()
	atkPort.Attach(atkNIC)
	attacker := New(s, atkNIC, subnet.Host(66))

	return &dhcpNet{
		s: s, sw: sw, server: server, srvPort: srvPort,
		client: client, cliHost: cliHost, attacker: attacker, atkPort: atkPort,
	}
}

func TestRogueDHCPHijacksRouter(t *testing.T) {
	n := newDHCPNet(t)
	rogue := n.attacker.StartRogueDHCP(ethaddr.MustParseSubnet("10.0.0.0/24"), 200, 10)

	n.client.Acquire()
	if err := n.s.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if n.client.State() != dhcp.StateBound {
		t.Fatal("client failed to bind")
	}
	// The rogue's faster offer won; the client's address comes from the
	// rogue pool.
	if got := n.client.Lease().IP; got != ethaddr.MustParseIPv4("10.0.0.200") {
		t.Fatalf("lease = %v, want the rogue pool", got)
	}
	st := rogue.Stats()
	if st.OffersSent != 1 || st.AcksSent != 1 {
		t.Fatalf("rogue stats: %+v", st)
	}
	// No ARP forgery occurred anywhere.
	if n.attacker.Stats().Forged != 0 {
		t.Fatal("rogue DHCP must not touch ARP")
	}
}

func TestDHCPGuardBlocksRogue(t *testing.T) {
	n := newDHCPNet(t)
	sink := schemes.NewSink()
	table := dai.NewBindingTable()
	insp := dai.New(n.s, sink, table,
		dai.WithTrustedPorts(n.srvPort.ID()),
		dai.WithDHCPGuard())
	n.sw.SetFilter(insp.Filter())

	n.attacker.StartRogueDHCP(ethaddr.MustParseSubnet("10.0.0.0/24"), 200, 10)
	n.client.Acquire()
	if err := n.s.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if n.client.State() != dhcp.StateBound {
		t.Fatal("client failed to bind via the genuine server")
	}
	// The genuine (trusted-port) server's pool won despite being slower.
	if got := n.client.Lease().IP; got != ethaddr.MustParseIPv4("10.0.0.100") {
		t.Fatalf("lease = %v, want the genuine pool", got)
	}
	if insp.Stats().RogueDHCPDropped == 0 {
		t.Fatal("no rogue messages dropped")
	}
	if len(sink.ByKind(schemes.AlertRogueDHCP)) == 0 {
		t.Fatal("no rogue-dhcp alerts")
	}
}

func TestDHCPGuardPassesGenuineServer(t *testing.T) {
	n := newDHCPNet(t)
	sink := schemes.NewSink()
	insp := dai.New(n.s, sink, dai.NewBindingTable(),
		dai.WithTrustedPorts(n.srvPort.ID()),
		dai.WithDHCPGuard())
	n.sw.SetFilter(insp.Filter())

	n.client.Acquire()
	if err := n.s.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if n.client.State() != dhcp.StateBound {
		t.Fatal("guard blocked the genuine server")
	}
	if insp.Stats().RogueDHCPDropped != 0 {
		t.Fatalf("false drops: %+v", insp.Stats())
	}
}
