// Package attack implements the ARP cache poisoning attack in every
// operational variant the paper's threat model covers, plus the man-in-the-
// middle relay and denial-of-service payloads that poisoning enables, and
// the cache/CAM flooding attacks that share its detection surface.
//
// An Attacker owns a NIC directly (not a Host): real attack tools bypass the
// OS stack and inject raw frames, and so does this one. Every forged packet
// is a byte-faithful ARP message — the schemes under evaluation see exactly
// what they would see on a real wire.
package attack

import (
	"time"

	"repro/internal/arppkt"
	"repro/internal/ethaddr"
	"repro/internal/frame"
	"repro/internal/ipv4pkt"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/telemetry/causal"
)

// Variant names a poisoning delivery technique. The policy-matrix
// experiment sweeps all of them against each cache policy.
type Variant int

// Poisoning variants.
const (
	// VariantGratuitous broadcasts a forged gratuitous ARP claiming the
	// spoofed IP.
	VariantGratuitous Variant = iota + 1

	// VariantUnsolicitedReply unicasts a forged reply to the victim with no
	// preceding request.
	VariantUnsolicitedReply

	// VariantRequestSpoof unicasts a forged *request* whose sender fields
	// carry the poison; caches that learn from requests accept it.
	VariantRequestSpoof

	// VariantReplyRace answers the victim's genuine request faster than
	// the real owner, so even solicited-only caches accept the forgery.
	VariantReplyRace
)

// String returns the variant name used in reports.
func (v Variant) String() string {
	switch v {
	case VariantGratuitous:
		return "gratuitous"
	case VariantUnsolicitedReply:
		return "unsolicited-reply"
	case VariantRequestSpoof:
		return "request-spoof"
	case VariantReplyRace:
		return "reply-race"
	default:
		return "unknown"
	}
}

// Variants lists all poisoning variants in sweep order.
func Variants() []Variant {
	return []Variant{VariantGratuitous, VariantUnsolicitedReply, VariantRequestSpoof, VariantReplyRace}
}

// Stats counts attacker activity.
type Stats struct {
	Forged   uint64 // poisoning packets sent
	Relayed  uint64 // MITM frames forwarded
	Dropped  uint64 // frames blackholed
	Sniffed  uint64 // payload bytes observed via MITM
	RacesWon uint64 // reply-race triggers fired (a request was answered)
}

// Attacker is a station under adversary control.
type Attacker struct {
	sched *sim.Scheduler
	nic   *netsim.NIC
	ip    ethaddr.IPv4 // the attacker's own (legitimate) address
	arena *arppkt.Arena
	stats Stats
	rec   *causal.Recorder // causal tracing; nil (no-op) when disabled

	onFrame      []func(*frame.Frame)
	repoison     sim.Timer
	racing       map[ethaddr.IPv4]raceSpec
	relaying     map[relayKey]relaySpec
	blackhole    map[ethaddr.IPv4]bool
	impersonated map[ethaddr.IPv4]bool
	stealing     map[ethaddr.MAC]stealSpec
}

type stealSpec struct {
	victimIP ethaddr.IPv4
	restore  bool
}

type raceSpec struct {
	victimIP ethaddr.IPv4 // only race requests from this victim (zero = any)
	delay    time.Duration
}

type relayKey struct {
	srcIP, dstIP ethaddr.IPv4
}

type relaySpec struct {
	dstMAC ethaddr.MAC
}

// New creates an attacker on nic with its own legitimate address ip. The
// NIC is put in promiscuous mode — attack tools always sniff.
func New(s *sim.Scheduler, nic *netsim.NIC, ip ethaddr.IPv4) *Attacker {
	a := &Attacker{
		sched:        s,
		nic:          nic,
		ip:           ip,
		arena:        arppkt.ArenaOf(s),
		rec:          causal.Of(s),
		racing:       make(map[ethaddr.IPv4]raceSpec),
		relaying:     make(map[relayKey]relaySpec),
		blackhole:    make(map[ethaddr.IPv4]bool),
		impersonated: make(map[ethaddr.IPv4]bool),
		stealing:     make(map[ethaddr.MAC]stealSpec),
	}
	nic.SetPromiscuous(true)
	nic.SetHandler(a.handleFrame)
	return a
}

// MAC returns the attacker's hardware address.
func (a *Attacker) MAC() ethaddr.MAC { return a.nic.MAC() }

// NIC exposes the attacker's interface for raw frame injection by tests and
// custom attack payloads.
func (a *Attacker) NIC() *netsim.NIC { return a.nic }

// IP returns the attacker's legitimate protocol address.
func (a *Attacker) IP() ethaddr.IPv4 { return a.ip }

// Stats returns a copy of the attacker counters.
func (a *Attacker) Stats() Stats { return a.stats }

// OnFrame registers an additional sniffer callback.
func (a *Attacker) OnFrame(fn func(*frame.Frame)) { a.onFrame = append(a.onFrame, fn) }

// send transmits a raw frame.
func (a *Attacker) send(f *frame.Frame) { a.nic.Send(f) }

// sendARP wraps and transmits a forged ARP packet.
func (a *Attacker) sendARP(p *arppkt.Packet, dstMAC, srcMAC ethaddr.MAC) {
	a.stats.Forged++
	a.send(a.arena.NewFrame(p, srcMAC, dstMAC))
}

// Poison delivers one poisoning packet asserting "spoofedIP is-at asMAC"
// using the given variant. For unicast variants, victimMAC/victimIP address
// the target; the gratuitous variant broadcasts and ignores them. The
// reply-race variant arms a trigger instead of sending immediately — see
// ArmReplyRace.
func (a *Attacker) Poison(v Variant, spoofedIP ethaddr.IPv4, asMAC ethaddr.MAC, victimMAC ethaddr.MAC, victimIP ethaddr.IPv4) {
	// Each poisoning attempt roots a causal trace: everything it sets in
	// motion — wire hops, the victim's cache overwrite, probes a scheme
	// launches in response, the eventual alert — descends from this span.
	sp := a.rec.Begin("attack", v.String())
	if sp != nil {
		sp.Attr("spoofed", spoofedIP.String()).
			Attr("as", asMAC.String()).
			Attr("victim", victimIP.String())
	}
	defer sp.End()
	switch v {
	case VariantGratuitous:
		p := arppkt.NewGratuitousRequest(asMAC, spoofedIP)
		a.sendARP(p, ethaddr.BroadcastMAC, asMAC)
	case VariantUnsolicitedReply:
		p := arppkt.NewReply(asMAC, spoofedIP, victimMAC, victimIP)
		a.sendARP(p, victimMAC, asMAC)
	case VariantRequestSpoof:
		// A request "who-has victimIP" whose sender fields are poisoned.
		p := arppkt.NewRequest(asMAC, spoofedIP, victimIP)
		a.sendARP(p, victimMAC, asMAC)
	case VariantReplyRace:
		a.ArmReplyRace(spoofedIP, victimIP, 0)
	}
}

// ArmReplyRace waits for an ARP request asking for spoofedIP (from victimIP,
// or any requester if victimIP is zero) and answers it with a forged reply
// after delay. Negative delays are clamped to zero — the simulator cannot
// send into the past, but a zero delay beats the genuine owner whenever the
// attacker is nearer in latency, which the race experiment sweeps.
func (a *Attacker) ArmReplyRace(spoofedIP, victimIP ethaddr.IPv4, delay time.Duration) {
	if delay < 0 {
		delay = 0
	}
	a.racing[spoofedIP] = raceSpec{victimIP: victimIP, delay: delay}
}

// DisarmReplyRace removes a race trigger.
func (a *Attacker) DisarmReplyRace(spoofedIP ethaddr.IPv4) { delete(a.racing, spoofedIP) }

// PoisonPeriodically re-sends a pair of unsolicited-reply poisons every
// period, the standard tool behaviour that defeats cache expiry: victim
// learns "peerIP is-at attacker", peer learns "victimIP is-at attacker".
// That bidirectional poisoning is what enables full-duplex MITM.
func (a *Attacker) PoisonPeriodically(period time.Duration,
	victimMAC ethaddr.MAC, victimIP ethaddr.IPv4,
	peerMAC ethaddr.MAC, peerIP ethaddr.IPv4) {
	poison := func() {
		a.Poison(VariantUnsolicitedReply, peerIP, a.MAC(), victimMAC, victimIP)
		a.Poison(VariantUnsolicitedReply, victimIP, a.MAC(), peerMAC, peerIP)
	}
	poison()
	a.repoison = a.sched.Every(period, poison)
}

// StopPoisoning halts periodic re-poisoning.
func (a *Attacker) StopPoisoning() {
	a.repoison.Stop()
}

// RelayBetween installs full-duplex forwarding so intercepted IP traffic
// between the two stations still arrives: frames captured for victim→peer
// are re-sent to the peer's true MAC and vice versa. Combined with
// PoisonPeriodically this is the complete eavesdropping MITM.
func (a *Attacker) RelayBetween(victimMAC ethaddr.MAC, victimIP ethaddr.IPv4, peerMAC ethaddr.MAC, peerIP ethaddr.IPv4) {
	a.relaying[relayKey{srcIP: victimIP, dstIP: peerIP}] = relaySpec{dstMAC: peerMAC}
	a.relaying[relayKey{srcIP: peerIP, dstIP: victimIP}] = relaySpec{dstMAC: victimMAC}
}

// BlackholeTraffic makes the attacker silently drop intercepted IP packets
// destined to dstIP instead of relaying — the DoS payload.
func (a *Attacker) BlackholeTraffic(dstIP ethaddr.IPv4) { a.blackhole[dstIP] = true }

// FloodCache broadcasts n gratuitous announcements binding random IPs in
// the subnet to random MACs: ARP cache flooding. Packets are spaced by gap.
func (a *Attacker) FloodCache(gen *ethaddr.Gen, subnet ethaddr.Subnet, n int, gap time.Duration) {
	for i := 0; i < n; i++ {
		i := i
		a.sched.After(time.Duration(i)*gap, func() {
			mac := gen.RandMAC()
			ip := gen.RandIPv4(subnet)
			p := arppkt.NewGratuitousRequest(mac, ip)
			a.sendARP(p, ethaddr.BroadcastMAC, mac)
		})
	}
}

// StealPort mounts the port-stealing attack: frames forged with the
// victim's source MAC re-teach the switch CAM that the victim lives on the
// attacker's port, diverting the victim's inbound unicast here — no ARP
// forgery at all, which is why ARP-layer schemes are blind to it. With
// restore enabled, each interception is followed by an ARP request that
// lets the victim's genuine reply re-teach the switch, the stolen frame is
// replayed to the victim, and the port is stolen again — preserving
// connectivity the way the classic tools do.
func (a *Attacker) StealPort(victimMAC ethaddr.MAC, victimIP ethaddr.IPv4, period time.Duration, restore bool) sim.Timer {
	a.stealing[victimMAC] = stealSpec{victimIP: victimIP, restore: restore}
	steal := func() {
		if _, active := a.stealing[victimMAC]; !active {
			return
		}
		a.stats.Forged++
		// Any frame with the victim's source address steals the CAM slot;
		// self-addressed keeps it off other stations' wires.
		a.send(&frame.Frame{Dst: a.MAC(), Src: victimMAC, Type: frame.TypeIPv4})
	}
	steal()
	return a.sched.Every(period, steal)
}

// StopStealing withdraws a port-steal target.
func (a *Attacker) StopStealing(victimMAC ethaddr.MAC) { delete(a.stealing, victimMAC) }

// Scan broadcasts who-has requests for the host addresses first..last of
// the subnet, spaced by gap — the reconnaissance sweep attackers run to
// enumerate victims before poisoning. The requests use the attacker's
// genuine identity (scans that spoof get no answers back).
func (a *Attacker) Scan(subnet ethaddr.Subnet, first, last int, gap time.Duration) {
	for i := first; i <= last; i++ {
		i := i
		a.sched.After(time.Duration(i-first)*gap, func() {
			p := arppkt.NewRequest(a.MAC(), a.ip, subnet.Host(i))
			a.sendARP(p, ethaddr.BroadcastMAC, a.MAC())
		})
	}
}

// FloodCAM transmits n minimum-size frames with random source MACs, the
// macof attack that fills a switch CAM table and forces fail-open flooding.
func (a *Attacker) FloodCAM(gen *ethaddr.Gen, n int, gap time.Duration) {
	for i := 0; i < n; i++ {
		i := i
		a.sched.After(time.Duration(i)*gap, func() {
			a.stats.Forged++
			a.send(&frame.Frame{
				Dst:     gen.RandMAC(),
				Src:     gen.RandMAC(),
				Type:    frame.TypeIPv4,
				Payload: nil,
			})
		})
	}
}

// handleFrame is the attacker's promiscuous receive path: race triggers,
// MITM relay, blackholing, sniff accounting.
func (a *Attacker) handleFrame(f *frame.Frame) {
	for _, fn := range a.onFrame {
		fn(f)
	}
	switch f.Type {
	case frame.TypeARP:
		a.handleARP(f)
	case frame.TypeIPv4:
		a.handleIPv4(f)
	}
}

// Impersonate makes the attacker fully assume an address: it answers ARP
// requests AND verification probes for ip with its own MAC. This is the
// evasive posture the analysis warns about — against an absent genuine
// owner, active verification sees a single consistent (forged) answer and
// clears it. Combine with an offline victim for the full blind spot.
func (a *Attacker) Impersonate(ip ethaddr.IPv4) { a.impersonated[ip] = true }

// StopImpersonating withdraws an assumed address.
func (a *Attacker) StopImpersonating(ip ethaddr.IPv4) { delete(a.impersonated, ip) }

// handleARP fires armed reply races and answers for impersonated addresses.
func (a *Attacker) handleARP(f *frame.Frame) {
	p, err := arppkt.DecodeFrame(f)
	if err != nil || p.Op != arppkt.OpRequest || p.IsGratuitous() {
		return
	}
	if a.impersonated[p.TargetIP] {
		reply := arppkt.NewReply(a.MAC(), p.TargetIP, p.SenderMAC, p.SenderIP)
		if p.IsProbe() {
			reply.TargetIP = ethaddr.ZeroIPv4 // probe answers echo the zero sender
		}
		a.sendARP(reply, p.SenderMAC, a.MAC())
		return
	}
	if p.IsProbe() {
		return
	}
	spec, armed := a.racing[p.TargetIP]
	if !armed {
		return
	}
	if !spec.victimIP.IsZero() && p.SenderIP != spec.victimIP {
		return
	}
	forged := arppkt.NewReply(a.MAC(), p.TargetIP, p.SenderMAC, p.SenderIP)
	victimMAC := p.SenderMAC
	a.stats.RacesWon++
	// Two shots, as real tools fire: the first wins first-answer policies
	// (solicited-only, no-overwrite), the second wins last-writer policies
	// (anything that accepts unsolicited overwrites) even when the genuine
	// reply lands in between.
	race := func() {
		// The race forgery is a child of the victim's own request trace —
		// the request is literally what caused it.
		sp := a.rec.Begin("attack", "reply-race")
		a.sendARP(forged, victimMAC, a.MAC())
		sp.End()
	}
	a.sched.After(spec.delay, race)
	a.sched.After(spec.delay+15*time.Millisecond, race)
}

// handleIPv4 relays or blackholes intercepted traffic. Only frames actually
// addressed to the attacker's MAC are intercepted traffic; promiscuously
// overheard frames are merely sniffed. Frames captured through a stolen
// CAM slot arrive bearing the victim's destination MAC.
func (a *Attacker) handleIPv4(f *frame.Frame) {
	pkt, err := ipv4pkt.Decode(f.Payload)
	if err != nil {
		return
	}
	if spec, stolen := a.stealing[f.Dst]; stolen {
		a.handleStolen(f, pkt, spec)
		return
	}
	if f.Dst != a.MAC() {
		return // overheard, not intercepted
	}
	if pkt.Dst == a.ip {
		return // genuinely ours
	}
	a.stats.Sniffed += uint64(len(pkt.Payload))
	if a.blackhole[pkt.Dst] {
		a.stats.Dropped++
		return
	}
	if spec, ok := a.relaying[relayKey{srcIP: pkt.Src, dstIP: pkt.Dst}]; ok {
		a.stats.Relayed++
		out := f.Clone()
		out.Dst = spec.dstMAC
		out.Src = a.MAC()
		a.send(out)
	}
}

// handleStolen processes one frame diverted by a stolen CAM slot: sniff
// it, then (with restore enabled) hand the port back to the victim via a
// provoked genuine reply, replay the frame, and re-steal.
func (a *Attacker) handleStolen(f *frame.Frame, pkt *ipv4pkt.Packet, spec stealSpec) {
	a.stats.Sniffed += uint64(len(pkt.Payload))
	if !spec.restore {
		a.stats.Dropped++
		return
	}
	victimMAC := f.Dst
	// Suspend stealing for this cycle so our own replay is not
	// re-intercepted if it loops back before the CAM is restored.
	delete(a.stealing, victimMAC)
	// Provoke the victim into answering: its genuine reply re-teaches the
	// switch where it really lives.
	req := arppkt.NewRequest(a.MAC(), a.ip, spec.victimIP)
	a.sendARP(req, ethaddr.BroadcastMAC, a.MAC())
	held := f.Clone()
	a.sched.After(2*time.Millisecond, func() {
		a.stats.Relayed++
		a.send(held)
	})
	a.sched.After(4*time.Millisecond, func() {
		a.stealing[victimMAC] = spec
		a.stats.Forged++
		a.send(&frame.Frame{Dst: a.MAC(), Src: victimMAC, Type: frame.TypeIPv4})
	})
}
