package attack

import (
	"repro/internal/dhcp"
	"repro/internal/ethaddr"
	"repro/internal/frame"
	"repro/internal/ipv4pkt"
)

// RogueStats counts rogue-DHCP activity.
type RogueStats struct {
	OffersSent uint64
	AcksSent   uint64
}

// RogueDHCP is gateway hijacking one layer above ARP: the attacker races
// the legitimate DHCP server with its own offers, handing out valid
// addresses whose *router option* points at the attacker. Clients then
// send every off-LAN packet to the attacker voluntarily — no ARP forgery,
// no cache touched — which is why the analysis insists the DHCP plane
// (snooping with trusted server ports) must be secured before DAI's
// binding table can be trusted at all.
type RogueDHCP struct {
	attacker *Attacker
	pool     []ethaddr.IPv4
	next     int
	stats    RogueStats
}

// StartRogueDHCP arms the rogue server on the attacker. Offers come from
// poolStart with poolSize sequential addresses; the router option is the
// attacker itself.
func (a *Attacker) StartRogueDHCP(subnet ethaddr.Subnet, poolStart, poolSize int) *RogueDHCP {
	r := &RogueDHCP{attacker: a}
	for i := 0; i < poolSize; i++ {
		r.pool = append(r.pool, subnet.Host(poolStart+i))
	}
	a.onFrame = append(a.onFrame, r.handleFrame)
	return r
}

// Stats returns a copy of the rogue counters.
func (r *RogueDHCP) Stats() RogueStats { return r.stats }

// handleFrame watches for client DHCP traffic and races the real server.
func (r *RogueDHCP) handleFrame(f *frame.Frame) {
	if f.Type != frame.TypeIPv4 {
		return
	}
	pkt, err := ipv4pkt.Decode(f.Payload)
	if err != nil || pkt.Proto != ipv4pkt.ProtoUDP {
		return
	}
	udp, err := ipv4pkt.DecodeUDP(pkt.Payload)
	if err != nil || udp.DstPort != dhcp.ServerPort {
		return
	}
	m, err := dhcp.Decode(udp.Payload)
	if err != nil {
		return
	}
	switch m.Type {
	case dhcp.Discover:
		r.offer(m)
	case dhcp.Request:
		r.ack(m)
	}
}

// offer answers a DISCOVER with a poisoned-router offer.
func (r *RogueDHCP) offer(m *dhcp.Message) {
	if r.next >= len(r.pool) {
		return
	}
	resp := &dhcp.Message{
		Type:       dhcp.Offer,
		XID:        m.XID,
		ClientMAC:  m.ClientMAC,
		YourIP:     r.pool[r.next],
		ServerID:   r.attacker.IP(),
		Router:     r.attacker.IP(), // the hijack
		SubnetMask: ethaddr.IPv4{255, 255, 255, 0},
		LeaseSecs:  600,
	}
	r.stats.OffersSent++
	r.send(m.ClientMAC, resp)
}

// ack confirms a REQUEST naming us as the server.
func (r *RogueDHCP) ack(m *dhcp.Message) {
	if m.ServerID != r.attacker.IP() {
		return // the client chose the genuine server
	}
	if r.next < len(r.pool) && r.pool[r.next] == m.RequestedIP {
		r.next++
	}
	resp := &dhcp.Message{
		Type:       dhcp.Ack,
		XID:        m.XID,
		ClientMAC:  m.ClientMAC,
		YourIP:     m.RequestedIP,
		ServerID:   r.attacker.IP(),
		Router:     r.attacker.IP(),
		SubnetMask: ethaddr.IPv4{255, 255, 255, 0},
		LeaseSecs:  600,
	}
	r.stats.AcksSent++
	r.send(m.ClientMAC, resp)
}

// send emits a server-to-client DHCP message as a raw frame.
func (r *RogueDHCP) send(clientMAC ethaddr.MAC, m *dhcp.Message) {
	udp := &ipv4pkt.UDP{SrcPort: dhcp.ServerPort, DstPort: dhcp.ClientPort, Payload: m.Encode()}
	pkt := &ipv4pkt.Packet{
		TTL: 64, Proto: ipv4pkt.ProtoUDP,
		Src: r.attacker.IP(), Dst: ethaddr.BroadcastIPv4,
		Payload: udp.Encode(),
	}
	r.attacker.send(&frame.Frame{
		Dst: clientMAC, Src: r.attacker.MAC(),
		Type: frame.TypeIPv4, Payload: pkt.Encode(),
	})
}
