// Package dhcp implements a minimal but wire-faithful DHCP (RFC 2131)
// server and client over the simulated stack. The framework needs it for
// two reasons drawn from the paper's analysis: Dynamic ARP Inspection
// derives its trusted IP↔MAC binding table from DHCP snooping, and dynamic
// address churn is the main source of false positives for passive ARP
// monitors, so the evaluation must be able to generate it realistically.
package dhcp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/ethaddr"
)

// UDP ports used by the protocol.
const (
	ServerPort = 67
	ClientPort = 68
)

// MsgType is the DHCP message type (option 53).
type MsgType uint8

// Message types used by the framework.
const (
	Discover MsgType = 1
	Offer    MsgType = 2
	Request  MsgType = 3
	Ack      MsgType = 5
	Nak      MsgType = 6
	Release  MsgType = 7
)

// String returns the conventional message-type name.
func (t MsgType) String() string {
	switch t {
	case Discover:
		return "DISCOVER"
	case Offer:
		return "OFFER"
	case Request:
		return "REQUEST"
	case Ack:
		return "ACK"
	case Nak:
		return "NAK"
	case Release:
		return "RELEASE"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// BOOTP operation codes.
const (
	opRequest = 1
	opReply   = 2
)

// Option codes used by the framework.
const (
	optSubnetMask  = 1
	optRouter      = 3
	optRequestedIP = 50
	optLeaseTime   = 51
	optMsgType     = 53
	optServerID    = 54
	optEnd         = 255
)

// headerLen is the fixed BOOTP header size preceding the magic cookie.
const headerLen = 236

var magicCookie = [4]byte{99, 130, 83, 99}

// Errors returned by Decode.
var (
	ErrTruncated = errors.New("dhcp message truncated")
	ErrBadMagic  = errors.New("dhcp magic cookie missing")
)

// Message is a decoded DHCP message, carrying only the fields the framework
// uses; unknown options are ignored on decode.
type Message struct {
	Type        MsgType
	XID         uint32
	ClientMAC   ethaddr.MAC
	ClientIP    ethaddr.IPv4 // ciaddr
	YourIP      ethaddr.IPv4 // yiaddr
	ServerID    ethaddr.IPv4
	RequestedIP ethaddr.IPv4
	Router      ethaddr.IPv4
	SubnetMask  ethaddr.IPv4
	LeaseSecs   uint32
}

// Encode serializes the message in BOOTP/DHCP wire format.
func (m *Message) Encode() []byte {
	buf := make([]byte, headerLen, headerLen+64)
	op := byte(opRequest)
	if m.Type == Offer || m.Type == Ack || m.Type == Nak {
		op = opReply
	}
	buf[0] = op
	buf[1] = 1 // htype ethernet
	buf[2] = 6 // hlen
	binary.BigEndian.PutUint32(buf[4:8], m.XID)
	copy(buf[12:16], m.ClientIP[:])
	copy(buf[16:20], m.YourIP[:])
	copy(buf[28:34], m.ClientMAC[:])
	buf = append(buf, magicCookie[:]...)
	buf = append(buf, optMsgType, 1, byte(m.Type))
	appendIPOpt := func(code byte, ip ethaddr.IPv4) {
		if !ip.IsZero() {
			buf = append(buf, code, 4)
			buf = append(buf, ip[:]...)
		}
	}
	appendIPOpt(optServerID, m.ServerID)
	appendIPOpt(optRequestedIP, m.RequestedIP)
	appendIPOpt(optRouter, m.Router)
	appendIPOpt(optSubnetMask, m.SubnetMask)
	if m.LeaseSecs > 0 {
		buf = append(buf, optLeaseTime, 4)
		buf = binary.BigEndian.AppendUint32(buf, m.LeaseSecs)
	}
	buf = append(buf, optEnd)
	return buf
}

// Decode parses a wire-format DHCP message.
func Decode(buf []byte) (*Message, error) {
	if len(buf) < headerLen+4 {
		return nil, fmt.Errorf("%w: %d octets", ErrTruncated, len(buf))
	}
	if [4]byte(buf[headerLen:headerLen+4]) != magicCookie {
		return nil, ErrBadMagic
	}
	m := &Message{XID: binary.BigEndian.Uint32(buf[4:8])}
	copy(m.ClientIP[:], buf[12:16])
	copy(m.YourIP[:], buf[16:20])
	copy(m.ClientMAC[:], buf[28:34])
	opts := buf[headerLen+4:]
	for len(opts) > 0 {
		code := opts[0]
		if code == optEnd {
			break
		}
		if code == 0 { // pad
			opts = opts[1:]
			continue
		}
		if len(opts) < 2 {
			return nil, fmt.Errorf("%w: option header", ErrTruncated)
		}
		length := int(opts[1])
		if len(opts) < 2+length {
			return nil, fmt.Errorf("%w: option %d body", ErrTruncated, code)
		}
		body := opts[2 : 2+length]
		switch code {
		case optMsgType:
			if length >= 1 {
				m.Type = MsgType(body[0])
			}
		case optServerID:
			copy(m.ServerID[:], body)
		case optRequestedIP:
			copy(m.RequestedIP[:], body)
		case optRouter:
			copy(m.Router[:], body)
		case optSubnetMask:
			copy(m.SubnetMask[:], body)
		case optLeaseTime:
			if length >= 4 {
				m.LeaseSecs = binary.BigEndian.Uint32(body)
			}
		}
		opts = opts[2+length:]
	}
	if m.Type == 0 {
		return nil, errors.New("dhcp message missing type option")
	}
	return m, nil
}
