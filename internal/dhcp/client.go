package dhcp

import (
	"time"

	"repro/internal/ethaddr"
	"repro/internal/sim"
	"repro/internal/stack"
)

// ClientState is the DORA progression of a client.
type ClientState int

// Client states.
const (
	StateInit ClientState = iota + 1
	StateSelecting
	StateRequesting
	StateBound
)

// Client runs the DISCOVER/OFFER/REQUEST/ACK exchange for a host and
// installs the acquired address.
type Client struct {
	host    *stack.Host
	sched   *sim.Scheduler
	state   ClientState
	xid     uint32
	lease   Lease
	onBound func(Lease)
	timeout sim.Timer
}

// NewClient attaches a DHCP client to host. onBound (optional) fires every
// time an address is acquired.
func NewClient(s *sim.Scheduler, host *stack.Host, onBound func(Lease)) *Client {
	c := &Client{host: host, sched: s, state: StateInit, onBound: onBound}
	host.HandleUDP(ClientPort, c.handle)
	return c
}

// State returns the client's DORA state.
func (c *Client) State() ClientState { return c.state }

// Lease returns the current lease (zero before the first bind).
func (c *Client) Lease() Lease { return c.lease }

// Acquire starts (or restarts) the DORA exchange. If no offer arrives within
// the timeout the client retries discovery — the visible symptom of a
// starvation attack.
func (c *Client) Acquire() {
	c.state = StateSelecting
	c.xid = c.sched.Rand().Uint32()
	m := &Message{Type: Discover, XID: c.xid, ClientMAC: c.host.MAC()}
	c.broadcast(m)
	c.armRetry()
}

// ReleaseAddress sends a RELEASE and forgets the lease.
func (c *Client) ReleaseAddress() {
	if c.state != StateBound {
		return
	}
	m := &Message{Type: Release, XID: c.xid, ClientMAC: c.host.MAC(), ClientIP: c.lease.IP}
	c.broadcast(m)
	c.state = StateInit
	c.host.SetIP(ethaddr.ZeroIPv4)
}

// armRetry restarts discovery if the exchange stalls.
func (c *Client) armRetry() {
	c.timeout.Stop()
	c.timeout = c.sched.After(4*time.Second, func() {
		if c.state == StateSelecting || c.state == StateRequesting {
			c.Acquire()
		}
	})
}

// handle processes one server message.
func (c *Client) handle(src ethaddr.IPv4, srcPort uint16, payload []byte) {
	m, err := Decode(payload)
	if err != nil || m.XID != c.xid || m.ClientMAC != c.host.MAC() {
		return
	}
	switch m.Type {
	case Offer:
		if c.state != StateSelecting {
			return
		}
		c.state = StateRequesting
		req := &Message{
			Type:        Request,
			XID:         c.xid,
			ClientMAC:   c.host.MAC(),
			RequestedIP: m.YourIP,
			ServerID:    m.ServerID,
		}
		c.broadcast(req)
		c.armRetry()
	case Ack:
		if c.state != StateRequesting {
			return
		}
		c.timeout.Stop()
		c.state = StateBound
		c.lease = Lease{
			IP:      m.YourIP,
			MAC:     c.host.MAC(),
			Expires: c.sched.Now() + time.Duration(m.LeaseSecs)*time.Second,
		}
		c.host.SetIP(m.YourIP)
		if c.onBound != nil {
			c.onBound(c.lease)
		}
	case Nak:
		// A NAK matters only mid-transaction; once bound, a late NAK from
		// a losing server must not unseat the committed lease.
		if c.state != StateRequesting {
			return
		}
		c.state = StateInit
		c.Acquire()
	}
}

// broadcast sends a client message as an Ethernet broadcast from the
// unspecified address.
func (c *Client) broadcast(m *Message) {
	c.host.SendUDPTo(ethaddr.BroadcastMAC, ethaddr.BroadcastIPv4, ClientPort, ServerPort, m.Encode())
}
