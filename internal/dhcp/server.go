package dhcp

import (
	"time"

	"repro/internal/ethaddr"
	"repro/internal/sim"
	"repro/internal/stack"
)

// Lease records one address assignment.
type Lease struct {
	IP      ethaddr.IPv4
	MAC     ethaddr.MAC
	Expires time.Duration
}

// ServerStats counts protocol activity and the pool state the starvation
// experiments watch.
type ServerStats struct {
	Discovers, Offers, Requests, Acks, Naks, Releases uint64
	PoolExhausted                                     uint64 // discovers refused for lack of addresses
	DroppedWhileDown                                  uint64 // messages ignored during an outage window
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithLeaseTime sets the lease duration granted to clients (default 10min).
func WithLeaseTime(d time.Duration) ServerOption {
	return func(sv *Server) { sv.leaseTime = d }
}

// WithOnLease registers a callback fired on every ACK; DHCP snooping tables
// are built from exactly this stream.
func WithOnLease(fn func(Lease)) ServerOption {
	return func(sv *Server) { sv.onLease = fn }
}

// WithOnRelease registers a callback fired when a client releases or a
// lease expires.
func WithOnRelease(fn func(Lease)) ServerOption {
	return func(sv *Server) { sv.onRelease = fn }
}

// Server is a DHCP server bound to a host. Addresses are handed out from a
// contiguous pool inside the subnet; freed addresses are reused
// first-returned-first, which maximizes IP↔MAC churn — deliberately, since
// that churn is what stresses passive detection schemes.
type Server struct {
	host      *stack.Host
	sched     *sim.Scheduler
	subnet    ethaddr.Subnet
	router    ethaddr.IPv4
	leaseTime time.Duration
	onLease   func(Lease)
	onRelease func(Lease)

	free    []ethaddr.IPv4 // allocation queue
	byMAC   map[ethaddr.MAC]Lease
	byIP    map[ethaddr.IPv4]Lease
	offered map[ethaddr.MAC]ethaddr.IPv4
	down    bool
	stats   ServerStats
}

// NewServer creates a server on host handing out poolSize addresses starting
// at the subnet's firstHost index.
func NewServer(s *sim.Scheduler, host *stack.Host, subnet ethaddr.Subnet, router ethaddr.IPv4, firstHost, poolSize int, opts ...ServerOption) *Server {
	sv := &Server{
		host:      host,
		sched:     s,
		subnet:    subnet,
		router:    router,
		leaseTime: 10 * time.Minute,
		byMAC:     make(map[ethaddr.MAC]Lease),
		byIP:      make(map[ethaddr.IPv4]Lease),
		offered:   make(map[ethaddr.MAC]ethaddr.IPv4),
	}
	for _, opt := range opts {
		opt(sv)
	}
	sv.free = make([]ethaddr.IPv4, 0, poolSize)
	for i := 0; i < poolSize; i++ {
		sv.free = append(sv.free, subnet.Host(firstHost+i))
	}
	host.HandleUDP(ServerPort, sv.handle)
	return sv
}

// Stats returns a copy of the counters.
func (sv *Server) Stats() ServerStats { return sv.stats }

// SetDown starts or ends a service outage. While down the server ignores
// every client message — the observable behaviour of a crashed or
// partitioned DHCP server. Leases keep expiring on schedule, so a long
// enough outage leaves snooping-derived binding tables (DAI) stale: the
// failure mode the robustness experiments measure. Fault plans use this as
// the dhcp-outage hook.
func (sv *Server) SetDown(v bool) { sv.down = v }

// Down reports whether the server is in an outage window.
func (sv *Server) Down() bool { return sv.down }

// FreeCount returns the number of unallocated pool addresses.
func (sv *Server) FreeCount() int { return len(sv.free) }

// Leases returns a snapshot of active leases.
func (sv *Server) Leases() []Lease {
	out := make([]Lease, 0, len(sv.byMAC))
	now := sv.sched.Now()
	for _, l := range sv.byMAC {
		if l.Expires > now {
			out = append(out, l)
		}
	}
	return out
}

// handle processes one client message.
func (sv *Server) handle(src ethaddr.IPv4, srcPort uint16, payload []byte) {
	m, err := Decode(payload)
	if err != nil {
		return
	}
	if sv.down {
		sv.stats.DroppedWhileDown++
		return
	}
	switch m.Type {
	case Discover:
		sv.handleDiscover(m)
	case Request:
		sv.handleRequest(m)
	case Release:
		sv.handleRelease(m)
	}
}

// handleDiscover offers an address, preferring the client's existing lease.
func (sv *Server) handleDiscover(m *Message) {
	sv.stats.Discovers++
	ip, ok := sv.pickAddress(m.ClientMAC)
	if !ok {
		sv.stats.PoolExhausted++
		return // silence: the client will retry and eventually starve
	}
	sv.offered[m.ClientMAC] = ip
	sv.stats.Offers++
	sv.reply(m, Offer, ip)
}

// handleRequest acknowledges a valid request or NAKs a stale one.
func (sv *Server) handleRequest(m *Message) {
	sv.stats.Requests++
	want := m.RequestedIP
	if want.IsZero() {
		want = m.ClientIP
	}
	offered, wasOffered := sv.offered[m.ClientMAC]
	existing, hasLease := sv.byMAC[m.ClientMAC]
	valid := (wasOffered && offered == want) ||
		(hasLease && existing.IP == want && existing.Expires > sv.sched.Now())
	if !valid {
		sv.stats.Naks++
		sv.reply(m, Nak, ethaddr.ZeroIPv4)
		return
	}
	delete(sv.offered, m.ClientMAC)
	sv.commit(m.ClientMAC, want)
	sv.stats.Acks++
	sv.reply(m, Ack, want)
}

// handleRelease returns the address to the pool.
func (sv *Server) handleRelease(m *Message) {
	sv.stats.Releases++
	l, ok := sv.byMAC[m.ClientMAC]
	if !ok {
		return
	}
	sv.evict(l)
}

// pickAddress chooses an address for mac: its current lease, its standing
// offer, or the next free address.
func (sv *Server) pickAddress(mac ethaddr.MAC) (ethaddr.IPv4, bool) {
	if l, ok := sv.byMAC[mac]; ok && l.Expires > sv.sched.Now() {
		return l.IP, true
	}
	if ip, ok := sv.offered[mac]; ok {
		return ip, true
	}
	if len(sv.free) == 0 {
		return ethaddr.IPv4{}, false
	}
	ip := sv.free[0]
	sv.free = sv.free[1:]
	return ip, true
}

// commit installs or renews a lease and arms its expiry.
func (sv *Server) commit(mac ethaddr.MAC, ip ethaddr.IPv4) {
	if old, ok := sv.byMAC[mac]; ok && old.IP != ip {
		sv.evict(old)
	}
	l := Lease{IP: ip, MAC: mac, Expires: sv.sched.Now() + sv.leaseTime}
	sv.byMAC[mac] = l
	sv.byIP[ip] = l
	if sv.onLease != nil {
		sv.onLease(l)
	}
	sv.sched.At(l.Expires, func() {
		cur, ok := sv.byMAC[mac]
		if ok && cur.IP == ip && cur.Expires <= sv.sched.Now() {
			sv.evict(cur)
		}
	})
}

// evict frees a lease and returns its address to the back of the queue.
func (sv *Server) evict(l Lease) {
	delete(sv.byMAC, l.MAC)
	delete(sv.byIP, l.IP)
	sv.free = append(sv.free, l.IP)
	if sv.onRelease != nil {
		sv.onRelease(l)
	}
}

// reply sends a server message to the client as a broadcast frame (the
// client has no routable address yet).
func (sv *Server) reply(m *Message, t MsgType, ip ethaddr.IPv4) {
	out := &Message{
		Type:       t,
		XID:        m.XID,
		ClientMAC:  m.ClientMAC,
		YourIP:     ip,
		ServerID:   sv.host.IP(),
		Router:     sv.router,
		SubnetMask: ethaddr.IPv4{255, 255, 255, 0},
		LeaseSecs:  uint32(sv.leaseTime / time.Second),
	}
	sv.host.SendUDPTo(m.ClientMAC, ethaddr.BroadcastIPv4, ServerPort, ClientPort, out.Encode())
}
