package dhcp

import (
	"testing"
	"time"

	"repro/internal/ethaddr"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/stack"
)

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{
		Type:        Offer,
		XID:         0xdeadbeef,
		ClientMAC:   ethaddr.MustParseMAC("02:42:ac:00:00:01"),
		ClientIP:    ethaddr.MustParseIPv4("10.0.0.5"),
		YourIP:      ethaddr.MustParseIPv4("10.0.0.50"),
		ServerID:    ethaddr.MustParseIPv4("10.0.0.1"),
		RequestedIP: ethaddr.MustParseIPv4("10.0.0.50"),
		Router:      ethaddr.MustParseIPv4("10.0.0.254"),
		SubnetMask:  ethaddr.MustParseIPv4("255.255.255.0"),
		LeaseSecs:   600,
	}
	got, err := Decode(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *m {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, m)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(make([]byte, 100)); err == nil {
		t.Fatal("short message accepted")
	}
	wire := (&Message{Type: Discover, XID: 1}).Encode()
	wire[236] = 0 // break magic
	if _, err := Decode(wire); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Missing type option.
	noType := make([]byte, 240)
	copy(noType[236:], magicCookie[:])
	if _, err := Decode(noType); err == nil {
		t.Fatal("typeless message accepted")
	}
}

func TestMsgTypeString(t *testing.T) {
	names := map[MsgType]string{
		Discover: "DISCOVER", Offer: "OFFER", Request: "REQUEST",
		Ack: "ACK", Nak: "NAK", Release: "RELEASE", MsgType(9): "type(9)",
	}
	for mt, want := range names {
		if got := mt.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", mt, got, want)
		}
	}
}

// testNet wires a server host and n client hosts on one switch.
type testNet struct {
	s       *sim.Scheduler
	sw      *netsim.Switch
	server  *Server
	srvHost *stack.Host
	clients []*Client
	hosts   []*stack.Host
}

func newTestNet(t *testing.T, nClients, poolSize int, opts ...ServerOption) *testNet {
	t.Helper()
	s := sim.NewScheduler(1)
	sw := netsim.NewSwitch(s)
	subnet := ethaddr.MustParseSubnet("10.0.0.0/24")
	gen := ethaddr.NewGen(11)

	srvNIC := netsim.NewNIC(s, gen.SeqMAC())
	sw.AddPort().Attach(srvNIC)
	srvHost := stack.NewHost(s, "dhcp-server", srvNIC, subnet.Host(1))
	server := NewServer(s, srvHost, subnet, subnet.Host(254), 100, poolSize, opts...)

	tn := &testNet{s: s, sw: sw, server: server, srvHost: srvHost}
	for i := 0; i < nClients; i++ {
		nic := netsim.NewNIC(s, gen.SeqMAC())
		sw.AddPort().Attach(nic)
		h := stack.NewHost(s, "client", nic, ethaddr.ZeroIPv4)
		tn.hosts = append(tn.hosts, h)
		tn.clients = append(tn.clients, NewClient(s, h, nil))
	}
	return tn
}

func TestDORAAssignsAddress(t *testing.T) {
	tn := newTestNet(t, 1, 10)
	tn.clients[0].Acquire()
	if err := tn.s.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	c := tn.clients[0]
	if c.State() != StateBound {
		t.Fatalf("state = %v", c.State())
	}
	want := ethaddr.MustParseIPv4("10.0.0.100")
	if c.Lease().IP != want {
		t.Fatalf("lease IP = %v, want %v", c.Lease().IP, want)
	}
	if tn.hosts[0].IP() != want {
		t.Fatal("host IP not installed")
	}
	st := tn.server.Stats()
	if st.Discovers != 1 || st.Offers != 1 || st.Requests != 1 || st.Acks != 1 {
		t.Fatalf("server stats: %+v", st)
	}
}

func TestDistinctAddressesPerClient(t *testing.T) {
	tn := newTestNet(t, 5, 10)
	for _, c := range tn.clients {
		c.Acquire()
	}
	if err := tn.s.RunUntil(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	seen := make(map[ethaddr.IPv4]bool)
	for i, c := range tn.clients {
		if c.State() != StateBound {
			t.Fatalf("client %d not bound", i)
		}
		if seen[c.Lease().IP] {
			t.Fatalf("duplicate address %v", c.Lease().IP)
		}
		seen[c.Lease().IP] = true
	}
	if tn.server.FreeCount() != 5 {
		t.Fatalf("FreeCount = %d", tn.server.FreeCount())
	}
}

func TestPoolExhaustion(t *testing.T) {
	tn := newTestNet(t, 3, 2)
	for _, c := range tn.clients {
		c.Acquire()
	}
	// Run briefly: two bind, one starves (and keeps retrying).
	if err := tn.s.RunUntil(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	bound := 0
	for _, c := range tn.clients {
		if c.State() == StateBound {
			bound++
		}
	}
	if bound != 2 {
		t.Fatalf("bound = %d, want 2", bound)
	}
	if tn.server.Stats().PoolExhausted == 0 {
		t.Fatal("exhaustion not recorded")
	}
}

func TestOnLeaseCallbackFeedsSnooping(t *testing.T) {
	var leases []Lease
	tn := newTestNet(t, 2, 10, WithOnLease(func(l Lease) { leases = append(leases, l) }))
	for _, c := range tn.clients {
		c.Acquire()
	}
	if err := tn.s.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(leases) != 2 {
		t.Fatalf("lease callbacks = %d", len(leases))
	}
	for _, l := range leases {
		if l.IP.IsZero() || !l.MAC.IsUnicast() {
			t.Fatalf("bad lease %+v", l)
		}
	}
}

func TestReleaseReturnsAddressAndChurnsIt(t *testing.T) {
	var released []Lease
	tn := newTestNet(t, 2, 1, WithOnRelease(func(l Lease) { released = append(released, l) }))
	c0, c1 := tn.clients[0], tn.clients[1]

	c0.Acquire()
	if err := tn.s.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if c0.State() != StateBound {
		t.Fatal("c0 not bound")
	}
	ip := c0.Lease().IP

	// Release, then the second client acquires the same address with a
	// different MAC — the churn event that trips passive monitors.
	c0.ReleaseAddress()
	tn.s.After(time.Second, c1.Acquire)
	if err := tn.s.RunUntil(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(released) != 1 {
		t.Fatalf("release callbacks = %d", len(released))
	}
	if c1.State() != StateBound || c1.Lease().IP != ip {
		t.Fatalf("c1 lease = %+v, want reuse of %v", c1.Lease(), ip)
	}
	if c0.Lease().MAC == c1.Lease().MAC {
		t.Fatal("test requires distinct MACs")
	}
}

func TestLeaseExpiryFreesAddress(t *testing.T) {
	tn := newTestNet(t, 1, 1, WithLeaseTime(5*time.Second))
	tn.clients[0].Acquire()
	if err := tn.s.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if tn.server.FreeCount() != 0 {
		t.Fatal("address should be leased")
	}
	if err := tn.s.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if tn.server.FreeCount() != 1 {
		t.Fatal("expired lease not reclaimed")
	}
}

func TestRenewKeepsSameAddress(t *testing.T) {
	tn := newTestNet(t, 1, 5)
	c := tn.clients[0]
	c.Acquire()
	if err := tn.s.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	first := c.Lease().IP
	c.Acquire() // re-DORA, same MAC
	if err := tn.s.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if c.Lease().IP != first {
		t.Fatalf("renewal moved address: %v → %v", first, c.Lease().IP)
	}
}

func TestStarvationRetryBehaviour(t *testing.T) {
	// A starving client must keep emitting DISCOVERs.
	tn := newTestNet(t, 1, 0)
	tn.clients[0].Acquire()
	if err := tn.s.RunUntil(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if tn.server.Stats().Discovers < 3 {
		t.Fatalf("discovers = %d, want retries", tn.server.Stats().Discovers)
	}
	if tn.clients[0].State() == StateBound {
		t.Fatal("client bound with empty pool")
	}
}

func TestServerDownIgnoresAndCountsClients(t *testing.T) {
	tn := newTestNet(t, 1, 5)
	tn.server.SetDown(true)
	if !tn.server.Down() {
		t.Fatal("Down() false after SetDown(true)")
	}
	tn.clients[0].Acquire()
	if err := tn.s.RunUntil(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := tn.server.Stats()
	if st.Offers != 0 || st.Acks != 0 {
		t.Fatalf("downed server answered: %+v", st)
	}
	if st.DroppedWhileDown == 0 {
		t.Fatal("no client messages counted as dropped while down")
	}
	if tn.clients[0].State() == StateBound {
		t.Fatal("client bound against a downed server")
	}

	// Service restored: the client's retry loop must complete DORA.
	tn.server.SetDown(false)
	if err := tn.s.RunUntil(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if tn.clients[0].State() != StateBound {
		t.Fatalf("client state after restore = %v, want bound", tn.clients[0].State())
	}
}
