package dhcp

import (
	"testing"
	"testing/quick"
)

// TestDecodeNeverPanicsOnGarbage: the DHCP decoder parses frames any LAN
// station can send; it must be total.
func TestDecodeNeverPanicsOnGarbage(t *testing.T) {
	f := func(buf []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Decode(buf)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestDecodeNeverPanicsOnMutatedValid: bit-flipped valid messages must not
// panic either (option-walk edge cases live here).
func TestDecodeNeverPanicsOnMutatedValid(t *testing.T) {
	base := (&Message{Type: Ack, XID: 7, LeaseSecs: 600}).Encode()
	f := func(pos uint16, val byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		mutated := append([]byte(nil), base...)
		mutated[int(pos)%len(mutated)] = val
		_, _ = Decode(mutated)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
