// The topology-neutral deployment plane. Schemes, stacks, and fault plans
// used to care which world they ran in: registry deployment took a flat
// LAN's Env, faults.Apply took a flat LAN's FaultEnv, and the campus had
// its own duplicated arming paths. Site and Topology collapse the two
// worlds into one surface — a flat LAN is simply the one-site topology
// "lan 0", a campus is N sites plus a trunk mesh — so the scenario engine
// and the eval experiments deploy onto either through identical code.
package labnet

import (
	"time"

	"repro/internal/ethaddr"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/schemes"
	"repro/internal/schemes/registry"
	"repro/internal/telemetry"
)

// Site is one deployable segment of a topology: the LAN itself, its alert
// sink, the segment's edge router when routed (nil on flat LANs), and the
// telemetry registry (nil on uninstrumented shards — registries are not
// goroutine-safe, so only site 0 carries one). A Site renders the views
// registry.Deploy/DeployStack and faults.Apply consume.
type Site struct {
	Index     int
	LAN       *LAN
	Router    *netsim.RouterIface
	Sink      *schemes.Sink
	Telemetry *telemetry.Registry

	// Attacker identity for segments that don't host the station: campus
	// deployments whitelist the genuine binding fabric-wide so inline
	// schemes don't flag its legitimate cross-backbone traffic.
	attackerMAC    ethaddr.MAC
	attackerIP     ethaddr.IPv4
	remoteAttacker bool
}

// Env renders the segment as a scheme-deployment environment.
func (s *Site) Env() *registry.Env {
	env := s.LAN.Env(s.Sink, s.Telemetry)
	if s.remoteAttacker && s.LAN.Attacker == nil {
		env.AttackerMAC = s.attackerMAC
		env.AttackerIP = s.attackerIP
	}
	return env
}

// faultView renders the segment as one faults site.
func (s *Site) faultView() faults.SiteEnv {
	fe := s.LAN.FaultEnv()
	return faults.SiteEnv{
		Sched:  s.LAN.Sched,
		Links:  fe.Links,
		Switch: fe.Switch,
		Hosts:  fe.Hosts,
		Router: s.Router,
	}
}

// Topology is the deployment-neutral surface shared by flat LANs (via
// Single) and the routed Campus: an ordered site list, a fault environment
// covering every segment and trunk, and the run loop.
type Topology interface {
	Sites() []*Site
	FaultEnv() faults.Env
	Run(horizon time.Duration) error
}

// Single wraps a flat LAN as the one-site topology "lan 0". Hierarchical
// fault addresses like "lan:0/link:3" resolve to exactly the objects their
// bare-index spellings target, and scheme deployment lands on the LAN's
// single site.
type Single struct {
	LAN      *LAN
	Sink     *schemes.Sink
	Registry *telemetry.Registry
}

// Sites returns the LAN as site 0.
func (s *Single) Sites() []*Site {
	return []*Site{{Index: 0, LAN: s.LAN, Sink: s.Sink, Telemetry: s.Registry}}
}

// FaultEnv returns the LAN's flat fault environment (which faults.Apply
// treats as the implicit site 0), carrying the registry when instrumented.
func (s *Single) FaultEnv() faults.Env {
	env := s.LAN.FaultEnv()
	env.Registry = s.Registry
	return env
}

// Run drains the LAN to the horizon.
func (s *Single) Run(horizon time.Duration) error { return s.LAN.Run(horizon) }

var (
	_ Topology = (*Single)(nil)
	_ Topology = (*Campus)(nil)
)
