// Campus assembly: N access LANs behind a routed backbone, one LAN per
// shard of a sim.ShardedScheduler. Each LAN carries a handful of full
// stack.Host stations (the ones schemes, attackers, and probes interact
// with) plus a StationBank — a flyweight representing the LAN's bulk
// population in O(1) memory — so 10⁵–10⁶ hosts fit comfortably while the
// ARP traffic they generate, and their poisonability, stay real.
package labnet

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/arppkt"
	"repro/internal/ethaddr"
	"repro/internal/faults"
	"repro/internal/frame"
	"repro/internal/ipv4pkt"
	"repro/internal/netsim"
	"repro/internal/schemes"
	"repro/internal/schemes/registry"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/telemetry"
)

// CampusConfig describes the campus to assemble.
type CampusConfig struct {
	// Seed drives every stochastic choice; each LAN derives its own
	// decorrelated stream via sim.ShardSeed (default 1).
	Seed int64
	// LANs is the number of access LANs — and shards (default 4, max 250
	// from the 10.<lan>.0.0/16 addressing plan).
	LANs int
	// HostsPerLAN is the total station count per LAN, active + bank
	// (default 16).
	HostsPerLAN int
	// ActiveHostsPerLAN is how many of those are full stack.Host stations
	// (default 4, clamped to HostsPerLAN).
	ActiveHostsPerLAN int
	// TrunkLatency is the backbone one-way delay — the sharded engine's
	// lookahead bound (default 1ms).
	TrunkLatency time.Duration
	// Workers caps the shard worker pool (default: one per shard, which
	// ShardedScheduler clamps to the core count's practical ceiling).
	Workers int
	// Policy, CacheTTL, HostOptions, CAMCapacity mirror Config and apply
	// to every LAN.
	Policy      stack.Policy
	CacheTTL    time.Duration
	HostOptions []stack.Option
	CAMCapacity int
	// WithAttacker attaches an attacker station to exactly one LAN — the
	// evaluation convention: one compromised machine inside one segment.
	WithAttacker bool
	// AttackerLAN selects which segment hosts that station (default 0).
	AttackerLAN int
	// LANHostOptions appends per-LAN construction-time host options after
	// the shared HostOptions — how construction-only schemes (secure-arp
	// variants) deploy onto a subset of segments.
	LANHostOptions map[int][]stack.Option
	// BackgroundPeriod is the bank traffic tick (default 1s, 0 keeps the
	// default; negative disables background traffic).
	BackgroundPeriod time.Duration
	// BackgroundFanout is how many bank stations speak per tick (default 4).
	BackgroundFanout int
	// Telemetry, when non-nil, instruments LAN 0 and the sharded engine.
	// Only one LAN is instrumented because telemetry registries are not
	// goroutine-safe and shards run concurrently.
	Telemetry *telemetry.Registry
}

// CampusLAN is one access LAN of the campus: a full labnet LAN plus its
// router interface, flyweight bank, and per-LAN alert sink.
type CampusLAN struct {
	*LAN
	Index  int
	Router *netsim.RouterIface
	Bank   *StationBank
	// Sink collects this LAN's alerts; per-LAN because sinks are not
	// goroutine-safe across shards. MergedAlerts correlates them.
	Sink *schemes.Sink
}

// CampusTrunk is one backbone edge: the unidirectional trunk carrying
// LAN From's router traffic toward LAN To. Fault plans address it as
// "trunk:<from>-<to>".
type CampusTrunk struct {
	From, To int
	Trunk    *netsim.Trunk
}

// Campus is the assembled multi-LAN topology.
type Campus struct {
	Sharded *sim.ShardedScheduler
	LANs    []*CampusLAN
	// Trunks lists the backbone edges in deterministic (From, To) order —
	// the trunk-partition fault targets.
	Trunks []CampusTrunk
	cfg    CampusConfig
}

// CampusSubnet returns LAN i's prefix under the 10.<lan>.0.0/16 plan.
func CampusSubnet(i int) ethaddr.Subnet {
	return ethaddr.Subnet{Base: ethaddr.IPv4{10, byte(i), 0, 0}, Bits: 16}
}

// SizeCampus picks a (LANs, HostsPerLAN) split for a total host budget:
// LANs grow with the population up to 64 backbone ports, hosts-per-LAN
// absorb the rest.
func SizeCampus(totalHosts int) (lans, hostsPerLAN int) {
	if totalHosts < 1 {
		totalHosts = 1
	}
	lans = (totalHosts + 1023) / 1024
	if lans < 2 {
		lans = 2
	}
	if lans > 64 {
		lans = 64
	}
	hostsPerLAN = (totalHosts + lans - 1) / lans
	if hostsPerLAN < 1 {
		hostsPerLAN = 1
	}
	return lans, hostsPerLAN
}

// NewCampus assembles the campus per cfg.
func NewCampus(cfg CampusConfig) *Campus {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.LANs == 0 {
		cfg.LANs = 4
	}
	if cfg.LANs > 250 {
		panic(fmt.Sprintf("labnet: %d LANs exceeds the 10.<lan>.0.0/16 addressing plan", cfg.LANs))
	}
	if cfg.HostsPerLAN == 0 {
		cfg.HostsPerLAN = 16
	}
	if cfg.ActiveHostsPerLAN == 0 {
		cfg.ActiveHostsPerLAN = 4
	}
	if cfg.ActiveHostsPerLAN > cfg.HostsPerLAN {
		cfg.ActiveHostsPerLAN = cfg.HostsPerLAN
	}
	if cfg.TrunkLatency == 0 {
		cfg.TrunkLatency = time.Millisecond
	}
	if cfg.BackgroundPeriod == 0 {
		cfg.BackgroundPeriod = time.Second
	}
	if cfg.BackgroundFanout == 0 {
		cfg.BackgroundFanout = 4
	}
	if cfg.AttackerLAN < 0 || cfg.AttackerLAN >= cfg.LANs {
		panic(fmt.Sprintf("labnet: attacker LAN %d outside [0, %d)", cfg.AttackerLAN, cfg.LANs))
	}
	if cfg.CAMCapacity == 0 {
		// Room for every speaking station: actives, router, attacker, and
		// the bank MACs the background traffic rotates through.
		cfg.CAMCapacity = 4096
	}

	// Shard schedulers come from the trial pool (Recycle returns them), so
	// repeat campus builds — figure9 runs thousands — reuse the slab and
	// queue capacity grown by the first.
	shards := make([]*sim.Scheduler, cfg.LANs)
	for i := range shards {
		shards[i] = acquireScheduler(sim.ShardSeed(cfg.Seed, i))
	}
	ss := sim.NewShardedOf(shards)
	if cfg.Workers > 0 {
		ss.SetWorkers(cfg.Workers)
	}
	if cfg.Telemetry != nil {
		ss.Instrument(cfg.Telemetry)
	}
	c := &Campus{Sharded: ss, cfg: cfg}

	for i := 0; i < cfg.LANs; i++ {
		sh := ss.Shard(i)
		lanSeed := sim.ShardSeed(cfg.Seed, i)
		var reg *telemetry.Registry
		if i == 0 {
			reg = cfg.Telemetry
		}
		hostOpts := cfg.HostOptions
		if extra := cfg.LANHostOptions[i]; len(extra) > 0 {
			hostOpts = append(append([]stack.Option(nil), cfg.HostOptions...), extra...)
		}
		lan := New(Config{
			Seed:          lanSeed,
			Sched:         sh,
			Hosts:         cfg.ActiveHostsPerLAN,
			RouterGateway: true,
			Policy:        cfg.Policy,
			CacheTTL:      cfg.CacheTTL,
			Subnet:        CampusSubnet(i),
			WithAttacker:  cfg.WithAttacker && i == cfg.AttackerLAN,
			WithMonitor:   true,
			CAMCapacity:   cfg.CAMCapacity,
			HostOptions:   hostOpts,
			Telemetry:     reg,
		})
		rtrNIC := netsim.NewNIC(sh, lan.Gen.SeqMAC())
		lan.Switch.AddPort().Attach(rtrNIC)
		rtr := netsim.NewRouterIface(sh, fmt.Sprintf("rtr%d", i), rtrNIC,
			lan.Subnet.Host(254), lan.Subnet)
		cl := &CampusLAN{LAN: lan, Index: i, Router: rtr, Sink: schemes.NewSink()}
		bulk := cfg.HostsPerLAN - cfg.ActiveHostsPerLAN
		if bulk > 0 {
			cl.Bank = newStationBank(cl, bulk, rtr.MAC())
		}
		c.LANs = append(c.LANs, cl)
	}

	// Full trunk mesh: every interface routes every remote subnet directly.
	for i := 0; i < cfg.LANs; i++ {
		for j := 0; j < cfg.LANs; j++ {
			if i == j {
				continue
			}
			trunk := netsim.NewTrunk(ss.Link(i, j, cfg.TrunkLatency), c.LANs[j].Router)
			c.LANs[i].Router.AddRoute(c.LANs[j].Subnet, trunk)
			c.Trunks = append(c.Trunks, CampusTrunk{From: i, To: j, Trunk: trunk})
		}
	}

	if cfg.BackgroundPeriod > 0 {
		for _, cl := range c.LANs {
			if cl.Bank != nil {
				cl.Bank.startBackground(c, cfg.BackgroundPeriod, cfg.BackgroundFanout)
			}
		}
	}
	return c
}

// TotalHosts returns the campus population (active + bank stations).
func (c *Campus) TotalHosts() int {
	n := 0
	for _, cl := range c.LANs {
		n += len(cl.Hosts)
		if cl.Bank != nil {
			n += cl.Bank.Size()
		}
	}
	return n
}

// Run drains the campus to the horizon across all shards.
func (c *Campus) Run(horizon time.Duration) error { return c.Sharded.RunUntil(horizon) }

// Attacker returns the attacker's LAN (nil station without WithAttacker).
func (c *Campus) Attacker() *CampusLAN { return c.LANs[c.cfg.AttackerLAN] }

// AttackerLAN returns the index of the segment hosting the attacker.
func (c *Campus) AttackerLAN() int { return c.cfg.AttackerLAN }

// Sites renders the campus as the deployment plane's ordered site list:
// one per LAN, each carrying its router, sink, and (site 0 only) the
// telemetry registry. The attacker's identity rides along to every remote
// segment so inline schemes can whitelist the genuine binding when its
// traffic crosses the backbone.
func (c *Campus) Sites() []*Site {
	out := make([]*Site, len(c.LANs))
	for i, cl := range c.LANs {
		s := &Site{Index: i, LAN: cl.LAN, Router: cl.Router, Sink: cl.Sink}
		if i == 0 {
			s.Telemetry = c.cfg.Telemetry
		}
		if c.cfg.WithAttacker {
			atk := c.LANs[c.cfg.AttackerLAN].Attacker
			s.attackerMAC = atk.MAC()
			s.attackerIP = atk.IP()
			s.remoteAttacker = true
		}
		out[i] = s
	}
	return out
}

// FaultEnv renders the campus for faults.Apply: one site view per LAN
// (each armed on its own shard) and one trunk view per backbone edge
// (armed on the sending LAN's shard, which owns the partition flag).
func (c *Campus) FaultEnv() faults.Env {
	env := faults.Env{Sched: c.LANs[0].Sched, Registry: c.cfg.Telemetry}
	for _, s := range c.Sites() {
		env.Sites = append(env.Sites, s.faultView())
	}
	for _, t := range c.Trunks {
		env.Trunks = append(env.Trunks, faults.TrunkEnv{
			From: t.From, To: t.To, Sched: c.LANs[t.From].Sched, Trunk: t.Trunk,
		})
	}
	return env
}

// Deploy installs a registry scheme on every LAN, each instance reporting
// into its LAN's sink. Per-LAN cost schemes (appliances, switch features)
// deploy once per segment exactly as the paper's cost taxonomy prices
// them; per-host schemes touch each LAN's active stations.
func (c *Campus) Deploy(name string, params any) ([]*registry.Instance, error) {
	insts := make([]*registry.Instance, 0, len(c.LANs))
	for _, s := range c.Sites() {
		inst, err := registry.Deploy(s.Env(), name, params)
		if err != nil {
			return nil, fmt.Errorf("lan %d: %w", s.Index, err)
		}
		insts = append(insts, inst)
	}
	return insts, nil
}

// DeployStack installs an a+b+c stack on every LAN, one correlated
// StackInstance per segment reporting into that segment's sink.
func (c *Campus) DeployStack(st registry.Stack) ([]*registry.StackInstance, error) {
	insts := make([]*registry.StackInstance, 0, len(c.LANs))
	for _, s := range c.Sites() {
		inst, err := registry.DeployStack(s.Env(), st)
		if err != nil {
			return nil, fmt.Errorf("lan %d: %w", s.Index, err)
		}
		insts = append(insts, inst)
	}
	return insts, nil
}

// CampusAlert is one alert correlated into the campus-wide view.
type CampusAlert struct {
	schemes.Alert
	LAN int
}

// MergedAlerts correlates the per-LAN sinks into one deterministically
// ordered stream: by time, then LAN index, then per-sink arrival order.
func (c *Campus) MergedAlerts() []CampusAlert {
	var out []CampusAlert
	for _, cl := range c.LANs {
		for _, a := range cl.Sink.Alerts() {
			out = append(out, CampusAlert{Alert: a, LAN: cl.Index})
		}
	}
	// Per-sink order is already time-sorted within a LAN; a stable merge by
	// (At, LAN) keeps arrival order as the tiebreak.
	sortAlerts(out)
	return out
}

func sortAlerts(out []CampusAlert) {
	// Insertion sort is stable and the alert volume is small; avoids
	// importing sort.SliceStable's reflection cost in the hot path.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := &out[j-1], &out[j]
			if a.At < b.At || (a.At == b.At && a.LAN <= b.LAN) {
				break
			}
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
}

// PoisonedCount returns how many campus stations — active hosts, bank
// stations, and router interfaces — currently bind ip to mac.
func (c *Campus) PoisonedCount(ip ethaddr.IPv4, mac ethaddr.MAC) int {
	n := 0
	for _, cl := range c.LANs {
		for _, h := range cl.Hosts {
			if got, ok := h.Cache().Lookup(ip); ok && got == mac {
				n++
			}
		}
		if cl.Bank != nil && ip == cl.Router.IP() {
			n += cl.Bank.PoisonedCount(mac)
		}
		if got, ok := cl.Router.Lookup(ip); ok && got == mac {
			n++
		}
	}
	return n
}

// Frames returns the total frames the campus fabric has carried (forwarded
// + flooded across every switch) — figure9's throughput numerator.
func (c *Campus) Frames() uint64 {
	var n uint64
	for _, cl := range c.LANs {
		st := cl.Switch.Stats()
		n += st.Forwarded + st.Flooded
	}
	return n
}

// Recycle returns every LAN's shard scheduler to the trial pool after
// resetting its frame arena. The campus is dead afterwards.
func (c *Campus) Recycle() {
	for _, cl := range c.LANs {
		s := cl.Sched
		cl.Sched = nil
		if s == nil {
			continue
		}
		if a, ok := s.Scratch(sim.ScratchFrames).(*arppkt.Arena); ok {
			a.Reset()
		}
		schedPool.Put(s)
	}
}

// StationBank is the flyweight bulk population of one LAN: size stations
// share a single promiscuous NIC, deriving per-station MACs and IPs from
// their index instead of holding per-station structs. State is O(active
// overrides), not O(size): one bank-wide gateway binding models the shared
// fate of naive caches (a broadcast gratuitous repoints every station at
// once — the paper's mass-poisoning scenario), and a lazy override map
// carries the stations an attacker unicast-poisoned individually.
type StationBank struct {
	lan       *CampusLAN
	sched     *sim.Scheduler
	nic       *netsim.NIC
	size      int
	gwIP      ethaddr.IPv4
	gwMAC     ethaddr.MAC // every station's gateway binding, unless overridden
	trueGW    ethaddr.MAC
	rng       *rand.Rand
	stats     BankStats
	overrides map[int]ethaddr.MAC
}

// BankStats counts the bank's traffic.
type BankStats struct {
	Sent        uint64 // frames the bank put on the wire
	Delivered   uint64 // UDP datagrams delivered to a bank station
	ARPAnswered uint64 // who-has requests the bank answered
	Repointed   uint64 // bank-wide gateway rebinds (broadcast claims)
}

// bankIPBase offsets bank station IPs past the active hosts, the router,
// the attacker (.66), and the monitor (.250): station i lives at
// subnet.Host(bankIPBase+i), so a /16 holds ~64k of them.
const bankIPBase = 1024

func newStationBank(cl *CampusLAN, size int, gwMAC ethaddr.MAC) *StationBank {
	sh := cl.Sched
	b := &StationBank{
		lan:       cl,
		sched:     sh,
		nic:       netsim.NewNIC(sh, bankMAC(cl.Index, 0xFFFFFF)), // NIC's own MAC: reserved index
		size:      size,
		gwIP:      cl.Subnet.Host(254),
		gwMAC:     gwMAC,
		trueGW:    gwMAC,
		rng:       sh.DeriveRand(fmt.Sprintf("bank%d", cl.Index)),
		overrides: make(map[int]ethaddr.MAC),
	}
	cl.Switch.AddPort().Attach(b.nic)
	b.nic.SetPromiscuous(true)
	b.nic.SetHandler(b.handleFrame)
	return b
}

// bankMAC derives station i's locally administered MAC from (lan, index).
func bankMAC(lan, i int) ethaddr.MAC {
	return ethaddr.MAC{0x02, 0xB4, byte(lan), byte(i >> 16), byte(i >> 8), byte(i)}
}

// Size returns the station population.
func (b *StationBank) Size() int { return b.size }

// Stats returns a copy of the traffic counters.
func (b *StationBank) Stats() BankStats { return b.stats }

// MAC returns station i's hardware address.
func (b *StationBank) MAC(i int) ethaddr.MAC { return bankMAC(b.lan.Index, i) }

// IP returns station i's address.
func (b *StationBank) IP(i int) ethaddr.IPv4 { return b.lan.Subnet.Host(bankIPBase + i) }

// stationFor maps a bank IP back to its station index.
func (b *StationBank) stationFor(ip ethaddr.IPv4) (int, bool) {
	if !b.lan.Subnet.Contains(ip) {
		return 0, false
	}
	base := b.lan.Subnet.Host(bankIPBase)
	idx := int(ip[2]-base[2])<<8 + int(ip[3]) - int(base[3])
	if idx < 0 || idx >= b.size {
		return 0, false
	}
	return idx, true
}

// stationForMAC maps a bank MAC back to its station index.
func (b *StationBank) stationForMAC(mac ethaddr.MAC) (int, bool) {
	if mac[0] != 0x02 || mac[1] != 0xB4 || int(mac[2]) != b.lan.Index {
		return 0, false
	}
	idx := int(mac[3])<<16 | int(mac[4])<<8 | int(mac[5])
	if idx >= b.size {
		return 0, false
	}
	return idx, true
}

// GatewayMAC returns station i's effective gateway binding.
func (b *StationBank) GatewayMAC(i int) ethaddr.MAC {
	if m, ok := b.overrides[i]; ok {
		return m
	}
	return b.gwMAC
}

// PoisonedCount returns how many stations currently bind the gateway to mac.
func (b *StationBank) PoisonedCount(mac ethaddr.MAC) int {
	n := 0
	for _, m := range b.overrides {
		if m == mac {
			n++
		}
	}
	if b.gwMAC == mac {
		n += b.size - len(b.overrides)
	}
	return n
}

// handleFrame is the bank's shared receive path.
func (b *StationBank) handleFrame(f *frame.Frame) {
	switch f.Type {
	case frame.TypeARP:
		b.handleARP(f)
	case frame.TypeIPv4:
		if _, ok := b.stationForMAC(f.Dst); !ok && !f.Dst.IsBroadcast() {
			return
		}
		pkt, err := ipv4pkt.Decode(f.Payload)
		if err != nil || pkt.Proto != ipv4pkt.ProtoUDP {
			return
		}
		if _, ok := b.stationFor(pkt.Dst); ok {
			b.stats.Delivered++
		}
	}
}

// handleARP mimics a naive cache for the gateway binding and answers
// who-has for the bank's range.
func (b *StationBank) handleARP(f *frame.Frame) {
	p, err := arppkt.DecodeFrame(f)
	if err != nil {
		return
	}
	// Claims — replies and gratuitous announcements, not plain who-has
	// requests (whose sender happens to be the router resolving a station).
	// Broadcast claims rebind the whole bank (shared-fate naive caches);
	// unicast claims poison only the targeted station.
	if p.Op == arppkt.OpReply || p.IsGratuitous() {
		if sip, smac := p.Binding(); sip == b.gwIP && !smac.IsBroadcast() {
			if f.Dst.IsBroadcast() {
				if smac != b.gwMAC {
					b.gwMAC = smac
					b.overrides = make(map[int]ethaddr.MAC)
					b.stats.Repointed++
				}
			} else if idx, ok := b.stationForMAC(f.Dst); ok {
				b.overrides[idx] = smac
			}
		}
	}
	if p.Op != arppkt.OpRequest || p.IsGratuitous() {
		return
	}
	if idx, ok := b.stationFor(p.TargetIP); ok {
		b.stats.ARPAnswered++
		reply := arppkt.NewReply(b.MAC(idx), p.TargetIP, p.SenderMAC, p.SenderIP)
		b.send(&frame.Frame{
			Dst: p.SenderMAC, Src: b.MAC(idx), Type: frame.TypeARP,
			Payload: reply.Encode(),
		})
	}
}

func (b *StationBank) send(f *frame.Frame) {
	b.stats.Sent++
	b.nic.Send(f)
}

// startBackground runs the bank's traffic generator: every period, fanout
// sampled stations send a UDP datagram toward the gateway binding — the
// flows a gateway MITM intercepts — plus one cross-LAN flow to a remote
// bank and one gratuitous self-announcement keeping the fabric's CAM and
// ARP state warm.
func (b *StationBank) startBackground(c *Campus, period time.Duration, fanout int) {
	remote := c.LANs[(b.lan.Index+1)%len(c.LANs)]
	b.sched.Every(period, func() {
		for k := 0; k < fanout; k++ {
			i := b.rng.Intn(b.size)
			b.sendUDP(i, b.gwIP, b.GatewayMAC(i))
		}
		if remote != b.lan && remote.Bank != nil {
			i := b.rng.Intn(b.size)
			dst := remote.Bank.IP(b.rng.Intn(remote.Bank.Size()))
			b.sendUDP(i, dst, b.GatewayMAC(i))
		}
		i := b.rng.Intn(b.size)
		g := arppkt.NewGratuitousReply(b.MAC(i), b.IP(i))
		b.send(&frame.Frame{
			Dst: ethaddr.BroadcastMAC, Src: b.MAC(i), Type: frame.TypeARP,
			Payload: g.Encode(),
		})
	})
}

// sendUDP emits one background datagram from station i via the MAC it
// believes is the gateway (or directly, for on-LAN destinations the bank
// treats the same way — the interception measurement only cares about the
// frame's next hop).
func (b *StationBank) sendUDP(i int, dst ethaddr.IPv4, via ethaddr.MAC) {
	u := ipv4pkt.UDP{SrcPort: 40000, DstPort: 40000, Payload: bankPayload[:]}
	p := ipv4pkt.Packet{TTL: 64, Proto: ipv4pkt.ProtoUDP, Src: b.IP(i), Dst: dst, Payload: u.Encode()}
	b.send(&frame.Frame{Dst: via, Src: b.MAC(i), Type: frame.TypeIPv4, Payload: p.Encode()})
}

// bankPayload is the fixed background datagram body.
var bankPayload = [8]byte{'b', 'g', 't', 'r', 'a', 'f', 'f', 'c'}

// HostEquivalent reports the per-station cost the memory gate prices: the
// bank adds no per-station state beyond overrides actually in use.
func (b *StationBank) HostEquivalent() int { return b.size }
