// Package labnet assembles ready-made experimental LANs — a switch, a set
// of hosts, an attacker station, and a detector appliance on a mirror port —
// mirroring the physical workbench the detection literature evaluates on
// (attacker PC, victim PCs, home router, monitoring appliance). The
// evaluation harness, the examples, and the integration tests all build
// their scenarios through this package so topology details live in one
// place.
package labnet

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/arppkt"
	"repro/internal/attack"
	"repro/internal/ethaddr"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/telemetry"
)

// Config describes the LAN to assemble.
type Config struct {
	// Seed drives every stochastic choice (default 1).
	Seed int64
	// Sched, when non-nil, builds the LAN on this scheduler instead of one
	// from the trial pool — how the campus assembler places each access LAN
	// on its own shard. Externally owned schedulers are never pooled:
	// Recycle leaves them untouched. Seed still drives MAC generation and
	// should match the scheduler's seed for reproducibility.
	Sched *sim.Scheduler
	// Hosts is the number of regular stations (default 4). Host 0 plays
	// the gateway in gateway-centric scenarios.
	Hosts int
	// RouterGateway drops the gateway-station convention: host 0 becomes a
	// plain "host0" at .1 and the subnet's .254 gateway address is left for
	// a netsim.RouterIface to claim. Campus LANs set this — their gateway
	// is the router fabric, not a peer station.
	RouterGateway bool
	// Policy is applied to every host's ARP cache (default naive).
	Policy stack.Policy
	// CacheTTL overrides the hosts' ARP entry lifetime (default 60s).
	CacheTTL time.Duration
	// Subnet is the LAN prefix (default 192.168.88.0/24, the workbench
	// router's network).
	Subnet ethaddr.Subnet
	// WithAttacker attaches an attacker station (default true).
	WithAttacker bool
	// WithMonitor attaches a promiscuous appliance host on a port that
	// mirrors all traffic (default true).
	WithMonitor bool
	// CAMCapacity bounds the switch CAM table (default 1024).
	CAMCapacity int
	// LinkLatency is the per-attachment one-way delay (default 50µs).
	LinkLatency time.Duration
	// LinkJitter adds a uniform random delay in [0, LinkJitter) per
	// transmission (default 0, fully deterministic timing).
	LinkJitter time.Duration
	// LinkLoss is the independent per-frame drop probability on every
	// attachment (default 0).
	LinkLoss float64
	// HostOptions is appended to every host's construction options.
	HostOptions []stack.Option
	// Telemetry, when non-nil, instruments the scheduler, the switch, and
	// every assembled host (including the monitor) against this registry.
	Telemetry *telemetry.Registry
	// Tracing enables causal span tracing (attack frame → cache overwrite →
	// alert trees). It requires Telemetry; the recorder is attached to the
	// scheduler before the fabric is assembled so every NIC, link, switch,
	// cache, and attacker picks it up at construction. Off by default: the
	// disabled path costs one nil check per hop and zero allocations.
	Tracing bool
	// TracingLimit bounds the recorder's span ring (causal.DefaultLimit
	// when zero) — the flight-recorder depth of "recent spans".
	TracingLimit int
}

// schedPool recycles schedulers across trials. Each trial builds a fresh
// LAN on a fresh-seeded scheduler; the event population and queue capacity
// a scheduler grows during one trial are exactly what the next trial needs,
// so Reset-and-reuse removes the dominant per-trial setup allocations.
var schedPool sync.Pool

// acquireScheduler takes a recycled scheduler from the pool (reset for the
// seed) or constructs a new one.
func acquireScheduler(seed int64) *sim.Scheduler {
	if s, ok := schedPool.Get().(*sim.Scheduler); ok {
		s.Reset(seed)
		return s
	}
	return sim.NewScheduler(seed)
}

// Recycle returns the LAN's scheduler to the trial pool. Call it (typically
// deferred) once the trial is finished with the LAN and every component
// built on it — afterwards the scheduler may restart at any moment under a
// different seed.
func (l *LAN) Recycle() {
	if l.Sched == nil || l.external {
		return
	}
	// The trial's ARP frames all came from the scheduler's arena and nothing
	// the trial returned can reference them (alerts, latencies and traces
	// carry values, not frame pointers) — reclaim them wholesale so the next
	// trial rewrites the same slabs.
	if a, ok := l.Sched.Scratch(sim.ScratchFrames).(*arppkt.Arena); ok {
		a.Reset()
	}
	schedPool.Put(l.Sched)
	l.Sched = nil
}

// LAN is the assembled environment.
type LAN struct {
	Sched    *sim.Scheduler
	Switch   *netsim.Switch
	Subnet   ethaddr.Subnet
	Hosts    []*stack.Host
	Ports    []*netsim.Port // port of each host, same index
	Links    []*netsim.Link // link of each host, same index
	Attacker *attack.Attacker
	AtkPort  *netsim.Port
	AtkLink  *netsim.Link
	// Monitor is the appliance host on the mirror port (promiscuous). Its
	// traffic reaches the LAN normally, so active schemes can probe.
	Monitor     *stack.Host
	MonitorPort *netsim.Port
	MonitorLink *netsim.Link
	Gen         *ethaddr.Gen
	// external marks a caller-owned scheduler (Config.Sched); Recycle must
	// not pool it.
	external bool
}

// New assembles a LAN per cfg.
func New(cfg Config) *LAN {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Hosts == 0 {
		cfg.Hosts = 4
	}
	if cfg.Policy == (stack.Policy{}) {
		cfg.Policy = stack.PolicyNaive
	}
	if cfg.Subnet == (ethaddr.Subnet{}) {
		cfg.Subnet = ethaddr.MustParseSubnet("192.168.88.0/24")
	}
	if cfg.CAMCapacity == 0 {
		cfg.CAMCapacity = 1024
	}
	if cfg.CacheTTL == 0 {
		cfg.CacheTTL = 60 * time.Second
	}
	if cfg.LinkLatency == 0 {
		cfg.LinkLatency = 50 * time.Microsecond
	}

	s := cfg.Sched
	if s == nil {
		s = acquireScheduler(cfg.Seed)
	}
	if cfg.Telemetry != nil {
		s.Instrument(cfg.Telemetry)
		if cfg.Tracing {
			// Attach the recorder before any fabric component exists:
			// NICs, links, the switch, caches, and the attacker all cache
			// causal.Of(scheduler) at construction time.
			s.SetTraceRecorder(cfg.Telemetry.EnableCausal(s, cfg.TracingLimit))
		}
	}
	sw := netsim.NewSwitch(s, netsim.WithCAMCapacity(cfg.CAMCapacity))
	l := &LAN{
		Sched:    s,
		Switch:   sw,
		Subnet:   cfg.Subnet,
		Gen:      ethaddr.NewGen(cfg.Seed),
		external: cfg.Sched != nil,
	}
	if cfg.Telemetry != nil {
		sw.Instrument(cfg.Telemetry)
	}

	opts := append([]stack.Option{
		stack.WithPolicy(cfg.Policy),
		stack.WithCacheTTL(cfg.CacheTTL),
		// Full-mesh seeding fills every cache with Hosts-1 peers (+ the
		// attacker and monitor); size the slot arrays once up front.
		stack.WithCacheCapacity(cfg.Hosts + 2),
	}, cfg.HostOptions...)

	link := []netsim.LinkOption{netsim.WithLatency(cfg.LinkLatency)}
	if cfg.LinkJitter > 0 {
		link = append(link, netsim.WithJitter(cfg.LinkJitter))
	}
	if cfg.LinkLoss > 0 {
		link = append(link, netsim.WithLoss(cfg.LinkLoss))
	}

	for i := 0; i < cfg.Hosts; i++ {
		name := fmt.Sprintf("host%d", i)
		ip := cfg.Subnet.Host(i + 1)
		if i == 0 && !cfg.RouterGateway {
			name = "gateway"
			ip = cfg.Subnet.Host(254)
		}
		nic := netsim.NewNIC(s, l.Gen.SeqMAC())
		port := sw.AddPort()
		hostLink := port.Attach(nic, link...)
		h := stack.NewHost(s, name, nic, ip, opts...)
		if cfg.Telemetry != nil {
			h.Instrument(cfg.Telemetry)
		}
		l.Hosts = append(l.Hosts, h)
		l.Ports = append(l.Ports, port)
		l.Links = append(l.Links, hostLink)
	}

	if cfg.WithAttacker {
		nic := netsim.NewNIC(s, l.Gen.SeqMAC())
		l.AtkPort = sw.AddPort()
		l.AtkLink = l.AtkPort.Attach(nic, link...)
		l.Attacker = attack.New(s, nic, cfg.Subnet.Host(66))
	}

	if cfg.WithMonitor {
		nic := netsim.NewNIC(s, l.Gen.SeqMAC())
		l.MonitorPort = sw.AddPort()
		l.MonitorLink = l.MonitorPort.Attach(nic, link...)
		l.Monitor = stack.NewHost(s, "monitor", nic, cfg.Subnet.Host(250), opts...)
		if cfg.Telemetry != nil {
			l.Monitor.Instrument(cfg.Telemetry)
		}
		nic.SetPromiscuous(true)
		sw.MirrorAllTo(l.MonitorPort)
	}
	return l
}

// Default assembles the standard four-host attack workbench.
func Default() *LAN { return New(Config{WithAttacker: true, WithMonitor: true}) }

// Gateway returns host 0, the station playing the router.
func (l *LAN) Gateway() *stack.Host { return l.Hosts[0] }

// Victim returns host 1, the conventional poisoning target.
func (l *LAN) Victim() *stack.Host { return l.Hosts[1] }

// Run drains the simulation until horizon.
func (l *LAN) Run(horizon time.Duration) error { return l.Sched.RunUntil(horizon) }

// SeedMutualCaches performs a full resolution mesh so every host knows
// every other before an experiment begins (many detection schemes need a
// pre-attack truth to compare against).
func (l *LAN) SeedMutualCaches() {
	for _, h := range l.Hosts {
		for _, peer := range l.Hosts {
			if h != peer {
				h.Resolve(peer.IP(), nil)
			}
		}
	}
}

// FaultEnv assembles the fault-injection environment for this LAN: link
// target i is host i's attachment (0 = gateway), with the monitor's link
// appended last when present, so faults degrade both the stations and the
// detector's own vantage point. The attacker's link is deliberately
// excluded — the attack is the experiments' ground truth, and degrading it
// would conflate "scheme got worse" with "attack got weaker". Callers add
// Registry and DHCP servers themselves.
func (l *LAN) FaultEnv() faults.Env {
	links := append([]*netsim.Link(nil), l.Links...)
	if l.MonitorLink != nil {
		links = append(links, l.MonitorLink)
	}
	return faults.Env{
		Sched:  l.Sched,
		Links:  links,
		Switch: l.Switch,
		Hosts:  l.Hosts,
	}
}

// PoisonedCount returns how many hosts currently bind ip to the attacker's
// MAC — the evaluation's ground-truth measure of attack success.
func (l *LAN) PoisonedCount(ip ethaddr.IPv4) int {
	if l.Attacker == nil {
		return 0
	}
	n := 0
	for _, h := range l.Hosts {
		if mac, ok := h.Cache().Lookup(ip); ok && mac == l.Attacker.MAC() {
			n++
		}
	}
	return n
}
