package labnet

import (
	"repro/internal/schemes"
	"repro/internal/schemes/registry"
	"repro/internal/telemetry"
)

// Env adapts the assembled LAN into a scheme-deployment environment for
// registry.Deploy / registry.DeployStack. The sink is required; reg may be
// nil. The attacker station's identity is carried over when present so
// switch-inline schemes can whitelist its genuine binding (forged claims
// still violate).
func (l *LAN) Env(sink *schemes.Sink, reg *telemetry.Registry) *registry.Env {
	env := &registry.Env{
		Sched:       l.Sched,
		Switch:      l.Switch,
		Hosts:       l.Hosts,
		Ports:       l.Ports,
		Monitor:     l.Monitor,
		MonitorPort: l.MonitorPort,
		Sink:        sink,
		Telemetry:   reg,
	}
	if l.Attacker != nil {
		env.AttackerMAC = l.Attacker.MAC()
		env.AttackerIP = l.Attacker.IP()
		env.AttackerPort = l.AtkPort
	}
	return env
}
