package labnet

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/ethaddr"
	"repro/internal/faults"
	"repro/internal/schemes"
	"repro/internal/schemes/registry"
	_ "repro/internal/schemes/registry/all"
)

// TestSingleTopologySites pins the flat LAN's one-site rendering: site 0
// carries the LAN, no router, and the same registry.Env the legacy path
// built directly.
func TestSingleTopologySites(t *testing.T) {
	l := New(Config{Seed: 2, Hosts: 4, WithAttacker: true, WithMonitor: true})
	sink := schemes.NewSink()
	top := &Single{LAN: l, Sink: sink}
	sites := top.Sites()
	if len(sites) != 1 || sites[0].Index != 0 || sites[0].Router != nil {
		t.Fatalf("flat topology sites = %+v", sites)
	}
	env := sites[0].Env()
	want := l.Env(sink, nil)
	if !reflect.DeepEqual(env, want) {
		t.Fatalf("site env diverged from LAN env:\n%+v\n%+v", env, want)
	}
	fe := top.FaultEnv()
	if len(fe.Sites) != 0 || len(fe.Trunks) != 0 || fe.Sched != l.Sched {
		t.Fatalf("flat fault env should be the implicit site 0: %+v", fe)
	}
}

// TestCampusFaultEnvShape checks the campus's faults view: one site per
// LAN with its own shard scheduler and router, one trunk per backbone edge.
func TestCampusFaultEnvShape(t *testing.T) {
	c := NewCampus(CampusConfig{Seed: 5, LANs: 3, HostsPerLAN: 8})
	fe := c.FaultEnv()
	if len(fe.Sites) != 3 {
		t.Fatalf("sites = %d, want 3", len(fe.Sites))
	}
	for i, s := range fe.Sites {
		if s.Sched != c.LANs[i].Sched {
			t.Errorf("site %d scheduler is not its LAN's shard", i)
		}
		if s.Router != c.LANs[i].Router {
			t.Errorf("site %d router mismatch", i)
		}
		if len(s.Links) == 0 || s.Switch == nil || len(s.Hosts) == 0 {
			t.Errorf("site %d view incomplete: %+v", i, s)
		}
	}
	if want := 3 * 2; len(fe.Trunks) != want {
		t.Fatalf("trunks = %d, want %d (full mesh)", len(fe.Trunks), want)
	}
	for _, tr := range fe.Trunks {
		if tr.Sched != c.LANs[tr.From].Sched {
			t.Errorf("trunk %d-%d armed off its source shard", tr.From, tr.To)
		}
	}
}

// TestCampusTrunkPartitionFault partitions one LAN off the backbone for a
// window and checks cross-LAN delivery stops, then resumes.
func TestCampusTrunkPartitionFault(t *testing.T) {
	run := func(plan *faults.Plan) (uint64, faults.Stats) {
		c := NewCampus(CampusConfig{Seed: 7, LANs: 3, HostsPerLAN: 40})
		var ctl *faults.Controller
		if plan != nil {
			var err error
			if ctl, err = faults.Apply(plan, c.FaultEnv()); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Run(20 * time.Second); err != nil {
			t.Fatal(err)
		}
		var st faults.Stats
		if ctl != nil {
			st = ctl.Stats()
		}
		var delivered uint64
		for _, cl := range c.LANs {
			delivered += cl.Bank.Stats().Delivered
		}
		return delivered, st
	}
	baseline, _ := run(nil)
	partitioned, st := run(&faults.Plan{Events: []faults.Event{{
		Type: faults.TypeTrunkPartition, AtSeconds: 2, DurationSeconds: 16, Trunk: "trunk:*",
	}}})
	if st.TrunkPartitions != 6 {
		t.Fatalf("TrunkPartitions = %d, want 6 windows (full mesh)", st.TrunkPartitions)
	}
	if st.TrunkDropped == 0 {
		t.Fatal("partitioned trunks dropped nothing")
	}
	if partitioned >= baseline {
		t.Fatalf("cross-LAN delivery unaffected by partition: %d >= %d", partitioned, baseline)
	}
}

// TestCampusRouterFlushFault clears one LAN's edge-router ARP table and
// checks the flush registered and traffic still flows afterwards.
func TestCampusRouterFlushFault(t *testing.T) {
	c := NewCampus(CampusConfig{Seed: 8, LANs: 2, HostsPerLAN: 30})
	ctl, err := faults.Apply(&faults.Plan{Events: []faults.Event{
		{Type: faults.TypeRouterFlush, AtSeconds: 10, Lan: "lan:1"},
	}}, c.FaultEnv())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := ctl.Stats()
	if st.RouterFlushes != 1 {
		t.Fatalf("RouterFlushes = %d, want 1", st.RouterFlushes)
	}
	if c.LANs[1].Bank.Stats().Delivered == 0 {
		t.Fatal("LAN 1 stopped receiving after the flush — router never re-resolved")
	}
}

// TestCampusAttackerPlacement puts the attacker on LAN 2 and poisons that
// segment's bank — attack arming must work from any site.
func TestCampusAttackerPlacement(t *testing.T) {
	c := NewCampus(CampusConfig{Seed: 9, LANs: 3, HostsPerLAN: 30, WithAttacker: true, AttackerLAN: 2})
	if c.LANs[0].Attacker != nil || c.LANs[1].Attacker != nil || c.LANs[2].Attacker == nil {
		t.Fatal("attacker should live on LAN 2 only")
	}
	if c.Attacker() != c.LANs[2] || c.AttackerLAN() != 2 {
		t.Fatal("Attacker accessor does not follow placement")
	}
	if _, err := c.Deploy(registry.NameArpwatch, json.RawMessage(`{"seedGateway": false}`)); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	lan2 := c.LANs[2]
	atk := lan2.Attacker
	gwIP := lan2.Router.IP()
	lan2.Sched.At(5*time.Second, func() {
		atk.Poison(attack.VariantGratuitous, gwIP, atk.MAC(), ethaddr.BroadcastMAC, ethaddr.IPv4{})
	})
	if err := c.Run(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := c.PoisonedCount(gwIP, atk.MAC()); got < lan2.Bank.Size() {
		t.Fatalf("PoisonedCount = %d, want at least LAN 2's %d bank stations", got, lan2.Bank.Size())
	}
	found := false
	for _, a := range c.MergedAlerts() {
		if a.LAN == 2 && a.IP == gwIP && a.NewMAC == atk.MAC() {
			found = true
		}
	}
	if !found {
		t.Fatal("no LAN-2 alert names the spoofed gateway")
	}
}

// TestCampusStackDeploy installs a two-scheme stack fabric-wide and checks
// each segment got its own correlated instance that still detects.
func TestCampusStackDeploy(t *testing.T) {
	st, err := registry.ParseStack(registry.NameArpwatch + "+" + registry.NameSnortLike)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCampus(CampusConfig{Seed: 12, LANs: 2, HostsPerLAN: 20, WithAttacker: true})
	insts, err := c.DeployStack(st)
	if err != nil {
		t.Fatalf("DeployStack: %v", err)
	}
	if len(insts) != 2 {
		t.Fatalf("instances = %d, want one per LAN", len(insts))
	}
	lan0 := c.LANs[0]
	atk := lan0.Attacker
	gwIP := lan0.Router.IP()
	lan0.Sched.At(3*time.Second, func() {
		atk.Poison(attack.VariantGratuitous, gwIP, atk.MAC(), ethaddr.BroadcastMAC, ethaddr.IPv4{})
	})
	if err := c.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	alerts := c.MergedAlerts()
	if len(alerts) == 0 {
		t.Fatal("stack raised no alerts")
	}
	if alerts[0].LAN != 0 || alerts[0].IP != gwIP {
		t.Fatalf("first alert should name LAN 0's spoofed gateway: %+v", alerts[0])
	}
}
