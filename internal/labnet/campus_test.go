package labnet

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/ethaddr"
	"repro/internal/schemes/registry"
	_ "repro/internal/schemes/registry/all"
	"repro/internal/sim"
)

// TestCampusAssembly checks the shape of a small campus: addressing plan,
// population accounting, and the trunk mesh actually carrying traffic.
func TestCampusAssembly(t *testing.T) {
	c := NewCampus(CampusConfig{Seed: 3, LANs: 3, HostsPerLAN: 100, WithAttacker: true})
	if got := c.TotalHosts(); got != 300 {
		t.Fatalf("TotalHosts = %d, want 300", got)
	}
	for i, cl := range c.LANs {
		if want := CampusSubnet(i); cl.Subnet != want {
			t.Errorf("lan %d subnet = %v, want %v", i, cl.Subnet, want)
		}
		if cl.Router.IP() != cl.Subnet.Host(254) {
			t.Errorf("lan %d router at %v, want .254", i, cl.Router.IP())
		}
		if cl.Hosts[0].IP() != cl.Subnet.Host(1) {
			t.Errorf("lan %d host0 at %v, want .1 (router owns the gateway address)",
				i, cl.Hosts[0].IP())
		}
		if cl.Bank == nil || cl.Bank.Size() != 96 {
			t.Errorf("lan %d bank missing or wrong size", i)
		}
	}
	if c.LANs[0].Attacker == nil || c.LANs[1].Attacker != nil {
		t.Fatal("attacker should live on LAN 0 only")
	}
	if err := c.Run(10 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if c.Sharded.CrossMessages() == 0 {
		t.Error("background traffic never crossed the backbone")
	}
	if c.Frames() == 0 {
		t.Error("fabric carried no frames")
	}
	for i, cl := range c.LANs {
		if cl.Bank.Stats().Sent == 0 {
			t.Errorf("lan %d bank sent nothing", i)
		}
		if cl.Bank.Stats().Delivered == 0 {
			t.Errorf("lan %d bank received no cross-LAN datagrams", i)
		}
	}
}

// TestCampusBankPoisoning: a broadcast gateway claim repoints every bank
// station at once (shared-fate naive caches); the census sees it, and the
// per-LAN arpwatch deployment raises correlated alerts.
func TestCampusBankPoisoning(t *testing.T) {
	c := NewCampus(CampusConfig{Seed: 4, LANs: 2, HostsPerLAN: 50, WithAttacker: true})
	if _, err := c.Deploy(registry.NameArpwatch, json.RawMessage(`{"seedGateway": false}`)); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	lan0 := c.LANs[0]
	atk := lan0.Attacker
	gwIP := lan0.Router.IP()
	lan0.Sched.At(5*time.Second, func() {
		atk.Poison(attack.VariantGratuitous, gwIP, atk.MAC(), ethaddr.BroadcastMAC, ethaddr.IPv4{})
	})
	if err := c.Run(15 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	poisoned := c.PoisonedCount(gwIP, atk.MAC())
	if want := lan0.Bank.Size(); poisoned < want {
		t.Fatalf("PoisonedCount = %d, want at least the %d bank stations", poisoned, want)
	}
	alerts := c.MergedAlerts()
	if len(alerts) == 0 {
		t.Fatal("arpwatch raised no alerts for the broadcast claim")
	}
	for i := 1; i < len(alerts); i++ {
		a, b := alerts[i-1], alerts[i]
		if a.At > b.At || (a.At == b.At && a.LAN > b.LAN) {
			t.Fatalf("MergedAlerts out of order at %d: %+v then %+v", i, a, b)
		}
	}
	found := false
	for _, a := range alerts {
		if a.LAN == 0 && a.IP == gwIP && a.NewMAC == atk.MAC() {
			found = true
		}
	}
	if !found {
		t.Fatalf("no LAN-0 alert names the spoofed gateway: %+v", alerts)
	}
}

// TestCampusUnicastBankPoison: a unicast claim poisons only the targeted
// bank station.
func TestCampusUnicastBankPoison(t *testing.T) {
	c := NewCampus(CampusConfig{Seed: 6, LANs: 2, HostsPerLAN: 40, WithAttacker: true})
	lan0 := c.LANs[0]
	atk, bank := lan0.Attacker, lan0.Bank
	gwIP := lan0.Router.IP()
	lan0.Sched.At(2*time.Second, func() {
		atk.Poison(attack.VariantUnsolicitedReply, gwIP, atk.MAC(), bank.MAC(7), bank.IP(7))
	})
	if err := c.Run(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := bank.PoisonedCount(atk.MAC()); got != 1 {
		t.Fatalf("bank PoisonedCount = %d, want exactly the one targeted station", got)
	}
	if got := bank.GatewayMAC(7); got != atk.MAC() {
		t.Fatalf("station 7 gateway = %v, want attacker %v", got, atk.MAC())
	}
	if got := bank.GatewayMAC(8); got == atk.MAC() {
		t.Fatal("unicast poison leaked to a neighbouring station")
	}
}

// campusTranscript runs a campus workload and serializes everything
// observable into one string for width-parity comparison.
func campusTranscript(t *testing.T, workers int) string {
	t.Helper()
	c := NewCampus(CampusConfig{
		Seed: 11, LANs: 4, HostsPerLAN: 64, Workers: workers, WithAttacker: true,
	})
	if _, err := c.Deploy(registry.NameArpwatch, json.RawMessage(`{"seedGateway": false}`)); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	lan0 := c.LANs[0]
	atk := lan0.Attacker
	gwIP := lan0.Router.IP()
	victim := lan0.Victim()
	lan0.Sched.At(7*time.Second, func() {
		atk.Poison(attack.VariantGratuitous, gwIP, atk.MAC(), victim.MAC(), victim.IP())
		atk.Poison(attack.VariantGratuitous, victim.IP(), atk.MAC(), ethaddr.BroadcastMAC, ethaddr.IPv4{})
	})
	if err := c.Run(20 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var b strings.Builder
	for _, a := range c.MergedAlerts() {
		fmt.Fprintf(&b, "%v lan%d %s %s %s %s->%s\n", a.At, a.LAN, a.Scheme, a.Kind, a.IP, a.OldMAC, a.NewMAC)
	}
	for i, cl := range c.LANs {
		fmt.Fprintf(&b, "lan%d now=%v exec=%d bank=%+v rtr=%+v sw=%d\n",
			i, cl.Sched.Now(), cl.Sched.Executed(), cl.Bank.Stats(), cl.Router.Stats(),
			cl.Switch.Stats().Forwarded)
	}
	fmt.Fprintf(&b, "cross=%d frames=%d poisoned=%d\n",
		c.Sharded.CrossMessages(), c.Frames(), c.PoisonedCount(gwIP, atk.MAC()))
	return b.String()
}

// TestCampusWidthParity: the full campus — banks, routers, schemes,
// attacks — is byte-identical at worker widths 1, 2, 8.
func TestCampusWidthParity(t *testing.T) {
	want := campusTranscript(t, 1)
	if !strings.Contains(want, "arpwatch") {
		t.Fatalf("no arpwatch alerts in the baseline transcript:\n%s", want)
	}
	for _, w := range []int{2, 8} {
		if got := campusTranscript(t, w); got != want {
			t.Fatalf("workers=%d transcript diverged\n--- w1:\n%s\n--- w%d:\n%s", w, want, w, got)
		}
	}
}

// TestCampusFootprintAllocFree is the bytes/host memory gate: campus
// memory must be dominated by per-LAN fixed cost, not per-station state.
// Two checks: (1) resident bytes per host at 10⁵ hosts stays under a hard
// budget; (2) growing a bank by thousands of stations adds only O(1)
// allocations. Wired into check.sh's alloc-gate leg.
func TestCampusFootprintAllocFree(t *testing.T) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	lans, perLAN := SizeCampus(100_000)
	c := NewCampus(CampusConfig{Seed: 9, LANs: lans, HostsPerLAN: perLAN, WithAttacker: true})
	runtime.GC()
	runtime.ReadMemStats(&after)
	hosts := c.TotalHosts()
	if hosts < 100_000 {
		t.Fatalf("campus undersized: %d hosts", hosts)
	}
	perHost := float64(after.HeapAlloc-before.HeapAlloc) / float64(hosts)
	t.Logf("campus footprint: %d hosts, %.1f bytes/host (%d LANs × %d hosts)",
		hosts, perHost, lans, perLAN)
	const budget = 512.0
	if perHost > budget {
		t.Fatalf("flyweight regression: %.1f bytes/host exceeds the %v-byte budget", perHost, budget)
	}
	runtime.KeepAlive(c)
	c.Recycle()

	// Marginal cost of bank population: +4032 stations may add only a
	// handful of allocations (the flyweight holds no per-station structs).
	allocsAt := func(hostsPerLAN int) float64 {
		return testing.AllocsPerRun(3, func() {
			cc := NewCampus(CampusConfig{Seed: 5, LANs: 2, HostsPerLAN: hostsPerLAN, BackgroundPeriod: -1})
			cc.Recycle()
		})
	}
	small := allocsAt(64)
	large := allocsAt(4096)
	t.Logf("construction allocs: %.0f @64 hosts/LAN, %.0f @4096 hosts/LAN", small, large)
	if large > small+16 {
		t.Fatalf("bank growth leaks per-station allocations: %.0f → %.0f", small, large)
	}
}

// TestCampusRecyclePoolsShards: recycled shard schedulers return to the
// trial pool and are reused by the next build.
func TestCampusRecyclePoolsShards(t *testing.T) {
	c := NewCampus(CampusConfig{Seed: 12, LANs: 2, HostsPerLAN: 8})
	if err := c.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	c.Recycle()
	for i, cl := range c.LANs {
		if cl.Sched != nil {
			t.Fatalf("lan %d scheduler not released", i)
		}
	}
	// An externally scheduled flat LAN must never enter the pool.
	sh := sim.NewScheduler(1)
	l := New(Config{Seed: 1, Sched: sh})
	l.Recycle()
	if l.Sched == nil {
		t.Fatal("Recycle cleared an externally owned scheduler")
	}
}
