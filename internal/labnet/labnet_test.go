package labnet

import (
	"testing"
	"time"

	"repro/internal/ethaddr"
	"repro/internal/stack"
)

func TestDefaultShape(t *testing.T) {
	l := Default()
	if len(l.Hosts) != 4 {
		t.Fatalf("hosts = %d", len(l.Hosts))
	}
	if l.Gateway().Name() != "gateway" || l.Victim().Name() != "host1" {
		t.Fatal("role naming")
	}
	if l.Attacker == nil || l.Monitor == nil {
		t.Fatal("attacker/monitor missing")
	}
	if l.Gateway().IP() != l.Subnet.Host(254) {
		t.Fatalf("gateway IP = %v", l.Gateway().IP())
	}
}

func TestSeedMutualCaches(t *testing.T) {
	l := New(Config{Hosts: 5, WithAttacker: false, WithMonitor: false})
	l.SeedMutualCaches()
	if err := l.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, h := range l.Hosts {
		if got := h.Cache().Len(); got != len(l.Hosts)-1 {
			t.Fatalf("%s cache = %d entries, want %d", h.Name(), got, len(l.Hosts)-1)
		}
	}
}

func TestPoisonedCount(t *testing.T) {
	l := Default()
	gw := l.Gateway()
	if l.PoisonedCount(gw.IP()) != 0 {
		t.Fatal("fresh LAN reports poisoning")
	}
	l.Attacker.Poison(1 /* gratuitous */, gw.IP(), l.Attacker.MAC(), l.Victim().MAC(), l.Victim().IP())
	if err := l.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	// Gratuitous broadcast poisons every naive host except the gateway
	// itself (address-conflict rule).
	if got := l.PoisonedCount(gw.IP()); got != len(l.Hosts)-1 {
		t.Fatalf("poisoned = %d, want %d", got, len(l.Hosts)-1)
	}
}

func TestResolutionSurvivesLossyLinks(t *testing.T) {
	// Failure injection: 30% frame loss. The resolver's retries must still
	// converge for most attempts.
	succeeded := 0
	const trials = 20
	for seed := int64(1); seed <= trials; seed++ {
		l := New(Config{
			Seed:         seed,
			Hosts:        2,
			WithAttacker: false,
			WithMonitor:  false,
			LinkLoss:     0.3,
			HostOptions:  []stack.Option{stack.WithResolveRetry(10, 200*time.Millisecond)},
		})
		ok := false
		l.Victim().Resolve(l.Gateway().IP(), func(_ ethaddr.MAC, good bool) { ok = good })
		if err := l.Run(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		if ok {
			succeeded++
		}
	}
	// Each attempt crosses four lossy hops (P ≈ 0.7⁴ ≈ 0.24); ten tries
	// put per-resolution success near 0.94.
	if succeeded < trials*3/4 {
		t.Fatalf("only %d/%d resolutions survived 30%% loss", succeeded, trials)
	}
}

func TestJitterChangesOrderingButNotCorrectness(t *testing.T) {
	l := New(Config{
		Hosts:       4,
		LinkJitter:  500 * time.Microsecond,
		WithMonitor: false,
	})
	l.SeedMutualCaches()
	if err := l.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, h := range l.Hosts {
		if h.Cache().Len() != len(l.Hosts)-1 {
			t.Fatalf("%s incomplete under jitter", h.Name())
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (uint64, int) {
		l := New(Config{Seed: 42, Hosts: 6, LinkJitter: time.Millisecond, WithAttacker: true})
		l.SeedMutualCaches()
		gw := l.Gateway()
		l.Attacker.PoisonPeriodically(time.Second, l.Victim().MAC(), l.Victim().IP(), gw.MAC(), gw.IP())
		_ = l.Run(30 * time.Second)
		return l.Sched.Executed(), l.PoisonedCount(gw.IP())
	}
	e1, p1 := run()
	e2, p2 := run()
	if e1 != e2 || p1 != p2 {
		t.Fatalf("identical seeds diverged: (%d,%d) vs (%d,%d)", e1, p1, e2, p2)
	}
}
