package netsim

import (
	"testing"
	"time"

	"repro/internal/arppkt"
	"repro/internal/ethaddr"
	"repro/internal/frame"
	"repro/internal/sim"
)

type station struct {
	nic *NIC
	got []*frame.Frame
}

// newLAN builds a switch with n stations attached and returns them.
func newLAN(t *testing.T, s *sim.Scheduler, sw *Switch, n int, opts ...LinkOption) []*station {
	t.Helper()
	gen := ethaddr.NewGen(99)
	stations := make([]*station, n)
	for i := range stations {
		st := &station{nic: NewNIC(s, gen.SeqMAC())}
		st.nic.SetHandler(func(f *frame.Frame) { st.got = append(st.got, f) })
		sw.AddPort().Attach(st.nic, opts...)
		stations[i] = st
	}
	return stations
}

func uni(src, dst ethaddr.MAC) *frame.Frame {
	return &frame.Frame{Dst: dst, Src: src, Type: frame.TypeIPv4, Payload: []byte("data")}
}

func TestUnknownUnicastFloods(t *testing.T) {
	s := sim.NewScheduler(1)
	sw := NewSwitch(s)
	st := newLAN(t, s, sw, 4)
	st[0].nic.Send(uni(st[0].nic.MAC(), st[1].nic.MAC()))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Destination unknown: flooded everywhere, but only the addressee accepts.
	if len(st[1].got) != 1 {
		t.Fatalf("addressee got %d frames", len(st[1].got))
	}
	if len(st[2].got) != 0 || len(st[3].got) != 0 {
		t.Fatal("non-addressees accepted unicast not for them")
	}
	if sw.Stats().Flooded != 1 {
		t.Fatalf("Flooded = %d, want 1", sw.Stats().Flooded)
	}
}

func TestLearnedUnicastForwardsToOnePort(t *testing.T) {
	s := sim.NewScheduler(1)
	sw := NewSwitch(s)
	st := newLAN(t, s, sw, 4)
	promisc := st[3]
	promisc.nic.SetPromiscuous(true)

	// First frame teaches the switch where st[1] lives.
	st[1].nic.Send(uni(st[1].nic.MAC(), st[0].nic.MAC()))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	promisc.got = nil

	st[0].nic.Send(uni(st[0].nic.MAC(), st[1].nic.MAC()))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(st[1].got) != 1 {
		t.Fatalf("addressee got %d", len(st[1].got))
	}
	// Forwarded, not flooded: the promiscuous station on another port sees nothing.
	if len(promisc.got) != 0 {
		t.Fatal("learned unicast leaked to other ports")
	}
	if sw.Stats().Forwarded != 1 {
		t.Fatalf("Forwarded = %d", sw.Stats().Forwarded)
	}
}

func TestBroadcastReachesAllExceptSender(t *testing.T) {
	s := sim.NewScheduler(1)
	sw := NewSwitch(s)
	st := newLAN(t, s, sw, 5)
	st[2].nic.Send(uni(st[2].nic.MAC(), ethaddr.BroadcastMAC))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, h := range st {
		want := 1
		if i == 2 {
			want = 0
		}
		if len(h.got) != want {
			t.Fatalf("station %d got %d frames, want %d", i, len(h.got), want)
		}
	}
}

func TestPromiscuousSeesFloodedTraffic(t *testing.T) {
	s := sim.NewScheduler(1)
	sw := NewSwitch(s)
	st := newLAN(t, s, sw, 3)
	st[2].nic.SetPromiscuous(true)
	st[0].nic.Send(uni(st[0].nic.MAC(), st[1].nic.MAC())) // unknown dst → flood
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(st[2].got) != 1 {
		t.Fatal("promiscuous NIC should capture flooded unicast")
	}
}

func TestCAMCapacityFailOpen(t *testing.T) {
	s := sim.NewScheduler(1)
	sw := NewSwitch(s, WithCAMCapacity(2))
	st := newLAN(t, s, sw, 4)
	sniffer := st[3]
	sniffer.nic.SetPromiscuous(true)

	// Fill the CAM with two stations, flooding random sources from a third.
	st[0].nic.Send(uni(st[0].nic.MAC(), ethaddr.BroadcastMAC))
	st[1].nic.Send(uni(st[1].nic.MAC(), ethaddr.BroadcastMAC))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if sw.CAMLen() != 2 {
		t.Fatalf("CAMLen = %d, want 2", sw.CAMLen())
	}

	// st[2] cannot be learned now; traffic *to* it keeps flooding — the
	// eavesdropping consequence of a full CAM.
	sniffer.got = nil
	st[2].got = nil
	st[2].nic.Send(uni(st[2].nic.MAC(), st[0].nic.MAC()))
	st[0].nic.Send(uni(st[0].nic.MAC(), st[2].nic.MAC()))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(st[2].got) != 1 {
		t.Fatalf("st2 got %d", len(st[2].got))
	}
	if len(sniffer.got) == 0 {
		t.Fatal("fail-open flooding should expose frames to the sniffer")
	}
	if sw.Stats().LearnMisses == 0 {
		t.Fatal("LearnMisses should be recorded")
	}
}

func TestCAMAgingReclaimsSpace(t *testing.T) {
	s := sim.NewScheduler(1)
	sw := NewSwitch(s, WithCAMCapacity(1), WithCAMTTL(100*time.Millisecond))
	st := newLAN(t, s, sw, 3)

	st[0].nic.Send(uni(st[0].nic.MAC(), ethaddr.BroadcastMAC))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := sw.CAMLookup(st[0].nic.MAC()); !ok {
		t.Fatal("st0 should be learned")
	}

	// After TTL, a new station can claim the slot.
	s.At(200*time.Millisecond, func() {
		st[1].nic.Send(uni(st[1].nic.MAC(), ethaddr.BroadcastMAC))
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := sw.CAMLookup(st[1].nic.MAC()); !ok {
		t.Fatal("expired entry should be reclaimed for st1")
	}
	if _, ok := sw.CAMLookup(st[0].nic.MAC()); ok {
		t.Fatal("st0 entry should have expired")
	}
}

func TestInlineFilterDrops(t *testing.T) {
	s := sim.NewScheduler(1)
	sw := NewSwitch(s, WithFilter(func(port int, f *frame.Frame) FilterVerdict {
		if f.Type == frame.TypeARP {
			return VerdictDrop
		}
		return VerdictAllow
	}))
	st := newLAN(t, s, sw, 2)
	arp := &frame.Frame{Dst: ethaddr.BroadcastMAC, Src: st[0].nic.MAC(), Type: frame.TypeARP}
	st[0].nic.Send(arp)
	st[0].nic.Send(uni(st[0].nic.MAC(), ethaddr.BroadcastMAC))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(st[1].got) != 1 || st[1].got[0].Type != frame.TypeIPv4 {
		t.Fatalf("filter outcome wrong: got %d frames", len(st[1].got))
	}
	if sw.Stats().Filtered != 1 {
		t.Fatalf("Filtered = %d", sw.Stats().Filtered)
	}
}

func TestMirrorAll(t *testing.T) {
	s := sim.NewScheduler(1)
	sw := NewSwitch(s)
	st := newLAN(t, s, sw, 3)
	ids := NewNIC(s, ethaddr.MustParseMAC("02:42:ac:00:00:99"))
	ids.SetPromiscuous(true)
	var seen []*frame.Frame
	ids.SetHandler(func(f *frame.Frame) { seen = append(seen, f) })
	mp := sw.AddPort()
	mp.Attach(ids)
	sw.MirrorAllTo(mp)

	// Learn st1 then send a directed frame st0→st1: mirror still sees it.
	st[1].nic.Send(uni(st[1].nic.MAC(), st[0].nic.MAC()))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	seen = nil
	st[0].nic.Send(uni(st[0].nic.MAC(), st[1].nic.MAC()))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 {
		t.Fatalf("mirror saw %d frames, want 1", len(seen))
	}
}

func TestMirrorSelectedPorts(t *testing.T) {
	s := sim.NewScheduler(1)
	sw := NewSwitch(s)
	gen := ethaddr.NewGen(5)
	mk := func() (*station, *Port) {
		st := &station{nic: NewNIC(s, gen.SeqMAC())}
		st.nic.SetHandler(func(f *frame.Frame) { st.got = append(st.got, f) })
		p := sw.AddPort()
		p.Attach(st.nic)
		return st, p
	}
	a, pa := mk()
	b, _ := mk()
	c, _ := mk()
	mon, pm := mk()
	mon.nic.SetPromiscuous(true)
	sw.MirrorPortsTo(pm, pa)

	a.nic.Send(uni(a.nic.MAC(), ethaddr.BroadcastMAC)) // mirrored (port a)
	b.nic.Send(uni(b.nic.MAC(), ethaddr.BroadcastMAC)) // not mirrored
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Monitor receives each broadcast exactly once: flooding already
	// delivers both, so no duplicate SPAN copy is generated for a's.
	if len(mon.got) != 2 {
		t.Fatalf("monitor got %d frames, want 2", len(mon.got))
	}
	// A learned unicast c→a does not egress the mirror port naturally, so
	// the SPAN copy must appear (port a is mirrored... c's ingress is not).
	mon.got = nil
	c.nic.Send(uni(c.nic.MAC(), a.nic.MAC())) // ingress on unmirrored port
	a.nic.Send(uni(a.nic.MAC(), c.nic.MAC())) // ingress on mirrored port
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(mon.got) != 1 {
		t.Fatalf("monitor got %d frames, want only the mirrored port's unicast", len(mon.got))
	}
}

func TestTapSeesEverything(t *testing.T) {
	s := sim.NewScheduler(1)
	sw := NewSwitch(s, WithFilter(func(int, *frame.Frame) FilterVerdict { return VerdictDrop }))
	st := newLAN(t, s, sw, 2)
	var events []TapEvent
	sw.AddTap(func(ev TapEvent) { events = append(events, ev) })
	st[0].nic.Send(uni(st[0].nic.MAC(), ethaddr.BroadcastMAC))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Tap observes even frames the filter subsequently drops.
	if len(events) != 1 {
		t.Fatalf("tap saw %d events", len(events))
	}
	if events[0].Port != 0 || events[0].WireLen != 60 {
		t.Fatalf("tap event fields: %+v", events[0])
	}
}

func TestLinkLatency(t *testing.T) {
	s := sim.NewScheduler(1)
	sw := NewSwitch(s)
	var arrival time.Duration
	gen := ethaddr.NewGen(5)
	a := NewNIC(s, gen.SeqMAC())
	b := NewNIC(s, gen.SeqMAC())
	b.SetHandler(func(*frame.Frame) { arrival = s.Now() })
	sw.AddPort().Attach(a, WithLatency(1*time.Millisecond))
	sw.AddPort().Attach(b, WithLatency(2*time.Millisecond))
	a.Send(uni(a.MAC(), ethaddr.BroadcastMAC))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if arrival != 3*time.Millisecond {
		t.Fatalf("arrival = %v, want 3ms", arrival)
	}
}

func TestLinkBandwidthSerializationDelay(t *testing.T) {
	s := sim.NewScheduler(1)
	sw := NewSwitch(s)
	gen := ethaddr.NewGen(5)
	a := NewNIC(s, gen.SeqMAC())
	b := NewNIC(s, gen.SeqMAC())
	var arrival time.Duration
	b.SetHandler(func(*frame.Frame) { arrival = s.Now() })
	// 100 Mbit/s, zero propagation latency: a 1514-octet frame costs
	// 121.12µs per hop, two hops through the switch.
	sw.AddPort().Attach(a, WithLatency(0), WithBandwidth(100_000_000))
	sw.AddPort().Attach(b, WithLatency(0), WithBandwidth(100_000_000))
	a.Send(&frame.Frame{
		Dst: ethaddr.BroadcastMAC, Src: a.MAC(),
		Type: frame.TypeIPv4, Payload: make([]byte, 1500),
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := 2 * time.Duration(1514*8*int64(time.Second)/100_000_000)
	if arrival != want {
		t.Fatalf("arrival = %v, want %v", arrival, want)
	}

	// A minimum-size frame is ~25× cheaper.
	var small time.Duration
	b.SetHandler(func(*frame.Frame) { small = s.Now() - arrival })
	a.Send(&frame.Frame{Dst: ethaddr.BroadcastMAC, Src: a.MAC(), Type: frame.TypeIPv4})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if small >= want/20 {
		t.Fatalf("small frame took %v, want far below %v", small, want)
	}
}

func TestLinkLossDropsAllAtProbabilityOne(t *testing.T) {
	s := sim.NewScheduler(1)
	sw := NewSwitch(s)
	gen := ethaddr.NewGen(5)
	a := NewNIC(s, gen.SeqMAC())
	b := NewNIC(s, gen.SeqMAC())
	delivered := 0
	b.SetHandler(func(*frame.Frame) { delivered++ })
	sw.AddPort().Attach(a, WithLoss(1.0))
	sw.AddPort().Attach(b)
	for i := 0; i < 20; i++ {
		a.Send(uni(a.MAC(), ethaddr.BroadcastMAC))
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Fatalf("delivered %d frames over a fully lossy link", delivered)
	}
}

func TestNICDownDropsTraffic(t *testing.T) {
	s := sim.NewScheduler(1)
	sw := NewSwitch(s)
	st := newLAN(t, s, sw, 2)
	st[1].nic.SetUp(false)
	st[0].nic.Send(uni(st[0].nic.MAC(), ethaddr.BroadcastMAC))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(st[1].got) != 0 {
		t.Fatal("down NIC accepted a frame")
	}
	st[1].nic.SetUp(true)
	st[1].nic.Send(uni(st[1].nic.MAC(), ethaddr.BroadcastMAC))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(st[0].got) != 1 {
		t.Fatal("frame after SetUp(true) lost")
	}
}

func TestNICStats(t *testing.T) {
	s := sim.NewScheduler(1)
	sw := NewSwitch(s)
	st := newLAN(t, s, sw, 2)
	st[0].nic.Send(uni(st[0].nic.MAC(), ethaddr.BroadcastMAC))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	tx := st[0].nic.Stats()
	rx := st[1].nic.Stats()
	if tx.TxFrames != 1 || tx.TxBytes != 60 {
		t.Fatalf("tx stats: %+v", tx)
	}
	if rx.RxFrames != 1 || rx.RxBytes != 60 {
		t.Fatalf("rx stats: %+v", rx)
	}
}

func TestHubRepeatsEverywhere(t *testing.T) {
	s := sim.NewScheduler(1)
	h := NewHub(s)
	gen := ethaddr.NewGen(7)
	stations := make([]*station, 3)
	for i := range stations {
		st := &station{nic: NewNIC(s, gen.SeqMAC())}
		st.nic.SetHandler(func(f *frame.Frame) { st.got = append(st.got, f) })
		h.AddPort().Attach(st.nic)
		stations[i] = st
	}
	stations[2].nic.SetPromiscuous(true)
	stations[0].nic.Send(uni(stations[0].nic.MAC(), stations[1].nic.MAC()))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(stations[1].got) != 1 {
		t.Fatal("hub addressee missed frame")
	}
	if len(stations[2].got) != 1 {
		t.Fatal("hub should expose all frames to a promiscuous third party")
	}
}

func TestVLANIsolatesBroadcast(t *testing.T) {
	s := sim.NewScheduler(1)
	sw := NewSwitch(s)
	st := newLAN(t, s, sw, 4)
	// st0, st1 stay in VLAN 1; st2, st3 move to VLAN 2.
	sw.ports[2].SetVLAN(2)
	sw.ports[3].SetVLAN(2)

	st[0].nic.Send(uni(st[0].nic.MAC(), ethaddr.BroadcastMAC))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(st[1].got) != 1 {
		t.Fatal("same-VLAN station missed the broadcast")
	}
	if len(st[2].got) != 0 || len(st[3].got) != 0 {
		t.Fatal("broadcast crossed the VLAN boundary")
	}
}

func TestVLANIsolatesUnknownUnicastFlood(t *testing.T) {
	s := sim.NewScheduler(1)
	sw := NewSwitch(s)
	st := newLAN(t, s, sw, 3)
	sw.ports[2].SetVLAN(2)
	sniffer := st[2]
	sniffer.nic.SetPromiscuous(true)

	st[0].nic.Send(uni(st[0].nic.MAC(), st[1].nic.MAC())) // unknown → flood in VLAN 1
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(st[1].got) != 1 {
		t.Fatal("same-VLAN delivery failed")
	}
	if len(sniffer.got) != 0 {
		t.Fatal("fail-open flood leaked across VLANs")
	}
}

func TestVLANScopedLearning(t *testing.T) {
	// The same MAC learned in VLAN 1 must not satisfy lookups in VLAN 2.
	s := sim.NewScheduler(1)
	sw := NewSwitch(s)
	st := newLAN(t, s, sw, 3)
	sw.ports[1].SetVLAN(2)
	sw.ports[2].SetVLAN(2)

	// st0 (VLAN 1) announces; its MAC is learned in VLAN 1 only.
	st[0].nic.Send(uni(st[0].nic.MAC(), ethaddr.BroadcastMAC))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// st1 (VLAN 2) sends to st0's MAC: no VLAN-2 entry → flood within
	// VLAN 2 only; st0 must never receive it.
	st[1].nic.Send(uni(st[1].nic.MAC(), st[0].nic.MAC()))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(st[0].got) != 0 {
		t.Fatal("cross-VLAN unicast was delivered")
	}
}

func TestVLANBoundsPoisoningBlastRadius(t *testing.T) {
	// Segmentation as mitigation: a broadcast poisoning reaches only the
	// attacker's own segment.
	s := sim.NewScheduler(1)
	sw := NewSwitch(s)
	st := newLAN(t, s, sw, 4)
	sw.ports[0].SetVLAN(2) // st0 isolated from the attacker's VLAN 1

	poison := arppkt.NewGratuitousRequest(st[3].nic.MAC(), ethaddr.MustParseIPv4("10.0.0.254"))
	st[3].nic.Send(&frame.Frame{
		Dst: ethaddr.BroadcastMAC, Src: st[3].nic.MAC(),
		Type: frame.TypeARP, Payload: poison.Encode(),
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(st[0].got) != 0 {
		t.Fatal("poison crossed the VLAN boundary")
	}
	if len(st[1].got) != 1 || len(st[2].got) != 1 {
		t.Fatal("poison should still reach the attacker's own segment")
	}
}

func TestMirrorSpansVLANs(t *testing.T) {
	s := sim.NewScheduler(1)
	sw := NewSwitch(s)
	st := newLAN(t, s, sw, 2)
	sw.ports[1].SetVLAN(2)

	mon := NewNIC(s, ethaddr.MustParseMAC("02:42:ac:00:00:99"))
	mon.SetPromiscuous(true)
	var seen int
	mon.SetHandler(func(*frame.Frame) { seen++ })
	mp := sw.AddPort()
	mp.SetVLAN(99)
	mp.Attach(mon)
	sw.MirrorAllTo(mp)

	st[0].nic.Send(uni(st[0].nic.MAC(), ethaddr.BroadcastMAC)) // VLAN 1
	st[1].nic.Send(uni(st[1].nic.MAC(), ethaddr.BroadcastMAC)) // VLAN 2
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if seen != 2 {
		t.Fatalf("mirror saw %d frames, want both VLANs", seen)
	}
}

func TestSwitchLocalDeliveryNotReflected(t *testing.T) {
	// A frame whose learned destination is the ingress port is not sent back.
	s := sim.NewScheduler(1)
	sw := NewSwitch(s)
	st := newLAN(t, s, sw, 2)
	// Teach the switch both stations (on their true ports).
	st[0].nic.Send(uni(st[0].nic.MAC(), ethaddr.BroadcastMAC))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Forge a frame from port 1 addressed to st0... wait, that's forwarding.
	// Instead: frame from port 0 addressed to st0's own MAC (learned on 0).
	st[0].got = nil
	st[1].got = nil
	f := uni(st[0].nic.MAC(), st[0].nic.MAC())
	st[0].nic.Send(f)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(st[0].got) != 0 && len(st[1].got) != 0 {
		t.Fatal("frame to own port should not be repeated")
	}
}
