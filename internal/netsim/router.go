// Router interfaces and inter-LAN trunks: the layer-3 edge of a routed
// campus. Each access LAN gets one RouterIface — a station on the LAN's
// switch that answers ARP for its own address, proxy-ARPs for every
// remote subnet it can reach (so host stacks need no routing table: they
// resolve any off-subnet address and the router answers with its own
// MAC), and forwards IPv4 across Trunks to the other LANs' interfaces.
//
// A Trunk is the only path between LANs, and deliberately so: in a
// sharded campus each LAN lives in its own time domain (sim shard), and
// the trunk's sim.CrossLink latency is exactly the conservative lookahead
// bound that lets the shards run in parallel. Everything that crosses a
// trunk is a freshly encoded byte slice — never a *frame.Frame — so no
// frame or arena memory is ever shared between shards.
package netsim

import (
	"time"

	"repro/internal/ethaddr"
	"repro/internal/frame"
	"repro/internal/ipv4pkt"
	"repro/internal/sim"

	"repro/internal/arppkt"
)

// RouterStats counts one interface's forwarding work.
type RouterStats struct {
	ARPReplies   uint64 // replies for the interface's own address
	ProxyReplies uint64 // proxy-ARP replies for routed subnets
	ForwardedOut uint64 // IPv4 packets sent out a trunk
	DeliveredIn  uint64 // trunk arrivals delivered onto the local LAN
	QueuedAwait  uint64 // arrivals parked awaiting local ARP resolution
	DroppedNoRte uint64 // no route to destination
	DroppedTTL   uint64 // TTL expired in transit
	DroppedARP   uint64 // resolution failed after retries
}

// routeEntry maps a remote subnet to the trunk that reaches it.
type routeEntry struct {
	subnet ethaddr.Subnet
	trunk  *Trunk
}

// awaitingPacket is one trunk arrival queued until the local destination's
// MAC resolves.
type awaitingPacket struct {
	dst ethaddr.IPv4
	buf []byte
}

// RouterIface is one LAN-facing interface of the campus router fabric.
// It owns a NIC attached to the LAN's switch, a private ARP cache for the
// local subnet, and a route table of trunks to the other LANs.
//
// The interface's cache learns from traffic like any ARP speaker — which
// means it can be poisoned like one: an attacker claiming the victim's
// address redirects the victim's inbound cross-LAN traffic too. That is
// deliberate; the router is part of the attack surface the schemes defend.
type RouterIface struct {
	sched   *sim.Scheduler
	nic     *NIC
	name    string
	ip      ethaddr.IPv4
	subnet  ethaddr.Subnet
	arp     map[ethaddr.IPv4]ethaddr.MAC
	pending map[ethaddr.IPv4][]awaitingPacket
	tries   map[ethaddr.IPv4]int
	routes  []routeEntry
	stats   RouterStats
}

// resolveRetry/resolveMax mirror the host stack's resolution pacing: one
// ARP request per second, three tries, then the queued packets drop.
const (
	resolveRetry = time.Second
	resolveMax   = 3
)

// NewRouterIface builds the interface on an attached NIC. ip must be
// inside subnet; by campus convention it is the subnet's .254 gateway
// address, the address every host resolves for off-LAN traffic.
func NewRouterIface(s *sim.Scheduler, name string, nic *NIC, ip ethaddr.IPv4, subnet ethaddr.Subnet) *RouterIface {
	r := &RouterIface{
		sched:   s,
		nic:     nic,
		name:    name,
		ip:      ip,
		subnet:  subnet,
		arp:     make(map[ethaddr.IPv4]ethaddr.MAC),
		pending: make(map[ethaddr.IPv4][]awaitingPacket),
		tries:   make(map[ethaddr.IPv4]int),
	}
	nic.SetHandler(r.handleFrame)
	return r
}

// Name returns the interface name.
func (r *RouterIface) Name() string { return r.name }

// IP returns the interface's address (the LAN's gateway address).
func (r *RouterIface) IP() ethaddr.IPv4 { return r.ip }

// MAC returns the interface's hardware address.
func (r *RouterIface) MAC() ethaddr.MAC { return r.nic.MAC() }

// NIC returns the underlying interface.
func (r *RouterIface) NIC() *NIC { return r.nic }

// Subnet returns the local subnet.
func (r *RouterIface) Subnet() ethaddr.Subnet { return r.subnet }

// Stats returns a copy of the forwarding counters.
func (r *RouterIface) Stats() RouterStats { return r.stats }

// AddRoute announces that subnet is reachable through trunk.
func (r *RouterIface) AddRoute(subnet ethaddr.Subnet, trunk *Trunk) {
	r.routes = append(r.routes, routeEntry{subnet: subnet, trunk: trunk})
}

// Lookup returns the interface's current binding for ip — the router-side
// ground truth the campus poisoning census reads.
func (r *RouterIface) Lookup(ip ethaddr.IPv4) (ethaddr.MAC, bool) {
	mac, ok := r.arp[ip]
	return mac, ok
}

// FlushBindings clears the interface's learned ARP table — the router-side
// analogue of a switch CAM flush, exposed as a campus fault hook. Queued
// packets and in-flight resolutions are left alone: the next delivery simply
// re-resolves, exactly what a real cache wipe causes. Returns how many
// bindings were dropped.
func (r *RouterIface) FlushBindings() int {
	n := len(r.arp)
	for ip := range r.arp {
		delete(r.arp, ip)
	}
	return n
}

// route finds the trunk covering dst, nil when no route matches.
func (r *RouterIface) route(dst ethaddr.IPv4) *Trunk {
	for i := range r.routes {
		if r.routes[i].subnet.Contains(dst) {
			return r.routes[i].trunk
		}
	}
	return nil
}

// handleFrame is the NIC receive path: ARP speaker + IPv4 forwarder.
func (r *RouterIface) handleFrame(f *frame.Frame) {
	switch f.Type {
	case frame.TypeARP:
		r.handleARP(f)
	case frame.TypeIPv4:
		r.handleIPv4(f)
	}
}

// handleARP answers requests for the interface's address, proxy-answers
// for every routed subnet, and learns local sender bindings.
func (r *RouterIface) handleARP(f *frame.Frame) {
	p, err := arppkt.DecodeFrame(f)
	if err != nil {
		return
	}
	// Learn the sender like any ARP speaker (requests, replies and
	// gratuitous announcements alike), flushing any packets queued on it.
	if sip, smac := p.Binding(); !sip.IsZero() && r.subnet.Contains(sip) && smac != r.nic.MAC() {
		r.learn(sip, smac)
	}
	if p.Op != arppkt.OpRequest {
		return
	}
	target := p.TargetIP
	switch {
	case target == r.ip:
		r.stats.ARPReplies++
	case !r.subnet.Contains(target) && r.route(target) != nil:
		// Proxy ARP: the host asked for an off-subnet address this
		// interface can reach; claim it so the host's flat-LAN resolver
		// needs no routing table.
		r.stats.ProxyReplies++
	default:
		return
	}
	reply := arppkt.NewReply(r.nic.MAC(), target, p.SenderMAC, p.SenderIP)
	r.nic.Send(&frame.Frame{
		Dst: p.SenderMAC, Src: r.nic.MAC(), Type: frame.TypeARP,
		Payload: reply.Encode(),
	})
}

// learn records a local binding and flushes packets queued on it.
func (r *RouterIface) learn(ip ethaddr.IPv4, mac ethaddr.MAC) {
	r.arp[ip] = mac
	delete(r.tries, ip)
	queued := r.pending[ip]
	if len(queued) == 0 {
		return
	}
	delete(r.pending, ip)
	for _, q := range queued {
		r.emitLocal(mac, q.buf)
	}
}

// handleIPv4 forwards packets addressed to the interface's MAC. Local
// destinations hairpin back onto the LAN (a host that proxy-resolved a
// local peer — rare but legal); everything else routes out a trunk.
func (r *RouterIface) handleIPv4(f *frame.Frame) {
	if f.Dst != r.nic.MAC() {
		return // broadcast or promiscuous noise; routers forward unicast only
	}
	pkt, err := ipv4pkt.Decode(f.Payload)
	if err != nil || pkt.Dst == r.ip {
		return // malformed, or addressed to the router itself
	}
	if pkt.TTL <= 1 {
		r.stats.DroppedTTL++
		return
	}
	pkt.TTL--
	if r.subnet.Contains(pkt.Dst) {
		// Re-encoding copies the payload out of the received frame, so the
		// hairpinned bytes are private to this interface.
		r.deliverLocal(pkt.Dst, pkt.Encode())
		return
	}
	trunk := r.route(pkt.Dst)
	if trunk == nil {
		r.stats.DroppedNoRte++
		return
	}
	r.stats.ForwardedOut++
	// Encode() builds a fresh buffer (header + copied payload): the one
	// allocation that buys shard isolation for the bytes crossing the trunk.
	trunk.Send(pkt.Dst, pkt.Encode())
}

// injectFromTrunk is the trunk's delivery callback, running on this
// interface's shard: deliver the routed packet onto the local LAN.
func (r *RouterIface) injectFromTrunk(dst ethaddr.IPv4, buf []byte) {
	r.stats.DeliveredIn++
	r.deliverLocal(dst, buf)
}

// deliverLocal sends an encoded IPv4 packet to a local destination,
// resolving its MAC first when unknown.
func (r *RouterIface) deliverLocal(dst ethaddr.IPv4, buf []byte) {
	if mac, ok := r.arp[dst]; ok {
		r.emitLocal(mac, buf)
		return
	}
	r.stats.QueuedAwait++
	r.pending[dst] = append(r.pending[dst], awaitingPacket{dst: dst, buf: buf})
	if len(r.pending[dst]) == 1 {
		r.resolve(dst)
	}
}

// resolve broadcasts a who-has for dst and re-arms itself until the reply
// lands or the tries run out.
func (r *RouterIface) resolve(dst ethaddr.IPv4) {
	if _, done := r.arp[dst]; done || len(r.pending[dst]) == 0 {
		return
	}
	if r.tries[dst] >= resolveMax {
		r.stats.DroppedARP += uint64(len(r.pending[dst]))
		delete(r.pending, dst)
		delete(r.tries, dst)
		return
	}
	r.tries[dst]++
	req := arppkt.NewRequest(r.nic.MAC(), r.ip, dst)
	r.nic.Send(&frame.Frame{
		Dst: ethaddr.BroadcastMAC, Src: r.nic.MAC(), Type: frame.TypeARP,
		Payload: req.Encode(),
	})
	r.sched.After(resolveRetry, func() { r.resolve(dst) })
}

// emitLocal puts an encoded packet on the wire toward a resolved MAC.
func (r *RouterIface) emitLocal(mac ethaddr.MAC, buf []byte) {
	r.nic.Send(&frame.Frame{
		Dst: mac, Src: r.nic.MAC(), Type: frame.TypeIPv4, Payload: buf,
	})
}

// Trunk is a unidirectional inter-LAN uplink: an edge of the campus
// backbone from one router interface's shard to another's. Send carries
// only freshly encoded bytes, so the two shards share no frame memory.
type Trunk struct {
	cl   *sim.CrossLink
	dst  *RouterIface
	down bool
	stat TrunkStats
}

// TrunkStats counts one trunk edge's fault behavior.
type TrunkStats struct {
	// PartitionDropped counts packets offered to the trunk while it was
	// administratively partitioned.
	PartitionDropped uint64
}

// NewTrunk wires a trunk over a cross-shard link toward dst. The link's
// latency is the backbone's one-way delay — and, being a sim.CrossLink,
// the lookahead bound the sharded engine synchronizes on.
func NewTrunk(cl *sim.CrossLink, dst *RouterIface) *Trunk {
	return &Trunk{cl: cl, dst: dst}
}

// SetDown administratively partitions (or restores) the trunk. The flag is
// owned by the sending shard — it is read only inside Send, which runs in
// the source LAN's time domain — so fault plans toggle it from there. The
// underlying CrossLink stays wired either way: a partitioned trunk still
// bounds the sharded engine's lookahead, it just carries nothing.
func (t *Trunk) SetDown(v bool) { t.down = v }

// Down reports whether the trunk is partitioned.
func (t *Trunk) Down() bool { return t.down }

// Stats returns a copy of the trunk's fault counters.
func (t *Trunk) Stats() TrunkStats { return t.stat }

// Send ships an encoded IPv4 packet for dst across the trunk; it arrives
// at the far interface after the trunk latency. A partitioned trunk eats
// the packet — the backbone edge is simply gone for its duration.
func (t *Trunk) Send(dst ethaddr.IPv4, buf []byte) {
	if t.down {
		t.stat.PartitionDropped++
		return
	}
	dstIface := t.dst
	t.cl.Send(func() { dstIface.injectFromTrunk(dst, buf) })
}
