package netsim

import (
	"testing"
	"time"

	"repro/internal/ethaddr"
	"repro/internal/frame"
	"repro/internal/sim"
)

// lossyPair wires stations 0..n-1 to a fresh switch, each with 30% link
// loss, and returns them. Scheduler seed is fixed so runs are comparable.
func lossyPair(t *testing.T, n int) (*sim.Scheduler, *Switch, []*station) {
	t.Helper()
	s := sim.NewScheduler(1)
	sw := NewSwitch(s)
	return s, sw, newLAN(t, s, sw, n, WithLoss(0.3))
}

// TestLinkLossStreamIsolation is the per-link-stream regression guard:
// adding unrelated lossy traffic elsewhere on the switch must not change
// which of a link's own frames are dropped. Under a single shared RNG the
// interleaved draws would re-key every link's drop pattern; with per-link
// derived streams the outcome depends only on the link's own history.
func TestLinkLossStreamIsolation(t *testing.T) {
	const frames = 400
	run := func(withNeighbours bool) int {
		n := 2
		if withNeighbours {
			n = 4
		}
		s, _, st := lossyPair(t, n)
		if withNeighbours {
			// The neighbour pair lives in its own VLAN so its frames never
			// cross station 0/1's links — only their RNG draws could leak.
			st[2].nic.port.SetVLAN(2)
			st[3].nic.port.SetVLAN(2)
		}
		for i := 0; i < frames; i++ {
			i := i
			s.At(time.Duration(i)*time.Millisecond, func() {
				st[0].nic.Send(uni(st[0].nic.MAC(), st[1].nic.MAC()))
			})
			if withNeighbours {
				s.At(time.Duration(i)*time.Millisecond+500*time.Microsecond, func() {
					st[2].nic.Send(uni(st[2].nic.MAC(), st[3].nic.MAC()))
				})
			}
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return len(st[1].got)
	}
	alone := run(false)
	crowded := run(true)
	if alone == 0 || alone == frames {
		t.Fatalf("degenerate baseline: %d/%d delivered", alone, frames)
	}
	if alone != crowded {
		t.Fatalf("neighbour traffic re-keyed the link's loss stream: %d delivered alone, %d crowded",
			alone, crowded)
	}
}

// TestLinkLossStreamsDifferPerLink confirms the derived streams are actually
// distinct: two links with identical parameters and identical offered load
// must not drop the exact same frame positions.
func TestLinkLossStreamsDifferPerLink(t *testing.T) {
	s, _, st := lossyPair(t, 4)
	st[2].nic.port.SetVLAN(2)
	st[3].nic.port.SetVLAN(2)
	const frames = 300
	for i := 0; i < frames; i++ {
		s.At(time.Duration(i)*time.Millisecond, func() {
			st[0].nic.Send(uni(st[0].nic.MAC(), st[1].nic.MAC()))
			st[2].nic.Send(uni(st[2].nic.MAC(), st[3].nic.MAC()))
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	a, b := st[0].nic.Link().Stats(), st[2].nic.Link().Stats()
	if a.LossDropped == 0 || b.LossDropped == 0 {
		t.Fatalf("no losses to compare: %+v %+v", a, b)
	}
	if a.LossDropped == b.LossDropped && len(st[1].got) == len(st[3].got) {
		t.Fatal("two links produced identical drop patterns — streams are shared")
	}
}

func TestLinkSetDownDropsAndRestores(t *testing.T) {
	s := sim.NewScheduler(1)
	sw := NewSwitch(s)
	st := newLAN(t, s, sw, 2)
	link := st[0].nic.Link()

	link.SetDown(true)
	st[0].nic.Send(uni(st[0].nic.MAC(), st[1].nic.MAC()))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(st[1].got) != 0 {
		t.Fatal("frame crossed a downed link")
	}
	if link.Stats().DownDropped != 1 {
		t.Fatalf("DownDropped = %d, want 1", link.Stats().DownDropped)
	}

	// A downed link kills both directions of the attachment.
	st[1].nic.Send(uni(st[1].nic.MAC(), st[0].nic.MAC()))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(st[0].got) != 0 {
		t.Fatal("delivery crossed a downed link")
	}

	link.SetDown(false)
	if link.Down() {
		t.Fatal("Down() true after SetDown(false)")
	}
	st[0].nic.Send(uni(st[0].nic.MAC(), st[1].nic.MAC()))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(st[1].got) != 1 {
		t.Fatal("restored link did not deliver")
	}
}

// scriptedImpairment replays a fixed verdict sequence.
type scriptedImpairment struct {
	verdicts []Verdict
	i        int
}

func (si *scriptedImpairment) Judge(int) Verdict {
	v := si.verdicts[si.i%len(si.verdicts)]
	si.i++
	return v
}

func TestLinkImpairmentVerdicts(t *testing.T) {
	s := sim.NewScheduler(1)
	sw := NewSwitch(s)
	st := newLAN(t, s, sw, 2)
	link := st[0].nic.Link()
	link.SetImpairment(&scriptedImpairment{verdicts: []Verdict{
		{Drop: true},
		{Delay: 5 * time.Millisecond},
		{Duplicate: true, DuplicateDelay: time.Millisecond},
		{},
	}})
	var arrivals []time.Duration
	st[1].nic.SetHandler(func(f *frame.Frame) { arrivals = append(arrivals, s.Now()) })
	for i := 0; i < 4; i++ {
		s.At(time.Duration(i)*100*time.Millisecond, func() {
			st[0].nic.Send(uni(st[0].nic.MAC(), st[1].nic.MAC()))
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Frame 0 dropped; frame 1 delayed; frame 2 duplicated; frame 3 clean.
	if len(arrivals) != 4 {
		t.Fatalf("arrivals = %d, want 4 (1 delayed + 2 duplicate copies + 1 clean)", len(arrivals))
	}
	stats := link.Stats()
	if stats.FaultDropped != 1 || stats.Reordered != 1 || stats.Duplicated != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	if stats.Delivered != 4 {
		t.Fatalf("Delivered = %d, want 4", stats.Delivered)
	}
	// The delayed frame arrives 5ms after its send instant plus the base
	// latency of both crossed links (sender's and receiver's attachment);
	// the duplicate's copy trails the original by 1ms.
	base := 2 * st[0].nic.Link().params.latency
	if want := 100*time.Millisecond + 5*time.Millisecond + base; arrivals[0] != want {
		t.Fatalf("delayed arrival at %v, want %v", arrivals[0], want)
	}
	if arrivals[2]-arrivals[1] != time.Millisecond {
		t.Fatalf("duplicate copy trailed by %v, want 1ms", arrivals[2]-arrivals[1])
	}
	// Clearing the impairment restores clean forwarding.
	link.SetImpairment(nil)
	st[0].nic.Send(uni(st[0].nic.MAC(), st[1].nic.MAC()))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 5 {
		t.Fatal("frame lost after impairment removed")
	}
}

// TestRandomEvictionDeterministic pins CAM eviction to the scheduler's
// seeded stream and the insertion-order index: two identical runs must
// evict identical victims. (Choosing victims by map iteration would pass
// any single-run test and still differ between runs or processes.)
func TestRandomEvictionDeterministic(t *testing.T) {
	run := func() []string {
		s := sim.NewScheduler(77)
		sw := NewSwitch(s, WithCAMCapacity(8), WithCAMEvictRandom())
		st := newLAN(t, s, sw, 2)
		gen := ethaddr.NewGen(5)
		macs := make([]ethaddr.MAC, 64)
		for i := range macs {
			macs[i] = gen.SeqMAC()
		}
		for i, mac := range macs {
			mac := mac
			s.At(time.Duration(i)*time.Millisecond, func() {
				st[0].nic.Send(&frame.Frame{Dst: st[1].nic.MAC(), Src: mac, Type: frame.TypeIPv4})
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		var survivors []string
		for _, mac := range macs {
			if _, ok := sw.CAMLookup(mac); ok {
				survivors = append(survivors, mac.String())
			}
		}
		if len(survivors) != 8 {
			t.Fatalf("survivors = %d, want a full CAM of 8", len(survivors))
		}
		return survivors
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("eviction diverged between identical runs:\n%v\n%v", a, b)
		}
	}
}
