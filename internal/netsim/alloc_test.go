package netsim

import (
	"testing"

	"repro/internal/ethaddr"
	"repro/internal/frame"
	"repro/internal/sim"
)

// Allocation gates for the forwarding hot path (PR 7). The CAM refresh runs
// once per frame per switch hop, and the full NIC→link→switch→link→NIC
// unicast transit is the inner loop of every experiment — both must be
// allocation-free in steady state (pooled transits, pooled scheduler
// events, shared read-only frames).

func TestCAMLearnRefreshAllocFree(t *testing.T) {
	s := sim.NewScheduler(1)
	sw := NewSwitch(s)
	src := ethaddr.MAC{0x02, 0, 0, 0, 0, 1}
	sw.learn(0, 0, src, 0)
	allocs := testing.AllocsPerRun(1000, func() {
		sw.learn(0, 0, src, s.Now())
	})
	if allocs != 0 {
		t.Fatalf("CAM refresh: %v allocs/op, want 0", allocs)
	}
}

func TestUnicastTransitAllocFree(t *testing.T) {
	s := sim.NewScheduler(1)
	sw := NewSwitch(s)
	st := newLAN(t, s, sw, 2)
	for _, station := range st {
		station.nic.SetHandler(func(*frame.Frame) {})
	}
	// Teach the CAM both stations so forwarding is pure unicast, and warm
	// the pools (first transits populate the scheduler free list and the
	// transit pool).
	f01 := uni(st[0].nic.MAC(), st[1].nic.MAC())
	f10 := uni(st[1].nic.MAC(), st[0].nic.MAC())
	st[0].nic.Send(f01)
	st[1].nic.Send(f10)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		st[0].nic.Send(f01)
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("unicast switch transit: %v allocs/op, want 0", allocs)
	}
}
