package netsim

import (
	"testing"

	"repro/internal/ethaddr"
	"repro/internal/frame"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

func TestSwitchInstrumentForwardingCounters(t *testing.T) {
	s := sim.NewScheduler(1)
	sw := NewSwitch(s)
	reg := telemetry.New()
	s.Instrument(reg)
	sw.Instrument(reg)
	st := newLAN(t, s, sw, 3)

	// First unicast: destination unknown → flood + learn sender.
	st[0].nic.Send(uni(st[0].nic.MAC(), st[1].nic.MAC()))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Reply: sender 1 learned port 0 → forwarded, and 1 gets learned.
	st[1].nic.Send(uni(st[1].nic.MAC(), st[0].nic.MAC()))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}

	if got := reg.Counter("switch_frames_flooded_total").Value(); got != 1 {
		t.Fatalf("flooded = %d", got)
	}
	if got := reg.Counter("switch_frames_forwarded_total").Value(); got != 1 {
		t.Fatalf("forwarded = %d", got)
	}
	if got := reg.Counter("switch_cam_inserts_total").Value(); got != 2 {
		t.Fatalf("cam inserts = %d", got)
	}
	// Ingress byte counters: one frame each on ports 0 and 1, none on 2.
	wire := uint64(uni(st[0].nic.MAC(), st[1].nic.MAC()).WireLen())
	for port, want := range []uint64{wire, wire, 0} {
		got := reg.Counter("switch_port_bytes_total",
			telemetry.L("port", string(rune('0'+port)))).Value()
		if got != want {
			t.Fatalf("port %d bytes = %d, want %d", port, got, want)
		}
	}
}

func TestSwitchInstrumentFilterAndCAMPressure(t *testing.T) {
	s := sim.NewScheduler(1)
	sw := NewSwitch(s, WithCAMCapacity(2))
	reg := telemetry.New()
	s.Instrument(reg)
	sw.Instrument(reg)
	st := newLAN(t, s, sw, 2)
	sw.SetFilter(func(port int, f *frame.Frame) FilterVerdict {
		if port == 1 {
			return VerdictDrop
		}
		return VerdictAllow
	})

	gen := ethaddr.NewGen(7)
	// Port 0 floods frames from many distinct source MACs: 2 inserts fill
	// the CAM, the rest are refused learns → fail-open transition.
	for i := 0; i < 5; i++ {
		st[0].nic.Send(uni(gen.SeqMAC(), ethaddr.BroadcastMAC))
	}
	// Port 1's frame is dropped inline by the filter.
	st[1].nic.Send(uni(st[1].nic.MAC(), ethaddr.BroadcastMAC))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}

	if got := reg.Counter("switch_frames_filtered_total").Value(); got != 1 {
		t.Fatalf("filtered = %d", got)
	}
	if got := reg.Counter("switch_cam_inserts_total").Value(); got != 2 {
		t.Fatalf("cam inserts = %d", got)
	}
	if got := reg.Counter("switch_learn_misses_total").Value(); got != 3 {
		t.Fatalf("learn misses = %d", got)
	}
	if got := reg.Counter("switch_failopen_transitions_total").Value(); got != 1 {
		t.Fatalf("fail-open transitions = %d (must count the edge once, not per refusal)", got)
	}
}

func TestSwitchInstrumentBeforePortsAdded(t *testing.T) {
	s := sim.NewScheduler(1)
	sw := NewSwitch(s)
	reg := telemetry.New()
	sw.Instrument(reg) // ports added after instrumenting
	st := newLAN(t, s, sw, 2)
	st[0].nic.Send(uni(st[0].nic.MAC(), ethaddr.BroadcastMAC))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("switch_port_bytes_total", telemetry.L("port", "0")).Value(); got == 0 {
		t.Fatal("port counter created by AddPort did not count")
	}
}
