package netsim_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/arppkt"
	"repro/internal/ethaddr"
	"repro/internal/frame"
	"repro/internal/ipv4pkt"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/stack"
)

// udpFrame hand-crafts a UDP-in-IPv4 frame with an explicit TTL, bypassing
// the host stack's send path.
func udpFrame(srcMAC, dstMAC ethaddr.MAC, src, dst ethaddr.IPv4, sp, dp uint16, payload []byte, ttl uint8) *frame.Frame {
	u := ipv4pkt.UDP{SrcPort: sp, DstPort: dp, Payload: payload}
	p := ipv4pkt.Packet{TTL: ttl, Proto: ipv4pkt.ProtoUDP, Src: src, Dst: dst, Payload: u.Encode()}
	return &frame.Frame{Dst: dstMAC, Src: srcMAC, Type: frame.TypeIPv4, Payload: p.Encode()}
}

// twoLAN wires the minimal routed campus: two shards, each a switch with
// one host and a router interface, trunks both ways over 1ms cross links.
type twoLAN struct {
	ss     *sim.ShardedScheduler
	hosts  [2]*stack.Host
	ifaces [2]*netsim.RouterIface
	trunks [2]*netsim.Trunk // trunks[i] leaves LAN i
}

func buildTwoLAN(seed int64, workers int) *twoLAN {
	ss := sim.NewSharded(seed, 2)
	ss.SetWorkers(workers)
	tl := &twoLAN{ss: ss}
	subnets := [2]ethaddr.Subnet{
		ethaddr.MustParseSubnet("10.0.0.0/16"),
		ethaddr.MustParseSubnet("10.1.0.0/16"),
	}
	for i := 0; i < 2; i++ {
		sh := ss.Shard(i)
		gen := ethaddr.NewGen(sim.ShardSeed(seed, i))
		sw := netsim.NewSwitch(sh)

		hostNIC := netsim.NewNIC(sh, gen.SeqMAC())
		sw.AddPort().Attach(hostNIC)
		tl.hosts[i] = stack.NewHost(sh, fmt.Sprintf("h%d", i), hostNIC, subnets[i].Host(1))
		tl.hosts[i].Start()

		rtrNIC := netsim.NewNIC(sh, gen.SeqMAC())
		sw.AddPort().Attach(rtrNIC)
		tl.ifaces[i] = netsim.NewRouterIface(sh, fmt.Sprintf("rtr%d", i), rtrNIC,
			subnets[i].Host(254), subnets[i])
	}
	for i := 0; i < 2; i++ {
		j := 1 - i
		trunk := netsim.NewTrunk(ss.Link(i, j, time.Millisecond), tl.ifaces[j])
		tl.trunks[i] = trunk
		tl.ifaces[i].AddRoute(tl.ifaces[j].Subnet(), trunk)
	}
	return tl
}

// TestRouterCrossLANDelivery: a UDP datagram sent to an off-subnet address
// proxy-resolves to the local router interface, crosses the trunk, and is
// delivered to the remote host with the payload intact.
func TestRouterCrossLANDelivery(t *testing.T) {
	tl := buildTwoLAN(5, 1)
	var got []string
	tl.hosts[1].HandleUDP(9999, func(src ethaddr.IPv4, srcPort uint16, payload []byte) {
		got = append(got, fmt.Sprintf("%s:%d %q @%v", src, srcPort, payload, tl.ss.Shard(1).Now()))
	})
	tl.ss.Shard(0).At(100*time.Millisecond, func() {
		tl.hosts[0].SendUDP(tl.hosts[1].IP(), 1234, 9999, []byte("cross-lan"))
	})
	if err := tl.ss.RunUntil(5 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("remote host received %d datagrams, want 1", len(got))
	}
	if want := `10.0.0.1:1234 "cross-lan"`; !strings.HasPrefix(got[0], want) {
		t.Fatalf("delivery = %s, want prefix %s", got[0], want)
	}

	s0, s1 := tl.ifaces[0].Stats(), tl.ifaces[1].Stats()
	if s0.ProxyReplies == 0 {
		t.Errorf("LAN0 interface never proxy-replied: %+v", s0)
	}
	if s0.ForwardedOut != 1 {
		t.Errorf("LAN0 ForwardedOut = %d, want 1", s0.ForwardedOut)
	}
	if s1.DeliveredIn != 1 {
		t.Errorf("LAN1 DeliveredIn = %d, want 1", s1.DeliveredIn)
	}
	if s1.QueuedAwait != 1 {
		t.Errorf("LAN1 QueuedAwait = %d, want 1 (first arrival needs resolution)", s1.QueuedAwait)
	}
	if tl.ss.CrossMessages() == 0 {
		t.Error("no messages crossed the shard boundary")
	}

	// The proxy reply seeded h0's cache with the remote IP → router MAC.
	if mac, ok := tl.hosts[0].Cache().Lookup(tl.hosts[1].IP()); !ok || mac != tl.ifaces[0].MAC() {
		t.Errorf("h0 cache for remote IP = %v ok=%v, want router MAC %v", mac, ok, tl.ifaces[0].MAC())
	}
	// Delivery-side resolution learned the local host's real binding.
	if mac, ok := tl.ifaces[1].Lookup(tl.hosts[1].IP()); !ok || mac != tl.hosts[1].MAC() {
		t.Errorf("rtr1 binding for h1 = %v ok=%v, want %v", mac, ok, tl.hosts[1].MAC())
	}
}

// TestRouterTTLExpiry: a packet arriving with TTL 1 is dropped, not
// forwarded.
func TestRouterTTLExpiry(t *testing.T) {
	tl := buildTwoLAN(6, 1)
	delivered := false
	tl.hosts[1].HandleUDP(7, func(ethaddr.IPv4, uint16, []byte) { delivered = true })
	tl.ss.Shard(0).At(50*time.Millisecond, func() {
		// Resolve the router via proxy ARP first, then hand-craft a TTL-1
		// packet through the host's raw IPv4 send path.
		tl.hosts[0].Resolve(tl.hosts[1].IP(), func(mac ethaddr.MAC, ok bool) {
			if !ok {
				t.Error("proxy resolution failed")
				return
			}
			f := udpFrame(tl.hosts[0].MAC(), mac,
				tl.hosts[0].IP(), tl.hosts[1].IP(), 1, 7, []byte("stale"), 1)
			tl.hosts[0].SendFrame(f)
		})
	})
	if err := tl.ss.RunUntil(3 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if delivered {
		t.Fatal("TTL-1 packet crossed the router")
	}
	if s := tl.ifaces[0].Stats(); s.DroppedTTL != 1 {
		t.Fatalf("DroppedTTL = %d, want 1", s.DroppedTTL)
	}
}

// TestRouterNoRoute: packets for a subnet no trunk covers are counted and
// dropped.
func TestRouterNoRoute(t *testing.T) {
	tl := buildTwoLAN(7, 1)
	tl.ss.Shard(0).At(50*time.Millisecond, func() {
		f := udpFrame(tl.hosts[0].MAC(), tl.ifaces[0].MAC(),
			tl.hosts[0].IP(), ethaddr.MustParseIPv4("172.16.0.9"), 1, 7, []byte("lost"), 64)
		tl.hosts[0].SendFrame(f)
	})
	if err := tl.ss.RunUntil(time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if s := tl.ifaces[0].Stats(); s.DroppedNoRte != 1 {
		t.Fatalf("DroppedNoRte = %d, want 1", s.DroppedNoRte)
	}
}

// TestRouterPoisonable: the interface cache learns from spoofed traffic —
// an attacker claiming the victim's address hijacks inbound routed flows.
func TestRouterPoisonable(t *testing.T) {
	tl := buildTwoLAN(8, 1)
	victim, rtr := tl.hosts[1], tl.ifaces[1]
	evil := ethaddr.MustParseMAC("0e:66:66:66:66:66")
	// Seed the genuine binding, then spoof over it with a gratuitous reply
	// injected straight onto LAN1's wire.
	tl.ss.Shard(1).At(10*time.Millisecond, func() { victim.SendGratuitous() })
	tl.ss.Shard(1).At(20*time.Millisecond, func() {
		g := arppkt.NewGratuitousReply(evil, victim.IP())
		victim.SendFrame(&frame.Frame{
			Dst: ethaddr.BroadcastMAC, Src: evil, Type: frame.TypeARP,
			Payload: g.Encode(),
		})
	})
	if err := tl.ss.RunUntil(time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if mac, ok := rtr.Lookup(victim.IP()); !ok || mac != evil {
		t.Fatalf("router binding after spoof = %v ok=%v, want attacker %v", mac, ok, evil)
	}
}

// TestRouterWidthParity: the routed two-LAN exchange is byte-identical at
// worker widths 1 and 2.
func TestRouterWidthParity(t *testing.T) {
	run := func(workers int) string {
		tl := buildTwoLAN(5, workers)
		var log strings.Builder
		for i := 0; i < 2; i++ {
			i := i
			tl.hosts[i].HandleUDP(9999, func(src ethaddr.IPv4, srcPort uint16, payload []byte) {
				fmt.Fprintf(&log, "h%d got %q from %s @%v\n", i, payload, src, tl.ss.Shard(i).Now())
			})
			peer := tl.hosts[1-i]
			h := tl.hosts[i]
			sh := tl.ss.Shard(i)
			n := 0
			sh.Every(time.Duration(90+i*30)*time.Millisecond, func() {
				n++
				h.SendUDP(peer.IP(), 1234, 9999, []byte(fmt.Sprintf("m%d-%d", i, n)))
			})
		}
		if err := tl.ss.RunUntil(3 * time.Second); err != nil {
			t.Fatalf("RunUntil: %v", err)
		}
		fmt.Fprintf(&log, "stats %+v %+v cross %d\n",
			tl.ifaces[0].Stats(), tl.ifaces[1].Stats(), tl.ss.CrossMessages())
		return log.String()
	}
	want := run(1)
	if !strings.Contains(want, "h1 got") || !strings.Contains(want, "h0 got") {
		t.Fatalf("bidirectional traffic missing:\n%s", want)
	}
	if got := run(2); got != want {
		t.Fatalf("width 2 diverged\nwidth1:\n%s\nwidth2:\n%s", want, got)
	}
}

// TestTrunkPartitionDropsCrossLAN: a partitioned trunk eats everything
// offered to it — counted, not delivered — and restoring it lets traffic
// flow again. The CrossLink stays wired throughout, so the sharded
// engine's lookahead bound is untouched.
func TestTrunkPartitionDropsCrossLAN(t *testing.T) {
	tl := buildTwoLAN(9, 1)
	var got int
	tl.hosts[1].HandleUDP(9999, func(ethaddr.IPv4, uint16, []byte) { got++ })
	send := func() {
		tl.hosts[0].SendUDP(tl.hosts[1].IP(), 1234, 9999, []byte("probe"))
	}
	tl.ss.Shard(0).At(100*time.Millisecond, send) // before the partition
	tl.ss.Shard(0).At(500*time.Millisecond, func() { tl.trunks[0].SetDown(true) })
	tl.ss.Shard(0).At(600*time.Millisecond, send) // into the partition
	tl.ss.Shard(0).At(900*time.Millisecond, func() { tl.trunks[0].SetDown(false) })
	tl.ss.Shard(0).At(time.Second, send) // after restoration
	if err := tl.ss.RunUntil(3 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if got != 2 {
		t.Fatalf("delivered %d datagrams, want 2 (one eaten by the partition)", got)
	}
	if st := tl.trunks[0].Stats(); st.PartitionDropped != 1 {
		t.Fatalf("PartitionDropped = %d, want 1", st.PartitionDropped)
	}
}

// TestRouterFlushBindings: flushing wipes the learned table and reports the
// count; the next delivery re-resolves and repopulates it.
func TestRouterFlushBindings(t *testing.T) {
	tl := buildTwoLAN(10, 1)
	var got int
	tl.hosts[1].HandleUDP(9999, func(ethaddr.IPv4, uint16, []byte) { got++ })
	send := func() {
		tl.hosts[0].SendUDP(tl.hosts[1].IP(), 1234, 9999, []byte("probe"))
	}
	tl.ss.Shard(0).At(100*time.Millisecond, send)
	flushed := -1
	tl.ss.Shard(1).At(2*time.Second, func() { flushed = tl.ifaces[1].FlushBindings() })
	tl.ss.Shard(0).At(3*time.Second, send)
	if err := tl.ss.RunUntil(6 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if flushed < 1 {
		t.Fatalf("FlushBindings dropped %d bindings, want >= 1", flushed)
	}
	if got != 2 {
		t.Fatalf("delivered %d datagrams, want 2 (flush must only force re-resolution)", got)
	}
	if mac, ok := tl.ifaces[1].Lookup(tl.hosts[1].IP()); !ok || mac != tl.hosts[1].MAC() {
		t.Fatalf("binding not relearned after flush: %v ok=%v", mac, ok)
	}
}
