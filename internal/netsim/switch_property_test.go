package netsim

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/ethaddr"
	"repro/internal/frame"
	"repro/internal/sim"
)

// wireOp is one randomized frame injection.
type wireOp struct {
	port    uint8
	srcIdx  uint8
	dstIdx  uint8 // 255 = broadcast
	advance uint16
}

// Generate implements quick.Generator.
func (wireOp) Generate(r *rand.Rand, _ int) reflect.Value {
	dst := uint8(r.Intn(32))
	if r.Intn(4) == 0 {
		dst = 255
	}
	return reflect.ValueOf(wireOp{
		port:    uint8(r.Intn(4)),
		srcIdx:  uint8(r.Intn(32)),
		dstIdx:  dst,
		advance: uint16(r.Intn(2000)),
	})
}

var _ quick.Generator = wireOp{}

func opMAC(i uint8) ethaddr.MAC {
	if i == 255 {
		return ethaddr.BroadcastMAC
	}
	return ethaddr.MAC{0x02, 0x42, 0xac, 0, 1, i}
}

// TestPropertyCAMNeverExceedsCapacity: no frame stream may grow the CAM
// past its configured bound, with or without random eviction.
func TestPropertyCAMNeverExceedsCapacity(t *testing.T) {
	run := func(ops []wireOp, evict bool) bool {
		s := sim.NewScheduler(1)
		swOpts := []SwitchOption{WithCAMCapacity(8), WithCAMTTL(time.Second)}
		if evict {
			swOpts = append(swOpts, WithCAMEvictRandom())
		}
		sw := NewSwitch(s, swOpts...)
		nics := make([]*NIC, 4)
		gen := ethaddr.NewGen(1)
		for i := range nics {
			nics[i] = NewNIC(s, gen.SeqMAC())
			sw.AddPort().Attach(nics[i])
		}
		for _, op := range ops {
			nics[int(op.port)%len(nics)].Send(&frame.Frame{
				Dst:  opMAC(op.dstIdx),
				Src:  opMAC(op.srcIdx % 32),
				Type: frame.TypeIPv4,
			})
			var done bool
			s.After(time.Duration(op.advance)*time.Millisecond, func() { done = true })
			_ = s.Run()
			_ = done
			if sw.CAMLen() > 8 {
				return false
			}
		}
		return true
	}
	f := func(ops []wireOp, evict bool) bool { return run(ops, evict) }
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDeliveryRespectsAddressing: no NIC without promiscuous mode
// ever accepts a unicast frame addressed to another station, under any
// traffic pattern.
func TestPropertyDeliveryRespectsAddressing(t *testing.T) {
	f := func(ops []wireOp) bool {
		s := sim.NewScheduler(1)
		sw := NewSwitch(s)
		const n = 4
		nics := make([]*NIC, n)
		wrong := false
		for i := range nics {
			mac := ethaddr.MAC{0x02, 0x42, 0xac, 0, 2, byte(i)}
			nic := NewNIC(s, mac)
			nic.SetHandler(func(f *frame.Frame) {
				if f.Dst != mac && !f.Dst.IsMulticast() {
					wrong = true
				}
			})
			sw.AddPort().Attach(nic)
			nics[i] = nic
		}
		for _, op := range ops {
			nics[int(op.port)%n].Send(&frame.Frame{
				Dst:  opMAC(op.dstIdx),
				Src:  nics[int(op.port)%n].MAC(),
				Type: frame.TypeIPv4,
			})
		}
		if err := s.Run(); err != nil {
			return false
		}
		return !wrong
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyVLANIsolationHolds: no frame injected in one VLAN is ever
// delivered to a station in another, regardless of CAM state or flooding.
func TestPropertyVLANIsolationHolds(t *testing.T) {
	f := func(ops []wireOp) bool {
		s := sim.NewScheduler(1)
		sw := NewSwitch(s, WithCAMCapacity(4)) // tiny CAM: force fail-open floods
		const n = 4
		leaked := false
		nics := make([]*NIC, n)
		for i := range nics {
			nic := NewNIC(s, ethaddr.MAC{0x02, 0x42, 0xac, 0, 3, byte(i)})
			nic.SetPromiscuous(true) // accept anything that arrives
			if i >= 2 {
				nic.SetHandler(func(*frame.Frame) { leaked = true })
			}
			p := sw.AddPort()
			if i >= 2 {
				p.SetVLAN(2)
			}
			p.Attach(nic)
			nics[i] = nic
		}
		// Inject only from VLAN-1 ports (0 and 1).
		for _, op := range ops {
			nics[int(op.port)%2].Send(&frame.Frame{
				Dst:  opMAC(op.dstIdx),
				Src:  opMAC(op.srcIdx % 32),
				Type: frame.TypeIPv4,
			})
		}
		if err := s.Run(); err != nil {
			return false
		}
		return !leaked
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
