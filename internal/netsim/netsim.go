// Package netsim implements the simulated layer-2 fabric: NICs, links with
// latency/jitter/loss, a learning switch with a bounded CAM table (and the
// fail-open flooding behaviour real switches exhibit when it fills), a hub,
// port mirroring for network-based detectors, and inline frame filters for
// switch-resident prevention schemes such as Dynamic ARP Inspection.
//
// Everything is event-driven off a sim.Scheduler and deterministic for a
// given seed.
package netsim

import (
	"time"

	"repro/internal/ethaddr"
	"repro/internal/frame"
	"repro/internal/sim"
)

// TapEvent is one frame observed at a monitoring point (a mirror port or an
// inline tap). Detectors consume streams of these.
type TapEvent struct {
	At      time.Duration
	Port    int // ingress port id on the observed device
	Frame   *frame.Frame
	WireLen int
}

// TapFunc receives tap events. Observers must not retain or mutate the frame
// payload; Clone if needed.
type TapFunc func(TapEvent)

// FilterVerdict is the decision of an inline frame filter.
type FilterVerdict int

// Filter verdicts.
const (
	VerdictAllow FilterVerdict = iota + 1
	VerdictDrop
)

// FilterFunc inspects a frame arriving on a port and decides its fate. It
// runs inline in the forwarding path, exactly where Dynamic ARP Inspection
// sits on a managed switch.
type FilterFunc func(port int, f *frame.Frame) FilterVerdict

// linkParams describe one attachment's transmission characteristics.
type linkParams struct {
	latency time.Duration
	jitter  time.Duration
	loss    float64
	bps     int64 // serialization rate; 0 = infinite (no per-byte delay)
}

// LinkOption configures an attachment created by Port.Attach.
type LinkOption func(*linkParams)

// WithLatency sets the one-way propagation delay (default 50µs, a typical
// switched-LAN figure).
func WithLatency(d time.Duration) LinkOption {
	return func(p *linkParams) { p.latency = d }
}

// WithJitter adds a uniform random delay in [0, d) to each transmission.
func WithJitter(d time.Duration) LinkOption {
	return func(p *linkParams) { p.jitter = d }
}

// WithLoss sets the independent per-frame drop probability.
func WithLoss(prob float64) LinkOption {
	return func(p *linkParams) { p.loss = prob }
}

// WithBandwidth adds serialization delay: each frame takes wirelen·8/bps
// on top of the propagation latency, so a 1514-octet frame on Fast
// Ethernet costs ≈121µs where a minimum frame costs ≈5µs. Zero (the
// default) models an infinitely fast line.
func WithBandwidth(bitsPerSecond int64) LinkOption {
	return func(p *linkParams) { p.bps = bitsPerSecond }
}

// defaultLink returns the default attachment parameters.
func defaultLink() linkParams {
	return linkParams{latency: 50 * time.Microsecond}
}

// NICStats are transmit/receive counters for one NIC.
type NICStats struct {
	TxFrames, RxFrames uint64
	TxBytes, RxBytes   uint64
}

// NIC is a simulated network interface. A host stack (or an attacker tool)
// sets a receive handler and transmits frames; address filtering follows
// real NIC semantics, including promiscuous mode for sniffers.
type NIC struct {
	mac         ethaddr.MAC
	sched       *sim.Scheduler
	port        *Port
	params      linkParams
	handler     func(*frame.Frame)
	promiscuous bool
	up          bool
	stats       NICStats
}

// NewNIC creates an interface with the given hardware address.
func NewNIC(s *sim.Scheduler, mac ethaddr.MAC) *NIC {
	return &NIC{mac: mac, sched: s, up: true}
}

// MAC returns the burned-in hardware address.
func (n *NIC) MAC() ethaddr.MAC { return n.mac }

// SetHandler installs the receive callback invoked for every frame the NIC
// accepts.
func (n *NIC) SetHandler(fn func(*frame.Frame)) { n.handler = fn }

// SetPromiscuous toggles acceptance of frames addressed to other stations.
func (n *NIC) SetPromiscuous(v bool) { n.promiscuous = v }

// SetUp administratively enables or disables the interface.
func (n *NIC) SetUp(v bool) { n.up = v }

// Stats returns a copy of the interface counters.
func (n *NIC) Stats() NICStats { return n.stats }

// Send transmits a frame out the attached port. The source address is taken
// from the frame as crafted — spoofing tools depend on that — so the NIC
// does not rewrite it.
func (n *NIC) Send(f *frame.Frame) {
	if n.port == nil || !n.up {
		return
	}
	n.stats.TxFrames++
	n.stats.TxBytes += uint64(f.WireLen())
	port, params := n.port, n.params
	transmit(n.sched, params, f.WireLen(), func() { port.ingress(f) })
}

// deliver is the link-side entry point for frames arriving at the NIC.
func (n *NIC) deliver(f *frame.Frame) {
	if !n.up {
		return
	}
	accept := n.promiscuous || f.Dst == n.mac || f.Dst.IsMulticast()
	if !accept {
		return
	}
	n.stats.RxFrames++
	n.stats.RxBytes += uint64(f.WireLen())
	if n.handler != nil {
		n.handler(f)
	}
}

// transmit schedules fn after the link's delay, honouring serialization
// rate, jitter, and loss.
func transmit(s *sim.Scheduler, p linkParams, wireLen int, fn func()) {
	if p.loss > 0 && s.Rand().Float64() < p.loss {
		return
	}
	d := p.latency
	if p.bps > 0 {
		d += time.Duration(int64(wireLen) * 8 * int64(time.Second) / p.bps)
	}
	if p.jitter > 0 {
		d += time.Duration(s.Rand().Int63n(int64(p.jitter)))
	}
	s.After(d, fn)
}
