// Package netsim implements the simulated layer-2 fabric: NICs, links with
// latency/jitter/loss, a learning switch with a bounded CAM table (and the
// fail-open flooding behaviour real switches exhibit when it fills), a hub,
// port mirroring for network-based detectors, and inline frame filters for
// switch-resident prevention schemes such as Dynamic ARP Inspection.
//
// Everything is event-driven off a sim.Scheduler and deterministic for a
// given seed.
package netsim

import (
	"math/rand"
	"time"

	"repro/internal/ethaddr"
	"repro/internal/frame"
	"repro/internal/sim"
	"repro/internal/telemetry/causal"
)

// transitCache is the per-scheduler recycling store for transit and
// floodTransit task shells. It lives in the scheduler's scratch slot
// (sim.Scheduler.Scratch), which survives scheduler Reset: experiments
// build thousands of short-lived LANs on pooled schedulers, and homing the
// free lists on the one object that outlives a trial means the next LAN
// starts with a warm list instead of re-carving one. Everything on the
// cache belongs to one single-threaded scheduler, so — unlike a
// process-wide sync.Pool, whose per-Get pin/unpin is an order of magnitude
// more than this pop — the lists need no synchronization at all.
type transitCache struct {
	free  *transit
	flood *floodTransit
}

// cacheOf returns the scheduler's transit cache, installing one on first
// use. Called at Attach/NewSwitch time only; the hot path reaches the
// cache through the pointer captured there.
func cacheOf(s *sim.Scheduler) *transitCache {
	if c, ok := s.Scratch(sim.ScratchTasks).(*transitCache); ok {
		return c
	}
	c := &transitCache{}
	s.SetScratch(sim.ScratchTasks, c)
	return c
}

// transit is one frame's scheduled traversal of a link, recycled through
// the scheduler's transitCache so the NIC→Link→Switch→NIC hot path
// allocates nothing per hop: instead of capturing the frame and its
// destination into a fresh closure per transmission, the link pops a
// transit off the free list, points it at the frame and the receiving
// side, and hands it to the scheduler as a sim.Task. Exactly one of nic
// and port is set. uses counts scheduled deliveries (a duplication fault
// schedules the same transit twice); the last delivery parks the transit
// back on the list.
type transit struct {
	cache *transitCache // owner; recycle destination
	next  *transit
	nic   *NIC  // deliver toward the attached NIC
	port  *Port // ingress into the switch/hub fabric
	f     *frame.Frame
	sp    *causal.ActiveSpan // open link span; finished at delivery
	uses  int
}

// Run implements sim.Task: finish the link span, deliver the frame, and
// recycle the transit once its last scheduled delivery has run.
func (t *transit) Run() {
	nic, port, f, sp := t.nic, t.port, t.f, t.sp
	if t.uses--; t.uses == 0 {
		// Drop every reference before parking: the cache outlives the
		// trial, so a parked transit must not pin the frame, the span, or
		// the previous LAN's topology.
		t.nic, t.port, t.f, t.sp = nil, nil, nil, nil
		c := t.cache
		t.next = c.free
		c.free = t
	}
	sp.Finish()
	if nic != nil {
		nic.deliver(f)
		return
	}
	port.ingress(f)
}

// floodTransit is one batched broadcast fan-out: a single scheduled task
// that delivers the shared read-only frame to every flood target at once,
// replacing one event per egress port. Switch.flood only builds one when
// every target link is a plain pipe with one common delay, so the single
// delivery instant is exact, and the delivery loop runs in port order —
// the same order the per-port events would have executed in. Recycled
// through the scheduler's transitCache, keeping the grown NIC slice
// capacity across trials.
type floodTransit struct {
	cache *transitCache // owner; recycle destination
	next  *floodTransit
	f     *frame.Frame
	nics  []*NIC
}

// Run implements sim.Task: deliver to every batched NIC, then recycle.
func (ft *floodTransit) Run() {
	f := ft.f
	for _, n := range ft.nics {
		n.deliver(f)
	}
	ft.f = nil
	for i := range ft.nics {
		ft.nics[i] = nil // don't pin the previous LAN's NICs across trials
	}
	ft.nics = ft.nics[:0]
	c := ft.cache
	ft.next = c.flood
	c.flood = ft
}

// TapEvent is one frame observed at a monitoring point (a mirror port or an
// inline tap). Detectors consume streams of these.
type TapEvent struct {
	At      time.Duration
	Port    int // ingress port id on the observed device
	Frame   *frame.Frame
	WireLen int
}

// TapFunc receives tap events. Observers must not retain or mutate the frame
// payload; Clone if needed.
type TapFunc func(TapEvent)

// FilterVerdict is the decision of an inline frame filter.
type FilterVerdict int

// Filter verdicts.
const (
	VerdictAllow FilterVerdict = iota + 1
	VerdictDrop
)

// FilterFunc inspects a frame arriving on a port and decides its fate. It
// runs inline in the forwarding path, exactly where Dynamic ARP Inspection
// sits on a managed switch.
type FilterFunc func(port int, f *frame.Frame) FilterVerdict

// linkParams describe one attachment's transmission characteristics.
type linkParams struct {
	latency time.Duration
	jitter  time.Duration
	loss    float64
	bps     int64 // serialization rate; 0 = infinite (no per-byte delay)
}

// LinkOption configures an attachment created by Port.Attach.
type LinkOption func(*linkParams)

// WithLatency sets the one-way propagation delay (default 50µs, a typical
// switched-LAN figure).
func WithLatency(d time.Duration) LinkOption {
	return func(p *linkParams) { p.latency = d }
}

// WithJitter adds a uniform random delay in [0, d) to each transmission.
func WithJitter(d time.Duration) LinkOption {
	return func(p *linkParams) { p.jitter = d }
}

// WithLoss sets the independent per-frame drop probability.
func WithLoss(prob float64) LinkOption {
	return func(p *linkParams) { p.loss = prob }
}

// WithBandwidth adds serialization delay: each frame takes wirelen·8/bps
// on top of the propagation latency, so a 1514-octet frame on Fast
// Ethernet costs ≈121µs where a minimum frame costs ≈5µs. Zero (the
// default) models an infinitely fast line.
func WithBandwidth(bitsPerSecond int64) LinkOption {
	return func(p *linkParams) { p.bps = bitsPerSecond }
}

// defaultLink returns the default attachment parameters.
func defaultLink() linkParams {
	return linkParams{latency: 50 * time.Microsecond}
}

// NICStats are transmit/receive counters for one NIC.
type NICStats struct {
	TxFrames, RxFrames uint64
	TxBytes, RxBytes   uint64
}

// NIC is a simulated network interface. A host stack (or an attacker tool)
// sets a receive handler and transmits frames; address filtering follows
// real NIC semantics, including promiscuous mode for sniffers.
type NIC struct {
	mac         ethaddr.MAC
	sched       *sim.Scheduler
	port        *Port
	link        *Link
	handler     func(*frame.Frame)
	promiscuous bool
	up          bool
	stats       NICStats
	rec         *causal.Recorder // causal tracing; nil (no-op) when disabled
}

// NewNIC creates an interface with the given hardware address. If a causal
// recorder is attached to the scheduler at this point, the NIC's
// transmissions are traced.
func NewNIC(s *sim.Scheduler, mac ethaddr.MAC) *NIC {
	return &NIC{mac: mac, sched: s, up: true, rec: causal.Of(s)}
}

// MAC returns the burned-in hardware address.
func (n *NIC) MAC() ethaddr.MAC { return n.mac }

// SetHandler installs the receive callback invoked for every frame the NIC
// accepts.
func (n *NIC) SetHandler(fn func(*frame.Frame)) { n.handler = fn }

// SetPromiscuous toggles acceptance of frames addressed to other stations.
func (n *NIC) SetPromiscuous(v bool) { n.promiscuous = v }

// SetUp administratively enables or disables the interface.
func (n *NIC) SetUp(v bool) { n.up = v }

// Link returns the attachment's shared link state (nil before Attach).
func (n *NIC) Link() *Link { return n.link }

// Stats returns a copy of the interface counters.
func (n *NIC) Stats() NICStats { return n.stats }

// Send transmits a frame out the attached port. The source address is taken
// from the frame as crafted — spoofing tools depend on that — so the NIC
// does not rewrite it.
func (n *NIC) Send(f *frame.Frame) {
	if n.port == nil || !n.up {
		return
	}
	n.stats.TxFrames++
	n.stats.TxBytes += uint64(f.WireLen())
	// A tx span anchors the frame in the causal graph: a root when nothing
	// is active (ordinary host traffic), a child of the attack or
	// resolution span otherwise. The whole block is gated so the untraced
	// hot path never evaluates the type/address strings.
	if n.rec != nil {
		sp := n.rec.Begin("tx", f.Type.String())
		sp.Attr("src", f.Src.String()).Attr("dst", f.Dst.String())
		n.link.transmit(f, nil, n.port)
		sp.End()
		return
	}
	n.link.transmit(f, nil, n.port)
}

// deliver is the link-side entry point for frames arriving at the NIC.
func (n *NIC) deliver(f *frame.Frame) {
	if !n.up {
		return
	}
	accept := n.promiscuous || f.Dst == n.mac || f.Dst.IsMulticast()
	if !accept {
		return
	}
	n.stats.RxFrames++
	n.stats.RxBytes += uint64(f.WireLen())
	if n.handler != nil {
		n.handler(f)
	}
}

// Verdict is an Impairment's decision for one frame transmission.
type Verdict struct {
	// Drop discards the frame (burst loss).
	Drop bool
	// Delay is added on top of the link's own delays, pushing the frame
	// behind later traffic — bounded reordering.
	Delay time.Duration
	// Duplicate delivers a second copy of the frame, DuplicateDelay after
	// the first copy.
	Duplicate      bool
	DuplicateDelay time.Duration
}

// Impairment is consulted once per frame transmission on a link and decides
// extra treatment beyond the link's static parameters. Implementations live
// in internal/faults; netsim defines only the contract so the forwarding
// path stays ignorant of fault semantics. A nil impairment costs nothing.
type Impairment interface {
	Judge(wireLen int) Verdict
}

// LinkStats counts one attachment's transmission outcomes, both directions
// combined.
type LinkStats struct {
	Delivered    uint64 // frames scheduled for delivery (duplicate copies included)
	LossDropped  uint64 // dropped by the link's static loss probability
	FaultDropped uint64 // dropped by an injected impairment (burst loss)
	DownDropped  uint64 // dropped while the link was administratively down
	Duplicated   uint64 // extra copies injected by a duplication fault
	Reordered    uint64 // frames delayed out of order by a reordering fault
}

// Link is the shared state of one NIC↔port attachment. Both transmission
// directions consult the same Link, so an administrative flap or a
// burst-loss episode hits the pair symmetrically, as on a real cable.
//
// Static random loss draws from a per-link stream derived from the
// scheduler's seed (sim.Scheduler.DeriveRand), never from the shared
// simulation stream: attaching another lossy link, or arming a fault
// injector, cannot perturb the sequence of drops an existing link sees.
type Link struct {
	sched   *sim.Scheduler
	params  linkParams
	lossRng *rand.Rand // non-nil iff the link has static loss; assigned at Attach
	down    bool
	impair  Impairment
	stats   LinkStats
	rec     *causal.Recorder // causal tracing; nil (no-op) when disabled
	cache   *transitCache    // scheduler-wide transit recycling store
}

// SetDown administratively raises or lowers the link. While down, every
// frame offered in either direction is counted and discarded — the
// link-flap fault's hook.
func (l *Link) SetDown(v bool) { l.down = v }

// Down reports whether the link is administratively down.
func (l *Link) Down() bool { return l.down }

// SetImpairment installs (or, with nil, removes) the link's fault hook.
func (l *Link) SetImpairment(imp Impairment) { l.impair = imp }

// Stats returns a copy of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// transmit schedules delivery of f toward nic (link egress) or port
// (fabric ingress) after the link's delay, honouring the administrative
// state, any installed impairment, serialization rate, jitter, and loss.
// The frame is carried by a pooled transit task, so a transmission costs no
// allocation.
func (l *Link) transmit(f *frame.Frame, nic *NIC, port *Port) {
	// The transit span stays open across the scheduled delay and is finished
	// by the delivery-side task, so its extent is the frame's actual time
	// on the wire; a dropped frame closes it immediately with the reason.
	sp := l.rec.Begin("link", "transit")
	if l.down {
		l.stats.DownDropped++
		sp.Attr("drop", "down").End()
		return
	}
	wireLen := f.WireLen()
	var v Verdict
	if l.impair != nil {
		v = l.impair.Judge(wireLen)
		if v.Drop {
			l.stats.FaultDropped++
			sp.Attr("drop", "fault").End()
			return
		}
	}
	p := &l.params
	if p.loss > 0 && l.lossRng.Float64() < p.loss {
		l.stats.LossDropped++
		sp.Attr("drop", "loss").End()
		return
	}
	d := p.latency
	if p.bps > 0 {
		d += time.Duration(int64(wireLen) * 8 * int64(time.Second) / p.bps)
	}
	if p.jitter > 0 {
		d += time.Duration(l.sched.Int63n(int64(p.jitter)))
	}
	if v.Delay > 0 {
		l.stats.Reordered++
		d += v.Delay
	}
	l.stats.Delivered++
	c := l.cache
	t := c.free
	if t != nil {
		c.free = t.next
		t.next = nil
	} else {
		// Carve a slab: amortizes ramp-up eight transits at a time the
		// first time this scheduler's traffic reaches a new peak.
		slab := make([]transit, 8)
		for i := 1; i < len(slab); i++ {
			slab[i].cache = c
			slab[i].next = c.free
			c.free = &slab[i]
		}
		t = &slab[0]
		t.cache = c
	}
	t.nic, t.port, t.f, t.sp, t.uses = nic, port, f, sp, 1
	l.sched.AfterTask(d, t)
	if v.Duplicate {
		l.stats.Duplicated++
		l.stats.Delivered++
		t.uses = 2
		l.sched.AfterTask(d+v.DuplicateDelay, t)
	}
	sp.Detach()
}
