package netsim

import (
	"strconv"
	"time"

	"repro/internal/ethaddr"
	"repro/internal/frame"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/telemetry/causal"
)

// camKey scopes learned stations per VLAN: the same MAC may legitimately
// appear in two VLANs (a router-on-a-stick), and isolation requires that a
// station learned in one VLAN is invisible to forwarding in another.
type camKey struct {
	vlan uint16
	mac  ethaddr.MAC
}

// camEntry is one learned MAC→port association with an expiry instant and
// its position in the insertion-order index (camOrder).
type camEntry struct {
	port    int
	expires time.Duration
	idx     int
}

// SwitchStats are forwarding-plane counters for one switch.
type SwitchStats struct {
	Forwarded   uint64 // unicast frames sent to a single learned port
	Flooded     uint64 // frames replicated to all ports (broadcast or CAM miss)
	Filtered    uint64 // frames dropped by the inline filter
	Learned     uint64 // CAM insertions
	LearnMisses uint64 // insertions refused because the CAM was full
	// BytesByType counts ingress octets per protocol.
	BytesByType map[frame.EtherType]uint64
	// BytesOutByType counts egress octets per protocol, including every
	// flooded replica — the true load the fabric carries.
	BytesOutByType map[frame.EtherType]uint64
}

// SwitchOption configures a Switch.
type SwitchOption func(*Switch)

// WithCAMCapacity bounds the CAM table (default 1024 entries, the capacity
// of small home routers such as the MikroTik hAP). When the table is full
// the switch stops learning, so frames to unlearned stations flood — the
// fail-open behaviour MAC-flooding attacks exploit.
func WithCAMCapacity(n int) SwitchOption {
	return func(sw *Switch) { sw.camCap = n }
}

// WithCAMTTL sets the aging time for CAM entries (default 300s, the common
// switch default).
func WithCAMTTL(d time.Duration) SwitchOption {
	return func(sw *Switch) { sw.camTTL = d }
}

// WithFilter installs an inline filter in the forwarding path.
func WithFilter(f FilterFunc) SwitchOption {
	return func(sw *Switch) { sw.filter = f }
}

// WithCAMEvictRandom makes a full CAM table evict a random victim entry to
// admit a new station, modelling the hash-bucket collisions of real CAM
// hardware. Without it a full table simply refuses to learn. Random
// eviction is what makes sustained MAC flooding displace legitimate
// entries and force fail-open flooding of their traffic.
func WithCAMEvictRandom() SwitchOption {
	return func(sw *Switch) { sw.evictRandom = true }
}

// Switch is a transparent learning bridge with a bounded CAM table, optional
// inline filtering, port mirroring, and taps.
type Switch struct {
	sched *sim.Scheduler
	ports []*Port
	cam   map[camKey]camEntry
	// camOrder indexes cam keys in insertion order so eviction victims
	// (expired reclaim, random eviction) are chosen deterministically —
	// iterating the map directly would follow Go's per-process randomized
	// order and make eviction-heavy runs unreproducible across processes.
	camOrder    []camKey
	camCap      int
	camTTL      time.Duration
	filter      FilterFunc
	taps        []TapFunc
	mirror      *Port // destination for mirrored traffic, nil when disabled
	mirrSrc     map[int]bool
	evictRandom bool
	stats       SwitchStats
	rec         *causal.Recorder // causal tracing; nil (no-op) when disabled
	cache       *transitCache    // scheduler-wide transit recycling store

	// Telemetry handles; nil (no-op) unless Instrument is called.
	reg            *telemetry.Registry
	mForwarded     *telemetry.Counter
	mFlooded       *telemetry.Counter
	mFiltered      *telemetry.Counter
	mCAMInserts    *telemetry.Counter
	mCAMEvictExp   *telemetry.Counter
	mCAMEvictRand  *telemetry.Counter
	mLearnMisses   *telemetry.Counter
	mFailOpenTrans *telemetry.Counter
	mPortBytes     []*telemetry.Counter // ingress octets, indexed by port id
	failOpen       bool                 // currently refusing to learn (CAM full)
}

// NewSwitch creates a switch with no ports; add them with AddPort.
func NewSwitch(s *sim.Scheduler, opts ...SwitchOption) *Switch {
	sw := &Switch{
		sched:   s,
		rec:     causal.Of(s),
		cache:   cacheOf(s),
		cam:     make(map[camKey]camEntry),
		camCap:  1024,
		camTTL:  300 * time.Second,
		mirrSrc: make(map[int]bool),
		stats: SwitchStats{
			BytesByType:    make(map[frame.EtherType]uint64),
			BytesOutByType: make(map[frame.EtherType]uint64),
		},
	}
	for _, opt := range opts {
		opt(sw)
	}
	return sw
}

// Port is one switch (or hub) interface. A NIC attaches to exactly one port.
type Port struct {
	id      int
	vlan    uint16
	ingress func(*frame.Frame)
	nic     *NIC // attached station; nil before Attach
}

// send transmits a frame out the port toward the attached NIC.
func (p *Port) send(f *frame.Frame) {
	n := p.nic
	n.link.transmit(f, n, nil)
}

// ID returns the port number, stable for the life of the device.
func (p *Port) ID() int { return p.id }

// VLAN returns the port's access VLAN.
func (p *Port) VLAN() uint16 { return p.vlan }

// SetVLAN moves the port to an access VLAN. All ports default to VLAN 1.
// Broadcasts, floods, and learned forwarding stay within a VLAN —
// segmentation bounds a poisoner's blast radius to its own segment.
func (p *Port) SetVLAN(vid uint16) { p.vlan = vid }

// Attach wires a NIC to this port with the given link characteristics,
// replacing any previous attachment. It returns the attachment's Link so
// callers (labnet, fault plans) can flap it or install impairments later.
func (p *Port) Attach(n *NIC, opts ...LinkOption) *Link {
	params := defaultLink()
	for _, opt := range opts {
		opt(&params)
	}
	l := &Link{sched: n.sched, params: params, rec: causal.Of(n.sched), cache: cacheOf(n.sched)}
	if params.loss > 0 {
		// The loss stream is assigned in attach order, a construction-time
		// property, so traffic on one link never re-keys another's stream.
		l.lossRng = n.sched.DeriveRand("netsim/link-loss")
	}
	n.port = p
	n.link = l
	p.nic = n
	return l
}

// AddPort creates a new port on the switch, in VLAN 1.
func (sw *Switch) AddPort() *Port {
	p := &Port{id: len(sw.ports), vlan: 1}
	p.ingress = func(f *frame.Frame) { sw.ingress(p.id, f) }
	sw.ports = append(sw.ports, p)
	if sw.reg != nil {
		sw.mPortBytes = append(sw.mPortBytes,
			sw.reg.Counter("switch_port_bytes_total", telemetry.L("port", strconv.Itoa(p.id))))
	}
	return p
}

// Instrument attaches the forwarding plane to a telemetry registry: CAM
// churn (inserts, expiry reclaims, random evictions, fail-open
// transitions), frames forwarded vs flooded vs filtered, and per-port
// ingress byte counters. Safe to call before or after ports are added.
func (sw *Switch) Instrument(reg *telemetry.Registry) {
	sw.reg = reg
	sw.mForwarded = reg.Counter("switch_frames_forwarded_total")
	sw.mFlooded = reg.Counter("switch_frames_flooded_total")
	sw.mFiltered = reg.Counter("switch_frames_filtered_total")
	sw.mCAMInserts = reg.Counter("switch_cam_inserts_total")
	sw.mCAMEvictExp = reg.Counter("switch_cam_evictions_total", telemetry.L("reason", "expired"))
	sw.mCAMEvictRand = reg.Counter("switch_cam_evictions_total", telemetry.L("reason", "random"))
	sw.mLearnMisses = reg.Counter("switch_learn_misses_total")
	sw.mFailOpenTrans = reg.Counter("switch_failopen_transitions_total")
	sw.mPortBytes = sw.mPortBytes[:0]
	for _, p := range sw.ports {
		sw.mPortBytes = append(sw.mPortBytes,
			reg.Counter("switch_port_bytes_total", telemetry.L("port", strconv.Itoa(p.id))))
	}
}

// AddTap registers an observer for every frame entering the switch,
// regardless of filtering outcome. This models a passive inline tap.
func (sw *Switch) AddTap(fn TapFunc) { sw.taps = append(sw.taps, fn) }

// SetFilter installs or replaces the inline filter, discarding any chain
// built with AddFilter.
func (sw *Switch) SetFilter(f FilterFunc) { sw.filter = f }

// AddFilter appends an inline filter to the forwarding path. Filters run in
// installation order and drop wins: a frame dropped by an earlier filter
// never reaches later ones, modelling serially cascaded inline enforcement
// (e.g. dynamic ARP inspection behind port security).
func (sw *Switch) AddFilter(f FilterFunc) {
	if f == nil {
		return
	}
	if sw.filter == nil {
		sw.filter = f
		return
	}
	prev := sw.filter
	sw.filter = func(port int, fr *frame.Frame) FilterVerdict {
		if prev(port, fr) == VerdictDrop {
			return VerdictDrop
		}
		return f(port, fr)
	}
}

// MirrorAllTo copies the ingress traffic of every other port to dst, the
// configuration used to feed a detector appliance.
func (sw *Switch) MirrorAllTo(dst *Port) {
	sw.mirror = dst
	sw.mirrSrc = nil // nil means "all ports"
}

// MirrorPortsTo copies the ingress traffic of the given ports to dst.
func (sw *Switch) MirrorPortsTo(dst *Port, src ...*Port) {
	sw.mirror = dst
	sw.mirrSrc = make(map[int]bool, len(src))
	for _, p := range src {
		sw.mirrSrc[p.id] = true
	}
}

// Stats returns a copy of the forwarding counters.
func (sw *Switch) Stats() SwitchStats {
	out := sw.stats
	out.BytesByType = make(map[frame.EtherType]uint64, len(sw.stats.BytesByType))
	for k, v := range sw.stats.BytesByType {
		out.BytesByType[k] = v
	}
	out.BytesOutByType = make(map[frame.EtherType]uint64, len(sw.stats.BytesOutByType))
	for k, v := range sw.stats.BytesOutByType {
		out.BytesOutByType[k] = v
	}
	return out
}

// CAMLen returns the number of live (unexpired) CAM entries.
func (sw *Switch) CAMLen() int {
	now := sw.sched.Now()
	n := 0
	for _, e := range sw.cam {
		if e.expires > now {
			n++
		}
	}
	return n
}

// CAMLookup reports the port a station was learned on in any VLAN, if the
// entry is live.
func (sw *Switch) CAMLookup(mac ethaddr.MAC) (int, bool) {
	now := sw.sched.Now()
	for k, e := range sw.cam {
		if k.mac == mac && e.expires > now {
			return e.port, true
		}
	}
	return 0, false
}

// FlushCAM clears the table (administrative action).
func (sw *Switch) FlushCAM() {
	sw.cam = make(map[camKey]camEntry)
	sw.camOrder = sw.camOrder[:0]
}

// camInsert records a new entry and indexes it.
func (sw *Switch) camInsert(key camKey, port int, expires time.Duration) {
	sw.cam[key] = camEntry{port: port, expires: expires, idx: len(sw.camOrder)}
	sw.camOrder = append(sw.camOrder, key)
}

// camDelete removes an entry, swap-filling its slot in the order index.
func (sw *Switch) camDelete(key camKey) {
	e, ok := sw.cam[key]
	if !ok {
		return
	}
	last := len(sw.camOrder) - 1
	moved := sw.camOrder[last]
	sw.camOrder[e.idx] = moved
	sw.camOrder = sw.camOrder[:last]
	if moved != key {
		me := sw.cam[moved]
		me.idx = e.idx
		sw.cam[moved] = me
	}
	delete(sw.cam, key)
}

// ingress handles a frame arriving on port id: tap, filter, learn,
// forward, mirror. The mirror destination receives each frame exactly
// once: the SPAN copy is suppressed when normal forwarding already
// delivers the frame to the mirror port.
func (sw *Switch) ingress(id int, f *frame.Frame) {
	// The ingress span covers the whole forwarding decision, so taps (the
	// detectors' vantage) and egress transmissions hang off it in the trace.
	sp := sw.rec.Begin("switch", "ingress")
	if sp != nil {
		sp.Attr("port", strconv.Itoa(id))
	}
	sw.forward(id, f)
	sp.End()
}

// forward is the forwarding decision itself: tap, filter, learn, forward,
// mirror.
func (sw *Switch) forward(id int, f *frame.Frame) {
	now := sw.sched.Now()
	wire := f.WireLen()
	sw.stats.BytesByType[f.Type] += uint64(wire)
	if sw.mPortBytes != nil && id < len(sw.mPortBytes) {
		sw.mPortBytes[id].Add(uint64(wire))
	}
	ev := TapEvent{At: now, Port: id, Frame: f, WireLen: wire}
	for _, tap := range sw.taps {
		tap(ev)
	}
	mirrorWanted := sw.mirror != nil && sw.mirror.nic != nil &&
		(sw.mirrSrc == nil || sw.mirrSrc[id]) && sw.mirror.id != id

	if sw.filter != nil && sw.filter(id, f) == VerdictDrop {
		sw.stats.Filtered++
		sw.mFiltered.Inc()
		if mirrorWanted { // the monitor still sees what the filter ate
			sw.mirror.send(f)
		}
		return
	}
	vlan := sw.ports[id].vlan
	sw.learn(id, vlan, f.Src, now)

	reachedMirror := false
	switch {
	case f.Dst.IsMulticast(): // includes broadcast
		reachedMirror = sw.flood(id, f)
	default:
		if e, ok := sw.cam[camKey{vlan: vlan, mac: f.Dst}]; ok && e.expires > now {
			if e.port != id { // else: destination on the ingress segment
				sw.stats.Forwarded++
				sw.mForwarded.Inc()
				sw.egressTo(e.port, f)
				reachedMirror = sw.mirror != nil && e.port == sw.mirror.id
			}
		} else {
			// Unknown unicast: flood within the VLAN. With a flooded CAM
			// this is the fail-open (hub-like) eavesdropping mode.
			reachedMirror = sw.flood(id, f)
		}
	}
	if mirrorWanted && !reachedMirror {
		sw.mirror.send(f)
	}
}

// learn records src on port id, refreshing existing entries. A full table
// first tries to reclaim one expired entry; otherwise learning is refused.
func (sw *Switch) learn(id int, vlan uint16, src ethaddr.MAC, now time.Duration) {
	if !src.IsUnicast() {
		return
	}
	key := camKey{vlan: vlan, mac: src}
	if e, ok := sw.cam[key]; ok {
		e.port = id
		e.expires = now + sw.camTTL
		sw.cam[key] = e
		return
	}
	if len(sw.cam) >= sw.camCap {
		reclaimed := false
		for _, k := range sw.camOrder { // oldest-inserted expired entry first
			if sw.cam[k].expires <= now {
				sw.camDelete(k)
				sw.mCAMEvictExp.Inc()
				reclaimed = true
				break
			}
		}
		if !reclaimed && sw.evictRandom {
			sw.camDelete(sw.camOrder[sw.sched.Rand().Intn(len(sw.camOrder))])
			sw.mCAMEvictRand.Inc()
			reclaimed = true
		}
		if !reclaimed {
			sw.stats.LearnMisses++
			sw.mLearnMisses.Inc()
			if !sw.failOpen {
				// First refused insertion since the table last admitted a
				// station: the switch has gone fail-open for unlearned
				// destinations, the state MAC flooding drives it into.
				sw.failOpen = true
				sw.mFailOpenTrans.Inc()
			}
			return
		}
	}
	sw.camInsert(key, id, now+sw.camTTL)
	sw.stats.Learned++
	sw.mCAMInserts.Inc()
	sw.failOpen = false
}

// flood replicates the frame to every port in the ingress port's VLAN,
// except the ingress port itself. It reports whether a copy egressed the
// mirror port.
//
// When every egress link is a plain pipe — up, no impairment, loss or
// jitter, untraced — with the same delivery delay (the common uniform-LAN
// topology), the replicas collapse into one scheduled floodTransit instead
// of one event per port: one heap push, one pop, one task dispatch for the
// whole fan-out, with the delivery loop walking the shared read-only frame
// across every NIC. The per-port deliveries were consecutive events at one
// instant, so folding them into one task preserves the execution order
// exactly. Any port that fails the plain-pipe test sends the whole flood
// down the per-port transmit path, which handles the general case.
func (sw *Switch) flood(ingress int, f *frame.Frame) bool {
	sw.stats.Flooded++
	sw.mFlooded.Inc()
	wire := uint64(f.WireLen())
	vlan := sw.ports[ingress].vlan

	batchable := true
	var d time.Duration
	n := 0
	for _, p := range sw.ports {
		if p.id == ingress || p.nic == nil || p.vlan != vlan {
			continue
		}
		l := p.nic.link
		if l.down || l.impair != nil || l.lossRng != nil || l.params.jitter > 0 || l.rec != nil {
			batchable = false
			break
		}
		ld := l.params.latency
		if l.params.bps > 0 {
			ld += time.Duration(int64(wire) * 8 * int64(time.Second) / l.params.bps)
		}
		if n == 0 {
			d = ld
		} else if ld != d {
			batchable = false
			break
		}
		n++
	}

	reachedMirror := false
	if batchable && n > 0 {
		c := sw.cache
		ft := c.flood
		if ft != nil {
			c.flood = ft.next
			ft.next = nil
		} else {
			ft = &floodTransit{cache: c}
		}
		ft.f = f
		for _, p := range sw.ports {
			if p.id == ingress || p.nic == nil || p.vlan != vlan {
				continue
			}
			if sw.mirror != nil && p.id == sw.mirror.id {
				reachedMirror = true
			}
			p.nic.link.stats.Delivered++
			ft.nics = append(ft.nics, p.nic)
		}
		sw.stats.BytesOutByType[f.Type] += wire * uint64(len(ft.nics))
		sw.sched.AfterTask(d, ft)
		return reachedMirror
	}

	replicas := uint64(0)
	for _, p := range sw.ports {
		if p.id == ingress || p.nic == nil || p.vlan != vlan {
			continue
		}
		if sw.mirror != nil && p.id == sw.mirror.id {
			reachedMirror = true
		}
		replicas++
		p.send(f)
	}
	sw.stats.BytesOutByType[f.Type] += wire * replicas
	return reachedMirror
}

// egressTo sends the frame out one port.
func (sw *Switch) egressTo(id int, f *frame.Frame) {
	p := sw.ports[id]
	if p.nic != nil {
		sw.stats.BytesOutByType[f.Type] += uint64(f.WireLen())
		p.send(f)
	}
}

// Hub is a dumb repeater: every frame entering a port is replicated to all
// other ports. It exists because the paper's threat model begins with shared
// media, where eavesdropping needs no ARP poisoning at all.
type Hub struct {
	sched *sim.Scheduler
	ports []*Port
	taps  []TapFunc
}

// NewHub creates a hub with no ports.
func NewHub(s *sim.Scheduler) *Hub { return &Hub{sched: s} }

// AddPort creates a new port on the hub.
func (h *Hub) AddPort() *Port {
	p := &Port{id: len(h.ports)}
	p.ingress = func(f *frame.Frame) { h.ingress(p.id, f) }
	h.ports = append(h.ports, p)
	return p
}

// AddTap registers an observer for every frame entering the hub.
func (h *Hub) AddTap(fn TapFunc) { h.taps = append(h.taps, fn) }

// ingress repeats the frame out every other port.
func (h *Hub) ingress(id int, f *frame.Frame) {
	ev := TapEvent{At: h.sched.Now(), Port: id, Frame: f, WireLen: f.WireLen()}
	for _, tap := range h.taps {
		tap(ev)
	}
	for _, p := range h.ports {
		if p.id == id || p.nic == nil {
			continue
		}
		p.send(f)
	}
}
