package replay

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/arppkt"
	"repro/internal/ethaddr"
	"repro/internal/frame"
	"repro/internal/netsim"
	"repro/internal/trace"
)

// synthStations returns a stable station set for synthetic captures,
// disjoint from the workbench subnet so no hosted station is involved.
func synthStations(n int) (macs []ethaddr.MAC, ips []ethaddr.IPv4) {
	gen := ethaddr.NewGen(7)
	subnet := ethaddr.MustParseSubnet("10.0.7.0/24")
	for i := 0; i < n; i++ {
		macs = append(macs, gen.SeqMAC())
		ips = append(ips, subnet.Host(i+1))
	}
	return macs, ips
}

// synthCapture builds an ARP-only benign storm: n frames from `sources`
// stations cycling through gratuitous announcements, requests, and replies
// — every assertion consistent with the station's own identity, so passive
// schemes settle after the first cycle and the steady state is pure ingest.
func synthCapture(tb testing.TB, n, sources int, start, spacing time.Duration) *trace.Capture {
	tb.Helper()
	macs, ips := synthStations(sources)
	c := trace.NewCapture(n)
	tap := c.Tap()
	for j := 0; j < n; j++ {
		src := j % sources
		next := (src + 1) % sources
		var p *arppkt.Packet
		dst := ethaddr.BroadcastMAC
		switch j % 3 {
		case 0:
			p = arppkt.NewGratuitousRequest(macs[src], ips[src])
		case 1:
			p = arppkt.NewRequest(macs[src], ips[src], ips[next])
		default:
			p = arppkt.NewReply(macs[src], ips[src], macs[next], ips[next])
			dst = macs[next]
		}
		f := &frame.Frame{Dst: dst, Src: macs[src], Type: frame.TypeARP, Payload: p.Encode()}
		tap(netsim.TapEvent{At: start + time.Duration(j)*spacing, Frame: f, WireLen: f.WireLen()})
	}
	return c
}

func synthPCAP(tb testing.TB, n, sources int, start, spacing time.Duration) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := synthCapture(tb, n, sources, start, spacing).WritePCAP(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func synthNDJSON(tb testing.TB, n, sources int, start, spacing time.Duration) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := synthCapture(tb, n, sources, start, spacing).WriteNDJSON(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}
