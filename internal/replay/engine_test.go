package replay

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/labnet"
	"repro/internal/schemes/registry"
	_ "repro/internal/schemes/registry/all"
	"repro/internal/trace"
)

// detectionSchemes are the five detection schemes the golden replay pins —
// the same set the eval detection experiments sweep.
var detectionSchemes = []string{
	registry.NameArpwatch,
	registry.NameSnortLike,
	registry.NameActiveProbe,
	registry.NameMiddleware,
	registry.NameHybridGuard,
}

// buildMITMCapture runs the standard workbench gateway-MITM scenario and
// returns its capture: warmup announcements and mutual cache seeding, a
// victim→gateway ping stream from 5s, and from 20s the periodic
// bidirectional poison plus relay — the poisoned exchange the checked-in
// testdata files pin.
func buildMITMCapture() *trace.Capture {
	l := labnet.New(labnet.Config{Seed: 1, Hosts: 4, WithAttacker: true, WithMonitor: true})
	cap := trace.NewCapture(0)
	l.Switch.AddTap(cap.Tap())

	for _, h := range l.Hosts {
		h := h
		l.Sched.Every(15*time.Second, h.SendGratuitous)
	}
	l.SeedMutualCaches()

	victim, gw := l.Victim(), l.Gateway()
	l.Sched.At(5*time.Second, func() {
		seq := uint16(0)
		l.Sched.Every(time.Second, func() {
			seq++
			victim.Ping(gw.IP(), 7, seq, nil)
		})
	})
	l.Sched.At(20*time.Second, func() {
		l.Attacker.PoisonPeriodically(2*time.Second, victim.MAC(), victim.IP(), gw.MAC(), gw.IP())
		l.Attacker.RelayBetween(victim.MAC(), victim.IP(), gw.MAC(), gw.IP())
	})
	if err := l.Sched.RunUntil(60 * time.Second); err != nil {
		panic(err)
	}
	return cap
}

// replayCapture replays the pcap (or NDJSON) bytes through one scheme at
// the given worker width and returns the NDJSON alert stream plus stats.
func replayCapture(t *testing.T, blob []byte, format, scheme string, workers int) ([]byte, Stats) {
	t.Helper()
	st, err := registry.ParseStack(scheme)
	if err != nil {
		t.Fatal(err)
	}
	var alerts bytes.Buffer
	eng, err := New(Config{Stack: st, Workers: workers, Alerts: &alerts})
	if err != nil {
		t.Fatalf("New(%s): %v", scheme, err)
	}
	var src Source
	switch format {
	case "pcap":
		src, err = NewPCAPSource(bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
	case "ndjson":
		src = NewNDJSONSource(bytes.NewReader(blob))
	default:
		t.Fatalf("unknown format %q", format)
	}
	stats, err := eng.Run(src)
	if err != nil {
		t.Fatalf("Run(%s, %s, workers=%d): %v", scheme, format, workers, err)
	}
	return alerts.Bytes(), stats
}

// TestGoldenMITMReplay is the end-to-end contract: the checked-in poisoned
// exchange replayed through each detection scheme produces exactly the
// pinned alert stream, byte-identical at every worker width, from both
// capture formats. Regenerate testdata with UPDATE_GOLDEN=1.
func TestGoldenMITMReplay(t *testing.T) {
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		cap := buildMITMCapture()
		var pcap, ndjson bytes.Buffer
		if err := cap.WritePCAP(&pcap); err != nil {
			t.Fatal(err)
		}
		if err := cap.WriteNDJSON(&ndjson); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join("testdata", "mitm.pcap"), pcap.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join("testdata", "mitm.ndjson"), ndjson.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		for _, scheme := range detectionSchemes {
			alerts, _ := replayCapture(t, pcap.Bytes(), "pcap", scheme, 1)
			if err := os.WriteFile(alertGolden(scheme), alerts, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s (%d bytes)", alertGolden(scheme), len(alerts))
		}
		return
	}

	pcap, err := os.ReadFile(filepath.Join("testdata", "mitm.pcap"))
	if err != nil {
		t.Fatalf("read capture (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	ndjson, err := os.ReadFile(filepath.Join("testdata", "mitm.ndjson"))
	if err != nil {
		t.Fatal(err)
	}

	for _, scheme := range detectionSchemes {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			want, err := os.ReadFile(alertGolden(scheme))
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 8} {
				for _, format := range []string{"pcap", "ndjson"} {
					blob := pcap
					if format == "ndjson" {
						blob = ndjson
					}
					got, stats := replayCapture(t, blob, format, scheme, workers)
					if !bytes.Equal(got, want) {
						t.Errorf("%s workers=%d: alert stream diverged from golden\ngot:\n%s\nwant:\n%s",
							format, workers, got, want)
					}
					if stats.Malformed != 0 {
						t.Errorf("%s workers=%d: %d malformed records", format, workers, stats.Malformed)
					}
					if stats.Frames == 0 || stats.ARP == 0 {
						t.Errorf("%s workers=%d: empty replay (stats %+v)", format, workers, stats)
					}
				}
			}
			assertDetectsMITM(t, scheme, want)
		})
	}
}

func alertGolden(scheme string) string {
	return filepath.Join("testdata", "alerts_"+scheme+".golden")
}

// assertDetectsMITM checks the pinned stream actually reports the attack:
// at least one alert after the 20s attack start naming the poisoned
// gateway or victim address.
func assertDetectsMITM(t *testing.T, scheme string, stream []byte) {
	t.Helper()
	attacked := map[string]bool{"192.168.88.254": true, "192.168.88.2": true}
	n := 0
	for _, line := range bytes.Split(stream, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var rec AlertRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("golden line %q: %v", line, err)
		}
		n++
		if rec.At >= 20*time.Second && attacked[rec.IP] {
			return
		}
	}
	t.Errorf("%s: no alert names the poisoned binding after attack start (%d alerts total):\n%s", scheme, n, stream)
}

// TestReplayStackCorrelation replays through a multi-member stack and
// checks the correlator is in the path (cross-scheme duplicates get
// suppressed rather than double-paged).
func TestReplayStackCorrelation(t *testing.T) {
	pcap, err := os.ReadFile(filepath.Join("testdata", "mitm.pcap"))
	if err != nil {
		t.Skip("golden capture missing; run UPDATE_GOLDEN=1 first")
	}
	st, err := registry.ParseStack(registry.NameArpwatch + "+" + registry.NameSnortLike)
	if err != nil {
		t.Fatal(err)
	}
	var alerts bytes.Buffer
	eng, err := New(Config{Stack: st, Alerts: &alerts})
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewPCAPSource(bytes.NewReader(pcap))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Alerts == 0 {
		t.Fatal("stack replay produced no alerts")
	}
	corr := eng.Correlation()
	if corr.Forwarded == 0 {
		t.Errorf("correlator forwarded nothing: %+v", corr)
	}
	if corr.Forwarded != stats.Alerts {
		t.Errorf("forwarded %d != emitted %d", corr.Forwarded, stats.Alerts)
	}
}

// TestWorkbenchStationsMatchLabnet pins the identity contract: the default
// replay stations are exactly the labnet workbench's gateway and victim,
// so workbench captures replay against hosted stations without flags.
func TestWorkbenchStationsMatchLabnet(t *testing.T) {
	l := labnet.New(labnet.Config{Seed: 1, Hosts: 2})
	gw, v := WorkbenchStations(1)
	if gw.MAC != l.Gateway().MAC() || gw.IP != l.Gateway().IP() {
		t.Errorf("gateway %v/%v, labnet has %v/%v", gw.IP, gw.MAC, l.Gateway().IP(), l.Gateway().MAC())
	}
	if v.MAC != l.Victim().MAC() || v.IP != l.Victim().IP() {
		t.Errorf("victim %v/%v, labnet has %v/%v", v.IP, v.MAC, l.Victim().IP(), l.Victim().MAC())
	}
}

// TestReplayMalformedRecords pins that undecodable records are counted and
// skipped, never injected or fatal.
func TestReplayMalformedRecords(t *testing.T) {
	var stream strings.Builder
	fmt.Fprintln(&stream, `{"at":1000,"src":"02:00:00:00:00:01","wire":"AAAA"}`) // 3 bytes: not Ethernet
	fmt.Fprintln(&stream, `not json at all`)
	st, err := registry.ParseStack(registry.NameArpwatch)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{Stack: st})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run(NewNDJSONSource(strings.NewReader(stream.String())))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Malformed != 2 || stats.Frames != 0 {
		t.Errorf("stats = %+v, want 2 malformed / 0 injected", stats)
	}
}
