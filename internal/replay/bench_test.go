package replay

import (
	"bytes"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/schemes/registry"
	_ "repro/internal/schemes/registry/all"
)

// Replay throughput benchmarks: frames/sec through the full engine —
// read, parse, normalize into pooled frames, inject through the switch
// with arpwatch deployed. Single-thread vs sharded is the BENCH_PR8
// comparison; NDJSON is parse-bound (JSON + base64), which is what
// sharding parallelizes, while pcap is already a near-memcpy read.
const (
	benchFrames  = 120_000
	benchSources = 64
	// 500µs spacing keeps arena epochs ≥ arenaRetention apart so the
	// benchmark measures the pooled path, not heap fallback.
	benchSpacing = 500 * time.Microsecond
)

var benchBlob struct {
	once   sync.Once
	pcap   []byte
	ndjson []byte
}

func benchCaptures(b *testing.B) ([]byte, []byte) {
	benchBlob.once.Do(func() {
		benchBlob.pcap = synthPCAP(b, benchFrames, benchSources, 0, benchSpacing)
		benchBlob.ndjson = synthNDJSON(b, benchFrames, benchSources, 0, benchSpacing)
	})
	return benchBlob.pcap, benchBlob.ndjson
}

func shardWidth() int {
	w := runtime.NumCPU()
	if w > 8 {
		w = 8
	}
	if w < 2 {
		w = 2
	}
	return w
}

func benchReplay(b *testing.B, blob []byte, format string, workers int) {
	st, err := registry.ParseStack(registry.NameArpwatch)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := New(Config{Stack: st, Workers: workers, Drain: time.Second})
		if err != nil {
			b.Fatal(err)
		}
		var src Source
		if format == "pcap" {
			src, err = NewPCAPSource(bytes.NewReader(blob))
			if err != nil {
				b.Fatal(err)
			}
		} else {
			src = NewNDJSONSource(bytes.NewReader(blob))
		}
		stats, err := eng.Run(src)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Frames != benchFrames {
			b.Fatalf("injected %d frames, want %d", stats.Frames, benchFrames)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(benchFrames)*float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}

func BenchmarkReplayPCAPSingle(b *testing.B) {
	pcap, _ := benchCaptures(b)
	benchReplay(b, pcap, "pcap", 1)
}

func BenchmarkReplayPCAPSharded(b *testing.B) {
	pcap, _ := benchCaptures(b)
	benchReplay(b, pcap, "pcap", shardWidth())
}

func BenchmarkReplayNDJSONSingle(b *testing.B) {
	_, ndjson := benchCaptures(b)
	benchReplay(b, ndjson, "ndjson", 1)
}

func BenchmarkReplayNDJSONSharded(b *testing.B) {
	_, ndjson := benchCaptures(b)
	benchReplay(b, ndjson, "ndjson", shardWidth())
}
