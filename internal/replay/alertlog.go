package replay

import (
	"bufio"
	"encoding/json"
	"io"
	"time"

	"repro/internal/schemes"
)

// AlertRecord is the NDJSON line schema of the replay alert stream: one
// line per correlated alert, in detection order, with virtual capture time.
// This is the service's primary output; the golden replay tests pin it
// byte-for-byte, which is also what enforces worker-width determinism.
type AlertRecord struct {
	At     time.Duration `json:"at"`
	Scheme string        `json:"scheme"`
	Kind   string        `json:"kind"`
	IP     string        `json:"ip"`
	OldMAC string        `json:"oldMac,omitempty"`
	NewMAC string        `json:"newMac,omitempty"`
	Detail string        `json:"detail,omitempty"`
}

// alertLog buffers the NDJSON alert stream; errors are sticky and surfaced
// by flush so the hot path never branches on I/O.
type alertLog struct {
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

func newAlertLog(w io.Writer) *alertLog {
	bw := bufio.NewWriter(w)
	return &alertLog{bw: bw, enc: json.NewEncoder(bw)}
}

func (l *alertLog) emit(a schemes.Alert) {
	if l.err != nil {
		return
	}
	rec := AlertRecord{
		At:     a.At,
		Scheme: a.Scheme,
		Kind:   a.Kind.String(),
		IP:     a.IP.String(),
		Detail: a.Detail,
	}
	if !a.OldMAC.IsZero() {
		rec.OldMAC = a.OldMAC.String()
	}
	if !a.NewMAC.IsZero() {
		rec.NewMAC = a.NewMAC.String()
	}
	l.err = l.enc.Encode(&rec)
}

func (l *alertLog) flush() error {
	if l.err != nil {
		return l.err
	}
	return l.bw.Flush()
}
