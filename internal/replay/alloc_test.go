package replay

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"repro/internal/schemes/registry"
	_ "repro/internal/schemes/registry/all"
)

// TestReplaySteadyStateAllocFree gates the steady-state inject loop: after
// one warmup pass has attached every injector NIC, grown the CAM, carved
// the first arena epochs, and sized the scheme's state, replaying further
// traffic from the same stations must stay near allocation-free. The
// budget (0.5 allocs/frame) leaves room for the amortized costs that are
// inherent to unbounded streaming — fresh arena slabs on rotation and
// occasional map growth — while catching any per-frame allocation
// regression outright.
func TestReplaySteadyStateAllocFree(t *testing.T) {
	const (
		warmFrames = 20000
		hotFrames  = 40000
		sources    = 32
		// 1ms spacing puts epoch boundaries ≥ arenaRetention apart, so
		// arena rotation actually recycles instead of degrading to heap.
		spacing = time.Millisecond
	)
	warm := synthPCAP(t, warmFrames, sources, 0, spacing)
	// The hot capture resumes past the warm horizon (warm end + drain) so
	// its timestamps keep the virtual clock monotonic.
	hot := synthPCAP(t, hotFrames, sources, time.Duration(warmFrames)*spacing+15*time.Second, spacing)

	st, err := registry.ParseStack(registry.NameArpwatch)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{Stack: st})
	if err != nil {
		t.Fatal(err)
	}
	warmSrc, err := NewPCAPSource(bytes.NewReader(warm))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(warmSrc); err != nil {
		t.Fatal(err)
	}
	hotSrc, err := NewPCAPSource(bytes.NewReader(hot))
	if err != nil {
		t.Fatal(err)
	}

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	stats, err := eng.Run(hotSrc)
	runtime.ReadMemStats(&m1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Frames != warmFrames+hotFrames {
		t.Fatalf("injected %d frames, want %d", stats.Frames, warmFrames+hotFrames)
	}
	perFrame := float64(m1.Mallocs-m0.Mallocs) / hotFrames
	t.Logf("steady state: %.3f allocs/frame (%d allocs / %d frames)",
		perFrame, m1.Mallocs-m0.Mallocs, hotFrames)
	if perFrame > 0.5 {
		t.Fatalf("steady-state replay: %.3f allocs/frame, budget 0.5", perFrame)
	}
}
