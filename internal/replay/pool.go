package replay

import (
	"time"

	"repro/internal/arppkt"
	"repro/internal/ethaddr"
	"repro/internal/frame"
)

// Frame pooling for the steady-state inject loop. Simulation trials reset
// the arppkt arena wholesale between trials; a replay has no trial
// boundary, so the engine rotates a small ring of arenas instead, retiring
// each epoch and reusing an arena only once every frame carved from it is
// provably dead.
//
// The liveness proof rests on one contract: no scheme retains a pointer to
// an injected frame (or its arppkt memo) for longer than arenaRetention of
// virtual time. The longest retainer in the tree today is the middleware
// guard, which quarantines a *Packet for its verify window (default 300ms,
// window-ablation experiments go to low single-digit seconds); 5s clears
// all of them with margin. A scheme that held frames longer would need this
// constant raised.
const (
	// arenaRetention is the virtual-time age an arena must reach after
	// retirement before Reset may recycle it.
	arenaRetention = 5 * time.Second
	// arenaEpochFrames is the rotation point. Well under the arena's own
	// 65536-frame heap-fallback cap, so a rotation that has to wait for
	// the next slot to age out has headroom before allocations start.
	arenaEpochFrames = 16384
	arenaRingSize    = 4
)

// arenaRing rotates arenas so ARP frame memory is recycled mid-stream.
type arenaRing struct {
	arenas  [arenaRingSize]*arppkt.Arena
	retired [arenaRingSize]time.Duration // when each arena left service
	cur     int
	n       int // frames carved in the current epoch
}

func (r *arenaRing) init() {
	for i := range r.arenas {
		r.arenas[i] = &arppkt.Arena{}
		// Eligible immediately: a never-used arena holds no live frames.
		r.retired[i] = -arenaRetention
	}
}

// newFrame carves a pooled ARP frame, rotating arenas at epoch boundaries.
// If the next arena has not aged out yet the current one simply keeps
// carving — past its cap it degrades to heap frames, trading allocations
// for correctness until the rotation can proceed.
func (r *arenaRing) newFrame(now time.Duration, p *arppkt.Packet, src, dst ethaddr.MAC) *frame.Frame {
	if r.n >= arenaEpochFrames {
		next := (r.cur + 1) % arenaRingSize
		if now-r.retired[next] >= arenaRetention {
			r.retired[r.cur] = now
			r.arenas[next].Reset()
			r.cur, r.n = next, 0
		}
	}
	r.n++
	return r.arenas[r.cur].NewFrame(p, src, dst)
}

// ringFrames sizes the non-ARP frame ring. A slot may be overwritten only
// after ringFrames further non-ARP injections; the engine flushes the
// scheduler every flushEvery (= ringFrames/2) injections, and flushing
// delivers every in-flight frame on the zero-latency replay links, so a
// slot is always dead before reuse. Non-ARP frames are transit-only — no
// scheme inspects past the EtherType, so nothing retains them.
const ringFrames = 256

type frameSlot struct {
	f   frame.Frame
	buf []byte
}

// frameRing recycles frames for non-ARP records (and ARP records whose
// payload does not decode, which are injected verbatim so inspection
// schemes can flag them).
type frameRing struct {
	slots [ringFrames]frameSlot
	i     int
}

// next fills the next slot with a copy of src (whose payload aliases the
// reader's buffer and must not escape) and returns its frame.
func (r *frameRing) next(src *frame.Frame) *frame.Frame {
	s := &r.slots[r.i%ringFrames]
	r.i++
	s.buf = append(s.buf[:0], src.Payload...)
	s.f = frame.Frame{Dst: src.Dst, Src: src.Src, Type: src.Type, Payload: s.buf}
	return &s.f
}
