package replay

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"repro/internal/frame"
	"repro/internal/trace"
)

// Source is a capture stream split at the seam sharded ingest needs: a
// strictly sequential raw read (one item = one undecoded record) and a
// pure, concurrency-safe parse. ReadRaw runs on the reader goroutine only;
// Parse may run on any worker, on distinct items, concurrently.
type Source interface {
	// ReadRaw appends the next raw item to buf and returns the extended
	// slice, plus the record timestamp when the framing carries it outside
	// the item (pcap does; NDJSON returns 0 and parses it from the item).
	// io.EOF marks a clean end of stream.
	ReadRaw(buf []byte) ([]byte, time.Duration, error)
	// Parse decodes one raw item (as returned by ReadRaw) into rec,
	// reusing rec.Wire. It must not retain item or touch Source state.
	Parse(item []byte, at time.Duration, rec *trace.WireRecord) error
	// ShardKey assigns the item to a worker; items from the same source
	// station must map to the same key so per-station parse state (none
	// today) would stay worker-local. It must not retain item.
	ShardKey(item []byte) uint64
}

// macHash is FNV-1a over a MAC (or any short byte string) — the shard key.
func macHash(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// PCAPSource adapts a classic pcap stream. The raw item is the frame bytes
// (the 16-octet record header is consumed by ReadRaw, which is where the
// timestamp lives), so Parse is a copy and sharding only buys overlap of
// that copy with injection — pcap replays are decode-bound, not
// parse-bound.
type PCAPSource struct {
	r *trace.PCAPReader
}

// NewPCAPSource opens a classic pcap stream (both endiannesses, µs or ns
// timestamps).
func NewPCAPSource(r io.Reader) (*PCAPSource, error) {
	pr, err := trace.NewPCAPReader(r)
	if err != nil {
		return nil, err
	}
	return &PCAPSource{r: pr}, nil
}

// ReadRaw appends the next frame's bytes and returns its timestamp.
func (s *PCAPSource) ReadRaw(buf []byte) ([]byte, time.Duration, error) {
	return s.r.ReadAppend(buf)
}

// Parse copies the frame bytes into rec at the framing-provided timestamp.
func (s *PCAPSource) Parse(item []byte, at time.Duration, rec *trace.WireRecord) error {
	if len(item) < frame.HeaderLen {
		return fmt.Errorf("pcap record: %d bytes is shorter than an Ethernet header", len(item))
	}
	rec.At = at
	rec.Wire = append(rec.Wire[:0], item...)
	return nil
}

// ShardKey hashes the source MAC straight out of the Ethernet header.
func (s *PCAPSource) ShardKey(item []byte) uint64 {
	if len(item) < 12 {
		return 0
	}
	return macHash(item[6:12])
}

// NDJSONSource adapts the trace NDJSON capture stream. The raw item is one
// line; Parse is the JSON decode plus base64 — the expensive half of
// ingestion, which is exactly what sharding parallelizes.
type NDJSONSource struct {
	r *trace.NDJSONReader
}

// NewNDJSONSource opens an NDJSON capture stream.
func NewNDJSONSource(r io.Reader) *NDJSONSource {
	return &NDJSONSource{r: trace.NewNDJSONReader(r)}
}

// ReadRaw appends the next non-empty line; NDJSON carries the timestamp
// inside the line, so the framing timestamp is always 0.
func (s *NDJSONSource) ReadRaw(buf []byte) ([]byte, time.Duration, error) {
	line, err := s.r.ReadLine()
	if err != nil {
		return buf, 0, err
	}
	return append(buf, line...), 0, nil
}

// Parse decodes one stream line.
func (s *NDJSONSource) Parse(item []byte, _ time.Duration, rec *trace.WireRecord) error {
	return trace.ParseNDJSONLine(item, rec)
}

// ShardKey hashes the "src" field's value without decoding the line: a
// substring scan is enough because the writer emits canonical JSON. Lines
// where the scan fails (foreign producer, unusual escaping) all land on
// worker 0 — correct, just unbalanced.
func (s *NDJSONSource) ShardKey(item []byte) uint64 {
	i := bytes.Index(item, srcField)
	if i < 0 {
		return 0
	}
	v := item[i+len(srcField):]
	if j := bytes.IndexByte(v, '"'); j >= 0 {
		return macHash(v[:j])
	}
	return 0
}

var srcField = []byte(`"src":"`)
