// Package replay turns captured traffic back into scheme input: it ingests
// a capture stream (classic pcap, the trace NDJSON log, or anything
// producing trace.WireRecords), normalizes each record into the pooled
// frame/arppkt representation, and injects it into a miniature "replay LAN"
// where any scheme or stack from the registry is deployed exactly as it
// would be in simulation.
//
// The replay LAN is the capture-backed schemes.Env adapter: a dedicated
// scheduler whose virtual clock is driven by capture timestamps (RunUntil
// per record — no wall clock anywhere), a switch, real protocol hosts for
// the gateway and victim identities so verification-based schemes
// (middleware, active-probe, hybrid-guard) get genuine probe answers, a
// promiscuous monitor on a mirror port, and lazily-attached injector NICs
// for every other station seen in the capture. Injector stations never
// answer probes — exactly the behavior of a host that has left the LAN,
// which is what a capture replay is.
//
// Alerts flow through the registry's correlating sink and are emitted as
// NDJSON; the stream is byte-identical at any worker width because sharded
// ingest parallelizes only parsing, never injection order.
package replay

import (
	"io"
	"time"

	"repro/internal/arppkt"
	"repro/internal/ethaddr"
	"repro/internal/frame"
	"repro/internal/netsim"
	"repro/internal/schemes"
	"repro/internal/schemes/registry"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Station is one L2/L3 identity the replay LAN hosts as a real protocol
// stack (rather than a mute injector NIC).
type Station struct {
	IP  ethaddr.IPv4
	MAC ethaddr.MAC
}

// WorkbenchStations returns the gateway and victim identities a labnet
// workbench capture with this seed contains: the subnet's .254 and .2 with
// the generator's first two sequential MACs. Captures taken elsewhere
// override these with observed identities.
func WorkbenchStations(seed int64) (gw, victim Station) {
	if seed == 0 {
		seed = 1
	}
	subnet := ethaddr.MustParseSubnet("192.168.88.0/24")
	gen := ethaddr.NewGen(seed)
	gw = Station{IP: subnet.Host(254), MAC: gen.SeqMAC()}
	victim = Station{IP: subnet.Host(2), MAC: gen.SeqMAC()}
	return gw, victim
}

// Monitor defaults: an address and locally-administered MAC chosen to stay
// clear of labnet's conventions (hosts low, attacker .66, monitor .250), so
// a replayed workbench capture cannot collide with the live appliance.
var (
	defaultMonitorIP  = ethaddr.MustParseIPv4("192.168.88.251")
	defaultMonitorMAC = ethaddr.MustParseMAC("06:ab:ab:ab:ab:01")
)

// Config assembles an Engine.
type Config struct {
	// Stack is the scheme deployment; a single scheme is a 1-member stack.
	Stack registry.Stack
	// Gateway and Victim are the identities hosted as real stacks. Zero
	// values default to WorkbenchStations(1).
	Gateway, Victim Station
	// Monitor overrides the synthetic appliance identity (rarely needed).
	Monitor Station
	// Workers sets the ingest shard width; ≤1 replays inline on the
	// caller's goroutine. Output is byte-identical at any width.
	Workers int
	// Drain is extra virtual time appended after the last record so
	// verification windows and correlation buckets settle (default 10s).
	Drain time.Duration
	// Alerts receives one NDJSON line per correlated alert; nil discards.
	Alerts io.Writer
	// Telemetry, when non-nil, instruments the sink, switch, hosts, and
	// the engine's own ingest counters.
	Telemetry *telemetry.Registry
}

// Stats summarizes one replay.
type Stats struct {
	Frames    uint64        // records injected
	ARP       uint64        // of which decoded as ARP (arena path)
	Malformed uint64        // records skipped: not decodable as Ethernet
	Bytes     uint64        // wire bytes injected
	Alerts    int           // correlated alerts emitted
	LastAt    time.Duration // timestamp of the final record
	Horizon   time.Duration // virtual time after drain
	Stations  int           // injector NICs attached for unseen sources
}

// Engine is one assembled replay LAN with a deployed scheme stack. It is
// single-use: Run consumes a source, then the engine reports and is done.
type Engine struct {
	cfg   Config
	sched *sim.Scheduler
	sw    *netsim.Switch
	env   registry.Env
	sink  *schemes.Sink
	inst  *registry.StackInstance
	log   *alertLog

	// nics maps a capture source MAC to the NIC that injects its frames:
	// the hosted gateway/victim NICs for their identities, lazily-attached
	// injector NICs for everything else.
	nics map[ethaddr.MAC]*netsim.NIC

	arenas arenaRing
	ring   frameRing
	scf    frame.Frame   // decode scratch; payload aliases the read buffer
	scp    arppkt.Packet // ARP decode scratch

	lastAt  time.Duration
	pending int // injections since the last scheduler flush
	stats   Stats

	mFrames, mARP, mMalformed, mAlerts *telemetry.Counter
}

// New assembles the replay LAN, deploys the stack, and wires the alert
// stream. The scheduler seed is fixed: replay determinism must not depend
// on configuration.
func New(cfg Config) (*Engine, error) {
	if cfg.Gateway == (Station{}) || cfg.Victim == (Station{}) {
		gw, v := WorkbenchStations(1)
		if cfg.Gateway == (Station{}) {
			cfg.Gateway = gw
		}
		if cfg.Victim == (Station{}) {
			cfg.Victim = v
		}
	}
	if cfg.Monitor == (Station{}) {
		cfg.Monitor = Station{IP: defaultMonitorIP, MAC: defaultMonitorMAC}
	}
	if cfg.Drain <= 0 {
		cfg.Drain = 10 * time.Second
	}
	if err := cfg.Stack.Validate(); err != nil {
		return nil, err
	}

	s := sim.NewScheduler(1)
	if cfg.Telemetry != nil {
		s.Instrument(cfg.Telemetry)
	}
	sw := netsim.NewSwitch(s, netsim.WithCAMCapacity(4096))
	e := &Engine{
		cfg:   cfg,
		sched: s,
		sw:    sw,
		sink:  schemes.NewSink(),
		nics:  make(map[ethaddr.MAC]*netsim.NIC, 64),
	}
	e.arenas.init()
	if cfg.Telemetry != nil {
		sw.Instrument(cfg.Telemetry)
		e.sink.Instrument(cfg.Telemetry)
		e.mFrames = cfg.Telemetry.Counter("replay_frames_total")
		e.mARP = cfg.Telemetry.Counter("replay_arp_frames_total")
		e.mMalformed = cfg.Telemetry.Counter("replay_malformed_total")
		e.mAlerts = cfg.Telemetry.Counter("replay_alerts_total")
	}

	// Host-side options some schemes require (key material, strict
	// policies); applied to the hosted stations only — injector stations
	// have no stack to configure.
	hostOpts, err := registry.StackHostOptions(cfg.Stack)
	if err != nil {
		return nil, err
	}
	// Hosted stations never originate traffic of their own: the capture
	// already contains everything they said. Echo responders stay off so
	// replayed IP probes don't spawn un-captured chatter; ARP replies to
	// scheme verification probes are the one deliberate exception.
	opts := append([]stack.Option{stack.WithEchoResponder(false)}, hostOpts...)

	hosted := func(name string, st Station) (*stack.Host, *netsim.Port) {
		nic := netsim.NewNIC(s, st.MAC)
		port := sw.AddPort()
		port.Attach(nic, netsim.WithLatency(0))
		h := stack.NewHost(s, name, nic, st.IP, opts...)
		if cfg.Telemetry != nil {
			h.Instrument(cfg.Telemetry)
		}
		e.nics[st.MAC] = nic
		return h, port
	}
	gwHost, gwPort := hosted("gateway", cfg.Gateway)
	vHost, vPort := hosted("victim", cfg.Victim)

	monNIC := netsim.NewNIC(s, cfg.Monitor.MAC)
	monPort := sw.AddPort()
	monPort.Attach(monNIC, netsim.WithLatency(0))
	mon := stack.NewHost(s, "monitor", monNIC, cfg.Monitor.IP, opts...)
	monNIC.SetPromiscuous(true)
	sw.MirrorAllTo(monPort)
	e.nics[cfg.Monitor.MAC] = monNIC

	e.env = registry.Env{
		Sched:       s,
		Switch:      sw,
		Hosts:       []*stack.Host{gwHost, vHost},
		Ports:       []*netsim.Port{gwPort, vPort},
		Monitor:     mon,
		MonitorPort: monPort,
		Sink:        e.sink,
		Telemetry:   cfg.Telemetry,
	}
	inst, err := registry.DeployStack(&e.env, cfg.Stack)
	if err != nil {
		return nil, err
	}
	e.inst = inst

	if cfg.Alerts != nil {
		e.log = newAlertLog(cfg.Alerts)
	}
	e.sink.OnAlert(func(a schemes.Alert) {
		e.stats.Alerts++
		e.mAlerts.Inc()
		if e.log != nil {
			e.log.emit(a)
		}
	})
	return e, nil
}

// nicFor returns the injection NIC for a capture source MAC, attaching a
// mute injector port on first sight. Injectors carry no protocol stack:
// they transmit the station's captured frames verbatim and silently accept
// whatever the LAN sends back.
func (e *Engine) nicFor(src ethaddr.MAC) *netsim.NIC {
	if nic, ok := e.nics[src]; ok {
		return nic
	}
	nic := netsim.NewNIC(e.sched, src)
	e.sw.AddPort().Attach(nic, netsim.WithLatency(0))
	e.nics[src] = nic
	e.stats.Stations++
	return nic
}

// Scheduler exposes the replay clock, e.g. to schedule periodic metric
// publication at virtual-time intervals alongside the replay.
func (e *Engine) Scheduler() *sim.Scheduler { return e.sched }

// Correlation exposes the deployed stack's correlator counters.
func (e *Engine) Correlation() registry.CorrelationStats { return e.inst.Correlation() }

// Sink exposes the correlated alert sink (for tests and reports).
func (e *Engine) Sink() *schemes.Sink { return e.sink }

// Stats returns the replay summary accumulated so far.
func (e *Engine) Stats() Stats { return e.stats }

// Run replays src to completion: every record is injected in capture order
// at its capture timestamp, then the clock runs Drain past the final record
// so outstanding verification windows and correlation buckets settle.
// Workers >1 shards record parsing across a worker pool; injection stays
// sequential, so output is byte-identical at any width.
func (e *Engine) Run(src Source) (Stats, error) {
	var err error
	if e.cfg.Workers > 1 {
		err = e.runSharded(src, e.cfg.Workers)
	} else {
		err = e.runInline(src)
	}
	if err != nil {
		return e.stats, err
	}
	e.stats.LastAt = e.lastAt
	e.stats.Horizon = e.lastAt + e.cfg.Drain
	if rerr := e.sched.RunUntil(e.stats.Horizon); rerr != nil {
		return e.stats, rerr
	}
	if e.log != nil {
		if ferr := e.log.flush(); ferr != nil {
			return e.stats, ferr
		}
	}
	return e.stats, nil
}

// runInline is the single-threaded path: read, parse, inject, one record
// at a time. It composes the same ReadRaw/Parse methods the sharded path
// fans out, so the two paths cannot diverge.
func (e *Engine) runInline(src Source) error {
	var rec trace.WireRecord
	var buf []byte
	for {
		item, at, err := src.ReadRaw(buf[:0])
		buf = item
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := src.Parse(item, at, &rec); err != nil {
			e.stats.Malformed++
			e.mMalformed.Inc()
			continue
		}
		e.inject(&rec)
	}
}

// flushEvery bounds how many injections may sit between scheduler flushes;
// a flush delivers every in-flight frame (links are zero-latency), which is
// what lets the non-ARP frame ring reuse its slots.
const flushEvery = ringFrames / 2

// inject advances the virtual clock to the record's timestamp and
// transmits its frame from the source station's NIC. Records that do not
// decode as Ethernet are counted and skipped; undecodable ARP payloads are
// injected verbatim so inspection schemes can flag them.
func (e *Engine) inject(rec *trace.WireRecord) {
	if err := frame.DecodeInto(&e.scf, rec.Wire); err != nil {
		e.stats.Malformed++
		e.mMalformed.Inc()
		return
	}
	at := rec.At
	if at < e.lastAt {
		at = e.lastAt // clamp non-monotonic capture timestamps
	}
	if at > e.lastAt || e.pending >= flushEvery {
		if err := e.sched.RunUntil(at); err != nil {
			return
		}
		e.pending = 0
	}
	e.lastAt = at

	var f *frame.Frame
	if e.scf.Type == frame.TypeARP && arppkt.DecodeInto(&e.scp, e.scf.Payload) == nil {
		f = e.arenas.newFrame(at, &e.scp, e.scf.Src, e.scf.Dst)
		e.stats.ARP++
		e.mARP.Inc()
	} else {
		f = e.ring.next(&e.scf)
	}
	e.stats.Frames++
	e.stats.Bytes += uint64(len(rec.Wire))
	e.mFrames.Inc()
	e.pending++
	e.nicFor(f.Src).Send(f)
}
