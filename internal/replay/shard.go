package replay

import (
	"io"
	"sync"
	"time"

	"repro/internal/trace"
)

// Sharded ingest. Injection order is sacred — the virtual clock and every
// scheme's state machine depend on it — so only parsing is parallel:
//
//	reader ──rounds──▶ workers (parse, per-source-MAC shard)
//	            │                         │
//	            └────────▶ merger ◀───────┘ (capture order, inject)
//
// The reader cuts the stream into rounds of roundItems raw records,
// assigning each record to the worker owning its source MAC and recording
// the owner sequence. Workers parse their sublists in place. The merger
// waits for a round's workers, then walks the owner sequence with one
// cursor per worker — reconstructing exactly the capture order — and
// injects on the engine's goroutine. Output is therefore byte-identical at
// any worker width: the width changes who parses, never what is injected
// when.
const (
	roundItems  = 4096
	roundsDepth = 4 // rounds in flight; bounds pipeline memory
	maxWorkers  = 64
)

// span locates one raw item inside a round's shared buffer.
type span struct {
	off, end int
	at       time.Duration
}

// round is one pipeline batch, recycled through a free list.
type round struct {
	buf     []byte
	items   []span
	owner   []uint8   // owner[i]: worker that parses item i
	lists   [][]int32 // per-worker item indices, in item order
	recs    [][]trace.WireRecord
	errs    [][]error
	wg      sync.WaitGroup
	readErr error // non-EOF reader failure, surfaced after the round drains
}

func newRound(workers int) *round {
	r := &round{
		buf:   make([]byte, 0, 256*roundItems),
		items: make([]span, 0, roundItems),
		owner: make([]uint8, 0, roundItems),
		lists: make([][]int32, workers),
		recs:  make([][]trace.WireRecord, workers),
		errs:  make([][]error, workers),
	}
	for w := 0; w < workers; w++ {
		r.lists[w] = make([]int32, 0, roundItems)
		r.recs[w] = make([]trace.WireRecord, 0, roundItems)
		r.errs[w] = make([]error, 0, roundItems)
	}
	return r
}

func (r *round) reset() {
	r.buf = r.buf[:0]
	r.items = r.items[:0]
	r.owner = r.owner[:0]
	for w := range r.lists {
		r.lists[w] = r.lists[w][:0]
		r.recs[w] = r.recs[w][:0]
		r.errs[w] = r.errs[w][:0]
	}
	r.readErr = nil
}

// runSharded drives the pipeline; the merger runs on the caller's
// goroutine, which is the engine's, so inject stays single-threaded.
func (e *Engine) runSharded(src Source, workers int) error {
	if workers > maxWorkers {
		workers = maxWorkers
	}

	free := make(chan *round, roundsDepth)
	for i := 0; i < roundsDepth; i++ {
		free <- newRound(workers)
	}
	toWorker := make([]chan *round, workers)
	for w := range toWorker {
		toWorker[w] = make(chan *round, roundsDepth)
	}
	toMerge := make(chan *round, roundsDepth)

	// Reader: sequential raw reads, shard assignment, round dispatch.
	go func() {
		defer func() {
			for _, ch := range toWorker {
				close(ch)
			}
			close(toMerge)
		}()
		for {
			r := <-free
			r.reset()
			var err error
			for len(r.items) < roundItems {
				off := len(r.buf)
				var at time.Duration
				r.buf, at, err = src.ReadRaw(r.buf)
				if err != nil {
					break
				}
				item := r.buf[off:]
				w := uint8(src.ShardKey(item) % uint64(workers))
				idx := int32(len(r.items))
				r.items = append(r.items, span{off: off, end: len(r.buf), at: at})
				r.owner = append(r.owner, w)
				r.lists[w] = append(r.lists[w], idx)
			}
			if err != nil && err != io.EOF {
				r.readErr = err
			}
			// Size the per-worker outputs by reslicing, not appending:
			// elements from earlier rounds keep their Wire buffers, so
			// steady-state parsing reuses them instead of reallocating.
			for w := range r.lists {
				n := len(r.lists[w])
				if cap(r.recs[w]) < n {
					r.recs[w] = make([]trace.WireRecord, n)
					r.errs[w] = make([]error, n)
				}
				r.recs[w] = r.recs[w][:n]
				r.errs[w] = r.errs[w][:n]
			}
			r.wg.Add(workers)
			for _, ch := range toWorker {
				ch <- r
			}
			toMerge <- r
			if err != nil {
				return
			}
		}
	}()

	// Workers: parse their sublists; pure CPU, no engine state.
	for w := 0; w < workers; w++ {
		go func(w int) {
			for r := range toWorker[w] {
				for k, idx := range r.lists[w] {
					it := r.items[idx]
					r.errs[w][k] = src.Parse(r.buf[it.off:it.end], it.at, &r.recs[w][k])
				}
				r.wg.Done()
			}
		}(w)
	}

	// Merger: capture order via the owner sequence, one cursor per worker.
	cursors := make([]int, workers)
	var firstErr error
	for r := range toMerge {
		r.wg.Wait()
		for w := range cursors {
			cursors[w] = 0
		}
		for _, w := range r.owner {
			k := cursors[w]
			cursors[w]++
			if r.errs[w][k] != nil {
				e.stats.Malformed++
				e.mMalformed.Inc()
				continue
			}
			e.inject(&r.recs[w][k])
		}
		if r.readErr != nil && firstErr == nil {
			firstErr = r.readErr
		}
		free <- r
	}
	return firstErr
}
