package causal

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// index is a one-shot lookup structure over the retained spans. Queries
// build it on demand; the hot recording path never does.
type index struct {
	byID     map[ID]Span
	children map[ID][]ID // sorted by child ID (filing order equals ID order)
}

func (r *Recorder) buildIndex() *index {
	ix := &index{byID: make(map[ID]Span), children: make(map[ID][]ID)}
	for _, sp := range r.Spans() {
		ix.byID[sp.ID] = sp
		if sp.Parent != 0 {
			ix.children[sp.Parent] = append(ix.children[sp.Parent], sp.ID)
		}
	}
	for _, kids := range ix.children {
		sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
	}
	return ix
}

// Span returns the retained span with the given ID.
func (r *Recorder) Span(id ID) (Span, bool) {
	if r == nil {
		return Span{}, false
	}
	for i := 0; i < r.n; i++ {
		sp := r.ring[(r.head+i)%len(r.ring)]
		if sp.ID == id {
			return sp, true
		}
	}
	return Span{}, false
}

// Roots returns the retained spans that start a trace (no retained parent),
// oldest first.
func (r *Recorder) Roots() []Span {
	if r == nil {
		return nil
	}
	ix := r.buildIndex()
	return r.Find(func(sp Span) bool {
		if sp.Parent == 0 {
			return true
		}
		_, ok := ix.byID[sp.Parent]
		return !ok
	})
}

// ChildrenOf returns the retained spans whose parent is id, in span-ID
// order.
func (r *Recorder) ChildrenOf(id ID) []Span {
	if r == nil {
		return nil
	}
	ix := r.buildIndex()
	kids := ix.children[id]
	out := make([]Span, 0, len(kids))
	for _, k := range kids {
		out = append(out, ix.byID[k])
	}
	return out
}

// PathToRoot returns the ancestor chain of id ordered root-first and ending
// with id itself. The chain stops early if an ancestor has been evicted.
func (r *Recorder) PathToRoot(id ID) []Span {
	if r == nil {
		return nil
	}
	ix := r.buildIndex()
	var rev []Span
	for cur := id; cur != 0; {
		sp, ok := ix.byID[cur]
		if !ok {
			break
		}
		rev = append(rev, sp)
		cur = sp.Parent
	}
	out := make([]Span, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

// Descendants returns every retained span below id (not including id), in
// span-ID order.
func (r *Recorder) Descendants(id ID) []Span {
	if r == nil {
		return nil
	}
	ix := r.buildIndex()
	var out []Span
	var walk func(ID)
	walk = func(cur ID) {
		for _, k := range ix.children[cur] {
			out = append(out, ix.byID[k])
			walk(k)
		}
	}
	walk(id)
	return out
}

// Breakdown attributes the latency from a trace's root to the given span
// across pipeline stages. It walks the ancestor chain root→…→span and
// charges each gap between consecutive chain spans' start instants to the
// earlier span's kind — so the wait between a link span and the switch span
// it delivers into is charged to "link", the wait between a scheme's
// inspection span and the alert it finally raises to "scheme". Total is the
// root's start to the span's end. ok is false when the span (or any chain)
// is not retained.
func (r *Recorder) Breakdown(id ID) (stages map[string]time.Duration, total time.Duration, ok bool) {
	chain := r.PathToRoot(id)
	if len(chain) == 0 {
		return nil, 0, false
	}
	stages = make(map[string]time.Duration)
	for i := 0; i+1 < len(chain); i++ {
		stages[chain[i].Kind] += chain[i+1].Start - chain[i].Start
	}
	total = chain[len(chain)-1].End - chain[0].Start
	return stages, total, true
}

// WriteTree renders the trace containing root as an indented hop-by-hop
// tree with virtual timestamps relative to the root span's start:
//
//	attack/poison-reply +0s
//	  tx/arp-reply +0s
//	    link/transit +0s..120µs
//	      switch/ingress +120µs
//	        cache/changed +120µs
//
// Attrs render sorted. Unknown roots render nothing.
func (r *Recorder) WriteTree(w io.Writer, root ID) error {
	if r == nil {
		return nil
	}
	ix := r.buildIndex()
	base, ok := ix.byID[root]
	if !ok {
		return nil
	}
	var render func(id ID, depth int) error
	render = func(id ID, depth int) error {
		sp := ix.byID[id]
		if err := writeTreeLine(w, sp, base.Start, depth); err != nil {
			return err
		}
		for _, k := range ix.children[id] {
			if err := render(k, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return render(root, 0)
}

// writeTreeLine formats one node of the rendered tree.
func writeTreeLine(w io.Writer, sp Span, base time.Duration, depth int) error {
	var sb strings.Builder
	sb.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(&sb, "%s/%s +%v", sp.Kind, sp.Name, sp.Start-base)
	if sp.End > sp.Start {
		fmt.Fprintf(&sb, "..%v", sp.End-base)
	}
	for _, a := range sortAttrs(sp.Attrs) {
		fmt.Fprintf(&sb, " %s=%s", a.Key, a.Value)
	}
	sb.WriteByte('\n')
	_, err := io.WriteString(w, sb.String())
	return err
}
