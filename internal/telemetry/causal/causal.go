// Package causal records cause-and-effect span trees across the simulated
// LAN: an injected attack frame, the link hops it takes, the switch that
// forwards it, the victim cache mutation it causes, and the alert a scheme
// eventually raises all share one trace, hop-stamped in virtual time.
//
// The propagation mechanism is deliberately minimal. The scheduler carries a
// single "cause" word (the ID of the active span); scheduling an event
// captures it and the run loop restores it before each callback, so causality
// flows across timers, link latencies, and probe windows without any
// component threading context by hand. Components that open spans do so
// through a *Recorder; a nil Recorder is a valid no-op, so the disabled path
// costs one pointer check and zero allocations.
//
// The package is self-contained — internal/telemetry imports it (a Registry
// can own a Recorder), never the reverse.
package causal

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// ID identifies a span (or a trace, which is named by its root span's ID).
// Zero means "none": no trace is active.
type ID uint64

// Attr is one key/value annotation on a span. Attrs are kept as an ordered
// slice (insertion order) but serialize as a JSON object with sorted keys so
// encoded output is deterministic.
type Attr struct {
	Key   string
	Value string
}

// Span is one completed hop in a trace. Start and End are virtual
// timestamps; instantaneous spans (cache mutations, alerts) have Start==End.
type Span struct {
	Trace  ID
	ID     ID
	Parent ID
	Kind   string
	Name   string
	Start  time.Duration
	End    time.Duration
	Attrs  []Attr
}

// Duration returns the span's virtual extent.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// Attr returns the value of the named attribute ("" when absent).
func (s Span) Attr(key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// spanJSON is the NDJSON wire schema for a span. Durations encode as
// nanosecond integers; attrs as an object (encoding/json sorts the keys).
type spanJSON struct {
	Trace  ID                `json:"trace"`
	Span   ID                `json:"span"`
	Parent ID                `json:"parent,omitempty"`
	Kind   string            `json:"kind"`
	Name   string            `json:"name"`
	Start  time.Duration     `json:"start"`
	End    time.Duration     `json:"end"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// MarshalJSON encodes the span in the NDJSON schema.
func (s Span) MarshalJSON() ([]byte, error) {
	out := spanJSON{Trace: s.Trace, Span: s.ID, Parent: s.Parent, Kind: s.Kind,
		Name: s.Name, Start: s.Start, End: s.End}
	if len(s.Attrs) > 0 {
		out.Attrs = make(map[string]string, len(s.Attrs))
		for _, a := range s.Attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes the NDJSON schema back into a Span (attr order is
// the encoded object's sorted-key order).
func (s *Span) UnmarshalJSON(b []byte) error {
	var in spanJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	*s = Span{Trace: in.Trace, ID: in.Span, Parent: in.Parent, Kind: in.Kind,
		Name: in.Name, Start: in.Start, End: in.End}
	if len(in.Attrs) > 0 {
		keys := make([]string, 0, len(in.Attrs))
		for k := range in.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s.Attrs = append(s.Attrs, Attr{Key: k, Value: in.Attrs[k]})
		}
	}
	return nil
}

// Context is the propagation surface a Recorder drives: the virtual clock
// plus the causal word carried by scheduler events. *sim.Scheduler
// implements it.
type Context interface {
	Now() time.Duration
	Cause() uint64
	SetCause(id uint64) (prev uint64)
}

// traceMapLimit bounds the ID→trace index. Entries beyond it are evicted
// oldest-first (deterministically); a span whose parent's entry was evicted
// starts a fresh trace, which only matters for runs holding millions of
// concurrently-referenced spans.
const traceMapLimit = 1 << 16

// Recorder files finished spans into a bounded ring (a flight recorder:
// oldest evicted first) and assigns IDs from a per-recorder sequence, so
// parallel trials that each own a recorder stay byte-identical regardless
// of interleaving. The nil Recorder is a valid no-op.
type Recorder struct {
	ctx       Context
	limit     int
	nextID    uint64
	ring      []Span
	head      int
	n         int
	started   uint64
	dropped   uint64
	traceOf   map[uint64]uint64
	traceFIFO []uint64
	onFinish  func(Span)
}

// DefaultLimit is the span-ring bound used when New is given a
// non-positive limit.
const DefaultLimit = 8192

// New creates a recorder bound to ctx retaining at most limit finished
// spans (DefaultLimit when limit <= 0).
func New(ctx Context, limit int) *Recorder {
	if limit <= 0 {
		limit = DefaultLimit
	}
	return &Recorder{ctx: ctx, limit: limit, traceOf: make(map[uint64]uint64)}
}

// OnFinish registers a hook invoked with every finished span (NDJSON
// mirroring into an event log, live stage attribution). Pass nil to clear.
func (r *Recorder) OnFinish(fn func(Span)) {
	if r == nil {
		return
	}
	r.onFinish = fn
}

// carrier is anything a recorder can be attached to opaquely —
// *sim.Scheduler's SetTraceRecorder/TraceRecorder pair.
type carrier interface{ TraceRecorder() any }

// Of retrieves the Recorder attached to a scheduler (or any carrier),
// returning nil when tracing is not enabled. Components call it once at
// construction and keep the result, so the disabled path stays a nil check.
func Of(v any) *Recorder {
	c, ok := v.(carrier)
	if !ok {
		return nil
	}
	r, _ := c.TraceRecorder().(*Recorder)
	return r
}

// ActiveSpan is a span being recorded. The nil ActiveSpan (from a nil
// Recorder) is a valid no-op, so call sites need no enabled-checks.
type ActiveSpan struct {
	r      *Recorder
	span   Span
	prev   uint64
	active bool // this span currently owns the scheduler's cause word
	done   bool
}

// Begin opens a span parented to the current causal context (a root when
// none is active) and activates it: events scheduled before Detach/End
// inherit it as their cause.
func (r *Recorder) Begin(kind, name string) *ActiveSpan {
	if r == nil {
		return nil
	}
	r.started++
	r.nextID++
	id := r.nextID
	parent := r.ctx.Cause()
	trace := id
	if parent != 0 {
		if t, ok := r.traceOf[parent]; ok {
			trace = t
		}
	}
	r.indexTrace(id, trace)
	prev := r.ctx.SetCause(id)
	now := r.ctx.Now()
	return &ActiveSpan{
		r:      r,
		span:   Span{Trace: ID(trace), ID: ID(id), Parent: ID(parent), Kind: kind, Name: name, Start: now, End: now},
		prev:   prev,
		active: true,
	}
}

// indexTrace records id→trace, evicting the oldest entry past the bound.
func (r *Recorder) indexTrace(id, trace uint64) {
	if len(r.traceFIFO) >= traceMapLimit {
		delete(r.traceOf, r.traceFIFO[0])
		r.traceFIFO = r.traceFIFO[1:]
	}
	r.traceOf[id] = trace
	r.traceFIFO = append(r.traceFIFO, id)
}

// Attr annotates the span; it returns the span for chaining.
func (s *ActiveSpan) Attr(key, value string) *ActiveSpan {
	if s == nil || s.done {
		return s
	}
	s.span.Attrs = append(s.span.Attrs, Attr{Key: key, Value: value})
	return s
}

// ID returns the span's identifier (0 for the no-op span).
func (s *ActiveSpan) ID() ID {
	if s == nil {
		return 0
	}
	return s.span.ID
}

// Detach restores the caller's causal context while leaving the span open —
// the shape link transit wants: schedule the delivery under the span, hand
// control back, and Finish when the frame lands.
func (s *ActiveSpan) Detach() {
	if s == nil || !s.active {
		return
	}
	s.active = false
	s.r.ctx.SetCause(s.prev)
}

// Finish stamps the span's end at the current virtual instant and files it.
// It does not touch the causal context (Detach first, or use End); the
// delivery-side wrapper relies on that, finishing the link span while the
// delivery event still runs under it. Finishing twice is a no-op.
func (s *ActiveSpan) Finish() {
	if s == nil || s.done {
		return
	}
	s.done = true
	s.span.End = s.r.ctx.Now()
	s.r.file(s.span)
}

// End closes a synchronous section: Detach then Finish.
func (s *ActiveSpan) End() {
	s.Detach()
	s.Finish()
}

// file appends a finished span to the ring.
func (r *Recorder) file(sp Span) {
	if r.n < r.limit {
		r.ring = append(r.ring, sp)
		r.n++
	} else {
		r.ring[r.head] = sp
		r.head = (r.head + 1) % r.limit
		r.dropped++
	}
	if r.onFinish != nil {
		r.onFinish(sp)
	}
}

// Started returns how many spans have been opened.
func (r *Recorder) Started() uint64 {
	if r == nil {
		return 0
	}
	return r.started
}

// Dropped returns how many finished spans the ring has evicted.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Len returns the number of retained finished spans.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return r.n
}

// Spans returns the retained finished spans, oldest first. The slice is a
// copy.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	out := make([]Span, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.ring[(r.head+i)%len(r.ring)])
	}
	return out
}

// Find returns the retained spans matching pred, oldest first.
func (r *Recorder) Find(pred func(Span) bool) []Span {
	if r == nil {
		return nil
	}
	var out []Span
	for i := 0; i < r.n; i++ {
		sp := r.ring[(r.head+i)%len(r.ring)]
		if pred(sp) {
			out = append(out, sp)
		}
	}
	return out
}

// WriteNDJSON writes the retained spans, oldest first, one JSON object per
// line in the spanJSON schema.
func (r *Recorder) WriteNDJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, sp := range r.Spans() {
		if err := enc.Encode(sp); err != nil {
			return fmt.Errorf("encode span: %w", err)
		}
	}
	return nil
}

// sortAttrs is used by rendering helpers that want stable attr order.
func sortAttrs(attrs []Attr) []Attr {
	out := append([]Attr(nil), attrs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
