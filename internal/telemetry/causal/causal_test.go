package causal

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fakeCtx is a hand-driven propagation context standing in for the
// scheduler: tests advance the clock and move the cause word explicitly.
type fakeCtx struct {
	now   time.Duration
	cause uint64
}

func (c *fakeCtx) Now() time.Duration { return c.now }
func (c *fakeCtx) Cause() uint64      { return c.cause }
func (c *fakeCtx) SetCause(id uint64) (prev uint64) {
	prev = c.cause
	c.cause = id
	return prev
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	sp := r.Begin("kind", "name")
	if sp != nil {
		t.Fatalf("nil recorder Begin = %v, want nil", sp)
	}
	sp.Attr("k", "v")
	sp.Detach()
	sp.Finish()
	sp.End()
	if r.Len() != 0 || r.Started() != 0 || r.Dropped() != 0 {
		t.Fatal("nil recorder reported non-zero stats")
	}
	if got := r.Spans(); got != nil {
		t.Fatalf("nil recorder Spans = %v, want nil", got)
	}
	if err := r.WriteNDJSON(os.Stderr); err != nil {
		t.Fatalf("nil recorder WriteNDJSON: %v", err)
	}
}

func TestBeginActivatesAndEndRestores(t *testing.T) {
	ctx := &fakeCtx{}
	r := New(ctx, 0)

	root := r.Begin("attack", "gratuitous")
	if ctx.Cause() != uint64(root.ID()) {
		t.Fatalf("cause after Begin = %d, want %d", ctx.Cause(), root.ID())
	}
	child := r.Begin("tx", "arp")
	if child == nil || ctx.Cause() != uint64(child.ID()) {
		t.Fatalf("cause after nested Begin = %d, want %d", ctx.Cause(), child.ID())
	}
	ctx.now = 5 * time.Microsecond
	child.End()
	if ctx.Cause() != uint64(root.ID()) {
		t.Fatalf("cause after child End = %d, want parent %d", ctx.Cause(), root.ID())
	}
	root.End()
	if ctx.Cause() != 0 {
		t.Fatalf("cause after root End = %d, want 0", ctx.Cause())
	}

	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("retained %d spans, want 2", len(spans))
	}
	// Children file before parents (End order), and both share the root's
	// trace.
	if spans[0].Kind != "tx" || spans[1].Kind != "attack" {
		t.Fatalf("filing order = %s, %s", spans[0].Kind, spans[1].Kind)
	}
	if spans[0].Trace != spans[1].Trace || spans[0].Trace != spans[1].ID {
		t.Fatalf("trace ids: child %d, root trace %d id %d", spans[0].Trace, spans[1].Trace, spans[1].ID)
	}
	if spans[0].Parent != spans[1].ID {
		t.Fatalf("child parent = %d, want %d", spans[0].Parent, spans[1].ID)
	}
	if spans[0].Duration() != 5*time.Microsecond {
		t.Fatalf("child duration = %v, want 5µs", spans[0].Duration())
	}
}

func TestDetachKeepsSpanOpenAcrossEvents(t *testing.T) {
	ctx := &fakeCtx{}
	r := New(ctx, 0)

	sp := r.Begin("link", "transit")
	id := sp.ID()
	sp.Detach()
	if ctx.Cause() != 0 {
		t.Fatalf("cause after Detach = %d, want 0", ctx.Cause())
	}
	if r.Len() != 0 {
		t.Fatal("span filed before Finish")
	}
	// Simulate the delivery event running later under the span's cause.
	ctx.now = 120 * time.Microsecond
	ctx.SetCause(uint64(id))
	sp.Finish()
	if r.Len() != 1 {
		t.Fatal("span not filed by Finish")
	}
	got := r.Spans()[0]
	if got.Duration() != 120*time.Microsecond {
		t.Fatalf("transit duration = %v, want 120µs", got.Duration())
	}
	if ctx.Cause() != uint64(id) {
		t.Fatal("Finish must not touch the causal context")
	}
	sp.Finish() // double finish is a no-op
	if r.Len() != 1 || r.Started() != 1 {
		t.Fatal("double Finish filed a second span")
	}
}

func TestRingBoundAndDropCount(t *testing.T) {
	ctx := &fakeCtx{}
	r := New(ctx, 4)
	for i := 0; i < 10; i++ {
		r.Begin("k", "n").End()
		ctx.cause = 0 // each span is its own root
	}
	if r.Len() != 4 {
		t.Fatalf("retained %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped %d, want 6", r.Dropped())
	}
	spans := r.Spans()
	if spans[0].ID != 7 || spans[3].ID != 10 {
		t.Fatalf("ring kept %d..%d, want 7..10", spans[0].ID, spans[3].ID)
	}
}

// buildAttackTrace assembles the canonical poisoning chain by hand:
// attack → tx → link → switch → {scheme → alert, cache}.
func buildAttackTrace(t *testing.T, ctx *fakeCtx, r *Recorder) (alert ID) {
	t.Helper()
	atk := r.Begin("attack", "unsolicited-reply").Attr("victim", "192.168.88.2")
	tx := r.Begin("tx", "ARP")
	link := r.Begin("link", "transit")
	link.Detach()
	tx.End()
	atk.End()

	// Delivery event 50µs later, under the link span.
	ctx.now = 50 * time.Microsecond
	ctx.SetCause(uint64(link.ID()))
	link.Finish()
	sw := r.Begin("switch", "ingress")
	scheme := r.Begin("scheme", "inspect").Attr("scheme", "arpwatch")
	ctx.now = 62 * time.Microsecond
	al := r.Begin("alert", "flip-flop").Attr("scheme", "arpwatch")
	alertID := al.ID()
	al.End()
	scheme.End()
	cache := r.Begin("cache", "changed").Attr("ip", "192.168.88.254")
	cache.End()
	sw.End()
	ctx.SetCause(0)
	return alertID
}

func TestTreeQueriesAndBreakdown(t *testing.T) {
	ctx := &fakeCtx{}
	r := New(ctx, 0)
	alertID := buildAttackTrace(t, ctx, r)

	roots := r.Roots()
	if len(roots) != 1 || roots[0].Kind != "attack" {
		t.Fatalf("roots = %+v, want one attack span", roots)
	}
	path := r.PathToRoot(alertID)
	var kinds []string
	for _, sp := range path {
		kinds = append(kinds, sp.Kind)
	}
	want := "attack/tx/link/switch/scheme/alert"
	if got := strings.Join(kinds, "/"); got != want {
		t.Fatalf("path kinds = %s, want %s", got, want)
	}
	desc := r.Descendants(ID(roots[0].ID))
	if len(desc) != 6 {
		t.Fatalf("descendants = %d, want 6", len(desc))
	}

	stages, total, ok := r.Breakdown(alertID)
	if !ok {
		t.Fatal("Breakdown not ok")
	}
	if total != 62*time.Microsecond {
		t.Fatalf("total = %v, want 62µs", total)
	}
	if stages["link"] != 50*time.Microsecond {
		t.Fatalf("link stage = %v, want 50µs", stages["link"])
	}
	if stages["scheme"] != 12*time.Microsecond {
		t.Fatalf("scheme stage = %v, want 12µs", stages["scheme"])
	}
	if stages["attack"] != 0 || stages["tx"] != 0 || stages["switch"] != 0 {
		t.Fatalf("instant stages non-zero: %v", stages)
	}

	var tree bytes.Buffer
	if err := r.WriteTree(&tree, ID(roots[0].ID)); err != nil {
		t.Fatalf("WriteTree: %v", err)
	}
	for _, needle := range []string{"attack/unsolicited-reply", "  tx/ARP", "alert/flip-flop", "scheme=arpwatch"} {
		if !strings.Contains(tree.String(), needle) {
			t.Fatalf("tree missing %q:\n%s", needle, tree.String())
		}
	}
}

// TestNDJSONGolden pins the span wire schema: the NDJSON emitted for the
// canonical attack chain must match testdata/spans.golden byte for byte.
// Regenerate deliberately with -update when the schema changes.
var update = os.Getenv("UPDATE_GOLDEN") != ""

func TestNDJSONGolden(t *testing.T) {
	ctx := &fakeCtx{}
	r := New(ctx, 0)
	buildAttackTrace(t, ctx, r)

	var buf bytes.Buffer
	if err := r.WriteNDJSON(&buf); err != nil {
		t.Fatalf("WriteNDJSON: %v", err)
	}
	golden := filepath.Join("testdata", "spans.golden")
	if update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("NDJSON schema drifted from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
	// Every line must round-trip as JSON with the required fields.
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		for _, field := range []string{"trace", "span", "kind", "name", "start", "end"} {
			if _, ok := m[field]; !ok {
				t.Fatalf("line %q missing field %q", line, field)
			}
		}
	}
}

func TestOfReturnsNilForNonCarriers(t *testing.T) {
	if rec := Of(42); rec != nil {
		t.Fatalf("Of(non-carrier) = %v, want nil", rec)
	}
	if rec := Of(nil); rec != nil {
		t.Fatalf("Of(nil) = %v, want nil", rec)
	}
}
