package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestEventLogTableDriven(t *testing.T) {
	tests := []struct {
		name      string
		max       int
		log       func(l *EventLog)
		wantLen   int
		wantDrop  uint64
		wantStats EventStats
	}{
		{
			name: "levels counted",
			max:  8,
			log: func(l *EventLog) {
				l.Log(SevDebug, "a", "d")
				l.Log(SevInfo, "a", "i")
				l.Log(SevWarn, "a", "w")
				l.Log(SevError, "a", "e")
			},
			wantLen:   4,
			wantStats: EventStats{Debug: 1, Info: 1, Warn: 1, Error: 1},
		},
		{
			name: "ring evicts oldest",
			max:  2,
			log: func(l *EventLog) {
				l.Log(SevInfo, "a", "one")
				l.Log(SevInfo, "a", "two")
				l.Log(SevInfo, "a", "three")
			},
			wantLen:   2,
			wantDrop:  1,
			wantStats: EventStats{Info: 3, Dropped: 1},
		},
		{
			name: "fields attached",
			max:  4,
			log: func(l *EventLog) {
				l.Log(SevWarn, "guard", "incident", "ip", "10.0.0.1", "scheme", "arpwatch")
			},
			wantLen:   1,
			wantStats: EventStats{Warn: 1},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			l := newEventLog(func() time.Duration { return 0 }, tt.max)
			tt.log(l)
			if l.Len() != tt.wantLen {
				t.Fatalf("Len() = %d, want %d", l.Len(), tt.wantLen)
			}
			if l.Dropped() != tt.wantDrop {
				t.Fatalf("Dropped() = %d, want %d", l.Dropped(), tt.wantDrop)
			}
			if got := l.Stats(); got != tt.wantStats {
				t.Fatalf("Stats() = %+v, want %+v", got, tt.wantStats)
			}
		})
	}
}

func TestEventLogOldestFirstAfterEviction(t *testing.T) {
	l := newEventLog(func() time.Duration { return 0 }, 3)
	for _, m := range []string{"one", "two", "three", "four", "five"} {
		l.Log(SevInfo, "c", m)
	}
	evs := l.Events()
	got := make([]string, len(evs))
	for i, ev := range evs {
		got[i] = ev.Message
	}
	want := []string{"three", "four", "five"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("events = %v, want %v", got, want)
		}
	}
}

func TestEventLogNDJSON(t *testing.T) {
	var now time.Duration
	l := newEventLog(func() time.Duration { return now }, 8)
	l.Log(SevInfo, "stack", "resolution ok", "ip", "192.168.88.254")
	now = time.Second
	l.Warnf("guard", "incident opened for %s", "192.168.88.254")

	var buf bytes.Buffer
	if err := l.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []Event
	for sc.Scan() {
		var ev Event
		raw := map[string]any{}
		if err := json.Unmarshal(sc.Bytes(), &raw); err != nil {
			t.Fatalf("line not JSON: %v: %s", err, sc.Text())
		}
		// Severity marshals as a string name.
		sevName, _ := raw["sev"].(string)
		switch sevName {
		case "info":
			ev.Sev = SevInfo
		case "warn":
			ev.Sev = SevWarn
		default:
			t.Fatalf("unexpected sev %q", sevName)
		}
		ev.Message, _ = raw["msg"].(string)
		lines = append(lines, ev)
	}
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0].Sev != SevInfo || lines[1].Sev != SevWarn {
		t.Fatalf("severities wrong: %+v", lines)
	}
	if !strings.Contains(lines[1].Message, "incident opened for 192.168.88.254") {
		t.Fatalf("formatted message lost: %q", lines[1].Message)
	}
}

func TestEventLogStreaming(t *testing.T) {
	l := newEventLog(func() time.Duration { return 0 }, 8)
	var buf bytes.Buffer
	l.StreamTo(&buf, SevWarn)
	l.Log(SevInfo, "c", "below threshold")
	l.Log(SevError, "c", "streamed")
	out := buf.String()
	if strings.Contains(out, "below threshold") {
		t.Fatal("info event streamed despite warn threshold")
	}
	if !strings.Contains(out, "streamed") {
		t.Fatalf("error event missing from stream: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("stream lines must be newline-delimited")
	}
}
