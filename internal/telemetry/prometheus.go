package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes every metric in the Prometheus text exposition
// format (version 0.0.4): one # TYPE line per metric family, cumulative
// le-labelled buckets plus _sum and _count for histograms. A nil Registry
// writes nothing. Virtual-time histograms export in seconds, matching the
// _seconds naming convention.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var sb strings.Builder

	counterFamilies := familiesOf(r.counters)
	for _, name := range sortedFamilyNames(counterFamilies) {
		fmt.Fprintf(&sb, "# TYPE %s counter\n", name)
		for _, e := range counterFamilies[name] {
			fmt.Fprintf(&sb, "%s%s %d\n", name, promLabels(e.labels, nil), e.m.Value())
		}
	}

	gaugeFamilies := familiesOf(r.gauges)
	for _, name := range sortedFamilyNames(gaugeFamilies) {
		fmt.Fprintf(&sb, "# TYPE %s gauge\n", name)
		for _, e := range gaugeFamilies[name] {
			fmt.Fprintf(&sb, "%s%s %s\n", name, promLabels(e.labels, nil), promFloat(e.m.Value()))
		}
	}

	histFamilies := familiesOf(r.histograms)
	for _, name := range sortedFamilyNames(histFamilies) {
		fmt.Fprintf(&sb, "# TYPE %s histogram\n", name)
		for _, e := range histFamilies[name] {
			h := e.m
			var cum uint64
			for i, bound := range h.bounds {
				cum += h.counts[i]
				le := Label{Key: "le", Value: promFloat(bound)}
				fmt.Fprintf(&sb, "%s_bucket%s %d\n", name, promLabels(e.labels, &le), cum)
			}
			le := Label{Key: "le", Value: "+Inf"}
			fmt.Fprintf(&sb, "%s_bucket%s %d\n", name, promLabels(e.labels, &le), h.count)
			fmt.Fprintf(&sb, "%s_sum%s %s\n", name, promLabels(e.labels, nil), promFloat(h.sum))
			fmt.Fprintf(&sb, "%s_count%s %d\n", name, promLabels(e.labels, nil), h.count)
		}
	}

	if _, err := io.WriteString(w, sb.String()); err != nil {
		return fmt.Errorf("write prometheus exposition: %w", err)
	}
	return nil
}

// familiesOf groups entries by metric name, each family sorted by label
// identity for stable output.
func familiesOf[T any](m map[string]*entry[T]) map[string][]*entry[T] {
	fams := make(map[string][]*entry[T])
	for _, id := range sortedKeys(m) {
		e := m[id]
		fams[e.name] = append(fams[e.name], e)
	}
	return fams
}

// sortedFamilyNames returns the family names in sorted order.
func sortedFamilyNames[T any](fams map[string][]*entry[T]) []string {
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// promLabels renders a label set ({k="v",...}), optionally with one extra
// label appended (the histogram "le"). Empty sets render as nothing.
func promLabels(labels []Label, extra *Label) string {
	if len(labels) == 0 && extra == nil {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(promEscape(l.Value))
		sb.WriteByte('"')
	}
	if extra != nil {
		if len(labels) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extra.Key)
		sb.WriteString(`="`)
		sb.WriteString(promEscape(extra.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// promFloat renders a float the way Prometheus clients do: shortest exact
// decimal form.
func promFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
