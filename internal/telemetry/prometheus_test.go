package telemetry

import (
	"bufio"
	"bytes"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// sampleLine matches one exposition sample: name, optional label set, value.
var sampleLine = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\+Inf|-Inf|NaN|[0-9eE.+-]+)$`)

// metricName and labelName are the exposition format's identifier grammars;
// labelPair is one k="v" with only valid escapes (\\, \n, \") in the value.
var (
	metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelName  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	labelPair  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\\n]|\\\\|\\n|\\")*)"(,|$)`)
)

// checkLabelBlock validates a {k="v",...} block character by character
// against the label grammar; scrapers parse this with exactly this grammar,
// so any drift (bad name, raw quote or newline in a value) is a hard fail.
func checkLabelBlock(t *testing.T, line, block string) {
	t.Helper()
	inner := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	for inner != "" {
		m := labelPair.FindStringSubmatch(inner)
		if m == nil {
			t.Fatalf("malformed label pair at %q in line %q", inner, line)
		}
		if !labelName.MatchString(m[1]) {
			t.Fatalf("invalid label name %q in %q", m[1], line)
		}
		inner = inner[len(m[0]):]
	}
}

// parseExposition validates the text exposition format strictly enough to
// catch malformed output: every line is a well-formed TYPE comment or
// sample, every sample's family has a preceding TYPE line, and histogram
// families carry monotonic buckets plus _sum and _count.
func parseExposition(t *testing.T, text string) map[string]string {
	t.Helper()
	types := make(map[string]string) // family → type
	samples := make(map[string]bool) // family names seen
	sc := bufio.NewScanner(strings.NewReader(text))
	var lastBucketVal uint64
	var inBucketsFor string
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			name, typ := parts[2], parts[3]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("unknown type %q in %q", typ, line)
			}
			if _, dup := types[name]; dup {
				t.Fatalf("duplicate TYPE for %s", name)
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line: %q", line)
		}
		name, labels, value := m[1], m[2], m[3]
		if !metricName.MatchString(name) {
			t.Fatalf("invalid metric name %q in %q", name, line)
		}
		if labels != "" {
			checkLabelBlock(t, line, labels)
		}
		if value != "+Inf" && value != "-Inf" && value != "NaN" {
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				t.Fatalf("unparseable value in %q: %v", line, err)
			}
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && types[base] == "histogram" {
				family = base
			}
		}
		typ, ok := types[family]
		if !ok {
			t.Fatalf("sample %q has no TYPE line (family %q)", line, family)
		}
		samples[family] = true
		if typ == "histogram" && strings.HasSuffix(name, "_bucket") {
			if !strings.Contains(labels, `le="`) {
				t.Fatalf("bucket sample missing le label: %q", line)
			}
			v, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				t.Fatalf("bucket count not integral: %q", line)
			}
			if family+labels != inBucketsFor {
				// A new series may reset; same-series buckets must be
				// monotonic. Track per contiguous run, which is how the
				// writer emits them.
				if strings.Contains(labels, `le="+Inf"`) || !strings.Contains(inBucketsFor, family) {
					lastBucketVal = 0
				}
				inBucketsFor = family + labels
			}
			if v < lastBucketVal {
				t.Fatalf("bucket counts not cumulative at %q (%d < %d)", line, v, lastBucketVal)
			}
			lastBucketVal = v
			if strings.Contains(labels, `le="+Inf"`) {
				lastBucketVal = 0
				inBucketsFor = ""
			}
		}
	}
	return types
}

func TestWritePrometheusValidFormat(t *testing.T) {
	r := New()
	r.Counter("switch_frames_forwarded_total").Add(10)
	r.Counter("switch_port_bytes_total", L("port", "0")).Add(64)
	r.Counter("switch_port_bytes_total", L("port", "1")).Add(128)
	r.Gauge("sim_queue_depth_highwater").Set(17)
	h := r.Histogram("stack_resolution_latency_seconds", []float64{0.001, 0.1, 1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	types := parseExposition(t, out)

	wantTypes := map[string]string{
		"switch_frames_forwarded_total":    "counter",
		"switch_port_bytes_total":          "counter",
		"sim_queue_depth_highwater":        "gauge",
		"stack_resolution_latency_seconds": "histogram",
	}
	for name, typ := range wantTypes {
		if types[name] != typ {
			t.Fatalf("family %s = %q, want %q\n%s", name, types[name], typ, out)
		}
	}
	for _, want := range []string{
		`switch_port_bytes_total{port="0"} 64`,
		`switch_port_bytes_total{port="1"} 128`,
		`stack_resolution_latency_seconds_bucket{le="+Inf"} 3`,
		`stack_resolution_latency_seconds_count 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

// TestPrometheusDetectionStageFamilies strict-parses a document shaped like
// the ops surface's real output — the detection-latency attribution
// histograms a traced run observes (detection_stage_seconds{scheme,stage}
// and detection_total_seconds{scheme}) alongside fabric counters — and
// checks every metric and label name against the exposition grammar.
func TestPrometheusDetectionStageFamilies(t *testing.T) {
	r := New()
	buckets := []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 5, 15}
	for _, scheme := range []string{"active-probe", "arpwatch", "hybrid-guard"} {
		for _, stage := range []string{"inject", "queue", "wire", "switch", "inspect"} {
			r.Histogram("detection_stage_seconds", buckets,
				L("scheme", scheme), L("stage", stage)).Observe(0.0005)
		}
		r.Histogram("detection_total_seconds", buckets, L("scheme", scheme)).Observe(0.5)
		r.Counter("scheme_alerts_total", L("scheme", scheme)).Inc()
	}
	r.Counter("sim_events_executed_total").Add(12345)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	types := parseExposition(t, buf.String())
	for family, typ := range map[string]string{
		"detection_stage_seconds":   "histogram",
		"detection_total_seconds":   "histogram",
		"scheme_alerts_total":       "counter",
		"sim_events_executed_total": "counter",
	} {
		if types[family] != typ {
			t.Fatalf("family %s = %q, want %q", family, types[family], typ)
		}
	}
	want := `detection_stage_seconds_bucket{scheme="active-probe",stage="inspect",le="0.001"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("missing %q in:\n%s", want, buf.String())
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	r := New()
	r.Counter("odd_total", L("detail", "say \"hi\"\nback\\slash")).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `odd_total{detail="say \"hi\"\nback\\slash"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("escaping wrong:\n%s", buf.String())
	}
}

func TestPrometheusBucketBoundsRenderCleanly(t *testing.T) {
	r := New()
	h := r.Histogram("b_seconds", []float64{0.00025, 0.5, 10})
	h.Observe(0.1)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, le := range []string{`le="0.00025"`, `le="0.5"`, `le="10"`} {
		if !strings.Contains(buf.String(), le) {
			t.Fatalf("missing %s in:\n%s", le, buf.String())
		}
	}
}

func ExampleRegistry_WritePrometheus() {
	r := New()
	r.Counter("stack_cache_hits_total", L("host", "gateway")).Add(3)
	var buf bytes.Buffer
	_ = r.WritePrometheus(&buf)
	fmt.Print(buf.String())
	// Output:
	// # TYPE stack_cache_hits_total counter
	// stack_cache_hits_total{host="gateway"} 3
}
