package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Severity grades an event.
type Severity int

// Severity levels, least to most urgent.
const (
	SevDebug Severity = iota
	SevInfo
	SevWarn
	SevError
)

// String returns the level name used in exports.
func (s Severity) String() string {
	switch s {
	case SevDebug:
		return "debug"
	case SevInfo:
		return "info"
	case SevWarn:
		return "warn"
	case SevError:
		return "error"
	default:
		return "unknown"
	}
}

// MarshalJSON encodes the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON decodes the string form written by MarshalJSON, so event
// streams (NDJSON, flight-recorder dumps) round-trip.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "debug":
		*s = SevDebug
	case "info":
		*s = SevInfo
	case "warn":
		*s = SevWarn
	case "error":
		*s = SevError
	default:
		return fmt.Errorf("unknown severity %q", name)
	}
	return nil
}

// Event is one structured log record stamped with virtual time.
type Event struct {
	At        time.Duration     `json:"at"`
	Sev       Severity          `json:"sev"`
	Component string            `json:"component"`
	Message   string            `json:"msg"`
	Fields    map[string]string `json:"fields,omitempty"`
}

// EventStats summarizes the log for snapshots.
type EventStats struct {
	Debug   uint64 `json:"debug"`
	Info    uint64 `json:"info"`
	Warn    uint64 `json:"warn"`
	Error   uint64 `json:"error"`
	Dropped uint64 `json:"dropped"`
}

// EventLog retains structured events in a bounded ring (oldest evicted
// first) and can additionally stream them live as NDJSON. Construct via
// Registry; the nil EventLog is a valid no-op.
type EventLog struct {
	now       func() time.Duration
	max       int
	ring      []Event
	head      int
	n         int
	dropped   uint64
	counts    [4]uint64
	stream    io.Writer
	streamMin Severity
}

// newEventLog creates a log retaining at most max events.
func newEventLog(now func() time.Duration, max int) *EventLog {
	return &EventLog{now: now, max: max}
}

// StreamTo mirrors every event at or above min to w as NDJSON, live. Pass
// nil to stop streaming. This is what the CLIs' -v flag hooks to stderr.
func (l *EventLog) StreamTo(w io.Writer, min Severity) {
	if l == nil {
		return
	}
	l.stream = w
	l.streamMin = min
}

// Log records one event. kv lists alternating field keys and values; an
// odd trailing key gets an empty value.
func (l *EventLog) Log(sev Severity, component, msg string, kv ...string) {
	if l == nil {
		return
	}
	ev := Event{At: l.now(), Sev: sev, Component: component, Message: msg}
	if len(kv) > 0 {
		ev.Fields = make(map[string]string, (len(kv)+1)/2)
		for i := 0; i < len(kv); i += 2 {
			v := ""
			if i+1 < len(kv) {
				v = kv[i+1]
			}
			ev.Fields[kv[i]] = v
		}
	}
	if sev >= SevDebug && sev <= SevError {
		l.counts[sev]++
	}
	if l.n < l.max {
		l.ring = append(l.ring, ev)
		l.n++
	} else {
		l.ring[l.head] = ev
		l.head = (l.head + 1) % l.max
		l.dropped++
	}
	if l.stream != nil && sev >= l.streamMin {
		if b, err := json.Marshal(ev); err == nil {
			l.stream.Write(append(b, '\n'))
		}
	}
}

// Debugf, Infof, Warnf, Errorf are severity shorthands.
func (l *EventLog) Debugf(component, format string, args ...any) {
	l.logf(SevDebug, component, format, args...)
}

// Infof logs at info level.
func (l *EventLog) Infof(component, format string, args ...any) {
	l.logf(SevInfo, component, format, args...)
}

// Warnf logs at warn level.
func (l *EventLog) Warnf(component, format string, args ...any) {
	l.logf(SevWarn, component, format, args...)
}

// Errorf logs at error level.
func (l *EventLog) Errorf(component, format string, args ...any) {
	l.logf(SevError, component, format, args...)
}

// logf formats lazily: a nil log never evaluates the format.
func (l *EventLog) logf(sev Severity, component, format string, args ...any) {
	if l == nil {
		return
	}
	if len(args) == 0 {
		l.Log(sev, component, format)
		return
	}
	l.Log(sev, component, fmt.Sprintf(format, args...))
}

// Len returns the number of retained events.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	return l.n
}

// Dropped returns how many events the ring has evicted.
func (l *EventLog) Dropped() uint64 {
	if l == nil {
		return 0
	}
	return l.dropped
}

// Stats returns the per-severity totals (eviction-proof) and drop count.
func (l *EventLog) Stats() EventStats {
	if l == nil {
		return EventStats{}
	}
	return EventStats{
		Debug:   l.counts[SevDebug],
		Info:    l.counts[SevInfo],
		Warn:    l.counts[SevWarn],
		Error:   l.counts[SevError],
		Dropped: l.dropped,
	}
}

// Events returns the retained events, oldest first. The slice is a copy.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	out := make([]Event, 0, l.n)
	for i := 0; i < l.n; i++ {
		out = append(out, l.ring[(l.head+i)%len(l.ring)])
	}
	return out
}

// WriteNDJSON writes the retained events as newline-delimited JSON, oldest
// first.
func (l *EventLog) WriteNDJSON(w io.Writer) error {
	if l == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, ev := range l.Events() {
		if err := enc.Encode(ev); err != nil {
			return fmt.Errorf("encode event: %w", err)
		}
	}
	return nil
}
