package telemetry

import (
	"sort"
	"time"
)

// PhaseMark is one named instant inside a span: the moment a resolution's
// request went out, its reply arrived, or its binding entered quarantine.
type PhaseMark struct {
	Name string        `json:"name"`
	At   time.Duration `json:"at"`
}

// SpanRecord is one completed lifecycle, with per-phase virtual timestamps
// so detection latency can be attributed to the phase that spent it.
type SpanRecord struct {
	Name    string        `json:"name"`
	Target  string        `json:"target,omitempty"`
	Start   time.Duration `json:"start"`
	End     time.Duration `json:"end"`
	Outcome string        `json:"outcome"`
	Phases  []PhaseMark   `json:"phases,omitempty"`
}

// Duration returns the span's total virtual time.
func (r SpanRecord) Duration() time.Duration { return r.End - r.Start }

// Span is one in-flight lifecycle. The nil Span is a valid no-op, so
// components can hold and drive spans without checking whether tracing is
// attached.
type Span struct {
	t    *Tracer
	rec  SpanRecord
	done bool
}

// Phase marks a named instant at the current virtual time.
func (s *Span) Phase(name string) {
	if s == nil || s.done {
		return
	}
	s.rec.Phases = append(s.rec.Phases, PhaseMark{Name: name, At: s.t.now()})
}

// Finish completes the span with an outcome ("commit", "fail", "quarantine",
// "verify", ...) and hands it to the tracer's ring. Finishing twice is a
// no-op.
func (s *Span) Finish(outcome string) {
	if s == nil || s.done {
		return
	}
	s.done = true
	s.rec.End = s.t.now()
	s.rec.Outcome = outcome
	s.t.complete(s.rec)
}

// SpanSummary aggregates completed spans per (name, outcome).
type SpanSummary struct {
	Name      string  `json:"name"`
	Outcome   string  `json:"outcome"`
	Count     uint64  `json:"count"`
	TotalSecs float64 `json:"totalSeconds"`
	MaxSecs   float64 `json:"maxSeconds"`
}

// Tracer records lifecycle spans into a bounded ring (oldest evicted first)
// and keeps running aggregates that survive eviction. Construct via
// Registry; the nil Tracer is a valid no-op.
type Tracer struct {
	now     func() time.Duration
	max     int
	ring    []SpanRecord
	head    int
	n       int
	dropped uint64
	started uint64
	agg     map[string]*SpanSummary // keyed name + 0xff + outcome
}

// newTracer creates a tracer retaining at most max completed spans.
func newTracer(now func() time.Duration, max int) *Tracer {
	return &Tracer{now: now, max: max, agg: make(map[string]*SpanSummary)}
}

// Start opens a span for a named lifecycle against a target (typically the
// IP being resolved or verified). A nil Tracer returns a nil Span.
func (t *Tracer) Start(name, target string) *Span {
	if t == nil {
		return nil
	}
	t.started++
	return &Span{t: t, rec: SpanRecord{Name: name, Target: target, Start: t.now()}}
}

// Started returns how many spans have been opened.
func (t *Tracer) Started() uint64 {
	if t == nil {
		return 0
	}
	return t.started
}

// Dropped returns how many completed spans the ring has evicted.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// complete files a finished span: O(1) ring append plus aggregate update.
func (t *Tracer) complete(rec SpanRecord) {
	if t.n < t.max {
		t.ring = append(t.ring, rec)
		t.n++
	} else {
		t.ring[t.head] = rec
		t.head = (t.head + 1) % t.max
		t.dropped++
	}
	key := rec.Name + "\xff" + rec.Outcome
	s, ok := t.agg[key]
	if !ok {
		s = &SpanSummary{Name: rec.Name, Outcome: rec.Outcome}
		t.agg[key] = s
	}
	secs := rec.Duration().Seconds()
	s.Count++
	s.TotalSecs += secs
	if secs > s.MaxSecs {
		s.MaxSecs = secs
	}
}

// Completed returns the retained spans, oldest first. The slice is a copy.
func (t *Tracer) Completed() []SpanRecord {
	if t == nil {
		return nil
	}
	out := make([]SpanRecord, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(t.head+i)%len(t.ring)])
	}
	return out
}

// Summaries returns the per-(name, outcome) aggregates, sorted for stable
// export. Aggregates cover every completed span, including evicted ones.
func (t *Tracer) Summaries() []SpanSummary {
	if t == nil {
		return nil
	}
	out := make([]SpanSummary, 0, len(t.agg))
	for _, s := range t.agg {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Outcome < out[j].Outcome
	})
	return out
}
