package telemetry

import (
	"testing"
	"time"
)

// testClock is an adjustable virtual clock for tracer tests.
type testClock struct{ now time.Duration }

func (c *testClock) fn() func() time.Duration {
	return func() time.Duration { return c.now }
}

func TestTracerTableDriven(t *testing.T) {
	tests := []struct {
		name        string
		run         func(clk *testClock, tr *Tracer)
		wantCount   int
		wantOutcome string
		wantDur     time.Duration
		wantPhases  int
	}{
		{
			name: "commit with phases",
			run: func(clk *testClock, tr *Tracer) {
				sp := tr.Start("resolve", "192.168.88.254")
				clk.now = 50 * time.Microsecond
				sp.Phase("request")
				clk.now = 150 * time.Microsecond
				sp.Phase("reply")
				clk.now = 200 * time.Microsecond
				sp.Finish("commit")
			},
			wantCount: 1, wantOutcome: "commit",
			wantDur: 200 * time.Microsecond, wantPhases: 2,
		},
		{
			name: "fail without phases",
			run: func(clk *testClock, tr *Tracer) {
				sp := tr.Start("resolve", "192.168.88.9")
				clk.now = 3 * time.Second
				sp.Finish("fail")
			},
			wantCount: 1, wantOutcome: "fail", wantDur: 3 * time.Second,
		},
		{
			name: "double finish is one record",
			run: func(clk *testClock, tr *Tracer) {
				sp := tr.Start("verify", "x")
				clk.now = time.Second
				sp.Finish("reject")
				clk.now = 2 * time.Second
				sp.Finish("commit")
			},
			wantCount: 1, wantOutcome: "reject", wantDur: time.Second,
		},
		{
			name: "unfinished span not recorded",
			run: func(clk *testClock, tr *Tracer) {
				tr.Start("resolve", "y").Phase("request")
			},
			wantCount: 0,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			clk := &testClock{}
			tr := newTracer(clk.fn(), 16)
			tt.run(clk, tr)
			recs := tr.Completed()
			if len(recs) != tt.wantCount {
				t.Fatalf("completed = %d, want %d", len(recs), tt.wantCount)
			}
			if tt.wantCount == 0 {
				return
			}
			rec := recs[0]
			if rec.Outcome != tt.wantOutcome {
				t.Fatalf("outcome = %q, want %q", rec.Outcome, tt.wantOutcome)
			}
			if rec.Duration() != tt.wantDur {
				t.Fatalf("duration = %v, want %v", rec.Duration(), tt.wantDur)
			}
			if len(rec.Phases) != tt.wantPhases {
				t.Fatalf("phases = %d, want %d", len(rec.Phases), tt.wantPhases)
			}
		})
	}
}

func TestTracerRingEvictionOldestFirst(t *testing.T) {
	clk := &testClock{}
	tr := newTracer(clk.fn(), 3)
	for i := 0; i < 5; i++ {
		clk.now = time.Duration(i) * time.Second
		sp := tr.Start("resolve", "t")
		sp.Finish("commit")
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
	recs := tr.Completed()
	if len(recs) != 3 {
		t.Fatalf("retained = %d, want 3", len(recs))
	}
	for i, rec := range recs {
		want := time.Duration(i+2) * time.Second
		if rec.Start != want {
			t.Fatalf("record %d start = %v, want %v (oldest-first)", i, rec.Start, want)
		}
	}
	// Aggregates survive eviction.
	sums := tr.Summaries()
	if len(sums) != 1 || sums[0].Count != 5 {
		t.Fatalf("summaries = %+v, want one entry counting all 5", sums)
	}
}

func TestTracerSummariesSorted(t *testing.T) {
	clk := &testClock{}
	tr := newTracer(clk.fn(), 16)
	tr.Start("verify", "a").Finish("reject")
	tr.Start("resolve", "b").Finish("fail")
	tr.Start("resolve", "c").Finish("commit")
	sums := tr.Summaries()
	if len(sums) != 3 {
		t.Fatalf("summaries = %d", len(sums))
	}
	order := []string{"resolve/commit", "resolve/fail", "verify/reject"}
	for i, s := range sums {
		if got := s.Name + "/" + s.Outcome; got != order[i] {
			t.Fatalf("summary %d = %s, want %s", i, got, order[i])
		}
	}
	if tr.Started() != 3 {
		t.Fatalf("started = %d", tr.Started())
	}
}
