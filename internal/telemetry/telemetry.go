// Package telemetry is the framework's unified observability layer: a
// zero-dependency metrics registry (counters, gauges, histograms keyed by
// component labels), a span tracer for ARP-resolution lifecycles, and a
// structured event log with severity levels and bounded ring retention.
//
// The design constraint is the single-threaded deterministic simulator:
// every instrument is a plain pointer whose methods are nil-safe no-ops, so
// an uninstrumented component pays one nil check per site and nothing else,
// and an instrumented run stays deterministic because nothing here consults
// wall clocks or spawns goroutines. Virtual time enters through a clock
// function (usually sim.Scheduler.Now) installed with Registry.SetNow.
//
// A Registry is owned by exactly one simulation and is not safe for
// concurrent use, matching the engine it instruments.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/telemetry/causal"
)

// Label is one key=value dimension attached to a metric.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing count. The nil Counter is a valid
// no-op, which is how uninstrumented components stay free.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a value that can move both ways. The nil Gauge is a valid no-op.
type Gauge struct{ v float64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Add moves the value by delta.
func (g *Gauge) Add(delta float64) {
	if g != nil {
		g.v += delta
	}
}

// SetMax keeps the high-water mark: the gauge only moves up.
func (g *Gauge) SetMax(v float64) {
	if g != nil && v > g.v {
		g.v = v
	}
}

// Value returns the current value (0 for a nil Gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-bucket distribution. Bounds are inclusive upper
// limits ("le" in Prometheus terms); one implicit overflow bucket catches
// everything above the last bound. The nil Histogram is a valid no-op.
type Histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; the last slot is the +Inf bucket
	sum    float64
	count  uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// ObserveDuration records a virtual-time duration in seconds, the unit every
// latency histogram in the framework uses.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of samples (0 for a nil Histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of samples (0 for a nil Histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// LatencyBuckets are the default histogram bounds for resolution and
// detection latencies, in seconds. They are virtual-time-aware: the
// simulated LAN resolves in tens of microseconds on an idle segment and in
// whole seconds when retries and verification windows stack, so the buckets
// span 10µs to 10s geometrically.
var LatencyBuckets = []float64{
	0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// entry pairs an instrument with its identity for export.
type entry[T any] struct {
	name   string
	labels []Label
	m      T
}

// Registry holds every instrument of one simulation plus its span tracer
// and event log. The zero value is not usable; construct with New. All
// methods are nil-safe: a nil *Registry hands out nil instruments, so
// instrumentation can be wired unconditionally.
type Registry struct {
	now        func() time.Duration
	counters   map[string]*entry[*Counter]
	gauges     map[string]*entry[*Gauge]
	histograms map[string]*entry[*Histogram]
	tracer     *Tracer
	events     *EventLog
	causal     *causal.Recorder
}

// New creates an empty registry whose clock reads zero until SetNow.
func New() *Registry {
	r := &Registry{
		counters:   make(map[string]*entry[*Counter]),
		gauges:     make(map[string]*entry[*Gauge]),
		histograms: make(map[string]*entry[*Histogram]),
	}
	r.now = func() time.Duration { return 0 }
	clock := func() time.Duration { return r.now() }
	r.tracer = newTracer(clock, 4096)
	r.events = newEventLog(clock, 4096)
	return r
}

// SetNow installs the virtual clock consulted by spans and events; pass
// sim.Scheduler.Now. sim.Scheduler.Instrument does this automatically.
func (r *Registry) SetNow(fn func() time.Duration) {
	if r != nil && fn != nil {
		r.now = fn
	}
}

// Tracer returns the registry's span tracer (nil for a nil Registry).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// Events returns the registry's event log (nil for a nil Registry).
func (r *Registry) Events() *EventLog {
	if r == nil {
		return nil
	}
	return r.events
}

// EnableCausal attaches a causal span recorder to the registry, bound to
// the given propagation context (a *sim.Scheduler) and retaining at most
// limit finished spans (causal.DefaultLimit when <= 0). Every finished span
// is mirrored into the event log as a debug-severity "causal" event, so the
// NDJSON event stream interleaves hop spans with the rest of the run's
// structured log. Calling it again replaces the recorder. A nil Registry
// returns nil.
func (r *Registry) EnableCausal(ctx causal.Context, limit int) *causal.Recorder {
	if r == nil {
		return nil
	}
	rec := causal.New(ctx, limit)
	rec.OnFinish(func(sp causal.Span) {
		r.events.Log(SevDebug, "causal", sp.Kind+"/"+sp.Name,
			"trace", strconv.FormatUint(uint64(sp.Trace), 10),
			"span", strconv.FormatUint(uint64(sp.ID), 10),
			"parent", strconv.FormatUint(uint64(sp.Parent), 10),
			"start", sp.Start.String(),
			"end", sp.End.String(),
		)
	})
	r.causal = rec
	return rec
}

// Causal returns the recorder installed by EnableCausal — nil when tracing
// is disabled, which every call site treats as the no-op recorder.
func (r *Registry) Causal() *causal.Recorder {
	if r == nil {
		return nil
	}
	return r.causal
}

// metricID builds the registry key: name plus sorted labels.
func metricID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	for _, l := range labels {
		sb.WriteByte(0xff)
		sb.WriteString(l.Key)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
	}
	return sb.String()
}

// sortLabels returns a copy of labels sorted by key.
func sortLabels(labels []Label) []Label {
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Counter returns (creating if needed) the counter with this identity.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	labels = sortLabels(labels)
	id := metricID(name, labels)
	if e, ok := r.counters[id]; ok {
		return e.m
	}
	e := &entry[*Counter]{name: name, labels: labels, m: &Counter{}}
	r.counters[id] = e
	return e.m
}

// CounterValue reads the current value of the counter with this identity
// without creating it: zero for an unknown identity or a nil registry. It
// is the read-side counterpart of Counter for assertions and summaries.
func (r *Registry) CounterValue(name string, labels ...Label) uint64 {
	if r == nil {
		return 0
	}
	labels = sortLabels(labels)
	if e, ok := r.counters[metricID(name, labels)]; ok {
		return e.m.Value()
	}
	return 0
}

// Gauge returns (creating if needed) the gauge with this identity.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	labels = sortLabels(labels)
	id := metricID(name, labels)
	if e, ok := r.gauges[id]; ok {
		return e.m
	}
	e := &entry[*Gauge]{name: name, labels: labels, m: &Gauge{}}
	r.gauges[id] = e
	return e.m
}

// Histogram returns (creating if needed) the histogram with this identity.
// bounds must be sorted ascending; nil selects LatencyBuckets. Bounds are
// fixed on first registration; later calls with the same identity return
// the existing instrument regardless of bounds.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	labels = sortLabels(labels)
	id := metricID(name, labels)
	if e, ok := r.histograms[id]; ok {
		return e.m
	}
	if bounds == nil {
		bounds = LatencyBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	e := &entry[*Histogram]{name: name, labels: labels, m: &Histogram{
		bounds: b,
		counts: make([]uint64, len(b)+1),
	}}
	r.histograms[id] = e
	return e.m
}

// HistogramSnapshot reads the current state of the histogram with this
// identity without creating it, as the same cumulative-bucket point
// Snapshot exports. ok is false for an unknown identity or a nil registry.
// It is the read-side counterpart of Histogram, mirroring CounterValue.
func (r *Registry) HistogramSnapshot(name string, labels ...Label) (HistogramPoint, bool) {
	if r == nil {
		return HistogramPoint{}, false
	}
	labels = sortLabels(labels)
	e, ok := r.histograms[metricID(name, labels)]
	if !ok {
		return HistogramPoint{}, false
	}
	h := e.m
	buckets := make([]Bucket, len(h.bounds))
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i]
		buckets[i] = Bucket{LE: b, Count: cum}
	}
	return HistogramPoint{
		Name: e.name, Labels: labelMap(e.labels),
		Buckets: buckets, Sum: h.sum, Count: h.count,
	}, true
}

// CounterPoint is one exported counter sample.
type CounterPoint struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  uint64            `json:"value"`
}

// GaugePoint is one exported gauge sample.
type GaugePoint struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// Bucket is one cumulative histogram bucket: the count of samples ≤ LE.
type Bucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// HistogramPoint is one exported histogram.
type HistogramPoint struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Buckets []Bucket          `json:"buckets"`
	Sum     float64           `json:"sum"`
	Count   uint64            `json:"count"`
}

// Snapshot is a point-in-time export of everything the registry holds,
// ordered deterministically so snapshots diff cleanly across runs.
type Snapshot struct {
	Counters   []CounterPoint   `json:"counters"`
	Gauges     []GaugePoint     `json:"gauges"`
	Histograms []HistogramPoint `json:"histograms"`
	Spans      []SpanSummary    `json:"spans,omitempty"`
	Events     EventStats       `json:"events"`
}

// labelMap converts sorted labels for JSON export.
func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// Snapshot captures the current state of every instrument. A nil Registry
// yields an empty (but valid) snapshot.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	for _, id := range sortedKeys(r.counters) {
		e := r.counters[id]
		snap.Counters = append(snap.Counters, CounterPoint{
			Name: e.name, Labels: labelMap(e.labels), Value: e.m.Value(),
		})
	}
	for _, id := range sortedKeys(r.gauges) {
		e := r.gauges[id]
		snap.Gauges = append(snap.Gauges, GaugePoint{
			Name: e.name, Labels: labelMap(e.labels), Value: e.m.Value(),
		})
	}
	for _, id := range sortedKeys(r.histograms) {
		e := r.histograms[id]
		h := e.m
		buckets := make([]Bucket, len(h.bounds))
		var cum uint64
		for i, b := range h.bounds {
			cum += h.counts[i]
			buckets[i] = Bucket{LE: b, Count: cum}
		}
		snap.Histograms = append(snap.Histograms, HistogramPoint{
			Name: e.name, Labels: labelMap(e.labels),
			Buckets: buckets, Sum: h.sum, Count: h.count,
		})
	}
	snap.Spans = r.tracer.Summaries()
	snap.Events = r.events.Stats()
	return snap
}

// sortedKeys returns the map keys in sorted order.
func sortedKeys[T any](m map[string]*entry[T]) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteJSON writes the snapshot as one indented JSON document.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Snapshot()); err != nil {
		return fmt.Errorf("encode telemetry snapshot: %w", err)
	}
	return nil
}

// WriteFile exports the registry to path, choosing the format by suffix:
// Prometheus text exposition for ".prom", a JSON snapshot otherwise. This
// is what the CLIs' -metrics flag calls.
func (r *Registry) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create metrics file: %w", err)
	}
	defer f.Close()
	if strings.HasSuffix(path, ".prom") {
		err = r.WritePrometheus(f)
	} else {
		err = r.WriteJSON(f)
	}
	if err != nil {
		return err
	}
	return f.Close()
}
