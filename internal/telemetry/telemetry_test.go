package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"
)

func TestCounterTableDriven(t *testing.T) {
	tests := []struct {
		name string
		ops  func(c *Counter)
		want uint64
	}{
		{"zero", func(c *Counter) {}, 0},
		{"inc", func(c *Counter) { c.Inc(); c.Inc(); c.Inc() }, 3},
		{"add", func(c *Counter) { c.Add(10); c.Add(5) }, 15},
		{"mixed", func(c *Counter) { c.Inc(); c.Add(41) }, 42},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := New()
			c := r.Counter("test_total")
			tt.ops(c)
			if got := c.Value(); got != tt.want {
				t.Fatalf("Value() = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestCounterValueReadsWithoutCreating(t *testing.T) {
	r := New()
	r.Counter("hits_total", L("experiment", "table3")).Add(7)

	if got := r.CounterValue("hits_total", L("experiment", "table3")); got != 7 {
		t.Fatalf("CounterValue = %d, want 7", got)
	}
	// Label order must not matter (identities sort labels).
	r.Counter("multi_total", L("b", "2"), L("a", "1")).Inc()
	if got := r.CounterValue("multi_total", L("a", "1"), L("b", "2")); got != 1 {
		t.Fatalf("CounterValue with reordered labels = %d, want 1", got)
	}
	// Reads of unknown identities return zero and register nothing.
	if got := r.CounterValue("hits_total", L("experiment", "nope")); got != 0 {
		t.Fatalf("unknown identity CounterValue = %d, want 0", got)
	}
	if n := len(r.Snapshot().Counters); n != 2 {
		t.Fatalf("read created a counter: %d registered, want 2", n)
	}
	var nilReg *Registry
	if got := nilReg.CounterValue("hits_total"); got != 0 {
		t.Fatalf("nil registry CounterValue = %d, want 0", got)
	}
}

func TestHistogramSnapshotReadsWithoutCreating(t *testing.T) {
	r := New()
	h := r.Histogram("stage_seconds", []float64{0.001, 0.1, 1}, L("stage", "wire"))
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5)

	// Label order must not matter (identities sort labels); the point must
	// match what Snapshot exports: cumulative buckets, sum, count.
	p, ok := r.HistogramSnapshot("stage_seconds", L("stage", "wire"))
	if !ok {
		t.Fatal("known identity not found")
	}
	if p.Name != "stage_seconds" || p.Labels["stage"] != "wire" {
		t.Fatalf("identity = %s %v", p.Name, p.Labels)
	}
	if p.Count != 3 || math.Abs(p.Sum-5.0505) > 1e-12 {
		t.Fatalf("count=%d sum=%v, want 3 and 5.0505", p.Count, p.Sum)
	}
	wantBuckets := []Bucket{{LE: 0.001, Count: 1}, {LE: 0.1, Count: 2}, {LE: 1, Count: 2}}
	if len(p.Buckets) != len(wantBuckets) {
		t.Fatalf("buckets = %v", p.Buckets)
	}
	for i, b := range wantBuckets {
		if p.Buckets[i] != b {
			t.Fatalf("bucket %d = %+v, want %+v", i, p.Buckets[i], b)
		}
	}

	// Reads of unknown identities report !ok and register nothing.
	if _, ok := r.HistogramSnapshot("stage_seconds", L("stage", "nope")); ok {
		t.Fatal("unknown identity reported ok")
	}
	if n := len(r.Snapshot().Histograms); n != 1 {
		t.Fatalf("read created a histogram: %d registered, want 1", n)
	}
	var nilReg *Registry
	if _, ok := nilReg.HistogramSnapshot("stage_seconds"); ok {
		t.Fatal("nil registry reported ok")
	}
}

func TestGaugeTableDriven(t *testing.T) {
	tests := []struct {
		name string
		ops  func(g *Gauge)
		want float64
	}{
		{"zero", func(g *Gauge) {}, 0},
		{"set", func(g *Gauge) { g.Set(7.5) }, 7.5},
		{"add", func(g *Gauge) { g.Set(2); g.Add(-0.5) }, 1.5},
		{"setmax up", func(g *Gauge) { g.SetMax(3); g.SetMax(9) }, 9},
		{"setmax down ignored", func(g *Gauge) { g.SetMax(9); g.SetMax(3) }, 9},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := New()
			g := r.Gauge("test_gauge")
			tt.ops(g)
			if got := g.Value(); got != tt.want {
				t.Fatalf("Value() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestHistogramTableDriven(t *testing.T) {
	bounds := []float64{0.1, 1, 10}
	tests := []struct {
		name        string
		samples     []float64
		wantBuckets []uint64 // cumulative, per finite bound
		wantCount   uint64
		wantSum     float64
	}{
		{"empty", nil, []uint64{0, 0, 0}, 0, 0},
		{"one per bucket", []float64{0.05, 0.5, 5}, []uint64{1, 2, 3}, 3, 5.55},
		{"boundary is inclusive", []float64{0.1, 1, 10}, []uint64{1, 2, 3}, 3, 11.1},
		{"overflow", []float64{100, 200}, []uint64{0, 0, 0}, 2, 300},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := New()
			h := r.Histogram("test_seconds", bounds)
			for _, s := range tt.samples {
				h.Observe(s)
			}
			if h.Count() != tt.wantCount {
				t.Fatalf("Count() = %d, want %d", h.Count(), tt.wantCount)
			}
			if h.Sum() != tt.wantSum {
				t.Fatalf("Sum() = %v, want %v", h.Sum(), tt.wantSum)
			}
			snap := r.Snapshot()
			if len(snap.Histograms) != 1 {
				t.Fatalf("snapshot histograms = %d", len(snap.Histograms))
			}
			for i, want := range tt.wantBuckets {
				if got := snap.Histograms[0].Buckets[i].Count; got != want {
					t.Fatalf("bucket[%d] = %d, want %d", i, got, want)
				}
			}
		})
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	r := New()
	h := r.Histogram("lat_seconds", nil) // default latency buckets
	h.ObserveDuration(50 * time.Microsecond)
	h.ObserveDuration(2 * time.Second)
	if h.Count() != 2 {
		t.Fatalf("Count() = %d", h.Count())
	}
	if h.Sum() != 2.00005 {
		t.Fatalf("Sum() = %v", h.Sum())
	}
}

func TestNilRegistryAndInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	g := r.Gauge("x")
	h := r.Histogram("x_seconds", nil)
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.SetMax(2)
	h.Observe(3)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	sp := r.Tracer().Start("resolve", "10.0.0.1")
	sp.Phase("request")
	sp.Finish("commit")
	r.Events().Log(SevInfo, "test", "ignored")
	r.Events().Infof("test", "ignored %d", 1)
	if got := r.Tracer().Completed(); got != nil {
		t.Fatalf("nil tracer completed = %v", got)
	}
	if got := r.Events().Events(); got != nil {
		t.Fatalf("nil event log events = %v", got)
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatal("nil snapshot must be empty")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q", buf.String())
	}
}

func TestRegistryIdentity(t *testing.T) {
	r := New()
	a := r.Counter("hits_total", L("host", "h1"))
	b := r.Counter("hits_total", L("host", "h1"))
	c := r.Counter("hits_total", L("host", "h2"))
	if a != b {
		t.Fatal("same identity must return the same counter")
	}
	if a == c {
		t.Fatal("different labels must return different counters")
	}
	// Label order must not matter.
	d := r.Counter("multi_total", L("b", "2"), L("a", "1"))
	e := r.Counter("multi_total", L("a", "1"), L("b", "2"))
	if d != e {
		t.Fatal("label order must not change identity")
	}
}

func TestSnapshotDeterministicOrderAndJSON(t *testing.T) {
	r := New()
	r.Counter("z_total").Add(1)
	r.Counter("a_total").Add(2)
	r.Gauge("m").Set(3)
	r.Histogram("h_seconds", []float64{1}).Observe(0.5)
	snap := r.Snapshot()
	if snap.Counters[0].Name != "a_total" || snap.Counters[1].Name != "z_total" {
		t.Fatalf("counters not sorted: %+v", snap.Counters)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}
	if len(decoded.Counters) != 2 || decoded.Counters[1].Value != 1 {
		t.Fatalf("round-trip mismatch: %+v", decoded.Counters)
	}
}

func TestSetNowFeedsSpansAndEvents(t *testing.T) {
	r := New()
	var now time.Duration
	r.SetNow(func() time.Duration { return now })
	sp := r.Tracer().Start("resolve", "ip")
	now = 3 * time.Second
	sp.Finish("commit")
	recs := r.Tracer().Completed()
	if len(recs) != 1 || recs[0].Duration() != 3*time.Second {
		t.Fatalf("span duration = %+v", recs)
	}
	r.Events().Log(SevInfo, "c", "m")
	if evs := r.Events().Events(); len(evs) != 1 || evs[0].At != 3*time.Second {
		t.Fatalf("event timestamp = %+v", evs)
	}
}
