package core

import (
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/labnet"
	"repro/internal/schemes"
)

// guardLAN deploys a Guard on the workbench with the gateway seeded.
func guardLAN(opts ...Option) (*labnet.LAN, *Guard) {
	l := labnet.Default()
	opts = append(opts, WithSeedBinding(l.Gateway().IP(), l.Gateway().MAC()))
	g := New(l.Sched, l.Monitor, opts...)
	l.Switch.AddTap(g.Tap())
	return l, g
}

func TestDetectsAndConfirmsMITM(t *testing.T) {
	l, g := guardLAN()
	gw := l.Gateway()
	l.Attacker.PoisonPeriodically(time.Second, l.Victim().MAC(), l.Victim().IP(), gw.MAC(), gw.IP())
	l.Sched.At(10*time.Second, func() { l.Attacker.StopPoisoning(); l.Sched.Stop() })
	_ = l.Run(time.Minute)

	inc, ok := g.IncidentFor(gw.IP())
	if !ok {
		t.Fatal("no incident for the poisoned gateway IP")
	}
	if !inc.Confirmed {
		t.Fatalf("incident not confirmed by active verification: %+v", inc)
	}
	if inc.Suspect != l.Attacker.MAC() {
		t.Fatalf("suspect = %v", inc.Suspect)
	}
	if g.ConfirmedCount() < 1 {
		t.Fatal("ConfirmedCount")
	}
}

func TestIncidentAggregationDampsAlertFlood(t *testing.T) {
	l, g := guardLAN()
	gw := l.Gateway()
	// 30 seconds of 1 Hz re-poisoning: one incident, not thirty pages.
	l.Attacker.PoisonPeriodically(time.Second, l.Victim().MAC(), l.Victim().IP(), gw.MAC(), gw.IP())
	l.Sched.At(30*time.Second, func() { l.Attacker.StopPoisoning(); l.Sched.Stop() })
	_ = l.Run(time.Minute)

	incidents := g.Incidents()
	var gwIncidents int
	for _, inc := range incidents {
		if inc.IP == gw.IP() {
			gwIncidents++
			if inc.Alerts < 2 {
				t.Fatalf("incident should fold multiple alerts: %+v", inc)
			}
			if inc.LastAt <= inc.FirstAt {
				t.Fatalf("incident time range: %+v", inc)
			}
		}
	}
	if gwIncidents != 1 {
		t.Fatalf("gateway incidents = %d, want 1 aggregated", gwIncidents)
	}
}

func TestPassiveOnlyAblationMissesVerification(t *testing.T) {
	l, g := guardLAN(WithoutActive())
	gw := l.Gateway()
	l.Attacker.Poison(attack.VariantGratuitous, gw.IP(), l.Attacker.MAC(),
		l.Victim().MAC(), l.Victim().IP())
	if err := l.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	inc, ok := g.IncidentFor(gw.IP())
	if !ok {
		t.Fatal("passive layer missed the flip-flop")
	}
	if inc.Confirmed {
		t.Fatal("nothing should be confirmed without the active layer")
	}
}

func TestActiveOnlyAblationStillConfirms(t *testing.T) {
	l, g := guardLAN(WithoutPassive())
	gw := l.Gateway()
	l.Attacker.Poison(attack.VariantUnsolicitedReply, gw.IP(), l.Attacker.MAC(),
		l.Victim().MAC(), l.Victim().IP())
	if err := l.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	inc, ok := g.IncidentFor(gw.IP())
	if !ok || !inc.Confirmed {
		t.Fatalf("active-only guard failed: %+v ok=%v", inc, ok)
	}
}

func TestProtectHostPreventsCommit(t *testing.T) {
	l, g := guardLAN()
	g.ProtectHost(l.Victim())
	gw := l.Gateway()
	l.Attacker.Poison(attack.VariantUnsolicitedReply, gw.IP(), l.Attacker.MAC(),
		l.Victim().MAC(), l.Victim().IP())
	if err := l.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if mac, ok := l.Victim().Cache().Lookup(gw.IP()); ok && mac == l.Attacker.MAC() {
		t.Fatal("protected host was poisoned")
	}
	inc, ok := g.IncidentFor(gw.IP())
	if !ok || !inc.Confirmed {
		t.Fatal("prevention should still produce a confirmed incident")
	}
}

func TestCleanLANRaisesNothing(t *testing.T) {
	l, g := guardLAN()
	l.SeedMutualCaches()
	if err := l.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if n := len(g.Incidents()); n != 0 {
		t.Fatalf("clean LAN produced %d incidents: %v", n, g.Sink().Alerts())
	}
}

func TestAlertHandlerFires(t *testing.T) {
	var live []schemes.Alert
	l, _ := guardLAN(WithAlertHandler(func(a schemes.Alert) { live = append(live, a) }))
	l.Attacker.Poison(attack.VariantGratuitous, l.Gateway().IP(), l.Attacker.MAC(),
		l.Victim().MAC(), l.Victim().IP())
	if err := l.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(live) == 0 {
		t.Fatal("handler never fired")
	}
}

func TestIncidentsAreCopies(t *testing.T) {
	l, g := guardLAN()
	l.Attacker.Poison(attack.VariantGratuitous, l.Gateway().IP(), l.Attacker.MAC(),
		l.Victim().MAC(), l.Victim().IP())
	if err := l.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	incs := g.Incidents()
	if len(incs) == 0 {
		t.Fatal("no incidents")
	}
	incs[0].Kinds[schemes.AlertFlood] = 99
	fresh, _ := g.IncidentFor(incs[0].IP)
	if fresh.Kinds[schemes.AlertFlood] == 99 {
		t.Fatal("Incidents aliases internal maps")
	}
}
