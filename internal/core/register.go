package core

import (
	"fmt"
	"time"

	"repro/internal/schemes/registry"
)

// GuardParams configures the hybrid guard deployment.
type GuardParams struct {
	// Passive runs the demoted arpwatch corroboration layer.
	Passive bool `json:"passive"`
	// Active runs the probe verifier (requires a monitor appliance).
	Active bool `json:"active"`
	// SeedGateway pre-loads the gateway's true binding.
	SeedGateway bool `json:"seedGateway"`
	// SeedVictim pre-loads the conventional victim's binding.
	SeedVictim bool `json:"seedVictim"`
	// ProtectVictim additionally installs quarantine middleware on the
	// victim.
	ProtectVictim bool `json:"protectVictim"`
	// HoldDownSeconds tunes passive alert suppression; 0 keeps the guard
	// default (20s).
	HoldDownSeconds float64 `json:"holdDownSeconds"`
	// VerifyWindowSeconds tunes the probe deadline; 0 keeps the guard
	// default (0.5s).
	VerifyWindowSeconds float64 `json:"verifyWindowSeconds"`
}

// The hybrid guard lives in internal/core rather than under
// internal/schemes/, so its factory registers here; the registry's Package
// field stays empty and the completeness test accounts for it by name.
func init() {
	registry.Register(registry.Factory{
		Name:        registry.NameHybridGuard,
		Description: "hybrid passive-monitor + active-verifier pipeline with incident correlation",
		Deployment:  registry.Deployment{Vantage: registry.VantageMirrorPort, Cost: registry.CostPerLAN},
		DefaultParams: func() any {
			return &GuardParams{Passive: true, Active: true, SeedGateway: true}
		},
		// Handle is the *Guard; incidents surface through the instance.
		Deploy: func(env *registry.Env, params any) (*registry.Instance, error) {
			p := params.(*GuardParams)
			if p.Active && env.Monitor == nil {
				return nil, fmt.Errorf("hybrid-guard's active layer needs a monitor appliance")
			}
			opts := []Option{WithAlertHandler(env.Sink.Report)}
			if !p.Passive {
				opts = append(opts, WithoutPassive())
			}
			if !p.Active {
				opts = append(opts, WithoutActive())
			}
			if p.HoldDownSeconds > 0 {
				opts = append(opts, WithHoldDown(time.Duration(p.HoldDownSeconds*float64(time.Second))))
			}
			if p.VerifyWindowSeconds > 0 {
				opts = append(opts, WithVerifyWindow(time.Duration(p.VerifyWindowSeconds*float64(time.Second))))
			}
			if p.SeedGateway {
				gw := env.Gateway()
				opts = append(opts, WithSeedBinding(gw.IP(), gw.MAC()))
			}
			if p.SeedVictim {
				v := env.Victim()
				opts = append(opts, WithSeedBinding(v.IP(), v.MAC()))
			}
			if env.Telemetry != nil {
				opts = append(opts, WithTelemetry(env.Telemetry))
			}
			g := New(env.Sched, env.Monitor, opts...)
			env.AddTap(registry.NameHybridGuard, g.Tap())
			if p.ProtectVictim {
				g.ProtectHost(env.Victim())
			}
			return &registry.Instance{
				Handle: g,
				IncidentsFn: func() []registry.Incident {
					incs := g.ActionableIncidents()
					out := make([]registry.Incident, len(incs))
					for i, inc := range incs {
						out[i] = registry.Incident{IP: inc.IP, Suspect: inc.Suspect, Confirmed: inc.Confirmed}
					}
					return out
				},
			}, nil
		},
	})
}
