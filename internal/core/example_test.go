package core_test

import (
	"fmt"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/labnet"
)

// ExampleGuard shows the three-call deployment: build a LAN, tap it with a
// Guard, read incidents.
func ExampleGuard() {
	lan := labnet.Default()
	gateway := lan.Gateway()

	guard := core.New(lan.Sched, lan.Monitor,
		core.WithSeedBinding(gateway.IP(), gateway.MAC()))
	lan.Switch.AddTap(guard.Tap())

	// An attacker claims the gateway's address.
	lan.Attacker.Poison(attack.VariantGratuitous,
		gateway.IP(), lan.Attacker.MAC(), lan.Victim().MAC(), lan.Victim().IP())
	if err := lan.Run(5 * time.Second); err != nil {
		fmt.Println("run:", err)
		return
	}

	inc, ok := guard.IncidentFor(gateway.IP())
	fmt.Printf("incident found: %v\n", ok)
	fmt.Printf("confirmed by probing: %v\n", inc.Confirmed)
	fmt.Printf("suspect is the attacker: %v\n", inc.Suspect == lan.Attacker.MAC())
	// Output:
	// incident found: true
	// confirmed by probing: true
	// suspect is the attacker: true
}

// ExampleGuard_ProtectHost adds inline prevention on a host you control:
// the forged binding is quarantined, contradicted, and never committed.
func ExampleGuard_ProtectHost() {
	lan := labnet.Default()
	gateway, victim := lan.Gateway(), lan.Victim()

	guard := core.New(lan.Sched, lan.Monitor,
		core.WithSeedBinding(gateway.IP(), gateway.MAC()))
	lan.Switch.AddTap(guard.Tap())
	guard.ProtectHost(victim)

	lan.Attacker.Poison(attack.VariantUnsolicitedReply,
		gateway.IP(), lan.Attacker.MAC(), victim.MAC(), victim.IP())
	if err := lan.Run(5 * time.Second); err != nil {
		fmt.Println("run:", err)
		return
	}

	mac, ok := victim.Cache().Lookup(gateway.IP())
	fmt.Printf("victim poisoned: %v\n", ok && mac == lan.Attacker.MAC())
	// Output:
	// victim poisoned: false
}
