package core

import (
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestGuardTelemetryAttribution(t *testing.T) {
	reg := telemetry.New()
	l, g := guardLAN(WithTelemetry(reg))
	l.Sched.Instrument(reg)
	gw := l.Gateway()
	g.ProtectHost(l.Victim())

	l.Attacker.PoisonPeriodically(time.Second, l.Victim().MAC(), l.Victim().IP(), gw.MAC(), gw.IP())
	l.Sched.At(10*time.Second, func() { l.Attacker.StopPoisoning(); l.Sched.Stop() })
	_ = l.Run(time.Minute)

	if got := reg.Counter("guard_incidents_total", telemetry.L("state", "opened")).Value(); got == 0 {
		t.Fatal("no incidents opened")
	}
	if got := reg.Counter("guard_incidents_total", telemetry.L("state", "confirmed")).Value(); got == 0 {
		t.Fatal("incident confirmation not counted")
	}

	// Component attribution: both the demoted passive layer and the active
	// verifier contributed evidence.
	snap := reg.Snapshot()
	folded := make(map[string]uint64)
	probes := uint64(0)
	for _, c := range snap.Counters {
		switch c.Name {
		case "guard_alerts_folded_total":
			folded[c.Labels["component"]] += c.Value
		case "scheme_probes_sent_total":
			probes += c.Value
		}
	}
	if folded["arpwatch"] == 0 {
		t.Fatalf("passive layer contributed nothing: %v", folded)
	}
	if folded["active-probe"] == 0 {
		t.Fatalf("active layer contributed nothing: %v", folded)
	}
	if probes == 0 {
		t.Fatal("verifier sent no probes")
	}

	// Confirmation shows up in the event log too.
	var confirmed bool
	for _, ev := range reg.Events().Events() {
		if ev.Component == "guard" && ev.Message == "incident confirmed" {
			confirmed = true
		}
	}
	if !confirmed {
		t.Fatal("no 'incident confirmed' event logged")
	}
}

func TestGuardConfirmedCountedOnce(t *testing.T) {
	reg := telemetry.New()
	l, g := guardLAN(WithTelemetry(reg))
	gw := l.Gateway()
	// Long re-poisoning window: many verify-failed alerts fold into one
	// incident, but the confirmed transition must count exactly once.
	l.Attacker.PoisonPeriodically(time.Second, l.Victim().MAC(), l.Victim().IP(), gw.MAC(), gw.IP())
	l.Sched.At(20*time.Second, func() { l.Attacker.StopPoisoning(); l.Sched.Stop() })
	_ = l.Run(time.Minute)

	inc, ok := g.IncidentFor(gw.IP())
	if !ok || !inc.Confirmed {
		t.Fatalf("incident = %+v ok=%v", inc, ok)
	}
	// One transition per confirmed incident, no matter how many
	// verify-failed alerts folded into each.
	want := uint64(g.ConfirmedCount())
	got := reg.Counter("guard_incidents_total", telemetry.L("state", "confirmed")).Value()
	if got != want {
		t.Fatalf("confirmed transitions = %d, want %d (one per confirmed incident)", got, want)
	}
	if inc.Alerts < 2 {
		t.Fatalf("expected repeated alerts to fold: %+v", inc)
	}
}

func TestGuardWithoutTelemetryUnchanged(t *testing.T) {
	l, g := guardLAN()
	gw := l.Gateway()
	g.ProtectHost(l.Victim())
	l.Attacker.PoisonPeriodically(time.Second, l.Victim().MAC(), l.Victim().IP(), gw.MAC(), gw.IP())
	l.Sched.At(5*time.Second, func() { l.Attacker.StopPoisoning(); l.Sched.Stop() })
	_ = l.Run(time.Minute)
	if _, ok := g.IncidentFor(gw.IP()); !ok {
		t.Fatal("guard stopped working without telemetry")
	}
}
