// Package core provides Guard, the composable hybrid defense pipeline the
// paper's comparative analysis motivates: no single scheme dominates, so a
// practical deployment layers a zero-cost passive monitor (coverage), an
// active verifier (precision under churn), and optional per-host
// quarantine middleware (prevention on hosts you control) behind one alert
// stream with incident aggregation.
//
// Guard is the framework's primary public API: point its Tap at a switch,
// optionally protect individual hosts, and read incidents.
package core

import (
	"time"

	"repro/internal/ethaddr"
	"repro/internal/netsim"
	"repro/internal/schemes"
	"repro/internal/schemes/activeprobe"
	"repro/internal/schemes/arpwatch"
	"repro/internal/schemes/middleware"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/telemetry"
)

// Option configures a Guard.
type Option func(*config)

type config struct {
	passive      bool
	active       bool
	holdDown     time.Duration
	verifyWindow time.Duration
	onAlert      func(schemes.Alert)
	seedBindings map[ethaddr.IPv4]ethaddr.MAC
	telemetry    *telemetry.Registry
}

// WithoutPassive disables the arpwatch-style monitor (ablation).
func WithoutPassive() Option {
	return func(c *config) { c.passive = false }
}

// WithoutActive disables the probe verifier (ablation).
func WithoutActive() Option {
	return func(c *config) { c.active = false }
}

// WithHoldDown sets the passive monitor's repeat-alert damping.
func WithHoldDown(d time.Duration) Option {
	return func(c *config) { c.holdDown = d }
}

// WithVerifyWindow sets the active verifier's probe window.
func WithVerifyWindow(d time.Duration) Option {
	return func(c *config) { c.verifyWindow = d }
}

// WithAlertHandler installs a live alert callback.
func WithAlertHandler(fn func(schemes.Alert)) Option {
	return func(c *config) { c.onAlert = fn }
}

// WithSeedBinding preloads a known-good binding into both detectors,
// closing the passive monitor's cold-start blind spot for critical
// stations (gateways, servers).
func WithSeedBinding(ip ethaddr.IPv4, mac ethaddr.MAC) Option {
	return func(c *config) { c.seedBindings[ip] = mac }
}

// WithTelemetry attaches the whole pipeline to a registry: the alert sink,
// both detector layers, any protected hosts, and the guard's own incident
// bookkeeping (opens, confirmations, per-component alert attribution).
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(c *config) { c.telemetry = reg }
}

// Incident aggregates every alert about one IP into a single actionable
// record, deduplicating the flood a periodic poisoner would otherwise
// produce.
type Incident struct {
	IP        ethaddr.IPv4
	FirstAt   time.Duration
	LastAt    time.Duration
	Alerts    int
	Kinds     map[schemes.AlertKind]int
	Suspect   ethaddr.MAC // most recently asserted offending MAC
	Confirmed bool        // an active verification corroborated it
}

// Guard is one deployed hybrid pipeline.
type Guard struct {
	sched     *sim.Scheduler
	sink      *schemes.Sink
	watcher   *arpwatch.Watcher
	prober    *activeprobe.Prober
	incidents map[ethaddr.IPv4]*Incident
	protected []*middleware.Guard

	// Telemetry handles; nil (no-op) unless WithTelemetry was given.
	reg         *telemetry.Registry
	events      *telemetry.EventLog
	mIncOpened  *telemetry.Counter
	mIncConfirm *telemetry.Counter
	mFolded     map[string]*telemetry.Counter // component → folded-alert counter
}

// New assembles a Guard. appliance is the dedicated station the active
// verifier probes from; it may be nil when the active layer is disabled.
func New(s *sim.Scheduler, appliance *stack.Host, opts ...Option) *Guard {
	cfg := config{
		passive:      true,
		active:       true,
		holdDown:     20 * time.Second,
		verifyWindow: 500 * time.Millisecond,
		seedBindings: make(map[ethaddr.IPv4]ethaddr.MAC),
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	g := &Guard{
		sched:     s,
		sink:      schemes.NewSink(),
		incidents: make(map[ethaddr.IPv4]*Incident),
	}
	if cfg.telemetry != nil {
		g.reg = cfg.telemetry
		g.events = g.reg.Events()
		g.mIncOpened = g.reg.Counter("guard_incidents_total", telemetry.L("state", "opened"))
		g.mIncConfirm = g.reg.Counter("guard_incidents_total", telemetry.L("state", "confirmed"))
		g.mFolded = make(map[string]*telemetry.Counter)
		g.sink.Instrument(g.reg)
	}
	g.sink.OnAlert(func(a schemes.Alert) {
		g.fold(a)
		if cfg.onAlert != nil {
			cfg.onAlert(a)
		}
	})
	activeOn := cfg.active && appliance != nil
	if cfg.passive {
		// With the verifier present, the passive monitor is demoted to a
		// corroboration source: its flip-flops fold into incidents but do
		// not page — only verified failures do. That is the hybrid's
		// point: arpwatch coverage without arpwatch's churn pages.
		passiveSink := g.sink
		if activeOn {
			passiveSink = schemes.NewSink()
			passiveSink.OnAlert(g.fold)
			if cfg.telemetry != nil {
				// The demoted monitor's alerts bypass g.sink, so attribute
				// them on its own instrumented sink.
				passiveSink.Instrument(cfg.telemetry)
			}
		}
		g.watcher = arpwatch.New(s, passiveSink, arpwatch.WithHoldDown(cfg.holdDown))
	}
	if activeOn {
		g.prober = activeprobe.New(s, g.sink, appliance,
			activeprobe.WithVerifyWindow(cfg.verifyWindow))
		if cfg.telemetry != nil {
			g.prober.Instrument(cfg.telemetry)
		}
	}
	for ip, mac := range cfg.seedBindings {
		if g.watcher != nil {
			g.watcher.Seed(ip, mac)
		}
		if g.prober != nil {
			g.prober.Seed(ip, mac)
		}
	}
	return g
}

// Tap returns the function to install on the monitored switch (or hub).
func (g *Guard) Tap() netsim.TapFunc {
	return func(ev netsim.TapEvent) {
		if g.watcher != nil {
			g.watcher.Observe(ev)
		}
		if g.prober != nil {
			g.prober.Observe(ev)
		}
	}
}

// ProtectHost installs quarantine middleware on a host, adding inline
// prevention for stations under our administrative control.
func (g *Guard) ProtectHost(h *stack.Host) {
	mw := middleware.New(g.sched, g.sink, h)
	if g.reg != nil {
		mw.Instrument(g.reg)
	}
	g.protected = append(g.protected, mw)
}

// Sink exposes the raw alert stream.
func (g *Guard) Sink() *schemes.Sink { return g.sink }

// fold merges one alert into its incident.
func (g *Guard) fold(a schemes.Alert) {
	inc, ok := g.incidents[a.IP]
	if !ok {
		inc = &Incident{
			IP:      a.IP,
			FirstAt: a.At,
			Kinds:   make(map[schemes.AlertKind]int),
		}
		g.incidents[a.IP] = inc
		g.mIncOpened.Inc()
		if g.events != nil {
			g.events.Log(telemetry.SevInfo, "guard", "incident opened",
				"ip", a.IP.String(), "scheme", a.Scheme)
		}
	}
	inc.LastAt = a.At
	inc.Alerts++
	inc.Kinds[a.Kind]++
	if g.mFolded != nil {
		g.foldedCounter(a.Scheme).Inc()
	}
	if !a.NewMAC.IsZero() {
		inc.Suspect = a.NewMAC
	}
	if a.Kind == schemes.AlertVerifyFailed || a.Kind == schemes.AlertConflict {
		if !inc.Confirmed {
			inc.Confirmed = true
			g.mIncConfirm.Inc()
			if g.events != nil {
				g.events.Log(telemetry.SevWarn, "guard", "incident confirmed",
					"ip", a.IP.String(), "suspect", inc.Suspect.String(), "scheme", a.Scheme)
			}
		}
	}
}

// foldedCounter returns (lazily creating) the per-component attribution
// counter: which layer of the pipeline contributed evidence to incidents.
func (g *Guard) foldedCounter(component string) *telemetry.Counter {
	c, ok := g.mFolded[component]
	if !ok {
		c = g.reg.Counter("guard_alerts_folded_total", telemetry.L("component", component))
		g.mFolded[component] = c
	}
	return c
}

// Incidents returns a copy of the aggregated incidents.
func (g *Guard) Incidents() []Incident {
	out := make([]Incident, 0, len(g.incidents))
	for _, inc := range g.incidents {
		out = append(out, copyIncident(inc))
	}
	return out
}

// IncidentFor returns the incident for ip, if any.
func (g *Guard) IncidentFor(ip ethaddr.IPv4) (Incident, bool) {
	inc, ok := g.incidents[ip]
	if !ok {
		return Incident{}, false
	}
	return copyIncident(inc), true
}

// copyIncident deep-copies an incident record.
func copyIncident(inc *Incident) Incident {
	c := *inc
	c.Kinds = make(map[schemes.AlertKind]int, len(inc.Kinds))
	for k, v := range inc.Kinds {
		c.Kinds[k] = v
	}
	return c
}

// ConfirmedCount returns the number of incidents corroborated by active
// verification.
func (g *Guard) ConfirmedCount() int {
	n := 0
	for _, inc := range g.incidents {
		if inc.Confirmed {
			n++
		}
	}
	return n
}

// ActionableIncidents returns the incidents an operator would page on:
// with the verifier deployed, only confirmed incidents; without it, every
// incident (there is nothing to corroborate against).
func (g *Guard) ActionableIncidents() []Incident {
	var out []Incident
	for _, inc := range g.incidents {
		if g.prober != nil && !inc.Confirmed {
			continue
		}
		out = append(out, copyIncident(inc))
	}
	return out
}
