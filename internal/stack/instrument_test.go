package stack

import (
	"testing"
	"time"

	"repro/internal/arppkt"
	"repro/internal/ethaddr"
	"repro/internal/telemetry"
)

func TestHostInstrumentResolutionMetrics(t *testing.T) {
	l := newTestLAN(1)
	reg := telemetry.New()
	l.s.Instrument(reg)
	a := l.addHost("a", "02:42:ac:00:00:01", "10.0.0.1")
	b := l.addHost("b", "02:42:ac:00:00:02", "10.0.0.2")
	a.Instrument(reg)
	_ = b

	a.Resolve(b.IP(), nil)
	if err := l.s.Run(); err != nil {
		t.Fatal(err)
	}

	host := telemetry.L("host", "a")
	if got := reg.Counter("stack_resolutions_total", host, telemetry.L("outcome", "ok")).Value(); got != 1 {
		t.Fatalf("ok resolutions = %d", got)
	}
	h := reg.Histogram("stack_resolution_latency_seconds", nil, host)
	if h.Count() != 1 {
		t.Fatalf("latency samples = %d", h.Count())
	}
	if h.Sum() <= 0 || h.Sum() > 1 {
		t.Fatalf("latency sum = %v, want a small positive virtual latency", h.Sum())
	}

	// The resolve span completed with a commit outcome and both phases.
	snap := reg.Snapshot()
	var found bool
	for _, sp := range snap.Spans {
		if sp.Name == "resolve" && sp.Outcome == "commit" && sp.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no resolve/commit span summary: %+v", snap.Spans)
	}
	recs := reg.Tracer().Completed()
	if len(recs) != 1 || len(recs[0].Phases) != 2 {
		t.Fatalf("span records = %+v", recs)
	}
	if recs[0].Phases[0].Name != "request" || recs[0].Phases[1].Name != "reply" {
		t.Fatalf("phases = %+v", recs[0].Phases)
	}
}

func TestHostInstrumentFailureAndRetries(t *testing.T) {
	l := newTestLAN(1)
	reg := telemetry.New()
	l.s.Instrument(reg)
	a := l.addHost("a", "02:42:ac:00:00:01", "10.0.0.1",
		WithResolveRetry(3, 100*time.Millisecond))
	a.Instrument(reg)

	a.Resolve(ethaddr.MustParseIPv4("10.0.0.99"), nil)
	if err := l.s.Run(); err != nil {
		t.Fatal(err)
	}

	host := telemetry.L("host", "a")
	if got := reg.Counter("stack_resolutions_total", host, telemetry.L("outcome", "fail")).Value(); got != 1 {
		t.Fatalf("failed resolutions = %d", got)
	}
	if got := reg.Counter("stack_resolve_retries_total", host).Value(); got != 2 {
		t.Fatalf("retries = %d, want 2 (3 tries = initial + 2 retries)", got)
	}
	// The failure produced a span with outcome "fail" and a warn event.
	snap := reg.Snapshot()
	var failSpan bool
	for _, sp := range snap.Spans {
		if sp.Name == "resolve" && sp.Outcome == "fail" {
			failSpan = true
		}
	}
	if !failSpan {
		t.Fatalf("no resolve/fail span: %+v", snap.Spans)
	}
	if snap.Events.Warn == 0 {
		t.Fatal("resolution failure should log a warn event")
	}
}

func TestCacheInstrumentCounters(t *testing.T) {
	l := newTestLAN(1)
	reg := telemetry.New()
	l.s.Instrument(reg)
	a := l.addHost("a", "02:42:ac:00:00:01", "10.0.0.1",
		WithPolicy(PolicyNoOverwrite))
	b := l.addHost("b", "02:42:ac:00:00:02", "10.0.0.2")
	a.Instrument(reg)

	a.Resolve(b.IP(), nil)
	if err := l.s.Run(); err != nil {
		t.Fatal(err)
	}
	host := telemetry.L("host", "a")
	if got := reg.Counter("stack_cache_created_total", host).Value(); got != 1 {
		t.Fatalf("created = %d", got)
	}
	if _, ok := a.Cache().Lookup(b.IP()); !ok {
		t.Fatal("entry missing after resolution")
	}
	if got := reg.Counter("stack_cache_hits_total", host).Value(); got == 0 {
		t.Fatal("lookup of a live entry should count as a hit")
	}

	// An overwrite attempt under the no-overwrite policy is a policy reject.
	pkt := arppkt.NewReply(
		ethaddr.MustParseMAC("02:42:ac:00:00:66"), b.IP(), a.MAC(), a.IP())
	a.ProcessARP(pkt)
	if got := reg.Counter("stack_cache_policy_rejects_total", host).Value(); got != 1 {
		t.Fatalf("policy rejects = %d", got)
	}
}
