package stack

import (
	"testing"
	"time"

	"repro/internal/arppkt"
	"repro/internal/ethaddr"
	"repro/internal/sim"
)

var (
	macA = ethaddr.MustParseMAC("02:42:ac:00:00:01")
	macB = ethaddr.MustParseMAC("02:42:ac:00:00:02")
	macE = ethaddr.MustParseMAC("02:42:ac:00:00:66") // attacker
	ipA  = ethaddr.MustParseIPv4("192.168.88.10")
	ipB  = ethaddr.MustParseIPv4("192.168.88.20")
)

func reply(mac ethaddr.MAC, ip ethaddr.IPv4) *arppkt.Packet {
	return arppkt.NewReply(mac, ip, macA, ipA)
}

func request(mac ethaddr.MAC, ip ethaddr.IPv4) *arppkt.Packet {
	return arppkt.NewRequest(mac, ip, ipA)
}

func TestCachePolicyMatrix(t *testing.T) {
	tests := []struct {
		name   string
		policy Policy
		apply  func(c *Cache)
		wantOK bool // binding ipB→macE present afterwards
	}{
		{
			name:   "naive accepts unsolicited reply",
			policy: PolicyNaive,
			apply:  func(c *Cache) { c.Update(reply(macE, ipB), false) },
			wantOK: true,
		},
		{
			name:   "naive learns from request",
			policy: PolicyNaive,
			apply:  func(c *Cache) { c.Update(request(macE, ipB), false) },
			wantOK: true,
		},
		{
			name:   "reply-only ignores request learning",
			policy: PolicyReplyOnly,
			apply:  func(c *Cache) { c.Update(request(macE, ipB), false) },
			wantOK: false,
		},
		{
			name:   "reply-only accepts unsolicited reply",
			policy: PolicyReplyOnly,
			apply:  func(c *Cache) { c.Update(reply(macE, ipB), false) },
			wantOK: true,
		},
		{
			name:   "solicited-only rejects unsolicited reply",
			policy: PolicySolicitedOnly,
			apply:  func(c *Cache) { c.Update(reply(macE, ipB), false) },
			wantOK: false,
		},
		{
			name:   "solicited-only accepts solicited reply",
			policy: PolicySolicitedOnly,
			apply:  func(c *Cache) { c.Update(reply(macE, ipB), true) },
			wantOK: true,
		},
		{
			name:   "solicited-only rejects gratuitous",
			policy: PolicySolicitedOnly,
			apply:  func(c *Cache) { c.Update(arppkt.NewGratuitousRequest(macE, ipB), false) },
			wantOK: false,
		},
		{
			name:   "no-overwrite accepts first binding",
			policy: PolicyNoOverwrite,
			apply:  func(c *Cache) { c.Update(reply(macE, ipB), false) },
			wantOK: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := sim.NewScheduler(1)
			c := NewCache(s, tt.policy, time.Minute)
			tt.apply(c)
			mac, ok := c.Lookup(ipB)
			if ok != tt.wantOK {
				t.Fatalf("binding present = %v, want %v", ok, tt.wantOK)
			}
			if ok && mac != macE {
				t.Fatalf("mac = %v", mac)
			}
		})
	}
}

func TestNoOverwriteProtectsLiveEntry(t *testing.T) {
	s := sim.NewScheduler(1)
	c := NewCache(s, PolicyNoOverwrite, time.Minute)
	if got := c.Update(reply(macB, ipB), true); got != EventCreated {
		t.Fatalf("first update = %v", got)
	}
	if got := c.Update(reply(macE, ipB), false); got != EventRejected {
		t.Fatalf("poison attempt = %v, want rejected", got)
	}
	mac, _ := c.Lookup(ipB)
	if mac != macB {
		t.Fatalf("binding overwritten: %v", mac)
	}
	// Same-MAC refresh is still allowed.
	if got := c.Update(reply(macB, ipB), false); got != EventRefreshed {
		t.Fatalf("refresh = %v", got)
	}
}

func TestNoOverwriteAllowsRebindAfterExpiry(t *testing.T) {
	s := sim.NewScheduler(1)
	c := NewCache(s, PolicyNoOverwrite, 10*time.Second)
	c.Update(reply(macB, ipB), true)
	s.After(11*time.Second, func() {
		if got := c.Update(reply(macE, ipB), false); got != EventCreated {
			t.Errorf("post-expiry update = %v, want created", got)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNaiveOverwrite(t *testing.T) {
	s := sim.NewScheduler(1)
	c := NewCache(s, PolicyNaive, time.Minute)
	c.Update(reply(macB, ipB), true)
	if got := c.Update(reply(macE, ipB), false); got != EventChanged {
		t.Fatalf("poison = %v, want changed", got)
	}
	mac, _ := c.Lookup(ipB)
	if mac != macE {
		t.Fatal("naive policy should have been poisoned")
	}
}

func TestStaticEntryIsImmutable(t *testing.T) {
	s := sim.NewScheduler(1)
	c := NewCache(s, PolicyNaive, time.Minute)
	c.SetStatic(ipB, macB)
	if got := c.Update(reply(macE, ipB), true); got != EventRejected {
		t.Fatalf("static poison = %v, want rejected", got)
	}
	mac, ok := c.Lookup(ipB)
	if !ok || mac != macB {
		t.Fatal("static entry lost")
	}
	// Static entries survive expiry and Flush.
	s.After(time.Hour, func() {
		if _, ok := c.Lookup(ipB); !ok {
			t.Error("static entry expired")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	c.Flush()
	if _, ok := c.Lookup(ipB); !ok {
		t.Fatal("Flush removed static entry")
	}
}

func TestExpiryMakesLookupMiss(t *testing.T) {
	s := sim.NewScheduler(1)
	c := NewCache(s, PolicyNaive, 5*time.Second)
	c.Update(reply(macB, ipB), true)
	s.After(6*time.Second, func() {
		if _, ok := c.Lookup(ipB); ok {
			t.Error("expired entry still returned")
		}
		if c.Len() != 0 {
			t.Errorf("Len = %d", c.Len())
		}
		// Raw Get still exposes it.
		if _, ok := c.Get(ipB); !ok {
			t.Error("Get should expose expired entries")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEventsEmitted(t *testing.T) {
	s := sim.NewScheduler(1)
	c := NewCache(s, PolicyNaive, time.Minute)
	var events []Event
	c.OnEvent(func(e Event) { events = append(events, e) })
	c.Update(reply(macB, ipB), true)  // created
	c.Update(reply(macB, ipB), false) // refreshed
	c.Update(reply(macE, ipB), false) // changed
	if len(events) != 3 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Kind != EventCreated || events[1].Kind != EventRefreshed || events[2].Kind != EventChanged {
		t.Fatalf("kinds = %v %v %v", events[0].Kind, events[1].Kind, events[2].Kind)
	}
	if events[2].OldMAC != macB || events[2].NewMAC != macE {
		t.Fatalf("changed event MACs: %+v", events[2])
	}
	if !events[0].Solicited || events[1].Solicited {
		t.Fatal("solicited flags wrong")
	}
}

func TestProbeNeverBinds(t *testing.T) {
	s := sim.NewScheduler(1)
	c := NewCache(s, PolicyNaive, time.Minute)
	probe := arppkt.NewProbe(macE, ipB)
	if got := c.Update(probe, false); got != EventRejected {
		t.Fatalf("probe update = %v", got)
	}
	if c.Len() != 0 {
		t.Fatal("probe created an entry")
	}
}

func TestNonUnicastMACNeverBinds(t *testing.T) {
	s := sim.NewScheduler(1)
	c := NewCache(s, PolicyNaive, time.Minute)
	p := arppkt.NewReply(ethaddr.BroadcastMAC, ipB, macA, ipA)
	if got := c.Update(p, true); got != EventRejected {
		t.Fatalf("broadcast-MAC update = %v", got)
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	s := sim.NewScheduler(1)
	c := NewCache(s, PolicyNaive, time.Minute)
	c.Update(reply(macB, ipB), true)
	snap := c.Snapshot()
	snap[ipB] = Entry{MAC: macE}
	mac, _ := c.Lookup(ipB)
	if mac != macB {
		t.Fatal("snapshot aliases cache")
	}
}

func TestDelete(t *testing.T) {
	s := sim.NewScheduler(1)
	c := NewCache(s, PolicyNaive, time.Minute)
	c.Update(reply(macB, ipB), true)
	c.Delete(ipB)
	if _, ok := c.Lookup(ipB); ok {
		t.Fatal("entry survived Delete")
	}
}

func TestGratuitousReplyRespectsOverwriteOnReply(t *testing.T) {
	s := sim.NewScheduler(1)
	c := NewCache(s, PolicyNoOverwrite, time.Minute)
	c.Update(reply(macB, ipB), true)
	g := arppkt.NewGratuitousReply(macE, ipB)
	if got := c.Update(g, false); got != EventRejected {
		t.Fatalf("gratuitous reply overwrite = %v, want rejected", got)
	}
}
