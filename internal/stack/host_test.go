package stack

import (
	"testing"
	"time"

	"repro/internal/arppkt"
	"repro/internal/ethaddr"
	"repro/internal/frame"
	"repro/internal/ipv4pkt"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// lan is a small test harness: a switch with hosts attached.
type lan struct {
	s  *sim.Scheduler
	sw *netsim.Switch
}

func newTestLAN(seed int64) *lan {
	s := sim.NewScheduler(seed)
	return &lan{s: s, sw: netsim.NewSwitch(s)}
}

func (l *lan) addHost(name string, mac, ip string, opts ...Option) *Host {
	nic := netsim.NewNIC(l.s, ethaddr.MustParseMAC(mac))
	l.sw.AddPort().Attach(nic)
	return NewHost(l.s, name, nic, ethaddr.MustParseIPv4(ip), opts...)
}

func TestResolveViaARP(t *testing.T) {
	l := newTestLAN(1)
	a := l.addHost("a", "02:42:ac:00:00:01", "10.0.0.1")
	b := l.addHost("b", "02:42:ac:00:00:02", "10.0.0.2")

	var gotMAC ethaddr.MAC
	var gotOK bool
	a.Resolve(b.IP(), func(mac ethaddr.MAC, ok bool) { gotMAC, gotOK = mac, ok })
	if err := l.s.Run(); err != nil {
		t.Fatal(err)
	}
	if !gotOK || gotMAC != b.MAC() {
		t.Fatalf("resolve = %v %v", gotMAC, gotOK)
	}
	// Both sides now know each other: b learned a from the request (naive
	// policy), a learned b from the reply.
	if mac, ok := a.Cache().Lookup(b.IP()); !ok || mac != b.MAC() {
		t.Fatal("a's cache missing b")
	}
	if mac, ok := b.Cache().Lookup(a.IP()); !ok || mac != a.MAC() {
		t.Fatal("b's cache missing a")
	}
	if a.Stats().ResolveOK != 1 {
		t.Fatalf("ResolveOK = %d", a.Stats().ResolveOK)
	}
}

func TestResolveFailureAfterRetries(t *testing.T) {
	l := newTestLAN(1)
	a := l.addHost("a", "02:42:ac:00:00:01", "10.0.0.1",
		WithResolveRetry(3, 100*time.Millisecond))

	var failed bool
	a.Resolve(ethaddr.MustParseIPv4("10.0.0.99"), func(_ ethaddr.MAC, ok bool) { failed = !ok })
	a.SendUDP(ethaddr.MustParseIPv4("10.0.0.99"), 1, 2, []byte("queued"))
	if err := l.s.Run(); err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatal("resolution should fail for a nonexistent host")
	}
	st := a.Stats()
	if st.ResolveFail != 1 || st.QueuedDropped != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ARPTx != 3 {
		t.Fatalf("ARPTx = %d, want 3 (initial + 2 retries)", st.ARPTx)
	}
}

func TestQueuedPacketsFlushOnResolve(t *testing.T) {
	l := newTestLAN(1)
	a := l.addHost("a", "02:42:ac:00:00:01", "10.0.0.1")
	b := l.addHost("b", "02:42:ac:00:00:02", "10.0.0.2")

	var got [][]byte
	b.HandleUDP(9, func(src ethaddr.IPv4, srcPort uint16, payload []byte) {
		got = append(got, payload)
	})
	a.SendUDP(b.IP(), 9, 9, []byte("one"))
	a.SendUDP(b.IP(), 9, 9, []byte("two"))
	if err := l.s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || string(got[0]) != "one" || string(got[1]) != "two" {
		t.Fatalf("delivered = %q", got)
	}
	// Only one resolution cycle should have run.
	if a.Stats().ResolveOK != 1 {
		t.Fatalf("ResolveOK = %d", a.Stats().ResolveOK)
	}
}

func TestPingEcho(t *testing.T) {
	l := newTestLAN(1)
	a := l.addHost("a", "02:42:ac:00:00:01", "10.0.0.1")
	b := l.addHost("b", "02:42:ac:00:00:02", "10.0.0.2")

	var replies int
	var replierMAC ethaddr.MAC
	a.Ping(b.IP(), 42, 1, func(seq uint16, from ethaddr.IPv4, fromMAC ethaddr.MAC) {
		replies++
		replierMAC = fromMAC
	})
	if err := l.s.Run(); err != nil {
		t.Fatal(err)
	}
	if replies != 1 {
		t.Fatalf("replies = %d", replies)
	}
	if replierMAC != b.MAC() {
		t.Fatalf("replier = %v", replierMAC)
	}
	if b.Stats().EchoSent != 0 && b.Stats().EchoRecv != 0 {
		t.Fatalf("b stats: %+v", b.Stats())
	}
}

func TestEchoResponderDisabled(t *testing.T) {
	l := newTestLAN(1)
	a := l.addHost("a", "02:42:ac:00:00:01", "10.0.0.1")
	b := l.addHost("b", "02:42:ac:00:00:02", "10.0.0.2", WithEchoResponder(false))

	var replies int
	a.Ping(b.IP(), 42, 1, func(uint16, ethaddr.IPv4, ethaddr.MAC) { replies++ })
	if err := l.s.Run(); err != nil {
		t.Fatal(err)
	}
	if replies != 0 {
		t.Fatal("silent host answered an echo")
	}
}

func TestGratuitousAnnounceSeedsPeerCaches(t *testing.T) {
	l := newTestLAN(1)
	a := l.addHost("a", "02:42:ac:00:00:01", "10.0.0.1")
	b := l.addHost("b", "02:42:ac:00:00:02", "10.0.0.2", WithAnnounce())
	b.Start()
	if err := l.s.Run(); err != nil {
		t.Fatal(err)
	}
	if mac, ok := a.Cache().Lookup(b.IP()); !ok || mac != b.MAC() {
		t.Fatal("announcement did not seed a's cache")
	}
}

func TestUnsolicitedReplyPoisonsNaiveHost(t *testing.T) {
	l := newTestLAN(1)
	victim := l.addHost("victim", "02:42:ac:00:00:01", "10.0.0.1")
	gw := l.addHost("gw", "02:42:ac:00:00:02", "10.0.0.254")
	attacker := l.addHost("attacker", "02:42:ac:00:00:66", "10.0.0.66")

	// Forged reply: "gateway is at attacker's MAC".
	forged := arppkt.NewReply(attacker.MAC(), gw.IP(), victim.MAC(), victim.IP())
	attacker.NIC().Send(&frame.Frame{
		Dst: victim.MAC(), Src: attacker.MAC(),
		Type: frame.TypeARP, Payload: forged.Encode(),
	})
	if err := l.s.Run(); err != nil {
		t.Fatal(err)
	}
	mac, ok := victim.Cache().Lookup(gw.IP())
	if !ok || mac != attacker.MAC() {
		t.Fatalf("naive victim not poisoned: %v %v", mac, ok)
	}
}

func TestUnsolicitedReplyBouncesOffSolicitedOnlyHost(t *testing.T) {
	l := newTestLAN(1)
	victim := l.addHost("victim", "02:42:ac:00:00:01", "10.0.0.1",
		WithPolicy(PolicySolicitedOnly))
	attacker := l.addHost("attacker", "02:42:ac:00:00:66", "10.0.0.66")

	forged := arppkt.NewReply(attacker.MAC(), ethaddr.MustParseIPv4("10.0.0.254"), victim.MAC(), victim.IP())
	attacker.NIC().Send(&frame.Frame{
		Dst: victim.MAC(), Src: attacker.MAC(),
		Type: frame.TypeARP, Payload: forged.Encode(),
	})
	if err := l.s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := victim.Cache().Lookup(ethaddr.MustParseIPv4("10.0.0.254")); ok {
		t.Fatal("solicited-only host accepted an unsolicited reply")
	}
}

func TestARPHookCanVeto(t *testing.T) {
	l := newTestLAN(1)
	victim := l.addHost("victim", "02:42:ac:00:00:01", "10.0.0.1")
	attacker := l.addHost("attacker", "02:42:ac:00:00:66", "10.0.0.66")

	vetoed := 0
	victim.SetARPHook(func(p *arppkt.Packet, f *frame.Frame) bool {
		vetoed++
		return false // quarantine everything
	})
	forged := arppkt.NewReply(attacker.MAC(), ethaddr.MustParseIPv4("10.0.0.254"), victim.MAC(), victim.IP())
	attacker.NIC().Send(&frame.Frame{
		Dst: victim.MAC(), Src: attacker.MAC(),
		Type: frame.TypeARP, Payload: forged.Encode(),
	})
	if err := l.s.Run(); err != nil {
		t.Fatal(err)
	}
	if vetoed != 1 {
		t.Fatalf("hook calls = %d", vetoed)
	}
	if victim.Cache().Len() != 0 {
		t.Fatal("vetoed packet reached the cache")
	}
}

func TestProbeIsAnsweredButDoesNotBind(t *testing.T) {
	l := newTestLAN(1)
	a := l.addHost("a", "02:42:ac:00:00:01", "10.0.0.1")
	prober := l.addHost("p", "02:42:ac:00:00:02", "10.0.0.2")

	var answered bool
	prober.OnARP(func(p *arppkt.Packet, f *frame.Frame) {
		if p.Op == arppkt.OpReply && p.SenderIP == a.IP() {
			answered = true
		}
	})
	probe := arppkt.NewProbe(prober.MAC(), a.IP())
	prober.NIC().Send(&frame.Frame{
		Dst: ethaddr.BroadcastMAC, Src: prober.MAC(),
		Type: frame.TypeARP, Payload: probe.Encode(),
	})
	if err := l.s.Run(); err != nil {
		t.Fatal(err)
	}
	if !answered {
		t.Fatal("probe went unanswered")
	}
	// The probe's zero sender IP must not have created a binding on a.
	if a.Cache().Len() != 0 {
		t.Fatal("probe polluted the cache")
	}
}

func TestReplyRaceFirstAnswerWins(t *testing.T) {
	// Two stations answer the same request; the first reply completes
	// resolution, the second arrives unsolicited.
	l := newTestLAN(1)
	victim := l.addHost("victim", "02:42:ac:00:00:01", "10.0.0.1",
		WithPolicy(PolicySolicitedOnly))
	target := ethaddr.MustParseIPv4("10.0.0.2")
	genuine := l.addHost("genuine", "02:42:ac:00:00:02", "10.0.0.2")
	attacker := l.addHost("attacker", "02:42:ac:00:00:66", "10.0.0.66")
	_ = genuine

	// Attacker watches for the victim's request and replies instantly; the
	// genuine host also replies. With equal link latency the attacker's
	// reply (sent on observing the same broadcast) ties with the genuine
	// one; give the attacker a head start by pre-arming.
	attacker.NIC().SetPromiscuous(true)
	attacker.OnARP(func(p *arppkt.Packet, f *frame.Frame) {
		if p.Op == arppkt.OpRequest && p.TargetIP == target && p.SenderIP == victim.IP() {
			forged := arppkt.NewReply(attacker.MAC(), target, victim.MAC(), victim.IP())
			attacker.NIC().Send(&frame.Frame{
				Dst: victim.MAC(), Src: attacker.MAC(),
				Type: frame.TypeARP, Payload: forged.Encode(),
			})
		}
	})

	victim.Resolve(target, nil)
	if err := l.s.Run(); err != nil {
		t.Fatal(err)
	}
	mac, ok := victim.Cache().Lookup(target)
	if !ok {
		t.Fatal("resolution failed entirely")
	}
	// Equal latencies: genuine reply and forged reply are scheduled at the
	// same instant; FIFO order favours whoever's frame entered the switch
	// first. The genuine host processes the request directly, the attacker
	// had to observe the flooded copy — both one switch-hop away, so the
	// genuine reply wins the tie. The race experiment sweeps this delay.
	if mac != genuine.MAC() {
		t.Logf("attacker won the race (also a valid outcome): %v", mac)
	}
	// Either way the entry must be one of the two repliers.
	if mac != genuine.MAC() && mac != attacker.MAC() {
		t.Fatalf("cache holds neither replier: %v", mac)
	}
}

func TestAddressDefenseReassertsBinding(t *testing.T) {
	l := newTestLAN(1)
	victim := l.addHost("victim", "02:42:ac:00:00:01", "10.0.0.1")
	gw := l.addHost("gw", "02:42:ac:00:00:02", "10.0.0.254",
		WithAddressDefense(time.Second))
	attacker := l.addHost("attacker", "02:42:ac:00:00:66", "10.0.0.66")

	// One-shot broadcast poisoning of the gateway's address.
	forged := arppkt.NewGratuitousRequest(attacker.MAC(), gw.IP())
	attacker.NIC().Send(&frame.Frame{
		Dst: ethaddr.BroadcastMAC, Src: attacker.MAC(),
		Type: frame.TypeARP, Payload: forged.Encode(),
	})
	if err := l.s.Run(); err != nil {
		t.Fatal(err)
	}
	// The gateway saw the conflict and re-announced; the victim's cache is
	// repaired (naive policy: last writer wins).
	if gw.Stats().Defenses != 1 {
		t.Fatalf("defenses = %d", gw.Stats().Defenses)
	}
	mac, ok := victim.Cache().Lookup(gw.IP())
	if !ok || mac != gw.MAC() {
		t.Fatalf("defense did not repair the victim: %v %v", mac, ok)
	}
}

func TestAddressDefenseRateLimited(t *testing.T) {
	l := newTestLAN(1)
	gw := l.addHost("gw", "02:42:ac:00:00:02", "10.0.0.254",
		WithAddressDefense(10*time.Second))
	attacker := l.addHost("attacker", "02:42:ac:00:00:66", "10.0.0.66")

	forged := arppkt.NewGratuitousRequest(attacker.MAC(), gw.IP())
	for i := 0; i < 20; i++ {
		i := i
		l.s.At(time.Duration(i)*500*time.Millisecond, func() {
			attacker.NIC().Send(&frame.Frame{
				Dst: ethaddr.BroadcastMAC, Src: attacker.MAC(),
				Type: frame.TypeARP, Payload: forged.Encode(),
			})
		})
	}
	if err := l.s.Run(); err != nil {
		t.Fatal(err)
	}
	st := gw.Stats()
	if st.ConflictsSeen != 20 {
		t.Fatalf("conflicts = %d", st.ConflictsSeen)
	}
	// 10s of attack at 2 Hz with a 10s damper: one immediate defense plus
	// at most one more.
	if st.Defenses > 2 {
		t.Fatalf("defenses = %d, want rate-limited", st.Defenses)
	}
}

func TestDefenseOffByDefault(t *testing.T) {
	l := newTestLAN(1)
	gw := l.addHost("gw", "02:42:ac:00:00:02", "10.0.0.254")
	attacker := l.addHost("attacker", "02:42:ac:00:00:66", "10.0.0.66")
	forged := arppkt.NewGratuitousRequest(attacker.MAC(), gw.IP())
	attacker.NIC().Send(&frame.Frame{
		Dst: ethaddr.BroadcastMAC, Src: attacker.MAC(),
		Type: frame.TypeARP, Payload: forged.Encode(),
	})
	if err := l.s.Run(); err != nil {
		t.Fatal(err)
	}
	if gw.Stats().Defenses != 0 {
		t.Fatal("defense fired without opt-in")
	}
}

func TestDisableARP(t *testing.T) {
	l := newTestLAN(1)
	a := l.addHost("a", "02:42:ac:00:00:01", "10.0.0.1")
	b := l.addHost("b", "02:42:ac:00:00:02", "10.0.0.2")
	b.DisableARP()
	var failed bool
	a.Resolve(b.IP(), func(_ ethaddr.MAC, ok bool) { failed = !ok })
	if err := l.s.Run(); err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatal("ARP-disabled host answered a plain request")
	}
	if b.Cache().Len() != 0 {
		t.Fatal("ARP-disabled host cached a plain binding")
	}
}

func TestHandleUDPDispatch(t *testing.T) {
	l := newTestLAN(1)
	a := l.addHost("a", "02:42:ac:00:00:01", "10.0.0.1")
	b := l.addHost("b", "02:42:ac:00:00:02", "10.0.0.2")

	var fromIP ethaddr.IPv4
	var fromPort uint16
	b.HandleUDP(67, func(src ethaddr.IPv4, srcPort uint16, payload []byte) {
		fromIP, fromPort = src, srcPort
	})
	a.SendUDP(b.IP(), 68, 67, []byte("x"))
	if err := l.s.Run(); err != nil {
		t.Fatal(err)
	}
	if fromIP != a.IP() || fromPort != 68 {
		t.Fatalf("dispatch = %v %d", fromIP, fromPort)
	}
}

func TestSendUDPToBypassesResolution(t *testing.T) {
	l := newTestLAN(1)
	a := l.addHost("a", "02:42:ac:00:00:01", "10.0.0.1")
	b := l.addHost("b", "02:42:ac:00:00:02", "10.0.0.2")

	got := false
	b.HandleUDP(67, func(ethaddr.IPv4, uint16, []byte) { got = true })
	a.SendUDPTo(b.MAC(), b.IP(), 68, 67, []byte("direct"))
	if err := l.s.Run(); err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("direct datagram lost")
	}
	if a.Stats().ARPTx != 0 {
		t.Fatal("SendUDPTo triggered resolution")
	}
}

func TestIPv4NotForUsIgnored(t *testing.T) {
	l := newTestLAN(1)
	a := l.addHost("a", "02:42:ac:00:00:01", "10.0.0.1")
	b := l.addHost("b", "02:42:ac:00:00:02", "10.0.0.2")
	c := l.addHost("c", "02:42:ac:00:00:03", "10.0.0.3")

	// Frame addressed to b's MAC but IP addressed to c: b must drop it.
	pkt := &ipv4pkt.Packet{TTL: 64, Proto: ipv4pkt.ProtoUDP, Src: a.IP(), Dst: c.IP(),
		Payload: (&ipv4pkt.UDP{SrcPort: 1, DstPort: 2}).Encode()}
	a.NIC().Send(&frame.Frame{Dst: b.MAC(), Src: a.MAC(), Type: frame.TypeIPv4, Payload: pkt.Encode()})
	if err := l.s.Run(); err != nil {
		t.Fatal(err)
	}
	if b.Stats().IPv4Rx != 0 {
		t.Fatal("b accepted an IP packet addressed elsewhere")
	}
}
