package stack

import (
	"testing"
	"time"

	"repro/internal/arppkt"
	"repro/internal/ethaddr"
	"repro/internal/sim"
)

// Allocation gates for the cache hot path (PR 7). Every ARP packet a host
// receives ends in Cache.Update, so both the steady-state refresh and the
// insert of a previously seen key must be allocation-free. (First-ever
// inserts may grow the map; that cost is amortized and not gated.)

func TestCacheRefreshAllocFree(t *testing.T) {
	s := sim.NewScheduler(1)
	c := NewCache(s, PolicyNaive, time.Minute)
	p := arppkt.NewReply(
		ethaddr.MAC{0x02, 0, 0, 0, 0, 1}, ethaddr.MustParseIPv4("10.0.0.1"),
		ethaddr.MAC{0x02, 0, 0, 0, 0, 2}, ethaddr.MustParseIPv4("10.0.0.2"),
	)
	c.Update(p, true)
	allocs := testing.AllocsPerRun(1000, func() {
		if kind := c.Update(p, true); kind != EventRefreshed {
			t.Fatalf("kind = %v, want refresh", kind)
		}
	})
	if allocs != 0 {
		t.Fatalf("cache refresh: %v allocs/op, want 0", allocs)
	}
}

func TestCacheInsertAllocFree(t *testing.T) {
	s := sim.NewScheduler(1)
	c := NewCache(s, PolicyNaive, time.Minute)
	p := arppkt.NewReply(
		ethaddr.MAC{0x02, 0, 0, 0, 0, 1}, ethaddr.MustParseIPv4("10.0.0.1"),
		ethaddr.MAC{0x02, 0, 0, 0, 0, 2}, ethaddr.MustParseIPv4("10.0.0.2"),
	)
	ip, _ := p.Binding()
	c.Update(p, true) // size the map bucket once
	allocs := testing.AllocsPerRun(1000, func() {
		c.Delete(ip)
		if kind := c.Update(p, true); kind != EventCreated {
			t.Fatalf("kind = %v, want create", kind)
		}
	})
	if allocs != 0 {
		t.Fatalf("cache insert: %v allocs/op, want 0", allocs)
	}
}
