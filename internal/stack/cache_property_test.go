package stack

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/arppkt"
	"repro/internal/ethaddr"
	"repro/internal/sim"
)

// cacheOp is one randomized action against a cache.
type cacheOp struct {
	kind      uint8 // 0..3: update-reply, update-request, update-gratuitous, advance-clock
	ipIdx     uint8
	macIdx    uint8
	solicited bool
	advance   uint16 // ms
}

// Generate implements quick.Generator for op sequences.
func (cacheOp) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(cacheOp{
		kind:      uint8(r.Intn(4)),
		ipIdx:     uint8(r.Intn(8)),
		macIdx:    uint8(r.Intn(8)),
		solicited: r.Intn(2) == 0,
		advance:   uint16(r.Intn(5000)),
	})
}

var _ quick.Generator = cacheOp{}

// poolIP and poolMAC give ops a small address space so collisions (and
// hence overwrite paths) are exercised heavily.
func poolIP(i uint8) ethaddr.IPv4 { return ethaddr.IPv4{10, 0, 0, i + 1} }
func poolMAC(i uint8) ethaddr.MAC {
	return ethaddr.MAC{0x02, 0x42, 0xac, 0, 0, i + 1}
}

// applyOp drives one op against the cache, returning virtual time control
// through the scheduler.
func applyOp(s *sim.Scheduler, c *Cache, op cacheOp) {
	switch op.kind {
	case 0:
		p := arppkt.NewReply(poolMAC(op.macIdx), poolIP(op.ipIdx), poolMAC(7), poolIP(7))
		c.Update(p, op.solicited)
	case 1:
		p := arppkt.NewRequest(poolMAC(op.macIdx), poolIP(op.ipIdx), poolIP(7))
		c.Update(p, false)
	case 2:
		p := arppkt.NewGratuitousRequest(poolMAC(op.macIdx), poolIP(op.ipIdx))
		c.Update(p, false)
	case 3:
		fired := false
		s.After(time.Duration(op.advance)*time.Millisecond, func() { fired = true })
		_ = s.Run()
		_ = fired
	}
}

// TestPropertyStaticEntriesAreInvariant: no sequence of dynamic updates may
// ever move a static binding, under any policy.
func TestPropertyStaticEntriesAreInvariant(t *testing.T) {
	policies := []Policy{PolicyNaive, PolicyReplyOnly, PolicyNoOverwrite, PolicySolicitedOnly}
	f := func(ops []cacheOp, policyIdx uint8) bool {
		s := sim.NewScheduler(1)
		c := NewCache(s, policies[int(policyIdx)%len(policies)], time.Second)
		pinnedIP := poolIP(3)
		pinnedMAC := ethaddr.MustParseMAC("02:42:ac:00:00:99")
		c.SetStatic(pinnedIP, pinnedMAC)
		for _, op := range ops {
			applyOp(s, c, op)
		}
		mac, ok := c.Lookup(pinnedIP)
		return ok && mac == pinnedMAC
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLookupReflectsAnAcceptedUpdate: any live binding returned by
// Lookup must carry a MAC that some prior accepted update installed for
// that IP (never an invented or crossed value).
func TestPropertyLookupReflectsAnAcceptedUpdate(t *testing.T) {
	f := func(ops []cacheOp) bool {
		s := sim.NewScheduler(1)
		c := NewCache(s, PolicyNaive, time.Second)
		accepted := make(map[ethaddr.IPv4]map[ethaddr.MAC]bool)
		c.OnEvent(func(e Event) {
			if e.Kind == EventRejected {
				return
			}
			if accepted[e.IP] == nil {
				accepted[e.IP] = make(map[ethaddr.MAC]bool)
			}
			accepted[e.IP][e.NewMAC] = true
		})
		for _, op := range ops {
			applyOp(s, c, op)
		}
		for ip, e := range c.Snapshot() {
			if e.Static {
				continue
			}
			if !accepted[ip][e.MAC] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertySolicitedOnlyNeverLearnsUnsolicited: under the patched-kernel
// policy, no unsolicited traffic of any shape may create a binding.
func TestPropertySolicitedOnlyNeverLearnsUnsolicited(t *testing.T) {
	f := func(ops []cacheOp) bool {
		s := sim.NewScheduler(1)
		c := NewCache(s, PolicySolicitedOnly, time.Second)
		for _, op := range ops {
			op.solicited = false // strip every solicited flag
			applyOp(s, c, op)
		}
		return c.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyNoOverwriteFirstWriterWinsUntilExpiry: under the no-overwrite
// policy, whenever two updates for the same IP land without the clock
// passing the TTL in between, the earlier accepted binding survives.
func TestPropertyNoOverwriteFirstWriterWinsUntilExpiry(t *testing.T) {
	f := func(macs []uint8) bool {
		if len(macs) == 0 {
			return true
		}
		s := sim.NewScheduler(1)
		c := NewCache(s, PolicyNoOverwrite, time.Hour) // nothing expires
		ip := poolIP(0)
		first := poolMAC(macs[0] % 8)
		for _, m := range macs {
			c.Update(arppkt.NewReply(poolMAC(m%8), ip, poolMAC(7), poolIP(7)), false)
		}
		mac, ok := c.Lookup(ip)
		return ok && mac == first
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLenMatchesSnapshot: Len and Snapshot agree under arbitrary
// histories (expiry included).
func TestPropertyLenMatchesSnapshot(t *testing.T) {
	f := func(ops []cacheOp) bool {
		s := sim.NewScheduler(1)
		c := NewCache(s, PolicyNaive, 2*time.Second)
		for _, op := range ops {
			applyOp(s, c, op)
		}
		return c.Len() == len(c.Snapshot())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
