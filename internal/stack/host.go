package stack

import (
	"time"

	"repro/internal/arppkt"
	"repro/internal/ethaddr"
	"repro/internal/frame"
	"repro/internal/ipv4pkt"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Stats counts per-host protocol activity.
type Stats struct {
	ARPTx, ARPRx       uint64
	IPv4Tx, IPv4Rx     uint64
	ResolveOK          uint64
	ResolveFail        uint64
	QueuedDropped      uint64 // IP packets dropped after resolution failure
	EchoSent, EchoRecv uint64
	ConflictsSeen      uint64 // foreign assertions of our own address
	Defenses           uint64 // gratuitous reassertions sent in response
}

// pending tracks one in-flight resolution. It doubles as the retry timer's
// sim.Task (host and ip identify the resolution), so arming a retry stores
// the pending itself instead of allocating a closure per attempt.
type pending struct {
	host      *Host
	ip        ethaddr.IPv4
	queue     []queuedPacket
	retries   int
	timer     sim.Timer
	waiters   []func(ethaddr.MAC, bool)
	startedAt time.Duration
	span      *telemetry.Span // nil (no-op) when the host is uninstrumented
}

// Run fires one resolution retry; implements sim.Task for the retry timer.
func (pd *pending) Run() {
	h := pd.host
	pd.retries++
	if pd.retries >= h.resolveRetries {
		h.failResolution(pd.ip, pd)
		return
	}
	h.mRetries.Inc()
	h.sendRequest(pd.ip, pd)
}

type queuedPacket struct {
	proto   ipv4pkt.Protocol
	payload []byte
}

// ARPHook can observe or veto an inbound ARP packet before the cache sees
// it. Returning false suppresses normal processing (the packet is dropped as
// far as the cache and responder are concerned). The middleware scheme uses
// this to quarantine-and-verify.
type ARPHook func(p *arppkt.Packet, f *frame.Frame) bool

// Option configures a Host.
type Option func(*Host)

// WithPolicy selects the ARP cache acceptance policy (default PolicyNaive,
// the permissive baseline the attacks target).
func WithPolicy(p Policy) Option {
	return func(h *Host) { h.policy = p }
}

// WithCacheTTL sets the ARP entry lifetime (default 60s).
func WithCacheTTL(d time.Duration) Option {
	return func(h *Host) { h.cacheTTL = d }
}

// WithCacheCapacity pre-sizes the ARP cache for the expected number of
// peers. Purely an allocation hint: a full-mesh LAN otherwise grows each
// host's cache through repeated slot-array doublings.
func WithCacheCapacity(n int) Option {
	return func(h *Host) { h.cacheCap = n }
}

// WithResolveRetry sets the request retry count and spacing (default 3
// retries, 1s apart, per common stacks).
func WithResolveRetry(retries int, interval time.Duration) Option {
	return func(h *Host) {
		h.resolveRetries = retries
		h.resolveInterval = interval
	}
}

// WithAnnounce makes the host broadcast a gratuitous ARP when started.
func WithAnnounce() Option {
	return func(h *Host) { h.announce = true }
}

// WithEchoResponder controls whether the host answers ICMP echo requests
// (default on; victims of probe-based schemes must answer for the scheme to
// work, which the paper notes as a limitation).
func WithEchoResponder(v bool) Option {
	return func(h *Host) { h.echoResponder = v }
}

// WithAddressDefense makes the host fight back when a foreign station
// claims its address: it re-broadcasts its own gratuitous announcement
// (rate-limited to one per interval), the RFC 5227 "defend" behaviour and
// the essence of the anticap-style host mitigations. Defense turns a
// one-shot poisoning into a reassertion war the attacker must sustain.
func WithAddressDefense(minInterval time.Duration) Option {
	return func(h *Host) {
		h.defend = true
		h.defendInterval = minInterval
	}
}

// Host is a simulated end station: one NIC, an IPv4 identity, an ARP cache,
// and a resolver.
type Host struct {
	name  string
	sched *sim.Scheduler
	nic   *netsim.NIC
	ip    ethaddr.IPv4
	cache *Cache
	arena *arppkt.Arena

	policy          Policy
	cacheTTL        time.Duration
	cacheCap        int
	resolveRetries  int
	resolveInterval time.Duration
	announce        bool
	echoResponder   bool

	pendings       map[ethaddr.IPv4]*pending
	arpHook        ARPHook
	onARP          func(*arppkt.Packet, *frame.Frame) // passive observer
	onIPv4         func(*ipv4pkt.Packet, *frame.Frame)
	udpPorts       map[uint16]func(src ethaddr.IPv4, srcPort uint16, payload []byte)
	onEcho         map[uint16]func(seq uint16, from ethaddr.IPv4, fromMAC ethaddr.MAC)
	extra          map[frame.EtherType]func(*frame.Frame)
	arpDisabled    bool
	defend         bool
	defendInterval time.Duration
	lastDefense    time.Duration
	defendedOnce   bool
	stats          Stats
	started        bool

	// Telemetry handles; nil (no-op) unless Instrument is called.
	tracer       *telemetry.Tracer
	events       *telemetry.EventLog
	mResolveOK   *telemetry.Counter
	mResolveFail *telemetry.Counter
	mRetries     *telemetry.Counter
	mResolveLat  *telemetry.Histogram
	mConflicts   *telemetry.Counter
}

// NewHost creates a host bound to a NIC and address and registers its frame
// handler. Call Start to (optionally) announce.
func NewHost(s *sim.Scheduler, name string, nic *netsim.NIC, ip ethaddr.IPv4, opts ...Option) *Host {
	h := &Host{
		name:            name,
		sched:           s,
		nic:             nic,
		ip:              ip,
		arena:           arppkt.ArenaOf(s),
		policy:          PolicyNaive,
		cacheTTL:        60 * time.Second,
		resolveRetries:  3,
		resolveInterval: time.Second,
		echoResponder:   true,
		pendings:        make(map[ethaddr.IPv4]*pending),
		udpPorts:        make(map[uint16]func(ethaddr.IPv4, uint16, []byte)),
		onEcho:          make(map[uint16]func(uint16, ethaddr.IPv4, ethaddr.MAC)),
		extra:           make(map[frame.EtherType]func(*frame.Frame)),
	}
	for _, opt := range opts {
		opt(h)
	}
	h.cache = newCache(s, h.policy, h.cacheTTL, h.cacheCap)
	nic.SetHandler(h.handleFrame)
	return h
}

// Name returns the host's scenario name.
func (h *Host) Name() string { return h.name }

// IP returns the host's protocol address.
func (h *Host) IP() ethaddr.IPv4 { return h.ip }

// SetIP rebinds the host's protocol address (DHCP assignment).
func (h *Host) SetIP(ip ethaddr.IPv4) { h.ip = ip }

// MAC returns the NIC hardware address.
func (h *Host) MAC() ethaddr.MAC { return h.nic.MAC() }

// NIC exposes the interface, e.g. for promiscuous capture.
func (h *Host) NIC() *netsim.NIC { return h.nic }

// Cache exposes the ARP cache for schemes and assertions.
func (h *Host) Cache() *Cache { return h.cache }

// Stats returns a copy of the host counters.
func (h *Host) Stats() Stats { return h.stats }

// Instrument attaches the host stack to a telemetry registry: cache
// hit/miss and mutation counters, resolver retry/outcome counters, the
// resolution-latency histogram, and a "resolve" span per resolution
// lifecycle (request emitted → reply received → cache commit or failure).
// All metrics carry a host label so multi-host runs stay attributable.
func (h *Host) Instrument(reg *telemetry.Registry) {
	label := telemetry.L("host", h.name)
	h.cache.Instrument(reg, label)
	h.tracer = reg.Tracer()
	h.events = reg.Events()
	h.mResolveOK = reg.Counter("stack_resolutions_total", label, telemetry.L("outcome", "ok"))
	h.mResolveFail = reg.Counter("stack_resolutions_total", label, telemetry.L("outcome", "fail"))
	h.mRetries = reg.Counter("stack_resolve_retries_total", label)
	h.mResolveLat = reg.Histogram("stack_resolution_latency_seconds", nil, label)
	h.mConflicts = reg.Counter("stack_address_conflicts_total", label)
}

// SetARPHook installs the inbound ARP interceptor (middleware scheme).
func (h *Host) SetARPHook(fn ARPHook) { h.arpHook = fn }

// OnARP installs a passive observer of inbound ARP packets.
func (h *Host) OnARP(fn func(*arppkt.Packet, *frame.Frame)) { h.onARP = fn }

// OnIPv4 installs a fallback observer for inbound IPv4 packets addressed to
// this host (after protocol-specific dispatch).
func (h *Host) OnIPv4(fn func(*ipv4pkt.Packet, *frame.Frame)) { h.onIPv4 = fn }

// HandleUDP registers a datagram handler for a local port.
func (h *Host) HandleUDP(port uint16, fn func(src ethaddr.IPv4, srcPort uint16, payload []byte)) {
	h.udpPorts[port] = fn
}

// Start performs boot-time behaviour (gratuitous announcement if enabled).
func (h *Host) Start() {
	if h.started {
		return
	}
	h.started = true
	if h.announce {
		h.SendGratuitous()
	}
}

// Restart models the host coming back from a power cycle: the ARP cache is
// wiped (kernel caches do not survive a reboot), every in-flight resolution
// is abandoned, and the host re-announces its binding. Fault plans use this
// as the host-churn hook; bring the NIC down and up around it to model the
// offline window itself.
func (h *Host) Restart() {
	for ip, pd := range h.pendings {
		pd.timer.Stop()
		pd.span.Finish("abandoned")
		delete(h.pendings, ip)
	}
	h.cache.Flush()
	h.events.Warnf("stack", "%s: restarted (cache wiped)", h.name)
	h.SendGratuitous()
}

// SendGratuitous broadcasts a gratuitous ARP request announcing this host's
// current binding.
func (h *Host) SendGratuitous() {
	p := arppkt.NewGratuitousRequest(h.MAC(), h.ip)
	h.sendARP(p, ethaddr.BroadcastMAC)
}

// sendARP encapsulates and transmits an ARP packet.
func (h *Host) sendARP(p *arppkt.Packet, dst ethaddr.MAC) {
	h.stats.ARPTx++
	h.nic.Send(h.arena.NewFrame(p, h.MAC(), dst))
}

// NewARPFrame wraps p in an ARP frame from this host (src = host MAC)
// using the host's frame arena. Schemes that transmit their own ARP —
// probes, protocol-correct replies — should build frames here rather than
// with arppkt.NewFrame so their traffic shares the recycled backing store.
func (h *Host) NewARPFrame(p *arppkt.Packet, dst ethaddr.MAC) *frame.Frame {
	return h.arena.NewFrame(p, h.MAC(), dst)
}

// Resolve initiates (or joins) resolution of ip and calls done with the
// result when it completes or fails. A cache hit completes synchronously.
func (h *Host) Resolve(ip ethaddr.IPv4, done func(mac ethaddr.MAC, ok bool)) {
	if mac, ok := h.cache.Lookup(ip); ok {
		if done != nil {
			done(mac, true)
		}
		return
	}
	pd := h.ensurePending(ip)
	if done != nil {
		pd.waiters = append(pd.waiters, done)
	}
}

// SendIPv4 transmits an IP payload to dst, resolving first if needed.
// Packets queue behind an in-flight resolution and are dropped if it fails,
// exactly as real stacks behave.
func (h *Host) SendIPv4(dst ethaddr.IPv4, proto ipv4pkt.Protocol, payload []byte) {
	if mac, ok := h.cache.Lookup(dst); ok {
		h.transmitIPv4(mac, dst, proto, payload)
		return
	}
	pd := h.ensurePending(dst)
	pd.queue = append(pd.queue, queuedPacket{proto: proto, payload: payload})
}

// SendUDP transmits a UDP datagram.
func (h *Host) SendUDP(dst ethaddr.IPv4, srcPort, dstPort uint16, payload []byte) {
	u := &ipv4pkt.UDP{SrcPort: srcPort, DstPort: dstPort, Payload: payload}
	h.SendIPv4(dst, ipv4pkt.ProtoUDP, u.Encode())
}

// SendUDPTo transmits a UDP datagram inside a frame addressed to an explicit
// MAC, bypassing resolution (DHCP handshakes need this before addresses
// exist).
func (h *Host) SendUDPTo(dstMAC ethaddr.MAC, dst ethaddr.IPv4, srcPort, dstPort uint16, payload []byte) {
	u := &ipv4pkt.UDP{SrcPort: srcPort, DstPort: dstPort, Payload: payload}
	h.transmitIPv4(dstMAC, dst, ipv4pkt.ProtoUDP, u.Encode())
}

// Ping sends an ICMP echo request and registers a reply callback keyed on
// the identifier. The callback fires for every matching reply (probe schemes
// care whether *more than one* station answers).
func (h *Host) Ping(dst ethaddr.IPv4, ident, seq uint16, reply func(seq uint16, from ethaddr.IPv4, fromMAC ethaddr.MAC)) {
	if reply != nil {
		h.onEcho[ident] = reply
	}
	h.stats.EchoSent++
	echo := &ipv4pkt.ICMPEcho{Type: ipv4pkt.ICMPEchoRequest, IDent: ident, Seq: seq}
	h.SendIPv4(dst, ipv4pkt.ProtoICMP, echo.Encode())
}

// PingVia is Ping with an explicit destination MAC, used by probe schemes to
// test a specific claimed binding rather than whatever the cache holds.
func (h *Host) PingVia(dstMAC ethaddr.MAC, dst ethaddr.IPv4, ident, seq uint16, reply func(seq uint16, from ethaddr.IPv4, fromMAC ethaddr.MAC)) {
	if reply != nil {
		h.onEcho[ident] = reply
	}
	h.stats.EchoSent++
	echo := &ipv4pkt.ICMPEcho{Type: ipv4pkt.ICMPEchoRequest, IDent: ident, Seq: seq}
	h.transmitIPv4(dstMAC, dst, ipv4pkt.ProtoICMP, echo.Encode())
}

// ClearEchoHandler removes a Ping callback registration.
func (h *Host) ClearEchoHandler(ident uint16) { delete(h.onEcho, ident) }

// transmitIPv4 encapsulates and sends an IP packet to a known MAC.
func (h *Host) transmitIPv4(dstMAC ethaddr.MAC, dst ethaddr.IPv4, proto ipv4pkt.Protocol, payload []byte) {
	h.stats.IPv4Tx++
	pkt := &ipv4pkt.Packet{TTL: 64, Proto: proto, Src: h.ip, Dst: dst, Payload: payload}
	h.nic.Send(&frame.Frame{Dst: dstMAC, Src: h.MAC(), Type: frame.TypeIPv4, Payload: pkt.Encode()})
}

// ensurePending starts a resolution cycle for ip if none is running.
func (h *Host) ensurePending(ip ethaddr.IPv4) *pending {
	if pd, ok := h.pendings[ip]; ok {
		return pd
	}
	pd := &pending{host: h, ip: ip, startedAt: h.sched.Now()}
	if h.tracer != nil { // don't render ip for a no-op tracer
		pd.span = h.tracer.Start("resolve", ip.String())
	}
	h.pendings[ip] = pd
	h.sendRequest(ip, pd)
	return pd
}

// sendRequest emits one who-has and arms the retry timer.
func (h *Host) sendRequest(ip ethaddr.IPv4, pd *pending) {
	pd.span.Phase("request")
	h.sendARP(arppkt.NewRequest(h.MAC(), h.ip, ip), ethaddr.BroadcastMAC)
	pd.timer = h.sched.AfterTask(h.resolveInterval, pd)
}

// failResolution drops the queue and notifies waiters of failure.
func (h *Host) failResolution(ip ethaddr.IPv4, pd *pending) {
	delete(h.pendings, ip)
	h.stats.ResolveFail++
	h.stats.QueuedDropped += uint64(len(pd.queue))
	h.mResolveFail.Inc()
	pd.span.Finish("fail")
	if h.events != nil { // don't box Warnf args for a no-op log
		h.events.Warnf("stack", "%s: resolution of %s failed after %d tries, %d queued packets dropped",
			h.name, ip, pd.retries, len(pd.queue))
	}
	for _, w := range pd.waiters {
		w(ethaddr.MAC{}, false)
	}
}

// completeResolution flushes the queue and notifies waiters of success.
func (h *Host) completeResolution(ip ethaddr.IPv4, mac ethaddr.MAC) {
	pd, ok := h.pendings[ip]
	if !ok {
		return
	}
	delete(h.pendings, ip)
	pd.timer.Stop()
	h.stats.ResolveOK++
	h.mResolveOK.Inc()
	h.mResolveLat.ObserveDuration(h.sched.Now() - pd.startedAt)
	pd.span.Phase("reply")
	pd.span.Finish("commit")
	for _, q := range pd.queue {
		h.transmitIPv4(mac, ip, q.proto, q.payload)
	}
	for _, w := range pd.waiters {
		w(mac, true)
	}
}

// handleFrame dispatches inbound frames by EtherType.
func (h *Host) handleFrame(f *frame.Frame) {
	switch f.Type {
	case frame.TypeARP:
		h.handleARP(f)
	case frame.TypeIPv4:
		h.handleIPv4(f)
	default:
		// Protocol-replacing schemes (S-ARP, TARP) register handlers for
		// their own EtherTypes; plain hosts ignore them.
		if fn, ok := h.extra[f.Type]; ok {
			fn(f)
		}
	}
}

// HandleEtherType registers a handler for a non-standard EtherType; the
// secured-ARP schemes attach their wire protocols here.
func (h *Host) HandleEtherType(t frame.EtherType, fn func(*frame.Frame)) {
	h.extra[t] = fn
}

// DisableARP turns off plain ARP processing entirely: no cache updates, no
// responses. Protocol-replacing schemes (S-ARP, TARP) call this when they
// convert a host — a converted station that still believed plain ARP would
// remain poisonable, defeating the replacement.
func (h *Host) DisableARP() { h.arpDisabled = true }

// SendFrame transmits a raw frame from this host's NIC (used by scheme
// shims that speak their own EtherType).
func (h *Host) SendFrame(f *frame.Frame) { h.nic.Send(f) }

// handleARP processes one inbound ARP packet under the cache policy and the
// RFC 826 responder rules.
func (h *Host) handleARP(f *frame.Frame) {
	if h.arpDisabled {
		return
	}
	p, err := arppkt.DecodeFrame(f)
	if err != nil {
		return
	}
	h.stats.ARPRx++
	if h.onARP != nil {
		h.onARP(p, f)
	}
	if h.arpHook != nil && !h.arpHook(p, f) {
		return
	}
	h.ProcessARP(p)
}

// ProcessARP applies cache update and responder logic to a decoded packet.
// It is exported so interceptors (middleware) can re-inject packets they
// have verified.
func (h *Host) ProcessARP(p *arppkt.Packet) {
	solicited := false
	if len(h.pendings) > 0 { // skip the hash when nothing is being resolved
		_, solicited = h.pendings[p.SenderIP]
	}

	// A foreign station asserting our own address is an address conflict
	// (RFC 5227), never a cache update: no stack maps its own IP to
	// another MAC. With defense enabled the host reasserts itself.
	if p.SenderIP == h.ip && p.SenderMAC != h.MAC() {
		h.stats.ConflictsSeen++
		h.mConflicts.Inc()
		if h.events != nil { // don't box Warnf args for a no-op log
			h.events.Warnf("stack", "%s: foreign station %s asserts our address %s",
				h.name, p.SenderMAC, h.ip)
		}
		if h.defend {
			now := h.sched.Now()
			if !h.defendedOnce || now-h.lastDefense >= h.defendInterval {
				h.defendedOnce = true
				h.lastDefense = now
				h.stats.Defenses++
				h.SendGratuitous()
			}
		}
		return
	}

	h.cache.Update(p, solicited)

	// Complete resolution regardless of cache policy outcome: the protocol
	// still answered our question. (Solicited-only policies will have
	// cached it above; others may not, but waiters still learn the MAC.)
	if solicited && p.Op == arppkt.OpReply && p.SenderMAC.IsUnicast() {
		h.completeResolution(p.SenderIP, p.SenderMAC)
	}

	// Answer requests for our address.
	if p.Op == arppkt.OpRequest && p.TargetIP == h.ip && !p.IsGratuitous() && !p.SenderIP.IsZero() {
		h.sendARP(arppkt.NewReply(h.MAC(), h.ip, p.SenderMAC, p.SenderIP), p.SenderMAC)
	}
	// Answer probes for our address (RFC 5227: defend with a reply).
	if p.IsProbe() && p.TargetIP == h.ip {
		h.sendARP(arppkt.NewReply(h.MAC(), h.ip, p.SenderMAC, ethaddr.ZeroIPv4), p.SenderMAC)
	}
}

// handleIPv4 processes one inbound IPv4 packet addressed to this host.
func (h *Host) handleIPv4(f *frame.Frame) {
	pkt, err := ipv4pkt.Decode(f.Payload)
	if err != nil {
		return
	}
	if pkt.Dst != h.ip && !pkt.Dst.IsBroadcast() {
		return // not ours (promiscuous captures use OnIPv4 via NIC handler wrapping)
	}
	h.stats.IPv4Rx++
	switch pkt.Proto {
	case ipv4pkt.ProtoICMP:
		h.handleICMP(pkt, f)
	case ipv4pkt.ProtoUDP:
		h.handleUDP(pkt)
	}
	if h.onIPv4 != nil {
		h.onIPv4(pkt, f)
	}
}

// handleICMP answers echo requests and dispatches echo replies.
func (h *Host) handleICMP(pkt *ipv4pkt.Packet, f *frame.Frame) {
	echo, err := ipv4pkt.DecodeICMPEcho(pkt.Payload)
	if err != nil {
		return
	}
	switch echo.Type {
	case ipv4pkt.ICMPEchoRequest:
		if !h.echoResponder {
			return
		}
		reply := &ipv4pkt.ICMPEcho{Type: ipv4pkt.ICMPEchoReply, IDent: echo.IDent, Seq: echo.Seq, Data: echo.Data}
		// Reply to the frame's source MAC directly: echo must not trigger
		// another resolution (and real stacks use the cached/frame source).
		h.transmitIPv4(f.Src, pkt.Src, ipv4pkt.ProtoICMP, reply.Encode())
	case ipv4pkt.ICMPEchoReply:
		h.stats.EchoRecv++
		if fn, ok := h.onEcho[echo.IDent]; ok {
			fn(echo.Seq, pkt.Src, f.Src)
		}
	}
}

// handleUDP dispatches datagrams to registered port handlers.
func (h *Host) handleUDP(pkt *ipv4pkt.Packet) {
	u, err := ipv4pkt.DecodeUDP(pkt.Payload)
	if err != nil {
		return
	}
	if fn, ok := h.udpPorts[u.DstPort]; ok {
		fn(pkt.Src, u.SrcPort, u.Payload)
	}
}
