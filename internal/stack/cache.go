// Package stack implements the simulated host network stack: an ARP cache
// with configurable acceptance policies (the knob the paper's host-based
// prevention schemes turn), a resolver with request retry and packet
// queueing, gratuitous announcements, and enough IP/ICMP/UDP plumbing to run
// workloads, probes, and DHCP on top.
package stack

import (
	"time"

	"repro/internal/arppkt"
	"repro/internal/ethaddr"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/telemetry/causal"
)

// Policy controls which ARP messages may create, refresh, or replace cache
// entries. Each flag corresponds to one hardening measure discussed in the
// ARP cache poisoning literature; the presets below combine them into the
// OS-like profiles the attack-matrix experiment sweeps.
type Policy struct {
	// LearnFromRequest permits the sender binding of an ARP *request* to
	// create a new cache entry (RFC 826 says to merge it when the host is
	// the target; permissive stacks merge always).
	LearnFromRequest bool

	// AcceptUnsolicitedReply permits a reply with no outstanding request to
	// create or update an entry. This is the classic poisoning vector;
	// "kernel patch" schemes turn it off.
	AcceptUnsolicitedReply bool

	// OverwriteOnReply permits a (policy-accepted) reply to replace a live
	// entry with a different MAC. Anti-poisoning patches in the
	// "no-overwrite until expiry" family turn it off.
	OverwriteOnReply bool

	// OverwriteOnRequest permits a request's sender binding to replace a
	// live entry with a different MAC.
	OverwriteOnRequest bool

	// AcceptGratuitous permits gratuitous announcements (sender==target IP)
	// to create or update entries even when otherwise unsolicited.
	AcceptGratuitous bool
}

// Preset policies modelling the OS families the paper's analysis contrasts.
var (
	// PolicyNaive accepts everything: the fully permissive stack old
	// desktop systems shipped, vulnerable to every poisoning variant.
	PolicyNaive = Policy{
		LearnFromRequest:       true,
		AcceptUnsolicitedReply: true,
		OverwriteOnReply:       true,
		OverwriteOnRequest:     true,
		AcceptGratuitous:       true,
	}

	// PolicyReplyOnly learns only from replies but still accepts
	// unsolicited ones (a common mid-2000s Windows behaviour).
	PolicyReplyOnly = Policy{
		AcceptUnsolicitedReply: true,
		OverwriteOnReply:       true,
		AcceptGratuitous:       true,
	}

	// PolicySolicitedOnly accepts only replies matching an outstanding
	// request — the classic anti-poisoning kernel patch. Requests from
	// peers still answer resolution (the protocol requires that) but never
	// modify the cache.
	PolicySolicitedOnly = Policy{
		OverwriteOnReply: true,
	}

	// PolicyNoOverwrite learns liberally but refuses to replace a live
	// entry until it expires (the anticap/antidote family).
	PolicyNoOverwrite = Policy{
		LearnFromRequest:       true,
		AcceptUnsolicitedReply: true,
		AcceptGratuitous:       true,
	}
)

// EntryState describes the lifecycle of a cache entry.
type EntryState int

// Entry states.
const (
	StateReachable EntryState = iota + 1
	StateStale
)

// Entry is one IP→MAC association in the cache.
type Entry struct {
	MAC     ethaddr.MAC
	State   EntryState
	Static  bool
	Expires time.Duration // virtual instant after which the entry is a miss
}

// EventKind classifies a cache mutation attempt.
type EventKind int

// Cache event kinds. Rejected events are attempts the policy refused —
// host-resident detectors treat some of them as attack evidence.
const (
	EventCreated EventKind = iota + 1
	EventRefreshed
	EventChanged
	EventRejected
)

// String returns the event kind name.
func (k EventKind) String() string {
	switch k {
	case EventCreated:
		return "created"
	case EventRefreshed:
		return "refreshed"
	case EventChanged:
		return "changed"
	case EventRejected:
		return "rejected"
	default:
		return "unknown"
	}
}

// Event describes one attempted cache mutation, successful or not.
type Event struct {
	At        time.Duration
	Kind      EventKind
	IP        ethaddr.IPv4
	OldMAC    ethaddr.MAC // zero when no prior entry
	NewMAC    ethaddr.MAC
	Op        arppkt.Op
	Solicited bool // a matching request was outstanding
}

// Cache is a policy-guarded ARP cache.
type Cache struct {
	sched   *sim.Scheduler
	policy  Policy
	ttl     time.Duration
	entries map[ethaddr.IPv4]Entry
	onEvent func(Event)
	rec     *causal.Recorder // causal tracing; nil (no-op) when disabled

	// Telemetry handles; nil (no-op) unless Instrument is called.
	mHits       *telemetry.Counter
	mMisses     *telemetry.Counter
	mCreated    *telemetry.Counter
	mRefreshed  *telemetry.Counter
	mOverwrites *telemetry.Counter
	mRejects    *telemetry.Counter
}

// NewCache creates a cache. TTL is the entry lifetime (default on hosts is
// typically 60s–20min; experiments set it explicitly).
func NewCache(s *sim.Scheduler, policy Policy, ttl time.Duration) *Cache {
	return &Cache{
		sched:   s,
		policy:  policy,
		ttl:     ttl,
		entries: make(map[ethaddr.IPv4]Entry),
		rec:     causal.Of(s),
	}
}

// OnEvent installs an observer invoked for every mutation attempt. The
// middleware scheme and the evaluation harness both hook here.
func (c *Cache) OnEvent(fn func(Event)) { c.onEvent = fn }

// Instrument attaches the cache to a telemetry registry, counting lookup
// hits/misses and mutation outcomes (creates, refreshes, overwrites,
// policy rejects), labelled by owner so per-host attribution survives
// aggregation. Host.Instrument calls this with the host's name.
func (c *Cache) Instrument(reg *telemetry.Registry, labels ...telemetry.Label) {
	c.mHits = reg.Counter("stack_cache_hits_total", labels...)
	c.mMisses = reg.Counter("stack_cache_misses_total", labels...)
	c.mCreated = reg.Counter("stack_cache_created_total", labels...)
	c.mRefreshed = reg.Counter("stack_cache_refreshed_total", labels...)
	c.mOverwrites = reg.Counter("stack_cache_overwrites_total", labels...)
	c.mRejects = reg.Counter("stack_cache_policy_rejects_total", labels...)
}

// Policy returns the active policy.
func (c *Cache) Policy() Policy { return c.policy }

// Lookup returns the live binding for ip, treating expired entries as
// misses. Static entries never expire.
func (c *Cache) Lookup(ip ethaddr.IPv4) (ethaddr.MAC, bool) {
	e, ok := c.entries[ip]
	if !ok {
		c.mMisses.Inc()
		return ethaddr.MAC{}, false
	}
	if !e.Static && e.Expires <= c.sched.Now() {
		c.mMisses.Inc()
		return ethaddr.MAC{}, false
	}
	c.mHits.Inc()
	return e.MAC, true
}

// Get returns the raw entry (including expired ones) for inspection.
func (c *Cache) Get(ip ethaddr.IPv4) (Entry, bool) {
	e, ok := c.entries[ip]
	return e, ok
}

// Len returns the number of live entries.
func (c *Cache) Len() int {
	now := c.sched.Now()
	n := 0
	for _, e := range c.entries {
		if e.Static || e.Expires > now {
			n++
		}
	}
	return n
}

// Snapshot returns a copy of the live entries, for detectors and reports.
func (c *Cache) Snapshot() map[ethaddr.IPv4]Entry {
	now := c.sched.Now()
	out := make(map[ethaddr.IPv4]Entry, len(c.entries))
	for ip, e := range c.entries {
		if e.Static || e.Expires > now {
			out[ip] = e
		}
	}
	return out
}

// SetStatic installs an immutable binding; dynamic traffic can never alter
// it. This is the static-ARP prevention scheme's primitive.
func (c *Cache) SetStatic(ip ethaddr.IPv4, mac ethaddr.MAC) {
	c.entries[ip] = Entry{MAC: mac, State: StateReachable, Static: true}
}

// Delete removes a binding (administrative action).
func (c *Cache) Delete(ip ethaddr.IPv4) { delete(c.entries, ip) }

// Flush removes all dynamic bindings, keeping static ones.
func (c *Cache) Flush() {
	for ip, e := range c.entries {
		if !e.Static {
			delete(c.entries, ip)
		}
	}
}

// emit reports a mutation attempt to the observer and, when tracing is
// enabled, records it as an instantaneous causal span — the "victim cache
// overwrite" hop of an attack trace.
func (c *Cache) emit(kind EventKind, ip ethaddr.IPv4, oldMAC, newMAC ethaddr.MAC, op arppkt.Op, solicited bool) {
	if c.rec != nil {
		c.rec.Begin("cache", kind.String()).
			Attr("ip", ip.String()).
			Attr("old", oldMAC.String()).
			Attr("new", newMAC.String()).
			End()
	}
	if c.onEvent == nil {
		return
	}
	c.onEvent(Event{
		At:        c.sched.Now(),
		Kind:      kind,
		IP:        ip,
		OldMAC:    oldMAC,
		NewMAC:    newMAC,
		Op:        op,
		Solicited: solicited,
	})
}

// Update applies the sender binding of an ARP packet under the policy.
// solicited reports whether the host had an outstanding request for the
// sender IP. It returns the resulting event kind.
func (c *Cache) Update(p *arppkt.Packet, solicited bool) EventKind {
	ip, mac := p.Binding()
	if ip.IsZero() || !mac.IsUnicast() { // probes and garbage never bind
		return EventRejected
	}

	prior, havePrior := c.entries[ip]
	now := c.sched.Now()
	live := havePrior && (prior.Static || prior.Expires > now)

	// Static entries are immutable, full stop.
	if live && prior.Static {
		if prior.MAC != mac {
			c.mRejects.Inc()
			c.emit(EventRejected, ip, prior.MAC, mac, p.Op, solicited)
		}
		return EventRejected
	}

	admitted := c.admit(p, solicited)
	if !admitted {
		var old ethaddr.MAC
		if live {
			old = prior.MAC
		}
		c.mRejects.Inc()
		c.emit(EventRejected, ip, old, mac, p.Op, solicited)
		return EventRejected
	}

	switch {
	case !live:
		c.entries[ip] = Entry{MAC: mac, State: StateReachable, Expires: now + c.ttl}
		c.mCreated.Inc()
		c.emit(EventCreated, ip, ethaddr.MAC{}, mac, p.Op, solicited)
		return EventCreated
	case prior.MAC == mac:
		prior.Expires = now + c.ttl
		prior.State = StateReachable
		c.entries[ip] = prior
		c.mRefreshed.Inc()
		c.emit(EventRefreshed, ip, prior.MAC, mac, p.Op, solicited)
		return EventRefreshed
	default:
		if !c.mayOverwrite(p) {
			c.mRejects.Inc()
			c.emit(EventRejected, ip, prior.MAC, mac, p.Op, solicited)
			return EventRejected
		}
		old := prior.MAC
		c.entries[ip] = Entry{MAC: mac, State: StateReachable, Expires: now + c.ttl}
		c.mOverwrites.Inc()
		c.emit(EventChanged, ip, old, mac, p.Op, solicited)
		return EventChanged
	}
}

// admit decides whether the packet class may touch the cache at all.
func (c *Cache) admit(p *arppkt.Packet, solicited bool) bool {
	if p.IsGratuitous() {
		return c.policy.AcceptGratuitous
	}
	if p.Op == arppkt.OpRequest {
		return c.policy.LearnFromRequest
	}
	// Reply.
	if solicited {
		return true
	}
	return c.policy.AcceptUnsolicitedReply
}

// mayOverwrite decides whether the packet class may replace a live binding
// that points at a different MAC.
func (c *Cache) mayOverwrite(p *arppkt.Packet) bool {
	if p.Op == arppkt.OpRequest || (p.IsGratuitous() && p.Op != arppkt.OpReply) {
		return c.policy.OverwriteOnRequest
	}
	return c.policy.OverwriteOnReply
}
