// Package stack implements the simulated host network stack: an ARP cache
// with configurable acceptance policies (the knob the paper's host-based
// prevention schemes turn), a resolver with request retry and packet
// queueing, gratuitous announcements, and enough IP/ICMP/UDP plumbing to run
// workloads, probes, and DHCP on top.
package stack

import (
	"time"

	"repro/internal/arppkt"
	"repro/internal/ethaddr"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/telemetry/causal"
)

// Policy controls which ARP messages may create, refresh, or replace cache
// entries. Each flag corresponds to one hardening measure discussed in the
// ARP cache poisoning literature; the presets below combine them into the
// OS-like profiles the attack-matrix experiment sweeps.
type Policy struct {
	// LearnFromRequest permits the sender binding of an ARP *request* to
	// create a new cache entry (RFC 826 says to merge it when the host is
	// the target; permissive stacks merge always).
	LearnFromRequest bool

	// AcceptUnsolicitedReply permits a reply with no outstanding request to
	// create or update an entry. This is the classic poisoning vector;
	// "kernel patch" schemes turn it off.
	AcceptUnsolicitedReply bool

	// OverwriteOnReply permits a (policy-accepted) reply to replace a live
	// entry with a different MAC. Anti-poisoning patches in the
	// "no-overwrite until expiry" family turn it off.
	OverwriteOnReply bool

	// OverwriteOnRequest permits a request's sender binding to replace a
	// live entry with a different MAC.
	OverwriteOnRequest bool

	// AcceptGratuitous permits gratuitous announcements (sender==target IP)
	// to create or update entries even when otherwise unsolicited.
	AcceptGratuitous bool
}

// Preset policies modelling the OS families the paper's analysis contrasts.
var (
	// PolicyNaive accepts everything: the fully permissive stack old
	// desktop systems shipped, vulnerable to every poisoning variant.
	PolicyNaive = Policy{
		LearnFromRequest:       true,
		AcceptUnsolicitedReply: true,
		OverwriteOnReply:       true,
		OverwriteOnRequest:     true,
		AcceptGratuitous:       true,
	}

	// PolicyReplyOnly learns only from replies but still accepts
	// unsolicited ones (a common mid-2000s Windows behaviour).
	PolicyReplyOnly = Policy{
		AcceptUnsolicitedReply: true,
		OverwriteOnReply:       true,
		AcceptGratuitous:       true,
	}

	// PolicySolicitedOnly accepts only replies matching an outstanding
	// request — the classic anti-poisoning kernel patch. Requests from
	// peers still answer resolution (the protocol requires that) but never
	// modify the cache.
	PolicySolicitedOnly = Policy{
		OverwriteOnReply: true,
	}

	// PolicyNoOverwrite learns liberally but refuses to replace a live
	// entry until it expires (the anticap/antidote family).
	PolicyNoOverwrite = Policy{
		LearnFromRequest:       true,
		AcceptUnsolicitedReply: true,
		AcceptGratuitous:       true,
	}
)

// EntryState describes the lifecycle of a cache entry.
type EntryState int

// Entry states.
const (
	StateReachable EntryState = iota + 1
	StateStale
)

// Entry is one IP→MAC association in the cache.
type Entry struct {
	MAC     ethaddr.MAC
	State   EntryState
	Static  bool
	Expires time.Duration // virtual instant after which the entry is a miss
}

// EventKind classifies a cache mutation attempt.
type EventKind int

// Cache event kinds. Rejected events are attempts the policy refused —
// host-resident detectors treat some of them as attack evidence.
const (
	EventCreated EventKind = iota + 1
	EventRefreshed
	EventChanged
	EventRejected
)

// String returns the event kind name.
func (k EventKind) String() string {
	switch k {
	case EventCreated:
		return "created"
	case EventRefreshed:
		return "refreshed"
	case EventChanged:
		return "changed"
	case EventRejected:
		return "rejected"
	default:
		return "unknown"
	}
}

// Event describes one attempted cache mutation, successful or not.
type Event struct {
	At        time.Duration
	Kind      EventKind
	IP        ethaddr.IPv4
	OldMAC    ethaddr.MAC // zero when no prior entry
	NewMAC    ethaddr.MAC
	Op        arppkt.Op
	Solicited bool // a matching request was outstanding
}

// cacheSlot is one IP→Entry binding in the cache's flat table.
type cacheSlot struct {
	ip ethaddr.IPv4
	e  Entry
}

// Cache is a policy-guarded ARP cache. Bindings live in a flat slice
// scanned linearly: a LAN host resolves at most a few dozen peers, and at
// that size a 4-byte linear probe beats map hashing on the Update/Lookup
// hot path while keeping iteration allocation-free. Slot order is an
// implementation artifact and never observable (Snapshot returns a map).
type Cache struct {
	sched   *sim.Scheduler
	policy  Policy
	ttl     time.Duration
	slots   []cacheSlot
	onEvent func(Event)
	rec     *causal.Recorder // causal tracing; nil (no-op) when disabled

	// Telemetry handles; nil (no-op) unless Instrument is called.
	mHits       *telemetry.Counter
	mMisses     *telemetry.Counter
	mCreated    *telemetry.Counter
	mRefreshed  *telemetry.Counter
	mOverwrites *telemetry.Counter
	mRejects    *telemetry.Counter
}

// NewCache creates a cache. TTL is the entry lifetime (default on hosts is
// typically 60s–20min; experiments set it explicitly).
func NewCache(s *sim.Scheduler, policy Policy, ttl time.Duration) *Cache {
	return newCache(s, policy, ttl, 8)
}

// newCache creates a cache with the slot array pre-sized for capacity
// entries (a full-mesh LAN would otherwise grow it through repeated
// doublings; see WithCacheCapacity).
func newCache(s *sim.Scheduler, policy Policy, ttl time.Duration, capacity int) *Cache {
	if capacity < 8 {
		capacity = 8
	}
	return &Cache{
		sched:  s,
		policy: policy,
		ttl:    ttl,
		slots:  make([]cacheSlot, 0, capacity),
		rec:    causal.Of(s),
	}
}

// slot returns the binding for ip, or nil when absent.
func (c *Cache) slot(ip ethaddr.IPv4) *cacheSlot {
	for i := range c.slots {
		if c.slots[i].ip == ip {
			return &c.slots[i]
		}
	}
	return nil
}

// put stores e under ip, reusing the existing slot when present.
func (c *Cache) put(ip ethaddr.IPv4, e Entry) {
	if s := c.slot(ip); s != nil {
		s.e = e
		return
	}
	c.slots = append(c.slots, cacheSlot{ip: ip, e: e})
}

// OnEvent installs an observer invoked for every mutation attempt. The
// middleware scheme and the evaluation harness both hook here.
func (c *Cache) OnEvent(fn func(Event)) { c.onEvent = fn }

// Instrument attaches the cache to a telemetry registry, counting lookup
// hits/misses and mutation outcomes (creates, refreshes, overwrites,
// policy rejects), labelled by owner so per-host attribution survives
// aggregation. Host.Instrument calls this with the host's name.
func (c *Cache) Instrument(reg *telemetry.Registry, labels ...telemetry.Label) {
	c.mHits = reg.Counter("stack_cache_hits_total", labels...)
	c.mMisses = reg.Counter("stack_cache_misses_total", labels...)
	c.mCreated = reg.Counter("stack_cache_created_total", labels...)
	c.mRefreshed = reg.Counter("stack_cache_refreshed_total", labels...)
	c.mOverwrites = reg.Counter("stack_cache_overwrites_total", labels...)
	c.mRejects = reg.Counter("stack_cache_policy_rejects_total", labels...)
}

// Policy returns the active policy.
func (c *Cache) Policy() Policy { return c.policy }

// Lookup returns the live binding for ip, treating expired entries as
// misses. Static entries never expire.
func (c *Cache) Lookup(ip ethaddr.IPv4) (ethaddr.MAC, bool) {
	s := c.slot(ip)
	if s == nil {
		c.mMisses.Inc()
		return ethaddr.MAC{}, false
	}
	if !s.e.Static && s.e.Expires <= c.sched.Now() {
		c.mMisses.Inc()
		return ethaddr.MAC{}, false
	}
	c.mHits.Inc()
	return s.e.MAC, true
}

// Get returns the raw entry (including expired ones) for inspection.
func (c *Cache) Get(ip ethaddr.IPv4) (Entry, bool) {
	if s := c.slot(ip); s != nil {
		return s.e, true
	}
	return Entry{}, false
}

// Len returns the number of live entries.
func (c *Cache) Len() int {
	now := c.sched.Now()
	n := 0
	for i := range c.slots {
		if e := &c.slots[i].e; e.Static || e.Expires > now {
			n++
		}
	}
	return n
}

// Snapshot returns a copy of the live entries, for detectors and reports.
func (c *Cache) Snapshot() map[ethaddr.IPv4]Entry {
	now := c.sched.Now()
	out := make(map[ethaddr.IPv4]Entry, len(c.slots))
	for i := range c.slots {
		s := &c.slots[i]
		if s.e.Static || s.e.Expires > now {
			out[s.ip] = s.e
		}
	}
	return out
}

// SetStatic installs an immutable binding; dynamic traffic can never alter
// it. This is the static-ARP prevention scheme's primitive.
func (c *Cache) SetStatic(ip ethaddr.IPv4, mac ethaddr.MAC) {
	c.put(ip, Entry{MAC: mac, State: StateReachable, Static: true})
}

// Delete removes a binding (administrative action).
func (c *Cache) Delete(ip ethaddr.IPv4) {
	for i := range c.slots {
		if c.slots[i].ip == ip {
			last := len(c.slots) - 1
			c.slots[i] = c.slots[last]
			c.slots = c.slots[:last]
			return
		}
	}
}

// Flush removes all dynamic bindings, keeping static ones.
func (c *Cache) Flush() {
	kept := c.slots[:0]
	for i := range c.slots {
		if c.slots[i].e.Static {
			kept = append(kept, c.slots[i])
		}
	}
	c.slots = kept
}

// emit reports a mutation attempt to the observer and, when tracing is
// enabled, records it as an instantaneous causal span — the "victim cache
// overwrite" hop of an attack trace.
func (c *Cache) emit(kind EventKind, ip ethaddr.IPv4, oldMAC, newMAC ethaddr.MAC, op arppkt.Op, solicited bool) {
	if c.rec != nil {
		c.rec.Begin("cache", kind.String()).
			Attr("ip", ip.String()).
			Attr("old", oldMAC.String()).
			Attr("new", newMAC.String()).
			End()
	}
	if c.onEvent == nil {
		return
	}
	c.onEvent(Event{
		At:        c.sched.Now(),
		Kind:      kind,
		IP:        ip,
		OldMAC:    oldMAC,
		NewMAC:    newMAC,
		Op:        op,
		Solicited: solicited,
	})
}

// Update applies the sender binding of an ARP packet under the policy.
// solicited reports whether the host had an outstanding request for the
// sender IP. It returns the resulting event kind.
func (c *Cache) Update(p *arppkt.Packet, solicited bool) EventKind {
	ip, mac := p.Binding()
	if ip.IsZero() || !mac.IsUnicast() { // probes and garbage never bind
		return EventRejected
	}

	prior := c.slot(ip)
	now := c.sched.Now()
	live := prior != nil && (prior.e.Static || prior.e.Expires > now)

	// Static entries are immutable, full stop.
	if live && prior.e.Static {
		if prior.e.MAC != mac {
			c.mRejects.Inc()
			c.emit(EventRejected, ip, prior.e.MAC, mac, p.Op, solicited)
		}
		return EventRejected
	}

	admitted := c.admit(p, solicited)
	if !admitted {
		var old ethaddr.MAC
		if live {
			old = prior.e.MAC
		}
		c.mRejects.Inc()
		c.emit(EventRejected, ip, old, mac, p.Op, solicited)
		return EventRejected
	}

	switch {
	case !live:
		e := Entry{MAC: mac, State: StateReachable, Expires: now + c.ttl}
		if prior != nil {
			prior.e = e // reclaim the expired slot
		} else {
			c.slots = append(c.slots, cacheSlot{ip: ip, e: e})
		}
		c.mCreated.Inc()
		c.emit(EventCreated, ip, ethaddr.MAC{}, mac, p.Op, solicited)
		return EventCreated
	case prior.e.MAC == mac:
		prior.e.Expires = now + c.ttl
		prior.e.State = StateReachable
		c.mRefreshed.Inc()
		c.emit(EventRefreshed, ip, prior.e.MAC, mac, p.Op, solicited)
		return EventRefreshed
	default:
		if !c.mayOverwrite(p) {
			c.mRejects.Inc()
			c.emit(EventRejected, ip, prior.e.MAC, mac, p.Op, solicited)
			return EventRejected
		}
		old := prior.e.MAC
		prior.e = Entry{MAC: mac, State: StateReachable, Expires: now + c.ttl}
		c.mOverwrites.Inc()
		c.emit(EventChanged, ip, old, mac, p.Op, solicited)
		return EventChanged
	}
}

// admit decides whether the packet class may touch the cache at all.
func (c *Cache) admit(p *arppkt.Packet, solicited bool) bool {
	if p.IsGratuitous() {
		return c.policy.AcceptGratuitous
	}
	if p.Op == arppkt.OpRequest {
		return c.policy.LearnFromRequest
	}
	// Reply.
	if solicited {
		return true
	}
	return c.policy.AcceptUnsolicitedReply
}

// mayOverwrite decides whether the packet class may replace a live binding
// that points at a different MAC.
func (c *Cache) mayOverwrite(p *arppkt.Packet) bool {
	if p.Op == arppkt.OpRequest || (p.IsGratuitous() && p.Op != arppkt.OpReply) {
		return c.policy.OverwriteOnRequest
	}
	return c.policy.OverwriteOnReply
}
