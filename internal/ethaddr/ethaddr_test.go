package ethaddr

import (
	"encoding/json"
	"errors"
	"testing"
	"testing/quick"
)

func TestParseMAC(t *testing.T) {
	tests := []struct {
		name    string
		in      string
		want    MAC
		wantErr bool
	}{
		{name: "colon", in: "4c:34:88:5e:ea:85", want: MAC{0x4c, 0x34, 0x88, 0x5e, 0xea, 0x85}},
		{name: "hyphen", in: "4C-34-88-5E-EA-85", want: MAC{0x4c, 0x34, 0x88, 0x5e, 0xea, 0x85}},
		{name: "uppercase", in: "FF:FF:FF:FF:FF:FF", want: BroadcastMAC},
		{name: "zero", in: "00:00:00:00:00:00", want: ZeroMAC},
		{name: "too few octets", in: "aa:bb:cc:dd:ee", wantErr: true},
		{name: "too many octets", in: "aa:bb:cc:dd:ee:ff:11", wantErr: true},
		{name: "bad hex", in: "aa:bb:cc:dd:ee:gg", wantErr: true},
		{name: "empty", in: "", wantErr: true},
		{name: "long octet", in: "aaa:bb:cc:dd:ee:ff", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := ParseMAC(tt.in)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("ParseMAC(%q) = %v, want error", tt.in, got)
				}
				if !errors.Is(err, ErrBadMAC) {
					t.Fatalf("error %v is not ErrBadMAC", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseMAC(%q): %v", tt.in, err)
			}
			if got != tt.want {
				t.Fatalf("ParseMAC(%q) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestMACStringRoundTrip(t *testing.T) {
	f := func(m MAC) bool {
		parsed, err := ParseMAC(m.String())
		return err == nil && parsed == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMACClassification(t *testing.T) {
	tests := []struct {
		name                          string
		m                             MAC
		broadcast, multicast, unicast bool
		zero, local                   bool
	}{
		{name: "broadcast", m: BroadcastMAC, broadcast: true, multicast: true, local: true},
		{name: "zero", m: ZeroMAC, zero: true},
		{name: "plain unicast", m: MustParseMAC("4c:34:88:5e:ea:85"), unicast: true},
		{name: "multicast", m: MustParseMAC("01:80:c2:00:00:00"), multicast: true},
		{name: "locally administered", m: MustParseMAC("02:42:ac:00:00:01"), unicast: true, local: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.m.IsBroadcast(); got != tt.broadcast {
				t.Errorf("IsBroadcast = %v, want %v", got, tt.broadcast)
			}
			if got := tt.m.IsMulticast(); got != tt.multicast {
				t.Errorf("IsMulticast = %v, want %v", got, tt.multicast)
			}
			if got := tt.m.IsUnicast(); got != tt.unicast {
				t.Errorf("IsUnicast = %v, want %v", got, tt.unicast)
			}
			if got := tt.m.IsZero(); got != tt.zero {
				t.Errorf("IsZero = %v, want %v", got, tt.zero)
			}
			if got := tt.m.IsLocallyAdministered(); got != tt.local {
				t.Errorf("IsLocallyAdministered = %v, want %v", got, tt.local)
			}
		})
	}
}

func TestParseIPv4(t *testing.T) {
	tests := []struct {
		name    string
		in      string
		want    IPv4
		wantErr bool
	}{
		{name: "plain", in: "192.168.88.250", want: IPv4{192, 168, 88, 250}},
		{name: "zero", in: "0.0.0.0", want: ZeroIPv4},
		{name: "broadcast", in: "255.255.255.255", want: BroadcastIPv4},
		{name: "octet overflow", in: "256.1.1.1", wantErr: true},
		{name: "too few", in: "1.2.3", wantErr: true},
		{name: "too many", in: "1.2.3.4.5", wantErr: true},
		{name: "empty octet", in: "1..2.3", wantErr: true},
		{name: "non-numeric", in: "a.b.c.d", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := ParseIPv4(tt.in)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("ParseIPv4(%q) = %v, want error", tt.in, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseIPv4(%q): %v", tt.in, err)
			}
			if got != tt.want {
				t.Fatalf("ParseIPv4(%q) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestIPv4StringRoundTrip(t *testing.T) {
	f := func(ip IPv4) bool {
		parsed, err := ParseIPv4(ip.String())
		return err == nil && parsed == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIPv4Uint32RoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		return IPv4FromUint32(v).Uint32() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubnet(t *testing.T) {
	n := MustParseSubnet("192.168.88.0/24")
	if got := n.String(); got != "192.168.88.0/24" {
		t.Errorf("String = %q", got)
	}
	if !n.Contains(MustParseIPv4("192.168.88.1")) {
		t.Error("should contain .1")
	}
	if !n.Contains(MustParseIPv4("192.168.88.254")) {
		t.Error("should contain .254")
	}
	if n.Contains(MustParseIPv4("192.168.89.1")) {
		t.Error("should not contain other /24")
	}
	if got, want := n.Host(1), MustParseIPv4("192.168.88.1"); got != want {
		t.Errorf("Host(1) = %v, want %v", got, want)
	}
	if got, want := n.Broadcast(), MustParseIPv4("192.168.88.255"); got != want {
		t.Errorf("Broadcast = %v, want %v", got, want)
	}
}

func TestSubnetNormalizesBase(t *testing.T) {
	n := MustParseSubnet("10.1.2.3/16")
	if got, want := n.Base, MustParseIPv4("10.1.0.0"); got != want {
		t.Errorf("Base = %v, want %v", got, want)
	}
}

func TestParseSubnetErrors(t *testing.T) {
	for _, in := range []string{"10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "bad/24", "10.0.0.0/x"} {
		if _, err := ParseSubnet(in); err == nil {
			t.Errorf("ParseSubnet(%q) succeeded, want error", in)
		}
	}
}

func TestMaskEdgeCases(t *testing.T) {
	ip := MustParseIPv4("255.255.255.255")
	if got := ip.Mask(0); got != ZeroIPv4 {
		t.Errorf("Mask(0) = %v", got)
	}
	if got := ip.Mask(32); got != ip {
		t.Errorf("Mask(32) = %v", got)
	}
	if got, want := ip.Mask(8), MustParseIPv4("255.0.0.0"); got != want {
		t.Errorf("Mask(8) = %v, want %v", got, want)
	}
}

func TestIPv4Classification(t *testing.T) {
	if !MustParseIPv4("224.0.0.1").IsMulticast() {
		t.Error("224.0.0.1 should be multicast")
	}
	if MustParseIPv4("223.255.255.255").IsMulticast() {
		t.Error("223.x should not be multicast")
	}
	if !MustParseIPv4("127.0.0.1").IsLoopback() {
		t.Error("127.0.0.1 should be loopback")
	}
	if !BroadcastIPv4.IsBroadcast() {
		t.Error("broadcast flag")
	}
	if !ZeroIPv4.IsZero() {
		t.Error("zero flag")
	}
}

func TestTextMarshaling(t *testing.T) {
	type doc struct {
		MAC MAC  `json:"mac"`
		IP  IPv4 `json:"ip"`
	}
	in := doc{MAC: MustParseMAC("4c:34:88:5e:ea:85"), IP: MustParseIPv4("192.168.88.250")}
	blob, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"mac":"4c:34:88:5e:ea:85","ip":"192.168.88.250"}`
	if string(blob) != want {
		t.Fatalf("json = %s, want %s", blob, want)
	}
	var out doc
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v", out)
	}
	if err := json.Unmarshal([]byte(`{"mac":"nope","ip":"1.2.3.4"}`), &out); err == nil {
		t.Fatal("bad mac accepted")
	}
	if err := json.Unmarshal([]byte(`{"mac":"4c:34:88:5e:ea:85","ip":"nope"}`), &out); err == nil {
		t.Fatal("bad ip accepted")
	}
}

func TestGenSeqMACUnique(t *testing.T) {
	g := NewGen(1)
	seen := make(map[MAC]bool)
	for i := 0; i < 1000; i++ {
		m := g.SeqMAC()
		if seen[m] {
			t.Fatalf("duplicate sequential MAC %v at %d", m, i)
		}
		if !m.IsUnicast() {
			t.Fatalf("sequential MAC %v is not unicast", m)
		}
		seen[m] = true
	}
}

func TestGenRandMACProperties(t *testing.T) {
	g := NewGen(2)
	for i := 0; i < 1000; i++ {
		m := g.RandMAC()
		if m.IsMulticast() {
			t.Fatalf("random MAC %v has group bit set", m)
		}
		if !m.IsLocallyAdministered() {
			t.Fatalf("random MAC %v is not locally administered", m)
		}
	}
}

func TestGenDeterminism(t *testing.T) {
	a, b := NewGen(42), NewGen(42)
	for i := 0; i < 100; i++ {
		if a.RandMAC() != b.RandMAC() {
			t.Fatal("RandMAC diverged for equal seeds")
		}
	}
}

func TestGenRandIPv4InSubnet(t *testing.T) {
	g := NewGen(3)
	n := MustParseSubnet("10.9.0.0/20")
	for i := 0; i < 1000; i++ {
		ip := g.RandIPv4(n)
		if !n.Contains(ip) {
			t.Fatalf("RandIPv4 %v outside %v", ip, n)
		}
		if ip == n.Base || ip == n.Broadcast() {
			t.Fatalf("RandIPv4 returned reserved address %v", ip)
		}
	}
}
