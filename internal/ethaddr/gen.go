package ethaddr

import "math/rand"

// lazySource defers rand's lagged-Fibonacci seeding (a 607-element warmup)
// until the first draw. Scenario construction makes one Gen per trial, and
// most only ever take sequential addresses — seeding a random stream they
// never draw from was a measurable slice of per-trial setup in the
// sweep-style experiments. The draw sequence is identical to an eagerly
// seeded source, just paid for on first use.
type lazySource struct {
	seed int64
	src  rand.Source64
}

func (l *lazySource) Int63() int64 {
	if l.src == nil {
		l.src = rand.NewSource(l.seed).(rand.Source64)
	}
	return l.src.Int63()
}

func (l *lazySource) Uint64() uint64 {
	if l.src == nil {
		l.src = rand.NewSource(l.seed).(rand.Source64)
	}
	return l.src.Uint64()
}

func (l *lazySource) Seed(seed int64) {
	l.seed = seed
	l.src = nil
}

// Gen deterministically produces unique MAC and IPv4 addresses for scenario
// construction and for attack tools that need streams of random addresses.
// It is not safe for concurrent use; simulations are single-threaded.
type Gen struct {
	rng  *rand.Rand
	next uint32 // sequential station counter
	oui  [3]byte
}

// NewGen returns a generator seeded for reproducibility. The default OUI is a
// locally-administered prefix so generated addresses never collide with the
// well-known constants.
func NewGen(seed int64) *Gen {
	return &Gen{
		rng: rand.New(&lazySource{seed: seed}),
		oui: [3]byte{0x02, 0x42, 0xac},
	}
}

// SeqMAC returns the next sequential station MAC (stable across runs).
func (g *Gen) SeqMAC() MAC {
	g.next++
	n := g.next
	return MAC{g.oui[0], g.oui[1], g.oui[2], byte(n >> 16), byte(n >> 8), byte(n)}
}

// RandMAC returns a random unicast locally-administered MAC, the kind
// flooding tools such as macof emit.
func (g *Gen) RandMAC() MAC {
	var m MAC
	for i := range m {
		m[i] = byte(g.rng.Intn(256))
	}
	m[0] = (m[0] | 0x02) &^ 0x01 // locally administered, unicast
	return m
}

// RandIPv4 returns a uniformly random address inside the subnet, excluding
// the network and broadcast addresses.
func (g *Gen) RandIPv4(n Subnet) IPv4 {
	hosts := 1
	if n.Bits < 31 {
		hosts = (1 << (32 - n.Bits)) - 2
	}
	return n.Host(1 + g.rng.Intn(hosts))
}
