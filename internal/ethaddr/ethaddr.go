// Package ethaddr provides the hardware (MAC) and protocol (IPv4) address
// value types used throughout the framework, along with parsing, formatting,
// classification, and deterministic generation helpers.
//
// Both types are fixed-size arrays so they are comparable, usable as map
// keys, and copied by value at API boundaries.
package ethaddr

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// MAC is a 48-bit IEEE 802 hardware address.
type MAC [6]byte

// IPv4 is a 32-bit Internet protocol address.
type IPv4 [4]byte

// Well-known addresses.
var (
	// BroadcastMAC is the all-ones Ethernet broadcast address.
	BroadcastMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

	// ZeroMAC is the all-zero placeholder hardware address used in the
	// target-hardware field of ARP requests.
	ZeroMAC = MAC{}

	// ZeroIPv4 is the unspecified address 0.0.0.0.
	ZeroIPv4 = IPv4{}

	// BroadcastIPv4 is the limited broadcast address 255.255.255.255.
	BroadcastIPv4 = IPv4{255, 255, 255, 255}
)

// Errors returned by the parsers.
var (
	ErrBadMAC  = errors.New("malformed MAC address")
	ErrBadIPv4 = errors.New("malformed IPv4 address")
)

// String formats the address in the canonical colon-separated lowercase
// hexadecimal form, e.g. "4c:34:88:5e:ea:85".
func (m MAC) String() string {
	const hexdigits = "0123456789abcdef"
	buf := make([]byte, 0, 17)
	for i, b := range m {
		if i > 0 {
			buf = append(buf, ':')
		}
		buf = append(buf, hexdigits[b>>4], hexdigits[b&0xf])
	}
	return string(buf)
}

// MarshalText implements encoding.TextMarshaler, so MACs render as
// canonical strings in JSON and text formats.
func (m MAC) MarshalText() ([]byte, error) { return []byte(m.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (m *MAC) UnmarshalText(text []byte) error {
	parsed, err := ParseMAC(string(text))
	if err != nil {
		return err
	}
	*m = parsed
	return nil
}

// IsBroadcast reports whether m is the all-ones broadcast address.
func (m MAC) IsBroadcast() bool { return m == BroadcastMAC }

// IsZero reports whether m is the all-zero placeholder address.
func (m MAC) IsZero() bool { return m == ZeroMAC }

// IsMulticast reports whether the group bit (least-significant bit of the
// first octet) is set. Broadcast is a special case of multicast.
func (m MAC) IsMulticast() bool { return m[0]&0x01 != 0 }

// IsUnicast reports whether m is a valid unicast station address: neither
// zero nor group-addressed.
func (m MAC) IsUnicast() bool { return !m.IsZero() && !m.IsMulticast() }

// IsLocallyAdministered reports whether the U/L bit is set, i.e. the address
// was assigned locally rather than burned in by a manufacturer. Attack tools
// that randomize MACs frequently set this bit.
func (m MAC) IsLocallyAdministered() bool { return m[0]&0x02 != 0 }

// OUI returns the Organizationally Unique Identifier (vendor prefix), the
// first three octets of the address.
func (m MAC) OUI() [3]byte { return [3]byte{m[0], m[1], m[2]} }

// ParseMAC parses a MAC address in colon- or hyphen-separated hexadecimal
// form ("aa:bb:cc:dd:ee:ff" or "aa-bb-cc-dd-ee-ff"), case-insensitively.
func ParseMAC(s string) (MAC, error) {
	sep := ":"
	if strings.Contains(s, "-") {
		sep = "-"
	}
	parts := strings.Split(s, sep)
	if len(parts) != 6 {
		return MAC{}, fmt.Errorf("%w: %q", ErrBadMAC, s)
	}
	var m MAC
	for i, p := range parts {
		if len(p) != 2 {
			return MAC{}, fmt.Errorf("%w: octet %d in %q", ErrBadMAC, i, s)
		}
		v, err := strconv.ParseUint(p, 16, 8)
		if err != nil {
			return MAC{}, fmt.Errorf("%w: octet %d in %q", ErrBadMAC, i, s)
		}
		m[i] = byte(v)
	}
	return m, nil
}

// MustParseMAC is like ParseMAC but panics on malformed input. It is intended
// for constants in tests and examples.
func MustParseMAC(s string) MAC {
	m, err := ParseMAC(s)
	if err != nil {
		panic(err)
	}
	return m
}

// String formats the address in dotted-quad form, e.g. "192.168.88.250".
func (ip IPv4) String() string {
	buf := make([]byte, 0, 15)
	for i, b := range ip {
		if i > 0 {
			buf = append(buf, '.')
		}
		buf = strconv.AppendUint(buf, uint64(b), 10)
	}
	return string(buf)
}

// MarshalText implements encoding.TextMarshaler, so addresses render as
// dotted quads in JSON and text formats.
func (ip IPv4) MarshalText() ([]byte, error) { return []byte(ip.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (ip *IPv4) UnmarshalText(text []byte) error {
	parsed, err := ParseIPv4(string(text))
	if err != nil {
		return err
	}
	*ip = parsed
	return nil
}

// IsZero reports whether ip is the unspecified address 0.0.0.0.
func (ip IPv4) IsZero() bool { return ip == ZeroIPv4 }

// IsBroadcast reports whether ip is the limited broadcast address.
func (ip IPv4) IsBroadcast() bool { return ip == BroadcastIPv4 }

// IsMulticast reports whether ip falls in 224.0.0.0/4.
func (ip IPv4) IsMulticast() bool { return ip[0] >= 224 && ip[0] <= 239 }

// IsLoopback reports whether ip falls in 127.0.0.0/8.
func (ip IPv4) IsLoopback() bool { return ip[0] == 127 }

// Uint32 returns the address as a big-endian 32-bit integer.
func (ip IPv4) Uint32() uint32 {
	return uint32(ip[0])<<24 | uint32(ip[1])<<16 | uint32(ip[2])<<8 | uint32(ip[3])
}

// IPv4FromUint32 builds an address from a big-endian 32-bit integer.
func IPv4FromUint32(v uint32) IPv4 {
	return IPv4{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// ParseIPv4 parses an address in dotted-quad form.
func ParseIPv4(s string) (IPv4, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return IPv4{}, fmt.Errorf("%w: %q", ErrBadIPv4, s)
	}
	var ip IPv4
	for i, p := range parts {
		if p == "" || len(p) > 3 {
			return IPv4{}, fmt.Errorf("%w: octet %d in %q", ErrBadIPv4, i, s)
		}
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return IPv4{}, fmt.Errorf("%w: octet %d in %q", ErrBadIPv4, i, s)
		}
		ip[i] = byte(v)
	}
	return ip, nil
}

// MustParseIPv4 is like ParseIPv4 but panics on malformed input. It is
// intended for constants in tests and examples.
func MustParseIPv4(s string) IPv4 {
	ip, err := ParseIPv4(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// Subnet describes an IPv4 prefix, used for same-network checks and for
// enumerating host addresses in scenario setup.
type Subnet struct {
	Base IPv4
	Bits int // prefix length, 0..32
}

// ParseSubnet parses CIDR notation such as "192.168.88.0/24".
func ParseSubnet(s string) (Subnet, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Subnet{}, fmt.Errorf("%w: missing prefix length in %q", ErrBadIPv4, s)
	}
	base, err := ParseIPv4(s[:slash])
	if err != nil {
		return Subnet{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Subnet{}, fmt.Errorf("%w: bad prefix length in %q", ErrBadIPv4, s)
	}
	return Subnet{Base: base.Mask(bits), Bits: bits}, nil
}

// MustParseSubnet is like ParseSubnet but panics on malformed input.
func MustParseSubnet(s string) Subnet {
	n, err := ParseSubnet(s)
	if err != nil {
		panic(err)
	}
	return n
}

// Mask zeroes the host bits of ip for the given prefix length.
func (ip IPv4) Mask(bits int) IPv4 {
	if bits <= 0 {
		return IPv4{}
	}
	if bits >= 32 {
		return ip
	}
	mask := ^uint32(0) << (32 - bits)
	return IPv4FromUint32(ip.Uint32() & mask)
}

// Contains reports whether ip belongs to the subnet.
func (n Subnet) Contains(ip IPv4) bool { return ip.Mask(n.Bits) == n.Base }

// Host returns the i-th host address within the subnet (i=1 is the first
// usable address after the network address). It does not guard against
// overflowing the prefix; callers enumerate within capacity.
func (n Subnet) Host(i int) IPv4 {
	return IPv4FromUint32(n.Base.Uint32() + uint32(i))
}

// Broadcast returns the subnet's directed broadcast address.
func (n Subnet) Broadcast() IPv4 {
	if n.Bits >= 32 {
		return n.Base
	}
	return IPv4FromUint32(n.Base.Uint32() | (^uint32(0) >> n.Bits))
}

// String formats the subnet in CIDR notation.
func (n Subnet) String() string { return n.Base.String() + "/" + strconv.Itoa(n.Bits) }
