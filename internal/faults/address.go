// Hierarchical fault addressing. Flat-LAN plans target objects by bare
// index ("link": 3); routed topologies need to say *which* segment's link 3,
// and campus-wide plans want wildcards. The grammar is deliberately tiny:
//
//	lan:3/link:7    link 7 on LAN 3
//	lan:*/link:7    link 7 on every LAN
//	lan:3/link:*    every link on LAN 3
//	lan:3           shorthand for lan:3/link:* (link events only)
//	lan:*           every link everywhere
//	lan:3/host:2    station 2 on LAN 3 (host-churn)
//	trunk:2-5       the backbone edge from LAN 2 toward LAN 5
//	trunk:2-*       every edge leaving LAN 2
//	trunk:*         every backbone edge
//
// A flat LAN is the single-site topology "lan 0", so "lan:0/link:3" is
// exactly `"link": 3` — the property the equivalence tests pin.
package faults

import (
	"fmt"
	"strconv"
	"strings"
)

// wildcard marks "every index" in a parsed selector.
const wildcard = -1

// linkAddr is a parsed link selector; lan and link may be wildcard.
type linkAddr struct{ lan, link int }

// hostAddr is a parsed station selector; lan may be wildcard.
type hostAddr struct{ lan, host int }

// trunkAddr is a parsed backbone-edge selector; either side may be wildcard.
type trunkAddr struct{ from, to int }

// lanAddr is a parsed segment selector; may be wildcard.
type lanAddr int

// parseIndex parses one selector component: a non-negative integer or "*".
func parseIndex(what, s string) (int, error) {
	if s == "*" {
		return wildcard, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad %s index %q (want a non-negative integer or *)", what, s)
	}
	return n, nil
}

// parsePart splits "kind:value", enforcing the expected kind.
func parsePart(kind, part string) (string, error) {
	k, v, ok := strings.Cut(part, ":")
	if !ok || k != kind || v == "" {
		return "", fmt.Errorf("bad selector part %q (want %s:<index> or %s:*)", part, kind, kind)
	}
	return v, nil
}

// parseLanAddr parses a segment selector: "lan:3" or "lan:*".
func parseLanAddr(s string) (lanAddr, error) {
	v, err := parsePart("lan", s)
	if err != nil {
		return 0, err
	}
	n, err := parseIndex("lan", v)
	if err != nil {
		return 0, err
	}
	return lanAddr(n), nil
}

// parseLinkAddr parses a hierarchical link selector.
func parseLinkAddr(s string) (linkAddr, error) {
	lanPart, linkPart, hasLink := strings.Cut(s, "/")
	lv, err := parsePart("lan", lanPart)
	if err != nil {
		return linkAddr{}, fmt.Errorf("link address %q: %w", s, err)
	}
	lan, err := parseIndex("lan", lv)
	if err != nil {
		return linkAddr{}, fmt.Errorf("link address %q: %w", s, err)
	}
	link := wildcard // "lan:3" alone means every link on LAN 3
	if hasLink {
		kv, err := parsePart("link", linkPart)
		if err != nil {
			return linkAddr{}, fmt.Errorf("link address %q: %w", s, err)
		}
		if link, err = parseIndex("link", kv); err != nil {
			return linkAddr{}, fmt.Errorf("link address %q: %w", s, err)
		}
	}
	return linkAddr{lan: lan, link: link}, nil
}

// parseHostAddr parses a hierarchical station selector: "lan:3/host:2" or
// "lan:*/host:2". The host index is required and concrete — churning "every
// station" is a misconfiguration, not a fault model.
func parseHostAddr(s string) (hostAddr, error) {
	lanPart, hostPart, ok := strings.Cut(s, "/")
	if !ok {
		return hostAddr{}, fmt.Errorf("host address %q: want lan:<i>/host:<j>", s)
	}
	lv, err := parsePart("lan", lanPart)
	if err != nil {
		return hostAddr{}, fmt.Errorf("host address %q: %w", s, err)
	}
	lan, err := parseIndex("lan", lv)
	if err != nil {
		return hostAddr{}, fmt.Errorf("host address %q: %w", s, err)
	}
	hv, err := parsePart("host", hostPart)
	if err != nil {
		return hostAddr{}, fmt.Errorf("host address %q: %w", s, err)
	}
	host, err := parseIndex("host", hv)
	if err != nil {
		return hostAddr{}, fmt.Errorf("host address %q: %w", s, err)
	}
	if host == wildcard {
		return hostAddr{}, fmt.Errorf("host address %q: host index must be concrete (churning every station at once is not a fault model)", s)
	}
	return hostAddr{lan: lan, host: host}, nil
}

// parseTrunkAddr parses a backbone-edge selector: "trunk:2-5", "trunk:2-*",
// "trunk:*-5", or "trunk:*" (every edge).
func parseTrunkAddr(s string) (trunkAddr, error) {
	v, err := parsePart("trunk", s)
	if err != nil {
		return trunkAddr{}, fmt.Errorf("trunk address %q: want trunk:<from>-<to> or trunk:*", s)
	}
	if v == "*" {
		return trunkAddr{from: wildcard, to: wildcard}, nil
	}
	fromPart, toPart, ok := strings.Cut(v, "-")
	if !ok {
		return trunkAddr{}, fmt.Errorf("trunk address %q: want trunk:<from>-<to> or trunk:*", s)
	}
	from, err := parseIndex("trunk source", fromPart)
	if err != nil {
		return trunkAddr{}, fmt.Errorf("trunk address %q: %w", s, err)
	}
	to, err := parseIndex("trunk destination", toPart)
	if err != nil {
		return trunkAddr{}, fmt.Errorf("trunk address %q: %w", s, err)
	}
	return trunkAddr{from: from, to: to}, nil
}
