package faults_test

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/dhcp"
	"repro/internal/ethaddr"
	"repro/internal/faults"
	"repro/internal/labnet"
	"repro/internal/telemetry"
)

// chatter schedules steady gateway-bound UDP traffic from every station.
func chatter(l *labnet.LAN, period time.Duration) {
	gw := l.Gateway()
	for _, h := range l.Hosts[1:] {
		h := h
		l.Sched.Every(period, func() { h.SendUDP(gw.IP(), 2000, 80, []byte("work")) })
	}
}

func intp(i int) *int { return &i }

func TestLoadRejectsUnknownFields(t *testing.T) {
	if _, err := faults.Load(strings.NewReader(`{"events":[{"bogus":1}]}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := faults.Load(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
	p, err := faults.Load(strings.NewReader(`{"events":[{"type":"cam-flush","atSeconds":5}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 1 || p.Events[0].Type != faults.TypeCAMFlush {
		t.Fatalf("plan: %+v", p)
	}
}

func TestApplyValidation(t *testing.T) {
	l := labnet.New(labnet.Config{Seed: 1, Hosts: 4, WithAttacker: false, WithMonitor: false})
	env := l.FaultEnv()
	cases := []struct {
		name string
		ev   faults.Event
		want string
	}{
		{"unknown type", faults.Event{Type: "meteor-strike"}, "unknown type"},
		{"negative at", faults.Event{Type: faults.TypeCAMFlush, AtSeconds: -1}, "negative atSeconds"},
		{"inert channel", faults.Event{Type: faults.TypeGilbertElliott}, "never lose"},
		{"bad prob", faults.Event{Type: faults.TypeGilbertElliott, PGoodBad: 1.5}, "outside [0, 1]"},
		{"zero prob", faults.Event{Type: faults.TypeReorder}, "prob is zero"},
		{"flap no window", faults.Event{Type: faults.TypeLinkFlap, Link: intp(0)}, "positive durationSeconds"},
		{"churn no host", faults.Event{Type: faults.TypeHostChurn, DurationSeconds: 1}, "requires a host index"},
		{"churn bad host", faults.Event{Type: faults.TypeHostChurn, DurationSeconds: 1, Host: intp(99)}, "out of range"},
		{"link out of range", faults.Event{Type: faults.TypeLinkFlap, DurationSeconds: 1, Link: intp(99)}, "out of range"},
		{"no dhcp", faults.Event{Type: faults.TypeDHCPOutage}, "no DHCP server"},
	}
	for _, tc := range cases {
		_, err := faults.Apply(&faults.Plan{Events: []faults.Event{tc.ev}}, env)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	if _, err := faults.Apply(&faults.Plan{}, env); err != nil {
		t.Errorf("empty plan rejected: %v", err)
	}
}

func TestGilbertElliottWindowDropsFrames(t *testing.T) {
	l := labnet.New(labnet.Config{Seed: 3, Hosts: 4, WithAttacker: false, WithMonitor: false})
	l.SeedMutualCaches()
	chatter(l, 100*time.Millisecond)
	ctl, err := faults.Apply(&faults.Plan{Events: []faults.Event{{
		Type: faults.TypeGilbertElliott, AtSeconds: 5, DurationSeconds: 20,
		PGoodBad: 0.3, PBadGood: 0.2, LossBad: 0.9,
	}}}, l.FaultEnv())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := ctl.Stats()
	if st.BurstDropped == 0 {
		t.Fatalf("burst channel dropped nothing: %+v", st)
	}
	var linkDrops uint64
	for _, lk := range l.Links {
		linkDrops += lk.Stats().FaultDropped
	}
	if linkDrops != st.BurstDropped {
		t.Fatalf("link FaultDropped %d != controller BurstDropped %d", linkDrops, st.BurstDropped)
	}
}

func TestDuplicateAndReorderStillDeliver(t *testing.T) {
	l := labnet.New(labnet.Config{Seed: 4, Hosts: 3, WithAttacker: false, WithMonitor: false})
	l.SeedMutualCaches()
	received := 0
	l.Gateway().HandleUDP(80, func(ethaddr.IPv4, uint16, []byte) { received++ })
	chatter(l, 200*time.Millisecond)
	ctl, err := faults.Apply(&faults.Plan{Events: []faults.Event{
		{Type: faults.TypeDuplicate, Prob: 0.5, MaxDelayMillis: 2},
		{Type: faults.TypeReorder, Prob: 0.5, MaxDelayMillis: 5},
	}}, l.FaultEnv())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := ctl.Stats()
	if st.Duplicated == 0 || st.Reordered == 0 {
		t.Fatalf("injected nothing: %+v", st)
	}
	// Duplication adds deliveries, reordering only delays them: the gateway
	// must see at least one copy of every datagram plus the duplicates.
	sent := 0
	for _, h := range l.Hosts[1:] {
		sent += int(h.Stats().IPv4Tx)
	}
	if received <= sent/2 {
		t.Fatalf("received %d of %d sent — faults ate traffic they must not eat", received, sent)
	}
}

func TestLinkFlapWindow(t *testing.T) {
	l := labnet.New(labnet.Config{Seed: 5, Hosts: 3, WithAttacker: false, WithMonitor: false})
	l.SeedMutualCaches()
	chatter(l, 100*time.Millisecond)
	ctl, err := faults.Apply(&faults.Plan{Events: []faults.Event{{
		Type: faults.TypeLinkFlap, AtSeconds: 10, DurationSeconds: 5, Link: intp(1),
	}}}, l.FaultEnv())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if l.Links[1].Down() {
		t.Fatal("link still down after the flap window")
	}
	st := ctl.Stats()
	if st.LinkFlaps != 1 || st.FlapDropped == 0 {
		t.Fatalf("flap stats: %+v", st)
	}
	if l.Links[0].Stats().DownDropped != 0 {
		t.Fatal("flap leaked onto an untargeted link")
	}
}

func TestHostChurnWipesCacheAndReannounces(t *testing.T) {
	l := labnet.New(labnet.Config{Seed: 6, Hosts: 4, WithAttacker: false, WithMonitor: false})
	l.SeedMutualCaches()
	target := l.Hosts[2]
	ctl, err := faults.Apply(&faults.Plan{Events: []faults.Event{{
		Type: faults.TypeHostChurn, AtSeconds: 5, DurationSeconds: 2, Host: intp(2),
	}}}, l.FaultEnv())
	if err != nil {
		t.Fatal(err)
	}
	cacheAtReturn := -1
	l.Sched.At(7*time.Second+time.Millisecond, func() { cacheAtReturn = target.Cache().Len() })
	if err := l.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if ctl.Stats().HostChurns != 1 {
		t.Fatalf("stats: %+v", ctl.Stats())
	}
	if cacheAtReturn != 0 {
		t.Fatalf("cache held %d entries right after the restart, want 0", cacheAtReturn)
	}
	// The re-announcement repopulates the peers' view of the churned host.
	if mac, ok := l.Gateway().Cache().Lookup(target.IP()); !ok || mac != target.MAC() {
		t.Fatal("gateway lost the churned host's binding despite the gratuitous re-announce")
	}
}

func TestCAMFlushClearsSwitchTable(t *testing.T) {
	l := labnet.New(labnet.Config{Seed: 7, Hosts: 4, WithAttacker: false, WithMonitor: false})
	l.SeedMutualCaches()
	ctl, err := faults.Apply(&faults.Plan{Events: []faults.Event{{
		Type: faults.TypeCAMFlush, AtSeconds: 5,
	}}}, l.FaultEnv())
	if err != nil {
		t.Fatal(err)
	}
	camAfter := -1
	l.Sched.At(5*time.Second+time.Millisecond, func() { camAfter = l.Switch.CAMLen() })
	if err := l.Run(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	if camAfter != 0 {
		t.Fatalf("CAM held %d entries right after the flush", camAfter)
	}
	if ctl.Stats().CAMFlushes != 1 {
		t.Fatalf("stats: %+v", ctl.Stats())
	}
}

func TestDHCPOutageStarvesAndRecovers(t *testing.T) {
	l := labnet.New(labnet.Config{Seed: 8, Hosts: 2, WithAttacker: false, WithMonitor: false})
	sv := dhcp.NewServer(l.Sched, l.Gateway(), l.Subnet, l.Gateway().IP(), 100, 10)
	client := dhcp.NewClient(l.Sched, l.Hosts[1], nil)
	env := l.FaultEnv()
	env.DHCP = []*dhcp.Server{sv}
	ctl, err := faults.Apply(&faults.Plan{Events: []faults.Event{{
		Type: faults.TypeDHCPOutage, AtSeconds: 0, DurationSeconds: 30,
	}}}, env)
	if err != nil {
		t.Fatal(err)
	}
	l.Sched.At(time.Second, client.Acquire)
	stateDuringOutage := dhcp.StateBound
	l.Sched.At(25*time.Second, func() { stateDuringOutage = client.State() })
	if err := l.Run(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	if stateDuringOutage == dhcp.StateBound {
		t.Fatal("client bound while the server was down")
	}
	if client.State() != dhcp.StateBound {
		t.Fatalf("client never recovered after the outage: state %v", client.State())
	}
	st := ctl.Stats()
	if st.DHCPOutages != 1 || st.DHCPDropped == 0 {
		t.Fatalf("outage stats: %+v", st)
	}
}

// TestPlanIsDeterministic runs the same faulted scenario twice and demands
// identical injection counts and end-state — the invariant that makes
// fault-swept experiments reproducible at any worker-pool width.
func TestPlanIsDeterministic(t *testing.T) {
	run := func() (faults.Stats, int) {
		l := labnet.New(labnet.Config{Seed: 42, Hosts: 6, WithAttacker: true, WithMonitor: true})
		l.SeedMutualCaches()
		chatter(l, 50*time.Millisecond)
		ctl, err := faults.Apply(&faults.Plan{Events: []faults.Event{
			{Type: faults.TypeGilbertElliott, AtSeconds: 2, DurationSeconds: 30, PGoodBad: 0.05, PBadGood: 0.2, LossBad: 0.8},
			{Type: faults.TypeReorder, Prob: 0.1, MaxDelayMillis: 3},
			{Type: faults.TypeDuplicate, Prob: 0.05},
			{Type: faults.TypeLinkFlap, AtSeconds: 10, DurationSeconds: 3, Link: intp(2)},
			{Type: faults.TypeHostChurn, AtSeconds: 20, DurationSeconds: 2, Host: intp(3)},
			{Type: faults.TypeCAMFlush, AtSeconds: 25},
		}}, l.FaultEnv())
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Run(40 * time.Second); err != nil {
			t.Fatal(err)
		}
		return ctl.Stats(), l.Gateway().Cache().Len()
	}
	s1, c1 := run()
	s2, c2 := run()
	if !reflect.DeepEqual(s1, s2) || c1 != c2 {
		t.Fatalf("two identical runs diverged:\n%+v (cache %d)\n%+v (cache %d)", s1, c1, s2, c2)
	}
	if s1.Total() == 0 {
		t.Fatal("plan injected nothing")
	}
}

// TestDisabledPlanIsInvisible pins the compiled-in-but-disabled guarantee:
// a run with no plan and a run with an empty plan produce identical
// end-state, and arming a plan whose windows never open changes nothing
// either (injector streams are derived, not taken from the shared stream).
func TestDisabledPlanIsInvisible(t *testing.T) {
	run := func(plan *faults.Plan) (uint64, int) {
		l := labnet.New(labnet.Config{
			Seed: 9, Hosts: 5, WithAttacker: true, WithMonitor: true,
			LinkJitter: 200 * time.Microsecond, LinkLoss: 0.05,
		})
		l.SeedMutualCaches()
		chatter(l, 100*time.Millisecond)
		if plan != nil {
			if _, err := faults.Apply(plan, l.FaultEnv()); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Run(30 * time.Second); err != nil {
			t.Fatal(err)
		}
		var rx uint64
		for _, h := range l.Hosts {
			rx += h.Stats().IPv4Rx
		}
		return rx, l.Switch.CAMLen()
	}
	rxNone, camNone := run(nil)
	rxEmpty, camEmpty := run(&faults.Plan{})
	// This window opens after the horizon: armed, never active.
	rxLate, camLate := run(&faults.Plan{Events: []faults.Event{{
		Type: faults.TypeGilbertElliott, AtSeconds: 3600, PGoodBad: 0.5, PBadGood: 0.1, LossBad: 1,
	}}})
	if rxNone != rxEmpty || camNone != camEmpty {
		t.Fatalf("empty plan perturbed the run: rx %d vs %d, cam %d vs %d", rxNone, rxEmpty, camNone, camEmpty)
	}
	if rxNone != rxLate || camNone != camLate {
		t.Fatalf("dormant plan perturbed the run: rx %d vs %d, cam %d vs %d", rxNone, rxLate, camNone, camLate)
	}
}

func TestTelemetryCountersAndEvents(t *testing.T) {
	reg := telemetry.New()
	l := labnet.New(labnet.Config{Seed: 10, Hosts: 4, WithAttacker: false, WithMonitor: false, Telemetry: reg})
	l.SeedMutualCaches()
	chatter(l, 100*time.Millisecond)
	env := l.FaultEnv()
	env.Registry = reg
	_, err := faults.Apply(&faults.Plan{Events: []faults.Event{
		{Type: faults.TypeGilbertElliott, AtSeconds: 1, PGoodBad: 0.5, PBadGood: 0.1, LossBad: 0.9},
		{Type: faults.TypeCAMFlush, AtSeconds: 5},
	}}, env)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	byType := make(map[string]uint64)
	for _, c := range snap.Counters {
		if c.Name == "faults_injected_total" {
			byType[c.Labels["type"]] = c.Value
		}
	}
	if byType[faults.TypeGilbertElliott] == 0 {
		t.Fatalf("no gilbert-elliott injections in telemetry: %v", byType)
	}
	if byType[faults.TypeCAMFlush] != 1 {
		t.Fatalf("cam-flush counter = %d, want 1", byType[faults.TypeCAMFlush])
	}
	found := false
	for _, ev := range reg.Events().Events() {
		if ev.Component == "faults" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no structured events from the faults component")
	}
}

// TestHierarchicalAddressValidation pins the strict-decode behavior of the
// hierarchical selectors: malformed addresses fail at Apply with an error
// naming the event, and the unknown-type error lists every valid type.
func TestHierarchicalAddressValidation(t *testing.T) {
	l := labnet.New(labnet.Config{Seed: 11, Hosts: 4, WithAttacker: false, WithMonitor: false})
	env := l.FaultEnv()
	cases := []struct {
		name string
		ev   faults.Event
		want string
	}{
		{"bad linkAt", faults.Event{Type: faults.TypeLinkFlap, DurationSeconds: 1, LinkAt: "lan:0/port:3"}, "bad selector part"},
		{"garbage linkAt", faults.Event{Type: faults.TypeReorder, Prob: 0.5, LinkAt: "everything"}, `link address "everything"`},
		{"negative lan", faults.Event{Type: faults.TypeReorder, Prob: 0.5, LinkAt: "lan:-2/link:0"}, "non-negative"},
		{"link and linkAt", faults.Event{Type: faults.TypeLinkFlap, DurationSeconds: 1, Link: intp(0), LinkAt: "lan:0"}, "mutually exclusive"},
		{"bad hostAt", faults.Event{Type: faults.TypeHostChurn, DurationSeconds: 1, HostAt: "lan:0"}, "want lan:<i>/host:<j>"},
		{"wildcard host", faults.Event{Type: faults.TypeHostChurn, DurationSeconds: 1, HostAt: "lan:*/host:*"}, "concrete"},
		{"host and hostAt", faults.Event{Type: faults.TypeHostChurn, DurationSeconds: 1, Host: intp(1), HostAt: "lan:0/host:1"}, "mutually exclusive"},
		{"bad trunk", faults.Event{Type: faults.TypeTrunkPartition, DurationSeconds: 1, Trunk: "trunk:2"}, "want trunk:<from>-<to>"},
		{"bad lan", faults.Event{Type: faults.TypeCAMFlush, Lan: "site:3"}, "bad selector part"},
		{"linkAt lan out of range", faults.Event{Type: faults.TypeReorder, Prob: 0.5, LinkAt: "lan:7/link:0"}, "lan 7 out of range"},
		{"linkAt link out of range", faults.Event{Type: faults.TypeReorder, Prob: 0.5, LinkAt: "lan:0/link:99"}, "out of range"},
		{"hostAt out of range", faults.Event{Type: faults.TypeHostChurn, DurationSeconds: 1, HostAt: "lan:0/host:99"}, "out of range"},
		{"trunks on flat", faults.Event{Type: faults.TypeTrunkPartition, DurationSeconds: 1, Trunk: "trunk:*"}, "routed campus topology"},
		{"router flush on flat", faults.Event{Type: faults.TypeRouterFlush}, "routed campus topology"},
	}
	for _, tc := range cases {
		_, err := faults.Apply(&faults.Plan{Events: []faults.Event{tc.ev}}, env)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	_, err := faults.Apply(&faults.Plan{Events: []faults.Event{{Type: "meteor-strike"}}}, env)
	if err == nil || !strings.Contains(err.Error(), "valid types") ||
		!strings.Contains(err.Error(), faults.TypeTrunkPartition) {
		t.Fatalf("unknown-type error should list valid types, got: %v", err)
	}
}

// TestFlatPlanEqualsLanZeroPlan pins the single-site equivalence at the
// faults layer: on the same flat LAN, a plan addressing "link": i behaves
// byte-identically to one addressing "lan:0/link:<i>" (same injector
// streams, same targets), and a bare-index host-churn matches its
// "lan:0/host:<i>" spelling.
func TestFlatPlanEqualsLanZeroPlan(t *testing.T) {
	run := func(p *faults.Plan) (faults.Stats, uint64) {
		l := labnet.New(labnet.Config{Seed: 21, Hosts: 5, WithAttacker: false, WithMonitor: false})
		l.SeedMutualCaches()
		chatter(l, 50*time.Millisecond)
		ctl, err := faults.Apply(p, l.FaultEnv())
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Run(40 * time.Second); err != nil {
			t.Fatal(err)
		}
		var rx uint64
		for _, h := range l.Hosts {
			rx += h.Stats().IPv4Rx
		}
		return ctl.Stats(), rx
	}
	flat := &faults.Plan{Events: []faults.Event{
		{Type: faults.TypeGilbertElliott, AtSeconds: 2, DurationSeconds: 20, PGoodBad: 0.1, PBadGood: 0.2, LossBad: 0.9, Link: intp(1)},
		{Type: faults.TypeLinkFlap, AtSeconds: 10, DurationSeconds: 3, Link: intp(2)},
		{Type: faults.TypeHostChurn, AtSeconds: 20, DurationSeconds: 2, Host: intp(3)},
		{Type: faults.TypeReorder, Prob: 0.2, MaxDelayMillis: 4},
	}}
	prefixed := &faults.Plan{Events: []faults.Event{
		{Type: faults.TypeGilbertElliott, AtSeconds: 2, DurationSeconds: 20, PGoodBad: 0.1, PBadGood: 0.2, LossBad: 0.9, LinkAt: "lan:0/link:1"},
		{Type: faults.TypeLinkFlap, AtSeconds: 10, DurationSeconds: 3, LinkAt: "lan:0/link:2"},
		{Type: faults.TypeHostChurn, AtSeconds: 20, DurationSeconds: 2, HostAt: "lan:0/host:3"},
		{Type: faults.TypeReorder, Prob: 0.2, MaxDelayMillis: 4, LinkAt: "lan:*"},
	}}
	s1, rx1 := run(flat)
	s2, rx2 := run(prefixed)
	if !reflect.DeepEqual(s1, s2) || rx1 != rx2 {
		t.Fatalf("flat plan and lan:0-prefixed plan diverged:\n%+v (rx %d)\n%+v (rx %d)", s1, rx1, s2, rx2)
	}
	if s1.Total() == 0 {
		t.Fatal("plan injected nothing")
	}
}
