package faults

import (
	"fmt"

	"repro/internal/dhcp"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/telemetry"
)

// Env is the set of simulation objects a plan may target, assembled by the
// caller (labnet.LAN.FaultEnv or labnet.Campus.FaultEnv for the standard
// workbenches). Slices are index-addressed from fault events: Links[i] is
// link target i, Hosts[i] is host target i. Only a scheduler is mandatory;
// an event targeting an absent object is an Apply-time error, never a
// silent no-op.
//
// A flat LAN fills the top-level fields and leaves Sites empty; it is then
// treated as the single-site topology "lan 0", which is why a plan saying
// "lan:0/link:3" behaves byte-identically to one saying "link": 3. A routed
// topology fills Sites (one entry per LAN, each with its own shard
// scheduler) and Trunks instead.
type Env struct {
	Sched *sim.Scheduler
	// Links are the fault-targetable attachments, in a caller-defined,
	// deterministic order.
	Links []*netsim.Link
	// Switch receives cam-flush events.
	Switch *netsim.Switch
	// Hosts receive host-churn events.
	Hosts []*stack.Host
	// DHCP servers all go dark together during a dhcp-outage window.
	DHCP []*dhcp.Server
	// Registry, when non-nil, receives per-fault-type injection counters
	// ("faults_injected_total") and a structured event per window edge.
	// Registries are not goroutine-safe, so on a sharded topology only
	// events landing on site 0's time domain touch it.
	Registry *telemetry.Registry

	// Sites, when non-empty, exposes a routed topology segment by segment;
	// the flat Links/Switch/Hosts fields above are then ignored. Every
	// event callback for a site's objects is armed on that site's own
	// scheduler, so injection stays race-free and byte-identical at any
	// shard-worker width.
	Sites []SiteEnv
	// Trunks are the backbone edges, targets for trunk-partition.
	Trunks []TrunkEnv
}

// SiteEnv is one segment's targetable view inside a routed topology.
type SiteEnv struct {
	// Sched is the shard that owns this segment's time domain.
	Sched  *sim.Scheduler
	Links  []*netsim.Link
	Switch *netsim.Switch
	Hosts  []*stack.Host
	// Router is the segment's edge router, the router-flush target; nil on
	// flat topologies.
	Router *netsim.RouterIface
}

// TrunkEnv is one backbone edge. Partition state is owned by the sending
// LAN's shard (netsim.Trunk.SetDown), so callbacks are armed on Sched — the
// source site's scheduler.
type TrunkEnv struct {
	From, To int
	Sched    *sim.Scheduler
	Trunk    *netsim.Trunk
}

// Stats counts what a plan actually injected during a run.
type Stats struct {
	BurstDropped    uint64 `json:"burstDropped"`    // frames eaten by Gilbert-Elliott loss
	Duplicated      uint64 `json:"duplicated"`      // extra frame copies delivered
	Reordered       uint64 `json:"reordered"`       // frames delayed out of order
	LinkFlaps       uint64 `json:"linkFlaps"`       // flap windows opened
	FlapDropped     uint64 `json:"flapDropped"`     // frames offered to a downed link
	HostChurns      uint64 `json:"hostChurns"`      // host power-cycle windows opened
	CAMFlushes      uint64 `json:"camFlushes"`      // switch station tables cleared
	DHCPOutages     uint64 `json:"dhcpOutages"`     // DHCP outage windows opened
	DHCPDropped     uint64 `json:"dhcpDropped"`     // client messages servers ignored while down
	TrunkPartitions uint64 `json:"trunkPartitions"` // backbone partition windows opened
	TrunkDropped    uint64 `json:"trunkDropped"`    // frames offered to a partitioned trunk
	RouterFlushes   uint64 `json:"routerFlushes"`   // edge-router ARP tables cleared
}

// Total returns the number of injected fault effects of every kind.
func (s Stats) Total() uint64 {
	return s.BurstDropped + s.Duplicated + s.Reordered + s.LinkFlaps +
		s.FlapDropped + s.HostChurns + s.CAMFlushes + s.DHCPOutages + s.DHCPDropped +
		s.TrunkPartitions + s.TrunkDropped + s.RouterFlushes
}

// add accumulates another site's counters into s.
func (s *Stats) add(o Stats) {
	s.BurstDropped += o.BurstDropped
	s.Duplicated += o.Duplicated
	s.Reordered += o.Reordered
	s.LinkFlaps += o.LinkFlaps
	s.FlapDropped += o.FlapDropped
	s.HostChurns += o.HostChurns
	s.CAMFlushes += o.CAMFlushes
	s.DHCPOutages += o.DHCPOutages
	s.DHCPDropped += o.DHCPDropped
	s.TrunkPartitions += o.TrunkPartitions
	s.TrunkDropped += o.TrunkDropped
	s.RouterFlushes += o.RouterFlushes
}

// siteLink addresses one link inside one site.
type siteLink struct{ site, link int }

// siteHost addresses one station inside one site.
type siteHost struct{ site, host int }

// Controller owns an armed plan's runtime state: the per-link impairment
// chains and the injection counters. Counters are kept per site — each is
// touched only from its own site's time domain — so a sharded campus run
// injects race-free; Stats merges them and must be called only while the
// topology is quiescent (before Run or after it returns).
type Controller struct {
	env    Env
	sites  []SiteEnv
	chains map[siteLink]*chain
	stats  []Stats

	events  *telemetry.EventLog
	mByType map[string]*telemetry.Counter
}

// Stats returns a snapshot of everything the plan injected so far,
// including the frames its flapped links, partitioned trunks, and downed
// DHCP servers swallowed.
func (c *Controller) Stats() Stats {
	var out Stats
	for i := range c.stats {
		out.add(c.stats[i])
	}
	for _, s := range c.sites {
		for _, l := range s.Links {
			out.FlapDropped += l.Stats().DownDropped
		}
	}
	for _, t := range c.env.Trunks {
		out.TrunkDropped += t.Trunk.Stats().PartitionDropped
	}
	for _, sv := range c.env.DHCP {
		out.DHCPDropped += sv.Stats().DroppedWhileDown
	}
	return out
}

// counter returns (and lazily registers) the injection counter for one
// fault type. Nil when the environment carries no registry — the *Counter
// methods are nil-safe no-ops.
func (c *Controller) counter(faultType string) *telemetry.Counter {
	if c.env.Registry == nil {
		return nil
	}
	if m, ok := c.mByType[faultType]; ok {
		return m
	}
	m := c.env.Registry.Counter("faults_injected_total", telemetry.L("type", faultType))
	c.mByType[faultType] = m
	return m
}

// count bumps the injection counter for one fault type, but only from site
// 0's time domain: telemetry registries are not goroutine-safe, and on a
// sharded campus only LAN 0 is instrumented.
func (c *Controller) count(site int, faultType string) {
	if site != 0 {
		return
	}
	c.counter(faultType).Inc()
}

// warnf and infof log a structured fault event, gated to site 0's time
// domain for the same reason as count.
func (c *Controller) warnf(site int, format string, args ...any) {
	if site != 0 {
		return
	}
	c.events.Warnf("faults", format, args...)
}

func (c *Controller) infof(site int, format string, args ...any) {
	if site != 0 {
		return
	}
	c.events.Infof("faults", format, args...)
}

// chainFor returns the impairment chain for one site's link, creating it on
// first use. The chain attaches to the link only while it has active
// injectors.
func (c *Controller) chainFor(t siteLink) *chain {
	if ch, ok := c.chains[t]; ok {
		return ch
	}
	ch := &chain{link: c.sites[t.site].Links[t.link]}
	c.chains[t] = ch
	return ch
}

// resolveSites returns the targetable site list: Env.Sites verbatim, or the
// flat fields wrapped as the implicit single site 0.
func resolveSites(env Env) []SiteEnv {
	if len(env.Sites) > 0 {
		return env.Sites
	}
	return []SiteEnv{{Sched: env.Sched, Links: env.Links, Switch: env.Switch, Hosts: env.Hosts}}
}

// Apply validates the plan against env and arms every event on the
// owning site's scheduler. It returns the controller that tracks what the
// plan injects. Apply itself draws no randomness and schedules only
// activation callbacks, so an empty plan leaves the run untouched.
func Apply(p *Plan, env Env) (*Controller, error) {
	if env.Sched == nil {
		return nil, fmt.Errorf("faults: environment has no scheduler")
	}
	sites := resolveSites(env)
	for i, s := range sites {
		if s.Sched == nil {
			return nil, fmt.Errorf("faults: site %d has no scheduler", i)
		}
	}
	ctl := &Controller{
		env:     env,
		sites:   sites,
		chains:  make(map[siteLink]*chain),
		stats:   make([]Stats, len(sites)),
		mByType: make(map[string]*telemetry.Counter),
	}
	if env.Registry != nil {
		ctl.events = env.Registry.Events()
	}
	for i := range p.Events {
		e := &p.Events[i]
		if err := e.validate(i); err != nil {
			return nil, err
		}
		if err := ctl.arm(i, e); err != nil {
			return nil, err
		}
	}
	return ctl, nil
}

// lanTargets resolves an event's Lan selector to site indices. The filter
// keeps only sites carrying the flushed object; what is the human name for
// that object in error messages.
func (c *Controller) lanTargets(i int, e *Event, what string, has func(SiteEnv) bool) ([]int, error) {
	sel := lanAddr(wildcard)
	if e.Lan != "" {
		sel, _ = parseLanAddr(e.Lan) // validated
	}
	if sel != wildcard {
		if int(sel) >= len(c.sites) {
			return nil, fmt.Errorf("fault event %d (%s): lan %d out of range [0, %d)",
				i, e.Type, sel, len(c.sites))
		}
		if !has(c.sites[sel]) {
			return nil, fmt.Errorf("fault event %d (%s): lan %d has no %s", i, e.Type, sel, what)
		}
		return []int{int(sel)}, nil
	}
	var out []int
	for si, s := range c.sites {
		if has(s) {
			out = append(out, si)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("fault event %d (%s): environment has no %s", i, e.Type, what)
	}
	return out, nil
}

// linkTargets resolves an event's link selector against the environment.
func (c *Controller) linkTargets(i int, e *Event) ([]siteLink, error) {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("fault event %d (%s): %s", i, e.Type, fmt.Sprintf(format, args...))
	}
	if e.Link != nil {
		if *e.Link < 0 || *e.Link >= len(c.sites[0].Links) {
			return nil, fail("link %d out of range [0, %d)", *e.Link, len(c.sites[0].Links))
		}
		return []siteLink{{site: 0, link: *e.Link}}, nil
	}
	addr := linkAddr{lan: wildcard, link: wildcard}
	if e.LinkAt != "" {
		addr, _ = parseLinkAddr(e.LinkAt) // validated
	}
	siteIdx := make([]int, 0, len(c.sites))
	if addr.lan == wildcard {
		for si := range c.sites {
			siteIdx = append(siteIdx, si)
		}
	} else {
		if addr.lan >= len(c.sites) {
			return nil, fail("lan %d out of range [0, %d)", addr.lan, len(c.sites))
		}
		siteIdx = append(siteIdx, addr.lan)
	}
	var out []siteLink
	for _, si := range siteIdx {
		links := c.sites[si].Links
		if addr.link == wildcard {
			for j := range links {
				out = append(out, siteLink{site: si, link: j})
			}
			continue
		}
		if addr.link >= len(links) {
			return nil, fail("lan %d link %d out of range [0, %d)", si, addr.link, len(links))
		}
		out = append(out, siteLink{site: si, link: addr.link})
	}
	if len(out) == 0 {
		return nil, fail("environment has no links")
	}
	return out, nil
}

// hostTargets resolves an event's station selector (host-churn).
func (c *Controller) hostTargets(i int, e *Event) ([]siteHost, error) {
	if e.Host != nil {
		hi := *e.Host
		if hi < 0 || hi >= len(c.sites[0].Hosts) {
			return nil, fmt.Errorf("fault event %d (%s): host %d out of range [0, %d)",
				i, e.Type, hi, len(c.sites[0].Hosts))
		}
		return []siteHost{{site: 0, host: hi}}, nil
	}
	addr, _ := parseHostAddr(e.HostAt) // validated; validate guarantees one selector
	siteIdx := make([]int, 0, len(c.sites))
	if addr.lan == wildcard {
		for si := range c.sites {
			siteIdx = append(siteIdx, si)
		}
	} else {
		if addr.lan >= len(c.sites) {
			return nil, fmt.Errorf("fault event %d (%s): lan %d out of range [0, %d)",
				i, e.Type, addr.lan, len(c.sites))
		}
		siteIdx = append(siteIdx, addr.lan)
	}
	var out []siteHost
	for _, si := range siteIdx {
		if addr.host >= len(c.sites[si].Hosts) {
			return nil, fmt.Errorf("fault event %d (%s): lan %d host %d out of range [0, %d)",
				i, e.Type, si, addr.host, len(c.sites[si].Hosts))
		}
		out = append(out, siteHost{site: si, host: addr.host})
	}
	return out, nil
}

// trunkTargets resolves a trunk-partition selector against the backbone.
func (c *Controller) trunkTargets(i int, e *Event) ([]int, error) {
	if len(c.env.Trunks) == 0 {
		return nil, fmt.Errorf("fault event %d (%s): environment has no trunks (trunk faults need a routed campus topology)",
			i, e.Type)
	}
	addr := trunkAddr{from: wildcard, to: wildcard}
	if e.Trunk != "" {
		addr, _ = parseTrunkAddr(e.Trunk) // validated
	}
	var out []int
	for ti, t := range c.env.Trunks {
		if addr.from != wildcard && t.From != addr.from {
			continue
		}
		if addr.to != wildcard && t.To != addr.to {
			continue
		}
		out = append(out, ti)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("fault event %d (%s): no trunk matches %q (edges run lan 0..%d pairwise)",
			i, e.Type, e.Trunk, len(c.sites)-1)
	}
	return out, nil
}

// arm schedules one validated event.
func (c *Controller) arm(i int, e *Event) error {
	switch e.Type {
	case TypeGilbertElliott, TypeDuplicate, TypeReorder:
		return c.armImpairment(i, e)
	case TypeLinkFlap:
		return c.armFlap(i, e)
	case TypeHostChurn:
		return c.armChurn(i, e)
	case TypeCAMFlush:
		return c.armCAMFlush(i, e)
	case TypeRouterFlush:
		return c.armRouterFlush(i, e)
	case TypeTrunkPartition:
		return c.armTrunkPartition(i, e)
	case TypeDHCPOutage:
		if len(c.env.DHCP) == 0 {
			return fmt.Errorf("fault event %d (dhcp-outage): environment has no DHCP server", i)
		}
		c.env.Sched.At(e.at(), func() {
			for _, sv := range c.env.DHCP {
				sv.SetDown(true)
			}
			c.stats[0].DHCPOutages++
			c.count(0, TypeDHCPOutage)
			c.warnf(0, "dhcp-outage: %d server(s) down", len(c.env.DHCP))
		})
		if end, ok := e.window(); ok {
			c.env.Sched.At(end, func() {
				for _, sv := range c.env.DHCP {
					sv.SetDown(false)
				}
				c.infof(0, "dhcp-outage: service restored")
			})
		}
		return nil
	}
	return fmt.Errorf("fault event %d: unknown type %q", i, e.Type) // unreachable after validate
}

// armImpairment builds one injector per target link — each with its own
// derived random stream, drawn from the owning site's scheduler so streams
// stay decorrelated across shards — and schedules its activation window.
func (c *Controller) armImpairment(i int, e *Event) error {
	targets, err := c.linkTargets(i, e)
	if err != nil {
		return err
	}
	stream := fmt.Sprintf("faults/event%d/%s", i, e.Type)
	for _, t := range targets {
		t := t
		sched := c.sites[t.site].Sched
		st := &c.stats[t.site]
		var inj injector
		switch e.Type {
		case TypeGilbertElliott:
			inj = &gilbertElliott{
				rng:      sched.DeriveRand(stream),
				pGoodBad: e.PGoodBad, pBadGood: e.PBadGood,
				lossGood: e.LossGood, lossBad: e.LossBad,
				onDrop: func() {
					st.BurstDropped++
					c.count(t.site, TypeGilbertElliott)
				},
			}
		case TypeDuplicate:
			inj = &duplicator{
				rng:      sched.DeriveRand(stream),
				prob:     e.Prob,
				maxDelay: e.maxDelay(),
				onInject: func() {
					st.Duplicated++
					c.count(t.site, TypeDuplicate)
				},
			}
		case TypeReorder:
			inj = &reorderer{
				rng:      sched.DeriveRand(stream),
				prob:     e.Prob,
				maxDelay: e.maxDelay(),
				onInject: func() {
					st.Reordered++
					c.count(t.site, TypeReorder)
				},
			}
		}
		sched.At(e.at(), func() {
			c.chainFor(t).add(inj)
			c.warnf(t.site, "%s: window opens on link %d", e.Type, t.link)
		})
		if end, ok := e.window(); ok {
			sched.At(end, func() {
				c.chainFor(t).remove(inj)
				c.infof(t.site, "%s: window closes on link %d", e.Type, t.link)
			})
		}
	}
	return nil
}

// armFlap schedules an administrative down/up cycle on the target links.
func (c *Controller) armFlap(i int, e *Event) error {
	targets, err := c.linkTargets(i, e)
	if err != nil {
		return err
	}
	end, _ := e.window() // validate guarantees a positive duration
	for _, t := range targets {
		t := t
		sched := c.sites[t.site].Sched
		link := c.sites[t.site].Links[t.link]
		st := &c.stats[t.site]
		sched.At(e.at(), func() {
			link.SetDown(true)
			st.LinkFlaps++
			c.count(t.site, TypeLinkFlap)
			c.warnf(t.site, "link-flap: link %d down", t.link)
		})
		sched.At(end, func() {
			link.SetDown(false)
			c.infof(t.site, "link-flap: link %d up", t.link)
		})
	}
	return nil
}

// armChurn schedules a host power-cycle: NIC down for the window, then NIC
// up plus a stack restart (cache wiped, binding re-announced).
func (c *Controller) armChurn(i int, e *Event) error {
	targets, err := c.hostTargets(i, e)
	if err != nil {
		return err
	}
	end, _ := e.window() // validate guarantees a positive duration
	for _, t := range targets {
		t := t
		sched := c.sites[t.site].Sched
		h := c.sites[t.site].Hosts[t.host]
		st := &c.stats[t.site]
		sched.At(e.at(), func() {
			h.NIC().SetUp(false)
			st.HostChurns++
			c.count(t.site, TypeHostChurn)
			c.warnf(t.site, "host-churn: %s down", h.Name())
		})
		sched.At(end, func() {
			h.NIC().SetUp(true)
			h.Restart()
			c.infof(t.site, "host-churn: %s back up, cache wiped", h.Name())
		})
	}
	return nil
}

// armCAMFlush clears the target segments' switch station tables.
func (c *Controller) armCAMFlush(i int, e *Event) error {
	targets, err := c.lanTargets(i, e, "switch", func(s SiteEnv) bool { return s.Switch != nil })
	if err != nil {
		return err
	}
	for _, si := range targets {
		si := si
		s := c.sites[si]
		st := &c.stats[si]
		s.Sched.At(e.at(), func() {
			s.Switch.FlushCAM()
			st.CAMFlushes++
			c.count(si, TypeCAMFlush)
			c.warnf(si, "cam-flush: switch station table cleared")
		})
	}
	return nil
}

// armRouterFlush clears the target segments' edge-router ARP tables.
func (c *Controller) armRouterFlush(i int, e *Event) error {
	targets, err := c.lanTargets(i, e, "router (router-flush needs a routed campus topology)",
		func(s SiteEnv) bool { return s.Router != nil })
	if err != nil {
		return err
	}
	for _, si := range targets {
		si := si
		s := c.sites[si]
		st := &c.stats[si]
		s.Sched.At(e.at(), func() {
			s.Router.FlushBindings()
			st.RouterFlushes++
			c.count(si, TypeRouterFlush)
			c.warnf(si, "router-flush: lan %d edge-router ARP table cleared", si)
		})
	}
	return nil
}

// armTrunkPartition takes the selected backbone edges down for the window.
// Each edge's partition flag is owned by the sending LAN's shard, so the
// callbacks land on the trunk's source scheduler.
func (c *Controller) armTrunkPartition(i int, e *Event) error {
	targets, err := c.trunkTargets(i, e)
	if err != nil {
		return err
	}
	end, _ := e.window() // validate guarantees a positive duration
	for _, ti := range targets {
		t := c.env.Trunks[ti]
		site := t.From
		if site < 0 || site >= len(c.stats) {
			site = 0
		}
		st := &c.stats[site]
		t.Sched.At(e.at(), func() {
			t.Trunk.SetDown(true)
			st.TrunkPartitions++
			c.count(site, TypeTrunkPartition)
			c.warnf(site, "trunk-partition: trunk %d-%d down", t.From, t.To)
		})
		t.Sched.At(end, func() {
			t.Trunk.SetDown(false)
			c.infof(site, "trunk-partition: trunk %d-%d restored", t.From, t.To)
		})
	}
	return nil
}
