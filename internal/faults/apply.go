package faults

import (
	"fmt"

	"repro/internal/dhcp"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/telemetry"
)

// Env is the set of simulation objects a plan may target, assembled by the
// caller (labnet.LAN.FaultEnv for the standard workbench). Slices are
// index-addressed from fault events: Links[i] is link target i, Hosts[i] is
// host target i. Only Sched is mandatory; an event targeting an absent
// object is an Apply-time error, never a silent no-op.
type Env struct {
	Sched *sim.Scheduler
	// Links are the fault-targetable attachments, in a caller-defined,
	// deterministic order.
	Links []*netsim.Link
	// Switch receives cam-flush events.
	Switch *netsim.Switch
	// Hosts receive host-churn events.
	Hosts []*stack.Host
	// DHCP servers all go dark together during a dhcp-outage window.
	DHCP []*dhcp.Server
	// Registry, when non-nil, receives per-fault-type injection counters
	// ("faults_injected_total") and a structured event per window edge.
	Registry *telemetry.Registry
}

// Stats counts what a plan actually injected during a run.
type Stats struct {
	BurstDropped uint64 `json:"burstDropped"` // frames eaten by Gilbert-Elliott loss
	Duplicated   uint64 `json:"duplicated"`   // extra frame copies delivered
	Reordered    uint64 `json:"reordered"`    // frames delayed out of order
	LinkFlaps    uint64 `json:"linkFlaps"`    // flap windows opened
	FlapDropped  uint64 `json:"flapDropped"`  // frames offered to a downed link
	HostChurns   uint64 `json:"hostChurns"`   // host power-cycle windows opened
	CAMFlushes   uint64 `json:"camFlushes"`   // switch station tables cleared
	DHCPOutages  uint64 `json:"dhcpOutages"`  // DHCP outage windows opened
	DHCPDropped  uint64 `json:"dhcpDropped"`  // client messages servers ignored while down
}

// Total returns the number of injected fault effects of every kind.
func (s Stats) Total() uint64 {
	return s.BurstDropped + s.Duplicated + s.Reordered + s.LinkFlaps +
		s.FlapDropped + s.HostChurns + s.CAMFlushes + s.DHCPOutages + s.DHCPDropped
}

// Controller owns an armed plan's runtime state: the per-link impairment
// chains and the injection counters.
type Controller struct {
	env    Env
	chains map[int]*chain
	stats  Stats

	events  *telemetry.EventLog
	mByType map[string]*telemetry.Counter
}

// Stats returns a snapshot of everything the plan injected so far,
// including the frames its flapped links and downed DHCP servers swallowed.
func (c *Controller) Stats() Stats {
	out := c.stats
	for _, l := range c.env.Links {
		out.FlapDropped += l.Stats().DownDropped
	}
	for _, sv := range c.env.DHCP {
		out.DHCPDropped += sv.Stats().DroppedWhileDown
	}
	return out
}

// counter returns (and lazily registers) the injection counter for one
// fault type. Nil when the environment carries no registry — the *Counter
// methods are nil-safe no-ops.
func (c *Controller) counter(faultType string) *telemetry.Counter {
	if c.env.Registry == nil {
		return nil
	}
	if m, ok := c.mByType[faultType]; ok {
		return m
	}
	m := c.env.Registry.Counter("faults_injected_total", telemetry.L("type", faultType))
	c.mByType[faultType] = m
	return m
}

// chainFor returns the impairment chain for link i, creating it on first
// use. The chain attaches to the link only while it has active injectors.
func (c *Controller) chainFor(i int) *chain {
	if ch, ok := c.chains[i]; ok {
		return ch
	}
	ch := &chain{link: c.env.Links[i]}
	c.chains[i] = ch
	return ch
}

// Apply validates the plan against env and arms every event on the
// scheduler. It returns the controller that tracks what the plan injects.
// Apply itself draws no randomness and schedules only activation callbacks,
// so an empty plan leaves the run untouched.
func Apply(p *Plan, env Env) (*Controller, error) {
	if env.Sched == nil {
		return nil, fmt.Errorf("faults: environment has no scheduler")
	}
	ctl := &Controller{
		env:     env,
		chains:  make(map[int]*chain),
		mByType: make(map[string]*telemetry.Counter),
	}
	if env.Registry != nil {
		ctl.events = env.Registry.Events()
	}
	for i := range p.Events {
		e := &p.Events[i]
		if err := e.validate(i); err != nil {
			return nil, err
		}
		if err := ctl.arm(i, e); err != nil {
			return nil, err
		}
	}
	return ctl, nil
}

// linkTargets resolves an event's link selector against the environment.
func (c *Controller) linkTargets(i int, e *Event) ([]int, error) {
	if e.Link == nil {
		if len(c.env.Links) == 0 {
			return nil, fmt.Errorf("fault event %d (%s): environment has no links", i, e.Type)
		}
		all := make([]int, len(c.env.Links))
		for j := range all {
			all[j] = j
		}
		return all, nil
	}
	if *e.Link < 0 || *e.Link >= len(c.env.Links) {
		return nil, fmt.Errorf("fault event %d (%s): link %d out of range [0, %d)",
			i, e.Type, *e.Link, len(c.env.Links))
	}
	return []int{*e.Link}, nil
}

// arm schedules one validated event.
func (c *Controller) arm(i int, e *Event) error {
	switch e.Type {
	case TypeGilbertElliott, TypeDuplicate, TypeReorder:
		return c.armImpairment(i, e)
	case TypeLinkFlap:
		return c.armFlap(i, e)
	case TypeHostChurn:
		return c.armChurn(i, e)
	case TypeCAMFlush:
		if c.env.Switch == nil {
			return fmt.Errorf("fault event %d (cam-flush): environment has no switch", i)
		}
		c.env.Sched.At(e.at(), func() {
			c.env.Switch.FlushCAM()
			c.stats.CAMFlushes++
			c.counter(TypeCAMFlush).Inc()
			c.events.Warnf("faults", "cam-flush: switch station table cleared")
		})
		return nil
	case TypeDHCPOutage:
		if len(c.env.DHCP) == 0 {
			return fmt.Errorf("fault event %d (dhcp-outage): environment has no DHCP server", i)
		}
		c.env.Sched.At(e.at(), func() {
			for _, sv := range c.env.DHCP {
				sv.SetDown(true)
			}
			c.stats.DHCPOutages++
			c.counter(TypeDHCPOutage).Inc()
			c.events.Warnf("faults", "dhcp-outage: %d server(s) down", len(c.env.DHCP))
		})
		if end, ok := e.window(); ok {
			c.env.Sched.At(end, func() {
				for _, sv := range c.env.DHCP {
					sv.SetDown(false)
				}
				c.events.Infof("faults", "dhcp-outage: service restored")
			})
		}
		return nil
	}
	return fmt.Errorf("fault event %d: unknown type %q", i, e.Type) // unreachable after validate
}

// armImpairment builds one injector per target link — each with its own
// derived random stream — and schedules its activation window.
func (c *Controller) armImpairment(i int, e *Event) error {
	targets, err := c.linkTargets(i, e)
	if err != nil {
		return err
	}
	stream := fmt.Sprintf("faults/event%d/%s", i, e.Type)
	for _, li := range targets {
		li := li
		var inj injector
		switch e.Type {
		case TypeGilbertElliott:
			inj = &gilbertElliott{
				rng:      c.env.Sched.DeriveRand(stream),
				pGoodBad: e.PGoodBad, pBadGood: e.PBadGood,
				lossGood: e.LossGood, lossBad: e.LossBad,
				onDrop: func() {
					c.stats.BurstDropped++
					c.counter(TypeGilbertElliott).Inc()
				},
			}
		case TypeDuplicate:
			inj = &duplicator{
				rng:      c.env.Sched.DeriveRand(stream),
				prob:     e.Prob,
				maxDelay: e.maxDelay(),
				onInject: func() {
					c.stats.Duplicated++
					c.counter(TypeDuplicate).Inc()
				},
			}
		case TypeReorder:
			inj = &reorderer{
				rng:      c.env.Sched.DeriveRand(stream),
				prob:     e.Prob,
				maxDelay: e.maxDelay(),
				onInject: func() {
					c.stats.Reordered++
					c.counter(TypeReorder).Inc()
				},
			}
		}
		c.env.Sched.At(e.at(), func() {
			c.chainFor(li).add(inj)
			c.events.Warnf("faults", "%s: window opens on link %d", e.Type, li)
		})
		if end, ok := e.window(); ok {
			c.env.Sched.At(end, func() {
				c.chainFor(li).remove(inj)
				c.events.Infof("faults", "%s: window closes on link %d", e.Type, li)
			})
		}
	}
	return nil
}

// armFlap schedules an administrative down/up cycle on the target links.
func (c *Controller) armFlap(i int, e *Event) error {
	targets, err := c.linkTargets(i, e)
	if err != nil {
		return err
	}
	end, _ := e.window() // validate guarantees a positive duration
	for _, li := range targets {
		link := c.env.Links[li]
		li := li
		c.env.Sched.At(e.at(), func() {
			link.SetDown(true)
			c.stats.LinkFlaps++
			c.counter(TypeLinkFlap).Inc()
			c.events.Warnf("faults", "link-flap: link %d down", li)
		})
		c.env.Sched.At(end, func() {
			link.SetDown(false)
			c.events.Infof("faults", "link-flap: link %d up", li)
		})
	}
	return nil
}

// armChurn schedules a host power-cycle: NIC down for the window, then NIC
// up plus a stack restart (cache wiped, binding re-announced).
func (c *Controller) armChurn(i int, e *Event) error {
	hi := *e.Host
	if hi < 0 || hi >= len(c.env.Hosts) {
		return fmt.Errorf("fault event %d (host-churn): host %d out of range [0, %d)",
			i, hi, len(c.env.Hosts))
	}
	h := c.env.Hosts[hi]
	end, _ := e.window() // validate guarantees a positive duration
	c.env.Sched.At(e.at(), func() {
		h.NIC().SetUp(false)
		c.stats.HostChurns++
		c.counter(TypeHostChurn).Inc()
		c.events.Warnf("faults", "host-churn: %s down", h.Name())
	})
	c.env.Sched.At(end, func() {
		h.NIC().SetUp(true)
		h.Restart()
		c.events.Infof("faults", "host-churn: %s back up, cache wiped", h.Name())
	})
	return nil
}
