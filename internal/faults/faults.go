// Package faults is the deterministic fault-injection subsystem: a
// JSON-loadable plan of timed fault events, a set of injector primitives
// (Gilbert-Elliott burst loss, packet duplication, bounded reordering,
// link flaps, host churn, switch CAM flushes, DHCP-server outages), and an
// applier that arms them against a simulated LAN through hook points the
// defense schemes cannot see (the netsim link transmit path, the switch CAM,
// the host stack's power-cycle path, and the DHCP server's service state).
//
// The paper's analysis is largely about failure modes — a passive monitor
// drowning in alerts under churn, an active prober misreading an offline
// host as a spoofer, DAI going blind behind a stale snooping table. This
// package turns those qualitative claims into measurable conditions: the
// robustness experiments (Table 8, Figure 8) sweep a plan's intensity and
// plot each scheme's coverage, false positives, and time-to-detect.
//
// Determinism invariants:
//
//   - Every injector draws from its own random stream, derived from the
//     scheduler seed and the event's position in the plan
//     (sim.Scheduler.DeriveRand). Two injectors never share a stream, and
//     none touches the shared simulation stream, so arming a plan cannot
//     perturb any other stochastic choice in the run — and a disabled plan
//     is byte-for-byte invisible.
//   - All state lives inside the trial's own world (scheduler, links,
//     hosts); nothing is shared across trials, so results are identical at
//     any eval worker-pool width.
//   - Events fire at virtual instants on the trial's scheduler; wall-clock
//     time never enters.
package faults

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// Event types understood by Apply.
const (
	// TypeGilbertElliott arms two-state Markov burst loss on the targeted
	// links for the event window. Fields: PGoodBad, PBadGood, LossGood,
	// LossBad.
	TypeGilbertElliott = "gilbert-elliott"
	// TypeDuplicate delivers an extra copy of a frame with probability Prob;
	// the copy lags the original by up to MaxDelayMillis.
	TypeDuplicate = "duplicate"
	// TypeReorder delays a frame by up to MaxDelayMillis with probability
	// Prob, pushing it behind later traffic (bounded reordering).
	TypeReorder = "reorder"
	// TypeLinkFlap takes the targeted links administratively down for the
	// event window; both directions drop everything.
	TypeLinkFlap = "link-flap"
	// TypeHostChurn powers the targeted host off for the event window; on
	// recovery its ARP cache is wiped and it re-announces (stack.Host.Restart).
	TypeHostChurn = "host-churn"
	// TypeCAMFlush clears the switch's learned station table at AtSeconds.
	TypeCAMFlush = "cam-flush"
	// TypeDHCPOutage takes every DHCP server in the environment out of
	// service for the event window.
	TypeDHCPOutage = "dhcp-outage"
	// TypeTrunkPartition takes the selected backbone trunks down for the
	// event window: every frame offered to them is dropped at the source
	// edge. Only meaningful on routed topologies (Env.Trunks); requires a
	// positive duration.
	TypeTrunkPartition = "trunk-partition"
	// TypeRouterFlush clears the selected segments' edge-router learned ARP
	// tables at AtSeconds — the routed-campus analogue of a CAM flush.
	TypeRouterFlush = "router-flush"
)

// Types lists every fault type Apply understands, in documentation order.
func Types() []string {
	return []string{
		TypeGilbertElliott, TypeDuplicate, TypeReorder, TypeLinkFlap,
		TypeHostChurn, TypeCAMFlush, TypeDHCPOutage,
		TypeTrunkPartition, TypeRouterFlush,
	}
}

// Plan is a schedule of fault events, loadable from JSON (a scenario file's
// "faults" section). The zero plan is valid and injects nothing.
type Plan struct {
	Events []Event `json:"events"`
}

// Event is one scheduled fault. Which fields matter depends on Type; Apply
// rejects plans whose events are incomplete or target nothing.
type Event struct {
	// Type selects the injector (the Type* constants).
	Type string `json:"type"`
	// AtSeconds is when the fault begins.
	AtSeconds float64 `json:"atSeconds"`
	// DurationSeconds bounds windowed faults. Zero means "until the end of
	// the run" for impairment windows and DHCP outages; link flaps and host
	// churn require an explicit positive duration (a flap that never ends is
	// a misconfiguration, not a fault model).
	DurationSeconds float64 `json:"durationSeconds,omitempty"`
	// Link targets one link by index (see Env.Links); nil targets every
	// link in the environment. Ignored by host/switch/DHCP faults. On a
	// routed topology a bare index addresses LAN 0; use LinkAt to reach
	// other segments.
	Link *int `json:"link,omitempty"`
	// LinkAt targets links hierarchically on any topology: "lan:3/link:7",
	// "lan:*/link:0", "lan:2/link:*", or "lan:*". A flat LAN is the
	// single-site topology lan 0, so "lan:0/link:3" means exactly
	// `"link": 3`. Mutually exclusive with Link.
	LinkAt string `json:"linkAt,omitempty"`
	// Host targets one station by index for host-churn (LAN 0 on a routed
	// topology).
	Host *int `json:"host,omitempty"`
	// HostAt targets one station hierarchically for host-churn:
	// "lan:3/host:2", or "lan:*/host:2" for that index on every segment.
	// Mutually exclusive with Host.
	HostAt string `json:"hostAt,omitempty"`
	// Trunk selects backbone edges for trunk-partition: "trunk:2-5",
	// "trunk:2-*", "trunk:*-5", or "trunk:*". Empty partitions every edge.
	Trunk string `json:"trunk,omitempty"`
	// Lan scopes cam-flush and router-flush to segments: "lan:3" or
	// "lan:*". Empty targets every segment that has the flushed object.
	Lan string `json:"lan,omitempty"`

	// Gilbert-Elliott channel parameters: per-frame transition
	// probabilities between the Good and Bad states and the loss
	// probability inside each.
	PGoodBad float64 `json:"pGoodBad,omitempty"`
	PBadGood float64 `json:"pBadGood,omitempty"`
	LossGood float64 `json:"lossGood,omitempty"`
	LossBad  float64 `json:"lossBad,omitempty"`

	// Prob is the per-frame injection probability for duplicate/reorder.
	Prob float64 `json:"prob,omitempty"`
	// MaxDelayMillis bounds the extra delay a duplicate or reordered frame
	// receives (default 1ms).
	MaxDelayMillis float64 `json:"maxDelayMillis,omitempty"`
}

// at returns the event's start instant.
func (e *Event) at() time.Duration {
	return time.Duration(e.AtSeconds * float64(time.Second))
}

// window returns the event's end instant and whether one was given.
func (e *Event) window() (time.Duration, bool) {
	if e.DurationSeconds <= 0 {
		return 0, false
	}
	return e.at() + time.Duration(e.DurationSeconds*float64(time.Second)), true
}

// maxDelay returns the bounded extra delay for duplicate/reorder events.
func (e *Event) maxDelay() time.Duration {
	if e.MaxDelayMillis <= 0 {
		return time.Millisecond
	}
	return time.Duration(e.MaxDelayMillis * float64(time.Millisecond))
}

// Load parses a Plan from JSON, rejecting unknown fields so scenario typos
// fail loudly instead of silently injecting nothing.
func Load(r io.Reader) (*Plan, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("parse fault plan: %w", err)
	}
	return &p, nil
}

// validate checks one event's shape independent of any environment.
func (e *Event) validate(i int) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("fault event %d (%s): %s", i, e.Type, fmt.Sprintf(format, args...))
	}
	if e.AtSeconds < 0 {
		return fail("negative atSeconds")
	}
	if e.DurationSeconds < 0 {
		return fail("negative durationSeconds")
	}
	prob := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fail("%s = %v outside [0, 1]", name, v)
		}
		return nil
	}
	if e.Link != nil && e.LinkAt != "" {
		return fail("link and linkAt are mutually exclusive")
	}
	if e.LinkAt != "" {
		if _, err := parseLinkAddr(e.LinkAt); err != nil {
			return fail("%v", err)
		}
	}
	if e.Host != nil && e.HostAt != "" {
		return fail("host and hostAt are mutually exclusive")
	}
	if e.HostAt != "" {
		if _, err := parseHostAddr(e.HostAt); err != nil {
			return fail("%v", err)
		}
	}
	if e.Trunk != "" {
		if _, err := parseTrunkAddr(e.Trunk); err != nil {
			return fail("%v", err)
		}
	}
	if e.Lan != "" {
		if _, err := parseLanAddr(e.Lan); err != nil {
			return fail("%v", err)
		}
	}
	switch e.Type {
	case TypeGilbertElliott:
		for _, p := range []struct {
			name string
			v    float64
		}{
			{"pGoodBad", e.PGoodBad}, {"pBadGood", e.PBadGood},
			{"lossGood", e.LossGood}, {"lossBad", e.LossBad},
		} {
			if err := prob(p.name, p.v); err != nil {
				return err
			}
		}
		if e.PGoodBad == 0 && e.LossGood == 0 {
			return fail("channel can never lose a frame (pGoodBad and lossGood both zero)")
		}
	case TypeDuplicate, TypeReorder:
		if err := prob("prob", e.Prob); err != nil {
			return err
		}
		if e.Prob == 0 {
			return fail("prob is zero; the event would never fire")
		}
	case TypeLinkFlap, TypeHostChurn, TypeTrunkPartition:
		if e.DurationSeconds <= 0 {
			return fail("requires a positive durationSeconds")
		}
		if e.Type == TypeHostChurn && e.Host == nil && e.HostAt == "" {
			return fail("requires a host index (host or hostAt)")
		}
	case TypeCAMFlush, TypeDHCPOutage, TypeRouterFlush:
		// No extra fields.
	default:
		return fmt.Errorf("fault event %d: unknown type %q (valid types: %s)",
			i, e.Type, strings.Join(Types(), ", "))
	}
	return nil
}
