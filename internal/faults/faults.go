// Package faults is the deterministic fault-injection subsystem: a
// JSON-loadable plan of timed fault events, a set of injector primitives
// (Gilbert-Elliott burst loss, packet duplication, bounded reordering,
// link flaps, host churn, switch CAM flushes, DHCP-server outages), and an
// applier that arms them against a simulated LAN through hook points the
// defense schemes cannot see (the netsim link transmit path, the switch CAM,
// the host stack's power-cycle path, and the DHCP server's service state).
//
// The paper's analysis is largely about failure modes — a passive monitor
// drowning in alerts under churn, an active prober misreading an offline
// host as a spoofer, DAI going blind behind a stale snooping table. This
// package turns those qualitative claims into measurable conditions: the
// robustness experiments (Table 8, Figure 8) sweep a plan's intensity and
// plot each scheme's coverage, false positives, and time-to-detect.
//
// Determinism invariants:
//
//   - Every injector draws from its own random stream, derived from the
//     scheduler seed and the event's position in the plan
//     (sim.Scheduler.DeriveRand). Two injectors never share a stream, and
//     none touches the shared simulation stream, so arming a plan cannot
//     perturb any other stochastic choice in the run — and a disabled plan
//     is byte-for-byte invisible.
//   - All state lives inside the trial's own world (scheduler, links,
//     hosts); nothing is shared across trials, so results are identical at
//     any eval worker-pool width.
//   - Events fire at virtual instants on the trial's scheduler; wall-clock
//     time never enters.
package faults

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Event types understood by Apply.
const (
	// TypeGilbertElliott arms two-state Markov burst loss on the targeted
	// links for the event window. Fields: PGoodBad, PBadGood, LossGood,
	// LossBad.
	TypeGilbertElliott = "gilbert-elliott"
	// TypeDuplicate delivers an extra copy of a frame with probability Prob;
	// the copy lags the original by up to MaxDelayMillis.
	TypeDuplicate = "duplicate"
	// TypeReorder delays a frame by up to MaxDelayMillis with probability
	// Prob, pushing it behind later traffic (bounded reordering).
	TypeReorder = "reorder"
	// TypeLinkFlap takes the targeted links administratively down for the
	// event window; both directions drop everything.
	TypeLinkFlap = "link-flap"
	// TypeHostChurn powers the targeted host off for the event window; on
	// recovery its ARP cache is wiped and it re-announces (stack.Host.Restart).
	TypeHostChurn = "host-churn"
	// TypeCAMFlush clears the switch's learned station table at AtSeconds.
	TypeCAMFlush = "cam-flush"
	// TypeDHCPOutage takes every DHCP server in the environment out of
	// service for the event window.
	TypeDHCPOutage = "dhcp-outage"
)

// Plan is a schedule of fault events, loadable from JSON (a scenario file's
// "faults" section). The zero plan is valid and injects nothing.
type Plan struct {
	Events []Event `json:"events"`
}

// Event is one scheduled fault. Which fields matter depends on Type; Apply
// rejects plans whose events are incomplete or target nothing.
type Event struct {
	// Type selects the injector (the Type* constants).
	Type string `json:"type"`
	// AtSeconds is when the fault begins.
	AtSeconds float64 `json:"atSeconds"`
	// DurationSeconds bounds windowed faults. Zero means "until the end of
	// the run" for impairment windows and DHCP outages; link flaps and host
	// churn require an explicit positive duration (a flap that never ends is
	// a misconfiguration, not a fault model).
	DurationSeconds float64 `json:"durationSeconds,omitempty"`
	// Link targets one link by index (see Env.Links); nil targets every
	// link in the environment. Ignored by host/switch/DHCP faults.
	Link *int `json:"link,omitempty"`
	// Host targets one station by index for host-churn.
	Host *int `json:"host,omitempty"`

	// Gilbert-Elliott channel parameters: per-frame transition
	// probabilities between the Good and Bad states and the loss
	// probability inside each.
	PGoodBad float64 `json:"pGoodBad,omitempty"`
	PBadGood float64 `json:"pBadGood,omitempty"`
	LossGood float64 `json:"lossGood,omitempty"`
	LossBad  float64 `json:"lossBad,omitempty"`

	// Prob is the per-frame injection probability for duplicate/reorder.
	Prob float64 `json:"prob,omitempty"`
	// MaxDelayMillis bounds the extra delay a duplicate or reordered frame
	// receives (default 1ms).
	MaxDelayMillis float64 `json:"maxDelayMillis,omitempty"`
}

// at returns the event's start instant.
func (e *Event) at() time.Duration {
	return time.Duration(e.AtSeconds * float64(time.Second))
}

// window returns the event's end instant and whether one was given.
func (e *Event) window() (time.Duration, bool) {
	if e.DurationSeconds <= 0 {
		return 0, false
	}
	return e.at() + time.Duration(e.DurationSeconds*float64(time.Second)), true
}

// maxDelay returns the bounded extra delay for duplicate/reorder events.
func (e *Event) maxDelay() time.Duration {
	if e.MaxDelayMillis <= 0 {
		return time.Millisecond
	}
	return time.Duration(e.MaxDelayMillis * float64(time.Millisecond))
}

// Load parses a Plan from JSON, rejecting unknown fields so scenario typos
// fail loudly instead of silently injecting nothing.
func Load(r io.Reader) (*Plan, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("parse fault plan: %w", err)
	}
	return &p, nil
}

// validate checks one event's shape independent of any environment.
func (e *Event) validate(i int) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("fault event %d (%s): %s", i, e.Type, fmt.Sprintf(format, args...))
	}
	if e.AtSeconds < 0 {
		return fail("negative atSeconds")
	}
	if e.DurationSeconds < 0 {
		return fail("negative durationSeconds")
	}
	prob := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fail("%s = %v outside [0, 1]", name, v)
		}
		return nil
	}
	switch e.Type {
	case TypeGilbertElliott:
		for _, p := range []struct {
			name string
			v    float64
		}{
			{"pGoodBad", e.PGoodBad}, {"pBadGood", e.PBadGood},
			{"lossGood", e.LossGood}, {"lossBad", e.LossBad},
		} {
			if err := prob(p.name, p.v); err != nil {
				return err
			}
		}
		if e.PGoodBad == 0 && e.LossGood == 0 {
			return fail("channel can never lose a frame (pGoodBad and lossGood both zero)")
		}
	case TypeDuplicate, TypeReorder:
		if err := prob("prob", e.Prob); err != nil {
			return err
		}
		if e.Prob == 0 {
			return fail("prob is zero; the event would never fire")
		}
	case TypeLinkFlap, TypeHostChurn:
		if e.DurationSeconds <= 0 {
			return fail("requires a positive durationSeconds")
		}
		if e.Type == TypeHostChurn && e.Host == nil {
			return fail("requires a host index")
		}
	case TypeCAMFlush, TypeDHCPOutage:
		// No extra fields.
	default:
		return fmt.Errorf("fault event %d: unknown type %q", i, e.Type)
	}
	return nil
}
