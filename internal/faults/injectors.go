package faults

import (
	"math/rand"
	"time"

	"repro/internal/netsim"
)

// injector is one armed impairment primitive. Each owns a private random
// stream; Judge is only consulted while the injector's window is active.
type injector interface {
	netsim.Impairment
}

// gilbertElliott is the classic two-state Markov burst-loss channel: a Good
// state that rarely (or never) loses frames and a Bad state that loses most
// of them, with per-frame transition probabilities between the two. Mean
// burst length is 1/pBadGood frames; the stationary probability of Bad is
// pGoodBad/(pGoodBad+pBadGood), making the long-run loss rate
//
//	(1-πB)·lossGood + πB·lossBad
//
// which the property test pins against the simulated channel.
type gilbertElliott struct {
	rng                *rand.Rand
	pGoodBad, pBadGood float64
	lossGood, lossBad  float64
	bad                bool
	onDrop             func()
}

// Judge advances the channel one frame: transition first, then a loss draw
// in the resulting state.
func (g *gilbertElliott) Judge(int) netsim.Verdict {
	if g.bad {
		if g.rng.Float64() < g.pBadGood {
			g.bad = false
		}
	} else if g.rng.Float64() < g.pGoodBad {
		g.bad = true
	}
	loss := g.lossGood
	if g.bad {
		loss = g.lossBad
	}
	if loss > 0 && g.rng.Float64() < loss {
		if g.onDrop != nil {
			g.onDrop()
		}
		return netsim.Verdict{Drop: true}
	}
	return netsim.Verdict{}
}

// analyticLossRate returns the channel's long-run loss probability.
func (g *gilbertElliott) analyticLossRate() float64 {
	piBad := 0.0
	if s := g.pGoodBad + g.pBadGood; s > 0 {
		piBad = g.pGoodBad / s
	} else if g.bad {
		piBad = 1
	}
	return (1-piBad)*g.lossGood + piBad*g.lossBad
}

// duplicator delivers an extra copy of a frame with probability prob, the
// copy trailing the original by a uniform delay in (0, maxDelay].
type duplicator struct {
	rng      *rand.Rand
	prob     float64
	maxDelay time.Duration
	onInject func()
}

func (d *duplicator) Judge(int) netsim.Verdict {
	if d.rng.Float64() >= d.prob {
		return netsim.Verdict{}
	}
	if d.onInject != nil {
		d.onInject()
	}
	return netsim.Verdict{
		Duplicate:      true,
		DuplicateDelay: uniformDelay(d.rng, d.maxDelay),
	}
}

// reorderer holds a frame back by a uniform delay in (0, maxDelay] with
// probability prob. Because the delay is bounded, so is the reordering
// depth — frames never starve, they just arrive behind newer traffic.
type reorderer struct {
	rng      *rand.Rand
	prob     float64
	maxDelay time.Duration
	onInject func()
}

func (r *reorderer) Judge(int) netsim.Verdict {
	if r.rng.Float64() >= r.prob {
		return netsim.Verdict{}
	}
	if r.onInject != nil {
		r.onInject()
	}
	return netsim.Verdict{Delay: uniformDelay(r.rng, r.maxDelay)}
}

// uniformDelay draws from (0, max], never zero so an injected delay always
// has an effect.
func uniformDelay(rng *rand.Rand, max time.Duration) time.Duration {
	if max <= 0 {
		return time.Nanosecond
	}
	return time.Duration(rng.Int63n(int64(max))) + 1
}

// chain is the per-link impairment installed into netsim: the ordered set of
// currently active injectors on that link. Activation windows add and remove
// injectors; order follows plan order so composition is deterministic. The
// chain installs itself on the link only while injectors are active: outside
// every window the link reverts to a plain pipe, so the forwarding hot path
// (and its batched-flood fast path) pays for faults only while they exist.
type chain struct {
	link   *netsim.Link
	active []injector
}

// Judge consults every active injector. The first drop wins (later
// injectors never see the frame, as in a real pipeline of impairments);
// delays add; duplication takes the latest duplicate delay.
func (c *chain) Judge(wireLen int) netsim.Verdict {
	var out netsim.Verdict
	for _, inj := range c.active {
		v := inj.Judge(wireLen)
		if v.Drop {
			return netsim.Verdict{Drop: true}
		}
		out.Delay += v.Delay
		if v.Duplicate {
			out.Duplicate = true
			if v.DuplicateDelay > out.DuplicateDelay {
				out.DuplicateDelay = v.DuplicateDelay
			}
		}
	}
	return out
}

// add appends an injector to the active set, installing the chain on its
// link when this opens the first window.
func (c *chain) add(inj injector) {
	if len(c.active) == 0 {
		c.link.SetImpairment(c)
	}
	c.active = append(c.active, inj)
}

// remove deletes an injector from the active set, preserving order.
func (c *chain) remove(inj injector) {
	for i, cur := range c.active {
		if cur == inj {
			c.active = append(c.active[:i], c.active[i+1:]...)
			if len(c.active) == 0 {
				c.link.SetImpairment(nil)
			}
			return
		}
	}
}
