package faults

import (
	"math"
	"math/rand"
	"testing"
)

// TestGilbertElliottLongRunLossMatchesAnalytic pins the simulated channel's
// empirical loss rate to the closed form (1-πB)·lossGood + πB·lossBad with
// πB = pGoodBad/(pGoodBad+pBadGood). Half a million frames keeps the
// standard error of the estimate well under the 1.5-point tolerance even for
// the burstiest parameter set (sticky states inflate the variance of the
// loss-count far beyond the i.i.d. binomial value).
func TestGilbertElliottLongRunLossMatchesAnalytic(t *testing.T) {
	cases := []struct {
		name                                  string
		pGoodBad, pBadGood, lossGood, lossBad float64
	}{
		{"mild-wifi", 0.01, 0.30, 0.0, 0.50},
		{"bursty-backbone", 0.05, 0.25, 0.0, 0.80},
		{"sticky-bad", 0.02, 0.05, 0.0, 0.90},
		{"noisy-good-state", 0.10, 0.40, 0.05, 0.60},
		{"symmetric", 0.20, 0.20, 0.0, 1.0},
	}
	const frames = 500_000
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := &gilbertElliott{
				rng:      rand.New(rand.NewSource(12345)),
				pGoodBad: tc.pGoodBad, pBadGood: tc.pBadGood,
				lossGood: tc.lossGood, lossBad: tc.lossBad,
			}
			dropped := 0
			for i := 0; i < frames; i++ {
				if g.Judge(64).Drop {
					dropped++
				}
			}
			got := float64(dropped) / frames
			want := g.analyticLossRate()
			if math.Abs(got-want) > 0.015 {
				t.Fatalf("empirical loss %.4f, analytic %.4f (|Δ| > 0.015)", got, want)
			}
		})
	}
}

// TestGilbertElliottDegenerateStationary covers the closed form's edge case:
// with both transition probabilities zero the channel never leaves its
// initial state, so the analytic rate must follow that state's loss.
func TestGilbertElliottDegenerateStationary(t *testing.T) {
	g := &gilbertElliott{lossGood: 0.1, lossBad: 0.9}
	if got := g.analyticLossRate(); got != 0.1 {
		t.Fatalf("stuck-in-good rate = %v, want 0.1", got)
	}
	g.bad = true
	if got := g.analyticLossRate(); got != 0.9 {
		t.Fatalf("stuck-in-bad rate = %v, want 0.9", got)
	}
}

// TestGilbertElliottBurstiness sanity-checks the defining property of the
// model versus a Bernoulli channel of equal average loss: consecutive drops
// (bursts) are far more likely. We compare P(drop | previous dropped)
// against the unconditional loss rate.
func TestGilbertElliottBurstiness(t *testing.T) {
	g := &gilbertElliott{
		rng:      rand.New(rand.NewSource(7)),
		pGoodBad: 0.02, pBadGood: 0.20, lossBad: 0.9,
	}
	const frames = 200_000
	drops, pairs, chained := 0, 0, 0
	prev := false
	for i := 0; i < frames; i++ {
		d := g.Judge(64).Drop
		if d {
			drops++
		}
		if prev {
			pairs++
			if d {
				chained++
			}
		}
		prev = d
	}
	uncond := float64(drops) / frames
	cond := float64(chained) / float64(pairs)
	if cond < 3*uncond {
		t.Fatalf("P(drop|drop) = %.3f not ≫ P(drop) = %.3f — channel is not bursty", cond, uncond)
	}
}
