package faults

import (
	"strings"
	"testing"
)

func TestParseLinkAddr(t *testing.T) {
	good := []struct {
		in   string
		want linkAddr
	}{
		{"lan:3/link:7", linkAddr{lan: 3, link: 7}},
		{"lan:*/link:7", linkAddr{lan: wildcard, link: 7}},
		{"lan:3/link:*", linkAddr{lan: 3, link: wildcard}},
		{"lan:3", linkAddr{lan: 3, link: wildcard}},
		{"lan:*", linkAddr{lan: wildcard, link: wildcard}},
		{"lan:0/link:0", linkAddr{lan: 0, link: 0}},
	}
	for _, tc := range good {
		got, err := parseLinkAddr(tc.in)
		if err != nil {
			t.Fatalf("parseLinkAddr(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Fatalf("parseLinkAddr(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
	bad := []string{
		"", "link:3", "lan:3/port:2", "lan:-1/link:0", "lan:x/link:0",
		"lan:3/link:", "lan:/link:2", "lan:3/link:2/extra:1", "switch:0",
	}
	for _, in := range bad {
		if _, err := parseLinkAddr(in); err == nil {
			t.Fatalf("parseLinkAddr(%q): want error", in)
		}
	}
}

func TestParseHostAddr(t *testing.T) {
	got, err := parseHostAddr("lan:3/host:2")
	if err != nil || got != (hostAddr{lan: 3, host: 2}) {
		t.Fatalf("lan:3/host:2 = %+v, %v", got, err)
	}
	got, err = parseHostAddr("lan:*/host:1")
	if err != nil || got != (hostAddr{lan: wildcard, host: 1}) {
		t.Fatalf("lan:*/host:1 = %+v, %v", got, err)
	}
	bad := []string{"", "lan:3", "host:2", "lan:3/host:*", "lan:3/link:2", "lan:*/host:-4"}
	for _, in := range bad {
		if _, err := parseHostAddr(in); err == nil {
			t.Fatalf("parseHostAddr(%q): want error", in)
		}
	}
	if _, err := parseHostAddr("lan:3/host:*"); err == nil || !strings.Contains(err.Error(), "concrete") {
		t.Fatalf("wildcard host should explain itself, got %v", err)
	}
}

func TestParseTrunkAddr(t *testing.T) {
	good := []struct {
		in   string
		want trunkAddr
	}{
		{"trunk:2-5", trunkAddr{from: 2, to: 5}},
		{"trunk:2-*", trunkAddr{from: 2, to: wildcard}},
		{"trunk:*-5", trunkAddr{from: wildcard, to: 5}},
		{"trunk:*", trunkAddr{from: wildcard, to: wildcard}},
	}
	for _, tc := range good {
		got, err := parseTrunkAddr(tc.in)
		if err != nil {
			t.Fatalf("parseTrunkAddr(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Fatalf("parseTrunkAddr(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
	bad := []string{"", "trunk:", "trunk:2", "trunk:2-x", "lan:2-5", "trunk:2+5"}
	for _, in := range bad {
		if _, err := parseTrunkAddr(in); err == nil {
			t.Fatalf("parseTrunkAddr(%q): want error", in)
		}
	}
}

func TestParseLanAddr(t *testing.T) {
	if got, err := parseLanAddr("lan:4"); err != nil || got != 4 {
		t.Fatalf("lan:4 = %v, %v", got, err)
	}
	if got, err := parseLanAddr("lan:*"); err != nil || got != wildcard {
		t.Fatalf("lan:* = %v, %v", got, err)
	}
	for _, in := range []string{"", "4", "lan:", "lan:-2", "trunk:4"} {
		if _, err := parseLanAddr(in); err == nil {
			t.Fatalf("parseLanAddr(%q): want error", in)
		}
	}
}
