// Package trace records frames observed at taps into an in-memory capture
// that can be filtered, summarized, and exported as JSON — the framework's
// equivalent of a pcap file plus the first page of Wireshark statistics.
package trace

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/arppkt"
	"repro/internal/frame"
	"repro/internal/netsim"
	"repro/internal/telemetry"
)

// Record is one captured frame with decoded summaries.
type Record struct {
	At      time.Duration  `json:"at"`
	Port    int            `json:"port"`
	Src     string         `json:"src"`
	Dst     string         `json:"dst"`
	Type    string         `json:"type"`
	WireLen int            `json:"wireLen"`
	Info    string         `json:"info,omitempty"`
	ARP     *arppkt.Packet `json:"-"`
	Frame   *frame.Frame   `json:"-"`
}

// Capture accumulates records from one or more taps. Captures are bounded:
// when max is exceeded the oldest records are discarded, so long simulations
// cannot exhaust memory. Retention is a circular buffer — once full, each
// new record overwrites the oldest in place, so steady-state appends are
// O(1) regardless of capacity.
type Capture struct {
	max     int
	buf     []Record // circular storage, capacity max
	head    int      // index of the oldest record when full
	n       int      // records currently retained (≤ max)
	dropped uint64
	stats   Stats

	// Telemetry handles; nil (no-op) unless Instrument is called.
	cFrames, cBytes, cDropped *telemetry.Counter
}

// Stats summarizes a capture.
type Stats struct {
	Frames     uint64            `json:"frames"`
	Bytes      uint64            `json:"bytes"`
	ByType     map[string]uint64 `json:"byType"`
	ARPOps     map[string]uint64 `json:"arpOps"`
	Gratuitous uint64            `json:"gratuitous"`
	Broadcast  uint64            `json:"broadcast"`
	Dropped    uint64            `json:"dropped"`
}

// NewCapture creates a capture retaining at most max records (0 means the
// default of 65536).
func NewCapture(max int) *Capture {
	if max <= 0 {
		max = 65536
	}
	return &Capture{
		max:   max,
		stats: Stats{ByType: make(map[string]uint64), ARPOps: make(map[string]uint64)},
	}
}

// Instrument exposes the capture as telemetry: capture_frames_total and
// capture_bytes_total count what the tap observed, and
// capture_dropped_total counts records the ring bound discarded — the
// counter that makes a lossy (undersized) capture visible on /metrics
// instead of silently truncating what the analysis downstream sees.
func (c *Capture) Instrument(reg *telemetry.Registry) {
	c.cFrames = reg.Counter("capture_frames_total")
	c.cBytes = reg.Counter("capture_bytes_total")
	c.cDropped = reg.Counter("capture_dropped_total")
}

// Tap returns a netsim.TapFunc that feeds this capture; install it on a
// switch or hub.
func (c *Capture) Tap() netsim.TapFunc {
	return func(ev netsim.TapEvent) { c.observe(ev) }
}

// observe ingests one tap event.
func (c *Capture) observe(ev netsim.TapEvent) {
	if c.max <= 0 {
		c.max = 65536 // zero-value Capture gets the default bound
	}
	if c.stats.ByType == nil {
		c.stats.ByType = make(map[string]uint64)
		c.stats.ARPOps = make(map[string]uint64)
	}
	r := Record{
		At:      ev.At,
		Port:    ev.Port,
		Src:     ev.Frame.Src.String(),
		Dst:     ev.Frame.Dst.String(),
		Type:    ev.Frame.Type.String(),
		WireLen: ev.WireLen,
		Frame:   ev.Frame,
	}
	c.stats.Frames++
	c.stats.Bytes += uint64(ev.WireLen)
	if c.cFrames != nil {
		c.cFrames.Inc()
		c.cBytes.Add(uint64(ev.WireLen))
	}
	c.stats.ByType[r.Type]++
	if ev.Frame.IsBroadcast() {
		c.stats.Broadcast++
	}
	if ev.Frame.Type == frame.TypeARP {
		if p, err := arppkt.DecodeFrame(ev.Frame); err == nil {
			r.ARP = p
			r.Info = p.String()
			c.stats.ARPOps[p.Op.String()]++
			if p.IsGratuitous() {
				c.stats.Gratuitous++
			}
		}
	}
	if c.buf == nil {
		c.buf = make([]Record, 0, c.max)
	}
	if c.n < c.max {
		c.buf = append(c.buf, r)
		c.n++
		return
	}
	// Full: overwrite the oldest slot and advance the head.
	c.buf[c.head] = r
	c.head = (c.head + 1) % c.max
	c.dropped++
	if c.cDropped != nil {
		c.cDropped.Inc()
	}
}

// Len returns the number of retained records.
func (c *Capture) Len() int { return c.n }

// Dropped returns how many records were discarded by the ring bound.
func (c *Capture) Dropped() uint64 { return c.dropped }

// each calls fn for every retained record, oldest first.
func (c *Capture) each(fn func(Record) error) error {
	for i := 0; i < c.n; i++ {
		if err := fn(c.buf[(c.head+i)%c.max]); err != nil {
			return err
		}
	}
	return nil
}

// Stats returns a copy of the capture summary, including how many records
// the ring bound discarded.
func (c *Capture) Stats() Stats {
	out := c.stats
	out.Dropped = c.dropped
	out.ByType = make(map[string]uint64, len(c.stats.ByType))
	for k, v := range c.stats.ByType {
		out.ByType[k] = v
	}
	out.ARPOps = make(map[string]uint64, len(c.stats.ARPOps))
	for k, v := range c.stats.ARPOps {
		out.ARPOps[k] = v
	}
	return out
}

// Records returns the retained records, oldest first. The slice is a copy;
// the frames inside are shared and must be treated as read-only.
func (c *Capture) Records() []Record {
	out := make([]Record, 0, c.n)
	c.each(func(r Record) error {
		out = append(out, r)
		return nil
	})
	return out
}

// Filter returns the retained records matching pred, oldest first.
func (c *Capture) Filter(pred func(Record) bool) []Record {
	var out []Record
	c.each(func(r Record) error {
		if pred(r) {
			out = append(out, r)
		}
		return nil
	})
	return out
}

// ARPOnly returns only records carrying decodable ARP packets.
func (c *Capture) ARPOnly() []Record {
	return c.Filter(func(r Record) bool { return r.ARP != nil })
}

// WriteJSON exports records and stats as a single JSON document. It goes
// through the Stats/Records snapshot path, so the document is ordered
// oldest-first and safe against later capture activity.
func (c *Capture) WriteJSON(w io.Writer) error {
	doc := struct {
		Stats   Stats    `json:"stats"`
		Dropped uint64   `json:"dropped"`
		Records []Record `json:"records"`
	}{Stats: c.Stats(), Dropped: c.dropped, Records: c.Records()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("encode capture: %w", err)
	}
	return nil
}

// pcap constants (libpcap classic format, microsecond timestamps).
const (
	pcapMagic    = 0xa1b2c3d4
	pcapVersionM = 2
	pcapVersionN = 4
	pcapSnapLen  = 65535
	pcapEthernet = 1
)

// WritePCAP exports the retained frames as a classic libpcap capture that
// Wireshark and tcpdump open directly; virtual capture timestamps map to
// seconds/microseconds since the Unix epoch.
func (c *Capture) WritePCAP(w io.Writer) error {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], pcapMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], pcapVersionM)
	binary.LittleEndian.PutUint16(hdr[6:8], pcapVersionN)
	binary.LittleEndian.PutUint32(hdr[16:20], pcapSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], pcapEthernet)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcap header: %w", err)
	}
	i := 0
	return c.each(func(r Record) error {
		i++
		wire, err := r.Frame.Encode()
		if err != nil {
			return fmt.Errorf("pcap record %d: %w", i-1, err)
		}
		var rec [16]byte
		binary.LittleEndian.PutUint32(rec[0:4], uint32(r.At/time.Second))
		binary.LittleEndian.PutUint32(rec[4:8], uint32((r.At%time.Second)/time.Microsecond))
		binary.LittleEndian.PutUint32(rec[8:12], uint32(len(wire)))
		binary.LittleEndian.PutUint32(rec[12:16], uint32(len(wire)))
		if _, err := w.Write(rec[:]); err != nil {
			return fmt.Errorf("pcap record %d: %w", i-1, err)
		}
		if _, err := w.Write(wire); err != nil {
			return fmt.Errorf("pcap record %d: %w", i-1, err)
		}
		return nil
	})
}
