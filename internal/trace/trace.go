// Package trace records frames observed at taps into an in-memory capture
// that can be filtered, summarized, and exported as JSON — the framework's
// equivalent of a pcap file plus the first page of Wireshark statistics.
package trace

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/arppkt"
	"repro/internal/frame"
	"repro/internal/netsim"
)

// Record is one captured frame with decoded summaries.
type Record struct {
	At      time.Duration   `json:"at"`
	Port    int             `json:"port"`
	Src     string          `json:"src"`
	Dst     string          `json:"dst"`
	Type    string          `json:"type"`
	WireLen int             `json:"wireLen"`
	Info    string          `json:"info,omitempty"`
	ARP     *arppkt.Packet  `json:"-"`
	Frame   *frame.Frame    `json:"-"`
}

// Capture accumulates records from one or more taps. The zero value is
// ready to use. Captures are bounded: when max is exceeded the oldest
// records are discarded (ring semantics), so long simulations cannot
// exhaust memory.
type Capture struct {
	max     int
	records []Record
	dropped uint64
	stats   Stats
}

// Stats summarizes a capture.
type Stats struct {
	Frames      uint64                      `json:"frames"`
	Bytes       uint64                      `json:"bytes"`
	ByType      map[string]uint64           `json:"byType"`
	ARPOps      map[string]uint64           `json:"arpOps"`
	Gratuitous  uint64                      `json:"gratuitous"`
	Broadcast   uint64                      `json:"broadcast"`
}

// NewCapture creates a capture retaining at most max records (0 means the
// default of 65536).
func NewCapture(max int) *Capture {
	if max <= 0 {
		max = 65536
	}
	return &Capture{
		max:   max,
		stats: Stats{ByType: make(map[string]uint64), ARPOps: make(map[string]uint64)},
	}
}

// Tap returns a netsim.TapFunc that feeds this capture; install it on a
// switch or hub.
func (c *Capture) Tap() netsim.TapFunc {
	return func(ev netsim.TapEvent) { c.observe(ev) }
}

// observe ingests one tap event.
func (c *Capture) observe(ev netsim.TapEvent) {
	r := Record{
		At:      ev.At,
		Port:    ev.Port,
		Src:     ev.Frame.Src.String(),
		Dst:     ev.Frame.Dst.String(),
		Type:    ev.Frame.Type.String(),
		WireLen: ev.WireLen,
		Frame:   ev.Frame,
	}
	c.stats.Frames++
	c.stats.Bytes += uint64(ev.WireLen)
	c.stats.ByType[r.Type]++
	if ev.Frame.IsBroadcast() {
		c.stats.Broadcast++
	}
	if ev.Frame.Type == frame.TypeARP {
		if p, err := arppkt.Decode(ev.Frame.Payload); err == nil {
			r.ARP = p
			r.Info = p.String()
			c.stats.ARPOps[p.Op.String()]++
			if p.IsGratuitous() {
				c.stats.Gratuitous++
			}
		}
	}
	if len(c.records) >= c.max {
		c.records = c.records[1:]
		c.dropped++
	}
	c.records = append(c.records, r)
}

// Len returns the number of retained records.
func (c *Capture) Len() int { return len(c.records) }

// Dropped returns how many records were discarded by the ring bound.
func (c *Capture) Dropped() uint64 { return c.dropped }

// Stats returns a copy of the capture summary.
func (c *Capture) Stats() Stats {
	out := c.stats
	out.ByType = make(map[string]uint64, len(c.stats.ByType))
	for k, v := range c.stats.ByType {
		out.ByType[k] = v
	}
	out.ARPOps = make(map[string]uint64, len(c.stats.ARPOps))
	for k, v := range c.stats.ARPOps {
		out.ARPOps[k] = v
	}
	return out
}

// Records returns the retained records, newest last. The slice is a copy;
// the frames inside are shared and must be treated as read-only.
func (c *Capture) Records() []Record {
	out := make([]Record, len(c.records))
	copy(out, c.records)
	return out
}

// Filter returns the retained records matching pred.
func (c *Capture) Filter(pred func(Record) bool) []Record {
	var out []Record
	for _, r := range c.records {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out
}

// ARPOnly returns only records carrying decodable ARP packets.
func (c *Capture) ARPOnly() []Record {
	return c.Filter(func(r Record) bool { return r.ARP != nil })
}

// WriteJSON exports records and stats as a single JSON document.
func (c *Capture) WriteJSON(w io.Writer) error {
	doc := struct {
		Stats   Stats    `json:"stats"`
		Dropped uint64   `json:"dropped"`
		Records []Record `json:"records"`
	}{Stats: c.Stats(), Dropped: c.dropped, Records: c.records}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("encode capture: %w", err)
	}
	return nil
}

// pcap constants (libpcap classic format, microsecond timestamps).
const (
	pcapMagic    = 0xa1b2c3d4
	pcapVersionM = 2
	pcapVersionN = 4
	pcapSnapLen  = 65535
	pcapEthernet = 1
)

// WritePCAP exports the retained frames as a classic libpcap capture that
// Wireshark and tcpdump open directly; virtual capture timestamps map to
// seconds/microseconds since the Unix epoch.
func (c *Capture) WritePCAP(w io.Writer) error {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], pcapMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], pcapVersionM)
	binary.LittleEndian.PutUint16(hdr[6:8], pcapVersionN)
	binary.LittleEndian.PutUint32(hdr[16:20], pcapSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], pcapEthernet)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcap header: %w", err)
	}
	for i, r := range c.records {
		wire, err := r.Frame.Encode()
		if err != nil {
			return fmt.Errorf("pcap record %d: %w", i, err)
		}
		var rec [16]byte
		binary.LittleEndian.PutUint32(rec[0:4], uint32(r.At/time.Second))
		binary.LittleEndian.PutUint32(rec[4:8], uint32((r.At%time.Second)/time.Microsecond))
		binary.LittleEndian.PutUint32(rec[8:12], uint32(len(wire)))
		binary.LittleEndian.PutUint32(rec[12:16], uint32(len(wire)))
		if _, err := w.Write(rec[:]); err != nil {
			return fmt.Errorf("pcap record %d: %w", i, err)
		}
		if _, err := w.Write(wire); err != nil {
			return fmt.Errorf("pcap record %d: %w", i, err)
		}
	}
	return nil
}
