package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// WireRecord is one undecoded capture record: a timestamp and the raw
// Ethernet frame bytes. It is the normalized unit the replay engine
// consumes; readers fill a caller-provided record so steady-state reads
// reuse one buffer.
type WireRecord struct {
	At   time.Duration
	Wire []byte
}

// pcap magic numbers in file byte order. The classic format stores the
// magic in the writer's native endianness; a reader that sees the swapped
// value byte-swaps every header field. The 0xa1b23c4d variant stores
// nanosecond (rather than microsecond) timestamp fractions.
const (
	pcapMagicNanos = 0xa1b23c4d
	// maxPCAPRecord bounds a record's captured length; anything larger is
	// a corrupt header, not a frame (Ethernet tops out at 65535 with the
	// classic snaplen).
	maxPCAPRecord = 1 << 18
)

// PCAPReader streams records from a classic libpcap capture — the format
// WritePCAP emits, and what tcpdump -w produces on an Ethernet interface.
// Both endiannesses and both timestamp resolutions (microsecond 0xa1b2c3d4,
// nanosecond 0xa1b23c4d) are accepted.
type PCAPReader struct {
	r     *bufio.Reader
	order binary.ByteOrder
	nanos bool
	n     int // records returned so far, for error positions
	// hdr is the record-header scratch; a local would escape through the
	// io.ReadFull interface call and cost one heap allocation per record.
	hdr [16]byte
}

// NewPCAPReader consumes the 24-octet global header and returns a reader
// positioned at the first record.
func NewPCAPReader(r io.Reader) (*PCAPReader, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap header: %w", err)
	}
	p := &PCAPReader{r: br}
	magic := binary.LittleEndian.Uint32(hdr[0:4])
	switch magic {
	case pcapMagic:
		p.order = binary.LittleEndian
	case pcapMagicNanos:
		p.order, p.nanos = binary.LittleEndian, true
	default:
		switch binary.BigEndian.Uint32(hdr[0:4]) {
		case pcapMagic:
			p.order = binary.BigEndian
		case pcapMagicNanos:
			p.order, p.nanos = binary.BigEndian, true
		default:
			return nil, fmt.Errorf("pcap header: bad magic %#x", magic)
		}
	}
	if link := p.order.Uint32(hdr[20:24]); link != pcapEthernet {
		return nil, fmt.Errorf("pcap header: link type %d (want Ethernet)", link)
	}
	return p, nil
}

// Next fills rec with the next record, reusing rec.Wire's backing array
// when it is large enough. It returns io.EOF at a clean end of capture.
func (p *PCAPReader) Next(rec *WireRecord) error {
	var err error
	rec.Wire, rec.At, err = p.ReadAppend(rec.Wire[:0])
	return err
}

// ReadAppend reads the next record, appending its frame bytes to buf and
// returning the extended slice plus the record timestamp. This is the
// zero-copy seam for batched readers that pack many records into one
// arena buffer; Next is a convenience over it. io.EOF marks a clean end;
// a record truncated mid-header or mid-frame is an ErrUnexpectedEOF.
func (p *PCAPReader) ReadAppend(buf []byte) ([]byte, time.Duration, error) {
	hdr := p.hdr[:]
	if _, err := io.ReadFull(p.r, hdr[:1]); err != nil {
		return buf, 0, io.EOF // clean end before any header byte
	}
	if _, err := io.ReadFull(p.r, hdr[1:]); err != nil {
		return buf, 0, fmt.Errorf("pcap record %d header: %w", p.n, noEOF(err))
	}
	sec := p.order.Uint32(hdr[0:4])
	frac := p.order.Uint32(hdr[4:8])
	capLen := p.order.Uint32(hdr[8:12])
	if capLen > maxPCAPRecord {
		return buf, 0, fmt.Errorf("pcap record %d: captured length %d exceeds %d", p.n, capLen, maxPCAPRecord)
	}
	at := time.Duration(sec) * time.Second
	if p.nanos {
		at += time.Duration(frac) * time.Nanosecond
	} else {
		at += time.Duration(frac) * time.Microsecond
	}
	off := len(buf)
	if cap(buf)-off < int(capLen) {
		grown := make([]byte, off, off+int(capLen))
		copy(grown, buf)
		buf = grown
	}
	buf = buf[:off+int(capLen)]
	if _, err := io.ReadFull(p.r, buf[off:]); err != nil {
		return buf[:off], 0, fmt.Errorf("pcap record %d: %w", p.n, noEOF(err))
	}
	p.n++
	return buf, at, nil
}

// noEOF maps a bare EOF inside a record to ErrUnexpectedEOF so callers can
// reserve io.EOF for the clean between-records end.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
