package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/arppkt"
	"repro/internal/ethaddr"
	"repro/internal/frame"
	"repro/internal/netsim"
)

// TestWritePCAPGolden checks the exported bytes against a hand-assembled
// libpcap fixture: global header (magic, version 2.4, snaplen, Ethernet
// linktype) and the per-record header fields, byte for byte.
func TestWritePCAPGolden(t *testing.T) {
	c := NewCapture(0)
	req := arpFrame(arppkt.NewRequest(macA, ipA, ipB), macA, ethaddr.BroadcastMAC)
	c.Tap()(netsim.TapEvent{
		At: 12*time.Second + 345678*time.Microsecond, Port: 0,
		Frame: req, WireLen: req.WireLen(),
	})

	var buf bytes.Buffer
	if err := c.WritePCAP(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	wire, err := req.Encode()
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{
		0xd4, 0xc3, 0xb2, 0xa1, // magic, little-endian on the wire
		0x02, 0x00, // version major = 2
		0x04, 0x00, // version minor = 4
		0x00, 0x00, 0x00, 0x00, // thiszone
		0x00, 0x00, 0x00, 0x00, // sigfigs
		0xff, 0xff, 0x00, 0x00, // snaplen = 65535
		0x01, 0x00, 0x00, 0x00, // linktype = 1 (Ethernet)
		0x0c, 0x00, 0x00, 0x00, // ts_sec = 12
		0x4e, 0x46, 0x05, 0x00, // ts_usec = 345678
		0x3c, 0x00, 0x00, 0x00, // incl_len = 60
		0x3c, 0x00, 0x00, 0x00, // orig_len = 60
	}
	want = append(want, wire...)
	if !bytes.Equal(got, want) {
		t.Fatalf("pcap bytes differ\n got: %x\nwant: %x", got, want)
	}
}

// TestWriteJSONAfterOverflow checks the export goes through the snapshot
// path: dropped counts are reported and the records come out oldest-first
// even when the ring head has wrapped.
func TestWriteJSONAfterOverflow(t *testing.T) {
	c := NewCapture(2)
	tap := c.Tap()
	for i := 0; i < 5; i++ {
		tap(tapEvent(&frame.Frame{Dst: macB, Src: macA, Type: frame.TypeIPv4}, i))
	}
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Stats   Stats    `json:"stats"`
		Dropped uint64   `json:"dropped"`
		Records []Record `json:"records"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Dropped != 3 || doc.Stats.Dropped != 3 {
		t.Fatalf("dropped = %d, stats.dropped = %d", doc.Dropped, doc.Stats.Dropped)
	}
	if doc.Stats.Frames != 5 {
		t.Fatalf("frames = %d", doc.Stats.Frames)
	}
	if len(doc.Records) != 2 || doc.Records[0].Port != 3 || doc.Records[1].Port != 4 {
		t.Fatalf("records not oldest-first after wrap: %+v", doc.Records)
	}
}

// TestRingWrapManyTimes drives the ring through several full revolutions
// and confirms retention is always the most recent max records in order.
func TestRingWrapManyTimes(t *testing.T) {
	c := NewCapture(7)
	tap := c.Tap()
	const total = 100
	for i := 0; i < total; i++ {
		tap(tapEvent(&frame.Frame{Dst: macB, Src: macA, Type: frame.TypeIPv4}, i))
	}
	recs := c.Records()
	if len(recs) != 7 {
		t.Fatalf("len = %d", len(recs))
	}
	for i, r := range recs {
		if want := total - 7 + i; r.Port != want {
			t.Fatalf("record %d: port %d, want %d", i, r.Port, want)
		}
	}
	if c.Dropped() != total-7 {
		t.Fatalf("dropped = %d", c.Dropped())
	}
}

// BenchmarkCaptureOverflowAppend measures the steady-state append cost of a
// full capture. The circular buffer overwrites in place, so the per-append
// cost must stay flat (and small) regardless of the retention bound — the
// old slice-shift eviction was O(len) per append.
func BenchmarkCaptureOverflowAppend(b *testing.B) {
	for _, size := range []int{1024, 65536} {
		b.Run(byteSizeName(size), func(b *testing.B) {
			c := NewCapture(size)
			f := &frame.Frame{Dst: macB, Src: macA, Type: frame.TypeIPv4}
			ev := netsim.TapEvent{Port: 1, Frame: f, WireLen: f.WireLen()}
			for i := 0; i < size; i++ { // fill to the bound
				c.observe(ev)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.observe(ev)
			}
		})
	}
}

func byteSizeName(n int) string {
	switch {
	case n >= 1<<16:
		return "cap64Ki"
	default:
		return "cap1Ki"
	}
}
