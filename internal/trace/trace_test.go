package trace

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/arppkt"
	"repro/internal/ethaddr"
	"repro/internal/frame"
	"repro/internal/netsim"
	"repro/internal/sim"
)

func tapEvent(f *frame.Frame, port int) netsim.TapEvent {
	return netsim.TapEvent{Port: port, Frame: f, WireLen: f.WireLen()}
}

func arpFrame(p *arppkt.Packet, src, dst ethaddr.MAC) *frame.Frame {
	return &frame.Frame{Dst: dst, Src: src, Type: frame.TypeARP, Payload: p.Encode()}
}

var (
	macA = ethaddr.MustParseMAC("02:42:ac:00:00:01")
	macB = ethaddr.MustParseMAC("02:42:ac:00:00:02")
	ipA  = ethaddr.MustParseIPv4("10.0.0.1")
	ipB  = ethaddr.MustParseIPv4("10.0.0.2")
)

func TestCaptureStats(t *testing.T) {
	c := NewCapture(0)
	tap := c.Tap()
	tap(tapEvent(arpFrame(arppkt.NewRequest(macA, ipA, ipB), macA, ethaddr.BroadcastMAC), 0))
	tap(tapEvent(arpFrame(arppkt.NewReply(macB, ipB, macA, ipA), macB, macA), 1))
	tap(tapEvent(arpFrame(arppkt.NewGratuitousRequest(macA, ipA), macA, ethaddr.BroadcastMAC), 0))
	tap(tapEvent(&frame.Frame{Dst: macB, Src: macA, Type: frame.TypeIPv4, Payload: make([]byte, 100)}, 0))

	st := c.Stats()
	if st.Frames != 4 {
		t.Fatalf("Frames = %d", st.Frames)
	}
	if st.ByType["ARP"] != 3 || st.ByType["IPv4"] != 1 {
		t.Fatalf("ByType = %v", st.ByType)
	}
	if st.ARPOps["request"] != 2 || st.ARPOps["reply"] != 1 {
		t.Fatalf("ARPOps = %v", st.ARPOps)
	}
	if st.Gratuitous != 1 {
		t.Fatalf("Gratuitous = %d", st.Gratuitous)
	}
	if st.Broadcast != 2 {
		t.Fatalf("Broadcast = %d", st.Broadcast)
	}
	if st.Bytes != 60*3+114 {
		t.Fatalf("Bytes = %d", st.Bytes)
	}
}

func TestRingBound(t *testing.T) {
	c := NewCapture(3)
	tap := c.Tap()
	for i := 0; i < 5; i++ {
		tap(tapEvent(&frame.Frame{Dst: macB, Src: macA, Type: frame.TypeIPv4}, i))
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.Dropped() != 2 {
		t.Fatalf("Dropped = %d", c.Dropped())
	}
	recs := c.Records()
	if recs[0].Port != 2 || recs[2].Port != 4 {
		t.Fatalf("ring kept wrong records: %v %v", recs[0].Port, recs[2].Port)
	}
	// Stats still count everything.
	if c.Stats().Frames != 5 {
		t.Fatal("stats should count dropped records")
	}
}

func TestFilterAndARPOnly(t *testing.T) {
	c := NewCapture(0)
	tap := c.Tap()
	tap(tapEvent(arpFrame(arppkt.NewRequest(macA, ipA, ipB), macA, ethaddr.BroadcastMAC), 0))
	tap(tapEvent(&frame.Frame{Dst: macB, Src: macA, Type: frame.TypeIPv4}, 1))
	if got := len(c.ARPOnly()); got != 1 {
		t.Fatalf("ARPOnly = %d", got)
	}
	big := c.Filter(func(r Record) bool { return r.Port == 1 })
	if len(big) != 1 || big[0].Type != "IPv4" {
		t.Fatalf("Filter = %+v", big)
	}
}

func TestWriteJSON(t *testing.T) {
	c := NewCapture(0)
	c.Tap()(tapEvent(arpFrame(arppkt.NewReply(macB, ipB, macA, ipA), macB, macA), 0))
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Stats   Stats            `json:"stats"`
		Records []map[string]any `json:"records"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Stats.Frames != 1 || len(doc.Records) != 1 {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Records[0]["info"] == "" {
		t.Fatal("ARP info missing from JSON")
	}
}

func TestWritePCAP(t *testing.T) {
	c := NewCapture(0)
	tap := c.Tap()
	req := arpFrame(arppkt.NewRequest(macA, ipA, ipB), macA, ethaddr.BroadcastMAC)
	tap(netsim.TapEvent{At: 3*time.Second + 250*time.Microsecond, Port: 0, Frame: req, WireLen: req.WireLen()})
	big := &frame.Frame{Dst: macB, Src: macA, Type: frame.TypeIPv4, Payload: make([]byte, 200)}
	tap(netsim.TapEvent{At: 4 * time.Second, Port: 1, Frame: big, WireLen: big.WireLen()})

	var buf bytes.Buffer
	if err := c.WritePCAP(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	// Global header.
	if len(blob) < 24 {
		t.Fatalf("pcap too short: %d", len(blob))
	}
	if got := binary.LittleEndian.Uint32(blob[0:4]); got != 0xa1b2c3d4 {
		t.Fatalf("magic = %#x", got)
	}
	if got := binary.LittleEndian.Uint32(blob[20:24]); got != 1 {
		t.Fatalf("linktype = %d, want Ethernet", got)
	}
	// Record 1: min-size ARP frame (60 octets) at t=3.000250s.
	rec := blob[24:]
	if got := binary.LittleEndian.Uint32(rec[0:4]); got != 3 {
		t.Fatalf("ts_sec = %d", got)
	}
	if got := binary.LittleEndian.Uint32(rec[4:8]); got != 250 {
		t.Fatalf("ts_usec = %d", got)
	}
	n1 := binary.LittleEndian.Uint32(rec[8:12])
	if n1 != 60 {
		t.Fatalf("caplen = %d", n1)
	}
	// The frame bytes decode back to the original ARP packet.
	parsed, err := frame.Decode(rec[16 : 16+n1])
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Type != frame.TypeARP || parsed.Src != macA {
		t.Fatalf("frame round trip: %+v", parsed)
	}
	// Record 2 follows immediately, 214 octets.
	rec2 := rec[16+n1:]
	if got := binary.LittleEndian.Uint32(rec2[8:12]); got != 214 {
		t.Fatalf("second caplen = %d", got)
	}
	if total := 24 + 16 + int(n1) + 16 + 214; total != len(blob) {
		t.Fatalf("file length %d, want %d", len(blob), total)
	}
}

func TestCaptureOnLiveSwitch(t *testing.T) {
	s := sim.NewScheduler(1)
	sw := netsim.NewSwitch(s)
	c := NewCapture(0)
	sw.AddTap(c.Tap())

	a := netsim.NewNIC(s, macA)
	b := netsim.NewNIC(s, macB)
	sw.AddPort().Attach(a)
	sw.AddPort().Attach(b)
	a.Send(arpFrame(arppkt.NewRequest(macA, ipA, ipB), macA, ethaddr.BroadcastMAC))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("captured %d", c.Len())
	}
	if c.Records()[0].Info == "" {
		t.Fatal("missing decoded info")
	}
}
