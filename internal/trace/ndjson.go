// NDJSON capture stream: one JSON object per line, newline-delimited — the
// structured twin of the pcap export. Unlike WriteJSON's single indented
// document, the stream is consumable incrementally (tail -f, a pipe from
// arpsim, an S3 multipart upload), which is what the replay service ingests.
//
// The line schema is pinned by testdata/capture.ndjson.golden: changing a
// field name, dropping a field, or altering an encoding breaks downstream
// ingestion, so the golden test forces such changes to be deliberate.
package trace

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// NDJSONRecord is the wire schema of one capture stream line. Wire carries
// the full frame bytes (standard JSON base64); the remaining fields are the
// same decoded summaries WriteJSON exports, kept so the stream is greppable
// without decoding frames.
type NDJSONRecord struct {
	At      time.Duration `json:"at"`
	Port    int           `json:"port"`
	Src     string        `json:"src"`
	Dst     string        `json:"dst"`
	Type    string        `json:"type"`
	WireLen int           `json:"wireLen"`
	Info    string        `json:"info,omitempty"`
	Wire    []byte        `json:"wire"`
}

// WriteNDJSON exports the retained records as an NDJSON stream, oldest
// first. Each line round-trips through NDJSONReader.
func (c *Capture) WriteNDJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	var wire []byte
	i := 0
	err := c.each(func(r Record) error {
		i++
		var err error
		wire, err = r.Frame.AppendEncode(wire[:0])
		if err != nil {
			return fmt.Errorf("ndjson record %d: %w", i-1, err)
		}
		line := NDJSONRecord{
			At:      r.At,
			Port:    r.Port,
			Src:     r.Src,
			Dst:     r.Dst,
			Type:    r.Type,
			WireLen: r.WireLen,
			Info:    r.Info,
			Wire:    wire,
		}
		if err := enc.Encode(&line); err != nil {
			return fmt.Errorf("ndjson record %d: %w", i-1, err)
		}
		return nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// maxNDJSONLine bounds one stream line; a frame is at most ~1.5 KiB so a
// megabyte line is corruption, not capture data.
const maxNDJSONLine = 1 << 20

// NDJSONReader streams WireRecords from an NDJSON capture.
type NDJSONReader struct {
	s *bufio.Scanner
	n int
}

// NewNDJSONReader wraps r; lines beyond maxNDJSONLine fail the read.
func NewNDJSONReader(r io.Reader) *NDJSONReader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 64<<10), maxNDJSONLine)
	return &NDJSONReader{s: s}
}

// Next fills rec from the next non-empty line. io.EOF marks the end.
func (r *NDJSONReader) Next(rec *WireRecord) error {
	line, err := r.ReadLine()
	if err != nil {
		return err
	}
	return ParseNDJSONLine(line, rec)
}

// ReadLine returns the next non-empty raw line (valid until the following
// call), for callers that parse lines elsewhere — the replay engine ships
// raw lines to its worker pool and calls ParseNDJSONLine there.
func (r *NDJSONReader) ReadLine() ([]byte, error) {
	for r.s.Scan() {
		line := r.s.Bytes()
		if len(trimSpace(line)) == 0 {
			continue
		}
		r.n++
		return line, nil
	}
	if err := r.s.Err(); err != nil {
		return nil, fmt.Errorf("ndjson line %d: %w", r.n, err)
	}
	return nil, io.EOF
}

// trimSpace is a minimal ASCII space/CR trim (scanner already strips LF).
func trimSpace(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\r') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}

// ParseNDJSONLine decodes one stream line into rec. It is safe to call
// concurrently from multiple goroutines on distinct records — the sharded
// ingest path's per-worker parse step.
//
// Replay only needs two of the line's fields (at, wire), so the canonical
// shape WriteNDJSON emits is scanned directly — an order of magnitude
// cheaper than reflective unmarshaling, which is what makes NDJSON ingest
// keep up with pcap. Lines the scan does not recognize (foreign producer,
// reordered fields, escaping) fall back to full json.Unmarshal.
func ParseNDJSONLine(line []byte, rec *WireRecord) error {
	if at, wire, ok := scanNDJSONLine(line); ok {
		n := base64.StdEncoding.DecodedLen(len(wire))
		if cap(rec.Wire) < n {
			rec.Wire = make([]byte, n)
		}
		rec.Wire = rec.Wire[:n]
		m, err := base64.StdEncoding.Decode(rec.Wire, wire)
		if err == nil {
			if m == 0 {
				return fmt.Errorf("ndjson: record has no wire bytes")
			}
			rec.At = at
			rec.Wire = rec.Wire[:m]
			return nil
		}
		// fall through: let the full decoder produce the error (or cope
		// with whatever shape the scan misread)
	}
	var nr NDJSONRecord
	if err := json.Unmarshal(line, &nr); err != nil {
		return fmt.Errorf("ndjson: %w", err)
	}
	if len(nr.Wire) == 0 {
		return fmt.Errorf("ndjson: record has no wire bytes")
	}
	rec.At = nr.At
	rec.Wire = append(rec.Wire[:0], nr.Wire...)
	return nil
}

var (
	atField   = []byte(`"at":`)
	wireField = []byte(`"wire":"`)
)

// scanNDJSONLine extracts the at and wire fields from a canonical stream
// line without a JSON decoder: at is a bare integer and wire is the final
// field, base64 over an alphabet JSON never escapes, so a byte scan is
// exact for everything WriteNDJSON produces. ok=false means the line is
// not canonical and the caller must take the slow path.
func scanNDJSONLine(line []byte) (at time.Duration, wire []byte, ok bool) {
	i := bytes.Index(line, atField)
	if i < 0 {
		return 0, nil, false
	}
	j := i + len(atField)
	neg := false
	if j < len(line) && line[j] == '-' {
		neg = true
		j++
	}
	start := j
	var n int64
	for j < len(line) && line[j] >= '0' && line[j] <= '9' {
		n = n*10 + int64(line[j]-'0')
		j++
	}
	if j == start || (j < len(line) && line[j] != ',' && line[j] != '}') {
		return 0, nil, false
	}
	if neg {
		n = -n
	}
	w := bytes.Index(line[j:], wireField)
	if w < 0 {
		return 0, nil, false
	}
	v := line[j+w+len(wireField):]
	end := bytes.IndexByte(v, '"')
	if end < 0 || bytes.IndexByte(v[:end], '\\') >= 0 {
		return 0, nil, false
	}
	return time.Duration(n), v[:end], true
}
