package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"time"

	"repro/internal/arppkt"
	"repro/internal/ethaddr"
	"repro/internal/frame"
)

// fixtureCapture builds a small deterministic capture: a resolution
// exchange, a gratuitous announcement, and an IPv4 datagram, spread over
// distinct timestamps so reader tests can verify times as well as bytes.
func fixtureCapture() *Capture {
	c := NewCapture(0)
	tap := c.Tap()
	evs := []struct {
		at time.Duration
		f  *frame.Frame
	}{
		{10 * time.Millisecond, arpFrame(arppkt.NewRequest(macA, ipA, ipB), macA, ethaddr.BroadcastMAC)},
		{10*time.Millisecond + 150*time.Microsecond, arpFrame(arppkt.NewReply(macB, ipB, macA, ipA), macB, macA)},
		{2 * time.Second, arpFrame(arppkt.NewGratuitousRequest(macA, ipA), macA, ethaddr.BroadcastMAC)},
		{3*time.Second + 42*time.Microsecond, &frame.Frame{Dst: macB, Src: macA, Type: frame.TypeIPv4, Payload: make([]byte, 100)}},
	}
	for _, ev := range evs {
		e := tapEvent(ev.f, 0)
		e.At = ev.at
		tap(e)
	}
	return c
}

// TestPCAPRoundTrip pins that the reader consumes exactly what the writer
// produces: same record count, same microsecond-truncated timestamps, and
// byte-identical frames (the writer pads to the Ethernet minimum, so the
// comparison re-encodes the originals the same way).
func TestPCAPRoundTrip(t *testing.T) {
	c := fixtureCapture()
	var buf bytes.Buffer
	if err := c.WritePCAP(&buf); err != nil {
		t.Fatalf("WritePCAP: %v", err)
	}
	r, err := NewPCAPReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewPCAPReader: %v", err)
	}
	recs := c.Records()
	var rec WireRecord
	for i, want := range recs {
		if err := r.Next(&rec); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		wantAt := want.At.Truncate(time.Microsecond)
		if rec.At != wantAt {
			t.Errorf("record %d: at %v, want %v", i, rec.At, wantAt)
		}
		wire, err := want.Frame.Encode()
		if err != nil {
			t.Fatalf("encode record %d: %v", i, err)
		}
		if !bytes.Equal(rec.Wire, wire) {
			t.Errorf("record %d: wire bytes differ\ngot  %x\nwant %x", i, rec.Wire, wire)
		}
	}
	if err := r.Next(&rec); err != io.EOF {
		t.Fatalf("after last record: %v, want io.EOF", err)
	}
}

// TestPCAPReaderBigEndianNanos exercises the foreign-capture path: a
// big-endian nanosecond-resolution file (what a tcpdump on a big-endian
// box with --time-stamp-precision=nano writes).
func TestPCAPReaderBigEndianNanos(t *testing.T) {
	f := arpFrame(arppkt.NewGratuitousReply(macA, ipA), macA, ethaddr.BroadcastMAC)
	wire, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	var hdr [24]byte
	binary.BigEndian.PutUint32(hdr[0:4], pcapMagicNanos)
	binary.BigEndian.PutUint16(hdr[4:6], pcapVersionM)
	binary.BigEndian.PutUint16(hdr[6:8], pcapVersionN)
	binary.BigEndian.PutUint32(hdr[16:20], pcapSnapLen)
	binary.BigEndian.PutUint32(hdr[20:24], pcapEthernet)
	buf.Write(hdr[:])
	var rh [16]byte
	binary.BigEndian.PutUint32(rh[0:4], 7)         // seconds
	binary.BigEndian.PutUint32(rh[4:8], 123456789) // nanoseconds
	binary.BigEndian.PutUint32(rh[8:12], uint32(len(wire)))
	binary.BigEndian.PutUint32(rh[12:16], uint32(len(wire)))
	buf.Write(rh[:])
	buf.Write(wire)

	r, err := NewPCAPReader(&buf)
	if err != nil {
		t.Fatalf("NewPCAPReader: %v", err)
	}
	var rec WireRecord
	if err := r.Next(&rec); err != nil {
		t.Fatalf("Next: %v", err)
	}
	if want := 7*time.Second + 123456789*time.Nanosecond; rec.At != want {
		t.Errorf("at = %v, want %v", rec.At, want)
	}
	if !bytes.Equal(rec.Wire, wire) {
		t.Errorf("wire bytes differ")
	}
}

// TestPCAPReaderErrors pins the failure modes ingestion relies on: bad
// magic and mid-record truncation are errors, not silent EOFs.
func TestPCAPReaderErrors(t *testing.T) {
	if _, err := NewPCAPReader(bytes.NewReader(make([]byte, 24))); err == nil {
		t.Error("zero magic: want error")
	}

	c := fixtureCapture()
	var buf bytes.Buffer
	if err := c.WritePCAP(&buf); err != nil {
		t.Fatal(err)
	}
	// Truncate inside the last record's frame bytes.
	blob := buf.Bytes()[:buf.Len()-10]
	r, err := NewPCAPReader(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	var rec WireRecord
	var last error
	for {
		if last = r.Next(&rec); last != nil {
			break
		}
	}
	if last == io.EOF {
		t.Fatal("truncated capture ended with clean EOF, want ErrUnexpectedEOF")
	}
}

// TestPCAPReaderReusesBuffer pins the allocation contract: after the first
// record grows the buffer, subsequent same-size reads must not allocate a
// new one.
func TestPCAPReaderReusesBuffer(t *testing.T) {
	c := fixtureCapture()
	var buf bytes.Buffer
	if err := c.WritePCAP(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := NewPCAPReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rec := WireRecord{Wire: make([]byte, 0, frame.MaxFrameLen)}
	p0 := &rec.Wire[:1][0]
	for {
		if err := r.Next(&rec); err != nil {
			break
		}
		if &rec.Wire[0] != p0 {
			t.Fatal("reader reallocated a sufficient buffer")
		}
	}
}
