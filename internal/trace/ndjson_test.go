package trace

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/telemetry"
)

// TestNDJSONRoundTrip pins that NDJSONReader consumes exactly what
// WriteNDJSON produces: same record count, nanosecond-exact timestamps
// (NDJSON keeps full resolution, unlike pcap), byte-identical frames.
func TestNDJSONRoundTrip(t *testing.T) {
	c := fixtureCapture()
	var buf bytes.Buffer
	if err := c.WriteNDJSON(&buf); err != nil {
		t.Fatalf("WriteNDJSON: %v", err)
	}
	r := NewNDJSONReader(bytes.NewReader(buf.Bytes()))
	var rec WireRecord
	for i, want := range c.Records() {
		if err := r.Next(&rec); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.At != want.At {
			t.Errorf("record %d: at %v, want %v", i, rec.At, want.At)
		}
		wire, err := want.Frame.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rec.Wire, wire) {
			t.Errorf("record %d: wire bytes differ", i)
		}
	}
	if err := r.Next(&rec); err != io.EOF {
		t.Fatalf("after last record: %v, want io.EOF", err)
	}
}

// TestNDJSONSchemaGolden pins the exact bytes of the NDJSON line schema.
// arpanalyze ingestion (and anything downstream consuming the stream)
// depends on these field names and encodings; a diff here means the schema
// changed and every reader must change with it. Regenerate deliberately
// with UPDATE_GOLDEN=1.
func TestNDJSONSchemaGolden(t *testing.T) {
	c := fixtureCapture()
	var buf bytes.Buffer
	if err := c.WriteNDJSON(&buf); err != nil {
		t.Fatalf("WriteNDJSON: %v", err)
	}
	golden := filepath.Join("testdata", "capture.ndjson.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("NDJSON stream drifted from pinned schema.\ngot:\n%s\nwant:\n%s\nIf the schema change is intentional, regenerate with UPDATE_GOLDEN=1 and update every consumer.", buf.Bytes(), want)
	}
}

// TestParseNDJSONFastPath pins that the canonical-line byte scan and the
// full JSON decoder agree — on every fixture line, and on non-canonical
// shapes where the scan must bail to the fallback.
func TestParseNDJSONFastPath(t *testing.T) {
	c := fixtureCapture()
	var buf bytes.Buffer
	if err := c.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	r := NewNDJSONReader(bytes.NewReader(buf.Bytes()))
	for i := 0; ; i++ {
		line, err := r.ReadLine()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		at, wire, ok := scanNDJSONLine(line)
		if !ok {
			t.Fatalf("line %d: canonical writer output rejected by fast scan: %s", i, line)
		}
		var nr NDJSONRecord
		if err := json.Unmarshal(line, &nr); err != nil {
			t.Fatal(err)
		}
		dec := make([]byte, base64.StdEncoding.DecodedLen(len(wire)))
		m, err := base64.StdEncoding.Decode(dec, wire)
		if err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		dec = dec[:m]
		if at != nr.At || !bytes.Equal(dec, nr.Wire) {
			t.Errorf("line %d: fast scan (%v, %d bytes) != decoder (%v, %d bytes)",
				i, at, len(dec), nr.At, len(nr.Wire))
		}
	}

	// Reordered fields: the scan bails, the fallback must still parse.
	var rec WireRecord
	reordered := []byte(`{"wire":"` + base64.StdEncoding.EncodeToString(make([]byte, 14)) + `","at":42}`)
	if err := ParseNDJSONLine(reordered, &rec); err != nil {
		t.Fatalf("reordered fields: %v", err)
	}
	if rec.At != 42 || len(rec.Wire) != 14 {
		t.Errorf("reordered fields: got at=%v len=%d", rec.At, len(rec.Wire))
	}
}

// TestParseNDJSONLineErrors pins rejection of corrupt stream lines.
func TestParseNDJSONLineErrors(t *testing.T) {
	var rec WireRecord
	for _, line := range []string{
		`{not json`,
		`{"at":1,"wire":""}`, // no frame bytes
		`{"at":1}`,           // wire absent
	} {
		if err := ParseNDJSONLine([]byte(line), &rec); err == nil {
			t.Errorf("line %q: want error", line)
		}
	}
}

// TestCaptureInstrument pins the telemetry surface: frames/bytes counters
// track the tap, and the ring's Dropped count is visible as
// capture_dropped_total — the counter that makes an undersized capture
// ring observable on /metrics.
func TestCaptureInstrument(t *testing.T) {
	reg := telemetry.New()
	c := NewCapture(2) // tiny ring: the 4-record fixture drops 2
	c.Instrument(reg)
	tap := c.Tap()
	var wireBytes uint64
	for _, r := range fixtureCapture().Records() {
		e := tapEvent(r.Frame, r.Port)
		e.At = r.At
		tap(e)
		wireBytes += uint64(e.WireLen)
	}
	if got := reg.CounterValue("capture_frames_total"); got != 4 {
		t.Errorf("capture_frames_total = %d, want 4", got)
	}
	if got := reg.CounterValue("capture_bytes_total"); got != wireBytes {
		t.Errorf("capture_bytes_total = %d, want %d", got, wireBytes)
	}
	if got := reg.CounterValue("capture_dropped_total"); got != 2 {
		t.Errorf("capture_dropped_total = %d, want 2", got)
	}
	if c.Dropped() != 2 {
		t.Errorf("Dropped() = %d, want 2", c.Dropped())
	}
}
