package ipv4pkt

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/ethaddr"
)

var (
	ipA = ethaddr.MustParseIPv4("10.0.0.1")
	ipB = ethaddr.MustParseIPv4("10.0.0.2")
)

func TestPacketRoundTrip(t *testing.T) {
	p := &Packet{TTL: 64, Proto: ProtoUDP, Src: ipA, Dst: ipB, ID: 1234, Payload: []byte("payload")}
	got, err := Decode(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.TTL != 64 || got.Proto != ProtoUDP || got.Src != ipA || got.Dst != ipB || got.ID != 1234 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !bytes.Equal(got.Payload, []byte("payload")) {
		t.Fatalf("payload mismatch: %q", got.Payload)
	}
}

func TestPacketDecodeToleratesPadding(t *testing.T) {
	wire := (&Packet{TTL: 1, Proto: ProtoICMP, Src: ipA, Dst: ipB, Payload: []byte{1, 2}}).Encode()
	padded := append(wire, make([]byte, 30)...)
	got, err := Decode(padded)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Payload) != 2 {
		t.Fatalf("padding leaked into payload: %d octets", len(got.Payload))
	}
}

func TestPacketChecksumDetectsCorruption(t *testing.T) {
	wire := (&Packet{TTL: 64, Proto: ProtoUDP, Src: ipA, Dst: ipB}).Encode()
	wire[12] ^= 0xff // corrupt source address
	if _, err := Decode(wire); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("err = %v, want ErrBadChecksum", err)
	}
}

func TestPacketDecodeErrors(t *testing.T) {
	if _, err := Decode(make([]byte, 5)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short: %v", err)
	}
	wire := (&Packet{TTL: 64, Proto: ProtoUDP, Src: ipA, Dst: ipB}).Encode()
	wire[0] = 0x65 // version 6
	if _, err := Decode(wire); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("version: %v", err)
	}
}

func TestPacketRoundTripProperty(t *testing.T) {
	f := func(ttl uint8, id uint16, src, dst ethaddr.IPv4, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		p := &Packet{TTL: ttl, Proto: ProtoTCP, Src: src, Dst: dst, ID: id, Payload: payload}
		got, err := Decode(p.Encode())
		return err == nil && got.TTL == ttl && got.ID == id && got.Src == src &&
			got.Dst == dst && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestICMPEchoRoundTrip(t *testing.T) {
	e := &ICMPEcho{Type: ICMPEchoRequest, IDent: 77, Seq: 3, Data: []byte("abc")}
	got, err := DecodeICMPEcho(e.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != ICMPEchoRequest || got.IDent != 77 || got.Seq != 3 || !bytes.Equal(got.Data, []byte("abc")) {
		t.Fatalf("mismatch: %+v", got)
	}
}

func TestICMPChecksumDetectsCorruption(t *testing.T) {
	wire := (&ICMPEcho{Type: ICMPEchoReply, IDent: 1, Seq: 1}).Encode()
	wire[4] ^= 0x01
	if _, err := DecodeICMPEcho(wire); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("err = %v", err)
	}
}

func TestICMPRejectsNonEcho(t *testing.T) {
	e := &ICMPEcho{Type: 3} // destination unreachable
	if _, err := DecodeICMPEcho(e.Encode()); err == nil {
		t.Fatal("non-echo type should be rejected")
	}
}

func TestICMPTruncated(t *testing.T) {
	if _, err := DecodeICMPEcho(make([]byte, 4)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v", err)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	u := &UDP{SrcPort: 68, DstPort: 67, Payload: []byte("dhcp")}
	got, err := DecodeUDP(u.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 68 || got.DstPort != 67 || !bytes.Equal(got.Payload, []byte("dhcp")) {
		t.Fatalf("mismatch: %+v", got)
	}
}

func TestUDPDecodeToleratesPadding(t *testing.T) {
	wire := (&UDP{SrcPort: 1, DstPort: 2, Payload: []byte("x")}).Encode()
	got, err := DecodeUDP(append(wire, 0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Payload) != 1 {
		t.Fatalf("padding leaked: %d", len(got.Payload))
	}
}

func TestUDPTruncated(t *testing.T) {
	if _, err := DecodeUDP(make([]byte, 7)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v", err)
	}
	// Length field larger than buffer.
	wire := (&UDP{SrcPort: 1, DstPort: 2, Payload: []byte("abc")}).Encode()
	if _, err := DecodeUDP(wire[:9]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v", err)
	}
}

func TestUDPRoundTripProperty(t *testing.T) {
	f := func(sp, dp uint16, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		got, err := DecodeUDP((&UDP{SrcPort: sp, DstPort: dp, Payload: payload}).Encode())
		return err == nil && got.SrcPort == sp && got.DstPort == dp && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProtocolString(t *testing.T) {
	if ProtoICMP.String() != "ICMP" || ProtoTCP.String() != "TCP" || ProtoUDP.String() != "UDP" {
		t.Fatal("known protocol names")
	}
	if Protocol(99).String() != "proto(99)" {
		t.Fatal("unknown protocol formatting")
	}
}

func TestChecksumOddLength(t *testing.T) {
	// RFC 1071 odd-length handling: corrupting the final odd byte must be caught.
	e := &ICMPEcho{Type: ICMPEchoRequest, IDent: 5, Seq: 9, Data: []byte("odd")}
	wire := e.Encode()
	wire[len(wire)-1] ^= 0xff
	if _, err := DecodeICMPEcho(wire); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("err = %v, want ErrBadChecksum", err)
	}
}
