// Package ipv4pkt implements the minimal slice of IPv4, ICMP, and UDP needed
// by the framework: enough to carry workload traffic whose interception the
// eavesdropping experiments measure, the ICMP echo probes the active
// detection schemes send, and the UDP datagrams DHCP rides on.
//
// Headers are encoded in real wire format with real checksums, so byte
// counts and validation behaviour match physical networks.
package ipv4pkt

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/ethaddr"
)

// Protocol is the IPv4 protocol number.
type Protocol uint8

// Protocol numbers used by the framework.
const (
	ProtoICMP Protocol = 1
	ProtoTCP  Protocol = 6
	ProtoUDP  Protocol = 17
)

// String returns the conventional protocol name.
func (p Protocol) String() string {
	switch p {
	case ProtoICMP:
		return "ICMP"
	case ProtoTCP:
		return "TCP"
	case ProtoUDP:
		return "UDP"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// HeaderLen is the size of an IPv4 header without options.
const HeaderLen = 20

// Errors returned by the decoders.
var (
	ErrTruncated   = errors.New("packet truncated")
	ErrBadVersion  = errors.New("not an ipv4 packet")
	ErrBadChecksum = errors.New("header checksum mismatch")
)

// Packet is a decoded IPv4 packet (options unsupported: IHL is always 5).
type Packet struct {
	TTL      uint8
	Proto    Protocol
	Src, Dst ethaddr.IPv4
	Payload  []byte
	ID       uint16
}

// checksum computes the Internet checksum (RFC 1071) over data.
func checksum(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// Encode serializes the packet with a valid header checksum.
func (p *Packet) Encode() []byte {
	buf := make([]byte, HeaderLen+len(p.Payload))
	buf[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(buf[2:4], uint16(len(buf)))
	binary.BigEndian.PutUint16(buf[4:6], p.ID)
	buf[8] = p.TTL
	buf[9] = uint8(p.Proto)
	copy(buf[12:16], p.Src[:])
	copy(buf[16:20], p.Dst[:])
	binary.BigEndian.PutUint16(buf[10:12], checksum(buf[:HeaderLen]))
	copy(buf[HeaderLen:], p.Payload)
	return buf
}

// Decode parses and checksums an IPv4 packet, tolerating trailing Ethernet
// padding by honouring the total-length field.
func Decode(buf []byte) (*Packet, error) {
	if len(buf) < HeaderLen {
		return nil, fmt.Errorf("%w: %d octets", ErrTruncated, len(buf))
	}
	if buf[0]>>4 != 4 || buf[0]&0x0f != 5 {
		return nil, ErrBadVersion
	}
	total := int(binary.BigEndian.Uint16(buf[2:4]))
	if total < HeaderLen || total > len(buf) {
		return nil, fmt.Errorf("%w: total length %d of %d", ErrTruncated, total, len(buf))
	}
	if checksum(buf[:HeaderLen]) != 0 {
		return nil, ErrBadChecksum
	}
	p := &Packet{
		TTL:   buf[8],
		Proto: Protocol(buf[9]),
		ID:    binary.BigEndian.Uint16(buf[4:6]),
	}
	copy(p.Src[:], buf[12:16])
	copy(p.Dst[:], buf[16:20])
	p.Payload = buf[HeaderLen:total]
	return p, nil
}

// ICMP message types used by the probes.
const (
	ICMPEchoReply   = 0
	ICMPEchoRequest = 8
)

// ICMPEcho is an ICMP echo request or reply.
type ICMPEcho struct {
	Type  uint8 // ICMPEchoRequest or ICMPEchoReply
	IDent uint16
	Seq   uint16
	Data  []byte
}

// Encode serializes the echo message with a valid ICMP checksum.
func (e *ICMPEcho) Encode() []byte {
	buf := make([]byte, 8+len(e.Data))
	buf[0] = e.Type
	binary.BigEndian.PutUint16(buf[4:6], e.IDent)
	binary.BigEndian.PutUint16(buf[6:8], e.Seq)
	copy(buf[8:], e.Data)
	binary.BigEndian.PutUint16(buf[2:4], checksum(buf))
	return buf
}

// DecodeICMPEcho parses an echo request or reply.
func DecodeICMPEcho(buf []byte) (*ICMPEcho, error) {
	if len(buf) < 8 {
		return nil, fmt.Errorf("%w: icmp %d octets", ErrTruncated, len(buf))
	}
	if checksum(buf) != 0 {
		return nil, fmt.Errorf("%w: icmp", ErrBadChecksum)
	}
	t := buf[0]
	if t != ICMPEchoRequest && t != ICMPEchoReply {
		return nil, fmt.Errorf("icmp type %d is not an echo message", t)
	}
	return &ICMPEcho{
		Type:  t,
		IDent: binary.BigEndian.Uint16(buf[4:6]),
		Seq:   binary.BigEndian.Uint16(buf[6:8]),
		Data:  buf[8:],
	}, nil
}

// UDPHeaderLen is the size of a UDP header.
const UDPHeaderLen = 8

// UDP is a UDP datagram (checksum omitted, as permitted for IPv4).
type UDP struct {
	SrcPort, DstPort uint16
	Payload          []byte
}

// Encode serializes the datagram.
func (u *UDP) Encode() []byte {
	buf := make([]byte, UDPHeaderLen+len(u.Payload))
	binary.BigEndian.PutUint16(buf[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(buf[2:4], u.DstPort)
	binary.BigEndian.PutUint16(buf[4:6], uint16(len(buf)))
	copy(buf[UDPHeaderLen:], u.Payload)
	return buf
}

// DecodeUDP parses a UDP datagram, honouring the length field.
func DecodeUDP(buf []byte) (*UDP, error) {
	if len(buf) < UDPHeaderLen {
		return nil, fmt.Errorf("%w: udp %d octets", ErrTruncated, len(buf))
	}
	length := int(binary.BigEndian.Uint16(buf[4:6]))
	if length < UDPHeaderLen || length > len(buf) {
		return nil, fmt.Errorf("%w: udp length %d of %d", ErrTruncated, length, len(buf))
	}
	return &UDP{
		SrcPort: binary.BigEndian.Uint16(buf[0:2]),
		DstPort: binary.BigEndian.Uint16(buf[2:4]),
		Payload: buf[UDPHeaderLen:length],
	}, nil
}
