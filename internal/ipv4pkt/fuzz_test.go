package ipv4pkt

import (
	"testing"
	"testing/quick"
)

// TestDecodersNeverPanicOnGarbage: every wire decoder must be total over
// arbitrary input — they parse attacker-controlled bytes.
func TestDecodersNeverPanicOnGarbage(t *testing.T) {
	f := func(buf []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		if p, err := Decode(buf); err == nil {
			// Nested decoders must also be total over the payload.
			_, _ = DecodeICMPEcho(p.Payload)
			_, _ = DecodeUDP(p.Payload)
		}
		_, _ = DecodeICMPEcho(buf)
		_, _ = DecodeUDP(buf)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
