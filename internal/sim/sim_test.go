package sim

import (
	"errors"
	"testing"
	"time"
)

func TestRunOrdersByTime(t *testing.T) {
	s := NewScheduler(1)
	var order []int
	s.At(30*time.Millisecond, func() { order = append(order, 3) })
	s.At(10*time.Millisecond, func() { order = append(order, 1) })
	s.At(20*time.Millisecond, func() { order = append(order, 2) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("Now = %v", s.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := NewScheduler(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5*time.Millisecond, func() { order = append(order, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("events at same instant ran out of FIFO order: %v", order)
		}
	}
}

func TestAfterNestsRelativeToFiringTime(t *testing.T) {
	s := NewScheduler(1)
	var at []time.Duration
	s.After(10*time.Millisecond, func() {
		at = append(at, s.Now())
		s.After(5*time.Millisecond, func() {
			at = append(at, s.Now())
		})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(at) != 2 || at[0] != 10*time.Millisecond || at[1] != 15*time.Millisecond {
		t.Fatalf("firing times = %v", at)
	}
}

func TestPastEventsRunNowWithoutClockRewind(t *testing.T) {
	s := NewScheduler(1)
	var fired time.Duration
	s.After(10*time.Millisecond, func() {
		// Scheduling at an absolute instant in the past must clamp to now.
		s.At(1*time.Millisecond, func() { fired = s.Now() })
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 10*time.Millisecond {
		t.Fatalf("past event fired at %v, want clamped to 10ms", fired)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	s := NewScheduler(1)
	var ran []time.Duration
	for _, d := range []time.Duration{5, 10, 15, 20} {
		d := d * time.Millisecond
		s.At(d, func() { ran = append(ran, d) })
	}
	if err := s.RunUntil(12 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(ran) != 2 {
		t.Fatalf("ran %v events, want 2", ran)
	}
	if s.Now() != 12*time.Millisecond {
		t.Fatalf("clock should advance to horizon, got %v", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", s.Pending())
	}
	// Resume: remaining events still fire.
	if err := s.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(ran) != 4 {
		t.Fatalf("after resume ran %v, want all 4", ran)
	}
}

func TestEventExactlyAtHorizonRuns(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	s.At(10*time.Millisecond, func() { fired = true })
	if err := s.RunUntil(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("event at the horizon should fire")
	}
}

func TestTimerStop(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	tm := s.After(5*time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop should report true for a pending event")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEvery(t *testing.T) {
	s := NewScheduler(1)
	var count int
	var tm *Timer
	tm = s.Every(10*time.Millisecond, func() {
		count++
		if count == 5 {
			tm.Stop()
		}
	})
	if err := s.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := NewScheduler(1)
	var count int
	s.Every(time.Millisecond, func() {
		count++
		if count == 3 {
			s.Stop()
		}
	})
	err := s.RunUntil(time.Second)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestDeterministicReplay(t *testing.T) {
	trace := func(seed int64) []time.Duration {
		s := NewScheduler(seed)
		var out []time.Duration
		var step func()
		step = func() {
			out = append(out, s.Now())
			if len(out) < 50 {
				jitter := time.Duration(s.Rand().Intn(1000)) * time.Microsecond
				s.After(jitter, step)
			}
		}
		s.After(0, step)
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := trace(7), trace(7)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := trace(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical stochastic traces")
	}
}

func TestExecutedCount(t *testing.T) {
	s := NewScheduler(1)
	for i := 0; i < 10; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Executed() != 10 {
		t.Fatalf("Executed = %d, want 10", s.Executed())
	}
}
