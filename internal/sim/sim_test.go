package sim

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

func TestRunOrdersByTime(t *testing.T) {
	s := NewScheduler(1)
	var order []int
	s.At(30*time.Millisecond, func() { order = append(order, 3) })
	s.At(10*time.Millisecond, func() { order = append(order, 1) })
	s.At(20*time.Millisecond, func() { order = append(order, 2) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("Now = %v", s.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := NewScheduler(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5*time.Millisecond, func() { order = append(order, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("events at same instant ran out of FIFO order: %v", order)
		}
	}
}

func TestAfterNestsRelativeToFiringTime(t *testing.T) {
	s := NewScheduler(1)
	var at []time.Duration
	s.After(10*time.Millisecond, func() {
		at = append(at, s.Now())
		s.After(5*time.Millisecond, func() {
			at = append(at, s.Now())
		})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(at) != 2 || at[0] != 10*time.Millisecond || at[1] != 15*time.Millisecond {
		t.Fatalf("firing times = %v", at)
	}
}

func TestPastEventsRunNowWithoutClockRewind(t *testing.T) {
	s := NewScheduler(1)
	var fired time.Duration
	s.After(10*time.Millisecond, func() {
		// Scheduling at an absolute instant in the past must clamp to now.
		s.At(1*time.Millisecond, func() { fired = s.Now() })
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 10*time.Millisecond {
		t.Fatalf("past event fired at %v, want clamped to 10ms", fired)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	s := NewScheduler(1)
	var ran []time.Duration
	for _, d := range []time.Duration{5, 10, 15, 20} {
		d := d * time.Millisecond
		s.At(d, func() { ran = append(ran, d) })
	}
	if err := s.RunUntil(12 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(ran) != 2 {
		t.Fatalf("ran %v events, want 2", ran)
	}
	if s.Now() != 12*time.Millisecond {
		t.Fatalf("clock should advance to horizon, got %v", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", s.Pending())
	}
	// Resume: remaining events still fire.
	if err := s.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(ran) != 4 {
		t.Fatalf("after resume ran %v, want all 4", ran)
	}
}

func TestEventExactlyAtHorizonRuns(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	s.At(10*time.Millisecond, func() { fired = true })
	if err := s.RunUntil(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("event at the horizon should fire")
	}
}

func TestTimerStop(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	tm := s.After(5*time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop should report true for a pending event")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEvery(t *testing.T) {
	s := NewScheduler(1)
	var count int
	var tm Timer
	tm = s.Every(10*time.Millisecond, func() {
		count++
		if count == 5 {
			tm.Stop()
		}
	})
	if err := s.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := NewScheduler(1)
	var count int
	s.Every(time.Millisecond, func() {
		count++
		if count == 3 {
			s.Stop()
		}
	})
	err := s.RunUntil(time.Second)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestDeterministicReplay(t *testing.T) {
	trace := func(seed int64) []time.Duration {
		s := NewScheduler(seed)
		var out []time.Duration
		var step func()
		step = func() {
			out = append(out, s.Now())
			if len(out) < 50 {
				jitter := time.Duration(s.Rand().Intn(1000)) * time.Microsecond
				s.After(jitter, step)
			}
		}
		s.After(0, step)
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := trace(7), trace(7)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := trace(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical stochastic traces")
	}
}

func TestZeroTimerStopIsInert(t *testing.T) {
	var tm Timer
	if tm.Stop() {
		t.Fatal("zero Timer should report nothing to stop")
	}
}

// TestStaleTimerAfterReuse pins the generation-counter contract: once an
// event has fired and its object has been recycled into a new event, the
// old handle must not cancel the new incarnation.
func TestStaleTimerAfterReuse(t *testing.T) {
	s := NewScheduler(1)
	first := s.After(time.Millisecond, func() {})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// The free list now holds the fired event; the next schedule reuses it.
	fired := false
	second := s.After(time.Millisecond, func() { fired = true })
	if second.ev != first.ev {
		t.Fatal("expected the recycled event object to be reused")
	}
	if first.Stop() {
		t.Fatal("stale handle reported a pending event")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("stale Stop cancelled the reused event")
	}
}

// TestEveryReusesOneEvent pins the periodic re-arm optimization: a ticker
// must cycle a single event object instead of allocating one per period.
func TestEveryReusesOneEvent(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	tm := s.Every(time.Millisecond, func() { count++ })
	ev := tm.ev
	if err := s.RunUntil(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if tm.ev != ev || tm.ev.gen != tm.gen {
		t.Fatal("periodic event was recycled mid-cycle")
	}
	if !tm.Stop() {
		t.Fatal("Stop should report the pending next tick")
	}
	if err := s.RunUntil(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("ticks after Stop: count = %d", count)
	}
}

// TestStopInsideEveryCallbackWithReuse re-checks the documented Stop-from-
// within-Every semantics now that the cycle re-arms one pooled event.
func TestStopInsideEveryCallbackAllowsReuse(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	var tm Timer
	tm = s.Every(time.Millisecond, func() {
		count++
		tm.Stop()
	})
	// A later one-shot that may legitimately reuse the ticker's event.
	laterRan := false
	s.At(50*time.Millisecond, func() { laterRan = true })
	if err := s.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("count = %d, want 1 (stopped from inside)", count)
	}
	if !laterRan {
		t.Fatal("unrelated later event did not run")
	}
}

// TestEventReuseKeepsDeterminism replays a stochastic self-scheduling chain
// long enough to cycle the free list many times and checks two identically
// seeded runs still trace identically.
func TestEventReuseKeepsDeterminism(t *testing.T) {
	trace := func() []time.Duration {
		s := NewScheduler(11)
		var out []time.Duration
		var step func()
		step = func() {
			out = append(out, s.Now())
			if len(out) < 5000 {
				s.After(time.Duration(s.Rand().Intn(100))*time.Microsecond, step)
			}
		}
		s.After(0, step)
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := trace(), trace()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestFreeListTracksPeak guards the recycle pool's memory bound: the free
// list holds every event ever carved (rounded up to whole slabs), so it
// must track the peak number of in-flight events, not the total scheduled.
func TestFreeListTracksPeak(t *testing.T) {
	const n = 10 * eventSlabSize
	s := NewScheduler(1)
	for i := 0; i < n; i++ {
		s.After(time.Duration(i), func() {})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.free) < n || len(s.free) > n+eventSlabSize {
		t.Fatalf("free list holds %d events after %d concurrent, want ~%d", len(s.free), n, n)
	}
	// Re-running the same load must reuse the carved slabs, not grow.
	for i := 0; i < n; i++ {
		s.After(time.Duration(i), func() {})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.free) > n+eventSlabSize {
		t.Fatalf("free list grew to %d on reuse, want at most %d", len(s.free), n+eventSlabSize)
	}
}

func TestExecutedCount(t *testing.T) {
	s := NewScheduler(1)
	for i := 0; i < 10; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Executed() != 10 {
		t.Fatalf("Executed = %d, want 10", s.Executed())
	}
}

// drawN takes n samples from a stream for comparison.
func drawN(r *rand.Rand, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = r.Int63()
	}
	return out
}

func TestDeriveRandDeterministicAcrossSchedulers(t *testing.T) {
	a := NewScheduler(42)
	b := NewScheduler(42)
	if !reflect.DeepEqual(drawN(a.DeriveRand("x"), 8), drawN(b.DeriveRand("x"), 8)) {
		t.Fatal("same seed + same name produced different streams")
	}
}

func TestDeriveRandIndependentStreams(t *testing.T) {
	s := NewScheduler(42)
	x := drawN(s.DeriveRand("x"), 8)
	// A different name diverges.
	if reflect.DeepEqual(x, drawN(s.DeriveRand("y"), 8)) {
		t.Fatal("streams \"x\" and \"y\" coincide")
	}
	// A second derivation of the same name is a NEW stream (per-name call
	// sequence), so multiple consumers of one name don't share state.
	if reflect.DeepEqual(x, drawN(s.DeriveRand("x"), 8)) {
		t.Fatal("second derivation of \"x\" repeated the first stream")
	}
	// The derived streams leave the scheduler's primary stream untouched.
	p := NewScheduler(42)
	p.DeriveRand("x")
	p.DeriveRand("y")
	q := NewScheduler(42)
	if p.Rand().Int63() != q.Rand().Int63() {
		t.Fatal("deriving streams perturbed the primary stream")
	}
}

func TestDeriveRandSeedSensitivity(t *testing.T) {
	a := NewScheduler(1)
	b := NewScheduler(2)
	if reflect.DeepEqual(drawN(a.DeriveRand("x"), 8), drawN(b.DeriveRand("x"), 8)) {
		t.Fatal("different seeds produced the same derived stream")
	}
}

func TestCausePropagatesAcrossScheduledEvents(t *testing.T) {
	s := NewScheduler(1)
	var hops []uint64
	s.After(0, func() {
		prev := s.SetCause(42)
		if prev != 0 {
			t.Fatalf("initial cause = %d, want 0", prev)
		}
		s.After(time.Millisecond, func() {
			hops = append(hops, s.Cause())
			// A nested hop inherits transitively.
			s.After(time.Millisecond, func() { hops = append(hops, s.Cause()) })
		})
		s.SetCause(prev)
		// Scheduled after restoring: carries no cause.
		s.After(time.Millisecond, func() { hops = append(hops, s.Cause()) })
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []uint64{42, 0, 42}
	if len(hops) != len(want) {
		t.Fatalf("hops = %v, want %v", hops, want)
	}
	for i := range want {
		if hops[i] != want[i] {
			t.Fatalf("hops = %v, want %v", hops, want)
		}
	}
}

func TestCauseResetBetweenTopLevelEvents(t *testing.T) {
	s := NewScheduler(1)
	s.After(0, func() { s.SetCause(7) }) // leaks deliberately
	s.After(time.Millisecond, func() {
		if c := s.Cause(); c != 0 {
			t.Fatalf("cause leaked across events: %d", c)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPeriodicEventKeepsItsCause(t *testing.T) {
	s := NewScheduler(1)
	var seen []uint64
	var tick Timer
	s.After(0, func() {
		prev := s.SetCause(9)
		n := 0
		tick = s.Every(time.Millisecond, func() {
			seen = append(seen, s.Cause())
			if n++; n == 3 {
				tick.Stop()
			}
		})
		s.SetCause(prev)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for _, c := range seen {
		if c != 9 {
			t.Fatalf("periodic cause = %v, want all 9", seen)
		}
	}
	if len(seen) != 3 {
		t.Fatalf("fired %d times, want 3", len(seen))
	}
}

func TestTraceRecorderAttachment(t *testing.T) {
	s := NewScheduler(1)
	if s.TraceRecorder() != nil {
		t.Fatal("fresh scheduler has a trace recorder")
	}
	v := &struct{ x int }{1}
	s.SetTraceRecorder(v)
	if s.TraceRecorder() != any(v) {
		t.Fatal("attachment not returned")
	}
}
