package sim

import (
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestSchedulerInstrument(t *testing.T) {
	s := NewScheduler(1)
	reg := telemetry.New()
	s.Instrument(reg)

	for i := 0; i < 5; i++ {
		s.At(time.Duration(i)*time.Millisecond, func() {})
	}
	cancelled := s.At(10*time.Millisecond, func() { t.Fatal("cancelled event ran") })
	if !cancelled.Stop() {
		t.Fatal("Stop should report pending")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}

	if got := reg.Counter("sim_events_executed_total").Value(); got != 5 {
		t.Fatalf("executed = %d", got)
	}
	if got := reg.Counter("sim_events_cancelled_total").Value(); got != 1 {
		t.Fatalf("cancelled = %d", got)
	}
	// All six events were queued before any ran.
	if got := reg.Gauge("sim_queue_depth_highwater").Value(); got != 6 {
		t.Fatalf("queue high-water = %v", got)
	}
}

// TestSchedulerInstrumentClock checks the registry's event log stamps with
// virtual, not wall, time once a scheduler is attached.
func TestSchedulerInstrumentClock(t *testing.T) {
	s := NewScheduler(1)
	reg := telemetry.New()
	s.Instrument(reg)

	s.At(42*time.Millisecond, func() {
		reg.Events().Log(telemetry.SevInfo, "test", "tick")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	evs := reg.Events().Events()
	if len(evs) != 1 || evs[0].At != 42*time.Millisecond {
		t.Fatalf("events = %+v", evs)
	}
}

// TestSchedulerUninstrumented makes sure the bare scheduler still runs with
// all telemetry handles nil.
func TestSchedulerUninstrumented(t *testing.T) {
	s := NewScheduler(1)
	ran := false
	tm := s.At(time.Millisecond, func() {})
	tm.Stop()
	s.At(2*time.Millisecond, func() { ran = true })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("event did not run")
	}
}
