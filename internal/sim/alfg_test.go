package sim

import (
	"math/rand"
	"testing"
)

// TestALFGMatchesStdlib locks the vendored generator to math/rand: every
// derived stream's draws must be bit-identical to rand.NewSource for the
// same seed, or experiment output silently diverges.
func TestALFGMatchesStdlib(t *testing.T) {
	seeds := []int64{0, 1, -1, 42, 89482311, 1 << 40, -(1 << 40), int64(^uint64(0) >> 1)}
	for i := int64(0); i < 64; i++ {
		seeds = append(seeds, i*2654435761)
	}
	for _, seed := range seeds {
		want := rand.NewSource(seed).(rand.Source64)
		got := new(alfgSource)
		alfgSeed(got, seed)
		for i := 0; i < 700; i++ { // cross the register length
			switch i % 3 {
			case 0:
				if w, g := want.Int63(), got.Int63(); w != g {
					t.Fatalf("seed %d draw %d: Int63 %d != %d", seed, i, g, w)
				}
			default:
				if w, g := want.Uint64(), got.Uint64(); w != g {
					t.Fatalf("seed %d draw %d: Uint64 %d != %d", seed, i, g, w)
				}
			}
		}
	}
}

// TestALFGSeedCacheHit: a cached re-seed must restart the stream exactly.
func TestALFGSeedCacheHit(t *testing.T) {
	const seed = 12345
	a := new(alfgSource)
	alfgSeed(a, seed) // miss: seeds and caches
	first := make([]uint64, 32)
	for i := range first {
		first[i] = a.Uint64()
	}
	b := new(alfgSource)
	alfgSeed(b, seed) // hit: copies the cached register
	for i := range first {
		if g := b.Uint64(); g != first[i] {
			t.Fatalf("draw %d after cached seed: %d != %d", i, g, first[i])
		}
	}
}

// TestLazySourceMatchesEager: the scheduler-facing wrapper draws the same
// sequence as an eagerly constructed rand.Rand.
func TestLazySourceMatchesEager(t *testing.T) {
	const seed = 98765
	want := rand.New(rand.NewSource(seed))
	got := rand.New(&lazySource{seed: seed})
	for i := 0; i < 100; i++ {
		if w, g := want.Float64(), got.Float64(); w != g {
			t.Fatalf("draw %d: Float64 %v != %v", i, g, w)
		}
		if w, g := want.Int63n(1000), got.Int63n(1000); w != g {
			t.Fatalf("draw %d: Int63n %v != %v", i, g, w)
		}
		if w, g := want.Uint64(), got.Uint64(); w != g {
			t.Fatalf("draw %d: Uint64 %v != %v", i, g, w)
		}
	}
}
