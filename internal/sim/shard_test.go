package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// buildShardWorkload wires a ring of n shards, each running periodic local
// work that schedules follow-up events and ships every third tick across
// the ring's trunks, logging everything it executes. Per-shard logs are
// appended only by that shard's events, so the combined transcript is a
// pure function of per-shard execution order.
func buildShardWorkload(t *testing.T, seed int64, n, workers int) (*ShardedScheduler, []*strings.Builder) {
	t.Helper()
	ss := NewSharded(seed, n)
	ss.SetWorkers(workers)
	logs := make([]*strings.Builder, n)
	links := make([]*CrossLink, n)
	for i := 0; i < n; i++ {
		logs[i] = &strings.Builder{}
		links[i] = ss.Link(i, (i+1)%n, time.Millisecond)
	}
	for i := 0; i < n; i++ {
		i := i
		sh := ss.Shard(i)
		period := time.Duration(200+17*i) * time.Millisecond
		tick := 0
		sh.Every(period, func() {
			tick++
			now := sh.Now()
			jitter := sh.Int63n(1000) // exercise per-shard RNG isolation
			fmt.Fprintf(logs[i], "s%d tick %d @%v j%d\n", i, tick, now, jitter)
			sh.After(time.Duration(jitter)*time.Microsecond, func() {
				fmt.Fprintf(logs[i], "s%d follow @%v\n", i, sh.Now())
			})
			if tick%3 == 0 {
				from, k := i, tick
				dst := (i + 1) % n
				links[i].Send(func() {
					fmt.Fprintf(logs[dst], "s%d recv from s%d tick %d @%v\n",
						dst, from, k, ss.Shard(dst).Now())
				})
			}
		})
	}
	return ss, logs
}

// transcript runs the workload to the horizon and concatenates the
// per-shard logs in shard order.
func transcript(t *testing.T, seed int64, n, workers int, horizon time.Duration) string {
	t.Helper()
	ss, logs := buildShardWorkload(t, seed, n, workers)
	if err := ss.RunUntil(horizon); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	var all strings.Builder
	for i, l := range logs {
		fmt.Fprintf(&all, "== shard %d (now %v, executed %d)\n%s",
			i, ss.Shard(i).Now(), ss.Shard(i).Executed(), l.String())
	}
	return all.String()
}

// TestShardedWidthParity is the engine's core determinism contract: the
// same seed produces byte-identical transcripts at worker widths 1, 2, 8.
func TestShardedWidthParity(t *testing.T) {
	const shards = 5
	want := transcript(t, 42, shards, 1, 10*time.Second)
	if !strings.Contains(want, "recv from") {
		t.Fatalf("workload never crossed a shard boundary:\n%s", want)
	}
	for _, w := range []int{2, 8} {
		if got := transcript(t, 42, shards, w, 10*time.Second); got != want {
			t.Fatalf("width %d transcript diverged from width 1\nwidth1:\n%s\nwidth%d:\n%s",
				w, want, w, got)
		}
	}
}

// TestCrossLinkTiming pins the delivery semantics: a message sent at
// sender-virtual-time T over a latency-L link runs on the destination at
// exactly T+L, and never inside the window that sent it.
func TestCrossLinkTiming(t *testing.T) {
	ss := NewSharded(1, 2)
	link := ss.Link(0, 1, 3*time.Millisecond)
	var deliveredAt time.Duration
	ss.Shard(0).At(7*time.Millisecond, func() {
		link.Send(func() { deliveredAt = ss.Shard(1).Now() })
	})
	if err := ss.RunUntil(time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if want := 10 * time.Millisecond; deliveredAt != want {
		t.Fatalf("cross message delivered at %v, want %v", deliveredAt, want)
	}
	if got := ss.CrossMessages(); got != 1 {
		t.Fatalf("CrossMessages = %d, want 1", got)
	}
}

// TestShardedHorizonSemantics: events exactly at the horizon run (matching
// Scheduler.RunUntil), every shard's clock lands on the horizon, and
// unlinked shard sets run in one window.
func TestShardedHorizonSemantics(t *testing.T) {
	ss := NewSharded(9, 3) // no links: lookahead 0, independent shards
	ran := make([]bool, 3)
	for i := range ran {
		i := i
		ss.Shard(i).At(time.Second, func() { ran[i] = true })
		ss.Shard(i).At(time.Second+time.Nanosecond, func() {
			t.Errorf("shard %d ran an event beyond the horizon", i)
		})
	}
	if err := ss.RunUntil(time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	for i, r := range ran {
		if !r {
			t.Errorf("shard %d event at the horizon did not run", i)
		}
		if now := ss.Shard(i).Now(); now != time.Second {
			t.Errorf("shard %d clock = %v, want 1s", i, now)
		}
	}
	if ss.Rounds() != 1 {
		t.Errorf("unlinked shards took %d rounds, want 1", ss.Rounds())
	}
}

// TestShardedStop: a shard stopping mid-window aborts the whole run with
// ErrStopped, exactly like the single-scheduler contract.
func TestShardedStop(t *testing.T) {
	ss := NewSharded(3, 2)
	ss.Link(0, 1, time.Millisecond)
	sh := ss.Shard(0)
	sh.At(5*time.Millisecond, sh.Stop)
	// Stop halts "after the currently executing event returns", observed at
	// the next loop step — there must be later work for the run to abandon.
	sh.Every(time.Millisecond, func() {})
	if err := ss.RunUntil(time.Second); err != ErrStopped {
		t.Fatalf("RunUntil = %v, want ErrStopped", err)
	}
}

// TestShardSeedDecorrelated: shard seeds differ from each other and from
// the root seed.
func TestShardSeedDecorrelated(t *testing.T) {
	seen := map[int64]bool{7: true}
	for i := 0; i < 64; i++ {
		s := ShardSeed(7, i)
		if seen[s] {
			t.Fatalf("shard seed collision at shard %d", i)
		}
		seen[s] = true
	}
	if ShardSeed(7, 3) == ShardSeed(8, 3) {
		t.Fatal("shard seed ignores the root seed")
	}
}

// TestShardedTelemetry: the synchronization metrics the ops surface
// exports move, and match the engine's own counters.
func TestShardedTelemetry(t *testing.T) {
	reg := telemetry.New()
	ss, _ := buildShardWorkload(t, 11, 4, 2)
	ss.Instrument(reg)
	if err := ss.RunUntil(5 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if ss.Rounds() == 0 || ss.SyncWaits() == 0 || ss.CrossMessages() == 0 {
		t.Fatalf("engine counters did not move: rounds=%d waits=%d cross=%d",
			ss.Rounds(), ss.SyncWaits(), ss.CrossMessages())
	}
	checks := map[string]uint64{
		"shard_rounds_total":     ss.Rounds(),
		"shard_sync_waits_total": ss.SyncWaits(),
		"cross_lan_frames_total": ss.CrossMessages(),
	}
	for name, want := range checks {
		if got := reg.CounterValue(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	hp, ok := reg.HistogramSnapshot("shard_lookahead_stall_seconds")
	if !ok || hp.Count == 0 {
		t.Errorf("lookahead-stall histogram empty (ok=%v)", ok)
	}
	if hp.Count != ss.SyncWaits() {
		t.Errorf("stall observations = %d, want one per sync wait (%d)", hp.Count, ss.SyncWaits())
	}
}

// TestRunBeforeExclusive pins the window primitive's exclusive bound and
// clock behaviour on a bare scheduler.
func TestRunBeforeExclusive(t *testing.T) {
	s := NewScheduler(1)
	var ran []time.Duration
	for _, at := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond} {
		at := at
		s.At(at, func() { ran = append(ran, at) })
	}
	if err := s.runBefore(3 * time.Millisecond); err != nil {
		t.Fatalf("runBefore: %v", err)
	}
	if len(ran) != 2 {
		t.Fatalf("runBefore(3ms) ran %d events, want 2 (bound is exclusive)", len(ran))
	}
	if s.Now() != 2*time.Millisecond {
		t.Fatalf("clock = %v after window, want 2ms (stays at last event)", s.Now())
	}
	s.advanceTo(5 * time.Millisecond)
	if s.Now() != 5*time.Millisecond {
		t.Fatalf("advanceTo: clock = %v, want 5ms", s.Now())
	}
	s.advanceTo(time.Millisecond) // never backwards
	if s.Now() != 5*time.Millisecond {
		t.Fatalf("advanceTo moved the clock backwards to %v", s.Now())
	}
}
