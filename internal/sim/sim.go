// Package sim provides the deterministic discrete-event engine that drives
// every simulated LAN in this framework.
//
// A Scheduler owns a virtual clock and a priority queue of timed events.
// Components (links, host stacks, attackers, detectors) schedule callbacks at
// future virtual instants; Run drains the queue in (time, sequence) order so
// that identical seeds and scenarios always replay identically. The engine is
// single-threaded by design: determinism is what makes the evaluation
// reproducible, and event-driven execution makes thousand-host scenarios run
// in milliseconds of wall time. (Experiments still exploit every core by
// running many independent schedulers at once — see internal/eval.RunTrials.)
//
// Scheduling is the engine's hottest path: every frame hop, retry timer and
// probe window is one event. To keep it allocation-free in steady state the
// scheduler recycles executed events through a free list and hands out Timer
// handles by value; a per-event generation counter keeps stale handles inert
// after their event has been recycled. The queue itself is a hand-rolled
// 4-ary heap: compared to container/heap it halves the tree depth, drops
// the interface dispatch per sift step, and pops in exactly the same
// (time, sequence) order — the comparator is a total order, so replay
// determinism is untouched.
package sim

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"time"

	"repro/internal/telemetry"
)

// ErrStopped is returned by Run when the simulation was halted explicitly
// with Stop before the horizon or event budget was reached.
var ErrStopped = errors.New("simulation stopped")

// Events are allocated in slabs of 2^eventSlabShift and addressed by a
// compact uint32 ref (slab index · slab size + offset). Slab allocation
// amortizes the ramp-up cost (one allocation per 64 in-flight events
// instead of one each) and keeps a scheduler's event population on
// contiguous memory; the refs let the heap and the free list hold plain
// integers instead of pointers, so the scheduler's two hottest loops (heap
// sifts, event recycling) write no pointers at all — no GC write barriers,
// and nothing in either structure for the garbage collector to scan.
const (
	eventSlabShift = 6
	eventSlabSize  = 1 << eventSlabShift
	eventSlabMask  = eventSlabSize - 1
)

// Task is a unit of work scheduled without a closure allocation: holders of
// a reusable object (netsim's pooled frame transits) implement Run and pass
// the object itself to AtTask/AfterTask, so the hot path schedules by
// storing one pointer instead of capturing variables into a fresh closure.
type Task interface {
	Run()
}

// event is a scheduled callback. Events are pooled: once executed (or
// drained after cancellation) an event returns to the scheduler's free list
// and a later At/After/Every call may reuse it. gen is bumped on every
// recycle so Timer handles created for a previous incarnation no-op.
// Exactly one of fn and task is set.
type event struct {
	at     time.Duration
	seq    uint64 // tiebreaker: FIFO among events at the same instant
	fn     func()
	task   Task          // closure-free alternative to fn
	ref    uint32        // this event's slot in the scheduler's slab table
	dead   bool          // cancelled
	queued bool          // in the heap (not yet popped)
	gen    uint64        // incarnation counter, bumped on recycle
	period time.Duration // >0: re-arm after each firing (Every)
	cause  uint64        // causal span active when the event was scheduled
}

// run invokes the event's work, whichever form it was scheduled in.
func (ev *event) run() {
	if ev.fn != nil {
		ev.fn()
		return
	}
	ev.task.Run()
}

// heapEntry is one heap slot: the (at, seq) ordering key is stored inline
// so sift comparisons touch only the contiguous heap slice, never the
// events themselves — on flood-heavy workloads the pointer chase per
// comparison was the single largest CPU line. seq and the event's slab ref
// pack into one word (seq in the high bits, so comparing the packed word
// compares seq), keeping entries at 16 bytes and the whole heap
// pointer-free: sift steps move two words and the GC never scans the
// queue. schedule guards the 32-bit seq bound — at ~100ns of simulated
// work per event a single trial would need days of wall time to reach it.
type heapEntry struct {
	at     time.Duration
	seqRef uint64 // seq<<32 | ref
}

// less orders entries by (at, seq); seq is unique, so this is a total
// order and heap pops are deterministic regardless of heap shape.
func (a heapEntry) less(b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seqRef < b.seqRef
}

// eventQueue is a 4-ary min-heap of events ordered by (at, seq). Four
// children per node halves the depth of the equivalent binary heap, and the
// inline keys keep sifts on one cache-resident array.
type eventQueue []heapEntry

// push inserts ev (whose at/seq are already set) and sifts it up.
func (q *eventQueue) push(ev *event) {
	h := *q
	e := heapEntry{at: ev.at, seqRef: ev.seq<<32 | uint64(ev.ref)}
	i := len(h)
	h = append(h, e)
	for i > 0 {
		parent := (i - 1) / 4
		if !e.less(h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = e
	*q = h
	ev.queued = true
}

// pop removes and returns the ref of the minimum event.
func (q *eventQueue) pop() uint32 {
	h := *q
	top := uint32(h[0].seqRef)
	n := len(h) - 1
	last := h[n]
	h = h[:n]
	*q = h
	if n == 0 {
		return top
	}
	// Bottom-up sift (Wegener): walk the hole from the root to a leaf along
	// the min-child path — 3 compares per level instead of 4, because the
	// refill element is never compared on the way down — then bubble the
	// refill up from the leaf. The refill comes from the array's tail, which
	// under a time-ordered workload holds the latest keys, so the upward
	// pass almost always stops immediately. Keys are strictly totally
	// ordered ((at, seq), seq unique), so the pop sequence is identical to
	// the top-down variant's.
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if h[c].less(h[min]) {
				min = c
			}
		}
		h[i] = h[min]
		i = min
	}
	for i > 0 {
		p := (i - 1) / 4
		if !last.less(h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = last
	return top
}

// Timer is a handle to a scheduled event that can be cancelled. It is a
// plain value: copying is cheap, the zero value is an inert no-op handle,
// and a handle outliving its event stays safe — when the event is recycled
// its generation moves on and the stale handle's Stop does nothing.
type Timer struct {
	ev  *event
	gen uint64
}

// Stop cancels the event. It reports whether the event had not yet fired
// (mirroring time.Timer.Stop semantics). Calling Stop from inside a periodic
// callback created with Every cancels the rescheduling cycle.
func (t Timer) Stop() bool {
	if t.ev == nil || t.ev.gen != t.gen || t.ev.dead {
		return false
	}
	pending := t.ev.queued
	t.ev.dead = true
	return pending
}

// Scheduler is a deterministic discrete-event scheduler with a virtual clock.
// The zero value is not usable; construct with NewScheduler.
type Scheduler struct {
	now       time.Duration
	queue     eventQueue
	seq       uint64
	seed      int64
	rng       *rand.Rand
	rootSrc   *lazySource       // rng's source, typed for the Int63n fast path
	streamSeq map[string]uint64 // per-name DeriveRand call counters

	// Derived stream objects, recycled across Reset: a reset scheduler
	// re-derives the same construction-ordered streams, so the rand.Rand
	// wrappers (and their ALFG registers, via lazySource.spare) are reused
	// by call order and only ever allocated on first growth.
	streams    []*rand.Rand
	streamUsed int
	stopped    bool
	executed   uint64
	slabs      [][]event // all events ever carved, addressed by event.ref
	free       []uint32  // refs of recycled events awaiting reuse

	// scratch holds opaque per-layer recycling caches owned by the layers
	// built on this scheduler (netsim parks its transit free lists in one
	// slot, arppkt its frame arena in another). Unlike every other field
	// it survives Reset: the caches hold only inert recycled shells, and
	// carrying them across trials is the point — a pooled scheduler's next
	// LAN starts with warm free lists instead of re-carving them.
	scratch [numScratchSlots]any

	// Causal context: the span ID under which the current event runs.
	// schedule captures it into each new event and the run loops restore it
	// before every callback, so causality flows across timer hops for free —
	// one uint64 copy per event, no allocation, zero when tracing is off.
	cause    uint64
	traceRec any // opaque recorder attachment, see SetTraceRecorder

	// Telemetry handles; nil (no-op) unless Instrument is called.
	mExecuted  *telemetry.Counter
	mCancelled *telemetry.Counter
	mQueueHigh *telemetry.Gauge
}

// NewScheduler returns a scheduler whose clock starts at zero and whose
// random stream is derived from seed.
func NewScheduler(seed int64) *Scheduler {
	src := &lazySource{seed: seed}
	return &Scheduler{
		seed:    seed,
		rootSrc: src,
		rng:     rand.New(src),
		queue:   make(eventQueue, 0, 512),
	}
}

// Reset returns the scheduler to its just-constructed state for a new seed,
// keeping the event slabs and the queue/free-list capacity it has already
// grown. Experiments run thousands of short trials, each on a fresh
// scheduler; recycling one through Reset skips re-carving the event
// population and re-growing the queue, which together dominated trial
// setup allocation. A reset scheduler is observationally identical to
// NewScheduler(seed): the clock, sequence counter, random streams and
// causal state all restart, and every parked event has its generation
// bumped so Timer handles from the previous life stay inert.
func (s *Scheduler) Reset(seed int64) {
	s.now = 0
	s.queue = s.queue[:0]
	s.seq = 0
	s.seed = seed
	s.rng.Seed(seed) // re-lazies the root source in place
	clear(s.streamSeq)
	s.streamUsed = 0
	s.stopped = false
	s.executed = 0
	s.cause = 0
	s.traceRec = nil
	s.mExecuted, s.mCancelled, s.mQueueHigh = nil, nil, nil
	s.free = s.free[:0]
	for _, slab := range s.slabs {
		for i := range slab {
			ev := &slab[i]
			ev.gen++
			ev.fn = nil
			ev.task = nil
			ev.dead = false
			ev.queued = false
			ev.period = 0
			ev.cause = 0
			s.free = append(s.free, ev.ref)
		}
	}
}

// Instrument attaches the scheduler to a telemetry registry: events
// executed, cancelled events drained, and the queue-depth high-water mark.
// It also makes the registry's spans and events read this virtual clock.
// Passing nil detaches (handles become no-ops again).
func (s *Scheduler) Instrument(reg *telemetry.Registry) {
	s.mExecuted = reg.Counter("sim_events_executed_total")
	s.mCancelled = reg.Counter("sim_events_cancelled_total")
	s.mQueueHigh = reg.Gauge("sim_queue_depth_highwater")
	reg.SetNow(s.Now)
}

// Now returns the current virtual time (elapsed since simulation start).
func (s *Scheduler) Now() time.Duration { return s.now }

// ScratchKey names one of the scheduler's opaque recycling-cache slots.
// Each layer that pools objects across Reset owns exactly one key.
type ScratchKey uint8

const (
	// ScratchTasks is netsim's slot: transit/flood task free lists.
	ScratchTasks ScratchKey = iota
	// ScratchFrames is arppkt's slot: the ARP frame arena.
	ScratchFrames

	numScratchSlots
)

// Scratch returns the opaque recycling-cache slot for k (nil until
// SetScratch).
func (s *Scheduler) Scratch(k ScratchKey) any { return s.scratch[k] }

// SetScratch installs the opaque recycling-cache slot for k. Slots survive
// Reset so recycled shells carry over to the scheduler's next life; the
// installing layer must therefore never park anything trial-specific in one.
func (s *Scheduler) SetScratch(k ScratchKey, v any) { s.scratch[k] = v }

// Rand exposes the scheduler's seeded random stream so that every stochastic
// choice in a scenario flows from the one seed.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Int63n draws from the same stream as Rand().Int63n(n), bypassing the
// rand.Rand wrapper's two interface dispatches — it replicates math/rand's
// rejection algorithm over the scheduler's own source, so the consumed
// draws (and therefore every later value on the stream) are identical.
// It exists for per-frame jitter, the single hottest draw site. n must be
// positive.
func (s *Scheduler) Int63n(n int64) int64 {
	src := s.rootSrc
	if n&(n-1) == 0 { // n is a power of two
		return src.Int63() & (n - 1)
	}
	max := int64((1 << 63) - 1 - (1<<63)%uint64(n))
	v := src.Int63()
	for v > max {
		v = src.Int63()
	}
	return v % n
}

// DeriveRand returns an independent deterministic random stream for the
// named consumer, derived from the scheduler's seed. Repeated calls with the
// same name yield distinct streams keyed by call order, so deterministic
// construction (links in attach order, fault injectors in plan order) maps
// each consumer to a stable stream. Isolated streams are what keep one
// consumer's draws from perturbing another's: adding a fault injector, or a
// lossy link, must never shift the random sequence an existing experiment
// observes through Rand or through its own derived stream.
func (s *Scheduler) DeriveRand(name string) *rand.Rand {
	if s.streamSeq == nil {
		s.streamSeq = make(map[string]uint64)
	}
	n := s.streamSeq[name]
	s.streamSeq[name]++
	// FNV-1a over seed||n||name, inlined: hash.Hash64 would escape and
	// stream derivation runs once per link and injector per trial.
	const offset64, prime64 = 14695981039346656037, 1099511628211
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(s.seed))
	binary.LittleEndian.PutUint64(buf[8:], n)
	h := uint64(offset64)
	for _, b := range buf {
		h = (h ^ uint64(b)) * prime64
	}
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * prime64
	}
	seed := int64(h)
	if s.streamUsed < len(s.streams) {
		// Recycle a stream object from a previous life of this scheduler
		// (see Reset). Seed restarts the rand.Rand and re-lazies the
		// source, so the draw sequence matches a fresh stream exactly.
		r := s.streams[s.streamUsed]
		s.streamUsed++
		r.Seed(seed)
		return r
	}
	r := rand.New(&lazySource{seed: seed})
	s.streams = append(s.streams, r)
	s.streamUsed++
	return r
}

// lazySource defers the lagged-Fibonacci seeding of a random source until
// the first draw (and takes the seeded register from alfg.go's seed cache
// when the seed has been used before). Stream derivation is a construction-time
// property (every link and fault injector gets one), but many derived
// streams are never drawn from — a lossy link that carries no traffic, an
// injector whose window never opens — and seeding those dominated
// scheduler construction in the fault-sweep experiments. The draw sequence
// is identical to an eagerly seeded source, just paid for on first use.
// It implements rand.Source64 so rand.Rand consumes draws through exactly
// the same code path as with rand.NewSource.
type lazySource struct {
	seed  int64
	src   *alfgSource // typed, not rand.Source64: draws skip a dispatch
	spare *alfgSource // register retired by Seed, reused by the next init
}

func (l *lazySource) init() {
	src := l.spare
	if src == nil {
		src = new(alfgSource)
	} else {
		l.spare = nil
	}
	alfgSeed(src, l.seed)
	l.src = src
}

func (l *lazySource) Int63() int64 {
	if l.src == nil {
		l.init()
	}
	return l.src.Int63()
}

func (l *lazySource) Uint64() uint64 {
	if l.src == nil {
		l.init()
	}
	return l.src.Uint64()
}

func (l *lazySource) Seed(seed int64) {
	l.seed = seed
	if l.src != nil {
		l.spare = l.src // keep the ~5KB register for reuse
		l.src = nil
	}
}

// Cause returns the causal span ID the currently executing event carries
// (zero when no trace is active). Components use it as the parent for spans
// they open; the propagation itself needs no participation from them.
func (s *Scheduler) Cause() uint64 { return s.cause }

// SetCause replaces the active causal span ID and returns the previous one,
// so instrumentation can scope a span to a synchronous section and restore
// the caller's context afterwards.
func (s *Scheduler) SetCause(id uint64) (prev uint64) {
	prev = s.cause
	s.cause = id
	return prev
}

// SetTraceRecorder attaches an opaque causal recorder to the scheduler.
// The sim package never looks inside it — components that understand the
// concrete type (internal/telemetry/causal) retrieve it with TraceRecorder
// and type-assert. Keeping the attachment opaque spares this hot package an
// import it does not need.
func (s *Scheduler) SetTraceRecorder(rec any) { s.traceRec = rec }

// TraceRecorder returns the attachment set by SetTraceRecorder (nil when
// tracing was never enabled).
func (s *Scheduler) TraceRecorder() any { return s.traceRec }

// Executed returns the number of events run so far.
func (s *Scheduler) Executed() uint64 { return s.executed }

// Pending returns the number of events currently queued (including ones that
// have been cancelled but not yet drained).
func (s *Scheduler) Pending() int { return len(s.queue) }

// eventAt resolves a slab ref to its event. Slab backing arrays are never
// reallocated, so the returned pointer is stable for the scheduler's life.
func (s *Scheduler) eventAt(ref uint32) *event {
	return &s.slabs[ref>>eventSlabShift][ref&eventSlabMask]
}

// alloc takes an event off the free list, carving a fresh slab when empty.
func (s *Scheduler) alloc() *event {
	if n := len(s.free) - 1; n >= 0 {
		ref := s.free[n]
		s.free = s.free[:n]
		return s.eventAt(ref)
	}
	base := uint32(len(s.slabs)) << eventSlabShift
	slab := make([]event, eventSlabSize)
	for i := range slab {
		slab[i].ref = base + uint32(i)
	}
	s.slabs = append(s.slabs, slab)
	for i := eventSlabSize - 1; i >= 1; i-- {
		s.free = append(s.free, base+uint32(i))
	}
	return &slab[0]
}

// release recycles a finished event onto the free list. The generation bump
// comes first so every outstanding Timer for this incarnation goes inert.
// fn and task are cleared so a parked event retains no transient objects
// (closures capture frames; a stale reference kept live until reuse
// inflates the GC mark set).
func (s *Scheduler) release(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.task = nil
	ev.dead = false
	ev.period = 0
	ev.cause = 0
	s.free = append(s.free, ev.ref)
}

// schedule queues fn (or task) at the (already clamped) absolute instant at.
func (s *Scheduler) schedule(at, period time.Duration, fn func(), task Task) Timer {
	s.seq++
	if s.seq >= 1<<32 {
		panic("sim: event sequence exceeded 2^32 (heap key packing bound)")
	}
	ev := s.alloc()
	ev.at, ev.seq, ev.fn, ev.task, ev.period, ev.cause = at, s.seq, fn, task, period, s.cause
	s.queue.push(ev)
	if s.mQueueHigh != nil {
		s.mQueueHigh.SetMax(float64(len(s.queue)))
	}
	return Timer{ev: ev, gen: ev.gen}
}

// At schedules fn to run at absolute virtual time at. Events scheduled in the
// past run "now" (at the current clock reading) but never move the clock
// backwards. It returns a Timer that can cancel the event.
func (s *Scheduler) At(at time.Duration, fn func()) Timer {
	if at < s.now {
		at = s.now
	}
	return s.schedule(at, 0, fn, nil)
}

// After schedules fn to run d after the current virtual instant.
func (s *Scheduler) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.schedule(s.now+d, 0, fn, nil)
}

// AfterTask schedules t.Run d after the current virtual instant. It is
// After without the closure: callers that already own a reusable object
// (netsim's pooled frame transits) schedule it directly, so the frame hot
// path allocates nothing per hop.
func (s *Scheduler) AfterTask(d time.Duration, t Task) Timer {
	if d < 0 {
		d = 0
	}
	return s.schedule(s.now+d, 0, nil, t)
}

// Every schedules fn to run every period, starting one period from now,
// until the returned Timer is stopped or the run ends. The callback observes
// the clock already advanced to its firing instant. One event object serves
// the whole cycle: the run loop re-arms it after each firing.
func (s *Scheduler) Every(period time.Duration, fn func()) Timer {
	if period <= 0 {
		period = time.Nanosecond
	}
	return s.schedule(s.now+period, period, fn, nil)
}

// finish recycles a just-executed event, or re-arms it if it is periodic
// and its cycle has not been stopped (possibly by its own callback).
func (s *Scheduler) finish(ev *event) {
	if ev.period > 0 && !ev.dead {
		s.seq++
		if s.seq >= 1<<32 {
			panic("sim: event sequence exceeded 2^32 (heap key packing bound)")
		}
		ev.at = s.now + ev.period
		ev.seq = s.seq
		s.queue.push(ev)
		if s.mQueueHigh != nil {
			s.mQueueHigh.SetMax(float64(len(s.queue)))
		}
		return
	}
	s.release(ev)
}

// Stop halts the run after the currently executing event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// RunUntil executes events in order until the virtual clock would pass
// horizon, the queue drains, or Stop is called. Events scheduled exactly at
// the horizon still run. It returns ErrStopped if halted explicitly.
func (s *Scheduler) RunUntil(horizon time.Duration) error {
	s.stopped = false
	for len(s.queue) > 0 {
		if s.stopped {
			return ErrStopped
		}
		next := s.queue[0]
		if next.at > horizon {
			break
		}
		popped := s.eventAt(s.queue.pop())
		popped.queued = false
		if popped.dead {
			s.mCancelled.Inc()
			s.release(popped)
			continue
		}
		s.now = popped.at
		s.executed++
		s.mExecuted.Inc()
		s.cause = popped.cause
		popped.run()
		s.cause = 0
		s.finish(popped)
	}
	if s.now < horizon {
		s.now = horizon
	}
	return nil
}

// NextEventAt returns the virtual instant of the earliest queued event and
// whether one exists. Cancelled-but-undrained events count: their position
// is deterministic, so a window bound computed from them is too.
func (s *Scheduler) NextEventAt() (time.Duration, bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].at, true
}

// runBefore executes events strictly before limit — the sharded engine's
// window primitive. Unlike RunUntil it treats the bound as exclusive and
// does not advance the clock to it: the clock stays at the last executed
// event, so a later window (or advanceTo) owns the remaining span.
func (s *Scheduler) runBefore(limit time.Duration) error {
	s.stopped = false
	for len(s.queue) > 0 {
		if s.stopped {
			return ErrStopped
		}
		next := s.queue[0]
		if next.at >= limit {
			break
		}
		popped := s.eventAt(s.queue.pop())
		popped.queued = false
		if popped.dead {
			s.mCancelled.Inc()
			s.release(popped)
			continue
		}
		s.now = popped.at
		s.executed++
		s.mExecuted.Inc()
		s.cause = popped.cause
		popped.run()
		s.cause = 0
		s.finish(popped)
	}
	return nil
}

// advanceTo moves the clock forward to t (never backwards), mirroring what
// RunUntil does at its horizon once a sharded run's final window has drained.
func (s *Scheduler) advanceTo(t time.Duration) {
	if s.now < t {
		s.now = t
	}
}

// Run executes events until the queue drains or Stop is called.
func (s *Scheduler) Run() error {
	s.stopped = false
	for len(s.queue) > 0 {
		if s.stopped {
			return ErrStopped
		}
		popped := s.eventAt(s.queue.pop())
		popped.queued = false
		if popped.dead {
			s.mCancelled.Inc()
			s.release(popped)
			continue
		}
		s.now = popped.at
		s.executed++
		s.mExecuted.Inc()
		s.cause = popped.cause
		popped.run()
		s.cause = 0
		s.finish(popped)
	}
	return nil
}
