// Package sim provides the deterministic discrete-event engine that drives
// every simulated LAN in this framework.
//
// A Scheduler owns a virtual clock and a priority queue of timed events.
// Components (links, host stacks, attackers, detectors) schedule callbacks at
// future virtual instants; Run drains the queue in (time, sequence) order so
// that identical seeds and scenarios always replay identically. The engine is
// single-threaded by design: determinism is what makes the evaluation
// reproducible, and event-driven execution makes thousand-host scenarios run
// in milliseconds of wall time. (Experiments still exploit every core by
// running many independent schedulers at once — see internal/eval.RunTrials.)
//
// Scheduling is the engine's hottest path: every frame hop, retry timer and
// probe window is one event. To keep it allocation-free in steady state the
// scheduler recycles executed events through a free list and hands out Timer
// handles by value; a per-event generation counter keeps stale handles inert
// after their event has been recycled.
package sim

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"hash/fnv"
	"math/rand"
	"time"

	"repro/internal/telemetry"
)

// ErrStopped is returned by Run when the simulation was halted explicitly
// with Stop before the horizon or event budget was reached.
var ErrStopped = errors.New("simulation stopped")

// maxFreeEvents bounds the scheduler's event free list so a one-off burst
// (a flood scenario draining thousands of queued frames) does not pin that
// much memory for the rest of the run. Steady-state workloads cycle through
// far fewer live events than this.
const maxFreeEvents = 1024

// event is a scheduled callback. Events are pooled: once executed (or
// drained after cancellation) an event returns to the scheduler's free list
// and a later At/After/Every call may reuse it. gen is bumped on every
// recycle so Timer handles created for a previous incarnation no-op.
type event struct {
	at     time.Duration
	seq    uint64 // tiebreaker: FIFO among events at the same instant
	fn     func()
	dead   bool          // cancelled
	idx    int           // heap index, -1 when popped
	gen    uint64        // incarnation counter, bumped on recycle
	period time.Duration // >0: re-arm after each firing (Every)
	cause  uint64        // causal span active when the event was scheduled
}

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}

func (q *eventQueue) Push(x any) {
	ev, _ := x.(*event)
	ev.idx = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*q = old[:n-1]
	return ev
}

// Timer is a handle to a scheduled event that can be cancelled. It is a
// plain value: copying is cheap, the zero value is an inert no-op handle,
// and a handle outliving its event stays safe — when the event is recycled
// its generation moves on and the stale handle's Stop does nothing.
type Timer struct {
	ev  *event
	gen uint64
}

// Stop cancels the event. It reports whether the event had not yet fired
// (mirroring time.Timer.Stop semantics). Calling Stop from inside a periodic
// callback created with Every cancels the rescheduling cycle.
func (t Timer) Stop() bool {
	if t.ev == nil || t.ev.gen != t.gen || t.ev.dead {
		return false
	}
	pending := t.ev.idx != -1
	t.ev.dead = true
	return pending
}

// Scheduler is a deterministic discrete-event scheduler with a virtual clock.
// The zero value is not usable; construct with NewScheduler.
type Scheduler struct {
	now       time.Duration
	queue     eventQueue
	seq       uint64
	seed      int64
	rng       *rand.Rand
	streamSeq map[string]uint64 // per-name DeriveRand call counters
	stopped   bool
	executed  uint64
	free      []*event // recycled events awaiting reuse

	// Causal context: the span ID under which the current event runs.
	// schedule captures it into each new event and the run loops restore it
	// before every callback, so causality flows across timer hops for free —
	// one uint64 copy per event, no allocation, zero when tracing is off.
	cause    uint64
	traceRec any // opaque recorder attachment, see SetTraceRecorder

	// Telemetry handles; nil (no-op) unless Instrument is called.
	mExecuted  *telemetry.Counter
	mCancelled *telemetry.Counter
	mQueueHigh *telemetry.Gauge
}

// NewScheduler returns a scheduler whose clock starts at zero and whose
// random stream is derived from seed.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Instrument attaches the scheduler to a telemetry registry: events
// executed, cancelled events drained, and the queue-depth high-water mark.
// It also makes the registry's spans and events read this virtual clock.
// Passing nil detaches (handles become no-ops again).
func (s *Scheduler) Instrument(reg *telemetry.Registry) {
	s.mExecuted = reg.Counter("sim_events_executed_total")
	s.mCancelled = reg.Counter("sim_events_cancelled_total")
	s.mQueueHigh = reg.Gauge("sim_queue_depth_highwater")
	reg.SetNow(s.Now)
}

// Now returns the current virtual time (elapsed since simulation start).
func (s *Scheduler) Now() time.Duration { return s.now }

// Rand exposes the scheduler's seeded random stream so that every stochastic
// choice in a scenario flows from the one seed.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// DeriveRand returns an independent deterministic random stream for the
// named consumer, derived from the scheduler's seed. Repeated calls with the
// same name yield distinct streams keyed by call order, so deterministic
// construction (links in attach order, fault injectors in plan order) maps
// each consumer to a stable stream. Isolated streams are what keep one
// consumer's draws from perturbing another's: adding a fault injector, or a
// lossy link, must never shift the random sequence an existing experiment
// observes through Rand or through its own derived stream.
func (s *Scheduler) DeriveRand(name string) *rand.Rand {
	if s.streamSeq == nil {
		s.streamSeq = make(map[string]uint64)
	}
	n := s.streamSeq[name]
	s.streamSeq[name]++
	h := fnv.New64a()
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(s.seed))
	binary.LittleEndian.PutUint64(buf[8:], n)
	h.Write(buf[:])
	h.Write([]byte(name))
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// Cause returns the causal span ID the currently executing event carries
// (zero when no trace is active). Components use it as the parent for spans
// they open; the propagation itself needs no participation from them.
func (s *Scheduler) Cause() uint64 { return s.cause }

// SetCause replaces the active causal span ID and returns the previous one,
// so instrumentation can scope a span to a synchronous section and restore
// the caller's context afterwards.
func (s *Scheduler) SetCause(id uint64) (prev uint64) {
	prev = s.cause
	s.cause = id
	return prev
}

// SetTraceRecorder attaches an opaque causal recorder to the scheduler.
// The sim package never looks inside it — components that understand the
// concrete type (internal/telemetry/causal) retrieve it with TraceRecorder
// and type-assert. Keeping the attachment opaque spares this hot package an
// import it does not need.
func (s *Scheduler) SetTraceRecorder(rec any) { s.traceRec = rec }

// TraceRecorder returns the attachment set by SetTraceRecorder (nil when
// tracing was never enabled).
func (s *Scheduler) TraceRecorder() any { return s.traceRec }

// Executed returns the number of events run so far.
func (s *Scheduler) Executed() uint64 { return s.executed }

// Pending returns the number of events currently queued (including ones that
// have been cancelled but not yet drained).
func (s *Scheduler) Pending() int { return len(s.queue) }

// alloc takes an event off the free list, or heap-allocates when empty.
func (s *Scheduler) alloc() *event {
	if n := len(s.free) - 1; n >= 0 {
		ev := s.free[n]
		s.free[n] = nil
		s.free = s.free[:n]
		return ev
	}
	return &event{}
}

// release recycles a finished event onto the free list. The generation bump
// comes first so every outstanding Timer for this incarnation goes inert.
func (s *Scheduler) release(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.dead = false
	ev.period = 0
	ev.cause = 0
	if len(s.free) < maxFreeEvents {
		s.free = append(s.free, ev)
	}
}

// schedule queues fn at the (already clamped) absolute instant at.
func (s *Scheduler) schedule(at, period time.Duration, fn func()) Timer {
	s.seq++
	ev := s.alloc()
	ev.at, ev.seq, ev.fn, ev.period, ev.cause = at, s.seq, fn, period, s.cause
	heap.Push(&s.queue, ev)
	if s.mQueueHigh != nil {
		s.mQueueHigh.SetMax(float64(len(s.queue)))
	}
	return Timer{ev: ev, gen: ev.gen}
}

// At schedules fn to run at absolute virtual time at. Events scheduled in the
// past run "now" (at the current clock reading) but never move the clock
// backwards. It returns a Timer that can cancel the event.
func (s *Scheduler) At(at time.Duration, fn func()) Timer {
	if at < s.now {
		at = s.now
	}
	return s.schedule(at, 0, fn)
}

// After schedules fn to run d after the current virtual instant.
func (s *Scheduler) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.schedule(s.now+d, 0, fn)
}

// Every schedules fn to run every period, starting one period from now,
// until the returned Timer is stopped or the run ends. The callback observes
// the clock already advanced to its firing instant. One event object serves
// the whole cycle: the run loop re-arms it after each firing.
func (s *Scheduler) Every(period time.Duration, fn func()) Timer {
	if period <= 0 {
		period = time.Nanosecond
	}
	return s.schedule(s.now+period, period, fn)
}

// finish recycles a just-executed event, or re-arms it if it is periodic
// and its cycle has not been stopped (possibly by its own callback).
func (s *Scheduler) finish(ev *event) {
	if ev.period > 0 && !ev.dead {
		s.seq++
		ev.at = s.now + ev.period
		ev.seq = s.seq
		heap.Push(&s.queue, ev)
		if s.mQueueHigh != nil {
			s.mQueueHigh.SetMax(float64(len(s.queue)))
		}
		return
	}
	s.release(ev)
}

// Stop halts the run after the currently executing event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// RunUntil executes events in order until the virtual clock would pass
// horizon, the queue drains, or Stop is called. Events scheduled exactly at
// the horizon still run. It returns ErrStopped if halted explicitly.
func (s *Scheduler) RunUntil(horizon time.Duration) error {
	s.stopped = false
	for len(s.queue) > 0 {
		if s.stopped {
			return ErrStopped
		}
		next := s.queue[0]
		if next.at > horizon {
			break
		}
		popped, _ := heap.Pop(&s.queue).(*event)
		if popped.dead {
			s.mCancelled.Inc()
			s.release(popped)
			continue
		}
		s.now = popped.at
		s.executed++
		s.mExecuted.Inc()
		s.cause = popped.cause
		popped.fn()
		s.cause = 0
		s.finish(popped)
	}
	if s.now < horizon {
		s.now = horizon
	}
	return nil
}

// Run executes events until the queue drains or Stop is called.
func (s *Scheduler) Run() error {
	s.stopped = false
	for len(s.queue) > 0 {
		if s.stopped {
			return ErrStopped
		}
		popped, _ := heap.Pop(&s.queue).(*event)
		if popped.dead {
			s.mCancelled.Inc()
			s.release(popped)
			continue
		}
		s.now = popped.at
		s.executed++
		s.mExecuted.Inc()
		s.cause = popped.cause
		popped.fn()
		s.cause = 0
		s.finish(popped)
	}
	return nil
}
