// Sharded parallel discrete-event execution: many Schedulers — one time
// domain per LAN shard — advanced together under conservative-lookahead
// synchronization, so a routed multi-LAN campus runs its access LANs on
// every core while producing byte-identical results at any worker width.
//
// The model is classic conservative parallel DES specialized to this
// framework's topology. Shards interact only through CrossLinks (the
// inter-LAN trunks), each carrying a fixed positive latency; the global
// lookahead L is the minimum of those latencies. The coordinator runs
// window rounds: it finds Tmin, the earliest pending event across all
// shards, and lets every shard with work execute its events in
// [Tmin, Tmin+L) — in parallel, each shard single-threaded on its own
// Scheduler. Any message a shard sends across a link during the window is
// timestamped sender-now + link latency ≥ Tmin + L, i.e. at or beyond the
// window's end, so no in-window event can be affected by another shard's
// in-window execution: the windows are provably safe to run concurrently.
//
// Determinism at any worker width follows from two properties. First, each
// shard's own execution is sequential on its private Scheduler, so its
// event order never depends on what other shards do concurrently. Second,
// cross-shard messages are not delivered directly: they are staged in
// per-source outboxes (each appended only by its own shard), and at the
// round barrier the coordinator — alone, single-threaded — merges them in
// the fixed order (timestamp, source shard, send order within source) and
// injects them into the destination schedulers, which assign their event
// sequence numbers in that merge order. The merged order is a pure
// function of per-shard execution, so the whole simulation is a pure
// function of the seed: widths 1, 2 and 8 produce the same bytes.
package sim

import (
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// ShardSeed derives the scheduler seed for shard i of a sharded run from
// the campus seed — the same FNV-1a construction DeriveRand uses, so shard
// streams are decorrelated from each other and from every single-LAN
// experiment run at the same seed.
func ShardSeed(seed int64, shard int) int64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(seed))
	binary.LittleEndian.PutUint64(buf[8:], uint64(shard))
	h := uint64(offset64)
	for _, b := range buf {
		h = (h ^ uint64(b)) * prime64
	}
	for _, b := range []byte("shard") {
		h = (h ^ uint64(b)) * prime64
	}
	return int64(h)
}

// crossMsg is one staged cross-shard delivery: fn runs on the destination
// shard at virtual instant at.
type crossMsg struct {
	at  time.Duration
	dst int
	fn  func()
}

// mergeKey orders staged messages at the barrier: (timestamp, source
// shard, send order within source). idx is the message's position in its
// source outbox, which the source appended sequentially, so the full key
// is unique and the merge order is a total order independent of how many
// workers executed the window.
type mergeKey struct {
	msg      crossMsg
	src, idx int
}

// CrossLink is the one legal channel between shards: a unidirectional
// edge with a fixed positive latency, created by ShardedScheduler.Link.
// Send may only be called from code running on the source shard (inside
// one of its events); the callback runs on the destination shard after
// the link latency, never earlier than the current window's end.
type CrossLink struct {
	ss       *ShardedScheduler
	src, dst int
	latency  time.Duration
}

// Latency returns the link's one-way delay (the lookahead it contributes).
func (cl *CrossLink) Latency() time.Duration { return cl.latency }

// Send stages fn for execution on the destination shard at source-now +
// latency. It appends to the source shard's private outbox — no lock, no
// shared state — and the coordinator injects it at the next barrier.
func (cl *CrossLink) Send(fn func()) {
	ss := cl.ss
	at := ss.shards[cl.src].Now() + cl.latency
	ss.outbox[cl.src] = append(ss.outbox[cl.src], crossMsg{at: at, dst: cl.dst, fn: fn})
}

// ShardedScheduler coordinates a set of per-shard Schedulers through
// conservative-lookahead window rounds. Construct with NewSharded (fresh
// shard schedulers) or NewShardedOf (caller-provided, e.g. pooled ones).
type ShardedScheduler struct {
	shards    []*Scheduler
	outbox    [][]crossMsg // staged cross messages, one slice per source shard
	lookahead time.Duration
	workers   int
	stopped   bool

	// Round state reused across rounds to keep the coordinator
	// allocation-free in steady state.
	active   []int
	errs     []error
	merged   []mergeKey
	nextIdx  atomic.Int64
	runLimit time.Duration

	// Engine statistics, kept unconditionally (cheap integer adds) and
	// mirrored to telemetry when Instrument was called.
	rounds    uint64
	syncWaits uint64
	crossSent uint64

	mRounds    *telemetry.Counter
	mSyncWaits *telemetry.Counter
	mCross     *telemetry.Counter
	hStall     *telemetry.Histogram
}

// NewSharded builds a coordinator over n fresh shard schedulers seeded
// with ShardSeed(seed, i).
func NewSharded(seed int64, n int) *ShardedScheduler {
	shards := make([]*Scheduler, n)
	for i := range shards {
		shards[i] = NewScheduler(ShardSeed(seed, i))
	}
	return NewShardedOf(shards)
}

// NewShardedOf builds a coordinator over caller-provided shard schedulers
// (already seeded — see ShardSeed). The caller must not run the schedulers
// itself while the coordinator owns them.
func NewShardedOf(shards []*Scheduler) *ShardedScheduler {
	if len(shards) == 0 {
		panic("sim: sharded scheduler needs at least one shard")
	}
	return &ShardedScheduler{
		shards:  shards,
		outbox:  make([][]crossMsg, len(shards)),
		workers: 1,
	}
}

// Shards returns the number of shards.
func (ss *ShardedScheduler) Shards() int { return len(ss.shards) }

// Shard returns shard i's scheduler. Components of LAN i are built on it;
// they must never touch another shard's scheduler.
func (ss *ShardedScheduler) Shard(i int) *Scheduler { return ss.shards[i] }

// SetWorkers sets how many OS-level workers execute each window's active
// shards (clamped to [1, shards]). Purely a wall-clock knob: results are
// byte-identical at every width.
func (ss *ShardedScheduler) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n > len(ss.shards) {
		n = len(ss.shards)
	}
	ss.workers = n
}

// Workers returns the configured execution width.
func (ss *ShardedScheduler) Workers() int { return ss.workers }

// Link registers a cross-shard edge from src to dst with the given
// latency and returns its CrossLink. Latency must be positive: it is the
// lookahead bound that makes parallel windows safe, so a zero-latency
// inter-shard link would serialize the engine — construct such topologies
// as one shard instead.
func (ss *ShardedScheduler) Link(src, dst int, latency time.Duration) *CrossLink {
	if latency <= 0 {
		panic("sim: cross-shard link latency must be positive (it is the lookahead bound)")
	}
	if src == dst {
		panic("sim: cross-shard link endpoints must differ")
	}
	if ss.lookahead == 0 || latency < ss.lookahead {
		ss.lookahead = latency
	}
	return &CrossLink{ss: ss, src: src, dst: dst, latency: latency}
}

// Lookahead returns the conservative window length: the minimum registered
// link latency (zero when no links exist and shards are independent).
func (ss *ShardedScheduler) Lookahead() time.Duration { return ss.lookahead }

// Instrument attaches the engine's synchronization metrics to reg:
// round and wait counters plus the lookahead-stall histogram (how much
// virtual slack the conservative bound imposed on each waiting shard,
// per round). The per-shard schedulers are instrumented separately by
// whoever owns their registries.
func (ss *ShardedScheduler) Instrument(reg *telemetry.Registry) {
	ss.mRounds = reg.Counter("shard_rounds_total")
	ss.mSyncWaits = reg.Counter("shard_sync_waits_total")
	ss.mCross = reg.Counter("cross_lan_frames_total")
	ss.hStall = reg.Histogram("shard_lookahead_stall_seconds",
		[]float64{1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 1e-1})
}

// Rounds returns how many window rounds have executed.
func (ss *ShardedScheduler) Rounds() uint64 { return ss.rounds }

// SyncWaits returns how many shard-rounds ended with the shard still
// holding pending work it was not allowed to run — the count of barrier
// waits the conservative window bound imposed.
func (ss *ShardedScheduler) SyncWaits() uint64 { return ss.syncWaits }

// CrossMessages returns how many cross-shard messages (trunk frames) have
// been merged and injected.
func (ss *ShardedScheduler) CrossMessages() uint64 { return ss.crossSent }

// Executed sums executed events across all shards.
func (ss *ShardedScheduler) Executed() uint64 {
	var n uint64
	for _, sh := range ss.shards {
		n += sh.Executed()
	}
	return n
}

// Stop halts the run at the next round barrier.
func (ss *ShardedScheduler) Stop() { ss.stopped = true }

// runShard is one worker's claim loop: pull the next active shard index
// and run its window. Shards are claimed with an atomic counter (the same
// shape as eval's trial pool); which worker runs which shard varies, what
// each shard executes does not.
func (ss *ShardedScheduler) runShard() {
	for {
		i := int(ss.nextIdx.Add(1)) - 1
		if i >= len(ss.active) {
			return
		}
		shard := ss.active[i]
		ss.errs[shard] = ss.shards[shard].runBefore(ss.runLimit)
	}
}

// RunUntil advances every shard to horizon, executing all events with
// timestamps ≤ horizon in conservative-lookahead windows. Events a shard
// schedules beyond the horizon stay queued. Returns ErrStopped if the
// coordinator or any shard was stopped.
func (ss *ShardedScheduler) RunUntil(horizon time.Duration) error {
	ss.stopped = false
	for {
		if ss.stopped {
			return ErrStopped
		}
		// Tmin: the earliest pending event anywhere.
		var tmin time.Duration
		found := false
		for _, sh := range ss.shards {
			if t, ok := sh.NextEventAt(); ok && (!found || t < tmin) {
				tmin, found = t, true
			}
		}
		if !found || tmin > horizon {
			break
		}
		// Window end, exclusive. With no cross links the shards are fully
		// independent and one window runs everything; otherwise the
		// lookahead bounds it. Events exactly at the horizon must run
		// (RunUntil's inclusive contract), hence horizon+1ns.
		end := horizon + time.Nanosecond
		if ss.lookahead > 0 && tmin+ss.lookahead < end {
			end = tmin + ss.lookahead
		}
		ss.active = ss.active[:0]
		for i, sh := range ss.shards {
			if t, ok := sh.NextEventAt(); ok && t < end {
				ss.active = append(ss.active, i)
			}
		}
		ss.runWindow(end)
		for _, i := range ss.active {
			if ss.errs[i] != nil {
				return ss.errs[i]
			}
		}
		ss.barrier(end)
	}
	for _, sh := range ss.shards {
		sh.advanceTo(horizon)
	}
	return nil
}

// runWindow executes the active shards' events in [their-now, end),
// spreading shards over the configured workers. Width 1 short-circuits to
// a plain loop — no goroutines, no atomics.
func (ss *ShardedScheduler) runWindow(end time.Duration) {
	if cap(ss.errs) < len(ss.shards) {
		ss.errs = make([]error, len(ss.shards))
	}
	ss.errs = ss.errs[:len(ss.shards)]
	w := ss.workers
	if w > len(ss.active) {
		w = len(ss.active)
	}
	if w <= 1 {
		for _, i := range ss.active {
			ss.errs[i] = ss.shards[i].runBefore(end)
		}
		return
	}
	ss.runLimit = end
	ss.nextIdx.Store(0)
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for k := 1; k < w; k++ {
		go func() {
			defer wg.Done()
			ss.runShard()
		}()
	}
	ss.runShard()
	wg.Wait()
}

// barrier runs after every window: merge the staged cross messages in
// their canonical order, inject them into the destination shards, and
// update the synchronization statistics. Single-threaded by construction —
// the window's workers have all joined.
func (ss *ShardedScheduler) barrier(end time.Duration) {
	ss.rounds++
	ss.mRounds.Inc()
	ss.merged = ss.merged[:0]
	for src := range ss.outbox {
		for idx, m := range ss.outbox[src] {
			ss.merged = append(ss.merged, mergeKey{msg: m, src: src, idx: idx})
		}
		ss.outbox[src] = ss.outbox[src][:0]
	}
	if len(ss.merged) > 0 {
		m := ss.merged
		sort.Slice(m, func(a, b int) bool {
			if m[a].msg.at != m[b].msg.at {
				return m[a].msg.at < m[b].msg.at
			}
			if m[a].src != m[b].src {
				return m[a].src < m[b].src
			}
			return m[a].idx < m[b].idx
		})
		for i := range m {
			ss.shards[m[i].msg.dst].At(m[i].msg.at, m[i].msg.fn)
			m[i].msg.fn = nil // don't pin the closure past injection
		}
		ss.crossSent += uint64(len(m))
		ss.mCross.Add(uint64(len(m)))
	}
	// A shard that still holds work below some future window had to stop
	// at the conservative bound and wait; the stall is the virtual slack
	// between its last executed event and the bound.
	if ss.lookahead > 0 {
		for _, i := range ss.active {
			if _, ok := ss.shards[i].NextEventAt(); ok {
				ss.syncWaits++
				ss.mSyncWaits.Inc()
				if ss.hStall != nil {
					ss.hStall.Observe((end - ss.shards[i].Now()).Seconds())
				}
			}
		}
	}
}
