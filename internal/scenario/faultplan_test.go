package scenario

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

// TestFlatFaultPlanLanZeroEquivalence is the compatibility contract for
// hierarchical fault addressing, stated at the Result level: a flat-LAN
// scenario driven by a bare-index fault plan and the same scenario driven
// by the plan's "lan:0/..." spelling produce byte-identical output —
// structurally equal Results and character-identical renders. A flat LAN
// really is the one-site special case of a campus, not a parallel code
// path.
func TestFlatFaultPlanLanZeroEquivalence(t *testing.T) {
	base := `{
		"seed": 11, "hosts": 6, "durationSeconds": 60,
		"schemes": [{"name": "arpwatch", "params": {"seedGateway": false}}],
		"attacks": [{"atSeconds": 20, "type": "mitm"}],
		"faults": {"events": [%s]}
	}`
	flat := `
		{"type": "gilbert-elliott", "atSeconds": 0, "pGoodBad": 0.03, "pBadGood": 0.25, "lossBad": 0.8},
		{"type": "link-flap", "atSeconds": 25, "durationSeconds": 8, "link": 3},
		{"type": "host-churn", "atSeconds": 35, "durationSeconds": 3, "host": 4},
		{"type": "cam-flush", "atSeconds": 45}`
	addressed := `
		{"type": "gilbert-elliott", "atSeconds": 0, "pGoodBad": 0.03, "pBadGood": 0.25, "lossBad": 0.8, "linkAt": "lan:*"},
		{"type": "link-flap", "atSeconds": 25, "durationSeconds": 8, "linkAt": "lan:0/link:3"},
		{"type": "host-churn", "atSeconds": 35, "durationSeconds": 3, "hostAt": "lan:0/host:4"},
		{"type": "cam-flush", "atSeconds": 45, "lan": "lan:*"}`

	run := func(events string) (*Result, string) {
		spec := load(t, fmt.Sprintf(base, events))
		res, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return res, buf.String()
	}
	refRes, refOut := run(flat)
	if refRes.FaultStats == nil || refRes.FaultStats.Total() == 0 {
		t.Fatal("reference run injected no faults")
	}
	gotRes, gotOut := run(addressed)
	if gotOut != refOut {
		t.Fatalf("render differs:\n--- bare indices ---\n%s--- lan:0 addressed ---\n%s", refOut, gotOut)
	}
	if !reflect.DeepEqual(refRes, gotRes) {
		t.Fatalf("result differs:\n%+v\n%+v", refRes, gotRes)
	}
}
