package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// TestCampusSectionStrictlyValidated: the campus schema is held to the same
// load-time strictness as everything else — unknown keys (top-level and
// nested), impossible topologies, and unsupported section combinations all
// fail before anything runs.
func TestCampusSectionStrictlyValidated(t *testing.T) {
	cases := map[string]string{
		"unknown top-level key": `{"campu": {"lans": 4}}`,
		"unknown campus key":    `{"campus": {"bogus": 1}}`,
		"addressing plan":       `{"campus": {"lans": 300}}`,
		"lonely victim":         `{"campus": {"lans": 4, "activeHostsPerLAN": 1}}`,
		"faults on a campus":    `{"campus": {"lans": 4}, "faults": {"events": [{"type": "duplicate", "atSeconds": 0, "prob": 0.1}]}}`,
		"stacks on a campus":    `{"campus": {"lans": 4}, "stacks": [{"schemes": [{"name": "dai"}, {"name": "arpwatch"}]}]}`,
	}
	for name, js := range cases {
		if _, err := Load(strings.NewReader(js)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestCampusScenarioDetectsMITM runs a small routed campus end to end: the
// per-LAN arpwatch deployment must catch the LAN-0 router MITM, the fabric
// must demonstrably carry cross-LAN traffic, and the campus figures must
// surface in both the structured result and the rendering.
func TestCampusScenarioDetectsMITM(t *testing.T) {
	spec := load(t, `{
		"seed": 1, "durationSeconds": 30,
		"campus": {"lans": 4, "hostsPerLAN": 64},
		"schemes": [{"name": "arpwatch", "params": {"seedGateway": false}}],
		"attacks": [{"atSeconds": 10, "type": "mitm"}]
	}`)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Campus == nil {
		t.Fatal("campus run returned no campus figures")
	}
	if res.Campus.LANs != 4 || res.Campus.Hosts != 4*64 {
		t.Fatalf("campus shape: %+v", res.Campus)
	}
	if res.Campus.FabricFrames == 0 || res.Campus.CrossLANFrames == 0 {
		t.Fatalf("fabric idle: %+v", res.Campus)
	}
	if res.AlertsByScheme["arpwatch"] == 0 {
		t.Fatalf("MITM undetected: %+v", res.AlertsByScheme)
	}
	if res.PoisonedHosts == 0 {
		t.Fatal("detection-only scenario should leave the victim poisoned")
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "campus: 4 LANs, 256 hosts") {
		t.Fatalf("render missing the campus line:\n%s", out)
	}
	if !strings.Contains(out, "lan0 ") {
		t.Fatalf("first alerts not LAN-attributed:\n%s", out)
	}
}

// TestCampusScenarioWidthParity is the determinism contract at the scenario
// level: the whole Result — merged alerts, poisoning census, fabric and
// capture figures — is identical whether the shards run under 1, 2, or 8
// workers. Only the telemetry snapshot is excluded: engine counters like
// sync waits legitimately depend on worker interleaving.
func TestCampusScenarioWidthParity(t *testing.T) {
	run := func(workers int) (*Result, string) {
		spec := load(t, `{
			"seed": 3, "durationSeconds": 30,
			"campus": {"lans": 4, "hostsPerLAN": 48},
			"schemes": [{"name": "arpwatch", "params": {"seedGateway": false}}],
			"attacks": [{"atSeconds": 7, "type": "mitm"}]
		}`)
		spec.Campus.Workers = workers
		res, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		res.Telemetry = telemetry.Snapshot{}
		var buf bytes.Buffer
		if err := res.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return res, buf.String()
	}
	ref, refOut := run(1)
	if ref.AlertsByScheme["arpwatch"] == 0 {
		t.Fatalf("reference run detected nothing: %+v", ref.AlertsByScheme)
	}
	for _, w := range []int{2, 8} {
		got, gotOut := run(w)
		if gotOut != refOut {
			t.Fatalf("render differs at workers=%d:\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
				w, refOut, w, gotOut)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("result differs at workers=%d:\n%+v\n%+v", w, ref, got)
		}
	}
}

// TestCampusMillionScenarioShape pins the bundled campus-million.json to
// what its name promises: a full million-station campus. (The bundled
// round-trip test actually runs it.)
func TestCampusMillionScenarioShape(t *testing.T) {
	f, err := os.Open(filepath.Join("..", "..", "scenarios", "campus-million.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spec, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Campus == nil {
		t.Fatal("campus-million.json has no campus section")
	}
	if got := spec.Campus.LANs * spec.Campus.HostsPerLAN; got != 1_000_000 {
		t.Fatalf("campus-million.json describes %d hosts", got)
	}
}
