package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// TestCampusSectionStrictlyValidated: the campus schema is held to the same
// load-time strictness as everything else — unknown keys (top-level and
// nested), impossible topologies, and malformed deployment scoping all fail
// before anything runs, with errors that list the valid alternatives.
func TestCampusSectionStrictlyValidated(t *testing.T) {
	cases := map[string]struct{ js, want string }{
		"unknown top-level key": {`{"campu": {"lans": 4}}`, "campu"},
		"unknown campus key":    {`{"campus": {"bogus": 1}}`, "bogus"},
		"addressing plan":       {`{"campus": {"lans": 300}}`, "max 250"},
		"lonely victim":         {`{"campus": {"lans": 4, "activeHostsPerLAN": 1}}`, "at least 2"},
		"attacker off the map":  {`{"campus": {"lans": 4, "attackerLan": 7}}`, "attackerLan 7 outside"},
		"bad selector":          {`{"campus": {"lans": 4, "deployments": [{"lans": "everywhere", "schemes": [{"name": "dai"}]}]}}`, `valid: "*"`},
		"selector off the map":  {`{"campus": {"lans": 4, "deployments": [{"lans": "2-9", "schemes": [{"name": "dai"}]}]}}`, "outside the campus"},
		"empty deployment":      {`{"campus": {"lans": 4, "deployments": [{"lans": "*"}]}}`, "deploys nothing"},
		"bad deployment scheme": {`{"campus": {"lans": 4, "deployments": [{"lans": "*", "schemes": [{"name": "nope"}]}]}}`, "unknown scheme"},
	}
	for name, tc := range cases {
		_, err := Load(strings.NewReader(tc.js))
		if err == nil {
			t.Errorf("%s accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", name, err, tc.want)
		}
	}
	// The PR 9 rejections are gone: stacks and fault plans are first-class
	// on a campus now.
	accepted := []string{
		`{"campus": {"lans": 4}, "faults": {"events": [{"type": "duplicate", "atSeconds": 0, "prob": 0.1}]}}`,
		`{"campus": {"lans": 4}, "stacks": [{"schemes": [{"name": "dai"}, {"name": "arpwatch"}]}]}`,
		`{"campus": {"lans": 4}, "faults": {"events": [{"type": "trunk-partition", "atSeconds": 1, "durationSeconds": 5, "trunk": "trunk:2-*"}]}}`,
	}
	for _, js := range accepted {
		if _, err := Load(strings.NewReader(js)); err != nil {
			t.Errorf("valid campus spec rejected: %v\n%s", err, js)
		}
	}
}

// TestCampusScenarioDetectsMITM runs a small routed campus end to end: the
// per-LAN arpwatch deployment must catch the LAN-0 router MITM, the fabric
// must demonstrably carry cross-LAN traffic, and the campus figures must
// surface in both the structured result and the rendering.
func TestCampusScenarioDetectsMITM(t *testing.T) {
	spec := load(t, `{
		"seed": 1, "durationSeconds": 30,
		"campus": {"lans": 4, "hostsPerLAN": 64},
		"schemes": [{"name": "arpwatch", "params": {"seedGateway": false}}],
		"attacks": [{"atSeconds": 10, "type": "mitm"}]
	}`)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Campus == nil {
		t.Fatal("campus run returned no campus figures")
	}
	if res.Campus.LANs != 4 || res.Campus.Hosts != 4*64 {
		t.Fatalf("campus shape: %+v", res.Campus)
	}
	if res.Campus.FabricFrames == 0 || res.Campus.CrossLANFrames == 0 {
		t.Fatalf("fabric idle: %+v", res.Campus)
	}
	if res.AlertsByScheme["arpwatch"] == 0 {
		t.Fatalf("MITM undetected: %+v", res.AlertsByScheme)
	}
	if res.PoisonedHosts == 0 {
		t.Fatal("detection-only scenario should leave the victim poisoned")
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "campus: 4 LANs, 256 hosts") {
		t.Fatalf("render missing the campus line:\n%s", out)
	}
	if !strings.Contains(out, "lan0 ") {
		t.Fatalf("first alerts not LAN-attributed:\n%s", out)
	}
}

// TestCampusScenarioWidthParity is the determinism contract at the scenario
// level: the whole Result — merged alerts, poisoning census, fabric and
// capture figures — is identical whether the shards run under 1, 2, or 8
// workers. Only the telemetry snapshot is excluded: engine counters like
// sync waits legitimately depend on worker interleaving.
func TestCampusScenarioWidthParity(t *testing.T) {
	run := func(workers int) (*Result, string) {
		spec := load(t, `{
			"seed": 3, "durationSeconds": 30,
			"campus": {"lans": 4, "hostsPerLAN": 48},
			"schemes": [{"name": "arpwatch", "params": {"seedGateway": false}}],
			"attacks": [{"atSeconds": 7, "type": "mitm"}]
		}`)
		spec.Campus.Workers = workers
		res, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		res.Telemetry = telemetry.Snapshot{}
		var buf bytes.Buffer
		if err := res.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return res, buf.String()
	}
	ref, refOut := run(1)
	if ref.AlertsByScheme["arpwatch"] == 0 {
		t.Fatalf("reference run detected nothing: %+v", ref.AlertsByScheme)
	}
	for _, w := range []int{2, 8} {
		got, gotOut := run(w)
		if gotOut != refOut {
			t.Fatalf("render differs at workers=%d:\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
				w, refOut, w, gotOut)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("result differs at workers=%d:\n%+v\n%+v", w, ref, got)
		}
	}
}

// TestCampusFaultedStacksScenario round-trips the bundled
// campus-faulted-stacks.json and runs it end to end: 16 LANs with two
// different per-segment stacks, a trunk partition isolating the attacker's
// LAN, an impaired segment, and a campus-wide router flush — all through
// the same JSON front end a flat run uses.
func TestCampusFaultedStacksScenario(t *testing.T) {
	f, err := os.Open(filepath.Join("..", "..", "scenarios", "campus-faulted-stacks.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spec, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Campus == nil || spec.Campus.LANs != 16 {
		t.Fatalf("campus shape: %+v", spec.Campus)
	}
	if spec.Campus.AttackerLAN != 3 {
		t.Fatalf("attackerLan = %d, want 3", spec.Campus.AttackerLAN)
	}
	if len(spec.Campus.Deployments) != 2 {
		t.Fatalf("deployments: %+v", spec.Campus.Deployments)
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Campus == nil || res.Campus.LANs != 16 {
		t.Fatalf("campus figures: %+v", res.Campus)
	}
	fs := res.FaultStats
	if fs == nil {
		t.Fatal("fault plan ran but Result has no FaultStats")
	}
	if fs.TrunkPartitions == 0 || fs.TrunkDropped == 0 {
		t.Fatalf("trunk partition left no trace: %+v", fs)
	}
	if fs.RouterFlushes != 16 {
		t.Fatalf("router-flush on lan:* flushed %d routers, want 16", fs.RouterFlushes)
	}
	if res.AlertsByScheme["arpwatch"] == 0 {
		t.Fatalf("MITM undetected: %+v", res.AlertsByScheme)
	}
	labels := make(map[string]bool)
	for _, st := range res.StackStats {
		labels[st.Stack] = true
	}
	if len(labels) != 2 {
		t.Fatalf("want the two per-segment stacks in StackStats, got %+v", res.StackStats)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "campus faults:") {
		t.Fatalf("render missing the campus faults line:\n%s", buf.String())
	}
}

// TestCampusFaultedWidthParity extends the scenario-level determinism
// contract to the faulted, stack-laden case: the whole Result — fault
// accounting included — is identical whether the shards run under 1, 2,
// or 8 workers. Only the telemetry snapshot is excluded: engine counters
// like sync waits legitimately depend on worker interleaving.
func TestCampusFaultedWidthParity(t *testing.T) {
	run := func(workers int) (*Result, string) {
		spec := load(t, `{
			"seed": 5, "durationSeconds": 30,
			"campus": {"lans": 4, "hostsPerLAN": 48, "attackerLan": 1,
				"deployments": [
					{"lans": "0-1", "stacks": [{"schemes": [{"name": "dai"}, {"name": "arpwatch", "params": {"seedGateway": false}}]}]},
					{"lans": "2-3", "schemes": [{"name": "snort-like"}]}
				]},
			"attacks": [{"atSeconds": 7, "type": "mitm"}],
			"faults": {"events": [
				{"type": "gilbert-elliott", "atSeconds": 3, "durationSeconds": 20, "pGoodBad": 0.05, "pBadGood": 0.2, "lossBad": 0.6, "linkAt": "lan:2/link:*"},
				{"type": "trunk-partition", "atSeconds": 12, "durationSeconds": 8, "trunk": "trunk:1-*"},
				{"type": "router-flush", "atSeconds": 20, "lan": "lan:*"}
			]}
		}`)
		spec.Campus.Workers = workers
		res, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		res.Telemetry = telemetry.Snapshot{}
		var buf bytes.Buffer
		if err := res.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return res, buf.String()
	}
	ref, refOut := run(1)
	if ref.FaultStats == nil || ref.FaultStats.TrunkPartitions == 0 {
		t.Fatalf("reference run armed no trunk partitions: %+v", ref.FaultStats)
	}
	if ref.AlertsByScheme["arpwatch"] == 0 {
		t.Fatalf("reference run detected nothing: %+v", ref.AlertsByScheme)
	}
	for _, w := range []int{2, 8} {
		got, gotOut := run(w)
		if gotOut != refOut {
			t.Fatalf("render differs at workers=%d:\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
				w, refOut, w, gotOut)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("result differs at workers=%d:\n%+v\n%+v", w, ref, got)
		}
	}
}

// TestCampusMillionScenarioShape pins the bundled campus-million.json to
// what its name promises: a full million-station campus. (The bundled
// round-trip test actually runs it.)
func TestCampusMillionScenarioShape(t *testing.T) {
	f, err := os.Open(filepath.Join("..", "..", "scenarios", "campus-million.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spec, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Campus == nil {
		t.Fatal("campus-million.json has no campus section")
	}
	if got := spec.Campus.LANs * spec.Campus.HostsPerLAN; got != 1_000_000 {
		t.Fatalf("campus-million.json describes %d hosts", got)
	}
}
