// Package scenario runs JSON-described experiments: a LAN shape, a set of
// deployed defense schemes, and an attack timeline, producing a structured
// result. It exists so users can reproduce and share attack/defense
// matchups without writing Go — the configuration front end over labnet,
// schemes, and attack.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/ethaddr"
	"repro/internal/faults"
	"repro/internal/labnet"
	"repro/internal/schemes"
	"repro/internal/schemes/activeprobe"
	"repro/internal/schemes/arpwatch"
	"repro/internal/schemes/dai"
	"repro/internal/schemes/flooddetect"
	"repro/internal/schemes/kernelpolicy"
	"repro/internal/schemes/middleware"
	"repro/internal/schemes/portsec"
	"repro/internal/schemes/snortlike"
	"repro/internal/schemes/staticarp"
	"repro/internal/stack"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Spec is the JSON description of one experiment.
type Spec struct {
	// Seed drives all randomness (default 1).
	Seed int64 `json:"seed"`
	// Hosts is the number of stations, gateway included (default 4).
	Hosts int `json:"hosts"`
	// Policy names the hosts' cache policy profile (default "naive").
	Policy string `json:"policy"`
	// DurationSeconds is the simulated run length (default 60).
	DurationSeconds float64 `json:"durationSeconds"`
	// Schemes lists the defenses to deploy.
	Schemes []SchemeSpec `json:"schemes"`
	// Attacks is the attack timeline.
	Attacks []AttackSpec `json:"attacks"`
	// Faults is the optional network-failure timeline, injected beneath the
	// schemes (burst loss, duplication, reordering, link flaps, host churn,
	// CAM flushes). Link index i targets host i's attachment (0 = gateway);
	// the monitor's link, when deployed, is index hosts. The dhcp-outage
	// fault is not available here — scenarios deploy no DHCP server.
	Faults *faults.Plan `json:"faults,omitempty"`
}

// SchemeSpec deploys one defense.
type SchemeSpec struct {
	// Name: arpwatch | active-probe | middleware | hybrid-guard | dai |
	// port-security | flood-detect | snort-like | static-arp |
	// address-defense.
	Name string `json:"name"`
}

// AttackSpec schedules one attacker action.
type AttackSpec struct {
	// AtSeconds is when the action starts.
	AtSeconds float64 `json:"atSeconds"`
	// Type: poison | mitm | blackhole | cam-flood | cache-flood | scan |
	// port-steal.
	Type string `json:"type"`
	// Variant selects the poisoning delivery for type "poison"
	// (gratuitous | unsolicited-reply | request-spoof | reply-race).
	Variant string `json:"variant,omitempty"`
	// Count sizes flooding attacks (default 500).
	Count int `json:"count,omitempty"`
	// PeriodSeconds paces periodic actions (default 2).
	PeriodSeconds float64 `json:"periodSeconds,omitempty"`
}

// Load parses a Spec from JSON.
func Load(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec Spec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("parse scenario: %w", err)
	}
	return &spec, nil
}

// Result is what one run produced.
type Result struct {
	Duration        time.Duration  `json:"-"`
	AlertsByScheme  map[string]int `json:"alertsByScheme"`
	AlertsByKind    map[string]int `json:"alertsByKind"`
	FirstAlerts     []string       `json:"firstAlerts"`
	PoisonedHosts   int            `json:"poisonedHosts"`
	GuardIncidents  int            `json:"guardIncidents"`
	GuardConfirmed  int            `json:"guardConfirmed"`
	AttackerForged  uint64         `json:"attackerForged"`
	AttackerSniffed uint64         `json:"attackerSniffedBytes"`
	SwitchFiltered  uint64         `json:"switchFiltered"`
	CAMEntries      int            `json:"camEntries"`
	// FaultStats counts what the fault plan injected; nil when the scenario
	// declared no faults.
	FaultStats *faults.Stats `json:"faultStats,omitempty"`
	// CaptureStats summarizes the frames a full-mirror capture saw during
	// the run: totals, type and ARP-op breakdowns, ring drops.
	CaptureStats trace.Stats `json:"captureStats"`
	// Telemetry is the end-of-run metrics snapshot covering the scheduler,
	// switch, hosts, and every deployed scheme.
	Telemetry telemetry.Snapshot `json:"telemetry"`
}

// RunOption adjusts how Run executes a scenario.
type RunOption func(*runConfig)

type runConfig struct {
	registry    *telemetry.Registry
	eventStream io.Writer
	eventMin    telemetry.Severity
}

// WithRegistry uses the supplied registry instead of a run-private one, so
// callers can export the metrics themselves (e.g. Prometheus text).
func WithRegistry(reg *telemetry.Registry) RunOption {
	return func(c *runConfig) { c.registry = reg }
}

// WithEventStream mirrors telemetry events at or above min to w as NDJSON
// while the scenario runs (the CLI's -v flag).
func WithEventStream(w io.Writer, min telemetry.Severity) RunOption {
	return func(c *runConfig) { c.eventStream, c.eventMin = w, min }
}

// Render writes a human-readable summary.
func (r *Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "scenario finished after %v simulated\n", r.Duration)
	fmt.Fprintf(w, "  hosts poisoned at end: %d\n", r.PoisonedHosts)
	fmt.Fprintf(w, "  attacker: %d forged packets, %d payload bytes captured\n",
		r.AttackerForged, r.AttackerSniffed)
	fmt.Fprintf(w, "  switch: %d frames filtered inline, %d CAM entries\n",
		r.SwitchFiltered, r.CAMEntries)
	if r.GuardIncidents > 0 {
		fmt.Fprintf(w, "  guard: %d incidents (%d confirmed)\n", r.GuardIncidents, r.GuardConfirmed)
	}
	if r.FaultStats != nil {
		fs := r.FaultStats
		fmt.Fprintf(w, "  faults: %d burst-dropped, %d duplicated, %d reordered, %d flap-dropped, %d churns, %d CAM flushes\n",
			fs.BurstDropped, fs.Duplicated, fs.Reordered, fs.FlapDropped, fs.HostChurns, fs.CAMFlushes)
	}
	schemesSorted := make([]string, 0, len(r.AlertsByScheme))
	for s := range r.AlertsByScheme {
		schemesSorted = append(schemesSorted, s)
	}
	sort.Strings(schemesSorted)
	for _, s := range schemesSorted {
		fmt.Fprintf(w, "  %s: %d alerts\n", s, r.AlertsByScheme[s])
	}
	for _, line := range r.FirstAlerts {
		fmt.Fprintf(w, "  first: %s\n", line)
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Run executes the scenario.
func Run(spec *Spec, opts ...RunOption) (*Result, error) {
	var rc runConfig
	for _, opt := range opts {
		opt(&rc)
	}
	if rc.registry == nil {
		rc.registry = telemetry.New()
	}
	reg := rc.registry
	if rc.eventStream != nil {
		reg.Events().StreamTo(rc.eventStream, rc.eventMin)
	}

	if spec.Hosts == 0 {
		spec.Hosts = 4
	}
	if spec.DurationSeconds == 0 {
		spec.DurationSeconds = 60
	}
	if spec.Policy == "" {
		spec.Policy = "naive"
	}
	prof := kernelpolicy.ByName(spec.Policy)

	var hostOpts []stack.Option
	for _, s := range spec.Schemes {
		if s.Name == "address-defense" {
			hostOpts = append(hostOpts, stack.WithAddressDefense(time.Second))
		}
	}
	l := labnet.New(labnet.Config{
		Seed:         spec.Seed,
		Hosts:        spec.Hosts,
		Policy:       prof.Policy,
		WithAttacker: true,
		WithMonitor:  true,
		HostOptions:  hostOpts,
		Telemetry:    reg,
	})
	capture := trace.NewCapture(0)
	l.Switch.AddTap(capture.Tap())
	sink := schemes.NewSink()
	sink.Instrument(reg)
	gw, victim := l.Gateway(), l.Victim()

	var guard *core.Guard
	for _, s := range spec.Schemes {
		switch s.Name {
		case "arpwatch":
			w := arpwatch.New(l.Sched, sink)
			w.Seed(gw.IP(), gw.MAC())
			l.Switch.AddTap(w.Observe)
		case "active-probe":
			p := activeprobe.New(l.Sched, sink, l.Monitor)
			p.Instrument(reg)
			p.Seed(gw.IP(), gw.MAC())
			l.Switch.AddTap(p.Observe)
		case "middleware":
			middleware.New(l.Sched, sink, victim).Instrument(reg)
		case "hybrid-guard":
			guard = core.New(l.Sched, l.Monitor,
				core.WithSeedBinding(gw.IP(), gw.MAC()),
				core.WithAlertHandler(sink.Report),
				core.WithTelemetry(reg))
			l.Switch.AddTap(guard.Tap())
		case "dai":
			table := dai.NewBindingTable()
			for _, h := range l.Hosts {
				table.AddStatic(h.IP(), h.MAC())
			}
			table.AddStatic(l.Monitor.IP(), l.Monitor.MAC())
			table.AddStatic(l.Attacker.IP(), l.Attacker.MAC())
			insp := dai.New(l.Sched, sink, table, dai.WithDHCPGuard())
			l.Switch.SetFilter(schemes.InstrumentFilter(reg, "dai", insp.Filter()))
		case "port-security":
			opts := []portsec.Option{portsec.WithTrustedPorts(l.MonitorPort.ID())}
			for i, p := range l.Ports {
				opts = append(opts, portsec.WithSticky(p.ID(), l.Hosts[i].MAC()))
			}
			opts = append(opts, portsec.WithSticky(l.AtkPort.ID(), l.Attacker.MAC()))
			e := portsec.New(l.Sched, sink, opts...)
			l.Switch.SetFilter(schemes.InstrumentFilter(reg, "port-security", e.Filter()))
		case "flood-detect":
			det := flooddetect.New(l.Sched, sink)
			l.Switch.AddTap(det.Observe)
		case "snort-like":
			p := snortlike.New(l.Sched, sink,
				snortlike.WithBinding(gw.IP(), gw.MAC()),
				snortlike.WithBinding(victim.IP(), victim.MAC()))
			l.Switch.AddTap(p.Observe)
		case "static-arp":
			dir := make(staticarp.Directory)
			for _, h := range l.Hosts {
				dir[h.IP()] = h.MAC()
			}
			prov := staticarp.NewProvisioner(dir)
			for _, h := range l.Hosts {
				prov.Enroll(h)
			}
		case "address-defense":
			// handled via host options above
		default:
			return nil, fmt.Errorf("unknown scheme %q", s.Name)
		}
	}

	for _, a := range spec.Attacks {
		a := a
		at := time.Duration(a.AtSeconds * float64(time.Second))
		period := 2 * time.Second
		if a.PeriodSeconds > 0 {
			period = time.Duration(a.PeriodSeconds * float64(time.Second))
		}
		count := a.Count
		if count == 0 {
			count = 500
		}
		var action func()
		switch a.Type {
		case "poison":
			variant, err := parseVariant(a.Variant)
			if err != nil {
				return nil, err
			}
			action = func() {
				if variant == attack.VariantReplyRace {
					l.Attacker.ArmReplyRace(gw.IP(), victim.IP(), 0)
					victim.Cache().Delete(gw.IP())
					victim.Resolve(gw.IP(), nil)
					return
				}
				l.Attacker.Poison(variant, gw.IP(), l.Attacker.MAC(), victim.MAC(), victim.IP())
			}
		case "mitm":
			action = func() {
				l.Attacker.PoisonPeriodically(period, victim.MAC(), victim.IP(), gw.MAC(), gw.IP())
				l.Attacker.RelayBetween(victim.MAC(), victim.IP(), gw.MAC(), gw.IP())
			}
		case "blackhole":
			action = func() {
				l.Attacker.Poison(attack.VariantUnsolicitedReply, gw.IP(), l.Attacker.MAC(),
					victim.MAC(), victim.IP())
				l.Attacker.BlackholeTraffic(gw.IP())
			}
		case "cam-flood":
			action = func() {
				l.Attacker.FloodCAM(ethaddr.NewGen(spec.Seed+13), count, time.Millisecond)
			}
		case "cache-flood":
			action = func() {
				l.Attacker.FloodCache(ethaddr.NewGen(spec.Seed+17), l.Subnet, count, time.Millisecond)
			}
		case "scan":
			action = func() {
				l.Attacker.Scan(l.Subnet, 1, count%255, 10*time.Millisecond)
			}
		case "port-steal":
			action = func() {
				l.Attacker.StealPort(victim.MAC(), victim.IP(), period, true)
			}
		default:
			return nil, fmt.Errorf("unknown attack type %q", a.Type)
		}
		l.Sched.At(at, action)
	}

	// Faults are armed after scheme deployment so injector streams never
	// depend on which defenses are present, and before the run so every
	// window edge lands on the timeline. Schemes get no say and no notice.
	var faultCtl *faults.Controller
	if spec.Faults != nil {
		env := l.FaultEnv()
		env.Registry = reg
		var err error
		if faultCtl, err = faults.Apply(spec.Faults, env); err != nil {
			return nil, err
		}
	}

	// Background traffic keeps caches and detectors exercised.
	for _, h := range l.Hosts[1:] {
		h := h
		l.Sched.Every(5*time.Second, func() { h.SendUDP(gw.IP(), 2000, 80, []byte("work")) })
	}

	duration := time.Duration(spec.DurationSeconds * float64(time.Second))
	if err := l.Run(duration); err != nil {
		return nil, err
	}

	res := &Result{
		Duration:        duration,
		AlertsByScheme:  make(map[string]int),
		AlertsByKind:    make(map[string]int),
		PoisonedHosts:   l.PoisonedCount(gw.IP()),
		AttackerForged:  l.Attacker.Stats().Forged,
		AttackerSniffed: l.Attacker.Stats().Sniffed,
		SwitchFiltered:  l.Switch.Stats().Filtered,
		CAMEntries:      l.Switch.CAMLen(),
		CaptureStats:    capture.Stats(),
		Telemetry:       reg.Snapshot(),
	}
	seenScheme := make(map[string]bool)
	for _, a := range sink.Alerts() {
		res.AlertsByScheme[a.Scheme]++
		res.AlertsByKind[a.Kind.String()]++
		if !seenScheme[a.Scheme] {
			seenScheme[a.Scheme] = true
			res.FirstAlerts = append(res.FirstAlerts, a.String())
		}
	}
	if guard != nil {
		res.GuardIncidents = len(guard.Incidents())
		res.GuardConfirmed = guard.ConfirmedCount()
	}
	if faultCtl != nil {
		fs := faultCtl.Stats()
		res.FaultStats = &fs
	}
	return res, nil
}

// parseVariant maps a JSON variant name to the attack enum.
func parseVariant(name string) (attack.Variant, error) {
	if name == "" {
		return attack.VariantUnsolicitedReply, nil
	}
	for _, v := range attack.Variants() {
		if v.String() == name {
			return v, nil
		}
	}
	return 0, fmt.Errorf("unknown poison variant %q", name)
}
