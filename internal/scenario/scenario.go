// Package scenario runs JSON-described experiments: a LAN shape, a set of
// deployed defense schemes, and an attack timeline, producing a structured
// result. It exists so users can reproduce and share attack/defense
// matchups without writing Go — the configuration front end over labnet,
// schemes, and attack.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/ethaddr"
	"repro/internal/faults"
	"repro/internal/labnet"
	"repro/internal/schemes"
	"repro/internal/schemes/kernelpolicy"
	"repro/internal/schemes/registry"
	_ "repro/internal/schemes/registry/all" // link every scheme factory
	"repro/internal/stack"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Spec is the JSON description of one experiment.
type Spec struct {
	// Seed drives all randomness (default 1).
	Seed int64 `json:"seed"`
	// Hosts is the number of stations, gateway included (default 4).
	Hosts int `json:"hosts"`
	// Policy names the hosts' cache policy profile (default "naive").
	Policy string `json:"policy"`
	// DurationSeconds is the simulated run length (default 60).
	DurationSeconds float64 `json:"durationSeconds"`
	// Schemes lists the defenses to deploy, each standing alone.
	Schemes []SchemeSpec `json:"schemes"`
	// Stacks lists composed defense-in-depth deployments: each stack's
	// members share an alert correlator that collapses same-(IP, kind)
	// duplicates within the correlation window into one attributed alert.
	Stacks []registry.Stack `json:"stacks,omitempty"`
	// Attacks is the attack timeline.
	Attacks []AttackSpec `json:"attacks"`
	// Faults is the optional network-failure timeline, injected beneath the
	// schemes (burst loss, duplication, reordering, link flaps, host churn,
	// CAM flushes). Link index i targets host i's attachment (0 = gateway);
	// the monitor's link, when deployed, is index hosts. The dhcp-outage
	// fault is not available here — scenarios deploy no DHCP server.
	Faults *faults.Plan `json:"faults,omitempty"`
}

// SchemeSpec deploys one defense.
type SchemeSpec struct {
	// Name is a registered scheme (`arpbench -list` or `arpguard -schemes`
	// print the catalogue): arpwatch | active-probe | middleware |
	// hybrid-guard | dai | port-security | flood-detect | snort-like |
	// static-arp | address-defense | kernel-policy | s-arp | tarp.
	Name string `json:"name"`
	// Params overrides the scheme's default parameters; the catalogue shows
	// each scheme's parameter fields and defaults. Unknown keys are rejected
	// at load time.
	Params json.RawMessage `json:"params,omitempty"`
}

// AttackSpec schedules one attacker action.
type AttackSpec struct {
	// AtSeconds is when the action starts.
	AtSeconds float64 `json:"atSeconds"`
	// Type: poison | mitm | blackhole | cam-flood | cache-flood | scan |
	// port-steal.
	Type string `json:"type"`
	// Variant selects the poisoning delivery for type "poison"
	// (gratuitous | unsolicited-reply | request-spoof | reply-race).
	Variant string `json:"variant,omitempty"`
	// Count sizes flooding attacks (default 500).
	Count int `json:"count,omitempty"`
	// PeriodSeconds paces periodic actions (default 2).
	PeriodSeconds float64 `json:"periodSeconds,omitempty"`
}

// Load parses a Spec from JSON and validates every scheme reference against
// the registry, so a typo fails here — listing the valid names — rather than
// minutes into a run.
func Load(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec Spec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("parse scenario: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// Validate checks the parts of a Spec that can fail without running
// anything: scheme names and parameters, stack composition, and the cache
// policy name. Load calls it; callers assembling Specs in code can too.
func (spec *Spec) Validate() error {
	for _, s := range spec.Schemes {
		if err := registry.ValidateParams(s.Name, s.Params); err != nil {
			return err
		}
	}
	for i := range spec.Stacks {
		if err := spec.Stacks[i].Validate(); err != nil {
			return err
		}
	}
	if spec.Policy != "" {
		if _, ok := kernelpolicy.Find(spec.Policy); !ok {
			names := make([]string, 0, len(kernelpolicy.Profiles()))
			for _, p := range kernelpolicy.Profiles() {
				names = append(names, p.Name)
			}
			return fmt.Errorf("unknown cache policy %q (valid: %s)", spec.Policy, strings.Join(names, ", "))
		}
	}
	return nil
}

// Result is what one run produced.
type Result struct {
	Duration        time.Duration  `json:"-"`
	AlertsByScheme  map[string]int `json:"alertsByScheme"`
	AlertsByKind    map[string]int `json:"alertsByKind"`
	FirstAlerts     []string       `json:"firstAlerts"`
	PoisonedHosts   int            `json:"poisonedHosts"`
	GuardIncidents  int            `json:"guardIncidents"`
	GuardConfirmed  int            `json:"guardConfirmed"`
	AttackerForged  uint64         `json:"attackerForged"`
	AttackerSniffed uint64         `json:"attackerSniffedBytes"`
	SwitchFiltered  uint64         `json:"switchFiltered"`
	CAMEntries      int            `json:"camEntries"`
	// StackStats reports, per deployed stack, how its alert correlator
	// collapsed the members' raw alerts; empty when the scenario declared no
	// stacks.
	StackStats []StackResult `json:"stackStats,omitempty"`
	// FaultStats counts what the fault plan injected; nil when the scenario
	// declared no faults.
	FaultStats *faults.Stats `json:"faultStats,omitempty"`
	// CaptureStats summarizes the frames a full-mirror capture saw during
	// the run: totals, type and ARP-op breakdowns, ring drops.
	CaptureStats trace.Stats `json:"captureStats"`
	// Telemetry is the end-of-run metrics snapshot covering the scheduler,
	// switch, hosts, and every deployed scheme.
	Telemetry telemetry.Snapshot `json:"telemetry"`
}

// StackResult is one stack's correlation summary.
type StackResult struct {
	// Stack is the member list joined with "+".
	Stack string `json:"stack"`
	// Forwarded alerts reached the operator; Suppressed were collapsed as
	// duplicates, CrossScheme of those coming from a different member than
	// the first reporter (vantage redundancy, not noise).
	Forwarded   int `json:"forwarded"`
	Suppressed  int `json:"suppressed"`
	CrossScheme int `json:"crossScheme"`
}

// RunOption adjusts how Run executes a scenario.
type RunOption func(*runConfig)

type runConfig struct {
	registry    *telemetry.Registry
	eventStream io.Writer
	eventMin    telemetry.Severity
}

// WithRegistry uses the supplied registry instead of a run-private one, so
// callers can export the metrics themselves (e.g. Prometheus text).
func WithRegistry(reg *telemetry.Registry) RunOption {
	return func(c *runConfig) { c.registry = reg }
}

// WithEventStream mirrors telemetry events at or above min to w as NDJSON
// while the scenario runs (the CLI's -v flag).
func WithEventStream(w io.Writer, min telemetry.Severity) RunOption {
	return func(c *runConfig) { c.eventStream, c.eventMin = w, min }
}

// Render writes a human-readable summary.
func (r *Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "scenario finished after %v simulated\n", r.Duration)
	fmt.Fprintf(w, "  hosts poisoned at end: %d\n", r.PoisonedHosts)
	fmt.Fprintf(w, "  attacker: %d forged packets, %d payload bytes captured\n",
		r.AttackerForged, r.AttackerSniffed)
	fmt.Fprintf(w, "  switch: %d frames filtered inline, %d CAM entries\n",
		r.SwitchFiltered, r.CAMEntries)
	if r.GuardIncidents > 0 {
		fmt.Fprintf(w, "  guard: %d incidents (%d confirmed)\n", r.GuardIncidents, r.GuardConfirmed)
	}
	for _, st := range r.StackStats {
		fmt.Fprintf(w, "  stack %s: %d alerts forwarded, %d suppressed (%d cross-scheme)\n",
			st.Stack, st.Forwarded, st.Suppressed, st.CrossScheme)
	}
	if r.FaultStats != nil {
		fs := r.FaultStats
		fmt.Fprintf(w, "  faults: %d burst-dropped, %d duplicated, %d reordered, %d flap-dropped, %d churns, %d CAM flushes\n",
			fs.BurstDropped, fs.Duplicated, fs.Reordered, fs.FlapDropped, fs.HostChurns, fs.CAMFlushes)
	}
	schemesSorted := make([]string, 0, len(r.AlertsByScheme))
	for s := range r.AlertsByScheme {
		schemesSorted = append(schemesSorted, s)
	}
	sort.Strings(schemesSorted)
	for _, s := range schemesSorted {
		fmt.Fprintf(w, "  %s: %d alerts\n", s, r.AlertsByScheme[s])
	}
	for _, line := range r.FirstAlerts {
		fmt.Fprintf(w, "  first: %s\n", line)
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Run executes the scenario.
func Run(spec *Spec, opts ...RunOption) (*Result, error) {
	var rc runConfig
	for _, opt := range opts {
		opt(&rc)
	}
	if rc.registry == nil {
		rc.registry = telemetry.New()
	}
	reg := rc.registry
	if rc.eventStream != nil {
		reg.Events().StreamTo(rc.eventStream, rc.eventMin)
	}

	if spec.Hosts == 0 {
		spec.Hosts = 4
	}
	if spec.DurationSeconds == 0 {
		spec.DurationSeconds = 60
	}
	if spec.Policy == "" {
		spec.Policy = "naive"
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	prof, _ := kernelpolicy.Find(spec.Policy) // Validate vouched for the name

	// Construction-only schemes (kernel policies, address defense) act while
	// the hosts are being assembled; everything else deploys afterwards.
	var hostOpts []stack.Option
	for _, s := range spec.Schemes {
		opts, err := registry.HostOptions(s.Name, s.Params)
		if err != nil {
			return nil, err
		}
		hostOpts = append(hostOpts, opts...)
	}
	for _, st := range spec.Stacks {
		opts, err := registry.StackHostOptions(st)
		if err != nil {
			return nil, err
		}
		hostOpts = append(hostOpts, opts...)
	}
	l := labnet.New(labnet.Config{
		Seed:         spec.Seed,
		Hosts:        spec.Hosts,
		Policy:       prof.Policy,
		WithAttacker: true,
		WithMonitor:  true,
		HostOptions:  hostOpts,
		Telemetry:    reg,
	})
	capture := trace.NewCapture(0)
	l.Switch.AddTap(capture.Tap())
	sink := schemes.NewSink()
	sink.Instrument(reg)
	gw, victim := l.Gateway(), l.Victim()

	env := l.Env(sink, reg)
	var guard *core.Guard
	noteGuard := func(inst *registry.Instance) {
		if g, ok := inst.Handle.(*core.Guard); ok {
			guard = g
		}
	}
	for _, s := range spec.Schemes {
		f, ok := registry.Lookup(s.Name)
		if !ok {
			return nil, registry.UnknownSchemeError(s.Name)
		}
		if f.ConstructionOnly() {
			continue // already applied through hostOpts
		}
		inst, err := registry.Deploy(env, s.Name, s.Params)
		if err != nil {
			return nil, err
		}
		noteGuard(inst)
	}
	var stackInsts []*registry.StackInstance
	for _, st := range spec.Stacks {
		si, err := registry.DeployStack(env, st)
		if err != nil {
			return nil, err
		}
		stackInsts = append(stackInsts, si)
		for _, m := range si.Members {
			noteGuard(m)
		}
	}

	for _, a := range spec.Attacks {
		a := a
		at := time.Duration(a.AtSeconds * float64(time.Second))
		period := 2 * time.Second
		if a.PeriodSeconds > 0 {
			period = time.Duration(a.PeriodSeconds * float64(time.Second))
		}
		count := a.Count
		if count == 0 {
			count = 500
		}
		var action func()
		switch a.Type {
		case "poison":
			variant, err := parseVariant(a.Variant)
			if err != nil {
				return nil, err
			}
			action = func() {
				if variant == attack.VariantReplyRace {
					l.Attacker.ArmReplyRace(gw.IP(), victim.IP(), 0)
					victim.Cache().Delete(gw.IP())
					victim.Resolve(gw.IP(), nil)
					return
				}
				l.Attacker.Poison(variant, gw.IP(), l.Attacker.MAC(), victim.MAC(), victim.IP())
			}
		case "mitm":
			action = func() {
				l.Attacker.PoisonPeriodically(period, victim.MAC(), victim.IP(), gw.MAC(), gw.IP())
				l.Attacker.RelayBetween(victim.MAC(), victim.IP(), gw.MAC(), gw.IP())
			}
		case "blackhole":
			action = func() {
				l.Attacker.Poison(attack.VariantUnsolicitedReply, gw.IP(), l.Attacker.MAC(),
					victim.MAC(), victim.IP())
				l.Attacker.BlackholeTraffic(gw.IP())
			}
		case "cam-flood":
			action = func() {
				l.Attacker.FloodCAM(ethaddr.NewGen(spec.Seed+13), count, time.Millisecond)
			}
		case "cache-flood":
			action = func() {
				l.Attacker.FloodCache(ethaddr.NewGen(spec.Seed+17), l.Subnet, count, time.Millisecond)
			}
		case "scan":
			action = func() {
				l.Attacker.Scan(l.Subnet, 1, count%255, 10*time.Millisecond)
			}
		case "port-steal":
			action = func() {
				l.Attacker.StealPort(victim.MAC(), victim.IP(), period, true)
			}
		default:
			return nil, fmt.Errorf("unknown attack type %q", a.Type)
		}
		l.Sched.At(at, action)
	}

	// Faults are armed after scheme deployment so injector streams never
	// depend on which defenses are present, and before the run so every
	// window edge lands on the timeline. Schemes get no say and no notice.
	var faultCtl *faults.Controller
	if spec.Faults != nil {
		env := l.FaultEnv()
		env.Registry = reg
		var err error
		if faultCtl, err = faults.Apply(spec.Faults, env); err != nil {
			return nil, err
		}
	}

	// Background traffic keeps caches and detectors exercised.
	for _, h := range l.Hosts[1:] {
		h := h
		l.Sched.Every(5*time.Second, func() { h.SendUDP(gw.IP(), 2000, 80, []byte("work")) })
	}

	duration := time.Duration(spec.DurationSeconds * float64(time.Second))
	if err := l.Run(duration); err != nil {
		return nil, err
	}

	res := &Result{
		Duration:        duration,
		AlertsByScheme:  make(map[string]int),
		AlertsByKind:    make(map[string]int),
		PoisonedHosts:   l.PoisonedCount(gw.IP()),
		AttackerForged:  l.Attacker.Stats().Forged,
		AttackerSniffed: l.Attacker.Stats().Sniffed,
		SwitchFiltered:  l.Switch.Stats().Filtered,
		CAMEntries:      l.Switch.CAMLen(),
		CaptureStats:    capture.Stats(),
		Telemetry:       reg.Snapshot(),
	}
	seenScheme := make(map[string]bool)
	for _, a := range sink.Alerts() {
		res.AlertsByScheme[a.Scheme]++
		res.AlertsByKind[a.Kind.String()]++
		if !seenScheme[a.Scheme] {
			seenScheme[a.Scheme] = true
			res.FirstAlerts = append(res.FirstAlerts, a.String())
		}
	}
	if guard != nil {
		res.GuardIncidents = len(guard.Incidents())
		res.GuardConfirmed = guard.ConfirmedCount()
	}
	for _, si := range stackInsts {
		cs := si.Correlation()
		res.StackStats = append(res.StackStats, StackResult{
			Stack:       si.Stack.Label(),
			Forwarded:   cs.Forwarded,
			Suppressed:  cs.Suppressed,
			CrossScheme: cs.CrossScheme,
		})
	}
	if faultCtl != nil {
		fs := faultCtl.Stats()
		res.FaultStats = &fs
	}
	return res, nil
}

// parseVariant maps a JSON variant name to the attack enum.
func parseVariant(name string) (attack.Variant, error) {
	if name == "" {
		return attack.VariantUnsolicitedReply, nil
	}
	for _, v := range attack.Variants() {
		if v.String() == name {
			return v, nil
		}
	}
	return 0, fmt.Errorf("unknown poison variant %q", name)
}
