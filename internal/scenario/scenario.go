// Package scenario runs JSON-described experiments: a LAN shape, a set of
// deployed defense schemes, and an attack timeline, producing a structured
// result. It exists so users can reproduce and share attack/defense
// matchups without writing Go — the configuration front end over labnet,
// schemes, and attack.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/attack"
	"repro/internal/ethaddr"
	"repro/internal/faults"
	"repro/internal/labnet"
	"repro/internal/schemes"
	"repro/internal/schemes/kernelpolicy"
	"repro/internal/schemes/registry"
	_ "repro/internal/schemes/registry/all" // link every scheme factory
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Spec is the JSON description of one experiment.
type Spec struct {
	// Seed drives all randomness (default 1).
	Seed int64 `json:"seed"`
	// Hosts is the number of stations, gateway included (default 4).
	Hosts int `json:"hosts"`
	// Policy names the hosts' cache policy profile (default "naive").
	Policy string `json:"policy"`
	// DurationSeconds is the simulated run length (default 60).
	DurationSeconds float64 `json:"durationSeconds"`
	// Schemes lists the defenses to deploy, each standing alone.
	Schemes []SchemeSpec `json:"schemes"`
	// Stacks lists composed defense-in-depth deployments: each stack's
	// members share an alert correlator that collapses same-(IP, kind)
	// duplicates within the correlation window into one attributed alert.
	Stacks []registry.Stack `json:"stacks,omitempty"`
	// Attacks is the attack timeline.
	Attacks []AttackSpec `json:"attacks"`
	// Faults is the optional network-failure timeline, injected beneath the
	// schemes (burst loss, duplication, reordering, link flaps, host churn,
	// CAM flushes — plus trunk partitions and router flushes on a campus).
	// Link index i targets host i's attachment (0 = gateway); the monitor's
	// link, when deployed, is index hosts. On a campus, hierarchical
	// addresses ("lan:3/link:7", "lan:*", "trunk:2-5") reach any segment;
	// bare indices keep addressing LAN 0. The dhcp-outage fault is not
	// available here — scenarios deploy no DHCP server.
	Faults *faults.Plan `json:"faults,omitempty"`
	// Campus, when present, replaces the single flat LAN with a routed
	// multi-LAN campus on the sharded engine: one access LAN per shard
	// behind a full trunk mesh. Schemes, stacks, and faults deploy through
	// the same topology-neutral plane as flat runs — top-level Schemes and
	// Stacks land on every LAN, Deployments scope them to segments, and the
	// attack timeline runs inside the attacker's LAN against that segment's
	// router gateway. Hosts is ignored (the campus fields size the topology).
	Campus *CampusSpec `json:"campus,omitempty"`
}

// CampusSpec sizes the routed campus topology.
type CampusSpec struct {
	// LANs is the number of routed access LANs — and scheduler shards
	// (default 4, max 250 from the 10.<lan>.0.0/16 addressing plan).
	LANs int `json:"lans"`
	// HostsPerLAN is the per-LAN population: active protocol stacks plus
	// the flyweight station bank (default 16).
	HostsPerLAN int `json:"hostsPerLAN"`
	// ActiveHostsPerLAN is how many stations run full stacks (default 4,
	// minimum 2 — the victim and one bystander).
	ActiveHostsPerLAN int `json:"activeHostsPerLAN,omitempty"`
	// TrunkLatencyMicros is the backbone one-way delay in microseconds —
	// the sharded engine's conservative lookahead bound (default 1000).
	TrunkLatencyMicros float64 `json:"trunkLatencyMicros,omitempty"`
	// Workers caps the shard worker pool (default: engine-chosen).
	Workers int `json:"workers,omitempty"`
	// AttackerLAN places the attacker's segment (default 0); the attack
	// timeline targets that LAN's router gateway and victim station.
	AttackerLAN int `json:"attackerLan,omitempty"`
	// Deployments scope schemes and stacks to segment subsets; top-level
	// Schemes and Stacks deploy fabric-wide.
	Deployments []LANDeployment `json:"deployments,omitempty"`
}

// LANDeployment deploys schemes and stacks onto a subset of campus
// segments — how heterogeneous defenses (DAI on the server LANs, arpwatch
// everywhere else) are described.
type LANDeployment struct {
	// LANs selects segments: "*" (every LAN, the default), a single index
	// like "3", or an inclusive range like "2-5".
	LANs string `json:"lans,omitempty"`
	// Schemes deploy standalone on each selected segment.
	Schemes []SchemeSpec `json:"schemes,omitempty"`
	// Stacks deploy correlated a+b+c composites on each selected segment.
	Stacks []registry.Stack `json:"stacks,omitempty"`
}

// parseLANSelector resolves a deployment's segment selector against n LANs.
func parseLANSelector(sel string, n int) ([]int, error) {
	bad := func() error {
		return fmt.Errorf("bad lan selector %q (valid: \"*\" for every LAN, a single index like \"3\", or an inclusive range like \"2-5\")", sel)
	}
	if sel == "" || sel == "*" {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all, nil
	}
	lo, hi := 0, 0
	if a, b, ok := strings.Cut(sel, "-"); ok {
		la, errA := strconv.Atoi(a)
		lb, errB := strconv.Atoi(b)
		if errA != nil || errB != nil || la > lb {
			return nil, bad()
		}
		lo, hi = la, lb
	} else {
		v, err := strconv.Atoi(sel)
		if err != nil {
			return nil, bad()
		}
		lo, hi = v, v
	}
	if lo < 0 || hi >= n {
		return nil, fmt.Errorf("lan selector %q outside the campus's [0, %d) segments", sel, n)
	}
	out := make([]int, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		out = append(out, i)
	}
	return out, nil
}

// SchemeSpec deploys one defense.
type SchemeSpec struct {
	// Name is a registered scheme (`arpbench -list` or `arpguard -schemes`
	// print the catalogue): arpwatch | active-probe | middleware |
	// hybrid-guard | dai | port-security | flood-detect | snort-like |
	// static-arp | address-defense | kernel-policy | s-arp | tarp.
	Name string `json:"name"`
	// Params overrides the scheme's default parameters; the catalogue shows
	// each scheme's parameter fields and defaults. Unknown keys are rejected
	// at load time.
	Params json.RawMessage `json:"params,omitempty"`
}

// AttackSpec schedules one attacker action.
type AttackSpec struct {
	// AtSeconds is when the action starts.
	AtSeconds float64 `json:"atSeconds"`
	// Type: poison | mitm | blackhole | cam-flood | cache-flood | scan |
	// port-steal.
	Type string `json:"type"`
	// Variant selects the poisoning delivery for type "poison"
	// (gratuitous | unsolicited-reply | request-spoof | reply-race).
	Variant string `json:"variant,omitempty"`
	// Count sizes flooding attacks (default 500).
	Count int `json:"count,omitempty"`
	// PeriodSeconds paces periodic actions (default 2).
	PeriodSeconds float64 `json:"periodSeconds,omitempty"`
}

// Load parses a Spec from JSON and validates every scheme reference against
// the registry, so a typo fails here — listing the valid names — rather than
// minutes into a run.
func Load(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec Spec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("parse scenario: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// Validate checks the parts of a Spec that can fail without running
// anything: scheme names and parameters, stack composition, and the cache
// policy name. Load calls it; callers assembling Specs in code can too.
func (spec *Spec) Validate() error {
	for _, s := range spec.Schemes {
		if err := registry.ValidateParams(s.Name, s.Params); err != nil {
			return err
		}
	}
	for i := range spec.Stacks {
		if err := spec.Stacks[i].Validate(); err != nil {
			return err
		}
	}
	if spec.Campus != nil {
		cs := spec.Campus
		if cs.LANs > 250 {
			return fmt.Errorf("campus: %d LANs exceeds the 10.<lan>.0.0/16 addressing plan (max 250)", cs.LANs)
		}
		if cs.ActiveHostsPerLAN == 1 {
			return fmt.Errorf("campus: activeHostsPerLAN must be at least 2 (the victim and one bystander)")
		}
		lans := cs.LANs
		if lans == 0 {
			lans = 4
		}
		if cs.AttackerLAN < 0 || cs.AttackerLAN >= lans {
			return fmt.Errorf("campus: attackerLan %d outside the campus's [0, %d) segments", cs.AttackerLAN, lans)
		}
		for di, d := range cs.Deployments {
			if _, err := parseLANSelector(d.LANs, lans); err != nil {
				return fmt.Errorf("campus deployment %d: %w", di, err)
			}
			for _, s := range d.Schemes {
				if err := registry.ValidateParams(s.Name, s.Params); err != nil {
					return fmt.Errorf("campus deployment %d: %w", di, err)
				}
			}
			for i := range d.Stacks {
				if err := d.Stacks[i].Validate(); err != nil {
					return fmt.Errorf("campus deployment %d: %w", di, err)
				}
			}
			if len(d.Schemes) == 0 && len(d.Stacks) == 0 {
				return fmt.Errorf("campus deployment %d: deploys nothing (add schemes or stacks, or drop the entry)", di)
			}
		}
	}
	if spec.Policy != "" {
		if _, ok := kernelpolicy.Find(spec.Policy); !ok {
			names := make([]string, 0, len(kernelpolicy.Profiles()))
			for _, p := range kernelpolicy.Profiles() {
				names = append(names, p.Name)
			}
			return fmt.Errorf("unknown cache policy %q (valid: %s)", spec.Policy, strings.Join(names, ", "))
		}
	}
	return nil
}

// Result is what one run produced.
type Result struct {
	Duration        time.Duration  `json:"-"`
	AlertsByScheme  map[string]int `json:"alertsByScheme"`
	AlertsByKind    map[string]int `json:"alertsByKind"`
	FirstAlerts     []string       `json:"firstAlerts"`
	PoisonedHosts   int            `json:"poisonedHosts"`
	GuardIncidents  int            `json:"guardIncidents"`
	GuardConfirmed  int            `json:"guardConfirmed"`
	AttackerForged  uint64         `json:"attackerForged"`
	AttackerSniffed uint64         `json:"attackerSniffedBytes"`
	SwitchFiltered  uint64         `json:"switchFiltered"`
	CAMEntries      int            `json:"camEntries"`
	// StackStats reports, per deployed stack, how its alert correlator
	// collapsed the members' raw alerts; empty when the scenario declared no
	// stacks.
	StackStats []StackResult `json:"stackStats,omitempty"`
	// FaultStats counts what the fault plan injected; nil when the scenario
	// declared no faults.
	FaultStats *faults.Stats `json:"faultStats,omitempty"`
	// CaptureStats summarizes the frames a full-mirror capture saw during
	// the run: totals, type and ARP-op breakdowns, ring drops. Campus runs
	// mirror LAN 0 only (the instrumented segment).
	CaptureStats trace.Stats `json:"captureStats"`
	// Campus reports the routed-topology figures; nil for flat-LAN runs.
	Campus *CampusResult `json:"campus,omitempty"`
	// Telemetry is the end-of-run metrics snapshot covering the scheduler,
	// switch, hosts, and every deployed scheme.
	Telemetry telemetry.Snapshot `json:"telemetry"`
}

// CampusResult is the campus-wide view of a routed multi-LAN run.
type CampusResult struct {
	// LANs and Hosts size the topology that actually ran (active stacks
	// plus bank stations).
	LANs  int `json:"lans"`
	Hosts int `json:"hosts"`
	// FabricFrames is the total the campus switches carried; CrossLAN
	// counts the subset that crossed the backbone between shards.
	FabricFrames   uint64 `json:"fabricFrames"`
	CrossLANFrames uint64 `json:"crossLANFrames"`
}

// StackResult is one stack's correlation summary.
type StackResult struct {
	// Stack is the member list joined with "+".
	Stack string `json:"stack"`
	// Forwarded alerts reached the operator; Suppressed were collapsed as
	// duplicates, CrossScheme of those coming from a different member than
	// the first reporter (vantage redundancy, not noise).
	Forwarded   int `json:"forwarded"`
	Suppressed  int `json:"suppressed"`
	CrossScheme int `json:"crossScheme"`
}

// RunOption adjusts how Run executes a scenario.
type RunOption func(*runConfig)

type runConfig struct {
	registry    *telemetry.Registry
	eventStream io.Writer
	eventMin    telemetry.Severity
}

// WithRegistry uses the supplied registry instead of a run-private one, so
// callers can export the metrics themselves (e.g. Prometheus text).
func WithRegistry(reg *telemetry.Registry) RunOption {
	return func(c *runConfig) { c.registry = reg }
}

// WithEventStream mirrors telemetry events at or above min to w as NDJSON
// while the scenario runs (the CLI's -v flag).
func WithEventStream(w io.Writer, min telemetry.Severity) RunOption {
	return func(c *runConfig) { c.eventStream, c.eventMin = w, min }
}

// Render writes a human-readable summary.
func (r *Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "scenario finished after %v simulated\n", r.Duration)
	if r.Campus != nil {
		fmt.Fprintf(w, "  campus: %d LANs, %d hosts, %d fabric frames (%d cross-LAN)\n",
			r.Campus.LANs, r.Campus.Hosts, r.Campus.FabricFrames, r.Campus.CrossLANFrames)
	}
	fmt.Fprintf(w, "  hosts poisoned at end: %d\n", r.PoisonedHosts)
	fmt.Fprintf(w, "  attacker: %d forged packets, %d payload bytes captured\n",
		r.AttackerForged, r.AttackerSniffed)
	fmt.Fprintf(w, "  switch: %d frames filtered inline, %d CAM entries\n",
		r.SwitchFiltered, r.CAMEntries)
	if r.GuardIncidents > 0 {
		fmt.Fprintf(w, "  guard: %d incidents (%d confirmed)\n", r.GuardIncidents, r.GuardConfirmed)
	}
	for _, st := range r.StackStats {
		fmt.Fprintf(w, "  stack %s: %d alerts forwarded, %d suppressed (%d cross-scheme)\n",
			st.Stack, st.Forwarded, st.Suppressed, st.CrossScheme)
	}
	if r.FaultStats != nil {
		fs := r.FaultStats
		fmt.Fprintf(w, "  faults: %d burst-dropped, %d duplicated, %d reordered, %d flap-dropped, %d churns, %d CAM flushes\n",
			fs.BurstDropped, fs.Duplicated, fs.Reordered, fs.FlapDropped, fs.HostChurns, fs.CAMFlushes)
		if fs.TrunkPartitions > 0 || fs.RouterFlushes > 0 {
			fmt.Fprintf(w, "  campus faults: %d trunk partitions (%d frames dropped), %d router flushes\n",
				fs.TrunkPartitions, fs.TrunkDropped, fs.RouterFlushes)
		}
	}
	schemesSorted := make([]string, 0, len(r.AlertsByScheme))
	for s := range r.AlertsByScheme {
		schemesSorted = append(schemesSorted, s)
	}
	sort.Strings(schemesSorted)
	for _, s := range schemesSorted {
		fmt.Fprintf(w, "  %s: %d alerts\n", s, r.AlertsByScheme[s])
	}
	for _, line := range r.FirstAlerts {
		fmt.Fprintf(w, "  first: %s\n", line)
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Run executes the scenario.
func Run(spec *Spec, opts ...RunOption) (*Result, error) {
	var rc runConfig
	for _, opt := range opts {
		opt(&rc)
	}
	if rc.registry == nil {
		rc.registry = telemetry.New()
	}
	reg := rc.registry
	if rc.eventStream != nil {
		reg.Events().StreamTo(rc.eventStream, rc.eventMin)
	}

	if spec.Campus != nil {
		return runCampus(spec, &rc)
	}

	if spec.Hosts == 0 {
		spec.Hosts = 4
	}
	if spec.DurationSeconds == 0 {
		spec.DurationSeconds = 60
	}
	if spec.Policy == "" {
		spec.Policy = "naive"
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	prof, _ := kernelpolicy.Find(spec.Policy) // Validate vouched for the name

	// Construction-only schemes (kernel policies, address defense) act while
	// the hosts are being assembled; everything else deploys afterwards.
	var hostOpts []stack.Option
	for _, s := range spec.Schemes {
		opts, err := registry.HostOptions(s.Name, s.Params)
		if err != nil {
			return nil, err
		}
		hostOpts = append(hostOpts, opts...)
	}
	for _, st := range spec.Stacks {
		opts, err := registry.StackHostOptions(st)
		if err != nil {
			return nil, err
		}
		hostOpts = append(hostOpts, opts...)
	}
	l := labnet.New(labnet.Config{
		Seed:         spec.Seed,
		Hosts:        spec.Hosts,
		Policy:       prof.Policy,
		WithAttacker: true,
		WithMonitor:  true,
		HostOptions:  hostOpts,
		Telemetry:    reg,
	})
	capture := trace.NewCapture(0)
	l.Switch.AddTap(capture.Tap())
	sink := schemes.NewSink()
	sink.Instrument(reg)
	gw, victim := l.Gateway(), l.Victim()

	top := &labnet.Single{LAN: l, Sink: sink, Registry: reg}
	var dep deployment
	if err := deployOnto(top.Sites(), spec.Schemes, spec.Stacks, &dep); err != nil {
		return nil, err
	}

	if err := armAttacks(spec, attackTargets{
		sched: l.Sched, atk: l.Attacker, victim: victim,
		gwIP: gw.IP(), gwMAC: gw.MAC(), subnet: l.Subnet,
	}); err != nil {
		return nil, err
	}

	// Faults are armed after scheme deployment so injector streams never
	// depend on which defenses are present, and before the run so every
	// window edge lands on the timeline. Schemes get no say and no notice.
	var faultCtl *faults.Controller
	if spec.Faults != nil {
		var err error
		if faultCtl, err = faults.Apply(spec.Faults, top.FaultEnv()); err != nil {
			return nil, err
		}
	}

	// Background traffic keeps caches and detectors exercised.
	for _, h := range l.Hosts[1:] {
		h := h
		l.Sched.Every(5*time.Second, func() { h.SendUDP(gw.IP(), 2000, 80, []byte("work")) })
	}

	duration := time.Duration(spec.DurationSeconds * float64(time.Second))
	if err := l.Run(duration); err != nil {
		return nil, err
	}

	res := &Result{
		Duration:        duration,
		AlertsByScheme:  make(map[string]int),
		AlertsByKind:    make(map[string]int),
		PoisonedHosts:   l.PoisonedCount(gw.IP()),
		AttackerForged:  l.Attacker.Stats().Forged,
		AttackerSniffed: l.Attacker.Stats().Sniffed,
		SwitchFiltered:  l.Switch.Stats().Filtered,
		CAMEntries:      l.Switch.CAMLen(),
		CaptureStats:    capture.Stats(),
		Telemetry:       reg.Snapshot(),
	}
	seenScheme := make(map[string]bool)
	for _, a := range sink.Alerts() {
		res.AlertsByScheme[a.Scheme]++
		res.AlertsByKind[a.Kind.String()]++
		if !seenScheme[a.Scheme] {
			seenScheme[a.Scheme] = true
			res.FirstAlerts = append(res.FirstAlerts, a.String())
		}
	}
	dep.guardResults(res)
	res.StackStats = dep.stackResults()
	if faultCtl != nil {
		fs := faultCtl.Stats()
		res.FaultStats = &fs
	}
	return res, nil
}

// attackTargets binds the attack timeline to a concrete segment: the flat
// topology's gateway host, or a campus's LAN 0 with its router interface
// standing in as the gateway.
type attackTargets struct {
	sched  *sim.Scheduler
	atk    *attack.Attacker
	victim *stack.Host
	gwIP   ethaddr.IPv4
	gwMAC  ethaddr.MAC
	subnet ethaddr.Subnet
}

// armAttacks schedules the spec's attack timeline against the targets.
func armAttacks(spec *Spec, t attackTargets) error {
	for _, a := range spec.Attacks {
		a := a
		at := time.Duration(a.AtSeconds * float64(time.Second))
		period := 2 * time.Second
		if a.PeriodSeconds > 0 {
			period = time.Duration(a.PeriodSeconds * float64(time.Second))
		}
		count := a.Count
		if count == 0 {
			count = 500
		}
		var action func()
		switch a.Type {
		case "poison":
			variant, err := parseVariant(a.Variant)
			if err != nil {
				return err
			}
			action = func() {
				if variant == attack.VariantReplyRace {
					t.atk.ArmReplyRace(t.gwIP, t.victim.IP(), 0)
					t.victim.Cache().Delete(t.gwIP)
					t.victim.Resolve(t.gwIP, nil)
					return
				}
				t.atk.Poison(variant, t.gwIP, t.atk.MAC(), t.victim.MAC(), t.victim.IP())
			}
		case "mitm":
			action = func() {
				t.atk.PoisonPeriodically(period, t.victim.MAC(), t.victim.IP(), t.gwMAC, t.gwIP)
				t.atk.RelayBetween(t.victim.MAC(), t.victim.IP(), t.gwMAC, t.gwIP)
			}
		case "blackhole":
			action = func() {
				t.atk.Poison(attack.VariantUnsolicitedReply, t.gwIP, t.atk.MAC(),
					t.victim.MAC(), t.victim.IP())
				t.atk.BlackholeTraffic(t.gwIP)
			}
		case "cam-flood":
			action = func() {
				t.atk.FloodCAM(ethaddr.NewGen(spec.Seed+13), count, time.Millisecond)
			}
		case "cache-flood":
			action = func() {
				t.atk.FloodCache(ethaddr.NewGen(spec.Seed+17), t.subnet, count, time.Millisecond)
			}
		case "scan":
			action = func() {
				t.atk.Scan(t.subnet, 1, count%255, 10*time.Millisecond)
			}
		case "port-steal":
			action = func() {
				t.atk.StealPort(t.victim.MAC(), t.victim.IP(), period, true)
			}
		default:
			return fmt.Errorf("unknown attack type %q", a.Type)
		}
		t.sched.At(at, action)
	}
	return nil
}

// parseVariant maps a JSON variant name to the attack enum.
func parseVariant(name string) (attack.Variant, error) {
	if name == "" {
		return attack.VariantUnsolicitedReply, nil
	}
	for _, v := range attack.Variants() {
		if v.String() == name {
			return v, nil
		}
	}
	return 0, fmt.Errorf("unknown poison variant %q", name)
}
