// The scenario engine's half of the topology-neutral deployment plane:
// one code path installs schemes and stacks onto any []*labnet.Site —
// a flat LAN renders one site, a campus renders one per segment — so the
// flat and routed worlds can never drift apart in how they deploy.
package scenario

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/labnet"
	"repro/internal/schemes/registry"
)

// deployment accumulates what the plane installed: every guard handle
// (for incident accounting) and every stack instance (for correlation
// accounting).
type deployment struct {
	guards     []*core.Guard
	stackInsts []*registry.StackInstance
}

// note records a deployed instance's guard handle, when it has one.
func (d *deployment) note(inst *registry.Instance) {
	if g, ok := inst.Handle.(*core.Guard); ok {
		d.guards = append(d.guards, g)
	}
}

// deployOnto installs the schemes and stacks onto every given site, in
// spec order, schemes before stacks. Construction-only schemes are skipped
// here — their host options were applied while the topology was assembled.
func deployOnto(sites []*labnet.Site, specs []SchemeSpec, stacks []registry.Stack, d *deployment) error {
	for _, s := range specs {
		f, ok := registry.Lookup(s.Name)
		if !ok {
			return registry.UnknownSchemeError(s.Name)
		}
		if f.ConstructionOnly() {
			continue
		}
		for _, site := range sites {
			inst, err := registry.Deploy(site.Env(), s.Name, s.Params)
			if err != nil {
				return siteErr(site, err)
			}
			d.note(inst)
		}
	}
	for _, st := range stacks {
		for _, site := range sites {
			si, err := registry.DeployStack(site.Env(), st)
			if err != nil {
				return siteErr(site, err)
			}
			d.stackInsts = append(d.stackInsts, si)
			for _, m := range si.Members {
				d.note(m)
			}
		}
	}
	return nil
}

// siteErr labels a deployment error with its segment on routed topologies;
// a flat LAN's single site (no router) keeps the bare error.
func siteErr(s *labnet.Site, err error) error {
	if s.Router == nil {
		return err
	}
	return fmt.Errorf("lan %d: %w", s.Index, err)
}

// guardResults sums incident accounting over every deployed guard.
func (d *deployment) guardResults(res *Result) {
	for _, g := range d.guards {
		res.GuardIncidents += len(g.Incidents())
		res.GuardConfirmed += g.ConfirmedCount()
	}
}

// stackResults aggregates correlation stats by stack label — a campus
// deploys one instance per segment, and the campus-wide answer is their
// sum.
func (d *deployment) stackResults() []StackResult {
	idx := make(map[string]int)
	var out []StackResult
	for _, si := range d.stackInsts {
		cs := si.Correlation()
		label := si.Stack.Label()
		j, ok := idx[label]
		if !ok {
			j = len(out)
			idx[label] = j
			out = append(out, StackResult{Stack: label})
		}
		out[j].Forwarded += cs.Forwarded
		out[j].Suppressed += cs.Suppressed
		out[j].CrossScheme += cs.CrossScheme
	}
	return out
}
