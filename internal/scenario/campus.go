// Campus scenarios: the same JSON front end, run on the sharded engine
// over a routed multi-LAN topology instead of one flat segment. Schemes
// deploy per-LAN (the paper's per-LAN cost vantage), the attack timeline
// plays out inside LAN 0 against its router gateway, and the per-LAN alert
// sinks merge into one deterministically ordered campus view.
package scenario

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/labnet"
	"repro/internal/schemes/kernelpolicy"
	"repro/internal/schemes/registry"
	"repro/internal/stack"
	"repro/internal/trace"
)

// runCampus executes a Spec whose Campus section is present. Validate has
// already rejected the combinations that cannot work here (faults, stacks).
func runCampus(spec *Spec, rc *runConfig) (*Result, error) {
	reg := rc.registry
	if spec.DurationSeconds == 0 {
		spec.DurationSeconds = 60
	}
	if spec.Policy == "" {
		spec.Policy = "naive"
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	prof, _ := kernelpolicy.Find(spec.Policy) // Validate vouched for the name

	var hostOpts []stack.Option
	for _, s := range spec.Schemes {
		opts, err := registry.HostOptions(s.Name, s.Params)
		if err != nil {
			return nil, err
		}
		hostOpts = append(hostOpts, opts...)
	}

	cs := spec.Campus
	trunk := time.Millisecond
	if cs.TrunkLatencyMicros > 0 {
		trunk = time.Duration(cs.TrunkLatencyMicros * float64(time.Microsecond))
	}
	c := labnet.NewCampus(labnet.CampusConfig{
		Seed:              spec.Seed,
		LANs:              cs.LANs,
		HostsPerLAN:       cs.HostsPerLAN,
		ActiveHostsPerLAN: cs.ActiveHostsPerLAN,
		TrunkLatency:      trunk,
		Workers:           cs.Workers,
		Policy:            prof.Policy,
		HostOptions:       hostOpts,
		WithAttacker:      true,
		Telemetry:         reg,
	})
	defer c.Recycle()

	lan0 := c.LANs[0]
	capture := trace.NewCapture(0)
	lan0.Switch.AddTap(capture.Tap())
	lan0.Sink.Instrument(reg)

	var guards []*core.Guard
	for _, s := range spec.Schemes {
		f, ok := registry.Lookup(s.Name)
		if !ok {
			return nil, registry.UnknownSchemeError(s.Name)
		}
		if f.ConstructionOnly() {
			continue // already applied through hostOpts
		}
		insts, err := c.Deploy(s.Name, s.Params)
		if err != nil {
			return nil, err
		}
		for _, inst := range insts {
			if g, ok := inst.Handle.(*core.Guard); ok {
				guards = append(guards, g)
			}
		}
	}

	if err := armAttacks(spec, attackTargets{
		sched:  lan0.Sched,
		atk:    lan0.Attacker,
		victim: lan0.Victim(),
		gwIP:   lan0.Router.IP(),
		gwMAC:  lan0.Router.MAC(),
		subnet: lan0.Subnet,
	}); err != nil {
		return nil, err
	}

	// The flat topology's background cadence, per LAN: every active station
	// works through its router gateway so caches and detectors stay
	// exercised on every segment. Banks generate their own bulk load.
	for _, cl := range c.LANs {
		gwIP := cl.Router.IP()
		for _, h := range cl.Hosts {
			h, sched := h, cl.Sched
			sched.Every(5*time.Second, func() { h.SendUDP(gwIP, 2000, 80, []byte("work")) })
		}
	}

	duration := time.Duration(spec.DurationSeconds * float64(time.Second))
	if err := c.Run(duration); err != nil {
		return nil, err
	}

	res := &Result{
		Duration:        duration,
		AlertsByScheme:  make(map[string]int),
		AlertsByKind:    make(map[string]int),
		PoisonedHosts:   c.PoisonedCount(lan0.Router.IP(), lan0.Attacker.MAC()),
		AttackerForged:  lan0.Attacker.Stats().Forged,
		AttackerSniffed: lan0.Attacker.Stats().Sniffed,
		CaptureStats:    capture.Stats(),
		Telemetry:       reg.Snapshot(),
		Campus: &CampusResult{
			LANs:           len(c.LANs),
			Hosts:          c.TotalHosts(),
			FabricFrames:   c.Frames(),
			CrossLANFrames: c.Sharded.CrossMessages(),
		},
	}
	for _, cl := range c.LANs {
		res.SwitchFiltered += cl.Switch.Stats().Filtered
		res.CAMEntries += cl.Switch.CAMLen()
	}
	seenScheme := make(map[string]bool)
	for _, a := range c.MergedAlerts() {
		res.AlertsByScheme[a.Scheme]++
		res.AlertsByKind[a.Kind.String()]++
		if !seenScheme[a.Scheme] {
			seenScheme[a.Scheme] = true
			res.FirstAlerts = append(res.FirstAlerts, fmt.Sprintf("lan%d %s", a.LAN, a.String()))
		}
	}
	for _, g := range guards {
		res.GuardIncidents += len(g.Incidents())
		res.GuardConfirmed += g.ConfirmedCount()
	}
	return res, nil
}
