// Campus scenarios: the same JSON front end, run on the sharded engine
// over a routed multi-LAN topology instead of one flat segment. Schemes,
// stacks, and fault plans ride the same deployment plane as flat runs —
// top-level entries land on every LAN, Deployments scope them to segment
// subsets — the attack timeline plays out inside the attacker's LAN
// against its router gateway, and the per-LAN alert sinks merge into one
// deterministically ordered campus view.
package scenario

import (
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/labnet"
	"repro/internal/schemes/kernelpolicy"
	"repro/internal/schemes/registry"
	"repro/internal/stack"
	"repro/internal/trace"
)

// campusHostOptions folds the spec's construction-time host options: the
// fabric-wide set from top-level schemes and stacks, plus the per-LAN sets
// from scoped deployments.
func campusHostOptions(spec *Spec, lans int) (shared []stack.Option, perLAN map[int][]stack.Option, err error) {
	for _, s := range spec.Schemes {
		opts, err := registry.HostOptions(s.Name, s.Params)
		if err != nil {
			return nil, nil, err
		}
		shared = append(shared, opts...)
	}
	for _, st := range spec.Stacks {
		opts, err := registry.StackHostOptions(st)
		if err != nil {
			return nil, nil, err
		}
		shared = append(shared, opts...)
	}
	for di, d := range spec.Campus.Deployments {
		var opts []stack.Option
		for _, s := range d.Schemes {
			o, err := registry.HostOptions(s.Name, s.Params)
			if err != nil {
				return nil, nil, fmt.Errorf("campus deployment %d: %w", di, err)
			}
			opts = append(opts, o...)
		}
		for _, st := range d.Stacks {
			o, err := registry.StackHostOptions(st)
			if err != nil {
				return nil, nil, fmt.Errorf("campus deployment %d: %w", di, err)
			}
			opts = append(opts, o...)
		}
		if len(opts) == 0 {
			continue
		}
		targets, _ := parseLANSelector(d.LANs, lans) // Validate vouched
		if perLAN == nil {
			perLAN = make(map[int][]stack.Option)
		}
		for _, li := range targets {
			perLAN[li] = append(perLAN[li], opts...)
		}
	}
	return shared, perLAN, nil
}

// runCampus executes a Spec whose Campus section is present.
func runCampus(spec *Spec, rc *runConfig) (*Result, error) {
	reg := rc.registry
	if spec.DurationSeconds == 0 {
		spec.DurationSeconds = 60
	}
	if spec.Policy == "" {
		spec.Policy = "naive"
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	prof, _ := kernelpolicy.Find(spec.Policy) // Validate vouched for the name

	cs := spec.Campus
	lans := cs.LANs
	if lans == 0 {
		lans = 4 // labnet's default, needed here to resolve selectors
	}
	hostOpts, lanOpts, err := campusHostOptions(spec, lans)
	if err != nil {
		return nil, err
	}

	trunk := time.Millisecond
	if cs.TrunkLatencyMicros > 0 {
		trunk = time.Duration(cs.TrunkLatencyMicros * float64(time.Microsecond))
	}
	c := labnet.NewCampus(labnet.CampusConfig{
		Seed:              spec.Seed,
		LANs:              cs.LANs,
		HostsPerLAN:       cs.HostsPerLAN,
		ActiveHostsPerLAN: cs.ActiveHostsPerLAN,
		TrunkLatency:      trunk,
		Workers:           cs.Workers,
		Policy:            prof.Policy,
		HostOptions:       hostOpts,
		LANHostOptions:    lanOpts,
		WithAttacker:      true,
		AttackerLAN:       cs.AttackerLAN,
		Telemetry:         reg,
	})
	defer c.Recycle()

	lan0 := c.LANs[0]
	capture := trace.NewCapture(0)
	lan0.Switch.AddTap(capture.Tap())
	lan0.Sink.Instrument(reg)

	sites := c.Sites()
	var dep deployment
	if err := deployOnto(sites, spec.Schemes, spec.Stacks, &dep); err != nil {
		return nil, err
	}
	for di, d := range cs.Deployments {
		targets, _ := parseLANSelector(d.LANs, len(sites)) // Validate vouched
		sub := make([]*labnet.Site, 0, len(targets))
		for _, li := range targets {
			sub = append(sub, sites[li])
		}
		if err := deployOnto(sub, d.Schemes, d.Stacks, &dep); err != nil {
			return nil, fmt.Errorf("campus deployment %d: %w", di, err)
		}
	}

	atkLAN := c.Attacker()
	if err := armAttacks(spec, attackTargets{
		sched:  atkLAN.Sched,
		atk:    atkLAN.Attacker,
		victim: atkLAN.Victim(),
		gwIP:   atkLAN.Router.IP(),
		gwMAC:  atkLAN.Router.MAC(),
		subnet: atkLAN.Subnet,
	}); err != nil {
		return nil, err
	}

	// Same ordering contract as the flat path: faults arm after scheme
	// deployment and attack arming, before background traffic.
	var faultCtl *faults.Controller
	if spec.Faults != nil {
		var err error
		if faultCtl, err = faults.Apply(spec.Faults, c.FaultEnv()); err != nil {
			return nil, err
		}
	}

	// The flat topology's background cadence, per LAN: every active station
	// works through its router gateway so caches and detectors stay
	// exercised on every segment. Banks generate their own bulk load.
	for _, cl := range c.LANs {
		gwIP := cl.Router.IP()
		for _, h := range cl.Hosts {
			h, sched := h, cl.Sched
			sched.Every(5*time.Second, func() { h.SendUDP(gwIP, 2000, 80, []byte("work")) })
		}
	}

	duration := time.Duration(spec.DurationSeconds * float64(time.Second))
	if err := c.Run(duration); err != nil {
		return nil, err
	}

	res := &Result{
		Duration:        duration,
		AlertsByScheme:  make(map[string]int),
		AlertsByKind:    make(map[string]int),
		PoisonedHosts:   c.PoisonedCount(atkLAN.Router.IP(), atkLAN.Attacker.MAC()),
		AttackerForged:  atkLAN.Attacker.Stats().Forged,
		AttackerSniffed: atkLAN.Attacker.Stats().Sniffed,
		CaptureStats:    capture.Stats(),
		Telemetry:       reg.Snapshot(),
		Campus: &CampusResult{
			LANs:           len(c.LANs),
			Hosts:          c.TotalHosts(),
			FabricFrames:   c.Frames(),
			CrossLANFrames: c.Sharded.CrossMessages(),
		},
	}
	for _, cl := range c.LANs {
		res.SwitchFiltered += cl.Switch.Stats().Filtered
		res.CAMEntries += cl.Switch.CAMLen()
	}
	seenScheme := make(map[string]bool)
	for _, a := range c.MergedAlerts() {
		res.AlertsByScheme[a.Scheme]++
		res.AlertsByKind[a.Kind.String()]++
		if !seenScheme[a.Scheme] {
			seenScheme[a.Scheme] = true
			res.FirstAlerts = append(res.FirstAlerts, fmt.Sprintf("lan%d %s", a.LAN, a.String()))
		}
	}
	dep.guardResults(res)
	res.StackStats = dep.stackResults()
	if faultCtl != nil {
		fs := faultCtl.Stats()
		res.FaultStats = &fs
	}
	return res, nil
}
