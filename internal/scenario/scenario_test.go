package scenario

import (
	"bytes"
	"strings"
	"testing"
)

func load(t *testing.T, js string) *Spec {
	t.Helper()
	spec, err := Load(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"bogus": true}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := Load(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestGuardScenarioDetectsMITM(t *testing.T) {
	spec := load(t, `{
		"seed": 1, "hosts": 5, "durationSeconds": 60,
		"schemes": [{"name": "hybrid-guard"}],
		"attacks": [{"atSeconds": 10, "type": "mitm"}]
	}`)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.GuardIncidents == 0 || res.GuardConfirmed == 0 {
		t.Fatalf("guard result: %+v", res)
	}
	if res.PoisonedHosts == 0 {
		t.Fatal("detection-only scenario should leave the victim poisoned")
	}
	if res.AttackerSniffed == 0 {
		t.Fatal("relay should have captured payload")
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "guard:") {
		t.Fatalf("render:\n%s", buf.String())
	}
}

func TestDAIScenarioPrevents(t *testing.T) {
	spec := load(t, `{
		"seed": 2, "durationSeconds": 30,
		"schemes": [{"name": "dai"}],
		"attacks": [
			{"atSeconds": 5, "type": "poison", "variant": "gratuitous"},
			{"atSeconds": 10, "type": "poison", "variant": "unsolicited-reply"}
		]
	}`)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.PoisonedHosts != 0 {
		t.Fatalf("DAI scenario poisoned %d hosts", res.PoisonedHosts)
	}
	if res.SwitchFiltered == 0 {
		t.Fatal("nothing filtered inline")
	}
	if res.AlertsByScheme["dai"] == 0 {
		t.Fatalf("alerts: %+v", res.AlertsByScheme)
	}
}

func TestPortSecurityScenarioStopsFloodAndSteal(t *testing.T) {
	spec := load(t, `{
		"seed": 3, "durationSeconds": 30,
		"schemes": [{"name": "port-security"}, {"name": "flood-detect"}],
		"attacks": [
			{"atSeconds": 5, "type": "cam-flood", "count": 300},
			{"atSeconds": 15, "type": "port-steal", "periodSeconds": 0.1}
		]
	}`)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.CAMEntries > 10 {
		t.Fatalf("CAM grew to %d through port security", res.CAMEntries)
	}
	if res.AttackerSniffed != 0 {
		t.Fatal("port steal succeeded through sticky MACs")
	}
	if res.AlertsByScheme["port-security"] == 0 {
		t.Fatalf("alerts: %+v", res.AlertsByScheme)
	}
}

func TestPolicyFieldRespected(t *testing.T) {
	// The attack fires off the background-traffic grid (multiples of 5s):
	// an unsolicited reply landing while a genuine resolution is pending
	// would be accepted as solicited — that is the race, not the push.
	spec := load(t, `{
		"seed": 4, "durationSeconds": 20, "policy": "solicited-only",
		"attacks": [{"atSeconds": 7, "type": "poison", "variant": "unsolicited-reply"}]
	}`)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.PoisonedHosts != 0 {
		t.Fatal("solicited-only hosts accepted an unsolicited reply")
	}

	// On this uniform-latency LAN the genuine owner wins the tie against
	// solicited-only caches (Figure 2 sweeps the latency handicap); against
	// naive caches the racer's trailing shot always lands.
	race := load(t, `{
		"seed": 4, "durationSeconds": 20, "policy": "naive",
		"attacks": [{"atSeconds": 7, "type": "poison", "variant": "reply-race"}]
	}`)
	res2, err := Run(race)
	if err != nil {
		t.Fatal(err)
	}
	if res2.PoisonedHosts == 0 {
		t.Fatal("the double-tap race should beat a naive cache")
	}
}

func TestUnknownNamesRejected(t *testing.T) {
	if _, err := Run(load(t, `{"schemes": [{"name": "nope"}]}`)); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := Run(load(t, `{"attacks": [{"type": "nope"}]}`)); err == nil {
		t.Fatal("unknown attack accepted")
	}
	if _, err := Run(load(t, `{"attacks": [{"type": "poison", "variant": "nope"}]}`)); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

func TestAddressDefenseScenario(t *testing.T) {
	spec := load(t, `{
		"seed": 5, "durationSeconds": 30,
		"schemes": [{"name": "address-defense"}],
		"attacks": [{"atSeconds": 5, "type": "poison", "variant": "gratuitous"}]
	}`)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	// The gateway reasserted after the broadcast forgery: nobody stays
	// poisoned.
	if res.PoisonedHosts != 0 {
		t.Fatalf("defense failed: %d poisoned", res.PoisonedHosts)
	}
}
