package scenario

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func load(t *testing.T, js string) *Spec {
	t.Helper()
	spec, err := Load(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"bogus": true}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := Load(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestGuardScenarioDetectsMITM(t *testing.T) {
	spec := load(t, `{
		"seed": 1, "hosts": 5, "durationSeconds": 60,
		"schemes": [{"name": "hybrid-guard"}],
		"attacks": [{"atSeconds": 10, "type": "mitm"}]
	}`)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.GuardIncidents == 0 || res.GuardConfirmed == 0 {
		t.Fatalf("guard result: %+v", res)
	}
	if res.PoisonedHosts == 0 {
		t.Fatal("detection-only scenario should leave the victim poisoned")
	}
	if res.AttackerSniffed == 0 {
		t.Fatal("relay should have captured payload")
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "guard:") {
		t.Fatalf("render:\n%s", buf.String())
	}
}

func TestDAIScenarioPrevents(t *testing.T) {
	spec := load(t, `{
		"seed": 2, "durationSeconds": 30,
		"schemes": [{"name": "dai"}],
		"attacks": [
			{"atSeconds": 5, "type": "poison", "variant": "gratuitous"},
			{"atSeconds": 10, "type": "poison", "variant": "unsolicited-reply"}
		]
	}`)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.PoisonedHosts != 0 {
		t.Fatalf("DAI scenario poisoned %d hosts", res.PoisonedHosts)
	}
	if res.SwitchFiltered == 0 {
		t.Fatal("nothing filtered inline")
	}
	if res.AlertsByScheme["dai"] == 0 {
		t.Fatalf("alerts: %+v", res.AlertsByScheme)
	}
}

func TestPortSecurityScenarioStopsFloodAndSteal(t *testing.T) {
	spec := load(t, `{
		"seed": 3, "durationSeconds": 30,
		"schemes": [{"name": "port-security"}, {"name": "flood-detect"}],
		"attacks": [
			{"atSeconds": 5, "type": "cam-flood", "count": 300},
			{"atSeconds": 15, "type": "port-steal", "periodSeconds": 0.1}
		]
	}`)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.CAMEntries > 10 {
		t.Fatalf("CAM grew to %d through port security", res.CAMEntries)
	}
	if res.AttackerSniffed != 0 {
		t.Fatal("port steal succeeded through sticky MACs")
	}
	if res.AlertsByScheme["port-security"] == 0 {
		t.Fatalf("alerts: %+v", res.AlertsByScheme)
	}
}

func TestPolicyFieldRespected(t *testing.T) {
	// The attack fires off the background-traffic grid (multiples of 5s):
	// an unsolicited reply landing while a genuine resolution is pending
	// would be accepted as solicited — that is the race, not the push.
	spec := load(t, `{
		"seed": 4, "durationSeconds": 20, "policy": "solicited-only",
		"attacks": [{"atSeconds": 7, "type": "poison", "variant": "unsolicited-reply"}]
	}`)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.PoisonedHosts != 0 {
		t.Fatal("solicited-only hosts accepted an unsolicited reply")
	}

	// On this uniform-latency LAN the genuine owner wins the tie against
	// solicited-only caches (Figure 2 sweeps the latency handicap); against
	// naive caches the racer's trailing shot always lands.
	race := load(t, `{
		"seed": 4, "durationSeconds": 20, "policy": "naive",
		"attacks": [{"atSeconds": 7, "type": "poison", "variant": "reply-race"}]
	}`)
	res2, err := Run(race)
	if err != nil {
		t.Fatal(err)
	}
	if res2.PoisonedHosts == 0 {
		t.Fatal("the double-tap race should beat a naive cache")
	}
}

func TestUnknownNamesRejected(t *testing.T) {
	// Scheme names, parameters, stacks, and policies fail at load time, with
	// the error enumerating the valid names.
	if _, err := Load(strings.NewReader(`{"schemes": [{"name": "nope"}]}`)); err == nil ||
		!strings.Contains(err.Error(), "valid:") || !strings.Contains(err.Error(), "arpwatch") {
		t.Fatalf("unknown scheme: %v", err)
	}
	if _, err := Load(strings.NewReader(`{"schemes": [{"name": "dai", "params": {"bogus": 1}}]}`)); err == nil {
		t.Fatal("unknown scheme param accepted")
	}
	if _, err := Load(strings.NewReader(`{"stacks": [{"schemes": [{"name": "nope"}]}]}`)); err == nil ||
		!strings.Contains(err.Error(), "valid:") {
		t.Fatalf("unknown stack member: %v", err)
	}
	if _, err := Load(strings.NewReader(`{"stacks": [{"schemes": []}]}`)); err == nil {
		t.Fatal("empty stack accepted")
	}
	if _, err := Load(strings.NewReader(`{"policy": "nope"}`)); err == nil ||
		!strings.Contains(err.Error(), "solicited-only") {
		t.Fatalf("unknown policy: %v", err)
	}
	// Attack names still fail at run time.
	if _, err := Run(load(t, `{"attacks": [{"type": "nope"}]}`)); err == nil {
		t.Fatal("unknown attack accepted")
	}
	if _, err := Run(load(t, `{"attacks": [{"type": "poison", "variant": "nope"}]}`)); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

func TestAddressDefenseScenario(t *testing.T) {
	spec := load(t, `{
		"seed": 5, "durationSeconds": 30,
		"schemes": [{"name": "address-defense"}],
		"attacks": [{"atSeconds": 5, "type": "poison", "variant": "gratuitous"}]
	}`)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	// The gateway reasserted after the broadcast forgery: nobody stays
	// poisoned.
	if res.PoisonedHosts != 0 {
		t.Fatalf("defense failed: %d poisoned", res.PoisonedHosts)
	}
}

// TestDefenseInDepthScenario runs the bundled three-scheme stack end to end:
// the correlated deployment must stop the poisoning, surface per-stack
// correlation stats, and render them.
func TestDefenseInDepthScenario(t *testing.T) {
	f, err := os.Open(filepath.Join("..", "..", "scenarios", "defense-in-depth.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spec, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.PoisonedHosts != 0 {
		t.Fatalf("stack failed to prevent: %d poisoned", res.PoisonedHosts)
	}
	if len(res.StackStats) != 1 {
		t.Fatalf("stack stats: %+v", res.StackStats)
	}
	ss := res.StackStats[0]
	if ss.Stack != "perimeter" || ss.Forwarded == 0 {
		t.Fatalf("stack stats: %+v", ss)
	}
	if ss.Suppressed == 0 {
		t.Fatalf("overlapping vantages raised no duplicates to collapse: %+v", ss)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "stack perimeter:") {
		t.Fatalf("render missing the stack line:\n%s", buf.String())
	}
}

// TestBundledScenariosRoundTrip walks every shipped scenarios/*.json through
// load → run → re-marshal → re-load: the Spec must survive a JSON round
// trip losslessly (no field silently dropped by a missing tag), and every
// bundled file must actually run.
func TestBundledScenariosRoundTrip(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 5 {
		t.Fatalf("expected the 5 bundled scenarios, found %d: %v", len(paths), paths)
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			spec, err := Load(bytes.NewReader(blob))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Run(spec); err != nil {
				t.Fatal(err)
			}
			remarshaled, err := json.Marshal(spec)
			if err != nil {
				t.Fatal(err)
			}
			reloaded, err := Load(bytes.NewReader(remarshaled))
			if err != nil {
				t.Fatalf("re-marshaled spec does not reload: %v\n%s", err, remarshaled)
			}
			if !reflect.DeepEqual(spec, reloaded) {
				t.Fatalf("spec did not survive the round trip:\n%+v\n%+v", spec, reloaded)
			}
		})
	}
}

// TestFaultedScenarioReportsStats runs the lossy-campus scenario end to end
// and checks the fault plan demonstrably executed: injection stats are
// populated and surfaced both in the structured result and the rendering.
func TestFaultedScenarioReportsStats(t *testing.T) {
	f, err := os.Open(filepath.Join("..", "..", "scenarios", "lossy-campus.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spec, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	fs := res.FaultStats
	if fs == nil {
		t.Fatal("faulted scenario returned no FaultStats")
	}
	if fs.BurstDropped == 0 || fs.LinkFlaps != 1 || fs.HostChurns != 1 || fs.CAMFlushes != 1 {
		t.Fatalf("fault stats: %+v", fs)
	}
	// The MITM must still be detected through the degraded network.
	if res.GuardIncidents == 0 {
		t.Fatalf("guard saw nothing through the faults: %+v", res)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "faults:") {
		t.Fatalf("render missing the faults line:\n%s", buf.String())
	}
}

// TestFaultSectionValidatedAtRun confirms a scenario with a bad fault event
// fails loudly at Run, not silently.
func TestFaultSectionValidatedAtRun(t *testing.T) {
	spec := load(t, `{
		"seed": 1, "durationSeconds": 10,
		"faults": {"events": [{"type": "dhcp-outage", "atSeconds": 1}]}
	}`)
	if _, err := Run(spec); err == nil || !strings.Contains(err.Error(), "no DHCP server") {
		t.Fatalf("err = %v, want dhcp-outage rejection (scenarios deploy no DHCP server)", err)
	}
}
