package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !approx(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Fatal("mean")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
}

func TestStdDev(t *testing.T) {
	if !approx(StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), math.Sqrt(32.0/7.0)) {
		t.Fatal("stddev")
	}
	if StdDev([]float64{5}) != 0 {
		t.Fatal("single-sample stddev")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		q, want float64
	}{
		{0, 15}, {1, 50}, {0.5, 35}, {0.25, 20}, {0.75, 40},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); !approx(got, tt.want) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile")
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.5); !approx(got, 5) {
		t.Fatalf("interp = %v", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		qa, qb := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(xs, qa) <= Quantile(xs, qb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{1, 2, 2, 3})
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if !approx(pts[0].P, 0.25) || !approx(pts[1].P, 0.75) || !approx(pts[2].P, 1.0) {
		t.Fatalf("cdf = %+v", pts)
	}
	if CDF(nil) != nil {
		t.Fatal("empty cdf")
	}
}

func TestCDFReachesOneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) {
				xs = append(xs, x)
			}
		}
		pts := CDF(xs)
		if len(xs) == 0 {
			return pts == nil
		}
		last := pts[len(pts)-1]
		for i := 1; i < len(pts); i++ {
			if pts[i].P < pts[i-1].P || pts[i].X < pts[i-1].X {
				return false
			}
		}
		return approx(last.P, 1.0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProportion(t *testing.T) {
	p := NewProportion(8, 10)
	if !approx(p.P, 0.8) || p.N != 10 || p.Positive != 8 {
		t.Fatalf("%+v", p)
	}
	if p.Lo >= p.P || p.Hi <= p.P {
		t.Fatalf("interval does not bracket the estimate: %+v", p)
	}
	if p.Lo < 0 || p.Hi > 1 {
		t.Fatalf("interval escapes [0,1]: %+v", p)
	}
	zero := NewProportion(0, 0)
	if zero.P != 0 || zero.Hi != 0 {
		t.Fatalf("empty proportion: %+v", zero)
	}
	// Extremes stay in range.
	all := NewProportion(10, 10)
	if all.Hi > 1 || all.Lo <= 0.5 {
		t.Fatalf("all-success interval: %+v", all)
	}
}
