// Package stats provides the small set of summary statistics the
// evaluation harness reports: means, quantiles, empirical CDFs, and
// proportions with Wilson confidence intervals.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for fewer than 2 values).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear interpolation
// between order statistics. Input need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// CDFPoint is one point of an empirical distribution function.
type CDFPoint struct {
	X float64 // value
	P float64 // fraction of samples ≤ X
}

// CDF returns the empirical CDF of xs, one point per distinct value.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	var out []CDFPoint
	n := float64(len(sorted))
	for i := 0; i < len(sorted); i++ {
		if i+1 < len(sorted) && sorted[i+1] == sorted[i] {
			continue // emit only the last occurrence of a value
		}
		out = append(out, CDFPoint{X: sorted[i], P: float64(i+1) / n})
	}
	return out
}

// Proportion is a binomial estimate with its Wilson 95% interval.
type Proportion struct {
	P        float64
	Lo, Hi   float64
	N        int
	Positive int
}

// NewProportion computes k successes out of n trials.
func NewProportion(k, n int) Proportion {
	if n == 0 {
		return Proportion{}
	}
	const z = 1.96
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	return Proportion{P: p, Lo: math.Max(0, center-half), Hi: math.Min(1, center+half), N: n, Positive: k}
}
