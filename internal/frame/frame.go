// Package frame implements Ethernet II framing: the wire encoding and
// decoding of layer-2 frames carried by the simulated LAN.
//
// Frames are encoded exactly as on a real wire (minus preamble and FCS, which
// NIC hardware strips before delivery; an optional CRC32 check is provided
// for the trace layer). This keeps every byte count reported by the
// evaluation harness faithful to what the schemes would cost on real
// Ethernet.
package frame

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/ethaddr"
)

// EtherType identifies the protocol carried in the frame payload.
type EtherType uint16

// EtherType values used by the framework. SARP and TARP use the
// experimentally assigned types from their respective papers' prototypes so
// that secured traffic is distinguishable on the wire.
const (
	TypeIPv4 EtherType = 0x0800
	TypeARP  EtherType = 0x0806
	TypeSARP EtherType = 0x0807 // S-ARP signed ARP (protocol-replacing scheme)
	TypeTARP EtherType = 0x0808 // TARP ticketed ARP (protocol-replacing scheme)
)

// String returns the conventional name of the EtherType.
func (t EtherType) String() string {
	switch t {
	case TypeIPv4:
		return "IPv4"
	case TypeARP:
		return "ARP"
	case TypeSARP:
		return "S-ARP"
	case TypeTARP:
		return "TARP"
	default:
		return fmt.Sprintf("0x%04x", uint16(t))
	}
}

// Frame sizing constants (octets).
const (
	HeaderLen     = 14   // dst(6) + src(6) + ethertype(2)
	MinPayloadLen = 46   // Ethernet minimum; shorter payloads are padded
	MaxPayloadLen = 1500 // Ethernet II MTU
	MinFrameLen   = HeaderLen + MinPayloadLen
	MaxFrameLen   = HeaderLen + MaxPayloadLen
)

// Errors returned by Decode.
var (
	ErrTruncated = errors.New("frame truncated")
	ErrOversize  = errors.New("frame exceeds MTU")
)

// Frame is a decoded Ethernet II frame.
type Frame struct {
	Dst     ethaddr.MAC
	Src     ethaddr.MAC
	Type    EtherType
	Payload []byte
}

// WireLen returns the number of octets the frame occupies on the wire,
// accounting for minimum-size padding. This is the figure the overhead
// experiments charge per transmitted frame.
func (f *Frame) WireLen() int {
	n := HeaderLen + len(f.Payload)
	if n < MinFrameLen {
		n = MinFrameLen
	}
	return n
}

// IsBroadcast reports whether the frame is addressed to all stations.
func (f *Frame) IsBroadcast() bool { return f.Dst.IsBroadcast() }

// Clone returns a deep copy of the frame. Simulated fan-out (hubs, broadcast
// on switches) clones so receivers cannot alias each other's payloads.
func (f *Frame) Clone() *Frame {
	c := *f
	c.Payload = make([]byte, len(f.Payload))
	copy(c.Payload, f.Payload)
	return &c
}

// String renders a compact single-line summary for traces.
func (f *Frame) String() string {
	return fmt.Sprintf("%s > %s %s len=%d", f.Src, f.Dst, f.Type, f.WireLen())
}

// Encode serializes the frame, padding the payload to the Ethernet minimum.
// It fails if the payload exceeds the MTU.
func (f *Frame) Encode() ([]byte, error) {
	if len(f.Payload) > MaxPayloadLen {
		return nil, fmt.Errorf("%w: payload %d octets", ErrOversize, len(f.Payload))
	}
	n := f.WireLen()
	buf := make([]byte, n)
	copy(buf[0:6], f.Dst[:])
	copy(buf[6:12], f.Src[:])
	binary.BigEndian.PutUint16(buf[12:14], uint16(f.Type))
	copy(buf[HeaderLen:], f.Payload)
	return buf, nil
}

// Decode parses a wire-format frame. The payload is aliased into buf (frames
// are treated as immutable once on the wire); callers who mutate must Clone.
func Decode(buf []byte) (*Frame, error) {
	if len(buf) < HeaderLen {
		return nil, fmt.Errorf("%w: %d octets", ErrTruncated, len(buf))
	}
	if len(buf) > MaxFrameLen {
		return nil, fmt.Errorf("%w: %d octets", ErrOversize, len(buf))
	}
	f := &Frame{
		Type:    EtherType(binary.BigEndian.Uint16(buf[12:14])),
		Payload: buf[HeaderLen:],
	}
	copy(f.Dst[:], buf[0:6])
	copy(f.Src[:], buf[6:12])
	return f, nil
}

// Checksum computes the IEEE CRC32 (the FCS polynomial) over the encoded
// frame. The trace layer uses it to fingerprint frames.
func Checksum(encoded []byte) uint32 {
	return crc32.ChecksumIEEE(encoded)
}
