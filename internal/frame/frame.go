// Package frame implements Ethernet II framing: the wire encoding and
// decoding of layer-2 frames carried by the simulated LAN.
//
// Frames are encoded exactly as on a real wire (minus preamble and FCS, which
// NIC hardware strips before delivery; an optional CRC32 check is provided
// for the trace layer). This keeps every byte count reported by the
// evaluation harness faithful to what the schemes would cost on real
// Ethernet.
package frame

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/ethaddr"
)

// EtherType identifies the protocol carried in the frame payload.
type EtherType uint16

// EtherType values used by the framework. SARP and TARP use the
// experimentally assigned types from their respective papers' prototypes so
// that secured traffic is distinguishable on the wire.
const (
	TypeIPv4 EtherType = 0x0800
	TypeARP  EtherType = 0x0806
	TypeSARP EtherType = 0x0807 // S-ARP signed ARP (protocol-replacing scheme)
	TypeTARP EtherType = 0x0808 // TARP ticketed ARP (protocol-replacing scheme)
)

// String returns the conventional name of the EtherType.
func (t EtherType) String() string {
	switch t {
	case TypeIPv4:
		return "IPv4"
	case TypeARP:
		return "ARP"
	case TypeSARP:
		return "S-ARP"
	case TypeTARP:
		return "TARP"
	default:
		return fmt.Sprintf("0x%04x", uint16(t))
	}
}

// Frame sizing constants (octets).
const (
	HeaderLen     = 14   // dst(6) + src(6) + ethertype(2)
	MinPayloadLen = 46   // Ethernet minimum; shorter payloads are padded
	MaxPayloadLen = 1500 // Ethernet II MTU
	MinFrameLen   = HeaderLen + MinPayloadLen
	MaxFrameLen   = HeaderLen + MaxPayloadLen
)

// Errors returned by Decode.
var (
	ErrTruncated = errors.New("frame truncated")
	ErrOversize  = errors.New("frame exceeds MTU")
)

// Frame is a decoded Ethernet II frame.
//
// Once handed to a NIC a frame is shared read-only state: broadcast fan-out
// delivers the same *Frame to every receiver instead of cloning per port,
// so neither the header fields nor the payload may be mutated after Send.
// Paths that genuinely need a mutable copy (attack relays that rewrite
// addresses, anything retaining a frame past its delivery) must Clone.
type Frame struct {
	Dst     ethaddr.MAC
	Src     ethaddr.MAC
	Type    EtherType
	Payload []byte

	// memo is an opaque decode memo attached by upper layers (see
	// arppkt.DecodeFrame): with fan-out sharing one frame across N
	// receivers, the first decode of the payload is cached here and the
	// other N-1 receivers reuse it. The memo describes the payload bytes,
	// so any path that obtains a mutable frame (Clone) drops it.
	memo any
}

// Memo returns the decode memo attached to the frame, or nil.
func (f *Frame) Memo() any { return f.memo }

// SetMemo attaches a decode memo describing the current payload. Callers
// own the invariant that the memo matches the payload bytes exactly; the
// frame only stores it.
func (f *Frame) SetMemo(m any) { f.memo = m }

// WireLen returns the number of octets the frame occupies on the wire,
// accounting for minimum-size padding. This is the figure the overhead
// experiments charge per transmitted frame.
func (f *Frame) WireLen() int {
	n := HeaderLen + len(f.Payload)
	if n < MinFrameLen {
		n = MinFrameLen
	}
	return n
}

// IsBroadcast reports whether the frame is addressed to all stations.
func (f *Frame) IsBroadcast() bool { return f.Dst.IsBroadcast() }

// Clone returns a deep copy of the frame for the paths that escape the
// read-only transit contract: attack replay (which rewrites addresses
// before re-sending) and captures that outlive the delivery. The decode
// memo is dropped — the clone exists to be mutated, which would let the
// memo go stale.
func (f *Frame) Clone() *Frame {
	c := *f
	c.memo = nil
	c.Payload = make([]byte, len(f.Payload))
	copy(c.Payload, f.Payload)
	return &c
}

// String renders a compact single-line summary for traces.
func (f *Frame) String() string {
	return fmt.Sprintf("%s > %s %s len=%d", f.Src, f.Dst, f.Type, f.WireLen())
}

// Encode serializes the frame, padding the payload to the Ethernet minimum.
// It fails if the payload exceeds the MTU.
func (f *Frame) Encode() ([]byte, error) {
	return f.AppendEncode(make([]byte, 0, f.WireLen()))
}

// AppendEncode serializes the frame onto dst and returns the extended
// slice, exactly as Encode would lay it out (minimum-size padding
// included). Passing a reused buffer (dst[:0]) makes repeated encoding
// allocation-free; the capture and replay paths lean on this.
func (f *Frame) AppendEncode(dst []byte) ([]byte, error) {
	if len(f.Payload) > MaxPayloadLen {
		return nil, fmt.Errorf("%w: payload %d octets", ErrOversize, len(f.Payload))
	}
	off := len(dst)
	n := f.WireLen()
	if cap(dst)-off < n {
		grown := make([]byte, off, off+n)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:off+n]
	buf := dst[off:]
	copy(buf[0:6], f.Dst[:])
	copy(buf[6:12], f.Src[:])
	binary.BigEndian.PutUint16(buf[12:14], uint16(f.Type))
	copy(buf[HeaderLen:], f.Payload)
	for i := HeaderLen + len(f.Payload); i < n; i++ {
		buf[i] = 0 // min-size padding; recycled buffers carry old bytes
	}
	return dst, nil
}

// Decode parses a wire-format frame. The payload is aliased into buf (frames
// are treated as immutable once on the wire); callers who mutate must Clone.
func Decode(buf []byte) (*Frame, error) {
	f := &Frame{}
	if err := DecodeInto(f, buf); err != nil {
		return nil, err
	}
	return f, nil
}

// DecodeInto parses a wire-format frame into f, the allocation-free
// counterpart of Decode for callers that recycle Frame values. The payload
// aliases buf exactly as in Decode; any previous decode memo is dropped.
func DecodeInto(f *Frame, buf []byte) error {
	if len(buf) < HeaderLen {
		return fmt.Errorf("%w: %d octets", ErrTruncated, len(buf))
	}
	if len(buf) > MaxFrameLen {
		return fmt.Errorf("%w: %d octets", ErrOversize, len(buf))
	}
	copy(f.Dst[:], buf[0:6])
	copy(f.Src[:], buf[6:12])
	f.Type = EtherType(binary.BigEndian.Uint16(buf[12:14]))
	f.Payload = buf[HeaderLen:]
	f.memo = nil
	return nil
}

// Checksum computes the IEEE CRC32 (the FCS polynomial) over the encoded
// frame. The trace layer uses it to fingerprint frames.
func Checksum(encoded []byte) uint32 {
	return crc32.ChecksumIEEE(encoded)
}
