package frame

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/ethaddr"
)

// TestAppendEncodeMatchesEncode: the pooled encoder must be byte-identical
// with Encode for every frame — minimum-size padding included — even when
// writing over a dirty reused buffer that carries stale bytes from a
// previous frame.
func TestAppendEncodeMatchesEncode(t *testing.T) {
	dirty := make([]byte, 0, MaxFrameLen)
	f := func(dst, src ethaddr.MAC, typ uint16, payload []byte) bool {
		if len(payload) > MaxPayloadLen {
			payload = payload[:MaxPayloadLen]
		}
		fr := &Frame{Dst: dst, Src: src, Type: EtherType(typ), Payload: payload}
		want, err := fr.Encode()
		if err != nil {
			return false
		}
		dirty = dirty[:cap(dirty)]
		for i := range dirty {
			dirty[i] = 0xFF // stale bytes must not leak into padding
		}
		got, err := fr.AppendEncode(dirty[:0])
		return err == nil && bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestAppendEncodePadsShortPayloads: short payloads are padded with zeros to
// the Ethernet minimum even on a recycled buffer full of garbage.
func TestAppendEncodePadsShortPayloads(t *testing.T) {
	fr := &Frame{Dst: ethaddr.BroadcastMAC, Src: ethaddr.MAC{0x02, 0, 0, 0, 0, 1}, Type: TypeARP, Payload: []byte{1, 2, 3}}
	buf := make([]byte, 0, MaxFrameLen)
	buf = buf[:cap(buf)]
	for i := range buf {
		buf[i] = 0xAB
	}
	got, err := fr.AppendEncode(buf[:0])
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != MinFrameLen {
		t.Fatalf("len = %d, want %d", len(got), MinFrameLen)
	}
	for i := HeaderLen + len(fr.Payload); i < len(got); i++ {
		if got[i] != 0 {
			t.Fatalf("padding byte %d = %#x, want 0", i, got[i])
		}
	}
}

// TestAppendEncodeRejectsOversize: both encoders must refuse payloads over
// the MTU identically.
func TestAppendEncodeRejectsOversize(t *testing.T) {
	fr := &Frame{Type: TypeIPv4, Payload: make([]byte, MaxPayloadLen+1)}
	if _, err := fr.Encode(); err == nil {
		t.Fatal("Encode accepted oversize payload")
	}
	if _, err := fr.AppendEncode(nil); err == nil {
		t.Fatal("AppendEncode accepted oversize payload")
	}
}

// TestDecodeIntoMatchesDecode: the in-place decoder must agree with Decode
// on every input — same error, same frame — including garbage.
func TestDecodeIntoMatchesDecode(t *testing.T) {
	var reused Frame
	f := func(buf []byte) bool {
		f1, err1 := Decode(buf)
		err2 := DecodeInto(&reused, buf)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return err1.Error() == err2.Error()
		}
		return f1.Dst == reused.Dst && f1.Src == reused.Src &&
			f1.Type == reused.Type && bytes.Equal(f1.Payload, reused.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestDecodeIntoDropsMemo: a recycled frame must not carry a decode memo
// from its previous payload.
func TestDecodeIntoDropsMemo(t *testing.T) {
	var f Frame
	f.SetMemo("stale")
	wire, err := (&Frame{Dst: ethaddr.BroadcastMAC, Type: TypeARP, Payload: []byte{1}}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := DecodeInto(&f, wire); err != nil {
		t.Fatal(err)
	}
	if f.Memo() != nil {
		t.Fatal("memo survived DecodeInto")
	}
}
