package frame

import (
	"testing"

	"repro/internal/ethaddr"
)

// The hot path budgets (PR 7): encoding into a reused buffer and decoding
// into a reused Frame must not allocate. These gates run as ordinary tests
// so any regression fails scripts/check.sh, not just a benchmark diff.

func TestAppendEncodeAllocFree(t *testing.T) {
	f := &Frame{
		Dst:     ethaddr.BroadcastMAC,
		Src:     ethaddr.MAC{0x02, 0, 0, 0, 0, 1},
		Type:    TypeARP,
		Payload: make([]byte, 28),
	}
	buf := make([]byte, 0, MaxFrameLen)
	allocs := testing.AllocsPerRun(1000, func() {
		var err error
		buf, err = f.AppendEncode(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendEncode into reused buffer: %v allocs/op, want 0", allocs)
	}
}

func TestDecodeIntoAllocFree(t *testing.T) {
	src := &Frame{
		Dst:     ethaddr.BroadcastMAC,
		Src:     ethaddr.MAC{0x02, 0, 0, 0, 0, 1},
		Type:    TypeARP,
		Payload: make([]byte, 28),
	}
	wire, err := src.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var f Frame
	allocs := testing.AllocsPerRun(1000, func() {
		if err := DecodeInto(&f, wire); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeInto reused frame: %v allocs/op, want 0", allocs)
	}
}
