package frame

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/ethaddr"
)

var (
	macA = ethaddr.MustParseMAC("02:42:ac:00:00:01")
	macB = ethaddr.MustParseMAC("02:42:ac:00:00:02")
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	payload := []byte("hello ethernet, this payload exceeds the minimum frame size by itself ok")
	f := &Frame{Dst: macB, Src: macA, Type: TypeIPv4, Payload: payload}
	wire, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dst != macB || got.Src != macA || got.Type != TypeIPv4 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Fatalf("payload mismatch: %q", got.Payload)
	}
}

func TestEncodePadsToMinimum(t *testing.T) {
	f := &Frame{Dst: macB, Src: macA, Type: TypeARP, Payload: []byte{1, 2, 3}}
	wire, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != MinFrameLen {
		t.Fatalf("len = %d, want %d", len(wire), MinFrameLen)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	// Padding becomes part of the payload, as on a real wire; upper layers
	// carry their own length fields.
	if len(got.Payload) != MinPayloadLen {
		t.Fatalf("payload len = %d, want %d", len(got.Payload), MinPayloadLen)
	}
	if !bytes.Equal(got.Payload[:3], []byte{1, 2, 3}) {
		t.Fatal("payload prefix lost")
	}
}

func TestWireLen(t *testing.T) {
	tests := []struct {
		name    string
		payload int
		want    int
	}{
		{name: "empty pads", payload: 0, want: 60},
		{name: "small pads", payload: 10, want: 60},
		{name: "at minimum", payload: 46, want: 60},
		{name: "above minimum", payload: 100, want: 114},
		{name: "mtu", payload: 1500, want: 1514},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			f := &Frame{Payload: make([]byte, tt.payload)}
			if got := f.WireLen(); got != tt.want {
				t.Fatalf("WireLen = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestEncodeOversize(t *testing.T) {
	f := &Frame{Payload: make([]byte, MaxPayloadLen+1)}
	if _, err := f.Encode(); !errors.Is(err, ErrOversize) {
		t.Fatalf("err = %v, want ErrOversize", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	if _, err := Decode(make([]byte, HeaderLen-1)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestDecodeOversize(t *testing.T) {
	if _, err := Decode(make([]byte, MaxFrameLen+1)); !errors.Is(err, ErrOversize) {
		t.Fatalf("err = %v, want ErrOversize", err)
	}
}

func TestClone(t *testing.T) {
	f := &Frame{Dst: macB, Src: macA, Type: TypeARP, Payload: []byte{1, 2, 3}}
	c := f.Clone()
	c.Payload[0] = 99
	if f.Payload[0] != 1 {
		t.Fatal("Clone aliases payload")
	}
}

func TestBroadcast(t *testing.T) {
	f := &Frame{Dst: ethaddr.BroadcastMAC}
	if !f.IsBroadcast() {
		t.Fatal("broadcast not detected")
	}
}

func TestEtherTypeString(t *testing.T) {
	tests := []struct {
		t    EtherType
		want string
	}{
		{TypeIPv4, "IPv4"},
		{TypeARP, "ARP"},
		{TypeSARP, "S-ARP"},
		{TypeTARP, "TARP"},
		{EtherType(0x88cc), "0x88cc"},
	}
	for _, tt := range tests {
		if got := tt.t.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", uint16(tt.t), got, tt.want)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(dst, src ethaddr.MAC, typ uint16, payload []byte) bool {
		if len(payload) > MaxPayloadLen {
			payload = payload[:MaxPayloadLen]
		}
		fr := &Frame{Dst: dst, Src: src, Type: EtherType(typ), Payload: payload}
		wire, err := fr.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(wire)
		if err != nil {
			return false
		}
		return got.Dst == dst && got.Src == src && got.Type == EtherType(typ) &&
			bytes.Equal(got.Payload[:len(payload)], payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChecksumDiffers(t *testing.T) {
	a, _ := (&Frame{Dst: macA, Src: macB, Type: TypeARP, Payload: []byte{1}}).Encode()
	b, _ := (&Frame{Dst: macA, Src: macB, Type: TypeARP, Payload: []byte{2}}).Encode()
	if Checksum(a) == Checksum(b) {
		t.Fatal("checksums should differ for different payloads")
	}
}
