package eval

import (
	"fmt"
	"math"
	"time"

	"repro/internal/schemes/registry"
	"repro/internal/stats"
)

// table9Stacks are the representative defense-in-depth deployments: one per
// composition argument in the related work — switch enforcement backed by a
// passive monitor, passive monitoring backed by active verification, and a
// signature NIDS layered with rate anomaly detection plus host hardening.
// The cryptographic protocol replacements are deliberately absent: their
// key generation draws real entropy, which would break the byte-identical
// reproducibility this table guarantees at any parallelism.
func table9Stacks() []registry.Stack {
	mk := func(names ...string) registry.Stack {
		var st registry.Stack
		for _, n := range names {
			st.Schemes = append(st.Schemes, registry.Selection{Name: n})
		}
		return st
	}
	return []registry.Stack{
		mk(registry.NameDAI, registry.NameArpwatch, registry.NamePortSecurity),
		mk(registry.NameArpwatch, registry.NameActiveProbe),
		mk(registry.NameSnortLike, registry.NameFloodDetect, registry.NameMiddleware),
	}
}

// stackRowStats aggregates one deployment's trials.
type stackRowStats struct {
	tpr        float64
	fpPerChurn float64
	latencies  []float64
	alerts     float64 // forwarded alerts per trial
	suppressed float64 // correlator-collapsed alerts per trial
}

// better reports whether a beats b for "best single member": higher TPR,
// then fewer FPs, then lower median latency. Stack order breaks exact ties
// (the earlier member keeps the title).
func (a stackRowStats) better(b stackRowStats) bool {
	if a.tpr != b.tpr {
		return a.tpr > b.tpr
	}
	if a.fpPerChurn != b.fpPerChurn {
		return a.fpPerChurn < b.fpPerChurn
	}
	return a.medianLatency() < b.medianLatency()
}

// medianLatency returns the p50 in ms, +Inf when nothing was detected.
func (s stackRowStats) medianLatency() float64 {
	if len(s.latencies) == 0 {
		return math.Inf(1)
	}
	return stats.Quantile(s.latencies, 0.5)
}

// Table9Stacks measures composable defense-in-depth: each representative
// stack on the standard churn + MITM workload, against its best single
// member deployed alone — through the same correlation layer, so the
// comparison isolates composition, not plumbing.
//
// Expected shape (the layered-deployment argument): a stack's coverage is
// the union of its members' — the switch-inline layers keep detecting when
// the monitor's vantage fails and vice versa — while correlation keeps the
// operator's pager load near the best member's, with the redundancy showing
// up as suppressed duplicates instead of extra pages.
func Table9Stacks(trials int) *Table {
	t := &Table{
		ID: "Table 9",
		Title: fmt.Sprintf(
			"Defense-in-depth stacks vs best single member (%d trials, 8 hosts, 4 churn events)", trials),
		Columns: []string{"deployment", "vantage", "TPR", "FP/churn", "latency p50", "alerts/trial", "suppressed/trial"},
		Notes: []string{
			"single members run as one-scheme stacks through the same alert correlator — composition is the only variable",
			"suppressed: same-(IP, kind) alerts collapsed within the 5s correlation window; cross-vantage redundancy, not pager load",
		},
	}

	// Every deployment under test: each stack plus each of its members as a
	// single-element stack, deduplicated.
	composites := table9Stacks()
	var deployments []registry.Stack
	seen := make(map[string]int)
	addDeployment := func(st registry.Stack) {
		if _, ok := seen[st.Label()]; !ok {
			seen[st.Label()] = len(deployments)
			deployments = append(deployments, st)
		}
	}
	for _, st := range composites {
		addDeployment(st)
		for _, sel := range st.Schemes {
			addDeployment(registry.Stack{Schemes: []registry.Selection{sel}})
		}
	}

	// One flat (deployment × seed) grid, like Table 3, so the worker pool
	// stays saturated and output is identical at any -parallel width.
	var cfgs []detectionTrialConfig
	for _, st := range deployments {
		for seed := int64(1); seed <= int64(trials); seed++ {
			cfgs = append(cfgs, detectionTrialConfig{
				stack:    st,
				seed:     seed + 9000, // distinct seed space from Tables 3/7/8
				hosts:    8,
				churns:   4,
				attackAt: 60 * time.Second,
				horizon:  120 * time.Second,
			})
		}
	}
	results := CachedMap(Scope{Experiment: "table9"}, cfgs, runDetectionTrial)

	rowStats := make([]stackRowStats, len(deployments))
	for di := range deployments {
		var row stackRowStats
		var detected, fps, churns, alerts, suppressed int
		for _, res := range results[di*trials : (di+1)*trials] {
			if res.detected {
				detected++
				row.latencies = append(row.latencies, res.latency.Seconds()*1000)
			}
			fps += res.fpAlerts
			churns += res.churns
			alerts += res.alerts
			suppressed += res.suppressed
		}
		row.tpr = stats.NewProportion(detected, trials).P
		if churns > 0 {
			row.fpPerChurn = float64(fps) / float64(churns)
		}
		row.alerts = float64(alerts) / float64(trials)
		row.suppressed = float64(suppressed) / float64(trials)
		rowStats[di] = row
	}

	addRow := func(label, vantage string, s stackRowStats) {
		t.AddRow(label, vantage,
			fmt.Sprintf("%.2f", s.tpr),
			fmt.Sprintf("%.2f", s.fpPerChurn),
			latencyCell(s.latencies, 0.5),
			fmt.Sprintf("%.1f", s.alerts),
			fmt.Sprintf("%.1f", s.suppressed),
		)
	}
	for _, st := range composites {
		addRow(st.Label(), "composite", rowStats[seen[st.Label()]])

		best := st.Schemes[0].Name
		bestStats := rowStats[seen[best]]
		for _, sel := range st.Schemes[1:] {
			if s := rowStats[seen[sel.Name]]; s.better(bestStats) {
				best, bestStats = sel.Name, s
			}
		}
		f, _ := registry.Lookup(best)
		addRow("  best single: "+best, string(f.Deployment.Vantage), bestStats)
	}
	return t
}
