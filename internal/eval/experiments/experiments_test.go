package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"regexp"
	"strings"
	"testing"
)

// TestRegistryCoversEvaluationOutput: every artifact in the committed
// evaluation document has a registered experiment, in the same order, and
// the registry advertises nothing the document lacks — the catalogue can
// neither drift behind the evaluation nor dangle ahead of it.
func TestRegistryCoversEvaluationOutput(t *testing.T) {
	raw, err := os.ReadFile("../../../evaluation_output.txt")
	if err != nil {
		t.Fatal(err)
	}
	header := regexp.MustCompile(`(?m)^(Table|Figure) ([0-9]+[a-z]?):`)
	var fromDoc []string
	for _, m := range header.FindAllStringSubmatch(string(raw), -1) {
		fromDoc = append(fromDoc, strings.ToLower(m[1])+m[2])
	}
	if len(fromDoc) == 0 {
		t.Fatal("no artifact headers found in evaluation_output.txt")
	}
	if got := IDs(); !reflect.DeepEqual(got, fromDoc) {
		t.Fatalf("registry IDs do not match evaluation document:\nregistry: %v\ndocument: %v", got, fromDoc)
	}
}

// TestLookupAndNumericAliases: full-ID lookup, the numeric -table/-figure
// aliases, and the suffixed companion's exclusion from numeric aliasing.
func TestLookupAndNumericAliases(t *testing.T) {
	d, ok := Lookup("table1b")
	if !ok || d.ID != "table1b" || d.Num != 1 || d.Kind != KindTable {
		t.Fatalf("Lookup(table1b) = %+v, %v", d, ok)
	}
	d, ok = LookupNumeric(KindTable, 1)
	if !ok || d.ID != "table1" {
		t.Fatalf("LookupNumeric(table, 1) = %+v, %v; want table1", d, ok)
	}
	d, ok = LookupNumeric(KindFigure, 8)
	if !ok || d.ID != "figure8" {
		t.Fatalf("LookupNumeric(figure, 8) = %+v, %v; want figure8", d, ok)
	}
	if _, ok := Lookup("table42"); ok {
		t.Fatal("Lookup(table42) succeeded")
	}
	if err := UnknownExperimentError("table42"); !strings.Contains(err.Error(), "table1b") {
		t.Fatalf("unknown-experiment error does not list valid IDs: %v", err)
	}
}

// TestParamsDefaultsRoundTrip: for every parameterized experiment, the
// defaults marshal to JSON that decodes back to an identical struct, and
// unknown fields are rejected. Parameterless experiments reject raw JSON.
func TestParamsDefaultsRoundTrip(t *testing.T) {
	for _, d := range List() {
		t.Run(d.ID, func(t *testing.T) {
			if d.DefaultParams == nil {
				if _, err := d.Params(0, json.RawMessage(`{}`)); err == nil {
					t.Fatal("parameterless experiment accepted params")
				}
				p, err := d.Params(5, nil)
				if err != nil || p != nil {
					t.Fatalf("Params = %v, %v; want nil, nil", p, err)
				}
				return
			}
			defaults := d.DefaultParams()
			raw, err := json.Marshal(defaults)
			if err != nil {
				t.Fatal(err)
			}
			got, err := d.Params(0, raw)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, defaults) {
				t.Fatalf("round trip changed params:\ngot  %+v\nwant %+v", got, defaults)
			}
			if _, err := d.Params(0, json.RawMessage(`{"noSuchKnob":1}`)); err == nil {
				t.Fatal("unknown field accepted")
			}
		})
	}
}

// TestTrialsScalingMatchesHistoricalMultipliers: the -trials knob scales
// each experiment exactly as the pre-registry CLI did, and the defaults are
// the values a -trials 5 run used.
func TestTrialsScalingMatchesHistoricalMultipliers(t *testing.T) {
	cases := []struct {
		id    string
		at5   any
		at2   any
		fixed bool // -trials does not shape this experiment
	}{
		{id: "table3", at5: &TrialsParams{5}, at2: &TrialsParams{2}},
		{id: "table4", at5: &RoundsParams{20}, at2: &RoundsParams{8}},
		{id: "table9", at5: &TrialsParams{5}, at2: &TrialsParams{2}},
		{id: "figure1", at5: &TrialsParams{20}, at2: &TrialsParams{8}},
		{id: "figure2", at5: &TrialsParams{40}, at2: &TrialsParams{16}},
		{id: "figure6", at5: &AttemptsParams{20}, at2: &AttemptsParams{8}},
		{id: "figure7", at5: &SamplesParams{150}, at2: &SamplesParams{60}},
		{id: "figure8", at5: &TrialsParams{5}, at2: &TrialsParams{2}},
		{id: "figure3", at5: &ScalingParams{Sizes: []int{4, 8, 16, 32, 64}, HorizonSeconds: 60}, fixed: true},
		{id: "figure5", at5: &FloodParams{Rates: []float64{0, 100, 500, 1000, 2000, 5000}, HorizonSeconds: 20}, fixed: true},
	}
	for _, tc := range cases {
		d, ok := Lookup(tc.id)
		if !ok {
			t.Fatalf("missing %s", tc.id)
		}
		if def := d.DefaultParams(); !reflect.DeepEqual(def, tc.at5) {
			t.Errorf("%s defaults = %+v, want %+v (the -trials 5 values)", tc.id, def, tc.at5)
		}
		got, err := d.Params(2, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := tc.at2
		if tc.fixed {
			want = tc.at5
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s at -trials 2 = %+v, want %+v", tc.id, got, want)
		}
	}
}

// TestCatalogueLinesNameEveryID: the -list rendering leads each line with
// the runnable ID, which the check.sh completeness leg scrapes.
func TestCatalogueLinesNameEveryID(t *testing.T) {
	var b strings.Builder
	if err := WriteCatalogue(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, d := range List() {
		if !strings.Contains(out, fmt.Sprintf("%-9s %-7s", d.ID, d.Kind)) {
			t.Fatalf("catalogue missing line for %s:\n%s", d.ID, out)
		}
	}
}
