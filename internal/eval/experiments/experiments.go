// Package experiments is the declarative registry of every table and figure
// the evaluation can regenerate. Each experiment self-registers a Descriptor
// (in tables.go or figures.go) declaring a stable ID ("table3", "figure8"),
// a one-line title, a JSON-serializable parameter struct with defaults, and
// a Produce function returning the rendered eval.Artifact — the experiment
// counterpart of the scheme registry in internal/schemes/registry. The CLI,
// the regeneration scripts, and the completeness tests all enumerate the
// catalogue through List/Lookup instead of hard-coding experiment sets, so
// adding an experiment means writing one descriptor — every -run ID,
// -list line, and check.sh leg picks it up automatically.
package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/eval"
)

// Kind is the artifact family an experiment renders.
type Kind string

// The two artifact families.
const (
	KindTable  Kind = "table"
	KindFigure Kind = "figure"
)

// Descriptor is one registered experiment.
type Descriptor struct {
	// ID is the stable experiment identifier: the kind, the number, and an
	// optional suffix ("table1", "table1b", "figure8"). Every -run flag,
	// cache scope, metrics record, and catalogue line uses this ID.
	ID string
	// Kind is the artifact family.
	Kind Kind
	// Num is the table/figure number; IDs that share a number ("table1",
	// "table1b") sort by ID within it, which keeps companion artifacts
	// adjacent in the catalogue and the full run.
	Num int
	// Title is the one-line catalogue entry; EXPERIMENTS.md carries the full
	// methodology.
	Title string
	// DefaultParams returns a pointer to a fresh, JSON-serializable
	// parameter struct holding the experiment's defaults (the values a
	// plain `arpbench -run <id>` uses); nil when the experiment takes no
	// parameters.
	DefaultParams func() any
	// ApplyTrials scales the parameter struct from the CLI's -trials knob
	// (each experiment keeps its historical multiplier); nil when -trials
	// does not shape the experiment.
	ApplyTrials func(params any, trials int)
	// Produce runs the experiment under the resolved parameters and returns
	// the rendered artifact.
	Produce func(params any) (eval.Artifact, error)
}

var (
	regMu sync.RWMutex
	byID  = make(map[string]*Descriptor)
)

// Register adds a descriptor to the catalogue. It panics on an empty or
// duplicate ID, a bad kind, or a missing Produce — registration bugs,
// caught by the first test that imports the package.
func Register(d Descriptor) {
	regMu.Lock()
	defer regMu.Unlock()
	if d.ID == "" {
		panic("experiments: descriptor with empty ID")
	}
	if d.Kind != KindTable && d.Kind != KindFigure {
		panic(fmt.Sprintf("experiments: %q has unknown kind %q", d.ID, d.Kind))
	}
	if d.Produce == nil {
		panic(fmt.Sprintf("experiments: %q registers no Produce", d.ID))
	}
	if _, dup := byID[d.ID]; dup {
		panic(fmt.Sprintf("experiments: duplicate experiment %q", d.ID))
	}
	dc := d
	byID[d.ID] = &dc
}

// Lookup returns the descriptor with this ID.
func Lookup(id string) (*Descriptor, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	d, ok := byID[id]
	return d, ok
}

// LookupNumeric resolves the legacy numeric selectors (-table 3, -figure 2)
// to their canonical ID. Suffixed companions (table1b) are not numeric
// aliases; they are reachable only by full ID.
func LookupNumeric(kind Kind, num int) (*Descriptor, bool) {
	return Lookup(fmt.Sprintf("%s%d", kind, num))
}

// List returns every registered experiment in render order: tables before
// figures, by number, suffixed companions right after their parent.
func List() []*Descriptor {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]*Descriptor, 0, len(byID))
	for _, d := range byID {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return kindRank(out[i].Kind) < kindRank(out[j].Kind)
		}
		if out[i].Num != out[j].Num {
			return out[i].Num < out[j].Num
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// kindRank orders tables before figures, matching the evaluation document.
func kindRank(k Kind) int {
	if k == KindTable {
		return 0
	}
	return 1
}

// IDs returns every registered experiment ID in render order.
func IDs() []string {
	ds := List()
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.ID
	}
	return out
}

// UnknownExperimentError builds the error for an ID the registry does not
// know, listing every valid ID so CLI typos are self-repairing.
func UnknownExperimentError(id string) error {
	return fmt.Errorf("unknown experiment %q (valid: %s)", id, strings.Join(IDs(), ", "))
}

// Params materializes the parameter struct one run will use: the defaults,
// scaled by the CLI -trials knob when the experiment honors it (trials > 0),
// with raw JSON — when non-empty — strictly decoded over the result
// (unknown fields are errors). Explicit JSON therefore wins over -trials
// for any field it names.
func (d *Descriptor) Params(trials int, raw json.RawMessage) (any, error) {
	if d.DefaultParams == nil {
		if len(raw) > 0 {
			return nil, fmt.Errorf("experiment %q takes no parameters", d.ID)
		}
		return nil, nil
	}
	p := d.DefaultParams()
	if trials > 0 && d.ApplyTrials != nil {
		d.ApplyTrials(p, trials)
	}
	if len(raw) > 0 {
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("experiment %q params: %w", d.ID, err)
		}
	}
	return p, nil
}

// CatalogueLine renders one descriptor for the CLI catalogue: ID, kind, and
// the default parameters as compact JSON.
func CatalogueLine(d *Descriptor) string {
	params := "-"
	if d.DefaultParams != nil {
		if raw, err := json.Marshal(d.DefaultParams()); err == nil {
			params = string(raw)
		}
	}
	return fmt.Sprintf("%-9s %-7s %s", d.ID, d.Kind, params)
}

// WriteCatalogue renders the full experiment catalogue, one experiment per
// line with its title indented below, mirroring the scheme catalogue.
func WriteCatalogue(w io.Writer) error {
	for _, d := range List() {
		if _, err := fmt.Fprintf(w, "%s\n  %s\n", CatalogueLine(d), d.Title); err != nil {
			return err
		}
	}
	return nil
}
