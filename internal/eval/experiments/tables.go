package experiments

import (
	"repro/internal/eval"
)

// TrialsParams parameterizes the seed-swept experiments: how many
// independent seeded trials feed each aggregate (row, cell, or point).
type TrialsParams struct {
	Trials int `json:"trials"`
}

// RoundsParams parameterizes Table 4: how many cold resolutions each
// scheme's per-resolution cost is averaged over.
type RoundsParams struct {
	Rounds int `json:"rounds"`
}

// trialsParams returns a fresh TrialsParams at the historical default (the
// value a plain `arpbench` run used at -trials 5 with multiplier mult).
func trialsParams(mult int) func() any {
	return func() any { return &TrialsParams{Trials: 5 * mult} }
}

// scaleTrials applies the CLI -trials knob with the experiment's
// historical multiplier.
func scaleTrials(mult int) func(any, int) {
	return func(p any, trials int) { p.(*TrialsParams).Trials = trials * mult }
}

func init() {
	Register(Descriptor{
		ID: "table1", Kind: KindTable, Num: 1,
		Title:   "Property matrix: every scheme vs the survey's comparison criteria (plus deployment recommendations)",
		Produce: func(any) (eval.Artifact, error) { return eval.Table1PropertyMatrix(), nil },
	})
	Register(Descriptor{
		ID: "table1b", Kind: KindTable, Num: 1,
		Title:   "Deployment recommendations per environment, derived from the property matrix",
		Produce: func(any) (eval.Artifact, error) { return eval.Table1Recommendations(), nil },
	})
	Register(Descriptor{
		ID: "table2", Kind: KindTable, Num: 2,
		Title:   "Cache-policy matrix: which ARP message shapes create or overwrite entries per kernel policy",
		Produce: func(any) (eval.Artifact, error) { return eval.Table2PolicyMatrix(), nil },
	})
	Register(Descriptor{
		ID: "table3", Kind: KindTable, Num: 3,
		Title:         "Detection quality under churn + MITM: TPR, FP/churn, latency quantiles per scheme",
		DefaultParams: trialsParams(1),
		ApplyTrials:   scaleTrials(1),
		Produce: func(p any) (eval.Artifact, error) {
			return eval.Table3Detection(p.(*TrialsParams).Trials), nil
		},
	})
	Register(Descriptor{
		ID: "table4", Kind: KindTable, Num: 4,
		Title:         "Runtime overhead per scheme: ARP traffic, probe load, CPU-proxy event counts",
		DefaultParams: func() any { return &RoundsParams{Rounds: 20} },
		ApplyTrials:   func(p any, trials int) { p.(*RoundsParams).Rounds = trials * 4 },
		Produce: func(p any) (eval.Artifact, error) {
			return eval.Table4Overhead(p.(*RoundsParams).Rounds)
		},
	})
	Register(Descriptor{
		ID: "table5", Kind: KindTable, Num: 5,
		Title:         "Hybrid-guard ablation: each layer's contribution to detection and prevention",
		DefaultParams: trialsParams(1),
		ApplyTrials:   scaleTrials(1),
		Produce: func(p any) (eval.Artifact, error) {
			return eval.Table5Ablation(p.(*TrialsParams).Trials), nil
		},
	})
	Register(Descriptor{
		ID: "table6", Kind: KindTable, Num: 6,
		Title:         "Evasive attacker strategies vs each scheme's blind spots",
		DefaultParams: trialsParams(1),
		ApplyTrials:   scaleTrials(1),
		Produce: func(p any) (eval.Artifact, error) {
			return eval.Table6EvasiveAttacker(p.(*TrialsParams).Trials), nil
		},
	})
	Register(Descriptor{
		ID: "table7", Kind: KindTable, Num: 7,
		Title:         "Port stealing (CAM theft): interception and flagging per scheme",
		DefaultParams: trialsParams(1),
		ApplyTrials:   scaleTrials(1),
		Produce: func(p any) (eval.Artifact, error) {
			return eval.Table7PortStealing(p.(*TrialsParams).Trials), nil
		},
	})
	Register(Descriptor{
		ID: "table8", Kind: KindTable, Num: 8,
		Title:         "Detection robustness under injected faults: coverage, FPs, time-to-detect vs intensity",
		DefaultParams: trialsParams(1),
		ApplyTrials:   scaleTrials(1),
		Produce: func(p any) (eval.Artifact, error) {
			return eval.Table8FaultRobustness(p.(*TrialsParams).Trials), nil
		},
	})
	Register(Descriptor{
		ID: "table9", Kind: KindTable, Num: 9,
		Title:         "Defense-in-depth stacks vs their best single member: coverage, FPs, correlated alert load",
		DefaultParams: trialsParams(1),
		ApplyTrials:   scaleTrials(1),
		Produce: func(p any) (eval.Artifact, error) {
			return eval.Table9Stacks(p.(*TrialsParams).Trials), nil
		},
	})
	Register(Descriptor{
		ID: "table10", Kind: KindTable, Num: 10,
		Title:         "Detection-latency attribution: causal-trace breakdown of each scheme's alert path per pipeline stage",
		DefaultParams: trialsParams(1),
		ApplyTrials:   scaleTrials(1),
		Produce: func(p any) (eval.Artifact, error) {
			return eval.Table10StageAttribution(p.(*TrialsParams).Trials), nil
		},
	})
}
