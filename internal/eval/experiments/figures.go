package experiments

import (
	"time"

	"repro/internal/eval"
)

// AttemptsParams parameterizes Figure 6: genuine resolutions per
// (window, loss) point.
type AttemptsParams struct {
	Attempts int `json:"attempts"`
}

// SamplesParams parameterizes Figure 7: cache samples per (defense, period)
// cell over the fixed 60s horizon.
type SamplesParams struct {
	Samples int `json:"samples"`
}

// ScalingParams parameterizes Figure 3: the LAN sizes swept and the
// steady-state horizon each point is measured over.
type ScalingParams struct {
	Sizes          []int   `json:"sizes"`
	HorizonSeconds float64 `json:"horizonSeconds"`
}

// FloodParams parameterizes Figure 5: the flood rates swept and the horizon
// each point observes the victim flow for.
type FloodParams struct {
	Rates          []float64 `json:"rates"`
	HorizonSeconds float64   `json:"horizonSeconds"`
}

// CampusParams parameterizes Figure 9: campus population sizes, trials per
// point, the shard worker width (0 = engine default), and the per-trial
// horizon.
type CampusParams struct {
	Sizes          []int   `json:"sizes"`
	Trials         int     `json:"trials"`
	Workers        int     `json:"workers"`
	HorizonSeconds float64 `json:"horizonSeconds"`
}

// seconds converts a JSON horizon to a duration.
func seconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

func init() {
	Register(Descriptor{
		ID: "figure1", Kind: KindFigure, Num: 1,
		Title:         "Detection latency CDF per scheme",
		DefaultParams: trialsParams(4),
		ApplyTrials:   scaleTrials(4),
		Produce: func(p any) (eval.Artifact, error) {
			return eval.Figure1LatencyCDF(p.(*TrialsParams).Trials), nil
		},
	})
	Register(Descriptor{
		ID: "figure2", Kind: KindFigure, Num: 2,
		Title:         "Reply race: victim poisoning probability vs attacker response-time advantage",
		DefaultParams: trialsParams(8),
		ApplyTrials:   scaleTrials(8),
		Produce: func(p any) (eval.Artifact, error) {
			return eval.Figure2RaceWindow(p.(*TrialsParams).Trials), nil
		},
	})
	Register(Descriptor{
		ID: "figure3", Kind: KindFigure, Num: 3,
		Title: "Scheme overhead scaling with LAN size",
		DefaultParams: func() any {
			return &ScalingParams{Sizes: []int{4, 8, 16, 32, 64}, HorizonSeconds: 60}
		},
		Produce: func(p any) (eval.Artifact, error) {
			sp := p.(*ScalingParams)
			return eval.Figure3Scaling(sp.Sizes, seconds(sp.HorizonSeconds)), nil
		},
	})
	Register(Descriptor{
		ID: "figure4", Kind: KindFigure, Num: 4,
		Title:         "False positives vs benign binding-churn rate (no attack)",
		DefaultParams: trialsParams(1),
		ApplyTrials:   scaleTrials(1),
		Produce: func(p any) (eval.Artifact, error) {
			return eval.Figure4ChurnFalsePositives(p.(*TrialsParams).Trials), nil
		},
	})
	Register(Descriptor{
		ID: "figure5", Kind: KindFigure, Num: 5,
		Title: "CAM flooding: eavesdropped fraction vs flood rate",
		DefaultParams: func() any {
			return &FloodParams{Rates: []float64{0, 100, 500, 1000, 2000, 5000}, HorizonSeconds: 20}
		},
		Produce: func(p any) (eval.Artifact, error) {
			fp := p.(*FloodParams)
			return eval.Figure5CamFlood(fp.Rates, seconds(fp.HorizonSeconds)), nil
		},
	})
	Register(Descriptor{
		ID: "figure6", Kind: KindFigure, Num: 6,
		Title:         "Probe-window ablation: false rejections vs link loss per window length",
		DefaultParams: func() any { return &AttemptsParams{Attempts: 20} },
		ApplyTrials:   func(p any, trials int) { p.(*AttemptsParams).Attempts = trials * 4 },
		Produce: func(p any) (eval.Artifact, error) {
			return eval.Figure6WindowAblation(p.(*AttemptsParams).Attempts), nil
		},
	})
	Register(Descriptor{
		ID: "figure7", Kind: KindFigure, Num: 7,
		Title:         "Defense war: poisoned fraction vs attacker re-poison period",
		DefaultParams: func() any { return &SamplesParams{Samples: 150} },
		ApplyTrials:   func(p any, trials int) { p.(*SamplesParams).Samples = trials * 30 },
		Produce: func(p any) (eval.Artifact, error) {
			return eval.Figure7DefenseWar(p.(*SamplesParams).Samples), nil
		},
	})
	Register(Descriptor{
		ID: "figure8", Kind: KindFigure, Num: 8,
		Title:         "Median time-to-detect vs composite fault intensity per scheme",
		DefaultParams: trialsParams(1),
		ApplyTrials:   scaleTrials(1),
		Produce: func(p any) (eval.Artifact, error) {
			return eval.Figure8FaultIntensitySweep(p.(*TrialsParams).Trials), nil
		},
	})
	Register(Descriptor{
		ID: "figure9", Kind: KindFigure, Num: 9,
		Title: "Campus scaling: detection latency + fabric throughput, 10² to 10⁶ hosts",
		DefaultParams: func() any {
			return &CampusParams{
				Sizes:          []int{100, 1_000, 10_000, 100_000, 1_000_000},
				Trials:         3,
				HorizonSeconds: 30,
			}
		},
		ApplyTrials: func(p any, trials int) { p.(*CampusParams).Trials = trials },
		Produce: func(p any) (eval.Artifact, error) {
			cp := p.(*CampusParams)
			return eval.Figure9CampusScaling(cp.Sizes, cp.Trials, cp.Workers, seconds(cp.HorizonSeconds)), nil
		},
	})
	Register(Descriptor{
		ID: "figure10", Kind: KindFigure, Num: 10,
		Title: "Faulted campus: per-deployment detection latency under partition + flush, 10² to 10⁶ hosts",
		DefaultParams: func() any {
			return &CampusParams{
				Sizes:          []int{100, 1_000, 10_000, 100_000, 1_000_000},
				Trials:         1,
				HorizonSeconds: 30,
			}
		},
		// Six deployments share every population point, so the trials knob
		// scales down 5×: a -trials 10 regen runs 2 trials per cell instead
		// of drowning the sweep in million-host campuses.
		ApplyTrials: func(p any, trials int) {
			n := trials / 5
			if n < 1 {
				n = 1
			}
			p.(*CampusParams).Trials = n
		},
		Produce: func(p any) (eval.Artifact, error) {
			cp := p.(*CampusParams)
			return eval.Figure10FaultedCampus(cp.Sizes, cp.Trials, cp.Workers, seconds(cp.HorizonSeconds)), nil
		},
	})
}
