package eval

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The trial runner fans independent, seeded simulation trials out across a
// worker pool. Every trial owns its entire world — one sim.Scheduler, one
// labnet.LAN, one alert sink, one telemetry registry if any — so trials
// share no mutable state and can run on any goroutine (the per-trial
// isolation invariant; see DESIGN.md "Performance"). Results are collected
// into an index-addressed slice and aggregated in input order by every
// caller, which makes rendered tables and figures byte-identical to a
// sequential run at any pool width.

// parallelism is the configured worker-pool width; 0 means GOMAXPROCS.
var parallelism atomic.Int32

// SetParallelism fixes the number of worker goroutines trial fan-out uses.
// n <= 0 restores the default (GOMAXPROCS, read at each run). cmd/arpbench
// sets this once from its -parallel flag; benchmarks pin it per run.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int32(n))
}

// Parallelism reports the worker-pool width the next fan-out will use.
func Parallelism() int {
	if n := parallelism.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// RunTrials runs one seeded trial per seed 1..trials across the worker pool
// and returns the results indexed by trial (seed i+1 lands at index i, so
// aggregation order matches the classic sequential seed loop exactly).
func RunTrials[R any](trials int, trial func(seed int64) R) []R {
	if trials < 0 {
		trials = 0
	}
	out := make([]R, trials)
	forIndexed(trials, func(i int) { out[i] = trial(int64(i) + 1) })
	return out
}

// Map runs one trial per config across the worker pool and returns results
// index-aligned with cfgs. It is the cell-shaped counterpart of RunTrials
// for experiments that sweep a grid (scheme × size, window × loss, ...).
func Map[C, R any](cfgs []C, run func(C) R) []R {
	out := make([]R, len(cfgs))
	forIndexed(len(cfgs), func(i int) { out[i] = run(cfgs[i]) })
	return out
}

// forIndexed dispatches fn(0..n-1) across min(Parallelism(), n) workers fed
// by an atomic work counter. With one worker (or one item) it degenerates to
// the plain loop, adding no goroutine or synchronization cost. A panic in
// any trial stops the dispatch and is re-raised on the caller's goroutine
// once in-flight trials finish, mirroring a sequential loop's abort.
func forIndexed(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicOnce.Do(func() {
								panicked = r
								next.Store(int64(n)) // stop dispatching
							})
						}
					}()
					fn(int(i))
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
