// Package eval implements the evaluation harness: one function per table
// and figure in EXPERIMENTS.md, each assembling scenarios from labnet,
// running them on the deterministic simulator, and returning a rendered
// report. cmd/arpbench and the benchmark suite both drive this package.
package eval

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment table.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends one row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
}

// Render writes an aligned ASCII table. Ragged rows are tolerated: cells
// beyond the column count are emitted unaligned rather than panicking.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	maxWidth := 0
	for i, c := range t.Columns {
		widths[i] = runeLen(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && runeLen(cell) > widths[i] {
				widths[i] = runeLen(cell)
			}
		}
	}
	for _, wd := range widths {
		if wd > maxWidth {
			maxWidth = wd
		}
	}
	// One shared pad buffer; slicing a string is free, so per-cell padding
	// costs no allocation (strings.Repeat per cell dominated the renderer's
	// allocs in BenchmarkTable1PropertyMatrix).
	pad := strings.Repeat(" ", maxWidth)
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				if d := widths[i] - runeLen(cell); d > 0 {
					b.WriteString(pad[:d])
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// runeLen counts display runes (the coverage symbols are multi-byte).
func runeLen(s string) int { return len([]rune(s)) }

// Point is one (x, y) sample of a figure series.
type Point struct {
	X, Y float64
}

// Series is one named line of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Figure is a rendered experiment figure: series of points, printed as
// aligned columns (the "figure" of a terminal harness) and exportable as
// CSV for external plotting.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	XFmt   string // format verb for X values (default %g)
	YFmt   string // format verb for Y values (default %g)
	Series []Series
	Notes  []string
}

// AddPoint appends a sample to the named series, creating it on first use.
func (f *Figure) AddPoint(series string, x, y float64) {
	for i := range f.Series {
		if f.Series[i].Name == series {
			f.Series[i].Points = append(f.Series[i].Points, Point{X: x, Y: y})
			return
		}
	}
	f.Series = append(f.Series, Series{Name: series, Points: []Point{{X: x, Y: y}}})
}

// fmtOr returns the format or a default.
func fmtOr(f, def string) string {
	if f == "" {
		return def
	}
	return f
}

// Render writes the figure as one aligned column block per series.
func (f *Figure) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "x = %s, y = %s\n", f.XLabel, f.YLabel)
	xf, yf := fmtOr(f.XFmt, "%g"), fmtOr(f.YFmt, "%g")
	for _, s := range f.Series {
		fmt.Fprintf(&b, "-- series %s\n", s.Name)
		for _, p := range s.Points {
			fmt.Fprintf(&b, "   "+xf+"\t"+yf+"\n", p.X, p.Y)
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes long-format rows: series,x,y.
func (f *Figure) CSV(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "series,%s,%s\n", f.XLabel, f.YLabel)
	for _, s := range f.Series {
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%s,%g,%g\n", s.Name, p.X, p.Y)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
