// Package eval implements the evaluation harness: one function per table
// and figure in EXPERIMENTS.md, each assembling scenarios from labnet,
// running them on the deterministic simulator, and returning a rendered
// report. cmd/arpbench and the benchmark suite both drive this package.
package eval

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Artifact is the unified surface of every rendered experiment result.
// Tables and figures both implement it, so writers (aligned text, CSV,
// JSON) are chosen once by the caller — cmd/arpbench's emit path, the
// experiment registry — instead of per concrete type at every call site.
type Artifact interface {
	// ArtifactID returns the display identifier ("Table 3", "Figure 8").
	ArtifactID() string
	// Render writes the human-readable aligned-text form.
	Render(w io.Writer) error
	// CSV writes the machine-readable comma-separated form (RFC 4180
	// quoting: cells containing commas, quotes, or newlines are quoted).
	CSV(w io.Writer) error
	// JSON writes the artifact as one indented JSON document.
	JSON(w io.Writer) error
}

// Table is a rendered experiment table.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends one row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
}

// Render writes an aligned ASCII table. Ragged rows are tolerated: cells
// beyond the column count are emitted unaligned rather than panicking.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	maxWidth := 0
	for i, c := range t.Columns {
		widths[i] = runeLen(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && runeLen(cell) > widths[i] {
				widths[i] = runeLen(cell)
			}
		}
	}
	for _, wd := range widths {
		if wd > maxWidth {
			maxWidth = wd
		}
	}
	// One shared pad buffer; slicing a string is free, so per-cell padding
	// costs no allocation (strings.Repeat per cell dominated the renderer's
	// allocs in BenchmarkTable1PropertyMatrix).
	pad := strings.Repeat(" ", maxWidth)
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				if d := widths[i] - runeLen(cell); d > 0 {
					b.WriteString(pad[:d])
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ArtifactID returns the table's display identifier.
func (t *Table) ArtifactID() string { return t.ID }

// CSV writes the table as RFC-4180 comma-separated values.
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	writeCSVRow(&b, t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// JSON writes the table as one indented JSON document.
func (t *Table) JSON(w io.Writer) error {
	doc := struct {
		ID      string     `json:"id"`
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
		Notes   []string   `json:"notes,omitempty"`
	}{t.ID, t.Title, t.Columns, t.Rows, t.Notes}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// csvField quotes one cell per RFC 4180: cells containing the separator, a
// quote, or a line break are wrapped in quotes with inner quotes doubled.
func csvField(s string) string {
	if !strings.ContainsAny(s, ",\"\r\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// writeCSVRow appends one quoted CSV record.
func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(csvField(c))
	}
	b.WriteByte('\n')
}

// runeLen counts display runes (the coverage symbols are multi-byte).
func runeLen(s string) int { return len([]rune(s)) }

// Point is one (x, y) sample of a figure series.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Series is one named line of a figure.
type Series struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// Figure is a rendered experiment figure: series of points, printed as
// aligned columns (the "figure" of a terminal harness) and exportable as
// CSV for external plotting.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	XFmt   string // format verb for X values (default %g)
	YFmt   string // format verb for Y values (default %g)
	Series []Series
	Notes  []string
}

// AddPoint appends a sample to the named series, creating it on first use.
func (f *Figure) AddPoint(series string, x, y float64) {
	for i := range f.Series {
		if f.Series[i].Name == series {
			f.Series[i].Points = append(f.Series[i].Points, Point{X: x, Y: y})
			return
		}
	}
	f.Series = append(f.Series, Series{Name: series, Points: []Point{{X: x, Y: y}}})
}

// fmtOr returns the format or a default.
func fmtOr(f, def string) string {
	if f == "" {
		return def
	}
	return f
}

// Render writes the figure as one aligned column block per series.
func (f *Figure) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "x = %s, y = %s\n", f.XLabel, f.YLabel)
	xf, yf := fmtOr(f.XFmt, "%g"), fmtOr(f.YFmt, "%g")
	for _, s := range f.Series {
		fmt.Fprintf(&b, "-- series %s\n", s.Name)
		for _, p := range s.Points {
			fmt.Fprintf(&b, "   "+xf+"\t"+yf+"\n", p.X, p.Y)
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ArtifactID returns the figure's display identifier.
func (f *Figure) ArtifactID() string { return f.ID }

// CSV writes long-format RFC-4180 rows: series,x,y.
func (f *Figure) CSV(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "series,%s,%s\n", csvField(f.XLabel), csvField(f.YLabel))
	for _, s := range f.Series {
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%s,%g,%g\n", csvField(s.Name), p.X, p.Y)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// JSON writes the figure as one indented JSON document.
func (f *Figure) JSON(w io.Writer) error {
	doc := struct {
		ID     string   `json:"id"`
		Title  string   `json:"title"`
		XLabel string   `json:"xLabel"`
		YLabel string   `json:"yLabel"`
		Series []Series `json:"series"`
		Notes  []string `json:"notes,omitempty"`
	}{f.ID, f.Title, f.XLabel, f.YLabel, f.Series, f.Notes}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
