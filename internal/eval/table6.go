package eval

import (
	"fmt"
	"time"

	"repro/internal/arppkt"
	"repro/internal/ethaddr"
	"repro/internal/frame"
	"repro/internal/labnet"
	"repro/internal/schemes"
	"repro/internal/schemes/registry"
)

// Table6EvasiveAttacker runs the strongest attacker posture the analysis
// discusses — wait for the genuine owner to go offline, then fully
// impersonate it, answering requests *and* verification probes — against
// each scheme, and reports who gets deceived.
//
// Expected shape (the analysis' inversion): active verification, the
// precision champion of Table 3, is *cleanly evaded* (the probe sees one
// consistent answer), and host middleware commits the forgery for the same
// reason; the passive monitor still flags the binding change it can't
// explain; DAI and the cryptographic schemes remain immune because their
// ground truth is not "who answers on the wire".
func Table6EvasiveAttacker(trials int) *Table {
	t := &Table{
		ID:      "Table 6",
		Title:   fmt.Sprintf("Evasive impersonation (owner offline, attacker answers probes; %d trials)", trials),
		Columns: []string{"scheme", "victim deceived", "attack flagged"},
		Notes: []string{
			"deceived: the victim's traffic for the offline owner's address goes to the attacker",
			"flagged: the scheme raised at least one actionable alert naming the address",
			"active verification is evaded by design here — the blind spot the hybrid inherits",
		},
	}
	evasiveSchemes := []string{
		registry.NameArpwatch,
		registry.NameActiveProbe,
		registry.NameMiddleware,
		registry.NameHybridGuard,
		registry.NameDAI,
		registry.NameSARP,
	}
	for _, scheme := range evasiveSchemes {
		scheme := scheme
		scope := Scope{Experiment: "table6", Params: scheme}
		var deceived, flagged int
		for _, out := range CachedTrials(scope, trials, func(seed int64) [2]bool {
			d, f := runEvasiveTrial(scheme, seed)
			return [2]bool{d, f}
		}) {
			if out[0] {
				deceived++
			}
			if out[1] {
				flagged++
			}
		}
		frac := func(k int) string { return fmt.Sprintf("%d/%d", k, trials) }
		t.AddRow(scheme, frac(deceived), frac(flagged))
	}
	return t
}

// evasiveParams: every scheme runs with its registry defaults (the operator
// seeded the critical gateway binding), except S-ARP, which converts only
// the regular stations — the monitor plays no role in this scenario.
var evasiveParams = map[string]registry.P{
	registry.NameSARP: {"includeMonitor": false},
}

// runEvasiveTrial runs one impersonation scenario under one scheme and
// reports (victim deceived, attack flagged).
func runEvasiveTrial(scheme string, seed int64) (bool, bool) {
	l := newAttackLAN(seed, 6, 0)
	gw, victim := l.Gateway(), l.Victim()
	sink := schemes.NewSink()

	inst, err := registry.Deploy(l.Env(sink, nil), scheme, evasiveParams[scheme])
	if err != nil {
		panic(fmt.Sprintf("eval: deploy %s: %v", scheme, err)) // a bug, not a result
	}

	// Victim establishes the genuine binding (over plain ARP — the secured
	// schemes convert stations after initial provisioning), then the owner
	// goes dark and the attacker assumes the address.
	victim.Resolve(gw.IP(), nil)
	l.Sched.At(10*time.Second, func() {
		gw.NIC().SetUp(false)
		l.Attacker.Impersonate(gw.IP())
		// The takeover announcement (the impersonator must advertise to
		// capture caches before anyone re-asks).
		gratuitous := forgedGratuitous(l)
		l.Attacker.NIC().Send(gratuitous)
	})
	// Past the 60s cache TTL, the victim re-resolves and talks — through
	// the scheme's resolution path when it replaces the protocol.
	l.Sched.At(80*time.Second, func() {
		inst.ResolverFor(victim)(gw.IP(), nil)
	})
	_ = l.Run(2 * time.Minute)

	mac, ok := victim.Cache().Lookup(gw.IP())
	deceived := ok && mac == l.Attacker.MAC()

	flagged := false
	if incs := inst.ActionableIncidents(); inst.IncidentsFn != nil {
		for _, inc := range incs {
			if inc.IP == gw.IP() {
				flagged = true
			}
		}
	} else {
		for _, a := range sink.Alerts() {
			if a.IP == gw.IP() {
				flagged = true
			}
		}
	}
	return deceived, flagged
}

// forgedGratuitous builds the impersonator's takeover broadcast.
func forgedGratuitous(l *labnet.LAN) *frame.Frame {
	p := arppkt.NewGratuitousRequest(l.Attacker.MAC(), l.Gateway().IP())
	return arppkt.ArenaOf(l.Sched).NewFrame(p, l.Attacker.MAC(), ethaddr.BroadcastMAC)
}
