package eval

import (
	"bytes"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunTrialsSeedOrder(t *testing.T) {
	for _, workers := range []int{1, 4} {
		SetParallelism(workers)
		got := RunTrials(17, func(seed int64) int64 { return seed * seed })
		SetParallelism(0)
		if len(got) != 17 {
			t.Fatalf("workers=%d: len = %d", workers, len(got))
		}
		for i, v := range got {
			seed := int64(i) + 1
			if v != seed*seed {
				t.Fatalf("workers=%d: index %d = %d, want %d", workers, i, v, seed*seed)
			}
		}
	}
}

func TestMapIndexAligned(t *testing.T) {
	SetParallelism(8)
	defer SetParallelism(0)
	cfgs := []string{"a", "bb", "ccc", "dddd"}
	got := Map(cfgs, func(s string) int { return len(s) })
	for i, n := range got {
		if n != i+1 {
			t.Fatalf("Map misaligned: %v", got)
		}
	}
}

func TestRunTrialsEmptyAndNegative(t *testing.T) {
	if got := RunTrials(0, func(int64) int { return 1 }); len(got) != 0 {
		t.Fatalf("0 trials returned %v", got)
	}
	if got := RunTrials(-3, func(int64) int { return 1 }); len(got) != 0 {
		t.Fatalf("negative trials returned %v", got)
	}
}

func TestRunTrialsPanicPropagates(t *testing.T) {
	SetParallelism(4)
	defer SetParallelism(0)
	defer func() {
		if r := recover(); r != "trial boom" {
			t.Fatalf("recovered %v, want the trial's panic", r)
		}
	}()
	RunTrials(32, func(seed int64) int {
		if seed == 5 {
			panic("trial boom")
		}
		return 0
	})
	t.Fatal("RunTrials returned instead of panicking")
}

func TestRunTrialsUsesPool(t *testing.T) {
	SetParallelism(4)
	defer SetParallelism(0)
	var peak, cur atomic.Int32
	RunTrials(64, func(int64) int {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return 0
	})
	if peak.Load() > 4 {
		t.Fatalf("concurrency peaked at %d with a 4-worker pool", peak.Load())
	}
	if peak.Load() < 2 {
		t.Fatalf("trials never overlapped (peak %d); pool is not fanning out", peak.Load())
	}
}

// TestParallelOutputByteIdentical is the determinism gate for the parallel
// runner: Table 3 and Figure 4 rendered sequentially and at -parallel 4
// must match byte for byte. It also exercises the worker pool under
// `go test -race ./internal/eval` (part of scripts/check.sh).
func TestParallelOutputByteIdentical(t *testing.T) {
	render := func(workers int) (string, string) {
		SetParallelism(workers)
		defer SetParallelism(0)
		var tb, fb bytes.Buffer
		if err := Table3Detection(4).Render(&tb); err != nil {
			t.Fatal(err)
		}
		if err := Figure4ChurnFalsePositives(1).Render(&fb); err != nil {
			t.Fatal(err)
		}
		return tb.String(), fb.String()
	}
	seqTable, seqFigure := render(1)
	parTable, parFigure := render(4)
	if seqTable != parTable {
		t.Errorf("Table 3 differs between sequential and parallel runs:\n--- sequential\n%s--- parallel\n%s", seqTable, parTable)
	}
	if seqFigure != parFigure {
		t.Errorf("Figure 4 differs between sequential and parallel runs:\n--- sequential\n%s--- parallel\n%s", seqFigure, parFigure)
	}
}

// TestTableRenderRaggedRows pins the writeRow fix: rows with more cells
// than columns must render (unaligned tail) and round-trip to CSV instead
// of panicking on widths[i].
func TestTableRenderRaggedRows(t *testing.T) {
	tbl := &Table{
		ID:      "Table X",
		Title:   "ragged",
		Columns: []string{"a", "b"},
	}
	tbl.AddRow("1", "2", "3", "4") // wider than the header
	tbl.AddRow("only-one")
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"3", "4", "only-one"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("render lost cell %q:\n%s", want, out)
		}
	}
	var csv bytes.Buffer
	if err := tbl.CSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(csv.Bytes(), []byte("1,2,3,4")) {
		t.Fatalf("csv lost ragged cells:\n%s", csv.String())
	}
}

// TestLatencyCellEmptyRendersNA pins the zero-detection guard: a scheme
// with no detection latencies must render n/a, not a quantile of an empty
// slice.
func TestLatencyCellEmptyRendersNA(t *testing.T) {
	if got := latencyCell(nil, 0.5); got != "n/a" {
		t.Fatalf("empty latencies rendered %q, want n/a", got)
	}
	if got := latencyCell([]float64{2.5}, 0.5); got != "2.5ms" {
		t.Fatalf("latency cell = %q, want 2.5ms", got)
	}
	// End to end: an unreachable attack produces a zero-detection trial,
	// the input that used to feed Quantile an empty slice.
	res := runDetectionTrial(detectionTrialConfig{
		scheme:   "active-probe",
		seed:     1,
		hosts:    8,
		churns:   0,
		attackAt: 10 * time.Minute, // beyond the horizon: never detected
		horizon:  30 * time.Second,
	})
	if res.detected {
		t.Fatal("attack past the horizon cannot be detected")
	}
}
