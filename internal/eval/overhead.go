package eval

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"time"

	"repro/internal/ethaddr"
	"repro/internal/frame"
	"repro/internal/labnet"
	"repro/internal/schemes"
	"repro/internal/schemes/registry"
	"repro/internal/stats"
)

// resolutionCost is what one scheme charges per address resolution.
type resolutionCost struct {
	wireBytes float64       // control-plane octets on the wire (ingress)
	latency   time.Duration // request→usable binding
}

// overheadParams: the resolution-cost trials convert only the regular
// stations to the secured protocols (the monitor stays plain, uninvolved),
// probe new stations actively, and leave everything else at defaults.
var overheadParams = map[string]registry.P{
	registry.NameSARP:        {"includeMonitor": false},
	registry.NameTARP:        {"includeMonitor": false},
	registry.NameActiveProbe: {"seedGateway": false, "verifyNewStations": true},
}

// measureResolutions runs `rounds` cold resolutions of the gateway by the
// victim under one scheme and returns the mean per-resolution cost.
func measureResolutions(scheme string, rounds int) resolutionCost {
	l := labnet.New(labnet.Config{Hosts: 4, WithAttacker: false, WithMonitor: true})
	gw, victim := l.Gateway(), l.Victim()
	sink := schemes.NewSink()

	schemeResolve := victim.Resolve
	if scheme != "plain-arp" {
		inst, err := registry.Deploy(l.Env(sink, nil), scheme, overheadParams[scheme])
		if err != nil {
			panic(fmt.Sprintf("eval: deploy %s: %v", scheme, err)) // a bug, not a result
		}
		schemeResolve = inst.ResolverFor(victim)
	}

	controlBytes := func() float64 {
		st := l.Switch.Stats()
		return float64(st.BytesByType[frame.TypeARP] +
			st.BytesByType[frame.TypeSARP] + st.BytesByType[frame.TypeTARP])
	}

	var latencies []float64
	resolve := func(done func()) {
		start := l.Sched.Now()
		cb := func(_ ethaddr.MAC, ok bool) {
			if ok {
				latencies = append(latencies, float64(l.Sched.Now()-start))
			}
			done()
		}
		schemeResolve(gw.IP(), cb)
	}

	before := controlBytes()
	var loop func(i int)
	loop = func(i int) {
		if i >= rounds {
			return
		}
		resolve(func() {
			// Cold next round: drop the binding, wait for quiet.
			victim.Cache().Delete(gw.IP())
			l.Sched.After(2*time.Second, func() { loop(i + 1) })
		})
	}
	loop(0)
	_ = l.Run(time.Duration(rounds+2) * 5 * time.Second)

	cost := resolutionCost{}
	if n := len(latencies); n > 0 {
		cost.wireBytes = (controlBytes() - before) / float64(n)
		cost.latency = time.Duration(stats.Mean(latencies))
	}
	return cost
}

// CryptoCosts are host-CPU measurements of the real signature operations
// the protocol-replacing schemes perform.
type CryptoCosts struct {
	SignPerOp   time.Duration
	VerifyPerOp time.Duration
}

// MeasureCryptoCosts times genuine ECDSA P-256 signing and verification on
// this machine (the figures the paper-era prototypes report for DSA are
// orders of magnitude larger; the comparison column documents today's
// cost).
func MeasureCryptoCosts(iters int) (CryptoCosts, error) {
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return CryptoCosts{}, fmt.Errorf("generate key: %w", err)
	}
	digest := sha256.Sum256([]byte("arp reply payload"))

	sig, err := ecdsa.SignASN1(rand.Reader, priv, digest[:])
	if err != nil {
		return CryptoCosts{}, fmt.Errorf("sign: %w", err)
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := ecdsa.SignASN1(rand.Reader, priv, digest[:]); err != nil {
			return CryptoCosts{}, fmt.Errorf("sign: %w", err)
		}
	}
	signPer := time.Since(start) / time.Duration(iters)

	start = time.Now()
	for i := 0; i < iters; i++ {
		if !ecdsa.VerifyASN1(&priv.PublicKey, digest[:], sig) {
			return CryptoCosts{}, fmt.Errorf("verification failed")
		}
	}
	verifyPer := time.Since(start) / time.Duration(iters)
	return CryptoCosts{SignPerOp: signPer, VerifyPerOp: verifyPer}, nil
}

// Table4Overhead measures the per-resolution cost of each resolution
// scheme: wire bytes, end-to-end latency, and (for the crypto schemes) the
// measured CPU cost of their signature operations.
//
// Expected shape: plain < tarp < s-arp on compute; middleware pays its
// verification window in latency but stays near plain in bytes; crypto
// schemes pay per-message size.
func Table4Overhead(rounds int) (*Table, error) {
	crypto, err := MeasureCryptoCosts(50)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "Table 4",
		Title:   fmt.Sprintf("Per-resolution overhead (mean over %d cold resolutions, 4-host LAN)", rounds),
		Columns: []string{"scheme", "wire bytes/resolution", "latency", "sender CPU/op", "receiver CPU/op"},
		Notes: []string{
			fmt.Sprintf("CPU figures measured on this machine: ECDSA P-256 sign %v, verify %v", crypto.SignPerOp, crypto.VerifyPerOp),
			"latency includes the schemes' modelled processing delays; middleware includes its quarantine window",
		},
	}
	schemesUnderTest := []struct {
		name              string
		senderCPU, rcvCPU string
	}{
		{"plain-arp", "~0", "~0"},
		{"middleware", "~0", "~0"},
		{"active-probe", "~0", "~0"},
		{"tarp", "~0 (ticket reuse)", crypto.VerifyPerOp.String()},
		{"s-arp", crypto.SignPerOp.String(), crypto.VerifyPerOp.String()},
	}
	names := make([]string, len(schemesUnderTest))
	for i, s := range schemesUnderTest {
		names[i] = s.name
	}
	scope := Scope{Experiment: "table4", Params: fmt.Sprintf("rounds=%d", rounds)}
	costs := CachedMap(scope, names, func(name string) resolutionCost {
		return measureResolutions(name, rounds)
	})
	for i, s := range schemesUnderTest {
		t.AddRow(s.name,
			fmt.Sprintf("%.0f", costs[i].wireBytes),
			costs[i].latency.Round(time.Microsecond).String(),
			s.senderCPU, s.rcvCPU,
		)
	}
	return t, nil
}

// Figure3Scaling measures steady-state control-plane load (egress octets
// per second, all ARP-family EtherTypes) against LAN size for each
// resolution scheme under a uniform re-resolution workload.
//
// Expected shape: every scheme grows superlinearly with n (broadcast
// requests replicate to n−1 ports); the crypto schemes sit a constant
// factor higher from message size; middleware adds its probe traffic.
func Figure3Scaling(sizes []int, horizon time.Duration) *Figure {
	f := &Figure{
		ID:     "Figure 3",
		Title:  "Control-plane load vs LAN size (each host re-resolves a peer every 10s, 8s cache TTL)",
		XLabel: "hosts",
		YLabel: "control_bytes_per_sec",
		XFmt:   "%.0f",
		YFmt:   "%.0f",
	}
	type cell struct {
		scheme string
		n      int
	}
	var cells []cell
	for _, scheme := range []string{"plain-arp", "middleware", "s-arp", "tarp"} {
		for _, n := range sizes {
			cells = append(cells, cell{scheme, n})
		}
	}
	scope := Scope{Experiment: "figure3", Params: fmt.Sprintf("horizon=%v", horizon)}
	loads := CachedMap(scope, cells, func(c cell) float64 {
		return measureScalingPoint(c.scheme, c.n, horizon)
	})
	for i, c := range cells {
		f.AddPoint(c.scheme, float64(c.n), loads[i])
	}
	return f
}

// measureScalingPoint runs one (scheme, size) cell and returns egress
// control bytes per second.
func measureScalingPoint(scheme string, n int, horizon time.Duration) float64 {
	l := labnet.New(labnet.Config{
		Hosts:        n,
		WithAttacker: false,
		WithMonitor:  false,
		CacheTTL:     8 * time.Second,
	})
	sink := schemes.NewSink()

	// Every station runs the scheme here — scaling is the whole question.
	inst := &registry.Instance{}
	if scheme != "plain-arp" {
		params := registry.P{}
		if scheme == registry.NameMiddleware {
			params["scope"] = "all"
		}
		var err error
		inst, err = registry.Deploy(l.Env(sink, nil), scheme, params)
		if err != nil {
			panic(fmt.Sprintf("eval: deploy %s: %v", scheme, err)) // a bug, not a result
		}
	}

	// Workload: host i re-resolves host (i+1) mod n every 10s; the 8s TTL
	// guarantees each attempt is cold.
	for i, h := range l.Hosts {
		h := h
		peer := l.Hosts[(i+1)%n]
		resolve := inst.ResolverFor(h)
		l.Sched.Every(10*time.Second, func() {
			resolve(peer.IP(), nil)
		})
	}
	_ = l.Run(horizon)

	st := l.Switch.Stats()
	total := st.BytesOutByType[frame.TypeARP] +
		st.BytesOutByType[frame.TypeSARP] + st.BytesOutByType[frame.TypeTARP]
	return float64(total) / horizon.Seconds()
}
