package eval

import (
	"fmt"
	"time"

	"repro/internal/ethaddr"
	"repro/internal/labnet"
	"repro/internal/netsim"
	"repro/internal/schemes"
	"repro/internal/schemes/registry"
	_ "repro/internal/schemes/registry/all" // link every scheme factory
	"repro/internal/stack"
	"repro/internal/stats"
)

// DetectionSchemes lists the detection deployments Table 3 and Figure 1
// compare.
func DetectionSchemes() []string {
	return []string{
		registry.NameArpwatch,
		registry.NameSnortLike,
		registry.NameActiveProbe,
		registry.NameMiddleware,
		registry.NameHybridGuard,
	}
}

// trialResult is one detection trial's outcome.
type trialResult struct {
	detected   bool
	latency    time.Duration // first attack alert − attack start
	fpAlerts   int           // alerts attributable to benign churn
	churns     int
	alerts     int // alerts delivered to the (outer) sink
	suppressed int // alerts the stack correlator collapsed (stack trials)
}

// detectionTrialConfig parameterizes one trial.
type detectionTrialConfig struct {
	scheme   string
	stack    registry.Stack // non-empty: deploy a stack instead of scheme
	seed     int64
	hosts    int
	churns   int           // benign readdressing events before/after attack
	attackAt time.Duration // MITM start
	horizon  time.Duration
}

// runDetectionTrial runs one seeded scenario: benign churn plus a periodic
// gateway-poisoning MITM, one detection scheme deployed, and returns what
// the scheme reported.
func runDetectionTrial(cfg detectionTrialConfig) trialResult {
	l := newAttackLAN(cfg.seed, cfg.hosts, 200*time.Microsecond)
	defer l.Recycle()
	sink := schemes.NewSink()
	gw, victim := l.Gateway(), l.Victim()
	// Randomize the attack's phase relative to probe windows and refresh
	// timers so latency distributions have genuine spread.
	attackAt := cfg.attackAt + time.Duration(l.Sched.Rand().Int63n(int64(5*time.Second)))
	if cfg.attackAt > cfg.horizon { // churn-only trials keep "never"
		attackAt = cfg.attackAt
	}

	var si *registry.StackInstance
	if len(cfg.stack.Schemes) > 0 {
		var err error
		if si, err = registry.DeployStack(l.Env(sink, nil), cfg.stack); err != nil {
			panic(fmt.Sprintf("eval: stack rejected: %v", err)) // a bug, not a result
		}
	} else {
		deployDetectionScheme(l, sink, cfg.scheme)
	}

	warmAttackLAN(l)

	// Benign churn: replacement stations take over existing addresses at
	// seeded random instants. Targets are distinct — two replacements
	// claiming one IP would be a genuine conflict, not benign churn.
	churned := make(map[ethaddr.IPv4]bool)
	churnable := append([]*stack.Host(nil), l.Hosts[2:]...) // never the gateway or the victim
	l.Sched.Rand().Shuffle(len(churnable), func(i, j int) {
		churnable[i], churnable[j] = churnable[j], churnable[i]
	})
	churns := cfg.churns
	if churns > len(churnable) {
		churns = len(churnable)
	}
	for i := 0; i < churns; i++ {
		// Churn starts after the cache-seeding transient: a replacement
		// arriving mid-resolution would race the departing host's own
		// replies, which is a conflict, not clean churn.
		at := 10*time.Second + time.Duration(l.Sched.Rand().Int63n(int64(cfg.horizon-20*time.Second)))
		target := churnable[i]
		l.Sched.At(at, func() {
			replaceStation(l, target)
			churned[target.IP()] = true
		})
	}

	launchGatewayMITM(l, attackAt)

	_ = l.Run(cfg.horizon)

	res := trialResult{churns: churns, alerts: sink.Len()}
	if si != nil {
		res.suppressed = si.Correlation().Suppressed
	}
	for _, a := range sink.Alerts() {
		switch {
		case (a.IP == gw.IP() || a.IP == victim.IP()) && a.At >= attackAt:
			if !res.detected {
				res.detected = true
				res.latency = a.At - attackAt
			}
		case churned[a.IP]:
			res.fpAlerts++
		}
	}
	return res
}

// detectionParams holds the per-scheme overrides these trials apply over
// the registry defaults: the comparison deploys every scheme cold — no
// operator-seeded bindings — except snort-like, whose configured signatures
// (gateway + victim, its defaults) are the precondition for any coverage.
var detectionParams = map[string]registry.P{
	registry.NameArpwatch:    {"seedGateway": false},
	registry.NameActiveProbe: {"seedGateway": false},
	registry.NameHybridGuard: {"seedGateway": false},
}

// deployDetectionScheme installs one of the compared detection deployments
// on an assembled LAN, reporting into sink. Shared by the Table 3/Figure 1/
// Figure 4 trials and the fault-intensity experiments (Table 8, Figure 8).
func deployDetectionScheme(l *labnet.LAN, sink *schemes.Sink, scheme string) {
	if _, err := registry.Deploy(l.Env(sink, nil), scheme, detectionParams[scheme]); err != nil {
		panic(fmt.Sprintf("eval: deploy %s: %v", scheme, err)) // a bug, not a result
	}
}

// replaceStation swaps a host for a new station with the same IP but a new
// MAC — the observable effect of a device swap or DHCP reassignment.
func replaceStation(l *labnet.LAN, old *stack.Host) {
	old.NIC().SetUp(false)
	nic := netsim.NewNIC(l.Sched, l.Gen.SeqMAC())
	l.Switch.AddPort().Attach(nic)
	replacement := stack.NewHost(l.Sched, old.Name()+"-new", nic, old.IP())
	replacement.SendGratuitous()
}

// Table3Detection measures detection quality per scheme over `trials`
// seeded scenarios: true-positive rate, false positives per churn event,
// and detection-latency quantiles.
//
// Expected shape: arpwatch detects (the binding was known) but pays ~1 FP
// per churn event; the probing schemes keep FPs near zero; middleware and
// the hybrid guard detect with probe-window latency.
func Table3Detection(trials int) *Table {
	t := &Table{
		ID:      "Table 3",
		Title:   fmt.Sprintf("Detection quality under churn + MITM (%d trials, 8 hosts, 4 churn events)", trials),
		Columns: []string{"scheme", "TPR", "FP/churn", "latency p50", "latency p95"},
		Notes: []string{
			"TPR: trials with ≥1 alert naming the attacked binding after attack start",
			"FP/churn: alerts naming benignly readdressed IPs, per churn event",
		},
	}
	// One flat (scheme × seed) grid keeps the pool saturated even when
	// trials < workers; each scheme aggregates its own slice segment.
	var cfgs []detectionTrialConfig
	for _, scheme := range DetectionSchemes() {
		for seed := int64(1); seed <= int64(trials); seed++ {
			cfgs = append(cfgs, detectionTrialConfig{
				scheme:   scheme,
				seed:     seed,
				hosts:    8,
				churns:   4,
				attackAt: 60 * time.Second,
				horizon:  120 * time.Second,
			})
		}
	}
	results := CachedMap(Scope{Experiment: "table3"}, cfgs, runDetectionTrial)
	for si, scheme := range DetectionSchemes() {
		var detected, fps, churns int
		var latencies []float64
		for _, res := range results[si*trials : (si+1)*trials] {
			if res.detected {
				detected++
				latencies = append(latencies, res.latency.Seconds()*1000)
			}
			fps += res.fpAlerts
			churns += res.churns
		}
		tpr := stats.NewProportion(detected, trials)
		fpPerChurn := 0.0
		if churns > 0 {
			fpPerChurn = float64(fps) / float64(churns)
		}
		t.AddRow(scheme,
			fmt.Sprintf("%.2f", tpr.P),
			fmt.Sprintf("%.2f", fpPerChurn),
			latencyCell(latencies, 0.5),
			latencyCell(latencies, 0.95),
		)
	}
	return t
}

// latencyCell renders one latency-quantile cell. A scheme that never
// detected has no latency distribution; it gets n/a rather than a quantile
// of nothing.
func latencyCell(latencies []float64, q float64) string {
	if len(latencies) == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1fms", stats.Quantile(latencies, q))
}

// Figure1LatencyCDF collects detection latencies per scheme across trials
// and renders their empirical CDFs.
func Figure1LatencyCDF(trials int) *Figure {
	f := &Figure{
		ID:     "Figure 1",
		Title:  fmt.Sprintf("Detection latency CDF per scheme (%d trials)", trials),
		XLabel: "latency_ms",
		YLabel: "P(latency ≤ x)",
		XFmt:   "%.2f",
		YFmt:   "%.3f",
	}
	var cfgs []detectionTrialConfig
	for _, scheme := range DetectionSchemes() {
		for seed := int64(1); seed <= int64(trials); seed++ {
			cfgs = append(cfgs, detectionTrialConfig{
				scheme:   scheme,
				seed:     seed + 1000, // distinct seed space from Table 3
				hosts:    8,
				churns:   2,
				attackAt: 60 * time.Second,
				horizon:  120 * time.Second,
			})
		}
	}
	results := CachedMap(Scope{Experiment: "figure1"}, cfgs, runDetectionTrial)
	for si, scheme := range DetectionSchemes() {
		var latencies []float64
		for _, res := range results[si*trials : (si+1)*trials] {
			if res.detected {
				latencies = append(latencies, res.latency.Seconds()*1000)
			}
		}
		for _, pt := range stats.CDF(latencies) {
			f.AddPoint(scheme, pt.X, pt.P)
		}
	}
	return f
}

// Figure4ChurnFalsePositives sweeps the benign churn rate and reports false
// positives per hour for the passive monitor versus the verifying schemes.
//
// Expected shape: arpwatch FPs grow linearly with churn; active-probe and
// the hybrid guard stay flat near zero because the new owner confirms its
// own binding.
func Figure4ChurnFalsePositives(trialsPerPoint int) *Figure {
	f := &Figure{
		ID:     "Figure 4",
		Title:  "False positives vs binding churn rate (no attack present)",
		XLabel: "churn_events_per_hour",
		YLabel: "false_alerts_per_hour",
		XFmt:   "%.0f",
		YFmt:   "%.2f",
	}
	horizon := 10 * time.Minute
	schemesSwept := []string{"arpwatch", "active-probe", "hybrid-guard"}
	churnRates := []int{0, 1, 2, 4, 8, 16}
	var cfgs []detectionTrialConfig
	for _, scheme := range schemesSwept {
		for _, churnsPerRun := range churnRates {
			hosts := churnsPerRun + 4
			if hosts < 8 {
				hosts = 8
			}
			for seed := int64(1); seed <= int64(trialsPerPoint); seed++ {
				cfgs = append(cfgs, detectionTrialConfig{
					scheme:   scheme,
					seed:     seed + 5000,
					hosts:    hosts,
					churns:   churnsPerRun,
					attackAt: horizon + time.Hour, // never: churn only
					horizon:  horizon,
				})
			}
		}
	}
	results := CachedMap(Scope{Experiment: "figure4"}, cfgs, runDetectionTrial)
	cell := 0
	for _, scheme := range schemesSwept {
		for _, churnsPerRun := range churnRates {
			totalFPs := 0
			for _, res := range results[cell*trialsPerPoint : (cell+1)*trialsPerPoint] {
				totalFPs += res.fpAlerts
			}
			cell++
			perHourChurn := float64(churnsPerRun) / horizon.Hours()
			perHourFP := float64(totalFPs) / float64(trialsPerPoint) / horizon.Hours()
			f.AddPoint(scheme, perHourChurn, perHourFP)
		}
	}
	return f
}
