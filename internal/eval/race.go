package eval

import (
	"fmt"
	"time"

	"repro/internal/stack"
	"repro/internal/stats"
)

// Figure2RaceWindow sweeps the attacker's reaction delay in a reply race
// against a genuine owner 2ms away (both links with 1ms uniform jitter)
// and plots the poisoning success probability, for the naive and the
// solicited-only cache policies.
//
// Expected shape: against the solicited-only patched cache (first answer
// wins) a sigmoid falling from ≈1 through the crossover near the owner's
// latency advantage to ≈0; against the naive cache (last unsolicited
// writer wins) a flat line at ≈1 because the racer's trailing shot always
// lands after the genuine reply. Together they are the analysis' key
// argument: the kernel patch narrows the window but cannot close it.
func Figure2RaceWindow(trialsPerPoint int) *Figure {
	f := &Figure{
		ID:     "Figure 2",
		Title:  fmt.Sprintf("Reply-race success vs attacker delay (owner +2ms each way, 1ms jitter, %d trials/point)", trialsPerPoint),
		XLabel: "attacker_delay_ms",
		YLabel: "poisoning_probability",
		XFmt:   "%.1f",
		YFmt:   "%.3f",
	}
	policies := []struct {
		name   string
		policy stack.Policy
	}{
		{"naive", stack.PolicyNaive},
		{"solicited-only", stack.PolicySolicitedOnly},
	}
	const ownerExtra = 2 * time.Millisecond
	const jitter = time.Millisecond
	for _, p := range policies {
		for delayMS := 0.0; delayMS <= 5.0; delayMS += 0.5 {
			delay := time.Duration(delayMS * float64(time.Millisecond))
			scope := Scope{Experiment: "figure2", Params: fmt.Sprintf(
				"policy=%s established=false delay=%v extra=%v jitter=%v",
				p.name, delay, ownerExtra, jitter)}
			wins := runRaceTrial(scope, p.policy, false, trialsPerPoint, delay, ownerExtra, jitter)
			prob := stats.NewProportion(wins, trialsPerPoint)
			f.AddPoint(p.name, delayMS, prob.P)
		}
	}
	f.Notes = append(f.Notes,
		"naive stays at ≈1 at every delay (last unsolicited writer wins); solicited-only is the sigmoid")
	return f
}
