package eval

import (
	"bytes"
	"sync/atomic"
	"testing"

	"repro/internal/telemetry"
)

// TestCachedTrialsWarmRunsZeroTrials is the cache's core contract: an
// unchanged experiment re-runs entirely from cache, executing zero trials.
func TestCachedTrialsWarmRunsZeroTrials(t *testing.T) {
	tel := telemetry.New()
	EnableResultCache(tel)
	defer DisableResultCache()

	var calls atomic.Int64
	sc := Scope{Experiment: "testexp", Params: "knob=1"}
	trial := func(seed int64) int64 {
		calls.Add(1)
		return seed * 10
	}

	cold := CachedTrials(sc, 4, trial)
	if got := calls.Load(); got != 4 {
		t.Fatalf("cold run executed %d trials, want 4", got)
	}
	warm := CachedTrials(sc, 4, trial)
	if got := calls.Load(); got != 4 {
		t.Fatalf("warm run executed %d new trials, want 0", got-4)
	}
	for i := range cold {
		if cold[i] != warm[i] {
			t.Fatalf("warm[%d] = %d, want %d", i, warm[i], cold[i])
		}
	}

	hits, misses := ResultCacheStats()
	if hits != 4 || misses != 4 {
		t.Fatalf("stats = %d hits, %d misses; want 4, 4", hits, misses)
	}
	label := telemetry.L("experiment", "testexp")
	if v := tel.CounterValue(MetricCacheHits, label); v != 4 {
		t.Fatalf("telemetry hits = %d, want 4", v)
	}
	if v := tel.CounterValue(MetricCacheMisses, label); v != 4 {
		t.Fatalf("telemetry misses = %d, want 4", v)
	}
}

// TestCachedTrialsGrowReusesSeeds: raising the trial count re-runs only the
// new seeds, because the trial count is not part of the scope.
func TestCachedTrialsGrowReusesSeeds(t *testing.T) {
	EnableResultCache(nil)
	defer DisableResultCache()

	var calls atomic.Int64
	sc := Scope{Experiment: "testexp-grow"}
	trial := func(seed int64) int64 {
		calls.Add(1)
		return seed
	}
	CachedTrials(sc, 3, trial)
	out := CachedTrials(sc, 5, trial)
	if got := calls.Load(); got != 5 {
		t.Fatalf("executed %d trials total, want 5 (3 cold + 2 new)", got)
	}
	for i, v := range out {
		if v != int64(i)+1 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i+1)
		}
	}
}

// TestCachedMapScopesByParams: changing the scope params invalidates every
// cell; an identical scope reuses all of them.
func TestCachedMapScopesByParams(t *testing.T) {
	EnableResultCache(nil)
	defer DisableResultCache()

	var calls atomic.Int64
	run := func(c int) int { calls.Add(1); return c * c }
	cfgs := []int{1, 2, 3}

	CachedMap(Scope{Experiment: "testexp-map", Params: "h=1"}, cfgs, run)
	CachedMap(Scope{Experiment: "testexp-map", Params: "h=1"}, cfgs, run)
	if got := calls.Load(); got != 3 {
		t.Fatalf("same-scope rerun executed %d trials, want 3", got)
	}
	CachedMap(Scope{Experiment: "testexp-map", Params: "h=2"}, cfgs, run)
	if got := calls.Load(); got != 6 {
		t.Fatalf("changed-scope run executed %d trials total, want 6", got)
	}
}

// TestCacheDisabledPassesThrough: with no cache enabled the cached runners
// are exactly RunTrials/Map and the stats read zero.
func TestCacheDisabledPassesThrough(t *testing.T) {
	DisableResultCache()
	var calls atomic.Int64
	sc := Scope{Experiment: "testexp-off"}
	CachedTrials(sc, 2, func(seed int64) int64 { calls.Add(1); return seed })
	CachedTrials(sc, 2, func(seed int64) int64 { calls.Add(1); return seed })
	if got := calls.Load(); got != 4 {
		t.Fatalf("disabled cache executed %d trials, want 4", got)
	}
	if h, m := ResultCacheStats(); h != 0 || m != 0 {
		t.Fatalf("disabled cache stats = %d, %d; want 0, 0", h, m)
	}
}

// TestWarmCacheRerenderByteIdenticalZeroTrials re-renders a full experiment
// against a warm cache and asserts both halves of the acceptance criterion:
// the rendered artifact is byte-identical and zero new trials ran (no new
// cache misses in the telemetry counters).
func TestWarmCacheRerenderByteIdenticalZeroTrials(t *testing.T) {
	tel := telemetry.New()
	EnableResultCache(tel)
	defer DisableResultCache()

	render := func() string {
		var buf bytes.Buffer
		if err := Table7PortStealing(1).Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	cold := render()
	_, coldMisses := ResultCacheStats()
	if coldMisses == 0 {
		t.Fatal("cold render recorded no cache misses; cache not engaged")
	}
	warm := render()
	if warm != cold {
		t.Fatalf("warm re-render differs:\n--- cold ---\n%s--- warm ---\n%s", cold, warm)
	}
	_, warmMisses := ResultCacheStats()
	if warmMisses != coldMisses {
		t.Fatalf("warm re-render ran %d new trials, want 0", warmMisses-coldMisses)
	}
	if v := tel.CounterValue(MetricCacheMisses, telemetry.L("experiment", "table7")); v != coldMisses {
		t.Fatalf("telemetry misses = %d, want %d", v, coldMisses)
	}
}
