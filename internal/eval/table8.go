package eval

import (
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/schemes"
	"repro/internal/stats"
)

// faultTrialConfig parameterizes one fault-intensity detection trial.
type faultTrialConfig struct {
	scheme    string
	seed      int64
	intensity float64 // 0 = clean network, 1 = heavily degraded
	hosts     int
	attackAt  time.Duration
	horizon   time.Duration
}

// faultTrialResult is one trial's outcome under injected faults.
type faultTrialResult struct {
	detected bool
	latency  time.Duration
	fpAlerts int // alerts not attributable to the attack
}

// faultPlanForIntensity scales a composite fault plan by intensity x ∈ [0,1]:
// a Gilbert-Elliott burst-loss channel on every link (≈26% long-run loss at
// x=1), bounded reordering and duplication, plus two discrete events timed
// to land during the attack — a bystander link flap and a bystander host
// churn — the outage-and-reboot noise that tempts verifying schemes into
// false alarms. x=0 returns nil: the clean baseline runs with no plan at all.
func faultPlanForIntensity(x float64, attackAt time.Duration) *faults.Plan {
	if x <= 0 {
		return nil
	}
	atk := attackAt.Seconds()
	return &faults.Plan{Events: []faults.Event{
		{Type: faults.TypeGilbertElliott, PGoodBad: 0.12 * x, PBadGood: 0.25, LossBad: 0.8},
		{Type: faults.TypeReorder, Prob: 0.1 * x, MaxDelayMillis: 2},
		{Type: faults.TypeDuplicate, Prob: 0.05 * x},
		// Host 3's link flaps and host 4 power-cycles while the MITM is
		// live; neither is the gateway or the victim, so any alert they
		// draw is a false positive.
		{Type: faults.TypeLinkFlap, AtSeconds: atk + 5, DurationSeconds: 10, Link: intPtr(3)},
		{Type: faults.TypeHostChurn, AtSeconds: atk + 15, DurationSeconds: 3, Host: intPtr(4)},
	}}
}

func intPtr(i int) *int { return &i }

// runFaultTrial runs one seeded scenario: a composite fault plan at the
// configured intensity, one detection scheme deployed, and the standard
// periodic gateway-poisoning MITM. Alerts naming the attacked binding after
// attack start count as detection; every other alert is a false positive —
// under faults there is no benign-churn bookkeeping to excuse them.
func runFaultTrial(cfg faultTrialConfig) faultTrialResult {
	l := newAttackLAN(cfg.seed, cfg.hosts, 200*time.Microsecond)
	defer l.Recycle()
	sink := schemes.NewSink()
	gw, victim := l.Gateway(), l.Victim()
	attackAt := cfg.attackAt + time.Duration(l.Sched.Rand().Int63n(int64(5*time.Second)))

	deployDetectionScheme(l, sink, cfg.scheme)

	warmAttackLAN(l)

	if plan := faultPlanForIntensity(cfg.intensity, attackAt); plan != nil {
		if _, err := faults.Apply(plan, l.FaultEnv()); err != nil {
			panic(fmt.Sprintf("eval: fault plan rejected: %v", err)) // a bug, not a result
		}
	}

	launchGatewayMITM(l, attackAt)

	_ = l.Run(cfg.horizon)

	var res faultTrialResult
	for _, a := range sink.Alerts() {
		if (a.IP == gw.IP() || a.IP == victim.IP()) && a.At >= attackAt {
			if !res.detected {
				res.detected = true
				res.latency = a.At - attackAt
			}
			continue
		}
		res.fpAlerts++
	}
	return res
}

// faultIntensities is the sweep shared by Table 8 (coarse) and Figure 8
// (fine). Table 8 reports the endpoints and midpoint.
var table8Intensities = []float64{0, 0.5, 1.0}

// Table8FaultRobustness measures how each detection scheme degrades as the
// network itself degrades: detection coverage, false alerts per trial, and
// median time-to-detect at increasing fault intensity.
//
// Expected shape (the survey's robustness argument): passive single-sighting
// schemes (arpwatch, snort-like) keep coverage under loss — poisoning is
// periodic, so a later round is eventually seen — but their time-to-detect
// stretches. Probe-verified schemes (active-probe, hybrid-guard) additionally
// start paying false positives, because a flapped link or a mid-reboot host
// cannot answer the verification probe and looks exactly like a spoofed
// binding.
func Table8FaultRobustness(trials int) *Table {
	t := &Table{
		ID: "Table 8",
		Title: fmt.Sprintf(
			"Detection robustness under injected faults (%d trials, 8 hosts, composite fault plan)", trials),
		Columns: []string{"scheme", "intensity", "TPR", "FP/trial", "time-to-detect p50"},
		Notes: []string{
			"intensity scales burst loss (≈26% at 1.0), reordering, duplication; flap+churn land mid-attack",
			"FP/trial: alerts naming anything but the attacked binding",
		},
	}
	var cfgs []faultTrialConfig
	for _, scheme := range DetectionSchemes() {
		for _, x := range table8Intensities {
			for seed := int64(1); seed <= int64(trials); seed++ {
				cfgs = append(cfgs, faultTrialConfig{
					scheme:    scheme,
					seed:      seed + 8000, // distinct seed space from Tables 3/7
					intensity: x,
					hosts:     8,
					attackAt:  60 * time.Second,
					horizon:   120 * time.Second,
				})
			}
		}
	}
	results := CachedMap(Scope{Experiment: "table8"}, cfgs, runFaultTrial)
	cell := 0
	for _, scheme := range DetectionSchemes() {
		for _, x := range table8Intensities {
			var detected, fps int
			var latencies []float64
			for _, res := range results[cell*trials : (cell+1)*trials] {
				if res.detected {
					detected++
					latencies = append(latencies, res.latency.Seconds()*1000)
				}
				fps += res.fpAlerts
			}
			cell++
			t.AddRow(scheme,
				fmt.Sprintf("%.2f", x),
				fmt.Sprintf("%.2f", stats.NewProportion(detected, trials).P),
				fmt.Sprintf("%.2f", float64(fps)/float64(trials)),
				latencyCell(latencies, 0.5),
			)
		}
	}
	return t
}
