package eval

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// figure10Small renders a scaled-down Figure 10 (still multi-LAN, still
// partitioning the backbone) at a given shard worker width.
func figure10Small(workers int) Artifact {
	return Figure10FaultedCampus([]int{100, 1000}, 2, workers, 30*time.Second)
}

// TestFigure10RendersAllDeployments: every compared deployment — the five
// detection schemes and the Table 9 stack — produces a series at every
// requested population.
func TestFigure10RendersAllDeployments(t *testing.T) {
	f := Figure10FaultedCampus([]int{100, 1000}, 1, 1, 30*time.Second)
	var buf bytes.Buffer
	if err := f.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := append([]string{"dai+arpwatch+port-security", "100", "1000"}, DetectionSchemes()...)
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Fatalf("rendered figure missing %q:\n%s", w, out)
		}
	}
}

// TestFigure10TrialSurvivesTheFaultPlan: a single trial demonstrably runs
// the adversity script — faults inject, the backbone partition bites — and
// the per-LAN deployment still catches the LAN-0 MITM from inside the
// isolated segment.
func TestFigure10TrialSurvivesTheFaultPlan(t *testing.T) {
	res := runFigure10Trial(figure10TrialConfig{
		scheme: "arpwatch", size: 500, seed: 1, workers: 1, horizon: 30 * time.Second,
	})
	if res.faults == 0 {
		t.Fatal("fault plan injected nothing")
	}
	if !res.detected {
		t.Fatal("faulted campus MITM went undetected")
	}
	if res.latency <= 0 || res.latency > 15*time.Second {
		t.Fatalf("implausible detection latency %v", res.latency)
	}
	if res.hosts < 500 {
		t.Fatalf("campus undersized: %d hosts", res.hosts)
	}
}

// TestFigure10StackDeploysAtScale: the defense-in-depth deployment — with
// its construction-time members — assembles and detects on a campus too.
func TestFigure10StackDeploysAtScale(t *testing.T) {
	res := runFigure10Trial(figure10TrialConfig{
		stack: table9Stacks()[0], size: 500, seed: 1, workers: 1, horizon: 30 * time.Second,
	})
	if !res.detected {
		t.Fatal("stacked campus MITM went undetected")
	}
	if res.faults == 0 {
		t.Fatal("fault plan injected nothing")
	}
}

// TestFigure10ByteIdenticalAcrossWidths is the cross-shard determinism
// contract for the faulted sweep: rendered output is byte-identical across
// both the trial pool width (CachedMap parallelism) and the shard worker
// width, fault plan and all.
func TestFigure10ByteIdenticalAcrossWidths(t *testing.T) {
	assertByteIdenticalAcrossWidths(t, func() Artifact { return figure10Small(1) })
	ref := renderAtWidth(t, 1, func() Artifact { return figure10Small(1) })
	for _, w := range []int{2, 8} {
		w := w
		if got := renderAtWidth(t, 1, func() Artifact { return figure10Small(w) }); got != ref {
			t.Fatalf("output differs at shard workers=%d:\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
				w, ref, w, got)
		}
	}
}
