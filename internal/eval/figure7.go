package eval

import (
	"fmt"
	"time"

	"repro/internal/attack"
	"repro/internal/labnet"
	"repro/internal/stack"
)

// Figure7DefenseWar sweeps the attacker's re-poisoning period against a
// gateway running RFC 5227 address defense and plots the fraction of time
// the victim's cache stays poisoned — the duty-cycle war the
// address-defense matrix row describes. An undefended baseline pins the
// top of the plot.
//
// Expected shape: undefended, one poison pushes the fraction to ≈1 at any
// period. Defended, each broadcast forgery is answered by a reassertion,
// so the poisoned fraction falls as the attacker slows: at periods longer
// than the defense's rate limit the victim is clean almost always, while
// a fast attacker (period ≪ limit) still owns most of the timeline.
func Figure7DefenseWar(samplesPerCell int) *Figure {
	f := &Figure{
		ID:     "Figure 7",
		Title:  "Fraction of time poisoned vs attacker re-poison period (gateway defense rate-limited to 1s)",
		XLabel: "attacker_period_seconds",
		YLabel: "poisoned_time_fraction",
		XFmt:   "%.1f",
		YFmt:   "%.3f",
		Notes: []string{
			"gratuitous-broadcast poisoning of the gateway's address; the gateway hears each forgery and reasserts",
			"defense repairs every naive cache on the segment at once — one reassertion, LAN-wide effect",
		},
	}
	periods := []time.Duration{
		200 * time.Millisecond, 500 * time.Millisecond,
		time.Second, 2 * time.Second, 5 * time.Second, 10 * time.Second,
	}
	type cell struct {
		defended bool
		period   time.Duration
	}
	var cells []cell
	for _, defended := range []bool{false, true} {
		for _, period := range periods {
			cells = append(cells, cell{defended, period})
		}
	}
	scope := Scope{Experiment: "figure7", Params: fmt.Sprintf("samples=%d", samplesPerCell)}
	fracs := CachedMap(scope, cells, func(c cell) float64 {
		return defenseWarPoint(c.period, c.defended, samplesPerCell)
	})
	for i, c := range cells {
		name := "no-defense"
		if c.defended {
			name = "defense-1s"
		}
		f.AddPoint(name, c.period.Seconds(), fracs[i])
	}
	return f
}

// defenseWarPoint measures the poisoned-time fraction for one cell.
func defenseWarPoint(period time.Duration, defended bool, samples int) float64 {
	var hostOpts []stack.Option
	if defended {
		hostOpts = append(hostOpts, stack.WithAddressDefense(time.Second))
	}
	l := labnet.New(labnet.Config{
		Seed:         int64(period) + 1,
		Hosts:        4,
		WithAttacker: true,
		WithMonitor:  false,
		HostOptions:  hostOpts,
	})
	gw, victim := l.Gateway(), l.Victim()
	victim.Resolve(gw.IP(), nil)

	l.Sched.Every(period, func() {
		l.Attacker.Poison(attack.VariantGratuitous, gw.IP(), l.Attacker.MAC(),
			victim.MAC(), victim.IP())
	})

	horizon := 60 * time.Second
	if samples < 1 {
		samples = 1
	}
	gap := horizon / time.Duration(samples)
	poisoned := 0
	total := 0
	l.Sched.Every(gap, func() {
		if l.Sched.Now() < 5*time.Second {
			return // let the first poison land before sampling
		}
		total++
		if mac, ok := victim.Cache().Lookup(gw.IP()); ok && mac == l.Attacker.MAC() {
			poisoned++
		}
	})
	_ = l.Run(horizon)
	if total == 0 {
		return 0
	}
	return float64(poisoned) / float64(total)
}
