package eval

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

func findRow(t *testing.T, tbl *Table, name string) []string {
	t.Helper()
	for _, row := range tbl.Rows {
		if row[0] == name {
			return row
		}
	}
	t.Fatalf("table %s has no row %q", tbl.ID, name)
	return nil
}

func seriesPoints(t *testing.T, f *Figure, name string) []Point {
	t.Helper()
	for _, s := range f.Series {
		if s.Name == name {
			return s.Points
		}
	}
	t.Fatalf("figure %s has no series %q", f.ID, name)
	return nil
}

func TestTable1Renders(t *testing.T) {
	tbl := Table1PropertyMatrix()
	if len(tbl.Rows) != 12 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"s-arp", "dai", "arpwatch", "port-security", "Table 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	var csv bytes.Buffer
	if err := tbl.CSV(&csv); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csv.String(), "\n"); lines != 13 {
		t.Fatalf("csv lines = %d", lines)
	}
	recs := Table1Recommendations()
	if len(recs.Rows) != 4 {
		t.Fatalf("recommendation rows = %d", len(recs.Rows))
	}
}

func TestTable2MatchesPolicyClaims(t *testing.T) {
	tbl := Table2PolicyMatrix()
	// Columns: policy, gratuitous, unsolicited-reply, request-spoof, reply-race.
	naive := findRow(t, tbl, "naive")
	for i := 1; i <= 4; i++ {
		if !strings.HasPrefix(naive[i], "✓") {
			t.Errorf("naive col %d = %q, want create-success", i, naive[i])
		}
	}
	solicited := findRow(t, tbl, "solicited-only")
	for i := 1; i <= 3; i++ {
		if solicited[i] != "✗/✗" {
			t.Errorf("solicited-only col %d = %q, want full block", i, solicited[i])
		}
	}
	if solicited[4] != "✓/✓" {
		t.Errorf("solicited-only race = %q, want success (the kernel patch cannot stop races)", solicited[4])
	}
	noOver := findRow(t, tbl, "no-overwrite")
	if !strings.HasSuffix(noOver[2], "/✗") {
		t.Errorf("no-overwrite unsolicited = %q, want overwrite blocked", noOver[2])
	}
	if !strings.HasPrefix(noOver[2], "✓") {
		t.Errorf("no-overwrite unsolicited = %q, want creation allowed", noOver[2])
	}
	replyOnly := findRow(t, tbl, "reply-only")
	if replyOnly[3] != "✗/✗" {
		t.Errorf("reply-only request-spoof = %q, want blocked", replyOnly[3])
	}
}

func TestTable3DetectionShape(t *testing.T) {
	tbl := Table3Detection(3)
	if len(tbl.Rows) != len(DetectionSchemes()) {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Every scheme must detect the MITM in every trial (TPR 1.00): the
	// attacked binding was long established before the attack.
	for _, row := range tbl.Rows {
		if row[1] != "1.00" {
			t.Errorf("%s TPR = %s, want 1.00", row[0], row[1])
		}
	}
	// arpwatch pays churn FPs; the probing schemes must not.
	aw := findRow(t, tbl, "arpwatch")
	if aw[2] == "0.00" {
		t.Error("arpwatch should false-positive on churn")
	}
	for _, scheme := range []string{"active-probe", "hybrid-guard", "middleware"} {
		row := findRow(t, tbl, scheme)
		if row[2] != "0.00" {
			t.Errorf("%s FP/churn = %s, want 0.00", scheme, row[2])
		}
	}
}

func TestFigure1CDFShape(t *testing.T) {
	f := Figure1LatencyCDF(3)
	for _, scheme := range DetectionSchemes() {
		pts := seriesPoints(t, f, scheme)
		if len(pts) == 0 {
			t.Fatalf("%s has no CDF points", scheme)
		}
		last := pts[len(pts)-1]
		if last.Y != 1.0 {
			t.Errorf("%s CDF does not reach 1: %v", scheme, last)
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Y < pts[i-1].Y || pts[i].X < pts[i-1].X {
				t.Fatalf("%s CDF not monotone", scheme)
			}
		}
	}
}

func TestFigure2RaceShape(t *testing.T) {
	f := Figure2RaceWindow(10)
	// Solicited-only (first answer wins): sigmoid from ≈1 to ≈0.
	sol := seriesPoints(t, f, "solicited-only")
	if len(sol) != 11 {
		t.Fatalf("points = %d", len(sol))
	}
	if sol[0].Y < 0.8 {
		t.Errorf("solicited-only at delay 0: success = %v, want ≈1", sol[0].Y)
	}
	if sol[len(sol)-1].Y > 0.2 {
		t.Errorf("solicited-only at delay 5ms: success = %v, want ≈0", sol[len(sol)-1].Y)
	}
	// Naive (last unsolicited writer wins): flat at ≈1 — racing is
	// unnecessary against an unhardened cache.
	for _, p := range seriesPoints(t, f, "naive") {
		if p.Y < 0.8 {
			t.Errorf("naive at delay %vms: success = %v, want ≈1", p.X, p.Y)
		}
	}
}

func TestTable4OverheadShape(t *testing.T) {
	tbl, err := Table4Overhead(5)
	if err != nil {
		t.Fatal(err)
	}
	bytesOf := func(name string) float64 {
		row := findRow(t, tbl, name)
		var v float64
		if _, err := fmtSscan(row[1], &v); err != nil {
			t.Fatalf("parse %q: %v", row[1], err)
		}
		return v
	}
	latencyOf := func(name string) time.Duration {
		row := findRow(t, tbl, name)
		d, err := time.ParseDuration(row[2])
		if err != nil {
			t.Fatalf("parse %q: %v", row[2], err)
		}
		return d
	}
	plain, sarpB, tarpB, mw := bytesOf("plain-arp"), bytesOf("s-arp"), bytesOf("tarp"), bytesOf("middleware")
	if !(sarpB > plain) || !(tarpB > plain) {
		t.Errorf("crypto schemes must cost more wire bytes: plain=%v sarp=%v tarp=%v", plain, sarpB, tarpB)
	}
	if !(mw > plain) {
		t.Errorf("middleware probes must cost extra bytes: plain=%v mw=%v", plain, mw)
	}
	if latencyOf("middleware") < 300*time.Millisecond {
		t.Errorf("middleware latency %v should include the quarantine window", latencyOf("middleware"))
	}
	if latencyOf("s-arp") <= latencyOf("plain-arp") {
		t.Errorf("s-arp latency should exceed plain: %v vs %v", latencyOf("s-arp"), latencyOf("plain-arp"))
	}
}

func TestFigure3ScalingShape(t *testing.T) {
	f := Figure3Scaling([]int{4, 8, 16}, 30*time.Second)
	for _, scheme := range []string{"plain-arp", "s-arp", "tarp", "middleware"} {
		pts := seriesPoints(t, f, scheme)
		if len(pts) != 3 {
			t.Fatalf("%s points = %d", scheme, len(pts))
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Y <= pts[i-1].Y {
				t.Errorf("%s load must grow with LAN size: %+v", scheme, pts)
			}
		}
	}
	// Crypto schemes sit above plain at every size.
	plain := seriesPoints(t, f, "plain-arp")
	for i, p := range seriesPoints(t, f, "s-arp") {
		if p.Y <= plain[i].Y {
			t.Errorf("s-arp should exceed plain at n=%v", p.X)
		}
	}
}

func TestTable5AblationShape(t *testing.T) {
	tbl := Table5Ablation(2)
	base := findRow(t, tbl, "no guard (baseline)")
	if base[1] != "0/2" || base[4] != "2/2" {
		t.Errorf("baseline row wrong: %v", base)
	}
	passive := findRow(t, tbl, "passive only")
	if passive[1] != "2/2" || passive[2] != "0/2" {
		t.Errorf("passive-only should detect but never confirm: %v", passive)
	}
	full := findRow(t, tbl, "passive + active")
	if full[1] != "2/2" || full[2] != "2/2" {
		t.Errorf("full guard should detect and confirm: %v", full)
	}
	if full[4] != "2/2" {
		t.Errorf("detection alone must not de-poison the victim: %v", full)
	}
	protected := findRow(t, tbl, "passive + active + host protection")
	if protected[4] != "0/2" {
		t.Errorf("host protection should keep the victim clean: %v", protected)
	}
}

func TestFigure5CamFloodShape(t *testing.T) {
	f := Figure5CamFlood([]float64{0, 2000}, 10*time.Second)
	open := seriesPoints(t, f, "unprotected")
	if open[0].Y > 0.05 {
		t.Errorf("no flood should mean no eavesdropping: %v", open[0])
	}
	if open[1].Y < 0.5 {
		t.Errorf("heavy flood should expose most of the flow: %v", open[1])
	}
	sec := seriesPoints(t, f, "port-security")
	for _, p := range sec {
		if p.Y > 0.05 {
			t.Errorf("port security should pin eavesdropping near zero: %+v", sec)
		}
	}
}

func TestFigure4ChurnShape(t *testing.T) {
	f := Figure4ChurnFalsePositives(1)
	aw := seriesPoints(t, f, "arpwatch")
	if aw[0].Y != 0 {
		t.Errorf("zero churn must mean zero arpwatch FPs: %+v", aw[0])
	}
	if aw[len(aw)-1].Y <= aw[0].Y {
		t.Errorf("arpwatch FPs must grow with churn: %+v", aw)
	}
	for _, scheme := range []string{"active-probe", "hybrid-guard"} {
		for _, p := range seriesPoints(t, f, scheme) {
			if p.Y > aw[len(aw)-1].Y {
				t.Errorf("%s FPs should stay below arpwatch's peak: %+v", scheme, p)
			}
		}
	}
}

func TestTable6EvasiveAttackerShape(t *testing.T) {
	tbl := Table6EvasiveAttacker(2)
	// Active verification is evaded: deceived, not flagged.
	probe := findRow(t, tbl, "active-probe")
	if probe[1] != "2/2" {
		t.Errorf("active-probe should be deceived by an impersonator: %v", probe)
	}
	if probe[2] != "0/2" {
		t.Errorf("active-probe should clear (not flag) the impersonation: %v", probe)
	}
	// The passive monitor still notices the unexplained binding change.
	aw := findRow(t, tbl, "arpwatch")
	if aw[2] != "2/2" {
		t.Errorf("arpwatch should flag the takeover: %v", aw)
	}
	// DAI and S-ARP are immune: the victim is never deceived.
	for _, scheme := range []string{"dai", "s-arp"} {
		row := findRow(t, tbl, scheme)
		if row[1] != "0/2" {
			t.Errorf("%s should keep the victim clean: %v", scheme, row)
		}
	}
	// Middleware commits the forgery — same blind spot as the prober.
	mw := findRow(t, tbl, "middleware")
	if mw[1] != "2/2" {
		t.Errorf("middleware should be deceived here: %v", mw)
	}
}

func TestTable7PortStealingShape(t *testing.T) {
	tbl := Table7PortStealing(2)
	// Without defenses the flow is intercepted.
	if row := findRow(t, tbl, "none"); row[1] != "2/2" {
		t.Errorf("undefended stealing should intercept: %v", row)
	}
	// Every ARP-layer scheme is blind: intercepted, not flagged.
	for _, scheme := range []string{"arpwatch", "dai", "hybrid-guard"} {
		row := findRow(t, tbl, scheme)
		if row[1] != "2/2" {
			t.Errorf("%s should not stop CAM theft: %v", scheme, row)
		}
		if row[2] != "0/2" {
			t.Errorf("%s should see nothing (no ARP was forged): %v", scheme, row)
		}
	}
	// Sticky port security blocks and flags it.
	sec := findRow(t, tbl, "port-security-sticky")
	if sec[1] != "0/2" || sec[2] != "2/2" {
		t.Errorf("sticky port security should block and flag: %v", sec)
	}
}

func TestFigure6WindowAblationShape(t *testing.T) {
	f := Figure6WindowAblation(8)
	short := seriesPoints(t, f, "100ms")
	long := seriesPoints(t, f, "1s")
	if short[0].Y != 0 || long[0].Y != 0 {
		t.Errorf("zero loss must mean zero false rejections: %v %v", short[0], long[0])
	}
	// At heavy loss the short window must reject more than the long one.
	if !(short[len(short)-1].Y >= long[len(long)-1].Y) {
		t.Errorf("short window should suffer at least as much under loss: short=%v long=%v",
			short[len(short)-1], long[len(long)-1])
	}
	// And loss must hurt at all.
	if short[len(short)-1].Y == 0 {
		t.Errorf("30%% loss should cause some false rejections: %+v", short)
	}
}

func TestFigure7DefenseWarShape(t *testing.T) {
	f := Figure7DefenseWar(120)
	undefended := seriesPoints(t, f, "no-defense")
	for _, p := range undefended {
		if p.Y < 0.9 {
			t.Errorf("undefended poisoning should hold ≈1 at period %vs: %v", p.X, p.Y)
		}
	}
	defended := seriesPoints(t, f, "defense-1s")
	// The defended fraction must fall as the attacker slows.
	first, last := defended[0], defended[len(defended)-1]
	if !(last.Y < first.Y) {
		t.Errorf("defense should win as the attacker slows: %+v", defended)
	}
	// At a 10s attacker period the victim should be clean nearly always.
	if last.Y > 0.2 {
		t.Errorf("slow attacker vs 1s defense: fraction = %v, want near 0", last.Y)
	}
	// And the defense must beat no-defense everywhere.
	for i := range defended {
		if defended[i].Y > undefended[i].Y {
			t.Errorf("defense worse than none at %vs", defended[i].X)
		}
	}
}

func TestFigureRenderAndCSV(t *testing.T) {
	f := &Figure{ID: "Figure X", Title: "t", XLabel: "x", YLabel: "y"}
	f.AddPoint("a", 1, 2)
	f.AddPoint("a", 2, 3)
	f.AddPoint("b", 1, 5)
	var buf bytes.Buffer
	if err := f.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "series a") || !strings.Contains(buf.String(), "series b") {
		t.Fatalf("render:\n%s", buf.String())
	}
	var csv bytes.Buffer
	if err := f.CSV(&csv); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csv.String(), "\n"); lines != 4 {
		t.Fatalf("csv lines = %d", lines)
	}
}

// fmtSscan parses a leading float from a table cell.
func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}

func TestTable8FaultRobustnessShape(t *testing.T) {
	tbl := Table8FaultRobustness(2)
	if want := len(DetectionSchemes()) * len(table8Intensities); len(tbl.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), want)
	}
	// At intensity 0 the trial is the established-binding MITM with no
	// impairments: every scheme must detect every time with no false alarms.
	for _, row := range tbl.Rows {
		if row[1] != "0.00" {
			continue
		}
		if row[2] != "1.00" {
			t.Errorf("%s clean-network TPR = %s, want 1.00", row[0], row[2])
		}
		if row[3] != "0.00" {
			t.Errorf("%s clean-network FP/trial = %s, want 0.00", row[0], row[3])
		}
	}
	// Periodic poisoning survives burst loss: the passive single-sighting
	// schemes must still detect at full intensity (a later round is seen).
	for _, row := range tbl.Rows {
		if row[1] == "1.00" && (row[0] == "arpwatch" || row[0] == "snort-like") {
			if row[2] == "0.00" {
				t.Errorf("%s detected nothing at full fault intensity: %v", row[0], row)
			}
		}
	}
}

func TestFigure8FaultSweepShape(t *testing.T) {
	f := Figure8FaultIntensitySweep(2)
	for _, scheme := range DetectionSchemes() {
		pts := seriesPoints(t, f, scheme)
		if len(pts) != 5 {
			t.Fatalf("%s has %d points, want 5", scheme, len(pts))
		}
		for i, p := range pts {
			if p.Y <= 0 {
				t.Errorf("%s point %d: median time-to-detect %v must be positive", scheme, i, p.Y)
			}
			// Censoring bounds every median by the observation window.
			if p.Y > 60_000 {
				t.Errorf("%s point %d: median %vms exceeds the 60s observation bound", scheme, i, p.Y)
			}
		}
	}
}

func TestFaultPlanForIntensity(t *testing.T) {
	if faultPlanForIntensity(0, time.Minute) != nil {
		t.Fatal("intensity 0 must mean no plan at all")
	}
	p := faultPlanForIntensity(1, time.Minute)
	if p == nil || len(p.Events) != 5 {
		t.Fatalf("full-intensity plan: %+v", p)
	}
}
