package eval

import (
	"encoding/csv"
	"reflect"
	"strings"
	"testing"
)

// TestTableCSVRoundTripRFC4180: cells containing separators, quotes, and
// line breaks survive a write → standard-reader parse round trip intact.
func TestTableCSVRoundTripRFC4180(t *testing.T) {
	tbl := &Table{
		ID:      "Table X",
		Title:   "quoting",
		Columns: []string{"scheme", "note, with comma", `says "quoted"`},
	}
	tbl.AddRow("plain", "has,comma", `has"quote`)
	tbl.AddRow("multi\nline", "✓/✗", " padded ")

	var b strings.Builder
	if err := tbl.CSV(&b); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("standard CSV reader rejected output: %v\n%s", err, b.String())
	}
	want := append([][]string{tbl.Columns}, tbl.Rows...)
	if !reflect.DeepEqual(records, want) {
		t.Fatalf("round trip mismatch:\ngot  %q\nwant %q", records, want)
	}
}

// TestFigureCSVRoundTripRFC4180: series names and axis labels with commas
// are quoted, so the long-format rows stay three fields wide.
func TestFigureCSVRoundTripRFC4180(t *testing.T) {
	f := &Figure{ID: "Figure X", Title: "quoting", XLabel: "x, axis", YLabel: "y"}
	f.AddPoint("defended, 1s", 0.5, 0.25)
	f.AddPoint(`raw "series"`, 1, 2)

	var b strings.Builder
	if err := f.CSV(&b); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("standard CSV reader rejected output: %v\n%s", err, b.String())
	}
	want := [][]string{
		{"series", "x, axis", "y"},
		{"defended, 1s", "0.5", "0.25"},
		{`raw "series"`, "1", "2"},
	}
	if !reflect.DeepEqual(records, want) {
		t.Fatalf("round trip mismatch:\ngot  %q\nwant %q", records, want)
	}
}
