package eval

import (
	"fmt"
	"time"

	"repro/internal/schemes"
	"repro/internal/schemes/registry"
)

// stealDeployment is one Table 7 row: a display label and the registry
// deployment behind it (empty scheme = no defense).
type stealDeployment struct {
	label  string
	scheme string
	params registry.P
}

// stealDeployments: arpwatch and the guard get both critical bindings
// seeded — the strongest reasonable ARP-layer posture, to make the point
// that the attack is invisible to them anyway.
func stealDeployments() []stealDeployment {
	return []stealDeployment{
		{label: "none"},
		{label: registry.NameArpwatch, scheme: registry.NameArpwatch, params: registry.P{"seedVictim": true}},
		{label: registry.NameDAI, scheme: registry.NameDAI},
		{label: registry.NameHybridGuard, scheme: registry.NameHybridGuard, params: registry.P{"seedVictim": true}},
		{label: "port-security-sticky", scheme: registry.NamePortSecurity},
	}
}

// Table7PortStealing runs the port-stealing attack — CAM-table theft with
// forged *Ethernet* source addresses, no ARP forgery at all — against the
// scheme families and reports who intercepts and who notices.
//
// Expected shape (the layering argument that closes the analysis): every
// ARP-layer scheme is blind, because the attack never utters a false ARP
// word; only per-port hardware identity enforcement (sticky port security)
// stops it. Defense in depth is not optional.
func Table7PortStealing(trials int) *Table {
	t := &Table{
		ID:      "Table 7",
		Title:   fmt.Sprintf("Port stealing (CAM theft, no ARP forgery) vs scheme families (%d trials)", trials),
		Columns: []string{"scheme", "traffic intercepted", "attack flagged"},
		Notes: []string{
			"the attacker steals the victim's CAM slot with forged Ethernet source addresses and restores after each capture",
			"ARP-layer schemes see a perfectly healthy ARP conversation throughout",
		},
	}
	for _, dep := range stealDeployments() {
		dep := dep
		scope := Scope{Experiment: "table7", Params: fmt.Sprintf("%+v", dep)}
		var intercepted, flagged int
		for _, out := range CachedTrials(scope, trials, func(seed int64) [2]bool {
			i, f := runStealTrial(dep, seed)
			return [2]bool{i, f}
		}) {
			if out[0] {
				intercepted++
			}
			if out[1] {
				flagged++
			}
		}
		frac := func(k int) string { return fmt.Sprintf("%d/%d", k, trials) }
		t.AddRow(dep.label, frac(intercepted), frac(flagged))
	}
	return t
}

// runStealTrial runs one port-stealing scenario under one deployment and
// reports (traffic intercepted, attack flagged).
func runStealTrial(dep stealDeployment, seed int64) (bool, bool) {
	l := newAttackLAN(seed, 4, 0)
	gw, victim := l.Gateway(), l.Victim()
	sink := schemes.NewSink()

	var inst *registry.Instance
	if dep.scheme != "" {
		var err error
		inst, err = registry.Deploy(l.Env(sink, nil), dep.scheme, dep.params)
		if err != nil {
			panic(fmt.Sprintf("eval: deploy %s: %v", dep.scheme, err)) // a bug, not a result
		}
	}

	// Gateway→victim flow whose interception is the prize.
	gw.Resolve(victim.IP(), nil)
	l.Sched.Every(300*time.Millisecond, func() {
		gw.SendUDP(victim.IP(), 1000, 80, []byte("downlink payload"))
	})

	before := l.Attacker.Stats().Sniffed
	l.Sched.At(2*time.Second, func() {
		l.Attacker.StealPort(victim.MAC(), victim.IP(), 100*time.Millisecond, true)
	})
	_ = l.Run(12 * time.Second)

	intercepted := l.Attacker.Stats().Sniffed > before
	flagged := false
	if inst != nil && inst.IncidentsFn != nil {
		flagged = len(inst.ActionableIncidents()) > 0
	} else {
		flagged = sink.Len() > 0
	}
	return intercepted, flagged
}
