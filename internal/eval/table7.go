package eval

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/labnet"
	"repro/internal/schemes"
	"repro/internal/schemes/arpwatch"
	"repro/internal/schemes/dai"
	"repro/internal/schemes/portsec"
)

// Table7PortStealing runs the port-stealing attack — CAM-table theft with
// forged *Ethernet* source addresses, no ARP forgery at all — against the
// scheme families and reports who intercepts and who notices.
//
// Expected shape (the layering argument that closes the analysis): every
// ARP-layer scheme is blind, because the attack never utters a false ARP
// word; only per-port hardware identity enforcement (sticky port security)
// stops it. Defense in depth is not optional.
func Table7PortStealing(trials int) *Table {
	t := &Table{
		ID:      "Table 7",
		Title:   fmt.Sprintf("Port stealing (CAM theft, no ARP forgery) vs scheme families (%d trials)", trials),
		Columns: []string{"scheme", "traffic intercepted", "attack flagged"},
		Notes: []string{
			"the attacker steals the victim's CAM slot with forged Ethernet source addresses and restores after each capture",
			"ARP-layer schemes see a perfectly healthy ARP conversation throughout",
		},
	}
	for _, scheme := range []string{"none", "arpwatch", "dai", "hybrid-guard", "port-security-sticky"} {
		scheme := scheme
		var intercepted, flagged int
		for _, out := range RunTrials(trials, func(seed int64) [2]bool {
			i, f := runStealTrial(scheme, seed)
			return [2]bool{i, f}
		}) {
			if out[0] {
				intercepted++
			}
			if out[1] {
				flagged++
			}
		}
		frac := func(k int) string { return fmt.Sprintf("%d/%d", k, trials) }
		t.AddRow(scheme, frac(intercepted), frac(flagged))
	}
	return t
}

// runStealTrial runs one port-stealing scenario under one scheme and
// reports (traffic intercepted, attack flagged).
func runStealTrial(scheme string, seed int64) (bool, bool) {
	l := labnet.New(labnet.Config{Seed: seed, Hosts: 4, WithAttacker: true, WithMonitor: true})
	gw, victim := l.Gateway(), l.Victim()
	sink := schemes.NewSink()
	var guard *core.Guard

	switch scheme {
	case "arpwatch":
		w := arpwatch.New(l.Sched, sink)
		w.Seed(victim.IP(), victim.MAC())
		w.Seed(gw.IP(), gw.MAC())
		l.Switch.AddTap(w.Observe)
	case "dai":
		table := dai.NewBindingTable()
		for _, h := range l.Hosts {
			table.AddStatic(h.IP(), h.MAC())
		}
		table.AddStatic(l.Monitor.IP(), l.Monitor.MAC())
		table.AddStatic(l.Attacker.IP(), l.Attacker.MAC())
		insp := dai.New(l.Sched, sink, table)
		l.Switch.SetFilter(insp.Filter())
	case "hybrid-guard":
		guard = core.New(l.Sched, l.Monitor,
			core.WithSeedBinding(gw.IP(), gw.MAC()),
			core.WithSeedBinding(victim.IP(), victim.MAC()))
		l.Switch.AddTap(guard.Tap())
	case "port-security-sticky":
		opts := []portsec.Option{portsec.WithTrustedPorts(l.MonitorPort.ID())}
		for i, p := range l.Ports {
			opts = append(opts, portsec.WithSticky(p.ID(), l.Hosts[i].MAC()))
		}
		opts = append(opts, portsec.WithSticky(l.AtkPort.ID(), l.Attacker.MAC()))
		e := portsec.New(l.Sched, sink, opts...)
		l.Switch.SetFilter(e.Filter())
	}

	// Gateway→victim flow whose interception is the prize.
	gw.Resolve(victim.IP(), nil)
	l.Sched.Every(300*time.Millisecond, func() {
		gw.SendUDP(victim.IP(), 1000, 80, []byte("downlink payload"))
	})

	before := l.Attacker.Stats().Sniffed
	l.Sched.At(2*time.Second, func() {
		l.Attacker.StealPort(victim.MAC(), victim.IP(), 100*time.Millisecond, true)
	})
	_ = l.Run(12 * time.Second)

	intercepted := l.Attacker.Stats().Sniffed > before
	flagged := false
	if guard != nil {
		flagged = len(guard.ActionableIncidents()) > 0
	} else {
		flagged = sink.Len() > 0
	}
	return intercepted, flagged
}
