package eval

import (
	"fmt"
	"time"

	"repro/internal/labnet"
	"repro/internal/schemes"
	"repro/internal/schemes/middleware"
	"repro/internal/schemes/registry"
)

// Figure6WindowAblation sweeps link loss against the middleware's
// verification window and reports the rate at which *genuine* resolutions
// are falsely rejected — the design-choice trade DESIGN.md calls out: a
// short window answers fast but, on lossy media (Wi-Fi), loses its own
// probes and punishes legitimate peers; a long window is robust but delays
// every first resolution by its full length (Table 4's latency column).
//
// Expected shape: false-rejection rate grows with loss and shrinks with
// window length (each window fits more probe retries); at zero loss every
// window is clean.
func Figure6WindowAblation(attemptsPerPoint int) *Figure {
	f := &Figure{
		ID:     "Figure 6",
		Title:  fmt.Sprintf("Middleware false rejections vs link loss, per verify window (%d genuine resolutions/point)", attemptsPerPoint),
		XLabel: "link_loss_probability",
		YLabel: "false_rejection_rate",
		XFmt:   "%.2f",
		YFmt:   "%.3f",
		Notes: []string{
			"false rejection: a genuine binding quarantined and then discarded because probe traffic was lost",
			"probes repeat every ≤100ms until the window closes, so longer windows buy loss tolerance",
		},
	}
	type cell struct {
		window time.Duration
		loss   float64
	}
	var cells []cell
	for _, window := range []time.Duration{100 * time.Millisecond, 300 * time.Millisecond, time.Second} {
		for _, loss := range []float64{0, 0.05, 0.1, 0.2, 0.3} {
			cells = append(cells, cell{window, loss})
		}
	}
	scope := Scope{Experiment: "figure6", Params: fmt.Sprintf("attempts=%d", attemptsPerPoint)}
	rates := CachedMap(scope, cells, func(c cell) float64 {
		return windowAblationPoint(c.window, c.loss, attemptsPerPoint)
	})
	for i, c := range cells {
		f.AddPoint(c.window.String(), c.loss, rates[i])
	}
	return f
}

// windowAblationPoint measures the false-rejection fraction of quarantined
// genuine bindings for one (window, loss) cell.
func windowAblationPoint(window time.Duration, loss float64, attempts int) float64 {
	var committed, rejected uint64
	for seed := int64(1); seed <= 4; seed++ {
		l := labnet.New(labnet.Config{
			Seed:         seed,
			Hosts:        4,
			WithAttacker: false,
			WithMonitor:  false,
			LinkLoss:     loss,
		})
		victim, gw := l.Victim(), l.Gateway()
		sink := schemes.NewSink()
		inst, err := registry.Deploy(l.Env(sink, nil), registry.NameMiddleware,
			registry.P{"verifyWindowSeconds": window.Seconds()})
		if err != nil {
			panic(fmt.Sprintf("eval: deploy middleware: %v", err)) // a bug, not a result
		}
		g := inst.Handle.([]*middleware.Guard)[0]

		per := attempts / 4
		if per < 1 {
			per = 1
		}
		var loop func(i int)
		loop = func(i int) {
			if i >= per {
				return
			}
			victim.Cache().Delete(gw.IP())
			victim.Resolve(gw.IP(), nil)
			// Next attempt after the window plus slack for retries.
			l.Sched.After(window+5*time.Second, func() { loop(i + 1) })
		}
		loop(0)
		_ = l.Run(time.Duration(per) * (window + 6*time.Second))
		st := g.Stats()
		committed += st.Committed
		rejected += st.Rejected
	}
	total := committed + rejected
	if total == 0 {
		return 0
	}
	return float64(rejected) / float64(total)
}
