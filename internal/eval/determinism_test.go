package eval

import (
	"bytes"
	"runtime"
	"testing"
)

// renderAtWidth renders one artifact at a fixed worker-pool width.
func renderAtWidth(t *testing.T, width int, build func() Artifact) string {
	t.Helper()
	SetParallelism(width)
	defer SetParallelism(0)
	var buf bytes.Buffer
	if err := build().Render(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// assertByteIdenticalAcrossWidths is the determinism invariant the registry
// refactor must preserve: rendered output is byte-identical at any pool
// width because each trial owns its world and aggregation is input-ordered.
func assertByteIdenticalAcrossWidths(t *testing.T, build func() Artifact) {
	t.Helper()
	widths := []int{1, 4, runtime.GOMAXPROCS(0)}
	ref := renderAtWidth(t, widths[0], build)
	if ref == "" {
		t.Fatal("empty render")
	}
	for _, w := range widths[1:] {
		if got := renderAtWidth(t, w, build); got != ref {
			t.Fatalf("output differs at parallel=%d:\n--- parallel=1 ---\n%s--- parallel=%d ---\n%s",
				w, ref, w, got)
		}
	}
}

func TestFigure7ByteIdenticalAcrossWidths(t *testing.T) {
	assertByteIdenticalAcrossWidths(t, func() Artifact { return Figure7DefenseWar(30) })
}

func TestFigure8ByteIdenticalAcrossWidths(t *testing.T) {
	assertByteIdenticalAcrossWidths(t, func() Artifact { return Figure8FaultIntensitySweep(1) })
}
