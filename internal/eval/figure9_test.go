package eval

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// figure9Small renders a scaled-down Figure 9 (still multi-LAN, still
// crossing the backbone) at a given shard worker width.
func figure9Small(workers int) Artifact {
	return Figure9CampusScaling([]int{100, 1000, 4000}, 2, workers, 20*time.Second)
}

// TestFigure9RendersAllSizes: every requested population produces both the
// latency and the throughput series.
func TestFigure9RendersAllSizes(t *testing.T) {
	f := Figure9CampusScaling([]int{100, 1000}, 1, 1, 20*time.Second)
	var buf bytes.Buffer
	if err := f.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"arpwatch_latency_ms", "fabric_frames_per_sec", "100", "1000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered figure missing %q:\n%s", want, out)
		}
	}
}

// TestFigure9DetectsTheMITM: the per-LAN arpwatch deployment actually
// catches the LAN-0 MITM rather than reporting censored horizons.
func TestFigure9DetectsTheMITM(t *testing.T) {
	res := runCampusTrial(campusTrialConfig{size: 500, seed: 1, workers: 1, horizon: 20 * time.Second})
	if !res.detected {
		t.Fatal("campus MITM went undetected")
	}
	if res.latency <= 0 || res.latency > 10*time.Second {
		t.Fatalf("implausible detection latency %v", res.latency)
	}
	if res.hosts < 500 {
		t.Fatalf("campus undersized: %d hosts", res.hosts)
	}
	if res.frames == 0 {
		t.Fatal("fabric carried no frames")
	}
}

// TestFigure9ByteIdenticalAcrossWidths is the cross-shard determinism
// contract end to end: rendered output is byte-identical across both the
// trial pool width (CachedMap parallelism) and the shard worker width.
func TestFigure9ByteIdenticalAcrossWidths(t *testing.T) {
	assertByteIdenticalAcrossWidths(t, func() Artifact { return figure9Small(1) })
	ref := renderAtWidth(t, 1, func() Artifact { return figure9Small(1) })
	for _, w := range []int{2, 8} {
		w := w
		if got := renderAtWidth(t, 1, func() Artifact { return figure9Small(w) }); got != ref {
			t.Fatalf("output differs at shard workers=%d:\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
				w, ref, w, got)
		}
	}
}

// TestFigure9MillionHostBudget: the 10⁶-host point completes in one
// process within the CI bench budget. The full default figure runs it
// three times per `make regen`; a single trial staying well under a
// minute keeps that honest.
func TestFigure9MillionHostBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("million-host point skipped in -short")
	}
	start := time.Now()
	res := runCampusTrial(campusTrialConfig{size: 1_000_000, seed: 1, workers: 0, horizon: 30 * time.Second})
	elapsed := time.Since(start)
	if res.hosts < 1_000_000 {
		t.Fatalf("campus undersized: %d hosts", res.hosts)
	}
	t.Logf("million-host trial: %d hosts, detected=%v latency=%v frames=%d in %v",
		res.hosts, res.detected, res.latency, res.frames, elapsed)
	if !res.detected {
		t.Fatal("million-host MITM went undetected")
	}
	if elapsed > time.Minute {
		t.Fatalf("million-host point took %v, beyond the CI bench budget", elapsed)
	}
}
