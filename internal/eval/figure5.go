package eval

import (
	"fmt"
	"time"

	"repro/internal/ethaddr"
	"repro/internal/frame"
	"repro/internal/ipv4pkt"
	"repro/internal/netsim"
	"repro/internal/schemes"
	"repro/internal/schemes/registry"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/traffic"
)

// Figure5CamFlood sweeps the MAC-flooding rate against a switch whose CAM
// randomly evicts under pressure and plots the fraction of a victim↔server
// unicast flow an attacker's promiscuous NIC can eavesdrop, with and
// without port security on the attacker's port.
//
// Expected shape: without protection the eavesdroppable fraction climbs
// from ≈0 toward ≈1 as the flood rate overwhelms the CAM (fail-open); with
// port security it stays pinned at ≈0 because the flood never reaches the
// learning path.
func Figure5CamFlood(rates []float64, horizon time.Duration) *Figure {
	f := &Figure{
		ID:     "Figure 5",
		Title:  "Eavesdroppable fraction of unicast flow vs MAC-flood rate (CAM=256, random eviction)",
		XLabel: "flood_frames_per_sec",
		YLabel: "eavesdropped_fraction",
		XFmt:   "%.0f",
		YFmt:   "%.3f",
	}
	type cell struct {
		protected bool
		rate      float64
	}
	var cells []cell
	for _, protected := range []bool{false, true} {
		for _, rate := range rates {
			cells = append(cells, cell{protected, rate})
		}
	}
	scope := Scope{Experiment: "figure5", Params: fmt.Sprintf("horizon=%v", horizon)}
	fractions := CachedMap(scope, cells, func(c cell) float64 {
		return camFloodPoint(c.rate, horizon, c.protected)
	})
	for i, c := range cells {
		name := "unprotected"
		if c.protected {
			name = "port-security"
		}
		f.AddPoint(name, c.rate, fractions[i])
	}
	return f
}

// camFloodPoint runs one flood trial and returns the overheard fraction.
func camFloodPoint(rate float64, horizon time.Duration, protectPorts bool) float64 {
	s := sim.NewScheduler(int64(rate) + 7)
	swOpts := []netsim.SwitchOption{
		netsim.WithCAMCapacity(256),
		netsim.WithCAMEvictRandom(),
	}
	sw := netsim.NewSwitch(s, swOpts...)
	gen := ethaddr.NewGen(9)
	subnet := ethaddr.MustParseSubnet("192.168.88.0/24")

	attach := func(ip ethaddr.IPv4) (*stack.Host, *netsim.Port) {
		nic := netsim.NewNIC(s, gen.SeqMAC())
		port := sw.AddPort()
		port.Attach(nic)
		return stack.NewHost(s, ip.String(), nic, ip), port
	}
	victim, vp := attach(subnet.Host(1))
	server, sp := attach(subnet.Host(2))

	atkNIC := netsim.NewNIC(s, gen.SeqMAC())
	atkPort := sw.AddPort()
	atkPort.Attach(atkNIC)
	atkNIC.SetPromiscuous(true)

	if protectPorts {
		// This trial's topology is bespoke (no labnet LAN), so the
		// deployment environment is assembled by hand: two stations plus
		// the attacker NIC's port, which sticky mode pins like any other.
		env := &registry.Env{
			Sched:        s,
			Switch:       sw,
			Hosts:        []*stack.Host{victim, server},
			Ports:        []*netsim.Port{vp, sp},
			AttackerMAC:  atkNIC.MAC(),
			AttackerPort: atkPort,
			Sink:         schemes.NewSink(),
		}
		if _, err := registry.Deploy(env, registry.NamePortSecurity, nil); err != nil {
			panic(fmt.Sprintf("eval: deploy port-security: %v", err)) // a bug, not a result
		}
	}

	// Count the flow frames the attacker overhears.
	overheard := 0
	atkNIC.SetHandler(func(fr *frame.Frame) {
		if fr.Type != frame.TypeIPv4 || fr.Dst == atkNIC.MAC() || fr.Dst.IsMulticast() {
			return
		}
		if pkt, err := ipv4pkt.Decode(fr.Payload); err == nil && pkt.Dst == server.IP() {
			overheard++
		}
	})

	// The flood, at the requested sustained rate.
	if rate > 0 {
		gap := time.Duration(float64(time.Second) / rate)
		n := int(horizon/gap) + 1
		floodGen := ethaddr.NewGen(int64(rate) + 99)
		var emit func(i int)
		emit = func(i int) {
			if i >= n {
				return
			}
			atkNIC.Send(&frame.Frame{Dst: floodGen.RandMAC(), Src: floodGen.RandMAC(), Type: frame.TypeIPv4})
			s.After(gap, func() { emit(i + 1) })
		}
		s.After(0, emit0(emit))
	}

	// The victim↔server flow under observation.
	flow := traffic.StartFlow(s, 1, victim, server, 10*time.Millisecond)
	_ = s.RunUntil(horizon)
	flow.Stop()

	sent := flow.Stats().Sent
	if sent == 0 {
		return 0
	}
	frac := float64(overheard) / float64(sent)
	if frac > 1 {
		frac = 1
	}
	return frac
}

// emit0 adapts a recursive emitter to a no-arg scheduler callback.
func emit0(emit func(int)) func() { return func() { emit(0) } }
