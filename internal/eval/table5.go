package eval

import (
	"fmt"
	"time"

	"repro/internal/ethaddr"
	"repro/internal/schemes"
	"repro/internal/schemes/registry"
)

// ablationOutcome is one Guard configuration's result on the standard
// MITM-plus-churn scenario.
type ablationOutcome struct {
	detected   bool
	confirmed  bool
	fpAlerts   int
	poisonHeld bool // the victim's cache still held the forgery at the end
}

// runAblation runs the fixed ablation scenario with one hybrid-guard
// parameterization (nil params = no guard at all).
func runAblation(seed int64, params registry.P) ablationOutcome {
	l := newAttackLAN(seed, 8, 0)
	gw, victim := l.Gateway(), l.Victim()

	var inst *registry.Instance
	if params != nil {
		var err error
		inst, err = registry.Deploy(l.Env(schemes.NewSink(), nil), registry.NameHybridGuard, params)
		if err != nil {
			panic(fmt.Sprintf("eval: deploy hybrid-guard: %v", err)) // a bug, not a result
		}
	}

	warmAttackLAN(l)

	// Two benign churn events.
	churned := make(map[ethaddr.IPv4]bool)
	for i, at := range []time.Duration{20 * time.Second, 80 * time.Second} {
		target := l.Hosts[3+i]
		l.Sched.At(at, func() {
			replaceStation(l, target)
			churned[target.IP()] = true
		})
	}

	// The MITM at t=60s.
	launchGatewayMITM(l, 60*time.Second)
	_ = l.Run(2 * time.Minute)

	out := ablationOutcome{}
	if mac, ok := victim.Cache().Lookup(gw.IP()); ok && mac == l.Attacker.MAC() {
		out.poisonHeld = true
	}
	if inst == nil {
		return out
	}
	// Detection and FP accounting use the incidents an operator would be
	// paged for: confirmed ones when the verifier runs, all otherwise.
	for _, inc := range inst.ActionableIncidents() {
		switch {
		case inc.IP == gw.IP() || inc.IP == victim.IP():
			out.detected = true
			out.confirmed = out.confirmed || inc.Confirmed
		case churned[inc.IP]:
			out.fpAlerts++
		}
	}
	return out
}

// Table5Ablation toggles the Guard's layers on the standard scenario and
// reports what each configuration buys.
//
// Expected shape: passive-only detects but cannot confirm and pays churn
// FPs; active-only confirms with no churn FPs; the full guard does both;
// adding host protection is the only configuration that also *prevents*
// the victim's cache from holding the forgery.
func Table5Ablation(trials int) *Table {
	t := &Table{
		ID:      "Table 5",
		Title:   fmt.Sprintf("Hybrid Guard ablation on MITM + churn (%d trials)", trials),
		Columns: []string{"configuration", "detected", "confirmed", "FP alerts", "victim stayed poisoned"},
	}
	configs := []struct {
		name   string
		params registry.P
	}{
		{"no guard (baseline)", nil},
		{"passive only", registry.P{"active": false, "seedGateway": false}},
		{"active only", registry.P{"passive": false, "seedGateway": false}},
		{"passive + active", registry.P{"seedGateway": false}},
		{"passive + active + host protection", registry.P{"seedGateway": false, "protectVictim": true}},
	}
	for _, cfg := range configs {
		params := cfg.params
		scope := Scope{Experiment: "table5", Params: fmt.Sprintf("%s %+v", cfg.name, params)}
		var detected, confirmed, fps, held int
		for _, out := range CachedTrials(scope, trials, func(seed int64) ablationOutcome {
			return runAblation(seed, params)
		}) {
			if out.detected {
				detected++
			}
			if out.confirmed {
				confirmed++
			}
			fps += out.fpAlerts
			if out.poisonHeld {
				held++
			}
		}
		frac := func(k int) string { return fmt.Sprintf("%d/%d", k, trials) }
		t.AddRow(cfg.name, frac(detected), frac(confirmed), fps, frac(held))
	}
	return t
}
