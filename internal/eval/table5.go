package eval

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/ethaddr"
	"repro/internal/labnet"
)

// ablationOutcome is one Guard configuration's result on the standard
// MITM-plus-churn scenario.
type ablationOutcome struct {
	detected   bool
	confirmed  bool
	fpAlerts   int
	poisonHeld bool // the victim's cache still held the forgery at the end
}

// runAblation runs the fixed ablation scenario with one Guard config.
func runAblation(seed int64, build func(l *labnet.LAN) *core.Guard) ablationOutcome {
	l := labnet.New(labnet.Config{Seed: seed, Hosts: 8, WithAttacker: true, WithMonitor: true})
	gw, victim := l.Gateway(), l.Victim()

	var g *core.Guard
	if build != nil {
		g = build(l)
		l.Switch.AddTap(g.Tap())
	}

	for _, h := range l.Hosts {
		h := h
		l.Sched.Every(15*time.Second, h.SendGratuitous)
	}
	l.SeedMutualCaches()

	// Two benign churn events.
	churned := make(map[ethaddr.IPv4]bool)
	for i, at := range []time.Duration{20 * time.Second, 80 * time.Second} {
		target := l.Hosts[3+i]
		l.Sched.At(at, func() {
			replaceStation(l, target)
			churned[target.IP()] = true
		})
	}

	// The MITM at t=60s.
	l.Sched.At(60*time.Second, func() {
		l.Attacker.PoisonPeriodically(2*time.Second, victim.MAC(), victim.IP(), gw.MAC(), gw.IP())
		l.Attacker.RelayBetween(victim.MAC(), victim.IP(), gw.MAC(), gw.IP())
	})
	_ = l.Run(2 * time.Minute)

	out := ablationOutcome{}
	if mac, ok := victim.Cache().Lookup(gw.IP()); ok && mac == l.Attacker.MAC() {
		out.poisonHeld = true
	}
	if g == nil {
		return out
	}
	// Detection and FP accounting use the incidents an operator would be
	// paged for: confirmed ones when the verifier runs, all otherwise.
	for _, inc := range g.ActionableIncidents() {
		switch {
		case inc.IP == gw.IP() || inc.IP == victim.IP():
			out.detected = true
			out.confirmed = out.confirmed || inc.Confirmed
		case churned[inc.IP]:
			out.fpAlerts++
		}
	}
	return out
}

// Table5Ablation toggles the Guard's layers on the standard scenario and
// reports what each configuration buys.
//
// Expected shape: passive-only detects but cannot confirm and pays churn
// FPs; active-only confirms with no churn FPs; the full guard does both;
// adding host protection is the only configuration that also *prevents*
// the victim's cache from holding the forgery.
func Table5Ablation(trials int) *Table {
	t := &Table{
		ID:      "Table 5",
		Title:   fmt.Sprintf("Hybrid Guard ablation on MITM + churn (%d trials)", trials),
		Columns: []string{"configuration", "detected", "confirmed", "FP alerts", "victim stayed poisoned"},
	}
	configs := []struct {
		name  string
		build func(l *labnet.LAN) *core.Guard
	}{
		{"no guard (baseline)", nil},
		{"passive only", func(l *labnet.LAN) *core.Guard {
			return core.New(l.Sched, l.Monitor, core.WithoutActive())
		}},
		{"active only", func(l *labnet.LAN) *core.Guard {
			return core.New(l.Sched, l.Monitor, core.WithoutPassive())
		}},
		{"passive + active", func(l *labnet.LAN) *core.Guard {
			return core.New(l.Sched, l.Monitor)
		}},
		{"passive + active + host protection", func(l *labnet.LAN) *core.Guard {
			g := core.New(l.Sched, l.Monitor)
			g.ProtectHost(l.Victim())
			return g
		}},
	}
	for _, cfg := range configs {
		build := cfg.build
		var detected, confirmed, fps, held int
		for _, out := range RunTrials(trials, func(seed int64) ablationOutcome {
			return runAblation(seed, build)
		}) {
			if out.detected {
				detected++
			}
			if out.confirmed {
				confirmed++
			}
			fps += out.fpAlerts
			if out.poisonHeld {
				held++
			}
		}
		frac := func(k int) string { return fmt.Sprintf("%d/%d", k, trials) }
		t.AddRow(cfg.name, frac(detected), frac(confirmed), fps, frac(held))
	}
	return t
}
