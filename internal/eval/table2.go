package eval

import (
	"fmt"
	"time"

	"repro/internal/attack"
	"repro/internal/ethaddr"
	"repro/internal/labnet"
	"repro/internal/netsim"
	"repro/internal/schemes/kernelpolicy"
	"repro/internal/sim"
	"repro/internal/stack"
)

// Table2PolicyMatrix measures, for every host cache-policy profile and
// every attack variant, whether the attack poisons the victim's cache —
// once against an empty cache (creation) and once against an established
// genuine binding (overwrite). Cells read "create/overwrite" with ✓ for a
// successful attack.
//
// Expected shape: the naive stack falls to everything; reply-only stops
// request-borne poison; no-overwrite protects established entries only;
// solicited-only stops every push but still loses the reply race.
func Table2PolicyMatrix() *Table {
	t := &Table{
		ID:      "Table 2",
		Title:   "Attack success vs host cache policy (create/overwrite; ✓ = victim poisoned)",
		Columns: []string{"policy", "gratuitous", "unsolicited-reply", "request-spoof", "reply-race"},
		Notes: []string{
			"create: attack against an empty cache; overwrite: against an established genuine binding",
			"reply-race ran with the genuine owner 2ms farther than the attacker",
		},
	}
	mark := func(b bool) string {
		if b {
			return "✓"
		}
		return "✗"
	}
	profiles := kernelpolicy.Profiles()
	variants := attack.Variants()
	type cell struct {
		ProfIdx, VarIdx int
		Profile         string
		Variant         string
	}
	var cells []cell
	for pi, prof := range profiles {
		for vi, v := range variants {
			cells = append(cells, cell{pi, vi, prof.Name, fmt.Sprint(v)})
		}
	}
	marks := CachedMap(Scope{Experiment: "table2"}, cells, func(c cell) string {
		prof := profiles[c.ProfIdx]
		v := variants[c.VarIdx]
		sc := Scope{Experiment: "table2", Params: "race " + c.Profile}
		create := runPolicyTrial(sc, prof.Policy, v, false)
		overwrite := runPolicyTrial(sc, prof.Policy, v, true)
		return mark(create) + "/" + mark(overwrite)
	})
	i := 0
	for _, prof := range profiles {
		row := []any{prof.Name}
		for range variants {
			row = append(row, marks[i])
			i++
		}
		t.AddRow(row...)
	}
	return t
}

// runPolicyTrial runs one attack trial and reports whether the victim's
// cache ends up bound to the attacker. sc scopes any race sub-trials in
// the result cache.
func runPolicyTrial(sc Scope, policy stack.Policy, v attack.Variant, established bool) bool {
	if v == attack.VariantReplyRace {
		sc.Params += fmt.Sprintf(" established=%v", established)
		return runRaceTrial(sc, policy, established, 1, 0, 2*time.Millisecond, 0) > 0
	}
	l := labnet.New(labnet.Config{
		Policy:       policy,
		WithAttacker: true,
		WithMonitor:  false,
	})
	gw, victim := l.Gateway(), l.Victim()
	if established {
		victim.Resolve(gw.IP(), nil)
		if err := l.Run(time.Second); err != nil {
			return false
		}
	}
	l.Attacker.Poison(v, gw.IP(), l.Attacker.MAC(), victim.MAC(), victim.IP())
	if err := l.Run(2 * time.Second); err != nil {
		return false
	}
	mac, ok := victim.Cache().Lookup(gw.IP())
	return ok && mac == l.Attacker.MAC()
}

// runRaceTrial runs `trials` independent reply-race attempts (fanned out
// across the trial worker pool, cached per seed under sc) and returns how
// many the attacker won (the victim cached the forged binding).
// ownerExtraLatency handicaps the genuine owner's link; attackerDelay is
// the forger's reaction delay; jitter randomizes both links.
func runRaceTrial(sc Scope, policy stack.Policy, established bool, trials int, attackerDelay, ownerExtraLatency, jitter time.Duration) int {
	wins := 0
	for _, won := range CachedTrials(sc, trials, func(seed int64) bool {
		return raceOnce(policy, established, seed, attackerDelay, ownerExtraLatency, jitter)
	}) {
		if won {
			wins++
		}
	}
	return wins
}

// raceOnce runs a single race with a custom-built topology (per-host link
// parameters are not expressible through labnet).
func raceOnce(policy stack.Policy, established bool, seed int64, attackerDelay, ownerExtraLatency, jitter time.Duration) bool {
	s := sim.NewScheduler(seed)
	sw := netsim.NewSwitch(s)
	gen := ethaddr.NewGen(seed)
	subnet := ethaddr.MustParseSubnet("192.168.88.0/24")
	base := 50 * time.Microsecond

	linkOpts := func(lat time.Duration) []netsim.LinkOption {
		opts := []netsim.LinkOption{netsim.WithLatency(lat)}
		if jitter > 0 {
			opts = append(opts, netsim.WithJitter(jitter))
		}
		return opts
	}

	victimNIC := netsim.NewNIC(s, gen.SeqMAC())
	sw.AddPort().Attach(victimNIC, linkOpts(base)...)
	victim := stack.NewHost(s, "victim", victimNIC, subnet.Host(1),
		stack.WithPolicy(policy), stack.WithCacheTTL(5*time.Second))

	ownerNIC := netsim.NewNIC(s, gen.SeqMAC())
	sw.AddPort().Attach(ownerNIC, linkOpts(base+ownerExtraLatency)...)
	owner := stack.NewHost(s, "gateway", ownerNIC, subnet.Host(254),
		stack.WithPolicy(policy))

	atkNIC := netsim.NewNIC(s, gen.SeqMAC())
	sw.AddPort().Attach(atkNIC, linkOpts(base)...)
	attacker := attack.New(s, atkNIC, subnet.Host(66))

	// The outcome is sampled shortly after resolution completes, before
	// cache expiry can blur who won.
	poisoned := false
	race := func() {
		attacker.ArmReplyRace(owner.IP(), victim.IP(), attackerDelay)
		victim.Resolve(owner.IP(), func(ethaddr.MAC, bool) {
			s.After(100*time.Millisecond, func() {
				mac, ok := victim.Cache().Lookup(owner.IP())
				poisoned = ok && mac == attacker.MAC()
			})
		})
	}
	if established {
		// Let the genuine binding land, then let it expire so the victim
		// re-resolves into the race.
		victim.Resolve(owner.IP(), nil)
		s.At(7*time.Second, race) // past the 5s TTL
	} else {
		race()
	}
	if err := s.RunUntil(20 * time.Second); err != nil {
		return false
	}
	return poisoned
}
