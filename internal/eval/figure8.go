package eval

import (
	"fmt"
	"time"

	"repro/internal/stats"
)

// Figure8FaultIntensitySweep sweeps the composite fault plan's intensity at
// a finer grain than Table 8 and plots, per scheme, the median time from
// attack start to first correct alert. Trials where the scheme never
// detected contribute the horizon-minus-attack bound instead of being
// dropped — silently excluding misses would make a degrading scheme look
// faster as it fails more often.
//
// Expected shape: every curve rises with intensity (lost sightings and lost
// probes both delay the first confirmation); the single-sighting passive
// schemes rise gently, while probe-verified schemes rise faster once
// verification rounds start timing out under burst loss.
func Figure8FaultIntensitySweep(trialsPerPoint int) *Figure {
	f := &Figure{
		ID:     "Figure 8",
		Title:  fmt.Sprintf("Median time-to-detect vs fault intensity (%d trials/point)", trialsPerPoint),
		XLabel: "fault_intensity",
		YLabel: "median_time_to_detect_ms",
		XFmt:   "%.2f",
		YFmt:   "%.1f",
	}
	intensities := []float64{0, 0.25, 0.5, 0.75, 1.0}
	attackAt := 60 * time.Second
	horizon := 120 * time.Second
	var cfgs []faultTrialConfig
	for _, scheme := range DetectionSchemes() {
		for _, x := range intensities {
			for seed := int64(1); seed <= int64(trialsPerPoint); seed++ {
				cfgs = append(cfgs, faultTrialConfig{
					scheme:    scheme,
					seed:      seed + 9000, // distinct seed space from Table 8
					intensity: x,
					hosts:     8,
					attackAt:  attackAt,
					horizon:   horizon,
				})
			}
		}
	}
	results := CachedMap(Scope{Experiment: "figure8"}, cfgs, runFaultTrial)
	cell := 0
	for _, scheme := range DetectionSchemes() {
		for _, x := range intensities {
			var ttd []float64
			for _, res := range results[cell*trialsPerPoint : (cell+1)*trialsPerPoint] {
				if res.detected {
					ttd = append(ttd, res.latency.Seconds()*1000)
				} else {
					// Censored at the observation bound: the attack ran from
					// attackAt (plus up to 5s of phase) to the horizon
					// without a correct alert.
					ttd = append(ttd, (horizon-attackAt).Seconds()*1000)
				}
			}
			cell++
			f.AddPoint(scheme, x, stats.Quantile(ttd, 0.5))
		}
	}
	return f
}
