package eval

import (
	"time"

	"repro/internal/labnet"
)

// The standard attack testbed shared by Tables 5–9 and the detection trials
// (Table 3, Figures 1/4/8): an n-station LAN with an attacker and a
// mirror-port monitor, periodic gratuitous refresh keeping passive observers
// fed, mutually seeded caches, and the periodic gateway-poisoning MITM.
// Each trial composes these pieces in its own order; the helpers never draw
// from the scheduler's RNG themselves, so extracting them preserves every
// trial's event sequence byte for byte.

// newAttackLAN builds the standard testbed topology: hosts regular stations
// (gateway first, conventional victim second), one attacker station, and
// the monitoring appliance on the mirror port.
func newAttackLAN(seed int64, hosts int, jitter time.Duration) *labnet.LAN {
	return labnet.New(labnet.Config{
		Seed:         seed,
		Hosts:        hosts,
		WithAttacker: true,
		WithMonitor:  true,
		LinkJitter:   jitter,
	})
}

// warmAttackLAN installs the standard background workload: every station
// re-announces every 15s (standing in for normal ARP refresh traffic, and
// keeping passive schemes observing bindings), and all caches are mutually
// seeded so the attacked binding is long established before any attack.
func warmAttackLAN(l *labnet.LAN) {
	for _, h := range l.Hosts {
		h := h
		l.Sched.Every(15*time.Second, h.SendGratuitous)
	}
	l.SeedMutualCaches()
}

// launchGatewayMITM schedules the standard attack at the given instant:
// periodic bidirectional gateway↔victim poisoning with a relay, the
// man-in-the-middle posture every detection experiment measures against.
func launchGatewayMITM(l *labnet.LAN, at time.Duration) {
	gw, victim := l.Gateway(), l.Victim()
	l.Sched.At(at, func() {
		l.Attacker.PoisonPeriodically(2*time.Second, victim.MAC(), victim.IP(), gw.MAC(), gw.IP())
		l.Attacker.RelayBetween(victim.MAC(), victim.IP(), gw.MAC(), gw.IP())
	})
}
