package eval

import (
	"fmt"
	"time"

	"repro/internal/labnet"
	"repro/internal/schemes"
	"repro/internal/schemes/registry"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/telemetry/causal"
)

// Detection-latency attribution (Table 10). Every other latency number in
// the evaluation treats "attack frame in → alert out" as a black box; this
// experiment opens it with the causal tracer. Each trial runs the standard
// gateway MITM with span tracing enabled, takes the first alert naming the
// attacked binding whose span chain reaches the injected attack frame, and
// charges each hop-to-hop gap along that chain to a pipeline stage.

// detectionStages is the stage taxonomy, in pipeline order. Each Breakdown
// kind (the span kinds the fabric emits) maps onto one stage:
//
//	inject  — attacker-side frame construction (attack → tx gap)
//	queue   — NIC-to-wire handoff (tx → link gap)
//	wire    — link transit: latency + serialization + jitter (link → switch)
//	switch  — CAM lookup, filters, mirror fan-out (switch → scheme)
//	inspect — the scheme's own analysis, including any probe round-trip it
//	          schedules before committing to an alert (scheme → alert)
var detectionStages = []string{"inject", "queue", "wire", "switch", "inspect"}

// StageOfKind maps a causal span kind to its pipeline stage name. Unknown
// kinds map to themselves so novel hops surface rather than vanish.
func StageOfKind(kind string) string {
	switch kind {
	case "attack":
		return "inject"
	case "tx":
		return "queue"
	case "link":
		return "wire"
	case "switch":
		return "switch"
	case "scheme":
		return "inspect"
	}
	return kind
}

// Metric names for the live attribution surface (arpguard, the ops
// endpoint) — the same numbers Table 10 aggregates offline.
const (
	MetricDetectionStage = "detection_stage_seconds"
	MetricDetectionTotal = "detection_total_seconds"
)

// DetectionStageBuckets spans the fabric's dynamic range: microsecond wire
// hops up to multi-second probe windows.
var DetectionStageBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 5, 15,
}

// ObserveDetectionStages records one attributed detection into reg:
// detection_stage_seconds{scheme,stage} per stage plus
// detection_total_seconds{scheme} end-to-end. stages is keyed by stage name
// (StageOfKind output). Shared by the Table 10 trials and the live tracing
// mode, so offline tables and scraped metrics agree by construction.
func ObserveDetectionStages(reg *telemetry.Registry, scheme string, stages map[string]time.Duration, total time.Duration) {
	if reg == nil {
		return
	}
	for stage, d := range stages {
		reg.Histogram(MetricDetectionStage, DetectionStageBuckets,
			telemetry.L("scheme", scheme), telemetry.L("stage", stage)).ObserveDuration(d)
	}
	reg.Histogram(MetricDetectionTotal, DetectionStageBuckets,
		telemetry.L("scheme", scheme)).ObserveDuration(total)
}

// AttributeFirstDetection finds the first alert span in rec that names one
// of the given IPs at or after `after` and whose causal chain reaches an
// "attack" root, and returns its stage-charged latency breakdown. ok is
// false when no alert chains back to an injected frame (not detected, or
// the chain fell out of the span ring).
func AttributeFirstDetection(rec *causal.Recorder, after time.Duration, ips ...string) (stages map[string]time.Duration, total time.Duration, ok bool) {
	named := func(ip string) bool {
		for _, want := range ips {
			if ip == want {
				return true
			}
		}
		return false
	}
	for _, al := range rec.Find(func(sp causal.Span) bool {
		return sp.Kind == "alert" && sp.Start >= after && named(sp.Attr("ip"))
	}) {
		path := rec.PathToRoot(al.ID)
		if len(path) == 0 || path[0].Kind != "attack" {
			continue
		}
		kinds, tot, bok := rec.Breakdown(al.ID)
		if !bok {
			continue
		}
		out := make(map[string]time.Duration, len(kinds))
		for kind, d := range kinds {
			out[StageOfKind(kind)] += d
		}
		return out, tot, true
	}
	return nil, 0, false
}

// stageTrialConfig parameterizes one traced attribution trial.
type stageTrialConfig struct {
	scheme   string
	seed     int64
	hosts    int
	attackAt time.Duration
	horizon  time.Duration
}

// stageAttribution is one trial's outcome: the first attack-correlated
// alert's latency, charged per stage.
type stageAttribution struct {
	attributed bool
	stages     map[string]time.Duration
	total      time.Duration
}

// runStageTrial runs the standard gateway MITM with causal tracing on and
// attributes the first correlated detection. The topology, warm-up, jitter,
// and attack-phase randomization mirror runDetectionTrial so the latencies
// decomposed here are the same population Table 3 quantizes.
func runStageTrial(cfg stageTrialConfig) stageAttribution {
	reg := telemetry.New()
	l := labnet.New(labnet.Config{
		Seed:         cfg.seed,
		Hosts:        cfg.hosts,
		WithAttacker: true,
		WithMonitor:  true,
		LinkJitter:   200 * time.Microsecond,
		Telemetry:    reg,
		Tracing:      true,
		// Deep enough that the attack chain is still resident when the run
		// ends: the horizon is cut short after the attack so the tail of
		// benign traffic cannot evict the spans under analysis.
		TracingLimit: 1 << 16,
	})
	sink := schemes.NewSink()
	sink.Instrument(reg)
	// Deploy against the instrumented environment (not deployDetectionScheme,
	// which passes a nil registry): the scheme's tap only wraps itself in a
	// "scheme" span when the environment carries the causal recorder, and
	// without that hop every probe window would be charged to the switch.
	if _, err := registry.Deploy(l.Env(sink, reg), cfg.scheme, detectionParams[cfg.scheme]); err != nil {
		panic(fmt.Sprintf("eval: deploy %s: %v", cfg.scheme, err)) // a bug, not a result
	}
	warmAttackLAN(l)
	attackAt := cfg.attackAt + time.Duration(l.Sched.Rand().Int63n(int64(5*time.Second)))
	launchGatewayMITM(l, attackAt)
	_ = l.Run(cfg.horizon)

	gw, victim := l.Gateway(), l.Victim()
	stages, total, ok := AttributeFirstDetection(reg.Causal(), attackAt,
		gw.IP().String(), victim.IP().String())
	if !ok {
		return stageAttribution{}
	}
	ObserveDetectionStages(reg, cfg.scheme, stages, total)
	return stageAttribution{attributed: true, stages: stages, total: total}
}

// stageCell renders one stage-latency quantile in ms (µs-scale hops keep
// three decimals so the wire stage doesn't round to zero).
func stageCell(vals []float64, q float64) string {
	if len(vals) == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.3fms", stats.Quantile(vals, q))
}

// Table10StageAttribution decomposes each scheme's detection latency into
// pipeline stages via causal tracing: where does the time between the
// injected poison frame and the alert actually go?
//
// Expected shape: the fabric stages (queue, wire, switch) are microseconds
// and near-identical across schemes — the pipeline's fixed cost. The spread
// lives entirely in inspect: passive schemes alert within the inspection
// event itself (~0), while verifying schemes pay their probe round-trip
// there, so inspect share ≈ 1 for every scheme that waits before alerting.
func Table10StageAttribution(trials int) *Table {
	t := &Table{
		ID: "Table 10",
		Title: fmt.Sprintf(
			"Detection-latency attribution per pipeline stage (%d traced trials, 8 hosts)", trials),
		Columns: []string{"scheme", "attributed", "queue p50", "wire p50", "switch p50", "inspect p50", "end-to-end p50", "inspect share"},
		Notes: []string{
			"each trial traces the standard gateway MITM and charges the first correlated alert's span chain per stage",
			"attributed: trials whose first attack alert causally chains to the injected frame",
			"inspect includes any probe round-trip the scheme schedules before alerting; share = inspect / end-to-end (mean)",
		},
	}

	var cfgs []stageTrialConfig
	for _, scheme := range DetectionSchemes() {
		for seed := int64(1); seed <= int64(trials); seed++ {
			cfgs = append(cfgs, stageTrialConfig{
				scheme:   scheme,
				seed:     seed + 10000, // distinct seed space from Tables 3/7/8/9
				hosts:    8,
				attackAt: 60 * time.Second,
				horizon:  90 * time.Second,
			})
		}
	}
	results := CachedMap(Scope{Experiment: "table10"}, cfgs, runStageTrial)

	for si, scheme := range DetectionSchemes() {
		attributed := 0
		per := make(map[string][]float64, len(detectionStages))
		var totals []float64
		var shareSum float64
		for _, res := range results[si*trials : (si+1)*trials] {
			if !res.attributed {
				continue
			}
			attributed++
			for _, st := range detectionStages {
				per[st] = append(per[st], res.stages[st].Seconds()*1000)
			}
			totals = append(totals, res.total.Seconds()*1000)
			if res.total > 0 {
				shareSum += res.stages["inspect"].Seconds() / res.total.Seconds()
			}
		}
		share := "n/a"
		if attributed > 0 {
			share = fmt.Sprintf("%.2f", shareSum/float64(attributed))
		}
		t.AddRow(scheme,
			fmt.Sprintf("%d/%d", attributed, trials),
			stageCell(per["queue"], 0.5),
			stageCell(per["wire"], 0.5),
			stageCell(per["switch"], 0.5),
			stageCell(per["inspect"], 0.5),
			stageCell(totals, 0.5),
			share,
		)
	}
	return t
}
