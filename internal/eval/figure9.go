package eval

import (
	"fmt"
	"time"

	"repro/internal/labnet"
	"repro/internal/schemes/registry"
	"repro/internal/stats"
)

// campusTrialConfig parameterizes one campus-scale trial: a routed
// multi-LAN topology with `size` total stations, a router↔victim MITM in
// LAN 0, and arpwatch deployed per-LAN (the paper's per-LAN-cost vantage,
// the one that stays deployable at campus scale).
type campusTrialConfig struct {
	size    int
	seed    int64
	workers int
	horizon time.Duration
}

// campusTrialResult is one campus trial's outcome.
type campusTrialResult struct {
	hosts    int
	detected bool
	latency  time.Duration
	frames   uint64 // frames the whole fabric carried to the horizon
}

// runCampusTrial assembles a campus sized for cfg.size hosts, deploys
// arpwatch on every LAN, runs the standard gateway MITM inside LAN 0, and
// reports the correlated first-detection latency plus fabric throughput.
func runCampusTrial(cfg campusTrialConfig) campusTrialResult {
	lans, perLAN := labnet.SizeCampus(cfg.size)
	fanout := perLAN / 256
	if fanout < 4 {
		fanout = 4
	}
	c := labnet.NewCampus(labnet.CampusConfig{
		Seed:        cfg.seed,
		LANs:        lans,
		HostsPerLAN: perLAN,
		Workers:     cfg.workers,
		// Background load proportional to the population, so throughput
		// measures the fabric actually working at that scale.
		BackgroundFanout: fanout,
		WithAttacker:     true,
	})
	defer c.Recycle()
	if _, err := c.Deploy(registry.NameArpwatch, registry.P{"seedGateway": false}); err != nil {
		panic(fmt.Sprintf("eval: campus deploy arpwatch: %v", err)) // a bug, not a result
	}

	lan0 := c.LANs[0]
	atk, victim := lan0.Attacker, lan0.Victim()
	gwIP, gwMAC := lan0.Router.IP(), lan0.Router.MAC()
	// Same phase randomization as the flat-LAN trials: the attack lands at
	// a seeded random offset within a 5s window.
	attackAt := 10*time.Second + time.Duration(lan0.Sched.Rand().Int63n(int64(5*time.Second)))
	lan0.Sched.At(attackAt, func() {
		atk.PoisonPeriodically(2*time.Second, victim.MAC(), victim.IP(), gwMAC, gwIP)
		atk.RelayBetween(victim.MAC(), victim.IP(), gwMAC, gwIP)
	})

	_ = c.Run(cfg.horizon)

	res := campusTrialResult{hosts: c.TotalHosts(), frames: c.Frames()}
	for _, a := range c.MergedAlerts() {
		if a.LAN == 0 && (a.IP == gwIP || a.IP == victim.IP()) && a.At >= attackAt {
			res.detected = true
			res.latency = a.At - attackAt
			break
		}
	}
	if !res.detected {
		// Censored at the observation bound, like every latency experiment.
		res.latency = cfg.horizon - attackAt
	}
	return res
}

// Figure9CampusScaling sweeps the campus population from hundreds to a
// million stations and plots, per size, the median detection latency of
// the per-LAN arpwatch deployment alongside the fabric throughput the
// sharded engine sustained. Latency staying flat while throughput grows
// with the population is the deployment-cost argument made quantitative:
// a per-LAN vantage keeps working at campus scale because each appliance
// still watches one segment, no matter how many segments exist.
func Figure9CampusScaling(sizes []int, trialsPerPoint, workers int, horizon time.Duration) *Figure {
	f := &Figure{
		ID: "Figure 9",
		Title: fmt.Sprintf("Campus scaling: detection latency and fabric throughput vs population (%d trials/point, %v horizon)",
			trialsPerPoint, horizon),
		XLabel: "hosts",
		YLabel: "latency_ms | frames_per_sim_sec",
		XFmt:   "%.0f",
		YFmt:   "%.1f",
	}
	var cfgs []campusTrialConfig
	for _, size := range sizes {
		for seed := int64(1); seed <= int64(trialsPerPoint); seed++ {
			cfgs = append(cfgs, campusTrialConfig{
				size:    size,
				seed:    seed + 11000, // distinct seed space from the flat-LAN trials
				workers: workers,
				horizon: horizon,
			})
		}
	}
	scope := Scope{Experiment: "figure9", Params: fmt.Sprintf("horizon=%v", horizon)}
	results := CachedMap(scope, cfgs, runCampusTrial)
	for si, size := range sizes {
		var latencies, rates []float64
		for _, res := range results[si*trialsPerPoint : (si+1)*trialsPerPoint] {
			latencies = append(latencies, res.latency.Seconds()*1000)
			rates = append(rates, float64(res.frames)/horizon.Seconds())
		}
		f.AddPoint("arpwatch_latency_ms", float64(size), stats.Quantile(latencies, 0.5))
		f.AddPoint("fabric_frames_per_sec", float64(size), stats.Quantile(rates, 0.5))
	}
	return f
}
