package eval

import (
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/labnet"
	"repro/internal/schemes/registry"
	"repro/internal/stats"
)

// figure10Deployment is one compared deployment: a single detection scheme
// or the best Table 9 defense-in-depth stack.
type figure10Deployment struct {
	label  string
	scheme string
	stack  registry.Stack
}

// figure10Deployments lists the deployments Figure 10 stress-tests: every
// detection scheme from the Table 3 comparison plus the strongest Table 9
// composition (switch enforcement backed by a passive monitor).
func figure10Deployments() []figure10Deployment {
	var out []figure10Deployment
	for _, s := range DetectionSchemes() {
		out = append(out, figure10Deployment{label: s, scheme: s})
	}
	best := table9Stacks()[0] // dai+arpwatch+port-security
	out = append(out, figure10Deployment{label: best.Label(), stack: best})
	return out
}

// figure10FaultPlan is the adverse-conditions script every Figure 10 trial
// runs under, expressed in the same hierarchical fault grammar scenarios
// use: a bursty-loss window across the attacked segment's access links, a
// backbone partition that cuts the attacked LAN off from every peer while
// the MITM is live, and a campus-wide router CAM flush during recovery.
func figure10FaultPlan() *faults.Plan {
	return &faults.Plan{Events: []faults.Event{
		{Type: faults.TypeGilbertElliott, AtSeconds: 5, DurationSeconds: 20,
			PGoodBad: 0.05, PBadGood: 0.2, LossBad: 0.6, LinkAt: "lan:0/link:*"},
		{Type: faults.TypeTrunkPartition, AtSeconds: 12, DurationSeconds: 10,
			Trunk: "trunk:0-*"},
		{Type: faults.TypeRouterFlush, AtSeconds: 20, Lan: "lan:*"},
	}}
}

// figure10TrialConfig parameterizes one faulted-campus trial.
type figure10TrialConfig struct {
	scheme  string         // single-scheme deployments
	stack   registry.Stack // non-empty: deploy the stack instead
	size    int
	seed    int64
	workers int
	horizon time.Duration
}

// figure10TrialResult is one trial's outcome.
type figure10TrialResult struct {
	hosts    int
	detected bool
	latency  time.Duration
	faults   uint64 // fault events the plan demonstrably injected
}

// runFigure10Trial assembles a campus sized for cfg.size hosts, installs
// the deployment on every LAN, arms the standard LAN-0 gateway MITM, arms
// the fault plan, and reports first-detection latency under adversity.
func runFigure10Trial(cfg figure10TrialConfig) figure10TrialResult {
	lans, perLAN := labnet.SizeCampus(cfg.size)
	fanout := perLAN / 256
	if fanout < 4 {
		fanout = 4
	}
	campusCfg := labnet.CampusConfig{
		Seed:             cfg.seed,
		LANs:             lans,
		HostsPerLAN:      perLAN,
		Workers:          cfg.workers,
		BackgroundFanout: fanout,
		WithAttacker:     true,
	}
	if len(cfg.stack.Schemes) > 0 {
		opts, err := registry.StackHostOptions(cfg.stack)
		if err != nil {
			panic(fmt.Sprintf("eval: stack host options: %v", err)) // a bug, not a result
		}
		campusCfg.HostOptions = opts
	}
	c := labnet.NewCampus(campusCfg)
	defer c.Recycle()
	if len(cfg.stack.Schemes) > 0 {
		if _, err := c.DeployStack(cfg.stack); err != nil {
			panic(fmt.Sprintf("eval: campus deploy stack: %v", err)) // a bug, not a result
		}
	} else if _, err := c.Deploy(cfg.scheme, detectionParams[cfg.scheme]); err != nil {
		panic(fmt.Sprintf("eval: campus deploy %s: %v", cfg.scheme, err)) // a bug, not a result
	}

	lan0 := c.LANs[0]
	atk, victim := lan0.Attacker, lan0.Victim()
	gwIP, gwMAC := lan0.Router.IP(), lan0.Router.MAC()
	// The same phase randomization as Figure 9's trials; the attack lands
	// inside the impairment window and just before the backbone partition.
	attackAt := 10*time.Second + time.Duration(lan0.Sched.Rand().Int63n(int64(5*time.Second)))
	lan0.Sched.At(attackAt, func() {
		atk.PoisonPeriodically(2*time.Second, victim.MAC(), victim.IP(), gwMAC, gwIP)
		atk.RelayBetween(victim.MAC(), victim.IP(), gwMAC, gwIP)
	})

	// Same ordering contract as the scenario engine: faults arm after
	// scheme deployment and attack arming.
	ctl, err := faults.Apply(figure10FaultPlan(), c.FaultEnv())
	if err != nil {
		panic(fmt.Sprintf("eval: figure 10 fault plan rejected: %v", err)) // a bug, not a result
	}

	_ = c.Run(cfg.horizon)

	res := figure10TrialResult{hosts: c.TotalHosts(), faults: ctl.Stats().Total()}
	for _, a := range c.MergedAlerts() {
		if a.LAN == 0 && (a.IP == gwIP || a.IP == victim.IP()) && a.At >= attackAt {
			res.detected = true
			res.latency = a.At - attackAt
			break
		}
	}
	if !res.detected {
		// Censored at the observation bound, like every latency experiment.
		res.latency = cfg.horizon - attackAt
	}
	return res
}

// Figure10FaultedCampus sweeps the campus population from hundreds to a
// million stations and plots, per deployment, the median detection latency
// under a fixed adversity script: a lossy access segment, a backbone
// partition isolating the attacked LAN, and a campus-wide router flush.
// Figure 9 argued the per-LAN vantage scales; this figure argues it also
// degrades gracefully — detection is a segment-local property, so cutting
// the backbone or flushing the routed core must not blind it.
func Figure10FaultedCampus(sizes []int, trialsPerPoint, workers int, horizon time.Duration) *Figure {
	f := &Figure{
		ID: "Figure 10",
		Title: fmt.Sprintf("Faulted campus: detection latency per deployment vs population (%d trials/point, %v horizon; lossy LAN 0 + backbone partition + router flush)",
			trialsPerPoint, horizon),
		XLabel: "hosts",
		YLabel: "latency_ms",
		XFmt:   "%.0f",
		YFmt:   "%.1f",
	}
	deployments := figure10Deployments()
	var cfgs []figure10TrialConfig
	for _, d := range deployments {
		for _, size := range sizes {
			for seed := int64(1); seed <= int64(trialsPerPoint); seed++ {
				cfgs = append(cfgs, figure10TrialConfig{
					scheme:  d.scheme,
					stack:   d.stack,
					size:    size,
					seed:    seed + 12000, // distinct seed space from Figure 9
					workers: workers,
					horizon: horizon,
				})
			}
		}
	}
	scope := Scope{Experiment: "figure10", Params: fmt.Sprintf("horizon=%v", horizon)}
	results := CachedMap(scope, cfgs, runFigure10Trial)
	cell := 0
	for _, d := range deployments {
		for _, size := range sizes {
			var latencies []float64
			for _, res := range results[cell*trialsPerPoint : (cell+1)*trialsPerPoint] {
				latencies = append(latencies, res.latency.Seconds()*1000)
			}
			cell++
			f.AddPoint(d.label, float64(size), stats.Quantile(latencies, 0.5))
		}
	}
	return f
}
