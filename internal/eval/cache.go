package eval

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"repro/internal/telemetry"
)

// The seed-addressed result cache memoizes individual trial results under
// (experiment ID, canonical parameter hash, cell key), where the cell key is
// the trial seed for seed-swept experiments and the canonical serialization
// of the trial config for grid-swept ones. Because every trial is a pure
// function of its seed and parameters (the per-trial isolation invariant the
// parallel runner already relies on), a warm cache lets arpbench re-render an
// artifact, or re-run a sweep with one knob changed, executing only the
// cells whose parameterization actually changed — an unchanged experiment
// re-renders with zero new trials.
//
// The cache is process-wide and disabled by default; CachedTrials/CachedMap
// degenerate to RunTrials/Map (no locks, no keys) while it is off.

// Telemetry metric names the cache reports through when enabled with a
// registry (label: experiment).
const (
	MetricCacheHits   = "eval_result_cache_hits_total"
	MetricCacheMisses = "eval_result_cache_misses_total"
)

// Scope names one experiment execution context for the cache: the
// experiment ID plus the canonical serialization of every parameter that
// shapes a trial but is not part of the per-cell key (horizons, grid
// constants, deployment overlays). Trial seeds and grid configs are appended
// per cell, so growing a sweep reuses every previously computed cell.
type Scope struct {
	Experiment string
	Params     string
}

// key builds the full cache key for one cell: the experiment ID, the hash of
// the canonical scope parameters, and the cell's own key.
func (sc Scope) key(cell string) string {
	sum := sha256.Sum256([]byte(sc.Params))
	return sc.Experiment + "\x00" + hex.EncodeToString(sum[:12]) + "\x00" + cell
}

// resultCache is one enabled cache generation.
type resultCache struct {
	mu      sync.Mutex
	entries map[string]any
	hits    uint64
	misses  uint64
	tel     *telemetry.Registry
}

var (
	cacheMu     sync.RWMutex
	activeCache *resultCache
)

// EnableResultCache installs a fresh, empty result cache. tel, when
// non-nil, receives hit/miss counters (MetricCacheHits/MetricCacheMisses,
// labelled by experiment); the registry is only ever touched under the
// cache's own lock, so the single-owner telemetry contract holds even with
// trials fanned out across the worker pool.
func EnableResultCache(tel *telemetry.Registry) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	activeCache = &resultCache{entries: make(map[string]any), tel: tel}
}

// DisableResultCache removes the active cache; subsequent runs execute
// every trial again.
func DisableResultCache() {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	activeCache = nil
}

// ResultCacheStats reports the active cache's lifetime hit and miss counts
// (both zero when no cache is enabled).
func ResultCacheStats() (hits, misses uint64) {
	c := currentCache()
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// currentCache returns the active cache, nil when caching is off.
func currentCache() *resultCache {
	cacheMu.RLock()
	defer cacheMu.RUnlock()
	return activeCache
}

// cacheGet looks one cell up, counting a hit or miss. A stored value of the
// wrong type (two call sites colliding on a key) is treated as a miss so the
// caller recomputes rather than panicking on the assertion.
func cacheGet[R any](c *resultCache, experiment, key string) (R, bool) {
	var zero R
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.entries[key]; ok {
		if r, ok := v.(R); ok {
			c.hits++
			c.tel.Counter(MetricCacheHits, telemetry.L("experiment", experiment)).Inc()
			return r, true
		}
	}
	c.misses++
	c.tel.Counter(MetricCacheMisses, telemetry.L("experiment", experiment)).Inc()
	return zero, false
}

// cachePut stores one computed cell.
func (c *resultCache) put(key string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = v
}

// CachedTrials is RunTrials through the result cache: seeds whose results
// are cached under sc are returned without running; only the missing seeds
// fan out across the worker pool. With the cache disabled it is exactly
// RunTrials.
func CachedTrials[R any](sc Scope, trials int, trial func(seed int64) R) []R {
	c := currentCache()
	if c == nil {
		return RunTrials(trials, trial)
	}
	if trials < 0 {
		trials = 0
	}
	out := make([]R, trials)
	var missIdx []int
	var missKey []string
	for i := 0; i < trials; i++ {
		key := sc.key(fmt.Sprintf("seed=%d", int64(i)+1))
		if r, ok := cacheGet[R](c, sc.Experiment, key); ok {
			out[i] = r
			continue
		}
		missIdx = append(missIdx, i)
		missKey = append(missKey, key)
	}
	forIndexed(len(missIdx), func(j int) {
		i := missIdx[j]
		r := trial(int64(i) + 1)
		out[i] = r
		c.put(missKey[j], r)
	})
	return out
}

// CachedMap is Map through the result cache: each config's cell key is its
// canonical serialization, so re-running a sweep recomputes only the cells
// whose config changed. With the cache disabled it is exactly Map.
func CachedMap[C, R any](sc Scope, cfgs []C, run func(C) R) []R {
	c := currentCache()
	if c == nil {
		return Map(cfgs, run)
	}
	out := make([]R, len(cfgs))
	var missIdx []int
	var missKey []string
	for i := range cfgs {
		key := sc.key(fmt.Sprintf("%+v", cfgs[i]))
		if r, ok := cacheGet[R](c, sc.Experiment, key); ok {
			out[i] = r
			continue
		}
		missIdx = append(missIdx, i)
		missKey = append(missKey, key)
	}
	forIndexed(len(missIdx), func(j int) {
		i := missIdx[j]
		r := run(cfgs[i])
		out[i] = r
		c.put(missKey[j], r)
	})
	return out
}
