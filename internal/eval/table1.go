package eval

import (
	"fmt"

	"repro/internal/analysis"
)

// Table1PropertyMatrix renders the paper's central qualitative comparison:
// one row per scheme, graded on attack coverage and cost axes. The rest of
// the evaluation validates these cells empirically.
func Table1PropertyMatrix() *Table {
	t := &Table{
		ID:    "Table 1",
		Title: "Scheme property matrix (coverage per attack variant; cost grades)",
		Columns: []string{
			"scheme", "role", "where",
			"gratuit.", "unsolic.", "req-spoof", "race",
			"FPs", "traffic", "compute", "deploy", "incr", "dhcp",
		},
	}
	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	for _, p := range analysis.Matrix() {
		t.AddRow(
			p.Name, p.Role, p.Residence,
			p.VsGratuitous, p.VsUnsolicited, p.VsRequestSpoof, p.VsReplyRace,
			p.FalsePositives, p.TrafficCost, p.ComputeCost, p.DeployCost,
			yn(p.Incremental), yn(p.DHCPCompatible),
		)
	}
	for _, p := range analysis.Matrix() {
		t.Notes = append(t.Notes, fmt.Sprintf("%s: %s", p.Name, p.Notes))
	}
	return t
}

// Table1Recommendations renders the environment-scored rankings.
func Table1Recommendations() *Table {
	t := &Table{
		ID:      "Table 1b",
		Title:   "Scheme ranking per deployment environment (analysis scores)",
		Columns: []string{"environment", "1st", "2nd", "3rd", "last"},
	}
	for _, env := range analysis.StandardEnvironments() {
		recs := analysis.Recommend(env)
		cell := func(r analysis.Recommendation) string {
			return fmt.Sprintf("%s(%+d)", r.Scheme.Name, r.Score)
		}
		t.AddRow(env.Name, cell(recs[0]), cell(recs[1]), cell(recs[2]), cell(recs[len(recs)-1]))
	}
	return t
}
