package arpwatch

import (
	"time"

	"repro/internal/schemes/registry"
)

// Params configures an arpwatch deployment.
type Params struct {
	// SeedGateway pre-loads the gateway's true binding into the database.
	SeedGateway bool `json:"seedGateway"`
	// SeedVictim pre-loads the conventional victim's binding.
	SeedVictim bool `json:"seedVictim"`
	// HoldDownSeconds suppresses repeat flip-flop alerts for the same
	// binding; 0 keeps the scheme default (20s).
	HoldDownSeconds float64 `json:"holdDownSeconds"`
	// FlipFlopThreshold is how many flips page; 0 keeps the scheme default.
	FlipFlopThreshold int `json:"flipFlopThreshold"`
	// NewStationAlerts pages on previously unseen bindings.
	NewStationAlerts bool `json:"newStationAlerts"`
}

func init() {
	registry.Register(registry.Factory{
		Name:        registry.NameArpwatch,
		Package:     "arpwatch",
		Description: "passive binding database on the mirror port; pages on flip-flops (classic arpwatch)",
		Deployment:  registry.Deployment{Vantage: registry.VantageMirrorPort, Cost: registry.CostPerLAN},
		DefaultParams: func() any {
			return &Params{SeedGateway: true}
		},
		// Handle is the *Watcher.
		Deploy: func(env *registry.Env, params any) (*registry.Instance, error) {
			p := params.(*Params)
			var opts []Option
			if p.HoldDownSeconds > 0 {
				opts = append(opts, WithHoldDown(time.Duration(p.HoldDownSeconds*float64(time.Second))))
			}
			if p.FlipFlopThreshold > 0 {
				opts = append(opts, WithFlipFlopThreshold(p.FlipFlopThreshold))
			}
			if p.NewStationAlerts {
				opts = append(opts, WithNewStationAlerts())
			}
			w := New(env.Sched, env.Sink, opts...)
			if p.SeedGateway {
				w.Seed(env.Gateway().IP(), env.Gateway().MAC())
			}
			if p.SeedVictim {
				v := env.Victim()
				w.Seed(v.IP(), v.MAC())
			}
			env.AddTap(registry.NameArpwatch, w.Observe)
			return &registry.Instance{Handle: w}, nil
		},
	})
}
