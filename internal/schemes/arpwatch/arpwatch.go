// Package arpwatch implements the passive network-monitoring detection
// scheme: a database of observed IP↔MAC pairings fed from a mirror port,
// raising flip-flop alerts when a live binding changes and new-station
// notices when an unseen pairing appears — the behaviour of the classic
// arpwatch tool the paper's analysis evaluates.
//
// Being purely passive it adds zero traffic, but it cannot tell a poisoning
// flip-flop from a benign DHCP reassignment (the false-positive axis), and
// it cannot see the first poisoning of a binding it has never observed.
package arpwatch

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/arppkt"
	"repro/internal/ethaddr"
	"repro/internal/frame"
	"repro/internal/netsim"
	"repro/internal/schemes"
	"repro/internal/sim"
)

// entry is one observed pairing.
type entry struct {
	mac      ethaddr.MAC
	lastSeen time.Duration
	flips    int
}

// Option configures the Watcher.
type Option func(*Watcher)

// WithHoldDown suppresses repeat flip-flop alerts for the same IP within d
// (default 20s, mirroring the log-damping real deployments use).
func WithHoldDown(d time.Duration) Option {
	return func(w *Watcher) { w.holdDown = d }
}

// WithNewStationAlerts enables alerts for first-seen bindings (off by
// default: on a fresh deployment every host would page).
func WithNewStationAlerts() Option {
	return func(w *Watcher) { w.alertNew = true }
}

// WithFlipFlopThreshold requires n binding changes for the same IP inside
// the hold-down window before alerting (default 1: every change alerts, as
// classic arpwatch does).
func WithFlipFlopThreshold(n int) Option {
	return func(w *Watcher) { w.flipThreshold = n }
}

// Watcher is the passive monitor.
type Watcher struct {
	sched         *sim.Scheduler
	sink          *schemes.Sink
	db            map[ethaddr.IPv4]*entry
	lastAlert     map[ethaddr.IPv4]time.Duration
	holdDown      time.Duration
	alertNew      bool
	flipThreshold int
	observed      uint64
}

var _ schemes.Detector = (*Watcher)(nil)

// New creates a watcher reporting into sink.
func New(s *sim.Scheduler, sink *schemes.Sink, opts ...Option) *Watcher {
	w := &Watcher{
		sched:         s,
		sink:          sink,
		db:            make(map[ethaddr.IPv4]*entry),
		lastAlert:     make(map[ethaddr.IPv4]time.Duration),
		holdDown:      20 * time.Second,
		flipThreshold: 1,
	}
	for _, opt := range opts {
		opt(w)
	}
	return w
}

// Name implements schemes.Detector.
func (w *Watcher) Name() string { return "arpwatch" }

// DBLen returns the number of tracked pairings.
func (w *Watcher) DBLen() int { return len(w.db) }

// Seed preloads the database (deployments often start from a known-good
// snapshot to cover the cold-start blind spot).
func (w *Watcher) Seed(ip ethaddr.IPv4, mac ethaddr.MAC) {
	w.db[ip] = &entry{mac: mac, lastSeen: w.sched.Now()}
}

// SaveDB writes the pairing database in the classic arp.dat line format
// ("mac ip lastSeenSeconds"), sorted by address for stable diffs. Real
// deployments persist the database across restarts precisely to keep the
// cold-start blind spot closed.
func (w *Watcher) SaveDB(out io.Writer) error {
	ips := make([]ethaddr.IPv4, 0, len(w.db))
	for ip := range w.db {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i].Uint32() < ips[j].Uint32() })
	bw := bufio.NewWriter(out)
	for _, ip := range ips {
		e := w.db[ip]
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%d\n", e.mac, ip, int64(e.lastSeen/time.Second)); err != nil {
			return fmt.Errorf("write db: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("write db: %w", err)
	}
	return nil
}

// LoadDB merges a saved database into the watcher, skipping addresses it
// already tracks (live observations outrank stale snapshots).
func (w *Watcher) LoadDB(in io.Reader) error {
	sc := bufio.NewScanner(in)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return fmt.Errorf("load db line %d: malformed entry %q", line, text)
		}
		mac, err := ethaddr.ParseMAC(fields[0])
		if err != nil {
			return fmt.Errorf("load db line %d: %w", line, err)
		}
		ip, err := ethaddr.ParseIPv4(fields[1])
		if err != nil {
			return fmt.Errorf("load db line %d: %w", line, err)
		}
		if _, tracked := w.db[ip]; !tracked {
			w.db[ip] = &entry{mac: mac, lastSeen: w.sched.Now()}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("load db: %w", err)
	}
	return nil
}

// Observe implements schemes.Detector.
func (w *Watcher) Observe(ev netsim.TapEvent) {
	if ev.Frame.Type != frame.TypeARP {
		return
	}
	p, err := arppkt.DecodeFrame(ev.Frame)
	if err != nil {
		return
	}
	w.observed++
	ip, mac := p.Binding()
	if ip.IsZero() || !mac.IsUnicast() {
		return
	}
	now := ev.At
	e, known := w.db[ip]
	if !known {
		w.db[ip] = &entry{mac: mac, lastSeen: now}
		if w.alertNew {
			w.sink.Report(schemes.Alert{
				At: now, Scheme: w.Name(), Kind: schemes.AlertNewStation,
				IP: ip, NewMAC: mac, Detail: "first pairing observed",
			})
		}
		return
	}
	if e.mac == mac {
		e.lastSeen = now
		e.flips = 0
		return
	}
	// Binding changed: the flip-flop signature.
	old := e.mac
	e.flips++
	flips := e.flips
	e.mac = mac
	e.lastSeen = now
	if flips < w.flipThreshold {
		return
	}
	if last, ok := w.lastAlert[ip]; ok && now-last < w.holdDown {
		return
	}
	w.lastAlert[ip] = now
	w.sink.Report(schemes.Alert{
		At: now, Scheme: w.Name(), Kind: schemes.AlertFlipFlop,
		IP: ip, OldMAC: old, NewMAC: mac, Detail: "binding changed",
	})
}
