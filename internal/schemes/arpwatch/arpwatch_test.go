package arpwatch

import (
	"strings"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/labnet"
	"repro/internal/schemes"
)

// watchLAN builds a workbench with a watcher on the switch tap.
func watchLAN(opts ...Option) (*labnet.LAN, *Watcher, *schemes.Sink) {
	l := labnet.Default()
	sink := schemes.NewSink()
	w := New(l.Sched, sink, opts...)
	l.Switch.AddTap(w.Observe)
	return l, w, sink
}

func TestDetectsGratuitousPoisoningFlipFlop(t *testing.T) {
	l, w, sink := watchLAN()
	l.SeedMutualCaches()
	if err := l.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if w.DBLen() == 0 {
		t.Fatal("watcher learned nothing from cache seeding")
	}
	sink.Reset()

	gw := l.Gateway()
	l.Attacker.Poison(attack.VariantGratuitous, gw.IP(), l.Attacker.MAC(), l.Victim().MAC(), l.Victim().IP())
	if err := l.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}

	flips := sink.ByKind(schemes.AlertFlipFlop)
	if len(flips) != 1 {
		t.Fatalf("flip-flop alerts = %d", len(flips))
	}
	a := flips[0]
	if a.IP != gw.IP() || a.OldMAC != gw.MAC() || a.NewMAC != l.Attacker.MAC() {
		t.Fatalf("alert fields: %+v", a)
	}
}

func TestDetectsUnicastPoisoningViaMirror(t *testing.T) {
	// Unsolicited unicast replies are invisible without the mirror port;
	// the watcher taps the switch, so it must still see them.
	l, _, sink := watchLAN()
	l.SeedMutualCaches()
	if err := l.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	sink.Reset()

	l.Attacker.Poison(attack.VariantUnsolicitedReply, l.Gateway().IP(), l.Attacker.MAC(),
		l.Victim().MAC(), l.Victim().IP())
	if err := l.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(sink.ByKind(schemes.AlertFlipFlop)) != 1 {
		t.Fatal("unicast poisoning missed")
	}
}

func TestColdStartBlindSpot(t *testing.T) {
	// Without a pre-observed binding, the first poisoning is just a new
	// station — the documented limitation of passive monitoring.
	l, _, sink := watchLAN()
	l.Attacker.Poison(attack.VariantGratuitous, l.Gateway().IP(), l.Attacker.MAC(),
		l.Victim().MAC(), l.Victim().IP())
	if err := l.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(sink.ByKind(schemes.AlertFlipFlop)) != 0 {
		t.Fatal("cold-start poisoning should not flip-flop")
	}
}

func TestSeedClosesColdStart(t *testing.T) {
	l, w, sink := watchLAN()
	gw := l.Gateway()
	w.Seed(gw.IP(), gw.MAC())
	l.Attacker.Poison(attack.VariantGratuitous, gw.IP(), l.Attacker.MAC(),
		l.Victim().MAC(), l.Victim().IP())
	if err := l.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(sink.ByKind(schemes.AlertFlipFlop)) != 1 {
		t.Fatal("seeded watcher missed the poisoning")
	}
}

func TestNewStationAlertsOptIn(t *testing.T) {
	l, _, sink := watchLAN(WithNewStationAlerts())
	l.Victim().SendGratuitous()
	if err := l.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(sink.ByKind(schemes.AlertNewStation)) != 1 {
		t.Fatalf("new-station alerts = %d", sink.Len())
	}
}

func TestHoldDownSuppressesRepeats(t *testing.T) {
	l, _, sink := watchLAN(WithHoldDown(30 * time.Second))
	gw := l.Gateway()
	l.SeedMutualCaches()
	if err := l.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	sink.Reset()

	// Periodic re-poisoning flips the binding every second; hold-down must
	// reduce alerts to ~1 per window. Flips alternate attacker→genuine
	// (host keeps talking) so the flip count is high.
	l.Attacker.PoisonPeriodically(time.Second, l.Victim().MAC(), l.Victim().IP(), gw.MAC(), gw.IP())
	l.Gateway().SendGratuitous() // genuine re-assertions interleave
	l.Sched.Every(2*time.Second, func() { gw.SendGratuitous() })
	if err := l.Run(25 * time.Second); err != nil {
		t.Fatal(err)
	}
	flips := len(sink.ByKind(schemes.AlertFlipFlop))
	if flips == 0 || flips > 2 {
		t.Fatalf("flip-flop alerts = %d, want 1..2 under 30s hold-down", flips)
	}
}

func TestSaveLoadRoundTripClosesColdStart(t *testing.T) {
	// First deployment observes the LAN and saves its database.
	l1, w1, _ := watchLAN()
	l1.SeedMutualCaches()
	if err := l1.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	var snapshot strings.Builder
	if err := w1.SaveDB(&snapshot); err != nil {
		t.Fatal(err)
	}
	if w1.DBLen() == 0 || !strings.Contains(snapshot.String(), "192.168.88.254") {
		t.Fatalf("snapshot incomplete:\n%s", snapshot.String())
	}

	// A restarted deployment loads it and catches the first poisoning
	// without having observed any traffic itself.
	l2, w2, sink2 := watchLAN()
	if err := w2.LoadDB(strings.NewReader(snapshot.String())); err != nil {
		t.Fatal(err)
	}
	if w2.DBLen() != w1.DBLen() {
		t.Fatalf("loaded %d entries, saved %d", w2.DBLen(), w1.DBLen())
	}
	l2.Attacker.Poison(attack.VariantGratuitous, l2.Gateway().IP(), l2.Attacker.MAC(),
		l2.Victim().MAC(), l2.Victim().IP())
	if err := l2.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(sink2.ByKind(schemes.AlertFlipFlop)) != 1 {
		t.Fatal("loaded database failed to close the cold-start blind spot")
	}
}

func TestLoadDBRejectsGarbage(t *testing.T) {
	_, w, _ := watchLAN()
	if err := w.LoadDB(strings.NewReader("not a mac\tnot an ip\t0\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Comments and blank lines are fine.
	if err := w.LoadDB(strings.NewReader("# comment\n\n")); err != nil {
		t.Fatal(err)
	}
}

func TestLoadDBLiveEntriesOutrankSnapshot(t *testing.T) {
	l, w, _ := watchLAN()
	gw := l.Gateway()
	w.Seed(gw.IP(), gw.MAC())
	stale := gw.IP().String()
	snapshot := "02:42:ac:00:00:99\t" + stale + "\t0\n"
	if err := w.LoadDB(strings.NewReader(snapshot)); err != nil {
		t.Fatal(err)
	}
	// The live binding must have survived; a poisoning alert should name
	// the real gateway MAC as the old binding.
	l.Attacker.Poison(attack.VariantGratuitous, gw.IP(), l.Attacker.MAC(),
		l.Victim().MAC(), l.Victim().IP())
	if err := l.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	_ = w
}

func TestDHCPStyleChurnCausesFalsePositive(t *testing.T) {
	// A genuine readdressing (same IP, new MAC) is indistinguishable from
	// poisoning for a passive monitor: this is the scheme's documented
	// false-positive, which Figure 4 quantifies.
	l, w, sink := watchLAN()
	departing := l.Hosts[2]
	w.Seed(departing.IP(), departing.MAC())

	// The "new lease holder" is another legitimate host taking over the IP.
	newcomer := l.Hosts[3]
	ip := departing.IP()
	l.Sched.After(time.Second, func() {
		departing.NIC().SetUp(false)
		newcomer.SetIP(ip)
		newcomer.SendGratuitous()
	})
	if err := l.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(sink.ByKind(schemes.AlertFlipFlop)) != 1 {
		t.Fatal("benign churn should (regrettably) alert — that is the scheme's FP")
	}
}

func TestFlipFlopThreshold(t *testing.T) {
	l, w, sink := watchLAN(WithFlipFlopThreshold(2), WithHoldDown(0))
	gw := l.Gateway()
	w.Seed(gw.IP(), gw.MAC())

	// One change: below threshold.
	l.Attacker.Poison(attack.VariantGratuitous, gw.IP(), l.Attacker.MAC(), l.Victim().MAC(), l.Victim().IP())
	if err := l.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 0 {
		t.Fatal("single flip should stay below threshold 2")
	}
	// Genuine host reasserts, flips again: now at threshold.
	gw.SendGratuitous()
	if err := l.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(sink.ByKind(schemes.AlertFlipFlop)) != 1 {
		t.Fatalf("alerts = %d after second flip", sink.Len())
	}
}
