package schemes

import (
	"testing"
	"time"

	"repro/internal/ethaddr"
	"repro/internal/frame"
	"repro/internal/netsim"
	"repro/internal/telemetry"
)

func TestSinkInstrumentCountsBySchemeAndKind(t *testing.T) {
	s := NewSink()
	reg := telemetry.New()
	s.Instrument(reg)

	ip := ethaddr.MustParseIPv4("10.0.0.1")
	s.Report(Alert{At: time.Second, Scheme: "arpwatch", Kind: AlertFlipFlop, IP: ip})
	s.Report(Alert{At: 2 * time.Second, Scheme: "arpwatch", Kind: AlertFlipFlop, IP: ip})
	s.Report(Alert{At: 3 * time.Second, Scheme: "active-probe", Kind: AlertVerifyFailed, IP: ip})

	if got := reg.Counter("scheme_alerts_total",
		telemetry.L("scheme", "arpwatch"), telemetry.L("kind", "flip-flop")).Value(); got != 2 {
		t.Fatalf("arpwatch flip-flops = %d", got)
	}
	if got := reg.Counter("scheme_alerts_total",
		telemetry.L("scheme", "active-probe"), telemetry.L("kind", "verify-failed")).Value(); got != 1 {
		t.Fatalf("active-probe verify-failed = %d", got)
	}
	// Every alert also lands in the event log at warn.
	if st := reg.Events().Stats(); st.Warn != 3 {
		t.Fatalf("warn events = %d", st.Warn)
	}
}

func TestInstrumentFilterVerdicts(t *testing.T) {
	reg := telemetry.New()
	inner := func(port int, f *frame.Frame) netsim.FilterVerdict {
		if port == 666 {
			return netsim.VerdictDrop
		}
		return netsim.VerdictAllow
	}
	wrapped := InstrumentFilter(reg, "dai", inner)

	f := &frame.Frame{Type: frame.TypeIPv4}
	if v := wrapped(1, f); v != netsim.VerdictAllow {
		t.Fatalf("verdict = %v", v)
	}
	wrapped(666, f)
	wrapped(666, f)

	if got := reg.Counter("scheme_filter_verdicts_total",
		telemetry.L("scheme", "dai"), telemetry.L("verdict", "allow")).Value(); got != 1 {
		t.Fatalf("allow = %d", got)
	}
	if got := reg.Counter("scheme_filter_verdicts_total",
		telemetry.L("scheme", "dai"), telemetry.L("verdict", "drop")).Value(); got != 2 {
		t.Fatalf("drop = %d", got)
	}
}

func TestInstrumentFilterNilPassthrough(t *testing.T) {
	inner := func(port int, f *frame.Frame) netsim.FilterVerdict { return netsim.VerdictAllow }
	if got := InstrumentFilter(nil, "x", inner); got == nil {
		t.Fatal("nil registry should return the filter unchanged, not nil")
	}
	if got := InstrumentFilter(telemetry.New(), "x", nil); got != nil {
		t.Fatal("nil filter must stay nil (the switch treats nil as no filter)")
	}
}

func TestSinkUninstrumentedStillWorks(t *testing.T) {
	s := NewSink()
	s.Report(Alert{Scheme: "x", Kind: AlertFlipFlop})
	if s.Len() != 1 {
		t.Fatal("report lost without instrumentation")
	}
}
