package schemes

import (
	"strings"
	"testing"
	"time"

	"repro/internal/ethaddr"
)

func TestSinkCollectsAndCopies(t *testing.T) {
	s := NewSink()
	var seen []Alert
	s.OnAlert(func(a Alert) { seen = append(seen, a) })

	ip := ethaddr.MustParseIPv4("10.0.0.1")
	s.Report(Alert{At: time.Second, Scheme: "x", Kind: AlertFlipFlop, IP: ip})
	s.Report(Alert{At: 2 * time.Second, Scheme: "x", Kind: AlertConflict, IP: ip})

	if s.Len() != 2 || len(seen) != 2 {
		t.Fatalf("Len = %d, callbacks = %d", s.Len(), len(seen))
	}
	got := s.Alerts()
	got[0].Scheme = "mutated"
	if s.Alerts()[0].Scheme != "x" {
		t.Fatal("Alerts aliases internal slice")
	}
}

func TestSinkByKindAndFirstFor(t *testing.T) {
	s := NewSink()
	ipA := ethaddr.MustParseIPv4("10.0.0.1")
	ipB := ethaddr.MustParseIPv4("10.0.0.2")
	s.Report(Alert{At: time.Second, Kind: AlertNewStation, IP: ipB})
	s.Report(Alert{At: 2 * time.Second, Kind: AlertFlipFlop, IP: ipA})
	s.Report(Alert{At: 3 * time.Second, Kind: AlertFlipFlop, IP: ipA})

	if got := len(s.ByKind(AlertFlipFlop)); got != 2 {
		t.Fatalf("ByKind = %d", got)
	}
	first, ok := s.FirstFor(ipA)
	if !ok || first.At != 2*time.Second {
		t.Fatalf("FirstFor = %+v ok=%v", first, ok)
	}
	if _, ok := s.FirstFor(ethaddr.MustParseIPv4("10.0.0.9")); ok {
		t.Fatal("FirstFor hit for unknown IP")
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestAlertKindStrings(t *testing.T) {
	kinds := []AlertKind{
		AlertFlipFlop, AlertNewStation, AlertUnsolicitedReply, AlertVerifyFailed,
		AlertConflict, AlertInvalid, AlertSpoofedSource, AlertBindingViolation,
		AlertPortSecurity, AlertAuthFailed, AlertFlood,
	}
	seen := make(map[string]bool)
	for _, k := range kinds {
		name := k.String()
		if name == "unknown" || seen[name] {
			t.Fatalf("kind %d has bad or duplicate name %q", k, name)
		}
		seen[name] = true
	}
	if AlertKind(0).String() != "unknown" {
		t.Fatal("zero kind should be unknown")
	}
}

func TestAlertString(t *testing.T) {
	a := Alert{
		At: time.Second, Scheme: "arpwatch", Kind: AlertFlipFlop,
		IP:     ethaddr.MustParseIPv4("10.0.0.1"),
		OldMAC: ethaddr.MustParseMAC("02:42:ac:00:00:01"),
		NewMAC: ethaddr.MustParseMAC("02:42:ac:00:00:66"),
		Detail: "binding changed",
	}
	s := a.String()
	for _, want := range []string{"arpwatch", "flip-flop", "10.0.0.1", "02:42:ac:00:00:66", "binding changed"} {
		if !strings.Contains(s, want) {
			t.Fatalf("alert string %q missing %q", s, want)
		}
	}
}
