// Package portsec implements switch port security, the mitigation the
// paper's analysis groups with infrastructure schemes: each access port may
// source at most a configured number of distinct MAC addresses (optionally
// pinned, "sticky"). Ports exceeding the limit are either filtered per
// frame or shut down entirely. Port security blunts MAC flooding and
// crude identity churn, but — as the analysis records — it cannot stop ARP
// poisoning itself, because a poisoner forges *protocol* bindings from its
// one legitimate hardware address.
package portsec

import (
	"strconv"

	"repro/internal/ethaddr"
	"repro/internal/frame"
	"repro/internal/netsim"
	"repro/internal/schemes"
	"repro/internal/sim"
)

// ViolationMode selects what happens when a port exceeds its MAC limit.
type ViolationMode int

// Violation modes.
const (
	// ModeRestrict drops offending frames but keeps the port up.
	ModeRestrict ViolationMode = iota + 1
	// ModeShutdown err-disables the whole port on first violation.
	ModeShutdown
)

// Stats counts enforcement outcomes.
type Stats struct {
	Learned    uint64
	Violations uint64
	Shutdowns  uint64
}

// Option configures the Enforcer.
type Option func(*Enforcer)

// WithMaxMACs sets the per-port address limit (default 1, the strict access
// port setting).
func WithMaxMACs(n int) Option {
	return func(e *Enforcer) { e.maxMACs = n }
}

// WithMode sets the violation mode (default ModeRestrict).
func WithMode(m ViolationMode) Option {
	return func(e *Enforcer) { e.mode = m }
}

// WithSticky pre-pins allowed MACs on a port; learning is disabled there.
func WithSticky(port int, macs ...ethaddr.MAC) Option {
	return func(e *Enforcer) {
		set := make(map[ethaddr.MAC]bool, len(macs))
		for _, m := range macs {
			set[m] = true
		}
		e.sticky[port] = set
	}
}

// WithTrustedPorts exempts ports (uplinks) from enforcement.
func WithTrustedPorts(ids ...int) Option {
	return func(e *Enforcer) {
		for _, id := range ids {
			e.trusted[id] = true
		}
	}
}

// Enforcer is the port-security filter. Install its Filter on the switch.
type Enforcer struct {
	sched   *sim.Scheduler
	sink    *schemes.Sink
	maxMACs int
	mode    ViolationMode
	learned map[int]map[ethaddr.MAC]bool
	sticky  map[int]map[ethaddr.MAC]bool
	trusted map[int]bool
	downed  map[int]bool
	stats   Stats
}

// New creates an enforcer.
func New(s *sim.Scheduler, sink *schemes.Sink, opts ...Option) *Enforcer {
	e := &Enforcer{
		sched:   s,
		sink:    sink,
		maxMACs: 1,
		mode:    ModeRestrict,
		learned: make(map[int]map[ethaddr.MAC]bool),
		sticky:  make(map[int]map[ethaddr.MAC]bool),
		trusted: make(map[int]bool),
		downed:  make(map[int]bool),
	}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Name identifies the scheme in alerts.
func (e *Enforcer) Name() string { return "port-security" }

// Stats returns a copy of the counters.
func (e *Enforcer) Stats() Stats { return e.stats }

// PortDown reports whether enforcement has err-disabled the port.
func (e *Enforcer) PortDown(port int) bool { return e.downed[port] }

// Filter returns the inline switch filter.
func (e *Enforcer) Filter() netsim.FilterFunc {
	return func(port int, f *frame.Frame) netsim.FilterVerdict {
		if e.trusted[port] {
			return netsim.VerdictAllow
		}
		if e.downed[port] {
			return netsim.VerdictDrop
		}
		src := f.Src
		if !src.IsUnicast() {
			return e.violate(port, src, "non-unicast source address")
		}
		if pinned, ok := e.sticky[port]; ok {
			if pinned[src] {
				return netsim.VerdictAllow
			}
			return e.violate(port, src, "source not in sticky set")
		}
		set, ok := e.learned[port]
		if !ok {
			set = make(map[ethaddr.MAC]bool)
			e.learned[port] = set
		}
		if set[src] {
			return netsim.VerdictAllow
		}
		if len(set) >= e.maxMACs {
			return e.violate(port, src, "mac limit exceeded")
		}
		set[src] = true
		e.stats.Learned++
		return netsim.VerdictAllow
	}
}

// violate handles one violation per the configured mode.
func (e *Enforcer) violate(port int, src ethaddr.MAC, detail string) netsim.FilterVerdict {
	e.stats.Violations++
	if e.mode == ModeShutdown && !e.downed[port] {
		e.downed[port] = true
		e.stats.Shutdowns++
		detail += "; port err-disabled"
	}
	e.sink.Report(schemes.Alert{
		At: e.sched.Now(), Scheme: e.Name(), Kind: schemes.AlertPortSecurity,
		NewMAC: src, Detail: "port " + strconv.Itoa(port) + ": " + detail,
	})
	return netsim.VerdictDrop
}
