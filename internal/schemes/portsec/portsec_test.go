package portsec

import (
	"testing"
	"time"

	"repro/internal/arppkt"
	"repro/internal/attack"
	"repro/internal/ethaddr"
	"repro/internal/frame"
	"repro/internal/labnet"
	"repro/internal/schemes"
)

// spoofedGratuitous crafts a gratuitous announcement whose Ethernet source
// is a MAC foreign to the sending port.
func spoofedGratuitous(l *labnet.LAN) *frame.Frame {
	foreign := ethaddr.MustParseMAC("02:42:ac:00:00:99")
	p := arppkt.NewGratuitousRequest(foreign, l.Victim().IP())
	return &frame.Frame{
		Dst: ethaddr.BroadcastMAC, Src: foreign,
		Type: frame.TypeARP, Payload: p.Encode(),
	}
}

// secLAN builds a workbench with port security inline. The monitor port and
// (optionally) the attacker port are trusted/untrusted per the test.
func secLAN(opts ...Option) (*labnet.LAN, *Enforcer, *schemes.Sink) {
	l := labnet.Default()
	sink := schemes.NewSink()
	e := New(l.Sched, sink, opts...)
	l.Switch.SetFilter(e.Filter())
	return l, e, sink
}

func TestSingleMACPerPortAllowed(t *testing.T) {
	l, e, sink := secLAN(WithTrustedPorts(l0MonitorPort))
	_ = e
	l.SeedMutualCaches()
	if err := l.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, h := range l.Hosts[1:] {
		if _, ok := h.Cache().Lookup(l.Gateway().IP()); !ok {
			t.Fatalf("host %s blocked by port security despite one MAC per port", h.Name())
		}
	}
	if sink.Len() != 0 {
		t.Fatalf("alerts for legitimate stations: %v", sink.Alerts())
	}
}

// l0MonitorPort matches labnet.Default's monitor port id: hosts 0..3 on
// ports 0..3, attacker on 4, monitor on 5.
const l0MonitorPort = 5

func TestMACFloodRestricted(t *testing.T) {
	l, e, sink := secLAN(WithTrustedPorts(l0MonitorPort))
	gen := ethaddr.NewGen(71)
	l.Attacker.FloodCAM(gen, 100, time.Millisecond)
	if err := l.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	// The attacker's first random MAC occupies its port's single slot;
	// everything after violates.
	if st.Violations < 90 {
		t.Fatalf("violations = %d", st.Violations)
	}
	if len(sink.ByKind(schemes.AlertPortSecurity)) == 0 {
		t.Fatal("no port-security alerts")
	}
	// The CAM stays small: flooding failed.
	if l.Switch.CAMLen() > 10 {
		t.Fatalf("CAM grew to %d despite port security", l.Switch.CAMLen())
	}
}

func TestShutdownModeKillsPort(t *testing.T) {
	l, e, _ := secLAN(WithMode(ModeShutdown), WithTrustedPorts(l0MonitorPort))
	gen := ethaddr.NewGen(72)
	atkPort := l.AtkPort.ID()

	// The attacker's own legitimate frame claims the slot...
	l.Attacker.Poison(attack.VariantGratuitous, l.Attacker.IP(), l.Attacker.MAC(), l.Victim().MAC(), l.Victim().IP())
	if err := l.Run(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// ...then flooding err-disables the port entirely.
	l.Attacker.FloodCAM(gen, 10, time.Millisecond)
	if err := l.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if !e.PortDown(atkPort) {
		t.Fatal("port not err-disabled")
	}
	if e.Stats().Shutdowns != 1 {
		t.Fatalf("stats: %+v", e.Stats())
	}
	// Even the attacker's legitimate identity is now unreachable: frames on
	// a downed port are dropped before any cache can hear them. Clear the
	// binding seeded by the pre-shutdown announcement first.
	l.Victim().Cache().Delete(l.Attacker.IP())
	l.Attacker.Poison(attack.VariantGratuitous, l.Attacker.IP(), l.Attacker.MAC(), l.Victim().MAC(), l.Victim().IP())
	if err := l.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Victim().Cache().Lookup(l.Attacker.IP()); ok {
		t.Fatal("frame escaped an err-disabled port")
	}
	if !e.PortDown(atkPort) {
		t.Fatal("port came back up")
	}
}

func TestStickyPinning(t *testing.T) {
	l := labnet.Default()
	sink := schemes.NewSink()
	e := New(l.Sched, sink,
		WithSticky(l.Ports[1].ID(), l.Victim().MAC()),
		WithTrustedPorts(l0MonitorPort))
	l.Switch.SetFilter(e.Filter())

	// The victim's pinned MAC passes.
	l.Victim().SendGratuitous()
	if err := l.Run(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.Alerts()); got != 0 {
		t.Fatalf("pinned MAC alerted: %v", sink.Alerts())
	}
	// Now suppose the attacker unplugs the victim and connects to its
	// port: simulate by spoofing a different source MAC from port 1 — the
	// victim host itself cannot do that, so craft via a raw send from the
	// victim's NIC with a spoofed frame source.
	l.Victim().SendFrame(spoofedGratuitous(l))
	if err := l.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(sink.ByKind(schemes.AlertPortSecurity)) != 1 {
		t.Fatalf("alerts: %v", sink.Alerts())
	}
}

func TestMaxMACsHigherLimit(t *testing.T) {
	l, e, _ := secLAN(WithMaxMACs(3), WithTrustedPorts(l0MonitorPort))
	gen := ethaddr.NewGen(73)
	l.Attacker.FloodCAM(gen, 5, time.Millisecond)
	if err := l.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Learned != 3 || st.Violations != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPoisoningPassesThroughPortSecurity(t *testing.T) {
	// The analysis point: port security does NOT stop ARP poisoning from a
	// station's single legitimate MAC.
	l, _, sink := secLAN(WithTrustedPorts(l0MonitorPort))
	gw := l.Gateway()
	l.Attacker.Poison(attack.VariantUnsolicitedReply, gw.IP(), l.Attacker.MAC(),
		l.Victim().MAC(), l.Victim().IP())
	if err := l.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if l.PoisonedCount(gw.IP()) == 0 {
		t.Fatal("expected poisoning to succeed through port security")
	}
	if len(sink.ByKind(schemes.AlertPortSecurity)) != 0 {
		t.Fatal("port security should not flag single-MAC poisoning")
	}
}
