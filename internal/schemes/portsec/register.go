package portsec

import (
	"fmt"

	"repro/internal/ethaddr"
	"repro/internal/schemes/registry"
)

// Params configures switch port security.
type Params struct {
	// Sticky pins every station's genuine MAC (the attacker's included) to
	// its port; false leaves ports learning dynamically up to MaxMACs.
	Sticky bool `json:"sticky"`
	// MaxMACs bounds dynamically learned MACs per port; 0 keeps the
	// scheme default.
	MaxMACs int `json:"maxMACs"`
	// Mode is the violation response: "restrict" (drop the frame) or
	// "shutdown" (err-disable the port).
	Mode string `json:"mode"`
	// TrustMonitor exempts the mirror port from enforcement.
	TrustMonitor bool `json:"trustMonitor"`
}

func init() {
	registry.Register(registry.Factory{
		Name:        registry.NamePortSecurity,
		Package:     "portsec",
		Description: "switch-inline per-port MAC limits with sticky pinning (port security)",
		Deployment:  registry.Deployment{Vantage: registry.VantageSwitchInline, Cost: registry.CostPerLAN},
		DefaultParams: func() any {
			return &Params{Sticky: true, Mode: "restrict", TrustMonitor: true}
		},
		// Handle is the *Enforcer.
		Deploy: func(env *registry.Env, params any) (*registry.Instance, error) {
			p := params.(*Params)
			var opts []Option
			switch p.Mode {
			case "", "restrict":
			case "shutdown":
				opts = append(opts, WithMode(ModeShutdown))
			default:
				return nil, fmt.Errorf("port-security mode %q (valid: restrict, shutdown)", p.Mode)
			}
			if p.MaxMACs > 0 {
				opts = append(opts, WithMaxMACs(p.MaxMACs))
			}
			if p.TrustMonitor && env.MonitorPort != nil {
				opts = append(opts, WithTrustedPorts(env.MonitorPort.ID()))
			}
			if p.Sticky {
				for i, port := range env.Ports {
					opts = append(opts, WithSticky(port.ID(), env.Hosts[i].MAC()))
				}
				if env.AttackerPort != nil && env.AttackerMAC != (ethaddr.MAC{}) {
					opts = append(opts, WithSticky(env.AttackerPort.ID(), env.AttackerMAC))
				}
			}
			e := New(env.Sched, env.Sink, opts...)
			env.AddInlineFilter(registry.NamePortSecurity, e.Filter())
			return &registry.Instance{Handle: e}, nil
		},
	})
}
