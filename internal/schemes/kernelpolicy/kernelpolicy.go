// Package kernelpolicy expresses the "patch the OS cache rules" family of
// prevention schemes the paper analyzes — refusing unsolicited replies,
// refusing overwrites of live entries, ignoring request-borne bindings — as
// named, selectable profiles over stack.Policy. The policy-matrix experiment
// sweeps these profiles against every attack variant.
package kernelpolicy

import "repro/internal/stack"

// Profile names a cache-policy hardening level.
type Profile struct {
	// Name identifies the profile in reports ("naive", "reply-only", ...).
	Name string
	// Policy is the stack policy the profile selects.
	Policy stack.Policy
	// Description summarizes the hardening in one line.
	Description string
}

// Profiles returns all profiles in hardening order, from the fully
// permissive baseline to the solicited-only patched kernel.
func Profiles() []Profile {
	return []Profile{
		{
			Name:        "naive",
			Policy:      stack.PolicyNaive,
			Description: "accept and overwrite from any ARP message (unpatched legacy stack)",
		},
		{
			Name:        "reply-only",
			Policy:      stack.PolicyReplyOnly,
			Description: "learn only from replies, unsolicited included",
		},
		{
			Name:        "no-overwrite",
			Policy:      stack.PolicyNoOverwrite,
			Description: "learn liberally but never replace a live entry before expiry",
		},
		{
			Name:        "solicited-only",
			Policy:      stack.PolicySolicitedOnly,
			Description: "accept only replies answering an outstanding request",
		},
	}
}

// ByName returns the named profile, defaulting to the naive baseline for
// unknown names. Callers that want typos rejected use Find.
func ByName(name string) Profile {
	if p, ok := Find(name); ok {
		return p
	}
	return Profiles()[0]
}

// Find returns the named profile, reporting whether it exists.
func Find(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
