package kernelpolicy

import (
	"fmt"
	"strings"

	"repro/internal/schemes/registry"
	"repro/internal/stack"
)

// Params selects the cache-policy hardening profile.
type Params struct {
	// Profile is one of the named profiles ("naive", "reply-only",
	// "no-overwrite", "solicited-only").
	Profile string `json:"profile"`
}

func init() {
	registry.Register(registry.Factory{
		Name:        registry.NameKernelPolicy,
		Package:     "kernelpolicy",
		Description: "hardened kernel ARP cache acceptance rules, applied at host construction",
		Deployment:  registry.Deployment{Vantage: registry.VantageHostResident, Cost: registry.CostPerHost},
		DefaultParams: func() any {
			return &Params{Profile: "solicited-only"}
		},
		HostOptions: func(params any) ([]stack.Option, error) {
			p := params.(*Params)
			prof, ok := Find(p.Profile)
			if !ok {
				var names []string
				for _, pr := range Profiles() {
					names = append(names, pr.Name)
				}
				return nil, fmt.Errorf("unknown kernel policy profile %q (valid: %s)",
					p.Profile, strings.Join(names, ", "))
			}
			return []stack.Option{stack.WithPolicy(prof.Policy)}, nil
		},
	})
}
