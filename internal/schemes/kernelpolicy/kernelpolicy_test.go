package kernelpolicy

import (
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/labnet"
	"repro/internal/stack"
)

func TestProfilesOrderedAndNamed(t *testing.T) {
	ps := Profiles()
	if len(ps) != 4 {
		t.Fatalf("profiles = %d", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		if p.Name == "" || p.Description == "" {
			t.Fatalf("incomplete profile %+v", p)
		}
		if names[p.Name] {
			t.Fatalf("duplicate profile %q", p.Name)
		}
		names[p.Name] = true
	}
	if ps[0].Name != "naive" || ps[len(ps)-1].Name != "solicited-only" {
		t.Fatal("profiles not in hardening order")
	}
}

func TestByName(t *testing.T) {
	if ByName("solicited-only").Policy != stack.PolicySolicitedOnly {
		t.Fatal("lookup failed")
	}
	if ByName("nonsense").Name != "naive" {
		t.Fatal("unknown name should default to the naive baseline")
	}
}

// TestHardeningMonotonicity is the behavioural heart of the policy matrix:
// each successive profile must block at least the unsolicited-reply attack
// the previous ones document.
func TestHardeningMonotonicity(t *testing.T) {
	vulnerable := func(p Profile, v attack.Variant) bool {
		l := labnet.New(labnet.Config{Policy: p.Policy, WithAttacker: true, WithMonitor: false})
		gw := l.Gateway()
		l.Attacker.Poison(v, gw.IP(), l.Attacker.MAC(), l.Victim().MAC(), l.Victim().IP())
		if err := l.Run(time.Second); err != nil {
			t.Fatal(err)
		}
		return l.PoisonedCount(gw.IP()) > 0
	}

	tests := []struct {
		profile string
		variant attack.Variant
		want    bool
	}{
		{"naive", attack.VariantGratuitous, true},
		{"naive", attack.VariantUnsolicitedReply, true},
		{"naive", attack.VariantRequestSpoof, true},
		{"reply-only", attack.VariantRequestSpoof, false},
		{"reply-only", attack.VariantUnsolicitedReply, true},
		{"no-overwrite", attack.VariantUnsolicitedReply, true}, // empty cache: first write wins
		{"solicited-only", attack.VariantGratuitous, false},
		{"solicited-only", attack.VariantUnsolicitedReply, false},
		{"solicited-only", attack.VariantRequestSpoof, false},
	}
	for _, tt := range tests {
		t.Run(tt.profile+"/"+tt.variant.String(), func(t *testing.T) {
			if got := vulnerable(ByName(tt.profile), tt.variant); got != tt.want {
				t.Fatalf("vulnerable = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestNoOverwriteProtectsEstablishedBinding(t *testing.T) {
	l := labnet.New(labnet.Config{Policy: ByName("no-overwrite").Policy, WithAttacker: true, WithMonitor: false})
	gw := l.Gateway()
	l.Victim().Resolve(gw.IP(), nil) // establish the genuine binding first
	if err := l.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	l.Attacker.Poison(attack.VariantUnsolicitedReply, gw.IP(), l.Attacker.MAC(),
		l.Victim().MAC(), l.Victim().IP())
	if err := l.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if mac, _ := l.Victim().Cache().Lookup(gw.IP()); mac != gw.MAC() {
		t.Fatalf("established binding overwritten: %v", mac)
	}
}
