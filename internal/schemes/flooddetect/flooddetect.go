// Package flooddetect implements the rate-based anomaly detector class the
// analysis groups with network monitoring: it watches aggregate ARP
// behaviour per window and alerts on three signatures that precede or
// accompany poisoning campaigns —
//
//   - volume floods: ARP packets per window above threshold (cache/CAM
//     flooding tools);
//   - binding floods: too many *distinct* sender bindings per window
//     (randomized-source flooding, which per-packet volume alone can miss
//     at low rates);
//   - scans: one station asking for too many distinct target addresses per
//     window (the reconnaissance sweep attackers run to map victims).
//
// Rate detection is cheap and catches the noisy attacks, but — as the
// analysis notes for anomaly thresholds generally — it trades a tuning
// burden (thresholds per LAN) and says nothing about quiet, targeted
// poisoning, which is why it complements rather than replaces the
// binding-level schemes.
package flooddetect

import (
	"fmt"
	"time"

	"repro/internal/arppkt"
	"repro/internal/ethaddr"
	"repro/internal/frame"
	"repro/internal/netsim"
	"repro/internal/schemes"
	"repro/internal/sim"
)

// Option configures the Detector.
type Option func(*Detector)

// WithWindow sets the observation window (default 10s).
func WithWindow(d time.Duration) Option {
	return func(det *Detector) { det.window = d }
}

// WithPacketThreshold sets the per-window ARP packet alert level
// (default 200 — generous for small LANs, instant for flood tools).
func WithPacketThreshold(n int) Option {
	return func(det *Detector) { det.maxPackets = n }
}

// WithBindingThreshold sets the per-window distinct-sender-binding alert
// level (default 50).
func WithBindingThreshold(n int) Option {
	return func(det *Detector) { det.maxBindings = n }
}

// WithScanThreshold sets the per-window distinct-targets-per-source alert
// level (default 20).
func WithScanThreshold(n int) Option {
	return func(det *Detector) { det.maxTargets = n }
}

// Stats counts detector activity.
type Stats struct {
	Windows       uint64
	PacketAlerts  uint64
	BindingAlerts uint64
	ScanAlerts    uint64
}

// Detector is the rate-based monitor. Feed it from a tap.
type Detector struct {
	sched       *sim.Scheduler
	sink        *schemes.Sink
	window      time.Duration
	maxPackets  int
	maxBindings int
	maxTargets  int

	packets  int
	bindings map[ethaddr.IPv4]ethaddr.MAC
	targets  map[ethaddr.MAC]map[ethaddr.IPv4]bool
	alerted  map[ethaddr.MAC]bool // one scan alert per source per window
	stats    Stats
	ticker   sim.Timer
}

var _ schemes.Detector = (*Detector)(nil)

// New creates the detector and starts its window timer.
func New(s *sim.Scheduler, sink *schemes.Sink, opts ...Option) *Detector {
	det := &Detector{
		sched:       s,
		sink:        sink,
		window:      10 * time.Second,
		maxPackets:  200,
		maxBindings: 50,
		maxTargets:  20,
	}
	for _, opt := range opts {
		opt(det)
	}
	det.reset()
	det.ticker = s.Every(det.window, det.rollWindow)
	return det
}

// Name implements schemes.Detector.
func (det *Detector) Name() string { return "flood-detect" }

// Stats returns a copy of the counters.
func (det *Detector) Stats() Stats { return det.stats }

// Stop cancels the window timer.
func (det *Detector) Stop() {
	det.ticker.Stop()
}

// reset clears the per-window state. The maps are cleared in place rather
// than reallocated: a detector rolls windows for the whole run, and reusing
// the buckets keeps the per-window cost off the steady-state allocation
// profile. The inner per-source target sets are likewise kept and emptied.
func (det *Detector) reset() {
	det.packets = 0
	if det.bindings == nil {
		det.bindings = make(map[ethaddr.IPv4]ethaddr.MAC)
		det.targets = make(map[ethaddr.MAC]map[ethaddr.IPv4]bool)
		det.alerted = make(map[ethaddr.MAC]bool)
		return
	}
	clear(det.bindings)
	for _, set := range det.targets {
		clear(set)
	}
	clear(det.alerted)
}

// rollWindow closes the current window.
func (det *Detector) rollWindow() {
	det.stats.Windows++
	det.reset()
}

// Observe implements schemes.Detector.
func (det *Detector) Observe(ev netsim.TapEvent) {
	if ev.Frame.Type != frame.TypeARP {
		return
	}
	p, err := arppkt.DecodeFrame(ev.Frame)
	if err != nil {
		return
	}
	det.packets++
	if det.packets == det.maxPackets+1 {
		det.stats.PacketAlerts++
		det.sink.Report(schemes.Alert{
			At: ev.At, Scheme: det.Name(), Kind: schemes.AlertFlood,
			Detail: fmt.Sprintf("arp volume exceeded %d packets/window", det.maxPackets),
		})
	}

	if ip, mac := p.Binding(); !ip.IsZero() && mac.IsUnicast() {
		det.bindings[ip] = mac
		if len(det.bindings) == det.maxBindings+1 {
			det.stats.BindingAlerts++
			det.sink.Report(schemes.Alert{
				At: ev.At, Scheme: det.Name(), Kind: schemes.AlertFlood,
				IP: ip, NewMAC: mac,
				Detail: fmt.Sprintf("distinct bindings exceeded %d/window (cache flood)", det.maxBindings),
			})
		}
	}

	if p.Op == arppkt.OpRequest && !p.IsGratuitous() {
		src := ev.Frame.Src
		set, ok := det.targets[src]
		if !ok {
			set = make(map[ethaddr.IPv4]bool)
			det.targets[src] = set
		}
		set[p.TargetIP] = true
		if len(set) > det.maxTargets && !det.alerted[src] {
			det.alerted[src] = true
			det.stats.ScanAlerts++
			det.sink.Report(schemes.Alert{
				At: ev.At, Scheme: det.Name(), Kind: schemes.AlertFlood,
				NewMAC: src,
				Detail: fmt.Sprintf("%s asked for >%d addresses/window (arp scan)", src, det.maxTargets),
			})
		}
	}
}
