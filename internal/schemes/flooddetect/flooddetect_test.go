package flooddetect

import (
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/ethaddr"
	"repro/internal/labnet"
	"repro/internal/schemes"
)

// floodLAN builds a workbench with the detector on the switch tap.
func floodLAN(opts ...Option) (*labnet.LAN, *Detector, *schemes.Sink) {
	l := labnet.Default()
	sink := schemes.NewSink()
	det := New(l.Sched, sink, opts...)
	l.Switch.AddTap(det.Observe)
	return l, det, sink
}

func TestQuietLANRaisesNothing(t *testing.T) {
	l, det, sink := floodLAN()
	l.SeedMutualCaches()
	for _, h := range l.Hosts {
		h := h
		l.Sched.Every(15*time.Second, h.SendGratuitous)
	}
	if err := l.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 0 {
		t.Fatalf("quiet LAN alerted: %v", sink.Alerts())
	}
	if det.Stats().Windows == 0 {
		t.Fatal("windows did not roll")
	}
}

func TestCacheFloodDetected(t *testing.T) {
	l, det, sink := floodLAN()
	gen := ethaddr.NewGen(81)
	l.Attacker.FloodCache(gen, l.Subnet, 300, 10*time.Millisecond)
	if err := l.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(sink.ByKind(schemes.AlertFlood)) == 0 {
		t.Fatal("flood not detected")
	}
	st := det.Stats()
	if st.BindingAlerts == 0 {
		t.Fatalf("binding flood missed: %+v", st)
	}
	if st.PacketAlerts == 0 {
		t.Fatalf("volume flood missed: %+v", st)
	}
}

func TestSlowRandomizedFloodCaughtByBindingCount(t *testing.T) {
	// 8 bindings/s stays under the 200-packet volume threshold within a
	// 10s window but crosses the 50-distinct-bindings line: the reason the
	// detector counts bindings, not just packets.
	l, det, sink := floodLAN()
	gen := ethaddr.NewGen(82)
	l.Attacker.FloodCache(gen, l.Subnet, 80, 125*time.Millisecond)
	if err := l.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := det.Stats()
	if st.PacketAlerts != 0 {
		t.Fatalf("volume threshold should not fire at this rate: %+v", st)
	}
	if st.BindingAlerts == 0 {
		t.Fatalf("binding threshold missed the slow flood: %+v", st)
	}
	if sink.Len() == 0 {
		t.Fatal("no alert")
	}
}

func TestScanDetected(t *testing.T) {
	l, det, sink := floodLAN()
	l.Attacker.Scan(l.Subnet, 1, 60, 50*time.Millisecond)
	if err := l.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := det.Stats()
	if st.ScanAlerts != 1 {
		t.Fatalf("scan alerts = %d, want exactly 1 (per source per window)", st.ScanAlerts)
	}
	alerts := sink.ByKind(schemes.AlertFlood)
	if len(alerts) == 0 || alerts[0].NewMAC != l.Attacker.MAC() {
		t.Fatalf("scan alert should name the scanner: %v", alerts)
	}
}

func TestLegitimateResolutionBurstBelowScanThreshold(t *testing.T) {
	// A host resolving a handful of peers is not a scan.
	l, det, _ := floodLAN()
	for _, peer := range l.Hosts[1:] {
		l.Victim().Resolve(peer.IP(), nil)
	}
	if err := l.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if det.Stats().ScanAlerts != 0 {
		t.Fatal("normal resolution flagged as scan")
	}
}

func TestWindowRollClearsState(t *testing.T) {
	// 40 bindings per window never crosses the 50 threshold, even though
	// 120 accumulate across three windows.
	l, det, sink := floodLAN(WithWindow(5 * time.Second))
	gen := ethaddr.NewGen(83)
	for w := 0; w < 3; w++ {
		w := w
		l.Sched.At(time.Duration(w)*5*time.Second, func() {
			l.Attacker.FloodCache(gen, l.Subnet, 40, 20*time.Millisecond)
		})
	}
	if err := l.Run(16 * time.Second); err != nil {
		t.Fatal(err)
	}
	if det.Stats().BindingAlerts != 0 {
		t.Fatalf("window state leaked across rolls: %+v, alerts %v", det.Stats(), sink.Alerts())
	}
}

func TestThresholdOptions(t *testing.T) {
	l, det, _ := floodLAN(WithPacketThreshold(5), WithBindingThreshold(3), WithScanThreshold(2))
	gen := ethaddr.NewGen(84)
	l.Attacker.FloodCache(gen, l.Subnet, 10, time.Millisecond)
	l.Attacker.Scan(l.Subnet, 1, 5, time.Millisecond)
	if err := l.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	st := det.Stats()
	if st.PacketAlerts == 0 || st.BindingAlerts == 0 || st.ScanAlerts == 0 {
		t.Fatalf("custom thresholds not honoured: %+v", st)
	}
	det.Stop()
}

func TestPoisoningAloneStaysQuiet(t *testing.T) {
	// The documented limitation: a single targeted poisoning is invisible
	// to rate-based detection.
	l, _, sink := floodLAN()
	l.Attacker.Poison(attack.VariantUnsolicitedReply, l.Gateway().IP(), l.Attacker.MAC(),
		l.Victim().MAC(), l.Victim().IP())
	if err := l.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 0 {
		t.Fatalf("quiet poisoning should evade rate detection: %v", sink.Alerts())
	}
}
