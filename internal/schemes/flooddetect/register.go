package flooddetect

import (
	"time"

	"repro/internal/schemes/registry"
)

// Params configures the rate-anomaly detector. Zero values keep the scheme
// defaults.
type Params struct {
	// WindowSeconds is the sliding measurement window.
	WindowSeconds float64 `json:"windowSeconds"`
	// PacketThreshold is ARP packets per window per source before paging.
	PacketThreshold int `json:"packetThreshold"`
	// BindingThreshold is distinct claimed bindings per source per window.
	BindingThreshold int `json:"bindingThreshold"`
	// ScanThreshold is distinct probed targets per source per window.
	ScanThreshold int `json:"scanThreshold"`
}

func init() {
	registry.Register(registry.Factory{
		Name:          registry.NameFloodDetect,
		Package:       "flooddetect",
		Description:   "mirror-port rate anomaly detector for ARP floods and scans",
		Deployment:    registry.Deployment{Vantage: registry.VantageMirrorPort, Cost: registry.CostPerLAN},
		DefaultParams: func() any { return &Params{} },
		// Handle is the *Detector.
		Deploy: func(env *registry.Env, params any) (*registry.Instance, error) {
			p := params.(*Params)
			var opts []Option
			if p.WindowSeconds > 0 {
				opts = append(opts, WithWindow(time.Duration(p.WindowSeconds*float64(time.Second))))
			}
			if p.PacketThreshold > 0 {
				opts = append(opts, WithPacketThreshold(p.PacketThreshold))
			}
			if p.BindingThreshold > 0 {
				opts = append(opts, WithBindingThreshold(p.BindingThreshold))
			}
			if p.ScanThreshold > 0 {
				opts = append(opts, WithScanThreshold(p.ScanThreshold))
			}
			det := New(env.Sched, env.Sink, opts...)
			env.AddTap(registry.NameFloodDetect, det.Observe)
			return &registry.Instance{Handle: det}, nil
		},
	})
}
