package schemes

import (
	"testing"

	"repro/internal/telemetry"
)

// Reset on an instrumented sink must drop the per-scheme counter handles
// along with the alerts: a handle cached across Reset would keep
// incrementing a counter captured in an earlier trial's registry state.
func TestResetClearsTelemetryAttribution(t *testing.T) {
	s := NewSink()
	s.Instrument(telemetry.New())
	s.Report(Alert{Scheme: "arpwatch", Kind: AlertFlipFlop})
	if len(s.byScheme) == 0 {
		t.Fatal("instrumented report built no attribution map")
	}

	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("Reset kept %d alerts", s.Len())
	}
	if len(s.byScheme) != 0 {
		t.Fatalf("Reset kept %d stale per-scheme counter entries", len(s.byScheme))
	}

	// The sink must still attribute after the reset.
	s.Report(Alert{Scheme: "arpwatch", Kind: AlertFlipFlop})
	if got := len(s.byScheme); got != 1 {
		t.Fatalf("post-reset report attributed to %d schemes, want 1", got)
	}
}

// Reset on an uninstrumented sink must stay a no-op for telemetry: no map
// is conjured where none existed.
func TestResetUninstrumented(t *testing.T) {
	s := NewSink()
	s.Report(Alert{Scheme: "dai", Kind: AlertBindingViolation})
	s.Reset()
	if s.byScheme != nil {
		t.Fatal("Reset created an attribution map on an uninstrumented sink")
	}
}
